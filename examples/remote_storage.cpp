/**
 * @file
 * Example: a remote block device over NVMe-TCP with the paper's
 * storage offloads (§5.1) — CRC32C data-digest verification and
 * zero-copy placement of capsule payloads into block-layer buffers.
 *
 *   $ ./remote_storage [io_kib] [depth]
 *
 * Host B mounts the drive exported by host A and runs a random-read
 * workload twice — software path vs NIC offload — and prints the
 * throughput, CPU, and what the NIC placed/verified.
 */

#include <cstdio>
#include <cstdlib>

#include "app/fio.hh"
#include "experiment.hh"
#include "bench_json.hh"

using namespace anic;
using namespace anic::bench;

namespace {

void
run(bool offload, uint32_t ioKib, int depth)
{
    StorageVariant sv;
    sv.offload = offload;
    auto ex = ExperimentBuilder()
                  .serverCores(1)
                  .generatorCores(8)
                  .remoteStorage(sv)
                  .serverRcvBuf(4 << 20)
                  .generatorSndBuf(4 << 20)
                  .build();
    app::MacroWorld &w = ex->world();

    app::FioConfig fcfg;
    fcfg.blockSize = ioKib << 10;
    fcfg.ioDepth = depth;
    fcfg.verify = true; // end-to-end payload verification
    app::FioJob job(w.sim, *w.storage->queue(0), fcfg);
    job.driveSeed_ = w.drive.config().contentSeed;
    w.server.core(0).post([&job] { job.start(); });

    ex->warm(10 * sim::kMillisecond);
    std::vector<sim::Tick> busy = w.server.busySnapshot();
    uint64_t done0 = job.completions();
    sim::Tick window = 50 * sim::kMillisecond;
    ex->warm(window);

    uint64_t reqs = job.completions() - done0;
    double gbps = static_cast<double>(reqs) * fcfg.blockSize * 8 /
                  sim::ticksToSeconds(window) / 1e9;
    const nvmetcp::NvmeHostStats &st = w.storage->queue(0)->stats();
    std::printf("%-9s %8.2f Gbps %6.2f busy cores | lat %6.0f us | "
                "placed %5.1f MiB, crc skipped %llu / sw %llu, "
                "failures %llu\n",
                offload ? "offload" : "software", gbps,
                w.server.busyCores(busy, window), job.latencyUs().mean(),
                static_cast<double>(st.bytesPlaced) / (1 << 20),
                (unsigned long long)st.crcSkipped,
                (unsigned long long)st.crcSoftware,
                (unsigned long long)(st.failures + job.failures()));
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t io_kib = argc > 1 ? std::atoi(argv[1]) : 256;
    int depth = argc > 2 ? std::atoi(argv[2]) : 32;
    std::printf("remote NVMe-TCP block device: %u KiB random reads, "
                "depth %d, 100 Gbps fabric, drive capped at 2.67 GB/s\n\n",
                io_kib, depth);
    run(false, io_kib, depth);
    run(true, io_kib, depth);
    anic::bench::emitRegistrySnapshot("remote_storage");
    return 0;
}
