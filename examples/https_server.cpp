/**
 * @file
 * Example: an nginx-style https file server under a wrk-style load,
 * comparing the TLS offload variants side by side (the paper's
 * headline use case, §6.3).
 *
 *   $ ./https_server [connections] [file_kib]
 *
 * Serves 64 files from the page cache over 100 Gbps to the given
 * number of keep-alive connections, once per variant, and prints the
 * goodput and server CPU for each.
 */

#include <cstdio>
#include <cstdlib>

#include "app/http.hh"
#include "app/macro_world.hh"
#include "bench_json.hh"

using namespace anic;

namespace {

struct Variant
{
    const char *name;
    bool tls;
    bool offload;
    bool zc;
};

void
run(const Variant &v, int connections, uint64_t fileKib)
{
    app::MacroWorld::Config cfg;
    cfg.serverCores = 4;
    cfg.generatorCores = 12;
    cfg.remoteStorage = false;
    app::MacroWorld w(cfg);
    std::vector<uint32_t> ids = w.makeFiles(64, fileKib << 10);
    w.storage->prewarm();

    app::HttpServerConfig scfg;
    scfg.tlsEnabled = v.tls;
    scfg.tlsCfg.txOffload = v.offload;
    scfg.tlsCfg.rxOffload = v.offload;
    scfg.tlsCfg.zerocopySendfile = v.zc;
    app::HttpServer server(w.server, 443, *w.storage, scfg);

    app::HttpClientConfig ccfg;
    ccfg.connections = connections;
    ccfg.fileIds = ids;
    ccfg.tlsEnabled = v.tls;
    ccfg.verifyContent = false;
    app::HttpClient client(w.generator, app::MacroWorld::kGenIp,
                           app::MacroWorld::kSrvIp, 443, w.files, ccfg);
    client.start();

    w.sim.runFor(15 * sim::kMillisecond);
    std::vector<sim::Tick> busy = w.server.busySnapshot();
    client.measureStart();
    sim::Tick window = 25 * sim::kMillisecond;
    w.sim.runFor(window);
    client.measureStop();

    std::printf("%-12s %10.2f Gbps %10.0f req/s %8.2f busy cores\n", v.name,
                client.bodyMeter().gbps(),
                static_cast<double>(client.windowResponses()) /
                    sim::ticksToSeconds(window),
                w.server.busyCores(busy, window));
}

} // namespace

int
main(int argc, char **argv)
{
    int connections = argc > 1 ? std::atoi(argv[1]) : 256;
    uint64_t file_kib = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

    std::printf("https file server: %d connections, %llu KiB files, "
                "4 server cores, 100 Gbps\n\n",
                connections, (unsigned long long)file_kib);
    for (Variant v : {Variant{"http", false, false, false},
                      Variant{"https", true, false, false},
                      Variant{"offload", true, true, false},
                      Variant{"offload+zc", true, true, true}}) {
        run(v, connections, file_kib);
    }
    anic::bench::emitRegistrySnapshot("https_server");
    return 0;
}
