/**
 * @file
 * Example: an nginx-style https file server under a wrk-style load,
 * comparing the TLS offload variants side by side (the paper's
 * headline use case, §6.3).
 *
 *   $ ./https_server [connections] [file_kib]
 *
 * Serves 64 files from the page cache over 100 Gbps to the given
 * number of keep-alive connections, once per variant, and prints the
 * goodput and server CPU for each.
 */

#include <cstdio>
#include <cstdlib>

#include "experiment.hh"
#include "bench_json.hh"

using namespace anic;
using namespace anic::bench;

namespace {

void
run(HttpVariant v, int connections, uint64_t fileKib)
{
    auto ex = ExperimentBuilder()
                  .serverCores(4)
                  .generatorCores(12)
                  .pageCache()
                  .httpVariant(v)
                  .files(64, fileKib << 10)
                  .connections(connections)
                  .build();
    app::MacroWorld &w = ex->world();

    app::HttpServer server(w.server, 443, *w.storage, ex->httpServerCfg());
    app::HttpClientConfig ccfg = ex->httpClientCfg();
    ccfg.verifyContent = false;
    app::HttpClient client(w.generator, app::MacroWorld::kGenIp,
                           app::MacroWorld::kSrvIp, 443, w.files, ccfg);
    client.start();

    ex->warm(15 * sim::kMillisecond);
    sim::Tick window = 25 * sim::kMillisecond;
    double busy = ex->measure(
        window, [&] { client.measureStart(); },
        [&] { client.measureStop(); });

    std::printf("%-12s %10.2f Gbps %10.0f req/s %8.2f busy cores\n",
                variantName(v), client.bodyMeter().gbps(),
                static_cast<double>(client.windowResponses()) /
                    sim::ticksToSeconds(window),
                busy);
}

} // namespace

int
main(int argc, char **argv)
{
    int connections = argc > 1 ? std::atoi(argv[1]) : 256;
    uint64_t file_kib = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

    std::printf("https file server: %d connections, %llu KiB files, "
                "4 server cores, 100 Gbps\n\n",
                connections, (unsigned long long)file_kib);
    for (HttpVariant v : {HttpVariant::Http, HttpVariant::Https,
                          HttpVariant::Offload, HttpVariant::OffloadZc}) {
        run(v, connections, file_kib);
    }
    anic::bench::emitRegistrySnapshot("https_server");
    return 0;
}
