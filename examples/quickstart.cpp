/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * Builds two hosts connected back-to-back by a lossy 100 Gbps link,
 * opens a TLS connection with the autonomous NIC offload enabled on
 * both sides (transmit crypto at the client NIC, receive crypto at
 * the server NIC), streams 8 MiB of data, and prints what the NIC
 * and the resynchronization machinery did.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "experiment.hh"
#include "bench_json.hh"

using namespace anic;

int
main()
{
    // 1. A world: client host "generator", server host "server",
    //    connected by a link with 1% packet loss toward the server.
    net::Link::Config link;
    link.dir[0].lossRate = 0.01;
    auto ex = bench::ExperimentBuilder()
                  .pageCache() // no storage needed here
                  .link(link)
                  .build();
    app::MacroWorld &w = ex->world();

    // 2. Server: accept one TLS connection with rx offload and verify
    //    the received plaintext.
    constexpr uint64_t kSecret = 42;   // stands in for the handshake
    constexpr uint64_t kDataSeed = 7;  // deterministic payload
    constexpr uint64_t kTotal = 8 << 20;

    std::unique_ptr<tls::TlsSocket> serverSock;
    uint64_t received = 0;
    bool corrupt = false;
    w.server.stack().listen(443, w.server.tcpConfig(),
                            [&](tcp::TcpConnection &c) {
        tls::TlsConfig scfg;
        scfg.rxOffload = true; // NIC decrypts + verifies in-sequence
        serverSock = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kSecret, false), scfg);
        serverSock->enableOffload(w.server.device()); // l5o_create
        serverSock->setOnReadable([&] {
            while (serverSock->readable()) {
                tcp::RxSegment seg = serverSock->pop();
                if (!checkDeterministic(seg.data, kDataSeed, seg.streamOff))
                    corrupt = true;
                received += seg.data.size();
            }
        });
    });

    // 3. Client: connect, enable tx offload (the NIC encrypts and
    //    fills ICVs; retransmissions recover context via
    //    l5o_get_tx_msgstate), and push the stream.
    std::unique_ptr<tls::TlsSocket> clientSock;
    uint64_t sent = 0;
    tcp::TcpConnection &conn = w.generator.stack().connect(
        app::MacroWorld::kGenIp, app::MacroWorld::kSrvIp, 443,
        w.generator.tcpConfig());
    conn.setOnConnected([&] {
        tls::TlsConfig ccfg;
        ccfg.txOffload = true;
        clientSock = std::make_unique<tls::TlsSocket>(
            conn, tls::SessionKeys::derive(kSecret, true), ccfg);
        clientSock->enableOffload(w.generator.device());
        auto pump = [&] {
            while (sent < kTotal) {
                size_t n = std::min<uint64_t>(kTotal - sent, 65536);
                Bytes chunk(n);
                fillDeterministic(chunk, kDataSeed, sent);
                size_t acc = clientSock->send(chunk);
                sent += acc;
                if (acc < n)
                    break;
            }
        };
        clientSock->setOnWritable(pump);
        pump();
    });

    // 4. Run the simulation until the stream completes.
    w.sim.runUntil(5 * sim::kSecond);

    std::printf("delivered %llu / %llu bytes, %s\n",
                (unsigned long long)received, (unsigned long long)kTotal,
                corrupt ? "CORRUPT" : "intact and authenticated");

    const tls::TlsStats &rx = serverSock->stats();
    std::printf("server records: %llu total, %llu fully offloaded, "
                "%llu partial, %llu software\n",
                (unsigned long long)rx.recordsRx,
                (unsigned long long)rx.rxFullyOffloaded,
                (unsigned long long)rx.rxPartiallyOffloaded,
                (unsigned long long)rx.rxNotOffloaded);

    const nic::FsmStats *fsm = serverSock->rxFsmStats();
    std::printf("NIC resync: %llu speculations, %llu confirmed, "
                "%llu mid-record resumes\n",
                (unsigned long long)fsm->resyncRequests,
                (unsigned long long)fsm->resyncConfirmed,
                (unsigned long long)fsm->midMsgResumes);
    std::printf("client NIC: %llu packets encrypted inline, %llu tx "
                "context recoveries\n",
                (unsigned long long)w.generator.nicDev().stats().txOffloadedPkts,
                (unsigned long long)w.generator.nicDev().stats().txResyncs);
    anic::bench::emitRegistrySnapshot("quickstart");
    return corrupt || received != kTotal ? 1 : 0;
}
