/**
 * @file
 * Example: a Redis-on-Flash-style key-value store whose values live
 * on a remote drive reached over NVMe-TCP *inside TLS*, with the
 * combined NVMe-TLS offload (§5.3): the NIC parses TLS, decrypts,
 * then parses NVMe-TCP inside the plaintext, verifies data digests
 * and places payloads straight into block buffers.
 *
 *   $ ./secure_kv [value_kib] [connections]
 */

#include <cstdio>
#include <cstdlib>

#include "experiment.hh"
#include "bench_json.hh"

using namespace anic;
using namespace anic::bench;

namespace {

void
run(bool offload, uint64_t valueKib, int connections)
{
    StorageVariant sv;
    sv.tls = true; // NVMe over TLS
    sv.offload = offload;
    sv.tlsOffload = offload;
    auto ex = ExperimentBuilder()
                  .serverCores(2)
                  .generatorCores(12)
                  .remoteStorage(sv)
                  .kvOffload(offload)
                  .files(128, valueKib << 10)
                  .connections(connections)
                  .build();
    app::MacroWorld &w = ex->world();

    app::KvServer server(w.server, 6379, *w.storage, ex->kvServerCfg());
    app::KvClientConfig ccfg = ex->kvClientCfg();
    ccfg.verifyContent = true;
    app::KvClient client(w.generator, app::MacroWorld::kGenIp,
                         app::MacroWorld::kSrvIp, 6379, w.files, ccfg);
    client.start();

    ex->warm(15 * sim::kMillisecond);
    sim::Tick window = 30 * sim::kMillisecond;
    double busy = ex->measure(
        window, [&] { client.measureStart(); },
        [&] { client.measureStop(); });

    uint64_t placed = 0;
    uint64_t skipped = 0;
    for (int i = 0; i < w.server.coreCount(); i++) {
        placed += w.storage->queue(i)->stats().bytesPlaced;
        skipped += w.storage->queue(i)->stats().crcSkipped;
    }
    std::printf("%-9s %8.2f Gbps %8.0f gets/s %6.2f busy cores | "
                "%llu corruptions | NIC placed %.1f MiB, crc skipped "
                "%llu capsules\n",
                offload ? "offload" : "software", client.meter().gbps(),
                static_cast<double>(client.windowResponses()) /
                    sim::ticksToSeconds(window),
                busy, (unsigned long long)client.stats().corruptions,
                static_cast<double>(placed) / (1 << 20),
                (unsigned long long)skipped);
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t value_kib = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    int connections = argc > 2 ? std::atoi(argv[2]) : 16;
    std::printf("secure KV store: %llu KiB values on a TLS-wrapped remote "
                "drive, %d client connections\n\n",
                (unsigned long long)value_kib, connections);
    run(false, value_kib, connections);
    run(true, value_kib, connections);
    anic::bench::emitRegistrySnapshot("secure_kv");
    return 0;
}
