/**
 * @file
 * Unit tests for the autonomous-offload StreamFsm using a mock L5P:
 * 8-byte header (2-byte magic + 4-byte length), XOR-0x55 "transform"
 * standing in for decryption. Exercises the scenarios of Figure 8:
 * retransmission bypass, data reordering, header reordering with
 * speculative search/track/confirm, plus false-positive handling and
 * mid-message resume.
 */

#include <gtest/gtest.h>

#include "nic/stream_fsm.hh"
#include "util/bytes.hh"

namespace anic::nic {
namespace {

class MockEngine : public L5Engine
{
  public:
    static constexpr size_t kHdr = 8;
    static constexpr uint8_t kMagic0 = 0xa5;
    static constexpr uint8_t kMagic1 = 0x5a;

    bool midResume = false;

    struct Completion
    {
        uint64_t idx;
        bool covered;
    };
    std::vector<Completion> completions;
    std::vector<uint64_t> starts;
    uint64_t aborts = 0;
    uint64_t resumes = 0;
    uint64_t lastResumeIdx = 0;
    uint64_t lastResumeOff = 0;
    uint64_t bytesTransformed = 0;
    uint64_t curIdx = 0;

    net::L5Kind kind() const override { return net::L5Kind::None; }
    size_t headerSize() const override { return kHdr; }

    std::optional<MsgInfo>
    parseHeader(ByteView h) const override
    {
        if (h[0] != kMagic0 || h[1] != kMagic1)
            return std::nullopt;
        uint32_t len = getBe32(h.data() + 2);
        if (len < kHdr || len > (1u << 20))
            return std::nullopt;
        return MsgInfo{len};
    }

    bool resumeMidMessage() const override { return midResume; }

    void
    onMsgStart(uint64_t idx, ByteView hdr) override
    {
        ASSERT_EQ(hdr.size(), kHdr);
        curIdx = idx;
        starts.push_back(idx);
    }

    void
    onMsgData(uint64_t off, ByteSpan d, bool dryRun, PacketResult &res) override
    {
        ASSERT_GE(off, kHdr); // body only
        if (!dryRun) {
            for (auto &b : d)
                b ^= 0x55;
            bytesTransformed += d.size();
            res.bytesTransformed += d.size();
        }
    }

    void
    onMsgEnd(bool covered, PacketResult &) override
    {
        completions.push_back({curIdx, covered});
    }

    void
    onMsgResume(uint64_t idx, ByteView hdr, uint64_t off) override
    {
        ASSERT_EQ(hdr.size(), kHdr);
        curIdx = idx;
        resumes++;
        lastResumeIdx = idx;
        lastResumeOff = off;
    }

    void onMsgAbort() override { aborts++; }
};

/** Builds a stream of @p count messages, each @p msgLen bytes. */
Bytes
buildStream(int count, uint32_t msgLen, uint8_t bodyByte = 0x11)
{
    Bytes s;
    for (int i = 0; i < count; i++) {
        size_t base = s.size();
        s.resize(base + msgLen, bodyByte);
        s[base] = MockEngine::kMagic0;
        s[base + 1] = MockEngine::kMagic1;
        putBe32(s.data() + base + 2, msgLen);
        putBe16(s.data() + base + 6, static_cast<uint16_t>(i));
    }
    return s;
}

struct Harness
{
    MockEngine engine;
    StreamFsm fsm;
    std::vector<std::pair<uint64_t, uint64_t>> resyncReqs; // (id, pos)

    Harness()
        : fsm(engine, [this](uint64_t id, uint64_t pos) {
              resyncReqs.emplace_back(id, pos);
          })
    {
        fsm.reset(0, 0);
    }

    /** Feeds stream[pos, pos+len) as one packet; returns processed. */
    bool
    feed(const Bytes &stream, uint64_t pos, size_t len, Bytes &wire)
    {
        // wire accumulates what the host sees (post-NIC bytes).
        Bytes chunk(stream.begin() + pos, stream.begin() + pos + len);
        PacketResult res;
        bool processed = fsm.segment(pos, chunk, res);
        std::copy(chunk.begin(), chunk.end(), wire.begin() + pos);
        return processed;
    }
};

bool
bodyTransformed(const Bytes &wire, const Bytes &orig, uint64_t msgStart,
                uint32_t msgLen)
{
    for (uint64_t i = msgStart + MockEngine::kHdr; i < msgStart + msgLen; i++) {
        if (wire[i] != (orig[i] ^ 0x55))
            return false;
    }
    return true;
}

TEST(StreamFsm, InSequenceProcessesEverything)
{
    Harness h;
    Bytes stream = buildStream(10, 250);
    Bytes wire(stream.size());

    // Odd packet sizes so headers straddle packets.
    uint64_t pos = 0;
    size_t sizes[] = {97, 131, 240, 55, 1000};
    int i = 0;
    while (pos < stream.size()) {
        size_t n = std::min<size_t>(sizes[i++ % 5], stream.size() - pos);
        EXPECT_TRUE(h.feed(stream, pos, n, wire));
        pos += n;
    }

    EXPECT_EQ(h.engine.completions.size(), 10u);
    for (int k = 0; k < 10; k++) {
        EXPECT_EQ(h.engine.completions[k].idx, static_cast<uint64_t>(k));
        EXPECT_TRUE(h.engine.completions[k].covered);
        EXPECT_TRUE(bodyTransformed(wire, stream, k * 250u, 250));
    }
    EXPECT_EQ(h.fsm.stats().msgsCovered, 10u);
    EXPECT_TRUE(h.resyncReqs.empty());
}

TEST(StreamFsm, RetransmissionBypassesWithoutStateChange)
{
    Harness h;
    Bytes stream = buildStream(4, 250);
    Bytes wire(stream.size());

    EXPECT_TRUE(h.feed(stream, 0, 100, wire));
    EXPECT_TRUE(h.feed(stream, 100, 100, wire));
    // Figure 8a: second arrival of an old packet is bypassed.
    EXPECT_FALSE(h.feed(stream, 0, 100, wire));
    EXPECT_TRUE(h.feed(stream, 200, 300, wire));
    EXPECT_TRUE(h.feed(stream, 500, 500, wire));

    EXPECT_EQ(h.fsm.stats().msgsCovered, 4u);
    EXPECT_EQ(h.fsm.stats().bypassedSpans, 1u);
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);
}

TEST(StreamFsm, LossWithinMessageSkipsToBoundary)
{
    Harness h;
    Bytes stream = buildStream(6, 250);
    Bytes wire(stream.size());

    // Packets of 100 bytes; drop [100,200) (inside message 0).
    EXPECT_TRUE(h.feed(stream, 0, 100, wire));
    EXPECT_FALSE(h.feed(stream, 200, 100, wire)); // gap -> bypass
    // Message 1 starts at 250 (inside packet [200,300)): offload can
    // only resume at a packet-aligned boundary; messages 1 continues
    // to be skipped until one starts exactly at a packet start.
    EXPECT_FALSE(h.feed(stream, 300, 100, wire));
    EXPECT_FALSE(h.feed(stream, 400, 100, wire));
    // Message 2 starts at 500 == packet start: full resume.
    EXPECT_TRUE(h.feed(stream, 500, 1000, wire));

    // Messages 2..5 completed covered; 0 aborted, 1 skipped.
    ASSERT_EQ(h.engine.completions.size(), 4u);
    EXPECT_EQ(h.engine.completions[0].idx, 2u);
    EXPECT_TRUE(h.engine.completions[0].covered);
    EXPECT_EQ(h.engine.aborts, 1u);
    EXPECT_TRUE(bodyTransformed(wire, stream, 500, 250));
    EXPECT_FALSE(bodyTransformed(wire, stream, 250, 250));
    EXPECT_TRUE(h.resyncReqs.empty()); // framing never lost
}

TEST(StreamFsm, MidMessageResumeForPlacementEngines)
{
    Harness h;
    h.engine.midResume = true;
    Bytes stream = buildStream(2, 1000);
    Bytes wire(stream.size());

    EXPECT_TRUE(h.feed(stream, 0, 100, wire));
    // Drop [100,200); next packet bypassed but placement resumes at
    // the following packet.
    EXPECT_FALSE(h.feed(stream, 200, 100, wire));
    EXPECT_TRUE(h.feed(stream, 300, 100, wire)); // resumed mid-message
    EXPECT_EQ(h.engine.resumes, 1u);
    EXPECT_EQ(h.engine.lastResumeIdx, 0u);
    EXPECT_EQ(h.engine.lastResumeOff, 300u);
    EXPECT_TRUE(h.feed(stream, 400, 600, wire));  // rest of m0
    EXPECT_TRUE(h.feed(stream, 1000, 1000, wire)); // all of m1

    // Message 0 completes uncovered; message 1 covered.
    ASSERT_EQ(h.engine.completions.size(), 2u);
    EXPECT_FALSE(h.engine.completions[0].covered);
    EXPECT_TRUE(h.engine.completions[1].covered);
    EXPECT_EQ(h.fsm.stats().midMsgResumes, 1u);
}

TEST(StreamFsm, HeaderReorderingTriggersSearchTrackConfirm)
{
    // Figure 8c: the packet with a message header goes missing; the
    // NIC searches, speculates on a later header, tracks subsequent
    // headers, and resumes after software confirmation.
    Harness h;
    Bytes stream = buildStream(10, 250);
    Bytes wire(stream.size());

    // Feed [0,500) in packets of 100 -> m0, m1 covered.
    for (int p = 0; p < 5; p++)
        EXPECT_TRUE(h.feed(stream, p * 100, 100, wire));
    // Drop [500,600) which held m2's header (at 500).
    EXPECT_FALSE(h.feed(stream, 600, 100, wire)); // search, no magic
    EXPECT_EQ(h.fsm.state(), FsmState::Searching);
    EXPECT_FALSE(h.feed(stream, 700, 100, wire)); // contains m3 hdr @750
    EXPECT_EQ(h.fsm.state(), FsmState::Tracking);
    ASSERT_EQ(h.resyncReqs.size(), 1u);
    EXPECT_EQ(h.resyncReqs[0].second, 750u);

    // Keep tracking: header at 1000 (m4) verifies the chain.
    EXPECT_FALSE(h.feed(stream, 800, 100, wire));
    EXPECT_FALSE(h.feed(stream, 900, 100, wire));
    EXPECT_FALSE(h.feed(stream, 1000, 100, wire));
    EXPECT_EQ(h.fsm.state(), FsmState::Tracking);

    // Software confirms: message at 750 is m3.
    h.fsm.confirm(h.resyncReqs[0].first, true, 3);
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);
    EXPECT_FALSE(h.fsm.transformsActive()); // still skipping

    // m5 spans [1250,1500); m6 starts at 1500 == packet start after
    // feeding [1100,1500) in 100-byte packets.
    EXPECT_FALSE(h.feed(stream, 1100, 100, wire));
    EXPECT_FALSE(h.feed(stream, 1200, 100, wire));
    EXPECT_FALSE(h.feed(stream, 1300, 100, wire));
    EXPECT_FALSE(h.feed(stream, 1400, 100, wire));
    EXPECT_TRUE(h.feed(stream, 1500, 1000, wire)); // m6.. resume!

    ASSERT_GE(h.engine.completions.size(), 3u);
    // First two completions are m0, m1; next is m6 with correct index.
    EXPECT_EQ(h.engine.completions[2].idx, 6u);
    EXPECT_TRUE(h.engine.completions[2].covered);
    EXPECT_TRUE(bodyTransformed(wire, stream, 1500, 250));
    EXPECT_FALSE(bodyTransformed(wire, stream, 1250, 250));
    EXPECT_EQ(h.fsm.stats().resyncConfirmed, 1u);
}

TEST(StreamFsm, TraceRingRecordsLossResyncTransitions)
{
    // Acceptance: drive loss + resync and check the trace ring holds
    // the searching -> tracking -> offloading walk with monotonic
    // timestamps.
    Harness h;
    sim::TraceRing ring(64);
    ring.enable();
    sim::Tick clock = 0;
    FsmHooks hooks;
    hooks.now = [&clock] { return clock; };
    hooks.trace = &ring;
    hooks.traceId = 7;
    hooks.name = "test.fsm";
    h.fsm.setHooks(std::move(hooks));
    h.fsm.reset(0, 0);

    Bytes stream = buildStream(10, 250);
    Bytes wire(stream.size());
    for (int p = 0; p < 5; p++) {
        clock += sim::kNanosecond;
        EXPECT_TRUE(h.feed(stream, p * 100, 100, wire));
    }
    clock += sim::kNanosecond;
    EXPECT_FALSE(h.feed(stream, 600, 100, wire)); // loss -> Searching
    clock += sim::kNanosecond;
    EXPECT_FALSE(h.feed(stream, 700, 100, wire)); // m3 hdr -> Tracking
    ASSERT_EQ(h.resyncReqs.size(), 1u);
    clock += sim::kNanosecond;
    h.fsm.confirm(h.resyncReqs[0].first, true, 3); // -> Offloading
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);

    std::vector<sim::TraceEvent> ev = ring.events();
    for (size_t i = 1; i < ev.size(); i++)
        EXPECT_GE(ev[i].ts, ev[i - 1].ts); // oldest-first, monotonic

    std::vector<sim::TraceEvent> trans;
    bool sawRequest = false, sawConfirm = false;
    for (const sim::TraceEvent &e : ev) {
        if (e.kind == sim::TraceKind::FsmTransition)
            trans.push_back(e);
        sawRequest |= e.kind == sim::TraceKind::ResyncRequest;
        sawConfirm |= e.kind == sim::TraceKind::ResyncConfirmed;
    }
    EXPECT_TRUE(sawRequest);
    EXPECT_TRUE(sawConfirm);
    ASSERT_GE(trans.size(), 3u);
    auto from = [](const sim::TraceEvent &e) {
        return static_cast<FsmState>(e.a);
    };
    auto to = [](const sim::TraceEvent &e) {
        return static_cast<FsmState>(e.b);
    };
    const sim::TraceEvent &t0 = trans[trans.size() - 3];
    const sim::TraceEvent &t1 = trans[trans.size() - 2];
    const sim::TraceEvent &t2 = trans[trans.size() - 1];
    EXPECT_EQ(from(t0), FsmState::Offloading);
    EXPECT_EQ(to(t0), FsmState::Searching);
    EXPECT_EQ(from(t1), FsmState::Searching);
    EXPECT_EQ(to(t1), FsmState::Tracking);
    EXPECT_EQ(from(t2), FsmState::Tracking);
    EXPECT_EQ(to(t2), FsmState::Offloading);
    EXPECT_LT(t0.ts, t1.ts);
    EXPECT_LT(t1.ts, t2.ts);
    for (const sim::TraceEvent &t : trans) {
        EXPECT_EQ(t.id, 7u);
        EXPECT_EQ(t.comp, "test.fsm");
    }
}

TEST(StreamFsm, RefutedSpeculationKeepsSearching)
{
    Harness h;
    Bytes stream = buildStream(10, 250);
    Bytes wire(stream.size());

    for (int p = 0; p < 5; p++)
        EXPECT_TRUE(h.feed(stream, p * 100, 100, wire));
    EXPECT_FALSE(h.feed(stream, 600, 200, wire)); // m3 hdr @750 missed? no:
    // [600,800) contains m3 hdr at 750 -> candidate.
    ASSERT_EQ(h.resyncReqs.size(), 1u);
    h.fsm.confirm(h.resyncReqs[0].first, false, 0); // software refutes
    EXPECT_EQ(h.fsm.state(), FsmState::Searching);

    // Next header at 1000 becomes a new candidate.
    EXPECT_FALSE(h.feed(stream, 800, 300, wire));
    ASSERT_EQ(h.resyncReqs.size(), 2u);
    EXPECT_EQ(h.resyncReqs[1].second, 1000u);
    h.fsm.confirm(h.resyncReqs[1].first, true, 4);

    // m5 starts at 1250; feed [1100,1250) then aligned packet at 1250.
    EXPECT_FALSE(h.feed(stream, 1100, 150, wire));
    EXPECT_TRUE(h.feed(stream, 1250, 250, wire));
    ASSERT_EQ(h.engine.completions.size(), 3u);
    EXPECT_EQ(h.engine.completions[2].idx, 5u);
}

TEST(StreamFsm, FalsePositiveMagicInPayloadIsRejectedByTracking)
{
    Harness h;
    // Craft message bodies that contain a fake header whose length
    // field points into garbage.
    Bytes stream = buildStream(8, 250);
    // Plant a fake header inside m2's body at position 600.
    stream[600] = MockEngine::kMagic0;
    stream[601] = MockEngine::kMagic1;
    putBe32(stream.data() + 602, 100); // fake msg of 100 bytes -> 700
    // Position 700 (inside m2) holds body bytes, not a header, so
    // tracking must reject the speculation.
    Bytes wire(stream.size());

    for (int p = 0; p < 5; p++)
        EXPECT_TRUE(h.feed(stream, p * 100, 100, wire));
    // Drop [500,600) (m2 header). Search starts; at [600,700) the fake
    // magic matches -> candidate at 600, tracking expects hdr at 700.
    EXPECT_FALSE(h.feed(stream, 600, 100, wire));
    ASSERT_EQ(h.resyncReqs.size(), 1u);
    EXPECT_EQ(h.resyncReqs[0].second, 600u);
    EXPECT_EQ(h.fsm.state(), FsmState::Tracking);

    // [700,800): no magic at 700 -> tracking fails -> search resumes
    // and finds the true m3 header at 750.
    EXPECT_FALSE(h.feed(stream, 700, 100, wire));
    EXPECT_EQ(h.fsm.stats().trackFailures, 1u);
    ASSERT_EQ(h.resyncReqs.size(), 2u);
    EXPECT_EQ(h.resyncReqs[1].second, 750u);

    // Stale confirmation for the first request is ignored.
    h.fsm.confirm(h.resyncReqs[0].first, true, 99);
    EXPECT_EQ(h.fsm.state(), FsmState::Tracking);

    h.fsm.confirm(h.resyncReqs[1].first, true, 3);
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);

    // m4 at 1000: feed to 1000 then aligned packet.
    EXPECT_FALSE(h.feed(stream, 800, 200, wire));
    EXPECT_TRUE(h.feed(stream, 1000, 250, wire));
    ASSERT_EQ(h.engine.completions.size(), 3u);
    EXPECT_EQ(h.engine.completions[2].idx, 4u);
}

TEST(StreamFsm, MagicSplitAcrossPacketsIsFoundWhileSearching)
{
    Harness h;
    Bytes stream = buildStream(6, 250);
    Bytes wire(stream.size());

    for (int p = 0; p < 5; p++)
        EXPECT_TRUE(h.feed(stream, p * 100, 100, wire));
    // Drop [500,600); m3 header at 750. Feed [600,753) and [753,900):
    // the header is split 3/5 across the two packets.
    EXPECT_FALSE(h.feed(stream, 600, 153, wire));
    EXPECT_EQ(h.fsm.state(), FsmState::Searching);
    EXPECT_FALSE(h.feed(stream, 753, 147, wire));
    ASSERT_EQ(h.resyncReqs.size(), 1u);
    EXPECT_EQ(h.resyncReqs[0].second, 750u);
}

TEST(StreamFsm, PositionLostRequiresFreshSearch)
{
    Harness h;
    Bytes stream = buildStream(6, 250);
    Bytes wire(stream.size());
    EXPECT_TRUE(h.feed(stream, 0, 250, wire));
    h.fsm.positionLost();
    EXPECT_EQ(h.fsm.state(), FsmState::Searching);
    // Continue at an arbitrary position; the next full header (m2 at
    // 500) becomes a candidate even without continuity.
    EXPECT_FALSE(h.feed(stream, 450, 150, wire));
    ASSERT_EQ(h.resyncReqs.size(), 1u);
    EXPECT_EQ(h.resyncReqs[0].second, 500u);
}

TEST(StreamFsm, TinyMessagesManyPerPacket)
{
    Harness h;
    Bytes stream = buildStream(100, 20); // 20-byte messages
    Bytes wire(stream.size());
    EXPECT_TRUE(h.feed(stream, 0, 1000, wire));
    EXPECT_TRUE(h.feed(stream, 1000, 1000, wire));
    EXPECT_EQ(h.engine.completions.size(), 100u);
    EXPECT_EQ(h.fsm.stats().msgsCovered, 100u);
}

TEST(StreamFsm, GapLandingOnKnownBoundaryAvoidsSearch)
{
    // The tail of m0 is lost but m0's header (and thus the boundary
    // at 250) is known: the packet arriving at exactly the boundary
    // is dry-run-framed (per the paper, offload resumes for the
    // packet *following* an OoS packet), and the next aligned packet
    // resumes full offload with the correct message index -- all
    // without any software resync round-trip.
    Harness h;
    Bytes stream = buildStream(4, 250);
    Bytes wire(stream.size());
    EXPECT_TRUE(h.feed(stream, 0, 100, wire));
    // Drop [100,250); m1 arrives aligned at the known boundary 250.
    EXPECT_FALSE(h.feed(stream, 250, 250, wire)); // OoS pkt: dry-run
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);
    EXPECT_TRUE(h.resyncReqs.empty());
    EXPECT_TRUE(h.feed(stream, 500, 500, wire)); // m2, m3 full offload
    ASSERT_EQ(h.engine.completions.size(), 2u);
    EXPECT_EQ(h.engine.completions[0].idx, 2u);
    EXPECT_TRUE(h.engine.completions[0].covered);
    EXPECT_TRUE(bodyTransformed(wire, stream, 500, 250));
    EXPECT_FALSE(bodyTransformed(wire, stream, 250, 250));
}

} // namespace
} // namespace anic::nic
