/**
 * @file
 * TLS layer tests: record codec, software path, NIC tx/rx offload
 * end-to-end over the full NIC + TCP stack, loss/reorder resilience,
 * tx context recovery, rx resynchronization, sendfile variants, and
 * context-cache pressure.
 */

#include <gtest/gtest.h>

#include "support/offload_world.hh"
#include "tls/ktls.hh"

namespace anic {
namespace {

using testing::OffloadWorld;
using tls::RecordHeader;
using tls::SessionKeys;
using tls::TlsConfig;
using tls::TlsSocket;

// ----------------------------------------------------------- codec

TEST(TlsRecord, HeaderRoundTrip)
{
    RecordHeader h;
    h.length = 12345;
    uint8_t buf[5];
    h.encode(buf);
    auto back = RecordHeader::parse(ByteView(buf, 5));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->length, 12345);
    EXPECT_EQ(back->wireLen(), 5u + 12345u);
    EXPECT_EQ(back->plaintextLen(), 12345u - 16u);
}

TEST(TlsRecord, MagicPatternRejectsGarbage)
{
    uint8_t buf[5] = {0x17, 0x03, 0x03, 0x00, 0x40};
    EXPECT_TRUE(RecordHeader::parse(ByteView(buf, 5)).has_value());
    buf[0] = 0x42; // bad type
    EXPECT_FALSE(RecordHeader::parse(ByteView(buf, 5)).has_value());
    buf[0] = 0x17;
    buf[1] = 0x02; // bad version
    EXPECT_FALSE(RecordHeader::parse(ByteView(buf, 5)).has_value());
    buf[1] = 0x03;
    putBe16(buf + 3, 0xffff); // oversized
    EXPECT_FALSE(RecordHeader::parse(ByteView(buf, 5)).has_value());
    putBe16(buf + 3, 8); // undersized (< tag)
    EXPECT_FALSE(RecordHeader::parse(ByteView(buf, 5)).has_value());
}

TEST(TlsRecord, NonceDerivation)
{
    Bytes iv(12, 0xaa);
    auto n0 = tls::recordNonce(iv, 0);
    auto n1 = tls::recordNonce(iv, 1);
    EXPECT_NE(0, std::memcmp(n0.data(), n1.data(), 12));
    // Seq 0 leaves the IV untouched.
    EXPECT_EQ(0, std::memcmp(n0.data(), iv.data(), 12));
}

TEST(TlsRecord, SessionKeysMirror)
{
    SessionKeys c = SessionKeys::derive(42, true);
    SessionKeys s = SessionKeys::derive(42, false);
    EXPECT_EQ(c.tx.key, s.rx.key);
    EXPECT_EQ(c.rx.key, s.tx.key);
    EXPECT_EQ(c.tx.staticIv, s.rx.staticIv);
    SessionKeys other = SessionKeys::derive(43, true);
    EXPECT_NE(c.tx.key, other.tx.key);
}

// ------------------------------------------------- test application

/** Streams deterministic plaintext over a TlsSocket. */
struct TlsPipe
{
    static constexpr uint16_t kPort = 443;
    static constexpr uint64_t kSecret = 0xbeef;
    static constexpr uint64_t kSeed = 1234;

    OffloadWorld &w;
    TlsConfig clientCfg;
    TlsConfig serverCfg;
    uint64_t totalBytes;

    std::unique_ptr<TlsSocket> client;
    std::unique_ptr<TlsSocket> server;
    uint64_t sent = 0;
    uint64_t received = 0;
    bool corrupt = false;

    TlsPipe(OffloadWorld &world, TlsConfig ccfg, TlsConfig scfg,
            uint64_t bytes)
        : w(world), clientCfg(ccfg), serverCfg(scfg), totalBytes(bytes)
    {
        w.b.stack().listen(kPort, w.b.tcpConfig(),
                           [this](tcp::TcpConnection &c) {
                               server = std::make_unique<TlsSocket>(
                                   c, SessionKeys::derive(kSecret, false),
                                   serverCfg);
                               server->enableOffload(w.b.device());
                               attachReceiver();
                           });

        tcp::TcpConnection &c = w.a.stack().connect(
            OffloadWorld::kIpA, OffloadWorld::kIpB, kPort, w.a.tcpConfig());
        c.setOnConnected([this, &c] {
            client = std::make_unique<TlsSocket>(
                c, SessionKeys::derive(kSecret, true), clientCfg);
            client->enableOffload(w.a.device());
            attachSender();
            pump();
        });
    }

    void
    attachSender()
    {
        client->setOnWritable([this] { pump(); });
    }

    void
    pump()
    {
        while (sent < totalBytes && client->sendSpace() > 0) {
            size_t n = std::min<uint64_t>(totalBytes - sent, 65536);
            Bytes chunk(n);
            fillDeterministic(chunk, kSeed, sent);
            size_t acc = client->send(chunk);
            sent += acc;
            if (acc < n)
                break;
        }
    }

    void
    attachReceiver()
    {
        server->setOnReadable([this] {
            while (server->readable()) {
                tcp::RxSegment seg = server->pop();
                if (!checkDeterministic(seg.data, kSeed, seg.streamOff))
                    corrupt = true;
                received += seg.data.size();
            }
        });
    }
};

// -------------------------------------------------------------- tests

TEST(TlsSoftware, CleanLinkDeliversPlaintext)
{
    OffloadWorld w;
    TlsPipe p(w, {}, {}, 1 << 20);
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(p.received, 1u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_EQ(p.server->stats().rxNotOffloaded, p.server->stats().recordsRx);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
}

TEST(TlsSoftware, LossyLinkStillAuthenticates)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.02;
    lc.dir[1].lossRate = 0.01;
    lc.seed = 7;
    OffloadWorld w(lc);
    TlsPipe p(w, {}, {}, 1 << 20);
    w.sim.runUntil(3 * sim::kSecond);
    EXPECT_EQ(p.received, 1u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
}

TEST(TlsTxOffload, NicEncryptsValidRecords)
{
    OffloadWorld w;
    TlsConfig ccfg;
    ccfg.txOffload = true;
    TlsPipe p(w, ccfg, {}, 1 << 20);
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(p.received, 1u << 20);
    EXPECT_FALSE(p.corrupt);
    // The software receiver decrypts everything the NIC encrypted.
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
    EXPECT_GT(w.a.nicDev().stats().txOffloadedPkts, 0u);
    EXPECT_EQ(w.a.nicDev().stats().txResyncs, 0u);
}

TEST(TlsTxOffload, RetransmissionRecoversContext)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.02;
    lc.seed = 9;
    OffloadWorld w(lc);
    TlsConfig ccfg;
    ccfg.txOffload = true;
    TlsPipe p(w, ccfg, {}, 1 << 20);
    w.sim.runUntil(3 * sim::kSecond);
    EXPECT_EQ(p.received, 1u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
    // Retransmissions forced tx context recovery with PCIe re-reads.
    EXPECT_GT(w.a.nicDev().stats().txResyncs, 0u);
    EXPECT_GT(w.a.nicDev().pcie().ctxRecoveryBytes, 0u);
    EXPECT_GT(p.client->stats().txMsgStateUpcalls, 0u);
}

TEST(TlsRxOffload, CleanLinkFullyOffloadsEverything)
{
    OffloadWorld w;
    TlsConfig scfg;
    scfg.rxOffload = true;
    TlsPipe p(w, {}, scfg, 1 << 20);
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(p.received, 1u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_GT(p.server->stats().recordsRx, 0u);
    EXPECT_EQ(p.server->stats().rxFullyOffloaded,
              p.server->stats().recordsRx);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
    EXPECT_GT(w.b.nicDev().stats().rxOffloadedPkts, 0u);
}

TEST(TlsRxOffload, LossCausesPartialsButRecovers)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.02;
    lc.seed = 13;
    OffloadWorld w(lc);
    TlsConfig scfg;
    scfg.rxOffload = true;
    TlsPipe p(w, {}, scfg, 2 << 20);
    w.sim.runUntil(5 * sim::kSecond);
    EXPECT_EQ(p.received, 2u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
    const tls::TlsStats &st = p.server->stats();
    // Loss produces partially-/un-offloaded records, but the context
    // recovery machinery keeps a solid majority of records fully
    // offloaded. The bound must hold for every ANIC_TCP_CC arm:
    // cubic keeps more bytes in flight at the same loss rate, so each
    // resync episode misses a few more records before re-locking.
    EXPECT_GT(st.rxPartiallyOffloaded + st.rxNotOffloaded, 0u);
    EXPECT_GT(st.rxFullyOffloaded, st.recordsRx / 3);
}

TEST(TlsRxOffload, ResyncRequestsAreAnsweredAndConfirmed)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.03;
    lc.seed = 21;
    OffloadWorld w(lc);
    TlsConfig scfg;
    scfg.rxOffload = true;
    TlsPipe p(w, {}, scfg, 2 << 20);
    w.sim.runUntil(5 * sim::kSecond);
    ASSERT_EQ(p.received, 2u << 20);
    const nic::FsmStats *fsm = p.server->rxFsmStats();
    ASSERT_NE(fsm, nullptr);
    if (fsm->resyncRequests > 0) {
        EXPECT_GT(fsm->resyncConfirmed, 0u);
        EXPECT_GT(p.server->stats().rxResyncRequests, 0u);
    }
    // Offloading kept working after recovery.
    EXPECT_GT(p.server->stats().rxFullyOffloaded, 0u);
}

TEST(TlsRxOffload, ReorderingDegradesGracefully)
{
    net::Link::Config lc;
    lc.dir[0].reorderRate = 0.03;
    lc.seed = 31;
    OffloadWorld w(lc);
    TlsConfig scfg;
    scfg.rxOffload = true;
    TlsPipe p(w, {}, scfg, 2 << 20);
    w.sim.runUntil(5 * sim::kSecond);
    EXPECT_EQ(p.received, 2u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
}

TEST(TlsBothOffloads, LossBothDirections)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.02;
    lc.dir[1].lossRate = 0.02;
    lc.seed = 17;
    OffloadWorld w(lc);
    TlsConfig cfg;
    cfg.txOffload = true;
    cfg.rxOffload = true;
    TlsPipe p(w, cfg, cfg, 1 << 20);
    w.sim.runUntil(5 * sim::kSecond);
    EXPECT_EQ(p.received, 1u << 20);
    EXPECT_FALSE(p.corrupt);
    EXPECT_EQ(p.server->stats().tagFailures, 0u);
}

TEST(TlsBothOffloads, SmallRecords)
{
    OffloadWorld w;
    TlsConfig cfg;
    cfg.txOffload = true;
    cfg.rxOffload = true;
    cfg.recordSize = 512; // many records per packet
    TlsPipe p(w, cfg, cfg, 256 << 10);
    w.sim.runUntil(1 * sim::kSecond);
    EXPECT_EQ(p.received, 256u << 10);
    EXPECT_FALSE(p.corrupt);
    EXPECT_GT(p.server->stats().recordsRx, 256u);
    EXPECT_EQ(p.server->stats().rxFullyOffloaded,
              p.server->stats().recordsRx);
}

TEST(TlsSendfile, AllVariantsDeliverIdenticalContent)
{
    struct Variant
    {
        bool txOffload;
        bool zc;
    };
    for (Variant v : {Variant{false, false}, Variant{true, false},
                      Variant{true, true}}) {
        OffloadWorld w;
        constexpr uint64_t kFileSeed = 777;
        constexpr uint64_t kLen = 300000;

        std::unique_ptr<TlsSocket> server;
        std::unique_ptr<TlsSocket> client;
        uint64_t received = 0;
        bool corrupt = false;
        uint64_t pushed = 0;

        w.b.stack().listen(443, {}, [&](tcp::TcpConnection &c) {
            TlsConfig scfg;
            server = std::make_unique<TlsSocket>(
                c, SessionKeys::derive(5, false), scfg);
            server->setOnReadable([&] {
                while (server->readable()) {
                    tcp::RxSegment seg = server->pop();
                    if (!checkDeterministic(seg.data, kFileSeed,
                                            seg.streamOff))
                        corrupt = true;
                    received += seg.data.size();
                }
            });
        });

        tcp::TcpConnection &c = w.a.stack().connect(
            OffloadWorld::kIpA, OffloadWorld::kIpB, 443, {});
        c.setOnConnected([&] {
            TlsConfig ccfg;
            ccfg.txOffload = v.txOffload;
            ccfg.zerocopySendfile = v.zc;
            client = std::make_unique<TlsSocket>(
                c, SessionKeys::derive(5, true), ccfg);
            client->enableOffload(w.a.device());
            auto push = [&] {
                while (pushed < kLen && client->sendSpace() > 0) {
                    size_t acc = client->sendFile(kFileSeed, pushed,
                                                  kLen - pushed);
                    if (acc == 0)
                        break;
                    pushed += acc;
                }
            };
            client->setOnWritable(push);
            push();
        });

        w.sim.runUntil(1 * sim::kSecond);
        EXPECT_EQ(received, kLen) << "variant txOffload=" << v.txOffload
                                  << " zc=" << v.zc;
        EXPECT_FALSE(corrupt);
    }
}

TEST(TlsSendfile, ZeroCopyCostsFewerCycles)
{
    double cycles[2];
    for (int zc = 0; zc < 2; zc++) {
        OffloadWorld w;
        std::unique_ptr<TlsSocket> server;
        std::unique_ptr<TlsSocket> client;
        uint64_t received = 0;
        uint64_t pushed = 0;
        constexpr uint64_t kLen = 1 << 20;

        w.b.stack().listen(443, {}, [&](tcp::TcpConnection &c) {
            server = std::make_unique<TlsSocket>(
                c, SessionKeys::derive(5, false), TlsConfig{});
            server->setOnReadable([&] {
                while (server->readable())
                    received += server->pop().data.size();
            });
        });
        tcp::TcpConnection &c = w.a.stack().connect(
            OffloadWorld::kIpA, OffloadWorld::kIpB, 443, {});
        c.setOnConnected([&] {
            TlsConfig ccfg;
            ccfg.txOffload = true;
            ccfg.zerocopySendfile = zc == 1;
            client = std::make_unique<TlsSocket>(
                c, SessionKeys::derive(5, true), ccfg);
            client->enableOffload(w.a.device());
            auto push = [&] {
                while (pushed < kLen && client->sendSpace() > 0) {
                    size_t acc =
                        client->sendFile(1, pushed, kLen - pushed);
                    if (acc == 0)
                        break;
                    pushed += acc;
                }
            };
            client->setOnWritable(push);
            push();
        });
        w.sim.runUntil(2 * sim::kSecond);
        EXPECT_EQ(received, kLen);
        cycles[zc] = w.a.core(0).totalBusyCycles();
    }
    EXPECT_LT(cycles[1], cycles[0]);
}

TEST(TlsOffload, TinyContextCacheStillCorrect)
{
    core::Node::Config small;
    small.nicCfg.ctxCacheCapacity = 3;
    OffloadWorld w({}, small, small);

    const int kConns = 8;
    constexpr uint64_t kBytes = 100000;
    std::vector<std::unique_ptr<TlsSocket>> servers;
    std::vector<std::unique_ptr<TlsSocket>> clients;
    std::vector<uint64_t> received(kConns, 0);
    std::vector<uint64_t> sent(kConns, 0);
    bool corrupt = false;

    w.b.stack().listen(443, {}, [&](tcp::TcpConnection &c) {
        size_t idx = servers.size();
        TlsConfig scfg;
        scfg.rxOffload = true;
        auto s = std::make_unique<TlsSocket>(
            c, SessionKeys::derive(100 + idx, false), scfg);
        s->enableOffload(w.b.device());
        TlsSocket *sp = s.get();
        s->setOnReadable([&, sp, idx] {
            while (sp->readable()) {
                tcp::RxSegment seg = sp->pop();
                if (!checkDeterministic(seg.data, 500 + idx, seg.streamOff))
                    corrupt = true;
                received[idx] += seg.data.size();
            }
        });
        servers.push_back(std::move(s));
    });

    for (int i = 0; i < kConns; i++) {
        tcp::TcpConnection &c = w.a.stack().connect(
            OffloadWorld::kIpA, OffloadWorld::kIpB, 443, {});
        c.setOnConnected([&, i, &c2 = c] {
            TlsConfig ccfg;
            ccfg.txOffload = true;
            auto cl = std::make_unique<TlsSocket>(
                c2, SessionKeys::derive(100 + i, true), ccfg);
            cl->enableOffload(w.a.device());
            TlsSocket *cp = cl.get();
            auto push = [&, cp, i] {
                while (sent[i] < kBytes && cp->sendSpace() > 0) {
                    size_t n = std::min<uint64_t>(kBytes - sent[i], 32768);
                    Bytes chunk(n);
                    fillDeterministic(chunk, 500 + i, sent[i]);
                    size_t acc = cp->send(chunk);
                    sent[i] += acc;
                    if (acc < n)
                        break;
                }
            };
            cp->setOnWritable(push);
            push();
            clients.push_back(std::move(cl));
        });
    }

    w.sim.runUntil(3 * sim::kSecond);
    uint64_t total = 0;
    for (int i = 0; i < kConns; i++)
        total += received[i];
    EXPECT_EQ(total, kConns * kBytes);
    EXPECT_FALSE(corrupt);
    // The 3-entry cache must have thrashed.
    EXPECT_GT(w.b.nicDev().stats().ctxCacheMisses, 8u);
    EXPECT_GT(w.b.nicDev().stats().ctxCacheEvictions, 0u);
}

} // namespace
} // namespace anic
