/**
 * @file
 * PacketPool tests: freelist recycling and capacity reuse, refcount
 * semantics (including the double-release death assert), the
 * zero-allocation steady state, and header-cache coherence across
 * recycling and in-place header rewrites.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "net/packet_pool.hh"
#include "util/rand.hh"

// The replaced global operator new below allocates with malloc, so
// pairing it with free() is correct; GCC cannot see that and warns.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace anic::net {
namespace {

// Global operator new instrumentation: counts every heap allocation
// made while g_countAllocs is set, so the steady-state loop below can
// assert the pool performs none.
bool g_countAllocs = false;
uint64_t g_allocs = 0;

} // namespace
} // namespace anic::net

void *
operator new(std::size_t n)
{
    if (anic::net::g_countAllocs)
        anic::net::g_allocs++;
    void *p = std::malloc(n);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace anic::net {
namespace {

Ipv4Header
ip4(uint32_t src, uint32_t dst)
{
    Ipv4Header ip;
    ip.src = src;
    ip.dst = dst;
    return ip;
}

TcpHeader
tcpHdr(uint16_t sp, uint16_t dp, uint32_t seq)
{
    TcpHeader t;
    t.srcPort = sp;
    t.dstPort = dp;
    t.seq = seq;
    return t;
}

TEST(PacketPool, RecyclesTheSameObjectLifo)
{
    PacketPool pool;
    PacketPtr p = pool.alloc(1500);
    Packet *raw = p.get();
    EXPECT_EQ(pool.liveCount(), 1u);
    EXPECT_EQ(pool.misses(), 1u);
    p.reset();
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.freeCount(), 1u);

    PacketPtr q = pool.alloc(100);
    EXPECT_EQ(q.get(), raw); // LIFO freelist hands the same object back
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.grows(), 0u); // 100 fits the 1500-byte capacity
    EXPECT_EQ(q->bytes.size(), 100u);
}

TEST(PacketPool, SteadyStateDoesZeroHeapAllocation)
{
    PacketPool pool;
    // Warm up: create and release enough packets at the working size.
    {
        std::vector<PacketPtr> warm;
        for (int i = 0; i < 32; i++)
            warm.push_back(pool.makeTcp(ip4(1, 2), tcpHdr(1, 2, i), 1460));
    }
    uint64_t missesAfterWarmup = pool.misses();

    g_allocs = 0;
    g_countAllocs = true;
    for (int round = 0; round < 1000; round++) {
        PacketPtr a = pool.makeTcp(ip4(1, 2), tcpHdr(1, 2, round), 1460);
        PacketPtr b = pool.alloc(512);
        a.reset();
        b.reset();
    }
    g_countAllocs = false;

    EXPECT_EQ(g_allocs, 0u) << "steady-state churn must not touch the heap";
    EXPECT_EQ(pool.misses(), missesAfterWarmup);
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(PacketPool, ChurnStressKeepsAccountingConsistent)
{
    PacketPool pool;
    Rng rng(0xfeed);
    std::vector<PacketPtr> live;
    for (int i = 0; i < 20000; i++) {
        if (live.size() < 64 && (rng.next() & 1)) {
            size_t sz = 64 + rng.next() % 4096;
            live.push_back(pool.alloc(sz));
        } else if (!live.empty()) {
            size_t idx = rng.next() % live.size();
            live[idx] = std::move(live.back());
            live.pop_back();
        }
        ASSERT_EQ(pool.liveCount(), live.size());
    }
    live.clear();
    EXPECT_EQ(pool.liveCount(), 0u);
    // Misses are bounded by the high-water mark of concurrently live
    // packets, not by the 20k churn iterations.
    EXPECT_LE(pool.misses(), 64u);
    EXPECT_GT(pool.hits(), 1000u);
}

TEST(PacketPool, RefcountSharingAndUseCount)
{
    PacketPool pool;
    PacketPtr a = pool.alloc(64);
    EXPECT_EQ(a.useCount(), 1u);
    PacketPtr b = a;
    EXPECT_EQ(a.useCount(), 2u);
    PacketPtr c = std::move(b);
    EXPECT_EQ(a.useCount(), 2u);
    EXPECT_EQ(b, nullptr);
    c.reset();
    EXPECT_EQ(a.useCount(), 1u);
    EXPECT_EQ(pool.liveCount(), 1u);
    PacketPtr &alias = a; // self-assignment must not drop the last ref
    a = alias;
    EXPECT_EQ(a.useCount(), 1u);
    a.reset();
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(PacketPoolDeathTest, DoubleReleasePanics)
{
    EXPECT_DEATH(
        {
            PacketPool pool;
            PacketPtr a = pool.alloc(64);
            // Forged second owner: the refcount is 1, so the second
            // reset releases an already-dead packet.
            PacketPtr b = PacketPtr::adopt(a.get());
            a.reset();
            b.reset();
        },
        "double release");
}

TEST(PacketPool, RecycleClearsRxStateAndHeaderCache)
{
    PacketPool pool;
    PacketPtr p = pool.makeTcp(ip4(7, 9), tcpHdr(10, 20, 1234), 32);
    p->rx.kind = net::L5Kind::Tls;
    p->rx.offloaded = true;
    p->rx.verify[static_cast<size_t>(net::L5Kind::Tls)] =
        net::VerifyOutcome::Ok;
    p->rx.placed.push_back({0, 32});
    p->txCtx = 42;
    Packet *raw = p.get();
    p.reset();

    PacketPtr q = pool.make(ip4(1, 2), tcpHdr(3, 4, 99), {});
    ASSERT_EQ(q.get(), raw);
    EXPECT_EQ(q->rx.kind, net::L5Kind::None);
    EXPECT_FALSE(q->rx.offloaded);
    EXPECT_EQ(q->rx.verifyOf(net::L5Kind::Tls), net::VerifyOutcome::None);
    EXPECT_TRUE(q->rx.placed.empty());
    EXPECT_EQ(q->txCtx, 0u);
    // The header cache must describe the new packet, not the old one.
    EXPECT_EQ(q->tcp().seq, 99u);
    EXPECT_EQ(q->flow().srcIp, 1u);
}

TEST(PacketPool, InvalidateHeadersRefreshesDecodedViews)
{
    PacketPool pool;
    PacketPtr p = pool.makeTcp(ip4(1, 2), tcpHdr(5, 6, 1000), 0);
    EXPECT_EQ(p->tcp().seq, 1000u);

    TcpHeader t2 = tcpHdr(5, 6, 2000);
    t2.encode(p->bytes.data() + Ipv4Header::kSize);
    EXPECT_EQ(p->tcp().seq, 1000u); // stale by design until invalidated
    p->invalidateHeaders();
    EXPECT_EQ(p->tcp().seq, 2000u);
}

TEST(PacketPool, CopyIsIndependentOfSource)
{
    PacketPool pool;
    Bytes payload(100, 0xaa);
    PacketPtr a = pool.make(ip4(1, 2), tcpHdr(3, 4, 7), payload);
    PacketPtr b = pool.copy(*a);
    EXPECT_NE(a.get(), b.get());
    b->payloadMut()[0] = 0x55;
    EXPECT_EQ(a->payload()[0], 0xaa);
    EXPECT_EQ(b->tcp().seq, 7u);
}

TEST(PacketPool, DISABLED_LeakedPacketTripsPoolDestructor)
{
    // Documented contract (exercised manually): destroying a pool with
    // live packets panics. Kept disabled because the leaked PacketPtr
    // would dangle past the EXPECT_DEATH fork.
}

} // namespace
} // namespace anic::net
