/**
 * @file
 * Exhaustive transition-table coverage for the autonomous-offload
 * StreamFsm: every (state x input event) cell asserts the documented
 * next state (or rejection), and the union of edges observed by an
 * FsmProbe across all cells must equal exactly the edge set of the
 * paper's Figure 7 diagram. A second group covers resync-handshake
 * edge cases around retransmit boundaries: stale/duplicate/late
 * confirmations, adoption at boundary / mid-body / mid-header, and
 * retransmitted spans arriving while a speculation is in flight.
 *
 * Uses the same mock L5P as fsm_test.cpp: 8-byte header (magic
 * 0xa5 0x5a + 4-byte BE length), XOR-0x55 transform.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <utility>

#include "nic/stream_fsm.hh"
#include "util/bytes.hh"

namespace anic::nic {
namespace {

class TableEngine : public L5Engine
{
  public:
    static constexpr size_t kHdr = 8;
    static constexpr uint8_t kMagic0 = 0xa5;
    static constexpr uint8_t kMagic1 = 0x5a;

    struct Done
    {
        uint64_t idx;
        bool covered;
    };
    std::vector<Done> completions;
    uint64_t aborts = 0;
    uint64_t curIdx = 0;

    net::L5Kind kind() const override { return net::L5Kind::None; }
    size_t headerSize() const override { return kHdr; }

    std::optional<MsgInfo>
    parseHeader(ByteView h) const override
    {
        if (h[0] != kMagic0 || h[1] != kMagic1)
            return std::nullopt;
        uint32_t len = getBe32(h.data() + 2);
        if (len < kHdr || len > (1u << 20))
            return std::nullopt;
        return MsgInfo{len};
    }

    bool resumeMidMessage() const override { return false; }

    void onMsgStart(uint64_t idx, ByteView) override { curIdx = idx; }

    void
    onMsgData(uint64_t, ByteSpan d, bool dryRun, PacketResult &res) override
    {
        if (!dryRun) {
            for (auto &b : d)
                b ^= 0x55;
            res.bytesTransformed += d.size();
        }
    }

    void
    onMsgEnd(bool covered, PacketResult &) override
    {
        completions.push_back({curIdx, covered});
    }

    void onMsgResume(uint64_t idx, ByteView, uint64_t) override
    {
        curIdx = idx;
    }

    void onMsgAbort() override { aborts++; }
};

using Edge = std::pair<FsmState, FsmState>;

/** Collects transition edges and asserts the per-event invariants the
 *  differential fuzzer also checks: no self-loop reports, and a span
 *  only counts as processed when it was in-sequence in Offloading. */
struct EdgeProbe : FsmProbe
{
    std::set<Edge> edges;

    void
    onTransition(uint64_t, FsmState from, FsmState to) override
    {
        EXPECT_NE(from, to) << "self-loops must not be reported";
        edges.insert({from, to});
    }

    void
    onSegment(uint64_t, FsmState pre, uint64_t pos, uint64_t preExpected,
              size_t, bool processed) override
    {
        if (processed) {
            EXPECT_EQ(pre, FsmState::Offloading);
            EXPECT_EQ(pos, preExpected);
        }
    }
};

/** Stream of @p count messages, each @p msgLen bytes. */
Bytes
buildStream(int count, uint32_t msgLen)
{
    Bytes s;
    for (int i = 0; i < count; i++) {
        size_t base = s.size();
        s.resize(base + msgLen, 0x11);
        s[base] = TableEngine::kMagic0;
        s[base + 1] = TableEngine::kMagic1;
        putBe32(s.data() + base + 2, msgLen);
        putBe16(s.data() + base + 6, static_cast<uint16_t>(i));
    }
    return s;
}

/**
 * A fresh FSM over an 8-message x 250-byte stream with a probe
 * installed before reset. Message k spans [250k, 250k+250); headers
 * occupy the first 8 bytes of each.
 */
struct H
{
    TableEngine eng;
    EdgeProbe probe;
    StreamFsm fsm;
    std::vector<std::pair<uint64_t, uint64_t>> reqs; // (id, pos)
    Bytes stream = buildStream(8, 250);
    PacketResult lastRes;

    H()
        : fsm(eng, [this](uint64_t id, uint64_t pos) {
              reqs.emplace_back(id, pos);
          })
    {
        FsmHooks hooks;
        hooks.probe = &probe;
        fsm.setHooks(std::move(hooks));
        fsm.reset(0, 0);
    }

    bool
    feed(uint64_t pos, size_t len)
    {
        Bytes chunk(stream.begin() + pos, stream.begin() + pos + len);
        lastRes = PacketResult{};
        return fsm.segment(pos, chunk, lastRes);
    }
};

// Preparations driving a fresh FSM into each start state. Offloading
// has two relevant sub-configurations: at a message boundary (header
// unseen) and mid-message (header complete, boundary known).

void
prepOffloadBoundary(H &h) // expected_=250, no partial header
{
    ASSERT_TRUE(h.feed(0, 250));
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);
}

void
prepOffloadMidMsg(H &h) // expected_=100, m0 header known, boundary 250
{
    ASSERT_TRUE(h.feed(0, 100));
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);
}

void
prepSearching(H &h) // m1 header (at 250) lost; scanned m1 body
{
    prepOffloadBoundary(h);
    ASSERT_FALSE(h.feed(350, 100)); // gap, header unseen -> search
    ASSERT_EQ(h.fsm.state(), FsmState::Searching);
}

void
prepTracking(H &h) // candidate = m3 header at 750; trackCont = 800
{
    prepSearching(h);
    ASSERT_FALSE(h.feed(700, 100));
    ASSERT_EQ(h.fsm.state(), FsmState::Tracking);
    ASSERT_EQ(h.reqs.size(), 1u);
    ASSERT_EQ(h.reqs[0].second, 750u);
}

TEST(FsmTable, ExhaustiveStateEventMatrix)
{
    struct Row
    {
        const char *name;
        void (*prep)(H &);
        std::function<void(H &)> event;
        FsmState end;
    };

    // Every input-event class the FSM distinguishes, applied in every
    // state where it can occur. Rejected events (stale spans, stale or
    // wrong-state confirmations) must leave the state unchanged.
    const Row rows[] = {
        // ---------------- Offloading
        {"off: in-sequence span processes", prepOffloadBoundary,
         [](H &h) { EXPECT_TRUE(h.feed(250, 250)); },
         FsmState::Offloading},
        {"off: fully old span bypassed", prepOffloadBoundary,
         [](H &h) {
             EXPECT_FALSE(h.feed(0, 100));
             EXPECT_EQ(h.fsm.stats().bypassedSpans, 1u);
         },
         FsmState::Offloading},
        {"off: overlapping span bypassed", prepOffloadBoundary,
         [](H &h) { EXPECT_FALSE(h.feed(100, 300)); },
         FsmState::Offloading},
        {"off: gap with header unseen -> search", prepOffloadBoundary,
         [](H &h) {
             EXPECT_FALSE(h.feed(350, 100));
             EXPECT_EQ(h.fsm.stats().gapEvents, 1u);
         },
         FsmState::Searching},
        {"off: gap inside current message -> skip", prepOffloadMidMsg,
         [](H &h) {
             EXPECT_FALSE(h.feed(150, 50));
             EXPECT_FALSE(h.fsm.transformsActive());
         },
         FsmState::Offloading},
        {"off: gap landing on known boundary -> skip", prepOffloadMidMsg,
         [](H &h) {
             EXPECT_FALSE(h.feed(250, 100));
             EXPECT_TRUE(h.reqs.empty()); // no software round-trip
         },
         FsmState::Offloading},
        {"off: gap past known boundary -> search", prepOffloadMidMsg,
         [](H &h) { EXPECT_FALSE(h.feed(300, 100)); },
         FsmState::Searching},
        {"off: positionLost -> search", prepOffloadBoundary,
         [](H &h) { h.fsm.positionLost(); }, FsmState::Searching},
        {"off: confirm rejected (wrong state)", prepOffloadBoundary,
         [](H &h) {
             h.fsm.confirm(1, true, 9);
             EXPECT_TRUE(h.feed(250, 250)); // context undamaged
         },
         FsmState::Offloading},
        {"off: reset re-arms", prepOffloadMidMsg,
         [](H &h) { h.fsm.reset(2000, 8); }, FsmState::Offloading},

        // ---------------- Searching
        {"search: span without magic keeps searching", prepSearching,
         [](H &h) { EXPECT_FALSE(h.feed(460, 40)); },
         FsmState::Searching},
        {"search: span with magic -> tracking + request", prepSearching,
         [](H &h) {
             EXPECT_FALSE(h.feed(700, 100));
             ASSERT_EQ(h.reqs.size(), 1u);
             EXPECT_EQ(h.reqs[0].second, 750u);
             EXPECT_EQ(h.fsm.stats().resyncRequests, 1u);
         },
         FsmState::Tracking},
        {"search: magic split across spans -> tracking", prepSearching,
         [](H &h) {
             EXPECT_FALSE(h.feed(700, 53)); // 3 of 8 header bytes
             EXPECT_EQ(h.fsm.state(), FsmState::Searching);
             EXPECT_FALSE(h.feed(753, 100));
             ASSERT_EQ(h.reqs.size(), 1u);
             EXPECT_EQ(h.reqs[0].second, 750u);
         },
         FsmState::Tracking},
        {"search: stale retransmitted span rejected", prepSearching,
         [](H &h) { EXPECT_FALSE(h.feed(350, 100)); },
         FsmState::Searching},
        {"search: positionLost stays searching", prepSearching,
         [](H &h) { h.fsm.positionLost(); }, FsmState::Searching},
        {"search: confirm rejected (wrong state)", prepSearching,
         [](H &h) { h.fsm.confirm(1, true, 3); }, FsmState::Searching},
        {"search: reset re-arms", prepSearching,
         [](H &h) { h.fsm.reset(2000, 8); }, FsmState::Offloading},

        // ---------------- Tracking (candidate m3 @750, next hdr @1000)
        {"track: body bytes keep tracking", prepTracking,
         [](H &h) { EXPECT_FALSE(h.feed(800, 100)); },
         FsmState::Tracking},
        {"track: matching next header keeps tracking", prepTracking,
         [](H &h) {
             EXPECT_FALSE(h.feed(800, 300)); // crosses m4 hdr @1000
             EXPECT_EQ(h.fsm.stats().trackFailures, 0u);
         },
         FsmState::Tracking},
        {"track: mismatching next header -> search", prepTracking,
         [](H &h) {
             h.stream[1000] = 0x00; // destroy m4's magic
             EXPECT_FALSE(h.feed(800, 300));
             EXPECT_EQ(h.fsm.stats().trackFailures, 1u);
         },
         FsmState::Searching},
        {"track: gap over next header -> search", prepTracking,
         [](H &h) { EXPECT_FALSE(h.feed(1100, 100)); },
         FsmState::Searching},
        {"track: gap within body keeps tracking", prepTracking,
         [](H &h) { EXPECT_FALSE(h.feed(900, 100)); },
         FsmState::Tracking},
        {"track: gap while mid-header -> search", prepTracking,
         [](H &h) {
             EXPECT_FALSE(h.feed(800, 204)); // 4 of m4's hdr bytes
             EXPECT_EQ(h.fsm.state(), FsmState::Tracking);
             EXPECT_FALSE(h.feed(1100, 100));
         },
         FsmState::Searching},
        {"track: stale retransmitted span rejected", prepTracking,
         [](H &h) { EXPECT_FALSE(h.feed(700, 100)); },
         FsmState::Tracking},
        {"track: confirm ok -> offloading", prepTracking,
         [](H &h) {
             h.fsm.confirm(h.reqs[0].first, true, 3);
             EXPECT_EQ(h.fsm.stats().resyncConfirmed, 1u);
         },
         FsmState::Offloading},
        {"track: confirm refuted -> search", prepTracking,
         [](H &h) {
             h.fsm.confirm(h.reqs[0].first, false, 0);
             EXPECT_EQ(h.fsm.stats().resyncRefuted, 1u);
         },
         FsmState::Searching},
        {"track: confirm with stale id rejected", prepTracking,
         [](H &h) {
             h.fsm.confirm(h.reqs[0].first + 7, true, 3);
             EXPECT_EQ(h.fsm.stats().resyncConfirmed, 0u);
         },
         FsmState::Tracking},
        {"track: positionLost -> search", prepTracking,
         [](H &h) { h.fsm.positionLost(); }, FsmState::Searching},
        {"track: reset re-arms", prepTracking,
         [](H &h) { h.fsm.reset(2000, 8); }, FsmState::Offloading},
    };

    std::set<Edge> seen;
    for (const Row &row : rows) {
        SCOPED_TRACE(row.name);
        H h;
        row.prep(h);
        row.event(h);
        EXPECT_EQ(h.fsm.state(), row.end);
        seen.insert(h.probe.edges.begin(), h.probe.edges.end());
    }

    // The union of edges over the whole matrix must be exactly the
    // documented diagram: the offload-loss-recovery cycle plus the
    // reset edges back to Offloading. Anything else (in particular
    // Offloading -> Tracking, which would mean speculating without
    // searching) is a bug.
    const std::set<Edge> legal = {
        {FsmState::Offloading, FsmState::Searching},
        {FsmState::Searching, FsmState::Tracking},
        {FsmState::Tracking, FsmState::Searching},
        {FsmState::Tracking, FsmState::Offloading},
        {FsmState::Searching, FsmState::Offloading}, // reset / confirm
    };
    EXPECT_EQ(seen, legal);
}

// ------------------------------------------------------------------
// Resync-handshake edge cases around retransmit boundaries.

TEST(FsmResync, RequestIdsStrictlyIncreaseAcrossRespeculation)
{
    H h;
    prepTracking(h);
    for (int round = 0; round < 3; round++) {
        ASSERT_EQ(h.reqs.size(), static_cast<size_t>(round + 1));
        h.fsm.confirm(h.reqs.back().first, false, 0);
        ASSERT_EQ(h.fsm.state(), FsmState::Searching);
        // Search continues at the tracked position; the next message
        // header becomes a fresh candidate with a fresh id.
        uint64_t next = 1000 + 250 * static_cast<uint64_t>(round);
        h.feed(next - 50, 100);
        ASSERT_EQ(h.fsm.state(), FsmState::Tracking);
    }
    ASSERT_EQ(h.reqs.size(), 4u);
    for (size_t i = 1; i < h.reqs.size(); i++) {
        EXPECT_GT(h.reqs[i].first, h.reqs[i - 1].first);
        EXPECT_GT(h.reqs[i].second, h.reqs[i - 1].second);
    }
    EXPECT_EQ(h.fsm.stats().resyncRefuted, 3u);
}

TEST(FsmResync, DuplicateConfirmIsIgnored)
{
    H h;
    prepTracking(h);
    uint64_t id = h.reqs[0].first;
    h.fsm.confirm(id, true, 3);
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);
    // A duplicated (retransmitted) confirmation must be a no-op.
    h.fsm.confirm(id, true, 3);
    h.fsm.confirm(id, false, 0);
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);
    EXPECT_EQ(h.fsm.stats().resyncConfirmed, 1u);
    EXPECT_EQ(h.fsm.stats().resyncRefuted, 0u);
}

TEST(FsmResync, LateConfirmAfterChainCollapseIsIgnored)
{
    H h;
    prepTracking(h);
    uint64_t firstId = h.reqs[0].first;
    h.stream[1000] = 0x00; // m4 magic destroyed -> tracking fails
    EXPECT_FALSE(h.feed(800, 300));
    ASSERT_EQ(h.fsm.state(), FsmState::Searching);

    // The in-flight confirmation for the abandoned speculation races
    // with the collapse and must not be adopted.
    h.fsm.confirm(firstId, true, 3);
    EXPECT_EQ(h.fsm.state(), FsmState::Searching);
    EXPECT_EQ(h.fsm.stats().resyncConfirmed, 0u);

    // A later candidate (m5 header at 1250) gets a larger id and its
    // confirmation works normally.
    EXPECT_FALSE(h.feed(1200, 100));
    ASSERT_EQ(h.reqs.size(), 2u);
    EXPECT_GT(h.reqs[1].first, firstId);
    EXPECT_EQ(h.reqs[1].second, 1250u);
    h.fsm.confirm(h.reqs[1].first, true, 5);
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);
}

TEST(FsmResync, RetransmitDuringSpeculationDoesNotDisturbIt)
{
    H h;
    prepTracking(h);
    // Old spans (retransmissions of data before the candidate) arrive
    // while the resync request is in flight: rejected as stale, the
    // speculation survives and confirmation still lands.
    EXPECT_FALSE(h.feed(0, 250));
    EXPECT_FALSE(h.feed(600, 150));
    EXPECT_EQ(h.fsm.state(), FsmState::Tracking);
    h.fsm.confirm(h.reqs[0].first, true, 3);
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);

    // And a retransmission straddling the adopted position afterwards
    // is bypassed without damaging the recovered context.
    EXPECT_FALSE(h.feed(700, 200));
    EXPECT_EQ(h.fsm.state(), FsmState::Offloading);
}

TEST(FsmResync, AdoptAtExactBoundary)
{
    H h;
    prepTracking(h);
    EXPECT_FALSE(h.feed(800, 200)); // body up to exactly m4's header
    h.fsm.confirm(h.reqs[0].first, true, 3);
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);
    EXPECT_FALSE(h.fsm.transformsActive()); // skip until aligned pkt

    // Next packet starts exactly at the m4 boundary: full resume with
    // the correct message index.
    EXPECT_TRUE(h.feed(1000, 250));
    ASSERT_EQ(h.eng.completions.size(), 2u); // m0, then m4
    EXPECT_EQ(h.eng.completions[1].idx, 4u);
    EXPECT_TRUE(h.eng.completions[1].covered);
}

TEST(FsmResync, AdoptMidBodySkipsToNextBoundary)
{
    H h;
    prepTracking(h);
    EXPECT_FALSE(h.feed(800, 300)); // tracked past m4's header to 1100
    h.fsm.confirm(h.reqs[0].first, true, 3);
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);

    // Mid-body of m4: the rest of m4 is framed in skip mode, m5
    // resumes fully at its aligned boundary.
    EXPECT_FALSE(h.feed(1100, 150));
    EXPECT_TRUE(h.feed(1250, 250));
    ASSERT_EQ(h.eng.completions.size(), 2u);
    EXPECT_EQ(h.eng.completions[1].idx, 5u);
    EXPECT_TRUE(h.eng.completions[1].covered);
}

TEST(FsmResync, AdoptMidHeaderResumesWithPartialHeader)
{
    H h;
    prepTracking(h);
    EXPECT_FALSE(h.feed(800, 204)); // 4 of m4's 8 header bytes seen
    h.fsm.confirm(h.reqs[0].first, true, 3);
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);

    // The partial header carries over: framing continues through m4
    // in skip mode, m5 resumes fully.
    EXPECT_FALSE(h.feed(1004, 246));
    EXPECT_TRUE(h.feed(1250, 250));
    ASSERT_EQ(h.eng.completions.size(), 2u);
    EXPECT_EQ(h.eng.completions[1].idx, 5u);
    EXPECT_TRUE(h.eng.completions[1].covered);
}

TEST(FsmResync, WrongConfirmationDesyncsAndTagsPacketFailed)
{
    H h;
    // Plant a fake header inside m2's body whose length field points
    // at plain body bytes.
    h.stream[600] = TableEngine::kMagic0;
    h.stream[601] = TableEngine::kMagic1;
    putBe32(h.stream.data() + 602, 100); // fake boundary at 700
    prepSearching(h);

    EXPECT_FALSE(h.feed(600, 8)); // exactly the fake header
    ASSERT_EQ(h.fsm.state(), FsmState::Tracking);
    ASSERT_EQ(h.reqs.size(), 1u);
    EXPECT_EQ(h.reqs[0].second, 600u);

    // Software (wrongly) confirms the fake speculation. The FSM obeys
    // -- transparency now rests on in-sequence framing detecting the
    // lie at the fake boundary.
    h.fsm.confirm(h.reqs[0].first, true, 42);
    ASSERT_EQ(h.fsm.state(), FsmState::Offloading);

    EXPECT_FALSE(h.feed(608, 92)); // skip-framed to fake boundary 700
    EXPECT_FALSE(h.feed(700, 100)); // "header" at 700 is body bytes
    EXPECT_EQ(h.fsm.stats().desyncs, 1u);
    EXPECT_TRUE(h.lastRes.tagFailed); // packet flagged for software
    // The rescan of the same packet finds m3's genuine header at 750
    // and immediately re-speculates: recovery restarts on its own.
    EXPECT_EQ(h.fsm.state(), FsmState::Tracking);
    ASSERT_EQ(h.reqs.size(), 2u);
    EXPECT_EQ(h.reqs[1].second, 750u);
}

} // namespace
} // namespace anic::nic
