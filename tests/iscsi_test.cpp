/**
 * @file
 * iSCSI tests: BHS codec and known-answer digest vectors, streaming
 * reassembly, end-to-end reads/writes over the simulated fabric, and
 * the three autonomous offloads (rx digest verification, ITT-keyed
 * zero-copy placement, tx digest computation) installed through the
 * protocol-agnostic l5o_create binding.
 */

#include <gtest/gtest.h>

#include "iscsi/session.hh"
#include "support/offload_world.hh"

namespace anic {
namespace {

using testing::OffloadWorld;
using namespace iscsi;

// ------------------------------------------------------------- codec

TEST(IscsiPdu, BhsPrefixValidation)
{
    IscsiWireConfig wc;
    IscsiBhs bhs;
    bhs.itt = 7;
    bhs.edtl = 4096;
    bhs.scsiOp = kScsiRead;
    bhs.slba = 512;
    bhs.length = 4096;
    Bytes cmd = buildScsiCmd(wc, bhs);
    ASSERT_EQ(cmd.size(), wc.pduLen(0));
    auto len = parseBhsPrefix(wc, cmd, 2 << 20);
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len, cmd.size());

    // Unknown opcode, dirty reserved bytes, and a data-bearing
    // command capsule must all fail the magic pattern.
    Bytes bad = cmd;
    bad[0] = 0x3f;
    EXPECT_FALSE(parseBhsPrefix(wc, bad, 2 << 20).has_value());
    bad = cmd;
    bad[3] = 1;
    EXPECT_FALSE(parseBhsPrefix(wc, bad, 2 << 20).has_value());
    bad = cmd;
    bad[7] = 8; // Cmd with dsl != 0
    EXPECT_FALSE(parseBhsPrefix(wc, bad, 2 << 20).has_value());
}

TEST(IscsiPdu, CmdRoundTrip)
{
    IscsiWireConfig wc;
    IscsiBhs in;
    in.itt = 42;
    in.edtl = 65536;
    in.scsiOp = kScsiWrite;
    in.slba = 0x123456789aull;
    in.length = 65536;
    IscsiBhs out = parseBhs(buildScsiCmd(wc, in));
    EXPECT_EQ(out.opcode, kOpScsiCmd);
    EXPECT_EQ(out.itt, in.itt);
    EXPECT_EQ(out.edtl, in.edtl);
    EXPECT_EQ(out.scsiOp, in.scsiOp);
    EXPECT_EQ(out.slba, in.slba);
    EXPECT_EQ(out.length, in.length);
    EXPECT_NE(out.flags & kFlagWrite, 0);
}

TEST(IscsiPdu, KnownAnswerDigests)
{
    // CRC-32C check value (RFC 3720 §B.4 / iSCSI uses CRC32C): the
    // ASCII digits "123456789" digest to 0xe3069283.
    const uint8_t kCheck[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(crypto::Crc32c::compute(ByteView(kCheck, sizeof(kCheck))),
              0xe3069283u);

    // Builders place the header digest over BHS [0, 48) and the data
    // digest right after the data segment, both little-endian.
    IscsiWireConfig wc;
    Bytes data(1000);
    fillDeterministic(data, 3, 0);
    IscsiBhs dh;
    dh.itt = 5;
    dh.bufferOffset = 100;
    dh.flags = kFlagFinal;
    Bytes pdu = buildDataPdu(wc, kOpDataIn, dh, data, /*fillDdgst=*/true);
    ASSERT_EQ(pdu.size(), wc.pduLen(data.size()));
    EXPECT_EQ(static_cast<uint32_t>(getLe32(pdu.data() + kBhsSize)),
              crypto::Crc32c::compute(ByteView(pdu.data(), kBhsSize)));
    size_t pdo = kBhsSize + wc.hdgstLen();
    EXPECT_EQ(static_cast<uint32_t>(getLe32(pdu.data() + pdo + data.size())),
              crypto::Crc32c::compute(data));
    EXPECT_TRUE(verifyHdgst(wc, pdu));

    // Any BHS corruption must break the header digest.
    Bytes bad = pdu;
    bad[16] ^= 1; // ITT
    EXPECT_FALSE(verifyHdgst(wc, bad));

    // Dummy-digest variant leaves zeros for the NIC tx engine.
    Bytes pdu2 = buildDataPdu(wc, kOpDataIn, dh, data, /*fillDdgst=*/false);
    EXPECT_EQ(getLe32(pdu2.data() + pdo + data.size()), 0u);
    EXPECT_TRUE(verifyHdgst(wc, pdu2)); // hdgst is always real
}

TEST(IscsiPdu, DigestsOptionalByConfig)
{
    IscsiWireConfig wc;
    wc.headerDigest = false;
    wc.dataDigest = false;
    Bytes data(500);
    fillDeterministic(data, 1, 0);
    IscsiBhs dh;
    dh.itt = 9;
    Bytes pdu = buildDataPdu(wc, kOpDataOut, dh, data, true);
    EXPECT_EQ(pdu.size(), kBhsSize + data.size());
    auto len = parseBhsPrefix(wc, pdu, 2 << 20);
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len, pdu.size());
    EXPECT_TRUE(verifyHdgst(wc, pdu)); // vacuously true
}

TEST(IscsiPdu, AssemblerHandlesArbitrarySegmentation)
{
    IscsiWireConfig wc;
    Bytes stream;
    std::vector<size_t> lens;
    Rng rng(5);
    for (int i = 0; i < 20; i++) {
        Bytes pdu;
        if (i % 3 == 0) {
            IscsiBhs bhs;
            bhs.itt = static_cast<uint32_t>(i);
            bhs.scsiOp = kScsiRead;
            bhs.length = 4096;
            pdu = buildScsiCmd(wc, bhs);
        } else {
            Bytes data(rng.range(1, 5000));
            fillDeterministic(data, i, 0);
            IscsiBhs dh;
            dh.itt = static_cast<uint32_t>(i);
            pdu = buildDataPdu(wc, kOpDataIn, dh, data, true);
        }
        lens.push_back(pdu.size());
        stream.insert(stream.end(), pdu.begin(), pdu.end());
    }

    IscsiAssembler as(wc);
    std::vector<IscsiRxPdu> out;
    uint64_t off = 0;
    while (off < stream.size()) {
        size_t n = std::min<size_t>(rng.range(1, 1460), stream.size() - off);
        tcp::RxSegment seg;
        seg.streamOff = off;
        seg.data.assign(stream.begin() + off, stream.begin() + off + n);
        as.ingest(seg, [&](IscsiRxPdu &&p) { out.push_back(std::move(p)); });
        off += n;
    }
    ASSERT_FALSE(as.error());
    ASSERT_EQ(out.size(), 20u);
    EXPECT_EQ(as.pdusDelivered(), 20u);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(out[i].bytes.size(), lens[i]);
}

// ----------------------------------------------------- fabric fixture

/**
 * Initiator on node B against a target on node A exporting the same
 * synthetic NvmeDrive block model the NVMe-TCP suite uses.
 */
struct IscsiFabric
{
    static constexpr uint16_t kPort = 3260;

    OffloadWorld &w;
    host::NvmeDrive drive;
    IscsiWireConfig wc;
    std::unique_ptr<IscsiTarget> target;
    std::unique_ptr<IscsiInitiator> init;
    bool ready = false;

    IscsiFabric(OffloadWorld &world, IscsiOffloadConfig ocfg,
                IscsiOffloadConfig targetOcfg = {},
                IscsiWireConfig wireCfg = {})
        : w(world), drive(world.sim, {}), wc(wireCfg)
    {
        w.a.stack().listen(kPort, w.a.tcpConfig(),
                           [this, targetOcfg](tcp::TcpConnection &c) {
                               target = std::make_unique<IscsiTarget>(
                                   c, drive, wc);
                               target->enableOffload(w.a.device(), c,
                                                     targetOcfg);
                           });
        tcp::TcpConnection &c = w.b.stack().connect(
            OffloadWorld::kIpB, OffloadWorld::kIpA, kPort, w.b.tcpConfig());
        c.setOnConnected([this, &c, ocfg] {
            init = std::make_unique<IscsiInitiator>(c, wc, ocfg);
            init->enableOffload(w.b.device(), c);
            ready = true;
        });
        w.sim.runUntil(10 * sim::kMillisecond);
        ANIC_ASSERT(ready, "fabric setup failed");
    }
};

bool
verifyRead(const host::NvmeDrive &drive, const host::BlockBufferPtr &buf,
           uint64_t slba)
{
    return checkDeterministic(buf->data, drive.config().contentSeed, slba);
}

// -------------------------------------------------------------- tests

TEST(IscsiFabric, SoftwareReadDeliversDriveContent)
{
    OffloadWorld w;
    IscsiFabric f(w, {});
    bool done = false;
    bool ok = false;
    host::BlockBufferPtr buf;
    f.init->read(8192, 262144, [&](bool o, host::BlockBufferPtr b) {
        done = true;
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(done);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(verifyRead(f.drive, buf, 8192));
    EXPECT_GT(f.init->stats().digestSoftware, 0u);
    EXPECT_EQ(f.init->stats().digestSkipped, 0u);
    EXPECT_EQ(f.init->stats().bytesPlaced, 0u);
    EXPECT_EQ(f.init->stats().bytesCopied, 262144u);
}

TEST(IscsiFabric, DigestOffloadSkipsSoftwareCrc)
{
    OffloadWorld w;
    IscsiOffloadConfig ocfg;
    ocfg.crcRx = true;
    IscsiFabric f(w, ocfg);
    bool ok = false;
    host::BlockBufferPtr buf;
    f.init->read(0, 262144, [&](bool o, host::BlockBufferPtr b) {
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(verifyRead(f.drive, buf, 0));
    // Every PDU (Data-In chunks + Resp) was verified by the NIC.
    EXPECT_GT(f.init->stats().digestSkipped, 0u);
    EXPECT_EQ(f.init->stats().digestSoftware, 0u);
    EXPECT_EQ(f.init->stats().digestFailures, 0u);
}

TEST(IscsiFabric, CopyOffloadPlacesByItt)
{
    OffloadWorld w;
    IscsiOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    IscsiFabric f(w, ocfg);
    bool ok = false;
    host::BlockBufferPtr buf;
    f.init->read(4096, 262144, [&](bool o, host::BlockBufferPtr b) {
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    // Content is correct even though software never copied it: the
    // NIC placed Data-In payload at ITT-keyed buffer offsets.
    EXPECT_TRUE(verifyRead(f.drive, buf, 4096));
    EXPECT_EQ(f.init->stats().bytesCopied, 0u);
    EXPECT_EQ(f.init->stats().bytesPlaced, 262144u);
    EXPECT_GT(f.init->stats().digestSkipped, 0u);
}

TEST(IscsiFabric, UnsolicitedWriteReachesTheDrive)
{
    OffloadWorld w;
    IscsiFabric f(w, {});
    bool ok = false;
    f.init->write(0, 131072, /*seed=*/9, [&](bool o) { ok = o; });
    w.sim.runUntil(100 * sim::kMillisecond);
    EXPECT_TRUE(ok);
    EXPECT_EQ(f.target->stats().writesServed, 1u);
    EXPECT_EQ(f.target->stats().bytesWritten, 131072u);
    EXPECT_EQ(f.target->stats().digestFailures, 0u);
    EXPECT_EQ(f.drive.bytesWritten(), 131072u);
    // 128 KiB segments: exactly one unsolicited Data-Out PDU.
    EXPECT_EQ(f.target->stats().dataOutPdus, 1u);
}

TEST(IscsiFabric, TargetOffloadedWritePath)
{
    // Initiator fills data digests via its tx engine; the target NIC
    // verifies them and places Data-Out payload into the pending
    // write buffer registered at command time.
    OffloadWorld w;
    IscsiOffloadConfig initO;
    initO.crcTx = true;
    IscsiOffloadConfig tgtO;
    tgtO.crcRx = true;
    tgtO.copyRx = true;
    tgtO.crcTx = true;
    IscsiFabric f(w, initO, tgtO);
    int oks = 0;
    for (int i = 0; i < 8; i++) {
        f.init->write(262144ull * i, 262144, 30 + i,
                      [&](bool o) { oks += o ? 1 : 0; });
    }
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(oks, 8);
    const IscsiTargetStats &ts = f.target->stats();
    EXPECT_EQ(ts.digestFailures, 0u);
    EXPECT_GT(ts.bytesPlaced, 0u);
    uint64_t total = ts.digestSkipped + ts.digestSoftware;
    ASSERT_GT(total, 0u);
    EXPECT_GE(ts.digestSkipped * 10, total * 9); // >= 90 % offloaded
}

TEST(IscsiFabric, TxCrcOffloadProducesValidDigests)
{
    OffloadWorld w;
    IscsiOffloadConfig ocfg;
    ocfg.crcTx = true;
    IscsiFabric f(w, ocfg);
    int oks = 0;
    for (int i = 0; i < 4; i++) {
        f.init->write(262144ull * i, 262144, 10 + i, [&](bool o) {
            if (o)
                oks++;
        });
    }
    w.sim.runUntil(300 * sim::kMillisecond);
    EXPECT_EQ(oks, 4);
    // The target verified NIC-computed data digests in software.
    EXPECT_EQ(f.target->stats().digestFailures, 0u);
    EXPECT_GT(f.target->stats().digestSoftware, 0u);
    EXPECT_GT(w.b.nicDev().stats().txOffloadedPkts, 0u);
}

TEST(IscsiFabric, MixedReadsAndWrites)
{
    OffloadWorld w;
    IscsiOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    ocfg.crcTx = true;
    IscsiOffloadConfig tgtO = ocfg;
    IscsiFabric f(w, ocfg, tgtO);
    const int kReqs = 24;
    int completed = 0;
    int correct = 0;
    for (int i = 0; i < kReqs; i++) {
        uint64_t slba = 65536ull * i;
        if (i % 3 == 2) {
            f.init->write(slba, 32768, f.drive.config().contentSeed,
                          [&](bool o) {
                              completed++;
                              if (o)
                                  correct++;
                          });
        } else {
            f.init->read(slba, 32768,
                         [&, slba](bool o, host::BlockBufferPtr b) {
                             completed++;
                             if (o && verifyRead(f.drive, b, slba))
                                 correct++;
                         });
        }
    }
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(completed, kReqs);
    EXPECT_EQ(correct, kReqs);
    EXPECT_EQ(f.init->outstanding(), 0u);
    EXPECT_EQ(f.init->stats().failures, 0u);
}

TEST(IscsiFabric, LossyLinkFallsBackAndRecovers)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.01; // target -> initiator data direction
    lc.seed = 3;
    OffloadWorld w(lc);
    IscsiOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    IscsiFabric f(w, ocfg);

    const int kReqs = 60;
    int completed = 0;
    int correct = 0;
    std::function<void(int)> issue = [&](int i) {
        uint64_t slba = 262144ull * i;
        f.init->read(slba, 262144,
                     [&, slba, i](bool o, host::BlockBufferPtr b) {
                         completed++;
                         if (o && verifyRead(f.drive, b, slba))
                             correct++;
                         if (i + 8 < kReqs)
                             issue(i + 8);
                     });
    };
    for (int i = 0; i < 8; i++)
        issue(i);
    w.sim.runUntil(3 * sim::kSecond);
    EXPECT_EQ(completed, kReqs);
    EXPECT_EQ(correct, kReqs);
    // Some PDUs fell back to software digests, some were offloaded,
    // and placement kept working across losses (mid-PDU resumes).
    EXPECT_GT(f.init->stats().digestSoftware, 0u);
    EXPECT_GT(f.init->stats().digestSkipped, 0u);
    EXPECT_GT(f.init->stats().bytesPlaced, 0u);
    EXPECT_FALSE(f.init->desynced());
}

TEST(IscsiFabric, NoDigestsConfigStillTransfers)
{
    OffloadWorld w;
    IscsiWireConfig wire;
    wire.headerDigest = false;
    wire.dataDigest = false;
    IscsiOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    IscsiFabric f(w, ocfg, {}, wire);
    bool ok = false;
    host::BlockBufferPtr buf;
    f.init->read(0, 131072, [&](bool o, host::BlockBufferPtr b) {
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(verifyRead(f.drive, buf, 0));
    // Nothing to verify, but placement still works.
    EXPECT_EQ(f.init->stats().bytesPlaced, 131072u);
}

TEST(IscsiFabric, EngineStatsPublished)
{
    OffloadWorld w;
    IscsiOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    IscsiFabric f(w, ocfg);
    bool ok = false;
    f.init->read(0, 262144,
                 [&](bool o, host::BlockBufferPtr) { ok = o; });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    // The generic per-kind engine bank picked up the iSCSI counters.
    const nic::EngineStats &es =
        w.b.nicDev().engineStats().of(net::L5Kind::Iscsi);
    EXPECT_GT(es.bytesChecked, 0u);
    EXPECT_GT(es.bytesPlaced, 0u);
    EXPECT_GT(es.verifiedOk, 0u);
    EXPECT_EQ(es.verifyFailures, 0u);
}

} // namespace
} // namespace anic
