/**
 * @file
 * Property-based tests (parameterized sweeps over random seeds):
 *
 *  - StreamFsm + TLS engine torture: random record sizes, random
 *    loss with delayed retransmission, overlapping retransmits and
 *    duplicates; invariants: (a) every byte the FSM marked processed
 *    decrypts to the true plaintext, (b) software confirmation always
 *    re-converges the FSM, (c) no tag failures ever surface.
 *  - TCP invariants under random impairment mixes: exact in-order
 *    byte delivery, bounded receive queue.
 *  - TLS socket end-to-end under random impairments with both
 *    offloads: delivery, authentication, and record classification
 *    consistency (full + partial + none == total).
 */

#include <gtest/gtest.h>

#include <map>

#include "nic/stream_fsm.hh"
#include "support/offload_world.hh"
#include "support/scenario.hh"
#include "tls/ktls.hh"
#include "tls/tls_engine.hh"

namespace anic {
namespace {

// ------------------------------------------------ FSM + engine torture

class FsmTorture : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FsmTorture, ProcessedBytesAlwaysDecryptCorrectly)
{
    const uint64_t seed = GetParam();
    Rng rng(seed);

    tls::DirectionKeys keys;
    keys.key.assign(16, 0x11);
    keys.staticIv.assign(12, 0x22);

    // Build a ciphertext stream of records with random sizes (shared
    // generator, tests/support/scenario.hh).
    const int kRecords = 200;
    std::vector<testing::RecordInfo> records;
    Bytes stream = testing::buildTlsRecordStream(keys, rng, kRecords,
                                                 /*plainSeed=*/7, records);
    std::map<uint64_t, uint64_t> recStartToIdx;
    for (size_t i = 0; i < records.size(); i++)
        recStartToIdx[records[i].start] = i;

    tls::TlsRxEngine eng(keys);
    uint64_t pendingReq = 0;
    uint64_t pendingPos = 0;
    bool havePending = false;
    nic::StreamFsm fsm(eng, [&](uint64_t id, uint64_t pos) {
        pendingReq = id;
        pendingPos = pos;
        havePending = true;
    });
    fsm.reset(0, 0);

    struct Span
    {
        uint64_t pos;
        size_t len;
        bool processed;
    };
    std::vector<Span> spans;
    Bytes wire = stream;
    int confirm_delay = -1;

    auto feed = [&](uint64_t p, size_t n) {
        Bytes pkt(stream.begin() + p, stream.begin() + p + n);
        nic::PacketResult res;
        bool processed = fsm.segment(p, pkt, res);
        EXPECT_FALSE(res.tagFailed) << "seed " << seed << " pos " << p;
        if (processed)
            std::memcpy(wire.data() + p, pkt.data(), n);
        spans.push_back({p, n, processed});
        if (havePending && confirm_delay < 0)
            confirm_delay = static_cast<int>(rng.range(1, 6));
    };

    struct Retx
    {
        int at;
        uint64_t pos;
        size_t len;
    };
    std::vector<Retx> retx;
    uint64_t pos = 0;
    int step = 0;
    while (pos < stream.size()) {
        step++;
        size_t n = std::min<size_t>(1460, stream.size() - pos);
        if (rng.chance(0.03)) {
            // Lost: retransmitted later, possibly split or widened.
            switch (rng.below(3)) {
              case 0:
                retx.push_back({step + (int)rng.range(2, 12), pos, n});
                break;
              case 1: {
                size_t h = rng.range(1, n - 1);
                retx.push_back({step + (int)rng.range(2, 12), pos, h});
                retx.push_back(
                    {step + (int)rng.range(2, 12), pos + h, n - h});
                break;
              }
              default: {
                uint64_t back = std::min<uint64_t>(pos, rng.range(0, 700));
                retx.push_back({step + (int)rng.range(2, 12), pos - back,
                                n + (size_t)back});
              }
            }
        } else {
            feed(pos, n);
        }
        if (rng.chance(0.01) && pos > 5000) {
            // Spurious duplicate of old data.
            uint64_t dp = rng.below(pos - 3000);
            retx.push_back({step + 1, dp, (size_t)rng.range(100, 1460)});
        }
        for (auto it = retx.begin(); it != retx.end();) {
            if (it->at <= step) {
                feed(it->pos, it->len);
                it = retx.erase(it);
            } else {
                ++it;
            }
        }
        if (confirm_delay >= 0 && --confirm_delay < 0 && havePending) {
            auto it = recStartToIdx.find(pendingPos);
            if (it != recStartToIdx.end())
                fsm.confirm(pendingReq, true, it->second);
            else
                fsm.confirm(pendingReq, false, 0);
            havePending = false;
        }
        pos += n;
    }

    // Invariant (a): every processed byte decrypted correctly.
    for (int i = 0; i < kRecords; i++) {
        uint64_t base = records[i].start;
        size_t plen = records[i].plainLen;
        Bytes expected(plen);
        fillDeterministic(expected, 7, 0);
        for (const Span &sp : spans) {
            if (!sp.processed)
                continue;
            uint64_t s = std::max<uint64_t>(sp.pos, base + 5);
            uint64_t e = std::min<uint64_t>(sp.pos + sp.len, base + 5 + plen);
            for (uint64_t p = s; p < e; p++) {
                ASSERT_EQ(wire[p], expected[p - (base + 5)])
                    << "seed " << seed << " record " << i << " off "
                    << p - base;
            }
        }
    }
    // Invariant (b): every speculation is answered (confirmed/refuted)
    // or superseded by a tracking failure / still pending at the end;
    // confirmed ones must have flipped the FSM back to offloading at
    // least once (no permanent stall).
    const nic::FsmStats &st = fsm.stats();
    EXPECT_LE(st.resyncConfirmed + st.resyncRefuted, st.resyncRequests);
    if (st.resyncRequests > 0 && !havePending)
        EXPECT_GE(st.resyncConfirmed + st.resyncRefuted +
                      st.trackFailures,
                  1u);
    // Invariant (c): the FSM ended in a live state and most messages
    // were processed.
    EXPECT_GT(st.msgsCompleted, static_cast<uint64_t>(kRecords) / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmTorture, ::testing::Range<uint64_t>(1, 17));

// ----------------------------------------------------- TCP properties

class TcpProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TcpProperty, ExactDeliveryUnderImpairments)
{
    const int idx = GetParam();
    Rng rng(1000 + idx);
    net::Link::Config lc;
    lc.dir[0] = testing::randomImpairments(rng);
    lc.dir[1] = testing::randomImpairments(rng, {.loss = 0.03,
                                                 .reorder = 0.0,
                                                 .duplicate = 0.0});
    lc.seed = 2000 + idx;
    testing::OffloadWorld w(lc);

    constexpr uint64_t kBytes = 512 << 10;
    testing::DeliveryChecker rx{/*seed=*/5};
    tcp::TcpConnection *server = nullptr;
    w.b.stack().listen(80, {}, [&](tcp::TcpConnection &c) {
        server = &c;
        c.setOnReadable([&c, &rx] {
            while (c.readable())
                rx.onSegment(c.pop());
        });
    });

    tcp::TcpConnection &c = w.a.stack().connect(
        testing::OffloadWorld::kIpA, testing::OffloadWorld::kIpB, 80, {});
    uint64_t sent = 0;
    auto pump = testing::deterministicPump(
        [&c](ByteView b) { return c.send(b); }, /*seed=*/5, kBytes, sent,
        32768);
    c.setOnConnected(pump);
    c.setOnWritable(pump);

    w.sim.runUntil(20 * sim::kSecond);
    EXPECT_EQ(rx.received, kBytes) << "case " << idx;
    EXPECT_FALSE(rx.corrupt);
    ASSERT_NE(server, nullptr);
    EXPECT_LE(server->rxQueuedBytes(), server->config().rcvBufSize + 8192);
}

INSTANTIATE_TEST_SUITE_P(Cases, TcpProperty, ::testing::Range(0, 12));

// ------------------------------------------------ TLS e2e properties

class TlsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TlsProperty, OffloadedStreamsStayAuthenticated)
{
    const int idx = GetParam();
    Rng rng(3000 + idx);
    net::Link::Config lc;
    lc.dir[0] = testing::randomImpairments(rng, {.loss = 0.04,
                                                 .reorder = 0.04,
                                                 .duplicate = 0.0});
    lc.dir[1] = testing::randomImpairments(rng, {.loss = 0.02,
                                                 .reorder = 0.0,
                                                 .duplicate = 0.0});
    lc.seed = 4000 + idx;
    testing::OffloadWorld w(lc);

    constexpr uint64_t kBytes = 768 << 10;
    constexpr uint64_t kSeed = 99;
    std::unique_ptr<tls::TlsSocket> server;
    std::unique_ptr<tls::TlsSocket> client;
    testing::DeliveryChecker rx{kSeed};

    w.b.stack().listen(443, {}, [&](tcp::TcpConnection &c) {
        tls::TlsConfig scfg;
        scfg.rxOffload = true;
        scfg.recordSize = static_cast<size_t>(rng.range(512, 16384));
        server = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(7, false), scfg);
        server->enableOffload(w.b.device());
        server->setOnReadable([&] {
            while (server->readable())
                rx.onSegment(server->pop());
        });
    });

    tcp::TcpConnection &c = w.a.stack().connect(
        testing::OffloadWorld::kIpA, testing::OffloadWorld::kIpB, 443, {});
    uint64_t sent = 0;
    c.setOnConnected([&] {
        tls::TlsConfig ccfg;
        ccfg.txOffload = true;
        ccfg.recordSize = static_cast<size_t>(rng.range(512, 16384));
        client = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(7, true), ccfg);
        client->enableOffload(w.a.device());
        auto pump = testing::deterministicPump(
            [&](ByteView b) { return client->send(b); }, kSeed, kBytes,
            sent);
        client->setOnWritable(pump);
        pump();
    });

    w.sim.runUntil(20 * sim::kSecond);
    EXPECT_EQ(rx.received, kBytes) << "case " << idx;
    EXPECT_FALSE(rx.corrupt);
    ASSERT_NE(server, nullptr);
    const tls::TlsStats &st = server->stats();
    EXPECT_EQ(st.tagFailures, 0u);
    // Classification is a partition of all received records.
    EXPECT_EQ(st.rxFullyOffloaded + st.rxPartiallyOffloaded +
                  st.rxNotOffloaded,
              st.recordsRx);
}

INSTANTIATE_TEST_SUITE_P(Cases, TlsProperty, ::testing::Range(0, 10));

} // namespace
} // namespace anic
