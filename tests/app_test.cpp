/**
 * @file
 * Application-layer integration tests: HTTP server/client over all
 * transport variants and storage configurations, iperf streams, fio
 * jobs, and the KV store — the same wiring the benches use.
 */

#include <gtest/gtest.h>

#include "app/fio.hh"
#include "accel/qat.hh"
#include "app/iperf.hh"
#include "support/macro_world.hh"

namespace anic {
namespace {

using testing::MacroWorld;

MacroWorld::Config
c2Config(int serverCores = 1)
{
    MacroWorld::Config cfg;
    cfg.serverCores = serverCores;
    cfg.remoteStorage = false; // pure page cache
    return cfg;
}

MacroWorld::Config
c1Config(int serverCores = 1)
{
    MacroWorld::Config cfg;
    cfg.serverCores = serverCores;
    cfg.remoteStorage = true;
    cfg.storage.pageCacheBytes = 1 << 20; // tiny: every request misses
    return cfg;
}

TEST(HttpApp, PlainHttpServesCorrectBodies)
{
    MacroWorld w(c2Config());
    auto ids = w.makeFiles(4, 65536);
    w.storage->prewarm();

    app::HttpServer server(w.server, 80, *w.storage, {});
    app::HttpClientConfig ccfg;
    ccfg.connections = 8;
    ccfg.fileIds = ids;
    app::HttpClient client(w.generator, MacroWorld::kGenIp,
                           MacroWorld::kSrvIp, 80, w.files, ccfg);
    client.start();
    w.sim.runUntil(w.sim.now() + 100 * sim::kMillisecond);

    EXPECT_GT(client.stats().responses, 50u);
    EXPECT_EQ(client.stats().corruptions, 0u);
    EXPECT_EQ(server.stats().errors, 0u);
    // The server may have completed one more response per connection
    // that was still in flight when the window closed.
    EXPECT_GE(server.stats().requests, client.stats().responses);
    EXPECT_LE(server.stats().requests, client.stats().responses + 8);
}

TEST(HttpApp, HttpsVariantsServeIdenticalContent)
{
    struct Variant
    {
        bool tx;
        bool zc;
    };
    for (Variant v : {Variant{false, false}, Variant{true, false},
                      Variant{true, true}}) {
        MacroWorld w(c2Config());
        auto ids = w.makeFiles(4, 262144);
        w.storage->prewarm();

        app::HttpServerConfig scfg;
        scfg.tlsEnabled = true;
        scfg.tlsCfg.txOffload = v.tx;
        scfg.tlsCfg.zerocopySendfile = v.zc;
        app::HttpServer server(w.server, 443, *w.storage, scfg);

        app::HttpClientConfig ccfg;
        ccfg.connections = 8;
        ccfg.fileIds = ids;
        ccfg.tlsEnabled = true;
        app::HttpClient client(w.generator, MacroWorld::kGenIp,
                               MacroWorld::kSrvIp, 443, w.files, ccfg);
        client.start();
        w.sim.runUntil(w.sim.now() + 100 * sim::kMillisecond);

        EXPECT_GT(client.stats().responses, 10u)
            << "tx=" << v.tx << " zc=" << v.zc;
        EXPECT_EQ(client.stats().corruptions, 0u);
        EXPECT_EQ(server.stats().errors, 0u);
    }
}

TEST(HttpApp, C1ReadsComeFromTheRemoteDrive)
{
    MacroWorld w(c1Config());
    auto ids = w.makeFiles(64, 65536);

    app::HttpServer server(w.server, 80, *w.storage, {});
    app::HttpClientConfig ccfg;
    ccfg.connections = 16;
    ccfg.fileIds = ids;
    app::HttpClient client(w.generator, MacroWorld::kGenIp,
                           MacroWorld::kSrvIp, 80, w.files, ccfg);
    client.start();
    w.sim.runUntil(w.sim.now() + 200 * sim::kMillisecond);

    EXPECT_GT(client.stats().responses, 20u);
    EXPECT_EQ(client.stats().corruptions, 0u);
    EXPECT_GT(w.storage->cacheMisses(), 0u);
    EXPECT_GT(w.drive.bytesRead(), 0u);
}

TEST(HttpApp, C1WithNvmeOffloadsStillCorrect)
{
    MacroWorld::Config cfg = c1Config();
    cfg.storage.offloadEnabled = true;
    cfg.storage.offload.crcRx = true;
    cfg.storage.offload.copyRx = true;
    MacroWorld w(cfg);
    auto ids = w.makeFiles(64, 262144);

    app::HttpServer server(w.server, 80, *w.storage, {});
    app::HttpClientConfig ccfg;
    ccfg.connections = 16;
    ccfg.fileIds = ids;
    app::HttpClient client(w.generator, MacroWorld::kGenIp,
                           MacroWorld::kSrvIp, 80, w.files, ccfg);
    client.start();
    w.sim.runUntil(w.sim.now() + 300 * sim::kMillisecond);

    EXPECT_GT(client.stats().responses, 10u);
    EXPECT_EQ(client.stats().corruptions, 0u);
    // Placement happened on the storage path.
    uint64_t placed = 0;
    for (int i = 0; i < w.server.coreCount(); i++)
        placed += w.storage->queue(i)->stats().bytesPlaced;
    EXPECT_GT(placed, 0u);
}

TEST(HttpApp, C1OverNvmeTlsComposition)
{
    MacroWorld::Config cfg = c1Config();
    cfg.storage.tlsTransport = true;
    cfg.storage.tlsCfg.rxOffload = true;
    cfg.storage.offloadEnabled = true;
    cfg.storage.offload.crcRx = true;
    cfg.storage.offload.copyRx = true;
    MacroWorld w(cfg);
    auto ids = w.makeFiles(32, 262144);

    app::HttpServer server(w.server, 80, *w.storage, {});
    app::HttpClientConfig ccfg;
    ccfg.connections = 16;
    ccfg.fileIds = ids;
    app::HttpClient client(w.generator, MacroWorld::kGenIp,
                           MacroWorld::kSrvIp, 80, w.files, ccfg);
    client.start();
    w.sim.runUntil(w.sim.now() + 300 * sim::kMillisecond);

    EXPECT_GT(client.stats().responses, 10u);
    EXPECT_EQ(client.stats().corruptions, 0u);
    uint64_t placed = 0;
    uint64_t crc_skipped = 0;
    for (int i = 0; i < w.server.coreCount(); i++) {
        placed += w.storage->queue(i)->stats().bytesPlaced;
        crc_skipped += w.storage->queue(i)->stats().crcSkipped;
    }
    EXPECT_GT(placed, 0u);
    EXPECT_GT(crc_skipped, 0u);
}

TEST(KvApp, GetWorkloadServesValues)
{
    MacroWorld::Config cfg = c1Config();
    cfg.storage.offloadEnabled = true;
    cfg.storage.offload.crcRx = true;
    cfg.storage.offload.copyRx = true;
    MacroWorld w(cfg);
    w.makeFiles(64, 65536);

    app::KvServer server(w.server, 6379, *w.storage, {});
    app::KvClientConfig ccfg;
    ccfg.connections = 8;
    ccfg.keyCount = 64;
    app::KvClient client(w.generator, MacroWorld::kGenIp, MacroWorld::kSrvIp,
                         6379, w.files, ccfg);
    client.start();
    w.sim.runUntil(w.sim.now() + 200 * sim::kMillisecond);

    EXPECT_GT(client.stats().responses, 20u);
    EXPECT_EQ(client.stats().corruptions, 0u);
    EXPECT_EQ(server.stats().errors, 0u);
}

TEST(IperfApp, TlsStreamsWithOffloadAndLoss)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.01;
    lc.seed = 5;
    MacroWorld::Config cfg = c2Config();
    cfg.link = lc;
    MacroWorld w(cfg);

    app::IperfConfig icfg;
    icfg.streams = 8;
    icfg.clientTls.txOffload = true;
    icfg.serverTls.rxOffload = true;
    icfg.verifyContent = true;
    // Sender = generator, receiver = server (DUT).
    app::IperfRun run(w.generator, MacroWorld::kGenIp, w.server,
                      MacroWorld::kSrvIp, icfg);
    run.start();
    w.sim.runFor(20 * sim::kMillisecond);
    run.measureStart();
    w.sim.runFor(50 * sim::kMillisecond);
    run.measureStop();

    EXPECT_EQ(run.streamsConnected(), 8);
    EXPECT_EQ(run.corruptions(), 0u);
    EXPECT_GT(run.meter().gbps(), 0.5);
    tls::TlsStats rx = run.receiverTlsStats();
    EXPECT_EQ(rx.tagFailures, 0u);
    EXPECT_GT(rx.rxFullyOffloaded, 0u);
}

TEST(FioApp, RandomReadsAtDepth)
{
    MacroWorld::Config cfg = c1Config();
    cfg.storage.offloadEnabled = true;
    cfg.storage.offload.crcRx = true;
    cfg.storage.offload.copyRx = true;
    MacroWorld w(cfg);

    app::FioConfig fcfg;
    fcfg.blockSize = 65536;
    fcfg.ioDepth = 16;
    fcfg.verify = true;
    app::FioJob job(w.sim, *w.storage->queue(0), fcfg);
    job.driveSeed_ = w.drive.config().contentSeed;
    w.server.core(0).post([&job] { job.start(); });
    w.sim.runFor(100 * sim::kMillisecond);

    EXPECT_GT(job.completions(), 50u);
    EXPECT_EQ(job.failures(), 0u);
    EXPECT_GT(job.latencyUs().mean(), 0.0);
}

TEST(AccelModel, Table1CrossoverShape)
{
    // On-CPU AES-NI vs off-CPU accelerator: 1 thread loses to AES-NI,
    // 128 threads overlap latency and exceed it (for CBC-HMAC).
    sim::Simulator sim;
    host::CycleModel model;
    model.cpuGhz = 2.4; // Table 1 machine
    host::Core core(sim, model, 0);
    accel::OffCpuAccelerator dev(sim, {});

    double aesni_cbc = accel::runOnCpuSpeedTest(
        sim, core, accel::CipherCosts::kCbcHmacSha1PerByte, 16384,
        20 * sim::kMillisecond);
    double qat1 = accel::runAcceleratedSpeedTest(sim, core, dev, 1, 16384,
                                                 20 * sim::kMillisecond);
    double qat128 = accel::runAcceleratedSpeedTest(sim, core, dev, 128, 16384,
                                                   20 * sim::kMillisecond);

    EXPECT_LT(qat1, aesni_cbc);       // single-threaded QAT loses
    EXPECT_GT(qat128, aesni_cbc * 3); // 128 threads win big (4.5x paper)
    EXPECT_GT(qat128, qat1 * 5);
}

} // namespace
} // namespace anic
