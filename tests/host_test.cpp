/**
 * @file
 * Unit tests for the host substrate: core work-item accounting,
 * urgent posting, cycle model, page cache, drive model, file store.
 */

#include <gtest/gtest.h>

#include "host/core.hh"
#include "host/storage.hh"

namespace anic::host {
namespace {

TEST(CycleModel, Conversions)
{
    CycleModel m;
    m.cpuGhz = 2.0;
    EXPECT_EQ(m.cyclesToTicks(2000), 1000 * sim::kPicosecond * 1000);
    EXPECT_DOUBLE_EQ(m.ticksToCycles(sim::kMicrosecond), 2000.0);
}

TEST(CycleModel, CopyCostDependsOnWorkingSet)
{
    CycleModel m;
    EXPECT_EQ(m.copyPerByte(1 << 20), m.copyLlcPerByte);
    EXPECT_EQ(m.copyPerByte(m.llcBytes + 1), m.copyDramPerByte);
    EXPECT_GT(m.copyDramPerByte, m.copyLlcPerByte);
}

TEST(Core, ChargesMakeTheCoreBusy)
{
    sim::Simulator sim;
    CycleModel m; // 2 GHz
    Core core(sim, m, 0);

    sim::Tick done_at = 0;
    core.post([&] {
        core.charge(2000); // 1 us at 2 GHz
    });
    core.post([&] { done_at = sim.now(); });
    sim.run();
    // Second item starts only after the first item's charge elapses.
    EXPECT_EQ(done_at, sim::kMicrosecond);
    EXPECT_DOUBLE_EQ(core.totalBusyCycles(), 2000.0);
    EXPECT_EQ(core.itemsExecuted(), 2u);
}

TEST(Core, QueueSerializesWork)
{
    sim::Simulator sim;
    CycleModel m;
    Core core(sim, m, 0);
    std::vector<sim::Tick> starts;
    for (int i = 0; i < 5; i++) {
        core.post([&] {
            starts.push_back(sim.now());
            core.charge(1000); // 0.5 us each
        });
    }
    sim.run();
    ASSERT_EQ(starts.size(), 5u);
    for (size_t i = 1; i < starts.size(); i++)
        EXPECT_EQ(starts[i] - starts[i - 1], sim::kMicrosecond / 2);
}

TEST(Core, UrgentItemsJumpTheQueue)
{
    sim::Simulator sim;
    CycleModel m;
    Core core(sim, m, 0);
    std::vector<int> order;
    core.post([&] {
        core.charge(1000);
        order.push_back(1);
        // While item 1 runs, both a normal and an urgent item arrive.
        core.post([&] { order.push_back(2); });
        core.postUrgent([&] { order.push_back(3); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Core, CurrentPointsAtExecutingCore)
{
    sim::Simulator sim;
    CycleModel m;
    Core a(sim, m, 0);
    Core b(sim, m, 1);
    EXPECT_EQ(Core::current(), nullptr);
    bool checked = false;
    a.post([&] {
        EXPECT_EQ(Core::current(), &a);
        Core::chargeCurrent(500);
        checked = true;
    });
    sim.run();
    EXPECT_TRUE(checked);
    EXPECT_EQ(Core::current(), nullptr);
    EXPECT_DOUBLE_EQ(a.totalBusyCycles(), 500.0);
    EXPECT_DOUBLE_EQ(b.totalBusyCycles(), 0.0);
}

TEST(Core, UtilizationOverWindow)
{
    sim::Simulator sim;
    CycleModel m;
    Core core(sim, m, 0);
    core.post([&] { core.charge(10000); }); // 5 us busy
    sim.runUntil(10 * sim::kMicrosecond);
    EXPECT_NEAR(core.utilization(0, 10 * sim::kMicrosecond), 0.5, 1e-9);
}

TEST(Drive, BandwidthBoundService)
{
    sim::Simulator sim;
    NvmeDrive::Config cfg;
    cfg.readGBps = 1.0; // 1 GB/s
    cfg.accessLatency = 0;
    NvmeDrive drive(sim, cfg);

    sim::Tick t1 = 0;
    sim::Tick t2 = 0;
    drive.read(0, 1 << 20, [&](Bytes) { t1 = sim.now(); });
    drive.read(0, 1 << 20, [&](Bytes) { t2 = sim.now(); });
    sim.run();
    // 1 MiB at 1 GB/s ~ 1.048 ms; the second is queued behind it.
    EXPECT_NEAR(sim::ticksToSeconds(t1), 1.048e-3, 1e-4);
    EXPECT_NEAR(sim::ticksToSeconds(t2), 2.097e-3, 1e-4);
    EXPECT_EQ(drive.bytesRead(), 2u << 20);
}

TEST(Drive, ContentIsDeterministicByAddress)
{
    sim::Simulator sim;
    NvmeDrive drive(sim, {});
    Bytes a;
    Bytes b;
    drive.read(4096, 100, [&](Bytes d) { a = std::move(d); });
    drive.read(4096, 100, [&](Bytes d) { b = std::move(d); });
    sim.run();
    EXPECT_EQ(a, b);
    EXPECT_TRUE(checkDeterministic(a, drive.config().contentSeed, 4096));
}

TEST(FileStore, ExtentsAreAlignedAndDisjoint)
{
    FileStore fs(7);
    File a = fs.create(5000);
    File b = fs.create(4096);
    EXPECT_EQ(a.lba % PageCache::kPageSize, 0u);
    EXPECT_EQ(b.lba % PageCache::kPageSize, 0u);
    EXPECT_GE(b.lba, a.lba + a.size);
    EXPECT_EQ(fs.count(), 2u);
    EXPECT_EQ(fs.get(1).id, 1u);
}

TEST(PageCache, InsertContainsEvict)
{
    PageCache pc(8 * PageCache::kPageSize);
    pc.insert(1, 0, 4 * PageCache::kPageSize);
    EXPECT_TRUE(pc.contains(1, 0, 4 * PageCache::kPageSize));
    EXPECT_FALSE(pc.contains(1, 0, 5 * PageCache::kPageSize));
    EXPECT_FALSE(pc.contains(2, 0, 1));

    // Fill beyond capacity: LRU (file 1) evicts.
    pc.insert(2, 0, 8 * PageCache::kPageSize);
    EXPECT_FALSE(pc.contains(1, 0, PageCache::kPageSize));
    EXPECT_TRUE(pc.contains(2, 0, 8 * PageCache::kPageSize));
}

TEST(PageCache, TouchRefreshesLru)
{
    PageCache pc(2 * PageCache::kPageSize);
    pc.insert(1, 0, PageCache::kPageSize);
    pc.insert(2, 0, PageCache::kPageSize);
    pc.touch(1, 0, PageCache::kPageSize); // 1 is now most recent
    pc.insert(3, 0, PageCache::kPageSize);
    EXPECT_TRUE(pc.contains(1, 0, PageCache::kPageSize));
    EXPECT_FALSE(pc.contains(2, 0, PageCache::kPageSize));
}

TEST(PageCache, ZeroCapacityNeverCaches)
{
    PageCache pc(0);
    pc.insert(1, 0, PageCache::kPageSize);
    EXPECT_FALSE(pc.contains(1, 0, 1));
    EXPECT_EQ(pc.residentPages(), 0u);
}

} // namespace
} // namespace anic::host
