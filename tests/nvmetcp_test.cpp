/**
 * @file
 * NVMe-TCP tests: PDU codec, reassembly, end-to-end reads/writes over
 * the simulated fabric, CRC and copy (zero-copy placement) offloads,
 * loss resilience, and the NVMe-TLS composition.
 */

#include <gtest/gtest.h>

#include "nvmetcp/host_queue.hh"
#include "nvmetcp/target.hh"
#include "support/offload_world.hh"

namespace anic {
namespace {

using testing::OffloadWorld;
using namespace nvmetcp;

// ------------------------------------------------------------- codec

TEST(NvmePdu, CommonHeaderValidation)
{
    WireConfig wc;
    Bytes cmd = buildCmdCapsule(wc, CmdCapsule{7, kOpRead, 4096, 512});
    auto ch = parseCommonHdr(cmd);
    ASSERT_TRUE(ch.has_value());
    EXPECT_EQ(ch->type, kPduCapsuleCmd);
    EXPECT_EQ(ch->hlen, kCmdHdrSize);
    EXPECT_TRUE(ch->hasHdgst());
    EXPECT_EQ(ch->plen, cmd.size());

    // Corrupt the type / hlen / pdo: magic must fail.
    Bytes bad = cmd;
    bad[0] = 0x55;
    EXPECT_FALSE(parseCommonHdr(bad).has_value());
    bad = cmd;
    bad[2] = 10;
    EXPECT_FALSE(parseCommonHdr(bad).has_value());
    bad = cmd;
    bad[3] = 99;
    EXPECT_FALSE(parseCommonHdr(bad).has_value());
    bad = cmd;
    putLe32(bad.data() + 4, 3u << 21);
    EXPECT_FALSE(parseCommonHdr(bad).has_value());
}

TEST(NvmePdu, CmdCapsuleRoundTrip)
{
    WireConfig wc;
    CmdCapsule in{42, kOpWrite, 0x123456789aull, 65536};
    Bytes pdu = buildCmdCapsule(wc, in);
    CmdCapsule out = parseCmdCapsule(pdu);
    EXPECT_EQ(out.cid, in.cid);
    EXPECT_EQ(out.opcode, in.opcode);
    EXPECT_EQ(out.slba, in.slba);
    EXPECT_EQ(out.length, in.length);
}

TEST(NvmePdu, DataPduCarriesDigest)
{
    WireConfig wc;
    Bytes data(1000);
    fillDeterministic(data, 3, 0);
    Bytes pdu = buildDataPdu(wc, kPduC2HData, DataPduHdr{5, 100, 0}, data,
                             true);
    auto ch = parseCommonHdr(pdu);
    ASSERT_TRUE(ch.has_value());
    EXPECT_EQ(ch->dataLen(), data.size());
    uint32_t wire = getLe32(pdu.data() + ch->pdo + data.size());
    EXPECT_EQ(wire, crypto::Crc32c::compute(data));

    // Dummy-digest variant leaves zeros for the NIC.
    Bytes pdu2 = buildDataPdu(wc, kPduC2HData, DataPduHdr{5, 100, 0}, data,
                              false);
    EXPECT_EQ(getLe32(pdu2.data() + ch->pdo + data.size()), 0u);
}

TEST(NvmePdu, AssemblerHandlesArbitrarySegmentation)
{
    WireConfig wc;
    // Build a stream of mixed PDUs.
    Bytes stream;
    std::vector<size_t> lens;
    Rng rng(5);
    for (int i = 0; i < 20; i++) {
        Bytes pdu;
        if (i % 3 == 0) {
            pdu = buildCmdCapsule(wc, CmdCapsule{static_cast<uint16_t>(i),
                                                 kOpRead, 0, 4096});
        } else {
            Bytes data(rng.range(1, 5000));
            fillDeterministic(data, i, 0);
            pdu = buildDataPdu(wc, kPduC2HData,
                               DataPduHdr{static_cast<uint16_t>(i), 0,
                                          static_cast<uint32_t>(data.size())},
                               data, true);
        }
        lens.push_back(pdu.size());
        stream.insert(stream.end(), pdu.begin(), pdu.end());
    }

    PduAssembler as(wc);
    std::vector<RxPdu> out;
    uint64_t off = 0;
    while (off < stream.size()) {
        size_t n = std::min<size_t>(rng.range(1, 1460), stream.size() - off);
        tcp::RxSegment seg;
        seg.streamOff = off;
        seg.data.assign(stream.begin() + off, stream.begin() + off + n);
        as.ingest(seg, [&](RxPdu &&p) { out.push_back(std::move(p)); });
        off += n;
    }
    ASSERT_FALSE(as.error());
    ASSERT_EQ(out.size(), 20u);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(out[i].bytes.size(), lens[i]);
}

// ----------------------------------------------------- fabric fixture

/**
 * Host (initiator) on node B reads from the drive exported by node A:
 * the paper's layout, where the SSD lives on the workload generator.
 */
struct NvmeFabric
{
    static constexpr uint16_t kPort = 4420;

    OffloadWorld &w;
    host::NvmeDrive drive;
    WireConfig wc;
    std::unique_ptr<NvmeTarget> target;
    std::unique_ptr<NvmeHostQueue> hostq;
    bool ready = false;

    NvmeFabric(OffloadWorld &world, NvmeOffloadConfig ocfg,
               host::NvmeDrive::Config dcfg = {},
               NvmeOffloadConfig targetOcfg = {})
        : w(world), drive(world.sim, dcfg)
    {
        w.a.stack().listen(kPort, w.a.tcpConfig(),
                           [this, targetOcfg](tcp::TcpConnection &c) {
                               target = std::make_unique<NvmeTarget>(
                                   c, drive, wc);
                               target->enableOffload(w.a.device(), c,
                                                     targetOcfg);
                           });
        tcp::TcpConnection &c = w.b.stack().connect(
            OffloadWorld::kIpB, OffloadWorld::kIpA, kPort, w.b.tcpConfig());
        c.setOnConnected([this, &c, ocfg] {
            hostq = std::make_unique<NvmeHostQueue>(c, wc, ocfg);
            hostq->enableOffload(w.b.device(), c);
            ready = true;
        });
        w.sim.runUntil(10 * sim::kMillisecond);
        ANIC_ASSERT(ready, "fabric setup failed");
    }
};

bool
verifyRead(const host::NvmeDrive &drive, const host::BlockBufferPtr &buf,
           uint64_t slba)
{
    return checkDeterministic(buf->data, drive.config().contentSeed, slba);
}

// -------------------------------------------------------------- tests

TEST(NvmeFabric, SoftwareReadDeliversDriveContent)
{
    OffloadWorld w;
    NvmeFabric f(w, {});
    bool done = false;
    bool ok = false;
    host::BlockBufferPtr buf;
    f.hostq->read(8192, 262144, [&](bool o, host::BlockBufferPtr b) {
        done = true;
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(done);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(verifyRead(f.drive, buf, 8192));
    EXPECT_EQ(f.hostq->stats().crcSoftware, 1u);
    EXPECT_EQ(f.hostq->stats().crcSkipped, 0u);
    EXPECT_EQ(f.hostq->stats().bytesPlaced, 0u);
    EXPECT_EQ(f.hostq->stats().bytesCopied, 262144u);
}

TEST(NvmeFabric, CrcOffloadSkipsSoftwareDigest)
{
    OffloadWorld w;
    NvmeOffloadConfig ocfg;
    ocfg.crcRx = true;
    NvmeFabric f(w, ocfg);
    bool ok = false;
    host::BlockBufferPtr buf;
    f.hostq->read(0, 262144, [&](bool o, host::BlockBufferPtr b) {
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(verifyRead(f.drive, buf, 0));
    EXPECT_EQ(f.hostq->stats().crcSkipped, 1u);
    EXPECT_EQ(f.hostq->stats().crcSoftware, 0u);
}

TEST(NvmeFabric, CopyOffloadPlacesDirectly)
{
    OffloadWorld w;
    NvmeOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    NvmeFabric f(w, ocfg);
    bool ok = false;
    host::BlockBufferPtr buf;
    f.hostq->read(4096, 262144, [&](bool o, host::BlockBufferPtr b) {
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    // Content must be correct even though software never copied it.
    EXPECT_TRUE(verifyRead(f.drive, buf, 4096));
    EXPECT_EQ(f.hostq->stats().bytesCopied, 0u);
    EXPECT_EQ(f.hostq->stats().bytesPlaced, 262144u);
    EXPECT_EQ(f.hostq->stats().crcSkipped, 1u);
}

TEST(NvmeFabric, ManyConcurrentReads)
{
    OffloadWorld w;
    NvmeOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    NvmeFabric f(w, ocfg);
    const int kReqs = 32;
    int completed = 0;
    int correct = 0;
    for (int i = 0; i < kReqs; i++) {
        uint64_t slba = 65536ull * i;
        f.hostq->read(slba, 32768,
                      [&, slba](bool o, host::BlockBufferPtr b) {
                          completed++;
                          if (o && verifyRead(f.drive, b, slba))
                              correct++;
                      });
    }
    w.sim.runUntil(300 * sim::kMillisecond);
    EXPECT_EQ(completed, kReqs);
    EXPECT_EQ(correct, kReqs);
}

TEST(NvmeFabric, LossyLinkFallsBackAndRecovers)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.01; // target -> host data direction
    lc.seed = 3;
    OffloadWorld w(lc);
    NvmeOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    NvmeFabric f(w, ocfg);

    const int kReqs = 60;
    int completed = 0;
    int correct = 0;
    std::function<void(int)> issue = [&](int i) {
        uint64_t slba = 262144ull * i;
        f.hostq->read(slba, 262144,
                      [&, slba, i](bool o, host::BlockBufferPtr b) {
                          completed++;
                          if (o && verifyRead(f.drive, b, slba))
                              correct++;
                          if (i + 8 < kReqs)
                              issue(i + 8);
                      });
    };
    for (int i = 0; i < 8; i++)
        issue(i);
    w.sim.runUntil(3 * sim::kSecond);
    EXPECT_EQ(completed, kReqs);
    EXPECT_EQ(correct, kReqs);
    // Some capsules fell back to software CRC, some were offloaded.
    EXPECT_GT(f.hostq->stats().crcSoftware, 0u);
    EXPECT_GT(f.hostq->stats().crcSkipped, 0u);
    // Placement kept working across the losses (mid-capsule resume).
    EXPECT_GT(f.hostq->stats().bytesPlaced, 0u);
}

TEST(NvmeFabric, WritesReachTheDrive)
{
    OffloadWorld w;
    NvmeFabric f(w, {});
    bool ok = false;
    f.hostq->write(0, 131072, /*seed=*/9, [&](bool o) { ok = o; });
    w.sim.runUntil(100 * sim::kMillisecond);
    EXPECT_TRUE(ok);
    EXPECT_EQ(f.target->stats().writesServed, 1u);
    EXPECT_EQ(f.target->stats().bytesWritten, 131072u);
    EXPECT_EQ(f.target->stats().digestFailures, 0u);
    EXPECT_EQ(f.drive.bytesWritten(), 131072u);
    // 131072 bytes under a 128 KiB R2T window: exactly one credit.
    EXPECT_EQ(f.target->stats().r2tsSent, 1u);
    EXPECT_EQ(f.hostq->stats().r2tPdusRx, 1u);
}

TEST(NvmeFabric, LargeWriteUsesOneR2tWindowAtATime)
{
    OffloadWorld w;
    NvmeFabric f(w, {});
    bool ok = false;
    f.hostq->write(0, 512 << 10, /*seed=*/4, [&](bool o) { ok = o; });
    w.sim.runUntil(200 * sim::kMillisecond);
    EXPECT_TRUE(ok);
    // 512 KiB under a 128 KiB window: four sequential grants.
    EXPECT_EQ(f.target->stats().r2tsSent, 4u);
    EXPECT_EQ(f.hostq->stats().r2tPdusRx, 4u);
    EXPECT_EQ(f.drive.bytesWritten(), 512u << 10);
}

TEST(NvmeFabric, FlushAndCompareRoundTrip)
{
    OffloadWorld w;
    NvmeFabric f(w, {});
    uint64_t seed = f.drive.config().contentSeed;
    bool wok = false, fok = false, cok = false, cbad = true;
    f.hostq->write(0, 65536, seed, [&](bool o) { wok = o; });
    f.hostq->flush([&](bool o) { fok = o; });
    // COMPARE against the drive's synthetic content: the matching
    // seed succeeds, a different one must miscompare.
    f.hostq->compare(8192, 65536, seed, [&](bool o) { cok = o; });
    f.hostq->compare(8192, 65536, seed ^ 0xbad, [&](bool o) { cbad = o; });
    w.sim.runUntil(200 * sim::kMillisecond);
    EXPECT_TRUE(wok);
    EXPECT_TRUE(fok);
    EXPECT_TRUE(cok);
    EXPECT_FALSE(cbad);
    EXPECT_EQ(f.target->stats().flushesServed, 1u);
    EXPECT_EQ(f.target->stats().comparesServed, 2u);
    EXPECT_EQ(f.target->stats().compareMismatches, 1u);
    EXPECT_EQ(f.hostq->stats().flushesCompleted, 1u);
    EXPECT_EQ(f.hostq->stats().comparesCompleted, 2u);
}

TEST(NvmeFabric, TargetOffloadedWritePath)
{
    // Host fills H2CData digests via its tx engine; the target's NIC
    // verifies them and places payload straight into the pending
    // write's buffer (the ISSUE's ≥90 % full-offload criterion).
    OffloadWorld w;
    NvmeOffloadConfig hostO;
    hostO.crcTx = true;
    NvmeOffloadConfig tgtO;
    tgtO.crcRx = true;
    tgtO.copyRx = true;
    tgtO.crcTx = true;
    NvmeFabric f(w, hostO, {}, tgtO);
    int oks = 0;
    for (int i = 0; i < 8; i++) {
        f.hostq->write(262144ull * i, 262144, 30 + i,
                       [&](bool o) { oks += o ? 1 : 0; });
    }
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(oks, 8);
    const NvmeTargetStats &ts = f.target->stats();
    EXPECT_EQ(ts.digestFailures, 0u);
    EXPECT_GT(ts.h2cBytesPlaced, 0u);
    uint64_t total = ts.h2cDigestSkipped + ts.h2cDigestSoftware;
    ASSERT_GT(total, 0u);
    EXPECT_GE(ts.h2cDigestSkipped * 10, total * 9); // >= 90 % offloaded
}

TEST(NvmeFabric, TxCrcOffloadProducesValidDigests)
{
    OffloadWorld w;
    NvmeOffloadConfig ocfg;
    ocfg.crcTx = true;
    NvmeFabric f(w, ocfg);
    int oks = 0;
    for (int i = 0; i < 4; i++) {
        f.hostq->write(262144ull * i, 262144, 10 + i, [&](bool o) {
            if (o)
                oks++;
        });
    }
    w.sim.runUntil(300 * sim::kMillisecond);
    EXPECT_EQ(oks, 4);
    // The target verified NIC-computed digests in software.
    EXPECT_EQ(f.target->stats().digestFailures, 0u);
    EXPECT_GT(w.b.nicDev().stats().txOffloadedPkts, 0u);
}

TEST(NvmeFabric, TxCrcOffloadSurvivesLoss)
{
    net::Link::Config lc;
    lc.dir[1].lossRate = 0.02; // host -> target direction
    lc.seed = 11;
    OffloadWorld w(lc);
    NvmeOffloadConfig ocfg;
    ocfg.crcTx = true;
    NvmeFabric f(w, ocfg);
    int oks = 0;
    for (int i = 0; i < 6; i++) {
        f.hostq->write(262144ull * i, 262144, 20 + i, [&](bool o) {
            if (o)
                oks++;
        });
    }
    w.sim.runUntil(3 * sim::kSecond);
    EXPECT_EQ(oks, 6);
    EXPECT_EQ(f.target->stats().digestFailures, 0u);
    EXPECT_GT(w.b.nicDev().stats().txResyncs, 0u);
}

// ------------------------------------------------- NVMe-TLS composition

struct NvmeTlsFabric
{
    static constexpr uint16_t kPort = 4420;
    static constexpr uint64_t kSecret = 0xabcd;

    OffloadWorld &w;
    host::NvmeDrive drive;
    WireConfig wc;
    std::unique_ptr<tls::TlsSocket> targetTls;
    std::unique_ptr<tls::TlsSocket> hostTls;
    std::unique_ptr<NvmeTarget> target;
    std::unique_ptr<NvmeHostQueue> hostq;
    bool ready = false;

    NvmeTlsFabric(OffloadWorld &world, NvmeOffloadConfig ocfg,
                  bool tlsRxOffload)
        : w(world), drive(world.sim, {})
    {
        w.a.stack().listen(kPort, w.a.tcpConfig(),
                           [this](tcp::TcpConnection &c) {
                               targetTls = std::make_unique<tls::TlsSocket>(
                                   c, tls::SessionKeys::derive(kSecret, false),
                                   tls::TlsConfig{});
                               target = std::make_unique<NvmeTarget>(
                                   *targetTls, drive, wc);
                           });
        tcp::TcpConnection &c = w.b.stack().connect(
            OffloadWorld::kIpB, OffloadWorld::kIpA, kPort, w.b.tcpConfig());
        c.setOnConnected([this, &c, ocfg, tlsRxOffload] {
            tls::TlsConfig tcfg;
            tcfg.rxOffload = tlsRxOffload;
            hostTls = std::make_unique<tls::TlsSocket>(
                c, tls::SessionKeys::derive(kSecret, true), tcfg);
            hostTls->enableOffload(w.b.device());
            hostq = std::make_unique<NvmeHostQueue>(*hostTls, wc, ocfg);
            if (tlsRxOffload && (ocfg.crcRx || ocfg.copyRx))
                hostq->enableOffloadOverTls(*hostTls);
            ready = true;
        });
        w.sim.runUntil(10 * sim::kMillisecond);
        ANIC_ASSERT(ready, "fabric setup failed");
    }
};

TEST(NvmeTls, SoftwareTlsTransportWorks)
{
    OffloadWorld w;
    NvmeTlsFabric f(w, {}, /*tlsRxOffload=*/false);
    bool ok = false;
    host::BlockBufferPtr buf;
    f.hostq->read(8192, 262144, [&](bool o, host::BlockBufferPtr b) {
        ok = o;
        buf = std::move(b);
    });
    w.sim.runUntil(200 * sim::kMillisecond);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(checkDeterministic(buf->data, f.drive.config().contentSeed,
                                   8192));
}

TEST(NvmeTls, ComposedOffloadPlacesAndVerifies)
{
    OffloadWorld w;
    NvmeOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    NvmeTlsFabric f(w, ocfg, /*tlsRxOffload=*/true);

    const int kReqs = 8;
    int correct = 0;
    for (int i = 0; i < kReqs; i++) {
        uint64_t slba = 262144ull * i;
        f.hostq->read(slba, 262144,
                      [&, slba](bool o, host::BlockBufferPtr b) {
                          if (o && checkDeterministic(
                                       b->data,
                                       f.drive.config().contentSeed, slba))
                              correct++;
                      });
    }
    w.sim.runUntil(500 * sim::kMillisecond);
    EXPECT_EQ(correct, kReqs);
    // The inner (NVMe) engine placed payload and checked digests
    // while the outer (TLS) engine decrypted.
    EXPECT_GT(f.hostq->stats().bytesPlaced, 0u);
    EXPECT_GT(f.hostq->stats().crcSkipped, 0u);
    EXPECT_EQ(f.hostTls->stats().rxFullyOffloaded,
              f.hostTls->stats().recordsRx);
}

TEST(NvmeTls, ComposedOffloadSurvivesLoss)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.01;
    lc.seed = 7;
    OffloadWorld w(lc);
    NvmeOffloadConfig ocfg;
    ocfg.crcRx = true;
    ocfg.copyRx = true;
    NvmeTlsFabric f(w, ocfg, /*tlsRxOffload=*/true);

    const int kReqs = 40;
    int completed = 0;
    int correct = 0;
    std::function<void(int)> issue = [&](int i) {
        uint64_t slba = 262144ull * i;
        f.hostq->read(slba, 262144,
                      [&, slba, i](bool o, host::BlockBufferPtr b) {
                          completed++;
                          if (o && checkDeterministic(
                                       b->data,
                                       f.drive.config().contentSeed, slba))
                              correct++;
                          if (i + 4 < kReqs)
                              issue(i + 4);
                      });
    };
    for (int i = 0; i < 4; i++)
        issue(i);
    w.sim.runUntil(5 * sim::kSecond);
    EXPECT_EQ(completed, kReqs);
    EXPECT_EQ(correct, kReqs);
}

} // namespace
} // namespace anic
