/**
 * @file
 * Unit tests for the net substrate: header codecs, flow keys,
 * checksum, packet construction, and link impairments.
 */

#include <gtest/gtest.h>

#include "net/link.hh"
#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "sim/simulator.hh"

namespace anic::net {
namespace {

TEST(Headers, IpToString)
{
    EXPECT_EQ(ipToString(makeIp(10, 0, 0, 1)), "10.0.0.1");
    EXPECT_EQ(ipToString(makeIp(255, 254, 253, 252)), "255.254.253.252");
}

TEST(Headers, Ipv4RoundTrip)
{
    Ipv4Header h;
    h.src = makeIp(192, 168, 1, 2);
    h.dst = makeIp(10, 0, 0, 1);
    h.totalLen = 1500;
    h.ttl = 17;
    uint8_t buf[Ipv4Header::kSize];
    h.encode(buf);
    Ipv4Header back = Ipv4Header::decode(buf);
    EXPECT_EQ(back.src, h.src);
    EXPECT_EQ(back.dst, h.dst);
    EXPECT_EQ(back.totalLen, h.totalLen);
    EXPECT_EQ(back.ttl, h.ttl);
    EXPECT_EQ(back.protocol, Ipv4Header::kProtoTcp);
}

TEST(Headers, Ipv4ChecksumValidates)
{
    Ipv4Header h;
    h.src = makeIp(1, 2, 3, 4);
    h.dst = makeIp(5, 6, 7, 8);
    h.totalLen = 40;
    uint8_t buf[Ipv4Header::kSize];
    h.encode(buf);
    // Checksum over the full encoded header must be zero.
    EXPECT_EQ(internetChecksum(ByteView(buf, Ipv4Header::kSize)), 0);
    buf[8] ^= 0xff; // corrupt
    EXPECT_NE(internetChecksum(ByteView(buf, Ipv4Header::kSize)), 0);
}

TEST(Headers, TcpRoundTripAndWindowScaling)
{
    TcpHeader h;
    h.srcPort = 443;
    h.dstPort = 51234;
    h.seq = 0xdeadbeef;
    h.ack = 0x12345678;
    h.flags = kTcpAck | kTcpPsh;
    h.window = 3 << 20; // needs the implicit scale
    uint8_t buf[TcpHeader::kSize];
    h.encode(buf);
    TcpHeader back = TcpHeader::decode(buf);
    EXPECT_EQ(back.srcPort, h.srcPort);
    EXPECT_EQ(back.dstPort, h.dstPort);
    EXPECT_EQ(back.seq, h.seq);
    EXPECT_EQ(back.ack, h.ack);
    EXPECT_EQ(back.flags, h.flags);
    // Window quantized to 2^kWindowShift.
    EXPECT_LE(back.window, h.window);
    EXPECT_GT(back.window, h.window - (1u << TcpHeader::kWindowShift));
}

TEST(Headers, FlowKeyReverseAndHash)
{
    FlowKey k{makeIp(1, 1, 1, 1), makeIp(2, 2, 2, 2), 10, 20};
    FlowKey r = k.reversed();
    EXPECT_EQ(r.srcIp, k.dstIp);
    EXPECT_EQ(r.srcPort, k.dstPort);
    EXPECT_EQ(r.reversed(), k);
    EXPECT_NE(FlowKeyHash{}(k), FlowKeyHash{}(r));
}

TEST(Packet, MakeAndViews)
{
    Ipv4Header ip;
    ip.src = makeIp(1, 0, 0, 1);
    ip.dst = makeIp(1, 0, 0, 2);
    TcpHeader tcp;
    tcp.srcPort = 1000;
    tcp.dstPort = 2000;
    tcp.seq = 777;
    Bytes payload = {1, 2, 3, 4, 5};
    Packet p = Packet::make(ip, tcp, payload);

    EXPECT_EQ(p.payloadSize(), 5u);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           p.payload().begin()));
    EXPECT_EQ(p.tcp().seq, 777u);
    EXPECT_EQ(p.flow().srcIp, ip.src);
    EXPECT_EQ(p.flow().dstPort, 2000);
    EXPECT_EQ(p.wireSize(), p.bytes.size() + Packet::kWireOverhead);
}

net::PacketPtr
mkPkt(int tag)
{
    Ipv4Header ip;
    TcpHeader tcp;
    tcp.seq = static_cast<uint32_t>(tag);
    Bytes payload(10, static_cast<uint8_t>(tag));
    return PacketPool::threadDefault().make(ip, tcp, payload);
}

TEST(Link, DeliversWithPropagationDelay)
{
    sim::Simulator sim;
    Link::Config cfg;
    cfg.propDelay = 5 * sim::kMicrosecond;
    Link link(sim, cfg);
    sim::Tick arrival = 0;
    link.attach(1, [&](PacketPtr) { arrival = sim.now(); });
    link.attach(0, [](PacketPtr) {});
    link.transmit(0, mkPkt(1));
    sim.run();
    EXPECT_EQ(arrival, 5 * sim::kMicrosecond);
    EXPECT_EQ(link.stats(0).delivered, 1u);
}

TEST(Link, LossDropsApproximatelyAtRate)
{
    sim::Simulator sim;
    Link::Config cfg;
    cfg.dir[0].lossRate = 0.25;
    cfg.seed = 5;
    Link link(sim, cfg);
    int got = 0;
    link.attach(1, [&](PacketPtr) { got++; });
    const int kPkts = 4000;
    for (int i = 0; i < kPkts; i++)
        link.transmit(0, mkPkt(i));
    sim.run();
    EXPECT_NEAR(static_cast<double>(kPkts - got) / kPkts, 0.25, 0.03);
    EXPECT_EQ(link.stats(0).dropped + link.stats(0).delivered,
              static_cast<uint64_t>(kPkts));
}

TEST(Link, ReorderDelaysSelectedPackets)
{
    sim::Simulator sim;
    Link::Config cfg;
    cfg.dir[0].reorderRate = 0.2;
    cfg.dir[0].reorderExtraDelay = 100 * sim::kMicrosecond;
    cfg.seed = 6;
    Link link(sim, cfg);
    std::vector<uint32_t> order;
    link.attach(1, [&](PacketPtr p) { order.push_back(p->tcp().seq); });
    for (int i = 0; i < 200; i++)
        link.transmit(0, mkPkt(i));
    sim.run();
    ASSERT_EQ(order.size(), 200u);
    bool out_of_order = false;
    for (size_t i = 1; i < order.size(); i++)
        out_of_order |= order[i] < order[i - 1];
    EXPECT_TRUE(out_of_order);
    EXPECT_GT(link.stats(0).reordered, 0u);
}

TEST(Link, DuplicationCreatesIndependentCopies)
{
    sim::Simulator sim;
    Link::Config cfg;
    cfg.dir[0].duplicateRate = 1.0; // every packet duplicated
    cfg.seed = 7;
    Link link(sim, cfg);
    std::vector<PacketPtr> got;
    link.attach(1, [&](PacketPtr p) { got.push_back(std::move(p)); });
    link.transmit(0, mkPkt(42));
    sim.run();
    ASSERT_EQ(got.size(), 2u);
    // The duplicate owns its bytes: mutating one must not alias.
    got[0]->payloadMut()[0] = 0x99;
    EXPECT_NE(got[0]->payload()[0], got[1]->payload()[0]);
    EXPECT_TRUE(got[1]->rx.placed.empty());
}

TEST(Link, CorruptionFlipsPayloadLeavesHeadersValid)
{
    sim::Simulator sim;
    Link::Config cfg;
    cfg.dir[0].corruptRate = 1.0; // every payload-carrying packet corrupted
    cfg.seed = 8;
    Link link(sim, cfg);
    std::vector<PacketPtr> got;
    link.attach(1, [&](PacketPtr p) { got.push_back(std::move(p)); });
    Ipv4Header ip;
    ip.src = makeIp(1, 0, 0, 1);
    ip.dst = makeIp(1, 0, 0, 2);
    TcpHeader tcp;
    tcp.srcPort = 1000;
    tcp.dstPort = 2000;
    tcp.seq = 12345;
    Bytes payload(64, 0xab);
    auto pkt = PacketPool::threadDefault().make(ip, tcp, payload);
    link.transmit(0, pkt);
    // A pure-ACK packet must never be corrupted (nothing to flip).
    link.transmit(0, PacketPool::threadDefault().make(ip, tcp, {}));
    sim.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(link.stats(0).corrupted, 1u);
    // Headers survive intact, so the stack still delivers the segment.
    EXPECT_EQ(got[0]->tcp().seq, 12345u);
    EXPECT_EQ(got[0]->ip().src, ip.src);
    // Payload differs in at least one byte...
    EXPECT_FALSE(std::equal(payload.begin(), payload.end(),
                            got[0]->payload().begin()));
    // ...and the sender's copy is untouched (retransmits stay pristine).
    EXPECT_EQ(pkt->payload()[0], 0xab);
}

TEST(Link, ImpairmentsAreDirectional)
{
    sim::Simulator sim;
    Link::Config cfg;
    cfg.dir[0].lossRate = 1.0; // 0->1 fully lossy, 1->0 clean
    Link link(sim, cfg);
    int got0 = 0;
    int got1 = 0;
    link.attach(0, [&](PacketPtr) { got0++; });
    link.attach(1, [&](PacketPtr) { got1++; });
    for (int i = 0; i < 10; i++) {
        link.transmit(0, mkPkt(i));
        link.transmit(1, mkPkt(i));
    }
    sim.run();
    EXPECT_EQ(got1, 0);
    EXPECT_EQ(got0, 10);
}

} // namespace
} // namespace anic::net
