/**
 * @file
 * NIC device-model tests: line-rate serialization, tx-ring
 * backpressure, context cache LRU + PCIe accounting, context
 * lifecycle, and tx offload processing order with in-ring resync
 * descriptors.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "net/packet_pool.hh"
#include "nic/cache_policy.hh"
#include "nic/nic.hh"
#include "tls/tls_engine.hh"

namespace anic::nic {
namespace {

net::PacketPtr
mkPkt(net::IpAddr src, net::IpAddr dst, uint32_t seq, size_t payloadLen,
      uint64_t txCtx = 0)
{
    net::Ipv4Header ip;
    ip.src = src;
    ip.dst = dst;
    net::TcpHeader tcp;
    tcp.srcPort = 1;
    tcp.dstPort = 2;
    tcp.seq = seq;
    Bytes payload(payloadLen, 0xab);
    auto p = net::PacketPool::threadDefault().make(ip, tcp, payload);
    p->txCtx = txCtx;
    return p;
}

struct NicWorld
{
    sim::Simulator sim;
    net::Link link;
    Nic nicA;
    std::vector<net::PacketPtr> atB;

    explicit NicWorld(Nic::Config cfg = {})
        : link(sim, {}), nicA(sim, link, 0, cfg)
    {
        link.attach(1, [this](net::PacketPtr p) { atB.push_back(p); });
    }
};

TEST(NicDevice, SerializesAtLineRate)
{
    Nic::Config cfg;
    cfg.gbps = 10.0; // slow so serialization dominates
    cfg.txLatency = 0;
    NicWorld w(cfg);

    // Two 10000-byte packets: second leaves one serialization later.
    w.nicA.transmit(mkPkt(1, 2, 0, 10000));
    w.nicA.transmit(mkPkt(1, 2, 10000, 10000));
    w.sim.run();
    ASSERT_EQ(w.atB.size(), 2u);
    EXPECT_EQ(w.nicA.stats().pktsTx, 2u);
    // 10040 wire bytes at 10 Gbps ~ 8.03 us each; link prop 2 us.
    double total_s = sim::ticksToSeconds(w.sim.now());
    EXPECT_NEAR(total_s, 2 * 8.03e-6 + 2e-6, 1e-6);
}

TEST(NicDevice, TxRingBackpressure)
{
    Nic::Config cfg;
    cfg.txRingSize = 4;
    cfg.gbps = 1.0;
    NicWorld w(cfg);
    int space_events = 0;
    w.nicA.setOnTxSpace([&] { space_events++; });

    int accepted = 0;
    for (int i = 0; i < 10; i++)
        accepted += w.nicA.transmit(mkPkt(1, 2, i * 100, 100)) ? 1 : 0;
    EXPECT_EQ(accepted, 4);
    w.sim.run();
    EXPECT_GT(space_events, 0);
    EXPECT_EQ(w.atB.size(), 4u);
}

TEST(NicDevice, PcieAccountsTxAndRx)
{
    NicWorld w;
    Nic nicB(w.sim, w.link, 1, {}); // replaces the raw handler
    w.nicA.transmit(mkPkt(1, 2, 0, 1000));
    w.sim.run();
    EXPECT_EQ(w.nicA.pcie().txDataBytes, 1040u);
    EXPECT_EQ(nicB.pcie().rxDataBytes, 1040u);
    EXPECT_GT(w.nicA.pcie().descriptorBytes, 0u);
}

TEST(NicDevice, ContextCacheLruAndEviction)
{
    Nic::Config cfg;
    cfg.ctxCacheCapacity = 2;
    NicWorld w(cfg);

    tls::DirectionKeys keys;
    keys.key.assign(16, 1);
    keys.staticIv.assign(12, 2);

    uint64_t c1 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    uint64_t c2 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    uint64_t c3 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    (void)c1;
    (void)c2;
    (void)c3;
    // Creation touches each context: c3 evicted c1.
    const NicStats &st = w.nicA.stats();
    EXPECT_EQ(st.ctxCacheMisses, 3u);
    EXPECT_EQ(st.ctxCacheEvictions, 1u);
    EXPECT_EQ(w.nicA.pcie().ctxFetchBytes, 3 * w.nicA.config().ctxBytes);
    EXPECT_EQ(w.nicA.pcie().ctxWritebackBytes, w.nicA.config().ctxBytes);
}

TEST(NicDevice, RegistryMirrorsStatsUnderCacheChurn)
{
    // Fig 19 path: more flows than context-cache slots, so every
    // touch in the round-robin misses, fetches over PCIe and evicts
    // (with writeback) an older context. The registry view must stay
    // bit-identical to the legacy NicStats/PcieStats structs.
    sim::StatsRegistry reg;
    Nic::Config cfg;
    cfg.ctxCacheCapacity = 4;
    cfg.name = "dut";
    cfg.registry = &reg;
    NicWorld w(cfg);

    tls::DirectionKeys keys;
    keys.key.assign(16, 1);
    keys.staticIv.assign(12, 2);

    constexpr int kFlows = 11; // > ctxCacheCapacity
    std::vector<uint64_t> ids;
    for (int i = 0; i < kFlows; i++) {
        ids.push_back(w.nicA.createTxContext(
            std::make_unique<tls::TlsTxEngine>(keys), 0, 0));
    }
    std::vector<uint32_t> seq(kFlows, 0);
    for (int round = 0; round < 3; round++) {
        for (int i = 0; i < kFlows; i++) {
            w.nicA.transmit(mkPkt(1, 2, seq[i], 1000, ids[i]));
            seq[i] += 1000;
        }
    }
    w.sim.run();

    const NicStats &st = w.nicA.stats();
    const PcieStats &pc = w.nicA.pcie();
    EXPECT_GT(st.ctxCacheEvictions, 0u);
    EXPECT_GT(pc.ctxWritebackBytes, 0u);

    auto counter = [&](const char *leaf) {
        const sim::Counter *c = reg.findCounter(std::string("dut.") + leaf);
        EXPECT_NE(c, nullptr) << leaf;
        return c ? c->value() : ~0ull;
    };
    EXPECT_EQ(counter("pktsTx"), st.pktsTx);
    EXPECT_EQ(counter("ctxCacheHits"), st.ctxCacheHits);
    EXPECT_EQ(counter("ctxCacheMisses"), st.ctxCacheMisses);
    EXPECT_EQ(counter("ctxCacheEvictions"), st.ctxCacheEvictions);
    EXPECT_EQ(counter("txOffloadedPkts"), st.txOffloadedPkts);
    EXPECT_EQ(counter("pcie.ctxFetchBytes"), pc.ctxFetchBytes);
    EXPECT_EQ(counter("pcie.ctxWritebackBytes"), pc.ctxWritebackBytes);
    EXPECT_EQ(counter("pcie.txDataBytes"), pc.txDataBytes);

    // LRU invariant under churn: every round-robin touch beyond the
    // warm first four is a miss, and each miss evicts.
    EXPECT_EQ(st.ctxCacheMisses,
              st.ctxCacheEvictions + cfg.ctxCacheCapacity);
    EXPECT_EQ(pc.ctxFetchBytes,
              st.ctxCacheMisses * w.nicA.config().ctxBytes);
    EXPECT_EQ(pc.ctxWritebackBytes,
              st.ctxCacheEvictions * w.nicA.config().ctxBytes);
}

TEST(NicDevice, TxOffloadEncryptsThroughRingInOrder)
{
    NicWorld w;
    tls::DirectionKeys keys;
    keys.key.assign(16, 0x42);
    keys.staticIv.assign(12, 0x24);

    uint64_t ctx = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 1000, 0);

    // Build one small record: header + plaintext + dummy tag.
    constexpr size_t kPlain = 100;
    tls::RecordHeader h;
    h.length = kPlain + 16;
    Bytes rec(h.wireLen(), 0);
    h.encode(rec.data());
    Bytes pt(kPlain);
    fillDeterministic(pt, 3, 0);
    std::memcpy(rec.data() + 5, pt.data(), kPlain);

    // Ship it in two packets tagged with the context.
    net::Ipv4Header ip;
    ip.src = 1;
    ip.dst = 2;
    net::TcpHeader t1;
    t1.seq = 1000;
    auto p1 = net::PacketPool::threadDefault().make(
        ip, t1, ByteView(rec).subspan(0, 60));
    p1->txCtx = ctx;
    net::TcpHeader t2;
    t2.seq = 1060;
    auto p2 = net::PacketPool::threadDefault().make(
        ip, t2, ByteView(rec).subspan(60));
    p2->txCtx = ctx;
    w.nicA.transmit(p1);
    w.nicA.transmit(p2);
    w.sim.run();

    ASSERT_EQ(w.atB.size(), 2u);
    Bytes sealed;
    for (const auto &p : w.atB) {
        ByteView pl = p->payload();
        sealed.insert(sealed.end(), pl.begin(), pl.end());
    }
    // The wire record must decrypt with the session keys.
    crypto::AesGcm gcm(keys.key);
    auto nonce = tls::recordNonce(keys.staticIv, 0);
    Bytes out;
    ASSERT_TRUE(gcm.open(nonce, ByteView(sealed).subspan(0, 5),
                         ByteView(sealed).subspan(5), out));
    EXPECT_EQ(out, pt);
    EXPECT_EQ(w.nicA.stats().txOffloadedPkts, 2u);
}

TEST(NicDevice, TxResyncDescriptorRebuildsState)
{
    NicWorld w;
    tls::DirectionKeys keys;
    keys.key.assign(16, 0x42);
    keys.staticIv.assign(12, 0x24);
    uint64_t ctx = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 1000, 0);

    constexpr size_t kPlain = 200;
    tls::RecordHeader h;
    h.length = kPlain + 16;
    Bytes rec(h.wireLen(), 0);
    h.encode(rec.data());
    Bytes pt(kPlain);
    fillDeterministic(pt, 4, 0);
    std::memcpy(rec.data() + 5, pt.data(), kPlain);

    net::Ipv4Header ip;
    ip.src = 1;
    ip.dst = 2;

    // First pass: full record in-sequence.
    net::TcpHeader t1;
    t1.seq = 1000;
    auto p1 = net::PacketPool::threadDefault().make(ip, t1, rec);
    p1->txCtx = ctx;
    w.nicA.transmit(p1);
    w.sim.run();
    Bytes first = Bytes(w.atB[0]->payload().begin(),
                        w.atB[0]->payload().end());

    // Retransmission of the record's tail: the driver posts a resync
    // descriptor with the rebuild prefix, then the packet.
    constexpr size_t kOff = 77;
    w.nicA.postTxResync(ctx, 1000 + kOff, 0,
                        ByteView(rec).subspan(0, kOff));
    net::TcpHeader t2;
    t2.seq = 1000 + kOff;
    auto p2 = net::PacketPool::threadDefault().make(
        ip, t2, ByteView(rec).subspan(kOff));
    p2->txCtx = ctx;
    w.nicA.transmit(p2);
    w.sim.run();

    ASSERT_EQ(w.atB.size(), 2u);
    ByteView retx = w.atB[1]->payload();
    // Identical ciphertext for the overlapping range: receivers mix
    // original and retransmitted bytes freely.
    EXPECT_TRUE(std::equal(retx.begin(), retx.end(), first.begin() + kOff));
    EXPECT_EQ(w.nicA.stats().txResyncs, 1u);
    EXPECT_EQ(w.nicA.pcie().ctxRecoveryBytes, kOff);
}

net::PacketPtr
mkFlowPkt(const net::FlowKey &flow, uint32_t seq, size_t payloadLen)
{
    net::Ipv4Header ip;
    ip.src = flow.srcIp;
    ip.dst = flow.dstIp;
    net::TcpHeader tcp;
    tcp.srcPort = flow.srcPort;
    tcp.dstPort = flow.dstPort;
    tcp.seq = seq;
    Bytes payload(payloadLen, 0xcd);
    return net::PacketPool::threadDefault().make(ip, tcp, payload);
}

net::FlowKey
flowKey(uint16_t srcPort)
{
    net::FlowKey f;
    f.srcIp = net::makeIp(10, 0, 0, 1);
    f.dstIp = net::makeIp(10, 0, 0, 2);
    f.srcPort = srcPort;
    f.dstPort = 443;
    return f;
}

TEST(NicMultiQueue, RssSteersFlowsToStableQueues)
{
    NicWorld w;
    Nic::Config cfgB;
    cfgB.numQueues = 4;
    Nic nicB(w.sim, w.link, 1, cfgB);
    ASSERT_EQ(nicB.queueCount(), 4);

    std::vector<std::pair<int, net::FlowKey>> delivered;
    nicB.setOnRxInterrupt([&](int queue, Nic::RxBatch pkts) {
        for (const auto &p : pkts)
            delivered.emplace_back(queue, p->flow());
        nicB.recycleRxBatch(std::move(pkts));
    });

    constexpr int kFlows = 16;
    constexpr int kPktsPerFlow = 3;
    for (int round = 0; round < kPktsPerFlow; round++) {
        for (int f = 0; f < kFlows; f++) {
            w.nicA.transmit(mkFlowPkt(flowKey(static_cast<uint16_t>(5000 + f)),
                                      round * 100, 100));
        }
    }
    w.sim.run();
    ASSERT_EQ(delivered.size(),
              static_cast<size_t>(kFlows * kPktsPerFlow));

    // Every packet landed on the queue RSS pins its flow to, and no
    // flow ever migrated.
    int usedQueues = 0;
    uint64_t rxByQueue[4] = {0, 0, 0, 0};
    for (const auto &[queue, flow] : delivered) {
        EXPECT_EQ(queue, nicB.rxQueueFor(flow));
        rxByQueue[queue]++;
    }
    for (int q = 0; q < 4; q++) {
        EXPECT_EQ(nicB.queueStats(q).rxPkts, rxByQueue[q]);
        usedQueues += rxByQueue[q] > 0 ? 1 : 0;
    }
    EXPECT_GT(usedQueues, 1) << "16 flows all hashed to one queue";
}

TEST(NicMultiQueue, TxQueuePairsWithRxQueue)
{
    Nic::Config cfg;
    cfg.numQueues = 8;
    NicWorld w(cfg);
    // XPS pairing: an outgoing packet rides the tx ring whose index
    // matches the rx queue of the reverse (arriving) direction, so
    // resync descriptors posted to txQueueFor() stay ordered with the
    // flow's data.
    for (int f = 0; f < 32; f++) {
        net::FlowKey tx = flowKey(static_cast<uint16_t>(7000 + f));
        EXPECT_EQ(w.nicA.txQueueFor(tx), w.nicA.rxQueueFor(tx.reversed()));
    }
}

TEST(NicMultiQueue, RoundRobinDrainsEveryTxRing)
{
    Nic::Config cfg;
    cfg.numQueues = 4;
    cfg.gbps = 1.0; // slow line so the rings stay backlogged
    NicWorld w(cfg);
    for (int q = 0; q < 4; q++) {
        for (int i = 0; i < 3; i++) {
            ASSERT_TRUE(w.nicA.transmit(
                mkFlowPkt(flowKey(static_cast<uint16_t>(100 + q)), i * 100,
                          100),
                q));
        }
    }
    w.sim.run();
    ASSERT_EQ(w.atB.size(), 12u);
    for (int q = 0; q < 4; q++)
        EXPECT_EQ(w.nicA.queueStats(q).txPkts, 3u);
    // One grant per ring per cycle: the first four departures are one
    // packet from each ring, not three from ring 0.
    std::vector<uint16_t> firstFour;
    for (int i = 0; i < 4; i++)
        firstFour.push_back(w.atB[i]->flow().srcPort);
    std::sort(firstFour.begin(), firstFour.end());
    EXPECT_EQ(firstFour, (std::vector<uint16_t>{100, 101, 102, 103}));
}

TEST(NicMultiQueue, CoalescingThresholdBatchesInterrupts)
{
    NicWorld w;
    Nic::Config cfgB;
    cfgB.coalescePkts = 4;
    cfgB.coalesceDelay = 1 * sim::kMillisecond; // timer never wins here
    Nic nicB(w.sim, w.link, 1, cfgB);

    std::vector<size_t> batchSizes;
    nicB.setOnRxInterrupt([&](int, Nic::RxBatch pkts) {
        batchSizes.push_back(pkts.size());
        nicB.recycleRxBatch(std::move(pkts));
    });

    net::FlowKey f = flowKey(9000);
    for (int i = 0; i < 8; i++)
        w.nicA.transmit(mkFlowPkt(f, i * 100, 100));
    w.sim.run();

    // 8 completions at threshold 4 => exactly 2 interrupts.
    ASSERT_EQ(batchSizes.size(), 2u);
    EXPECT_EQ(batchSizes[0], 4u);
    EXPECT_EQ(batchSizes[1], 4u);
    EXPECT_EQ(nicB.stats().irqsFired, 2u);
    EXPECT_EQ(nicB.stats().coalescedPkts, 6u);
    EXPECT_EQ(nicB.queueStats(0).compIrqs, 2u);
    EXPECT_EQ(nicB.queueStats(0).coalescedPkts, 6u);
}

TEST(NicMultiQueue, CoalescingTimerFlushesPartialBatch)
{
    NicWorld w;
    Nic::Config cfgB;
    cfgB.coalescePkts = 64; // threshold unreachable
    cfgB.coalesceDelay = 20 * sim::kMicrosecond;
    Nic nicB(w.sim, w.link, 1, cfgB);

    std::vector<std::pair<sim::Tick, size_t>> irqs;
    nicB.setOnRxInterrupt([&](int, Nic::RxBatch pkts) {
        irqs.emplace_back(w.sim.now(), pkts.size());
        nicB.recycleRxBatch(std::move(pkts));
    });

    net::FlowKey f = flowKey(9001);
    for (int i = 0; i < 3; i++)
        w.nicA.transmit(mkFlowPkt(f, i * 100, 100));
    w.sim.run();

    // The delay timer (armed by the first pending completion) flushes
    // all three in one interrupt.
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0].second, 3u);
    EXPECT_EQ(nicB.stats().coalescedPkts, 2u);
}

TEST(NicMultiQueue, PerQueueStatsPublishedInRegistry)
{
    sim::StatsRegistry reg;
    NicWorld w;
    Nic::Config cfgB;
    cfgB.numQueues = 2;
    cfgB.name = "dut";
    cfgB.registry = &reg;
    Nic nicB(w.sim, w.link, 1, cfgB);
    nicB.setOnRxInterrupt([&](int, Nic::RxBatch pkts) {
        nicB.recycleRxBatch(std::move(pkts));
    });

    for (int f = 0; f < 8; f++)
        w.nicA.transmit(mkFlowPkt(flowKey(static_cast<uint16_t>(6000 + f)),
                                  0, 100));
    w.sim.run();

    auto counter = [&](const std::string &path) {
        const sim::Counter *c = reg.findCounter(path);
        EXPECT_NE(c, nullptr) << path;
        return c ? c->value() : ~0ull;
    };
    uint64_t q0 = counter("dut.q0.rxPkts");
    uint64_t q1 = counter("dut.q1.rxPkts");
    EXPECT_EQ(q0 + q1, 8u); // per-queue counters roll up to the NIC total
    EXPECT_EQ(counter("dut.pktsRx"), 8u);
    EXPECT_EQ(q0, nicB.queueStats(0).rxPkts);
    EXPECT_EQ(q1, nicB.queueStats(1).rxPkts);
    EXPECT_EQ(counter("dut.q0.compIrqs") + counter("dut.q1.compIrqs"),
              nicB.stats().irqsFired);
}

TEST(NicMultiQueue, SingleQueueMatchesLegacyPerPacketDelivery)
{
    // Defaults (1 queue, per-packet interrupts): every packet is its
    // own interrupt, nothing is coalesced, and everything lands on
    // queue 0 — the exact pre-multi-queue schedule.
    NicWorld w;
    Nic nicB(w.sim, w.link, 1, {});
    ASSERT_EQ(nicB.queueCount(), 1);

    std::vector<size_t> batchSizes;
    nicB.setOnRxInterrupt([&](int queue, Nic::RxBatch pkts) {
        EXPECT_EQ(queue, 0);
        batchSizes.push_back(pkts.size());
        nicB.recycleRxBatch(std::move(pkts));
    });
    for (int i = 0; i < 5; i++)
        w.nicA.transmit(mkFlowPkt(flowKey(9002), i * 100, 100));
    w.sim.run();

    ASSERT_EQ(batchSizes.size(), 5u);
    for (size_t n : batchSizes)
        EXPECT_EQ(n, 1u);
    EXPECT_EQ(nicB.stats().coalescedPkts, 0u);
}

TEST(NicDevice, DestroyedContextStopsOffloading)
{
    NicWorld w;
    tls::DirectionKeys keys;
    keys.key.assign(16, 1);
    keys.staticIv.assign(12, 2);
    uint64_t ctx = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    w.nicA.destroyTxContext(ctx);
    auto p = mkPkt(1, 2, 0, 50, ctx);
    Bytes before(p->payload().begin(), p->payload().end());
    w.nicA.transmit(p);
    w.sim.run();
    ASSERT_EQ(w.atB.size(), 1u);
    // Payload passes through unmodified.
    EXPECT_TRUE(std::equal(before.begin(), before.end(),
                           w.atB[0]->payload().begin()));
    EXPECT_EQ(w.nicA.stats().txOffloadedPkts, 0u);
}

// ------------------------------------------------- cache policy units

/** Touch-or-insert, the data path's access pattern; returns hit. */
bool
access(CachePolicy &c, uint64_t id)
{
    if (c.touch(id))
        return true;
    c.insert(id);
    return false;
}

TEST(CachePolicy, LruEvictsLeastRecentlyTouched)
{
    std::vector<uint64_t> evicted;
    auto c = CachePolicy::make(CtxPolicy::Lru, 2,
                               [&](uint64_t id) { evicted.push_back(id); });
    access(*c, 1);
    access(*c, 2);
    EXPECT_TRUE(access(*c, 1)); // 1 is now MRU
    access(*c, 3);              // must evict 2, not 1
    EXPECT_EQ(evicted, (std::vector<uint64_t>{2}));
    EXPECT_TRUE(c->resident(1));
    EXPECT_FALSE(c->resident(2));
    EXPECT_TRUE(c->resident(3));
    EXPECT_EQ(c->size(), 2u);
}

TEST(CachePolicy, ClockSecondChance)
{
    std::vector<uint64_t> evicted;
    auto c = CachePolicy::make(CtxPolicy::Clock, 2,
                               [&](uint64_t id) { evicted.push_back(id); });
    access(*c, 1);
    access(*c, 2);
    // Both reference bits set: the hand clears them in one sweep and
    // evicts the first slot on the second pass (1, the oldest).
    access(*c, 3);
    EXPECT_EQ(evicted, (std::vector<uint64_t>{1}));
    EXPECT_TRUE(c->resident(2));
    EXPECT_TRUE(c->resident(3));
    // 3's bit is set from its insert, 2's was cleared by that sweep:
    // the next insert takes 2 even though 3 arrived later.
    access(*c, 4);
    EXPECT_EQ(evicted, (std::vector<uint64_t>{1, 2}));
    EXPECT_TRUE(c->resident(3));
    EXPECT_TRUE(c->resident(4));
}

TEST(CachePolicy, PinHotSurvivesOneShotFlood)
{
    std::vector<uint64_t> evicted;
    auto c = CachePolicy::make(CtxPolicy::PinHot, 8,
                               [&](uint64_t id) { evicted.push_back(id); });
    // Two flows touched twice: promoted into the protected segment.
    access(*c, 1);
    access(*c, 2);
    EXPECT_TRUE(access(*c, 1));
    EXPECT_TRUE(access(*c, 2));
    // A churn burst of one-shot flows washes through probation...
    for (uint64_t id = 100; id < 130; id++)
        EXPECT_FALSE(access(*c, id));
    // ...without flushing the hot set.
    EXPECT_TRUE(c->resident(1));
    EXPECT_TRUE(c->resident(2));
    for (uint64_t id : evicted)
        EXPECT_GE(id, 100u);
    // An LRU of the same capacity would have evicted 1 and 2 long ago.
}

TEST(CachePolicy, PoliciesAgreeAtCapacityOne)
{
    // Degenerate capacity: the resident set is exactly the last
    // accessed id, so every policy must produce the same hit/miss and
    // eviction sequence.
    const uint64_t seq[] = {5, 6, 5, 5, 7, 7, 6, 5};
    for (CtxPolicy p :
         {CtxPolicy::Lru, CtxPolicy::Clock, CtxPolicy::PinHot}) {
        std::vector<uint64_t> evicted;
        auto c = CachePolicy::make(
            p, 1, [&](uint64_t id) { evicted.push_back(id); });
        std::vector<bool> hits;
        for (uint64_t id : seq) {
            hits.push_back(access(*c, id));
            EXPECT_TRUE(c->resident(id)) << ctxPolicyName(p);
            EXPECT_EQ(c->size(), 1u) << ctxPolicyName(p);
        }
        EXPECT_EQ(hits, (std::vector<bool>{false, false, false, true,
                                           false, true, false, false}))
            << ctxPolicyName(p);
        EXPECT_EQ(evicted, (std::vector<uint64_t>{5, 6, 5, 7, 6}))
            << ctxPolicyName(p);
    }
}

TEST(CachePolicy, PoliciesAgreeAtInfiniteCapacity)
{
    // Capacity >= flow count: nothing ever evicts and every re-access
    // hits, for every policy.
    for (CtxPolicy p :
         {CtxPolicy::Lru, CtxPolicy::Clock, CtxPolicy::PinHot}) {
        int evictions = 0;
        auto c = CachePolicy::make(p, 64,
                                   [&](uint64_t) { evictions++; });
        for (uint64_t id = 0; id < 64; id++)
            EXPECT_FALSE(access(*c, id)) << ctxPolicyName(p);
        for (int round = 0; round < 3; round++) {
            for (uint64_t id = 0; id < 64; id++)
                EXPECT_TRUE(access(*c, id)) << ctxPolicyName(p);
        }
        EXPECT_EQ(evictions, 0) << ctxPolicyName(p);
        EXPECT_EQ(c->size(), 64u) << ctxPolicyName(p);
    }
}

TEST(CachePolicy, RemoveIsNoEvictAndNonResidentIsNoop)
{
    for (CtxPolicy p :
         {CtxPolicy::Lru, CtxPolicy::Clock, CtxPolicy::PinHot}) {
        int evictions = 0;
        auto c = CachePolicy::make(p, 2, [&](uint64_t) { evictions++; });
        access(*c, 1);
        access(*c, 2);
        c->remove(1);           // destroyed context: no writeback
        c->remove(99);          // never resident: no-op
        EXPECT_EQ(c->size(), 1u) << ctxPolicyName(p);
        access(*c, 3);          // fills the freed slot, no eviction
        EXPECT_EQ(evictions, 0) << ctxPolicyName(p);
        EXPECT_TRUE(c->resident(2)) << ctxPolicyName(p);
        EXPECT_TRUE(c->resident(3)) << ctxPolicyName(p);
    }
}

// -------------------------------------------- eviction edge cases (NIC)

TEST(NicDevice, DestroyOfEvictedContextIsSafe)
{
    // A context can be destroyed while its state is evicted (written
    // back to host memory): close() after a long idle period.
    Nic::Config cfg;
    cfg.ctxCacheCapacity = 1;
    NicWorld w(cfg);
    tls::DirectionKeys keys;
    keys.key.assign(16, 1);
    keys.staticIv.assign(12, 2);

    uint64_t c1 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    uint64_t c2 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    EXPECT_EQ(w.nicA.stats().ctxCacheEvictions, 1u); // c2 evicted c1

    w.nicA.destroyTxContext(c1); // non-resident: must not touch cache
    w.nicA.destroyTxContext(c1); // double destroy is a no-op
    EXPECT_EQ(w.nicA.stats().ctxCacheEvictions, 1u);

    // The surviving context still offloads.
    tls::RecordHeader h;
    h.length = 50 + 16;
    Bytes rec(h.wireLen(), 0);
    h.encode(rec.data());
    net::Ipv4Header ip;
    ip.src = 1;
    ip.dst = 2;
    net::TcpHeader t;
    t.seq = 0;
    auto p = net::PacketPool::threadDefault().make(ip, t, rec);
    p->txCtx = c2;
    w.nicA.transmit(p);
    w.sim.run();
    EXPECT_EQ(w.nicA.stats().txOffloadedPkts, 1u);
    w.nicA.destroyTxContext(c2);
}

TEST(NicDevice, EvictedContextRefetchesAndResumes)
{
    // Eviction models a writeback, not destruction: after its slot is
    // stolen, the next touch re-fetches the 208 B state over PCIe and
    // encryption resumes exactly where it left off (record number,
    // expected sequence) — no resync, no corruption.
    Nic::Config cfg;
    cfg.ctxCacheCapacity = 1; // every flow switch evicts the other
    NicWorld w(cfg);
    tls::DirectionKeys keys;
    keys.key.assign(16, 0x42);
    keys.staticIv.assign(12, 0x24);

    uint64_t c1 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);
    uint64_t c2 = w.nicA.createTxContext(
        std::make_unique<tls::TlsTxEngine>(keys), 0, 0);

    constexpr size_t kPlain = 64;
    auto mkRecord = [&](uint64_t seed) {
        tls::RecordHeader h;
        h.length = kPlain + 16;
        Bytes rec(h.wireLen(), 0);
        h.encode(rec.data());
        Bytes pt(kPlain);
        fillDeterministic(pt, seed, 0);
        std::memcpy(rec.data() + 5, pt.data(), kPlain);
        return rec;
    };
    net::Ipv4Header ip;
    ip.src = 1;
    ip.dst = 2;
    auto ship = [&](uint64_t ctx, uint32_t seq, const Bytes &rec) {
        net::TcpHeader t;
        t.seq = seq;
        auto p = net::PacketPool::threadDefault().make(ip, t, rec);
        p->txCtx = ctx;
        ASSERT_TRUE(w.nicA.transmit(p));
    };

    // Interleave: c1 record 0, c2 record 0 (evicts c1), c1 record 1
    // (refetches c1, evicts c2), c2 record 1 (refetches c2).
    Bytes r10 = mkRecord(10);
    Bytes r20 = mkRecord(20);
    Bytes r11 = mkRecord(11);
    Bytes r21 = mkRecord(21);
    const uint32_t recLen = static_cast<uint32_t>(r10.size());
    ship(c1, 0, r10);
    ship(c2, 0, r20);
    ship(c1, recLen, r11);
    ship(c2, recLen, r21);
    w.sim.run();

    ASSERT_EQ(w.atB.size(), 4u);
    EXPECT_EQ(w.nicA.stats().txOffloadedPkts, 4u);
    EXPECT_EQ(w.nicA.stats().txResyncs, 0u);
    // Create touches + per-packet touches with capacity 1: everything
    // after the first create misses and evicts the other context.
    EXPECT_EQ(w.nicA.stats().ctxCacheMisses, 6u);
    EXPECT_EQ(w.nicA.stats().ctxCacheEvictions, 5u);
    EXPECT_EQ(w.nicA.pcie().ctxFetchBytes, 6 * cfg.ctxBytes);
    EXPECT_EQ(w.nicA.pcie().ctxWritebackBytes, 5 * cfg.ctxBytes);

    // Both flows decrypt cleanly with per-flow record numbers 0 and 1:
    // the evicted-and-refetched state carried the record counter.
    crypto::AesGcm gcm(keys.key);
    struct Want
    {
        uint64_t seed;
        uint64_t recNo;
    };
    const Want want[] = {{10, 0}, {20, 0}, {11, 1}, {21, 1}};
    for (size_t i = 0; i < 4; i++) {
        ByteView sealed = w.atB[i]->payload();
        auto nonce = tls::recordNonce(keys.staticIv, want[i].recNo);
        Bytes out;
        ASSERT_TRUE(gcm.open(nonce, sealed.subspan(0, 5),
                             sealed.subspan(5), out))
            << i;
        Bytes pt(kPlain);
        fillDeterministic(pt, want[i].seed, 0);
        EXPECT_EQ(out, pt) << i;
    }
    w.nicA.destroyTxContext(c1);
    w.nicA.destroyTxContext(c2);
}

} // namespace
} // namespace anic::nic
