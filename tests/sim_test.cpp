/**
 * @file
 * Unit tests for the discrete-event simulator and statistics.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/registry.hh"

namespace anic::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsExecuted(), 3u);
}

TEST(Simulator, SameTickFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        sim.schedule(5, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        fired++;
        if (fired < 5)
            sim.schedule(100, chain);
    };
    sim.schedule(100, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(100, [&] { fired++; });
    sim.schedule(300, [&] { fired++; });
    sim.runUntil(200);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 200u);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative)
{
    Simulator sim;
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 50u);
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    sim.runUntil(42);
    bool ran = false;
    sim.schedule(0, [&] {
        ran = true;
        EXPECT_EQ(sim.now(), 42u);
    });
    sim.run();
    EXPECT_TRUE(ran);
}

TEST(TickConversions, RoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kSecond);
    EXPECT_EQ(secondsToTicks(0.001), kMillisecond);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
    EXPECT_EQ(kMicrosecond, 1000000u);
}

TEST(Distribution, Moments)
{
    Distribution s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_EQ(s.count(), 5u);
}

TEST(Distribution, Percentiles)
{
    Distribution s;
    for (int i = 1; i <= 100; i++)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Distribution, TrimmedMeanDropsExtremes)
{
    Distribution s;
    for (double v : {10.0, 10.0, 10.0, 1000.0, 0.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.trimmedMean(), 10.0);
}

TEST(RateMeter, MeasuresOnlyWindow)
{
    RateMeter m;
    m.add(100); // before start: ignored
    m.start(kSecond);
    m.add(1000);
    m.add(250);
    m.stop(2 * kSecond);
    m.add(77); // after stop: ignored
    EXPECT_EQ(m.total(), 1250u);
    EXPECT_DOUBLE_EQ(m.perSecond(), 1250.0);
    EXPECT_DOUBLE_EQ(m.gbps(), 1250.0 * 8 / 1e9);
}

} // namespace
} // namespace anic::sim
