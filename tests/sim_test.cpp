/**
 * @file
 * Unit tests for the discrete-event simulator and statistics:
 * ordering semantics (shared by the calendar queue and the legacy
 * heap selected via ANIC_SIM_QUEUE=heap), the InlineFunction inline
 * callback, and a randomized calendar-vs-heap differential.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "sim/simulator.hh"
#include "sim/registry.hh"
#include "util/rand.hh"

namespace anic::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsExecuted(), 3u);
}

TEST(Simulator, SameTickFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        sim.schedule(5, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        fired++;
        if (fired < 5)
            sim.schedule(100, chain);
    };
    sim.schedule(100, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(100, [&] { fired++; });
    sim.schedule(300, [&] { fired++; });
    sim.runUntil(200);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 200u);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative)
{
    Simulator sim;
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 50u);
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    sim.runUntil(42);
    bool ran = false;
    sim.schedule(0, [&] {
        ran = true;
        EXPECT_EQ(sim.now(), 42u);
    });
    sim.run();
    EXPECT_TRUE(ran);
}

TEST(Simulator, FarEventsBeyondCalendarHorizonStayOrdered)
{
    // Events far past the bucket window exercise the far-heap
    // migration path; timer-like gaps exercise the wheel-jump.
    Simulator sim;
    std::vector<int> order;
    sim.schedule(2 * kSecond, [&] { order.push_back(3); });
    sim.schedule(1, [&] { order.push_back(1); });
    sim.schedule(kMillisecond, [&] { order.push_back(2); });
    sim.schedule(5 * kSecond, [&] { order.push_back(4); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulator, CalendarMatchesHeapOnRandomizedSchedule)
{
    // Differential: the same randomized workload (dense near ticks,
    // sparse far timers, same-tick bursts, events scheduling events)
    // must execute in the identical order under both queues.
    auto trace = [](bool heap) {
        if (heap)
            setenv("ANIC_SIM_QUEUE", "heap", 1);
        else
            unsetenv("ANIC_SIM_QUEUE");
        Simulator sim;
        EXPECT_EQ(sim.usingCalendarQueue(), !heap);
        std::vector<std::pair<Tick, int>> log;
        anic::Rng rng(0x5eed);
        std::function<void(int)> spawn = [&](int id) {
            log.emplace_back(sim.now(), id);
            if (id < 4000) {
                uint64_t r = rng.next();
                Tick d = r % 7 == 0 ? (r % 3) * kMillisecond // far timer
                                    : r % 50000;             // near burst
                sim.schedule(d, [&spawn, id] { spawn(id + 3); });
            }
        };
        for (int i = 0; i < 3; i++)
            sim.schedule(i * 17, [&spawn, i] { spawn(i); });
        sim.run();
        unsetenv("ANIC_SIM_QUEUE");
        return log;
    };
    auto calendar = trace(false);
    auto heap = trace(true);
    EXPECT_FALSE(calendar.empty());
    EXPECT_EQ(calendar, heap);
}

TEST(InlineFunction, InvokesAndMovesCaptures)
{
    auto counter = std::make_shared<int>(0);
    InlineFunction<64> f([counter] { (*counter)++; });
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(counter.use_count(), 2);

    InlineFunction<64> g = std::move(f);
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_EQ(counter.use_count(), 2); // moved, not copied
    g();
    g();
    EXPECT_EQ(*counter, 2);
}

TEST(InlineFunction, DestroysCaptureExactlyOnce)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> weak = token;
    {
        InlineFunction<64> f([t = std::move(token)] { (void)*t; });
        InlineFunction<64> g;
        g = std::move(f);
        EXPECT_FALSE(weak.expired());
    }
    EXPECT_TRUE(weak.expired());
}

TEST(InlineFunction, AcceptsCopyableLvalueCallables)
{
    int hits = 0;
    std::function<void()> fn = [&hits] { hits++; };
    InlineFunction<64> f(fn); // copies; fn stays usable
    f();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(TickConversions, RoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kSecond);
    EXPECT_EQ(secondsToTicks(0.001), kMillisecond);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
    EXPECT_EQ(kMicrosecond, 1000000u);
}

TEST(Distribution, Moments)
{
    Distribution s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_EQ(s.count(), 5u);
}

TEST(Distribution, Percentiles)
{
    Distribution s;
    for (int i = 1; i <= 100; i++)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Distribution, TrimmedMeanDropsExtremes)
{
    Distribution s;
    for (double v : {10.0, 10.0, 10.0, 1000.0, 0.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.trimmedMean(), 10.0);
}

TEST(RateMeter, MeasuresOnlyWindow)
{
    RateMeter m;
    m.add(100); // before start: ignored
    m.start(kSecond);
    m.add(1000);
    m.add(250);
    m.stop(2 * kSecond);
    m.add(77); // after stop: ignored
    EXPECT_EQ(m.total(), 1250u);
    EXPECT_DOUBLE_EQ(m.perSecond(), 1250.0);
    EXPECT_DOUBLE_EQ(m.gbps(), 1250.0 * 8 / 1e9);
}

} // namespace
} // namespace anic::sim
