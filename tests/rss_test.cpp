/**
 * @file
 * Toeplitz RSS hash tests: the Microsoft RSS verification-suite
 * known-answer vectors (IPv4 with and without TCP ports), equivalence
 * of the table-driven hash with the bit-serial reference, and basic
 * properties the NIC's flow steering relies on (determinism,
 * direction-sensitivity, spread across the indirection table).
 */

#include <gtest/gtest.h>

#include "net/toeplitz.hh"
#include "util/rand.hh"

namespace anic::net {
namespace {

/** One row of the Microsoft RSS verification suite. The spec lists
 *  destination first; the hash input is src addr, dst addr, src port,
 *  dst port (network byte order). */
struct Vector
{
    IpAddr srcIp;
    uint16_t srcPort;
    IpAddr dstIp;
    uint16_t dstPort;
    uint32_t ipv4Hash;    ///< addresses only
    uint32_t ipv4TcpHash; ///< addresses + TCP ports
};

const Vector kVectors[] = {
    {makeIp(66, 9, 149, 187), 2794, makeIp(161, 142, 100, 80), 1766,
     0x323e8fc2, 0x51ccc178},
    {makeIp(199, 92, 111, 2), 14230, makeIp(65, 69, 140, 83), 4739,
     0xd718262a, 0xc626b0ea},
    {makeIp(24, 19, 198, 95), 12898, makeIp(12, 22, 207, 184), 38024,
     0xd2d0a5de, 0x5c2b394a},
    {makeIp(38, 27, 205, 30), 48228, makeIp(209, 142, 163, 6), 2217,
     0x82989176, 0xafc7327f},
    {makeIp(153, 39, 163, 191), 44251, makeIp(202, 188, 127, 2), 1303,
     0x5d1809c5, 0x10e828a2},
};

TEST(Toeplitz, MicrosoftIpv4KnownAnswers)
{
    const Toeplitz &t = Toeplitz::standard();
    for (const Vector &v : kVectors)
        EXPECT_EQ(t.hashIpv4(v.srcIp, v.dstIp), v.ipv4Hash);
}

TEST(Toeplitz, MicrosoftIpv4TcpKnownAnswers)
{
    const Toeplitz &t = Toeplitz::standard();
    for (const Vector &v : kVectors) {
        EXPECT_EQ(t.hashIpv4Tcp(v.srcIp, v.dstIp, v.srcPort, v.dstPort),
                  v.ipv4TcpHash);
    }
}

TEST(Toeplitz, HashFlowMatchesIpv4Tcp)
{
    const Toeplitz &t = Toeplitz::standard();
    for (const Vector &v : kVectors) {
        FlowKey wire;
        wire.srcIp = v.srcIp;
        wire.srcPort = v.srcPort;
        wire.dstIp = v.dstIp;
        wire.dstPort = v.dstPort;
        EXPECT_EQ(t.hashFlow(wire), v.ipv4TcpHash);
    }
}

TEST(Toeplitz, TableMatchesBitSerialReference)
{
    // The table-driven implementation must agree with the bit-serial
    // spec transcription on arbitrary inputs, not just the published
    // vectors, and under a non-default key.
    uint8_t key[Toeplitz::kKeyBytes];
    Rng rng(0x4255);
    for (uint8_t &k : key)
        k = static_cast<uint8_t>(rng.next());
    Toeplitz t(key);

    uint8_t in[Toeplitz::kMaxInput];
    for (int round = 0; round < 2000; round++) {
        size_t len = 1 + rng.next() % Toeplitz::kMaxInput;
        for (size_t i = 0; i < len; i++)
            in[i] = static_cast<uint8_t>(rng.next());
        ASSERT_EQ(t.hashBytes(in, len), Toeplitz::hashBytesRef(key, in, len))
            << "round " << round << " len " << len;
    }
}

TEST(Toeplitz, DirectionSensitive)
{
    // Toeplitz is not symmetric: a flow and its reverse hash
    // differently, which is why tx-queue selection must reverse the
    // flow before hashing (Nic::txQueueFor).
    const Toeplitz &t = Toeplitz::standard();
    const Vector &v = kVectors[0];
    EXPECT_NE(t.hashIpv4Tcp(v.srcIp, v.dstIp, v.srcPort, v.dstPort),
              t.hashIpv4Tcp(v.dstIp, v.srcIp, v.dstPort, v.srcPort));
}

TEST(Toeplitz, SpreadsFlowsAcrossIndirectionTable)
{
    // Flow steering uses hash % tableSize with a round-robin table;
    // ephemeral-port neighbours must not pile onto one queue.
    const Toeplitz &t = Toeplitz::standard();
    constexpr int kQueues = 8;
    int perQueue[kQueues] = {0};
    for (uint16_t port = 32768; port < 32768 + 512; port++) {
        uint32_t h = t.hashIpv4Tcp(makeIp(10, 0, 0, 1), makeIp(10, 0, 0, 2),
                                   port, 443);
        perQueue[h % kQueues]++;
    }
    for (int q = 0; q < kQueues; q++) {
        EXPECT_GT(perQueue[q], 512 / kQueues / 4)
            << "queue " << q << " starved";
    }
}

} // namespace
} // namespace anic::net
