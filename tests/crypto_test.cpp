/**
 * @file
 * Known-answer and property tests for the crypto library: CRC32C,
 * SHA-1, HMAC-SHA1, AES-128 (ECB/CBC), AES-128-GCM, GHASH.
 */

#include <gtest/gtest.h>

#include "crypto/aes.hh"
#include "crypto/cpu.hh"
#include "crypto/crc32c.hh"
#include "crypto/gcm.hh"
#include "crypto/kernels.hh"
#include "crypto/sha1.hh"
#include "util/bytes.hh"
#include "util/rand.hh"

namespace anic::crypto {
namespace {

Bytes
ascii(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------- CRC32C

TEST(Crc32c, CheckString)
{
    // Canonical CRC-32C check value for "123456789".
    EXPECT_EQ(Crc32c::compute(ascii("123456789")), 0xe3069283u);
}

TEST(Crc32c, Rfc3720Vectors)
{
    // iSCSI CRC test patterns from RFC 3720 appendix B.4.
    Bytes zeros(32, 0x00);
    EXPECT_EQ(Crc32c::compute(zeros), 0x8a9136aau);

    Bytes ones(32, 0xff);
    EXPECT_EQ(Crc32c::compute(ones), 0x62a8ab43u);

    Bytes incr(32);
    for (int i = 0; i < 32; i++)
        incr[i] = static_cast<uint8_t>(i);
    EXPECT_EQ(Crc32c::compute(incr), 0x46dd794eu);
}

TEST(Crc32c, IncrementalEqualsOneShot)
{
    // The NIC computes the digest across arbitrary packet boundaries;
    // any split must give the same CRC.
    Bytes data(10000);
    fillDeterministic(data, 99, 0);
    uint32_t whole = Crc32c::compute(data);

    Rng rng(7);
    for (int trial = 0; trial < 20; trial++) {
        Crc32c c;
        size_t off = 0;
        while (off < data.size()) {
            size_t n = std::min<size_t>(rng.range(1, 1500),
                                        data.size() - off);
            c.update(ByteView(data).subspan(off, n));
            off += n;
        }
        EXPECT_EQ(c.value(), whole);
    }
}

TEST(Crc32c, ResetRestoresInitialState)
{
    Crc32c c;
    c.update(ascii("garbage"));
    c.reset();
    c.update(ascii("123456789"));
    EXPECT_EQ(c.value(), 0xe3069283u);
}

// ---------------------------------------------------------------- SHA-1

TEST(Sha1, KnownAnswers)
{
    EXPECT_EQ(toHex(Sha1::compute(ascii("abc"))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(toHex(Sha1::compute(ascii(""))),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(toHex(Sha1::compute(ascii(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, IncrementalEqualsOneShot)
{
    Bytes data(100000);
    fillDeterministic(data, 3, 0);
    auto whole = Sha1::compute(data);

    Sha1 s;
    size_t off = 0;
    size_t step = 1;
    while (off < data.size()) {
        size_t n = std::min(step, data.size() - off);
        s.update(ByteView(data).subspan(off, n));
        off += n;
        step = step * 3 + 1;
    }
    std::array<uint8_t, Sha1::kDigestSize> out;
    s.final(out);
    EXPECT_EQ(out, whole);
}

TEST(HmacSha1, Rfc2202Vectors)
{
    Bytes key1(20, 0x0b);
    EXPECT_EQ(toHex(hmacSha1(key1, ascii("Hi There"))),
              "b617318655057264e28bc0b6fb378c8ef146be00");

    EXPECT_EQ(toHex(hmacSha1(ascii("Jefe"),
                             ascii("what do ya want for nothing?"))),
              "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");

    Bytes key3(20, 0xaa);
    Bytes data3(50, 0xdd);
    EXPECT_EQ(toHex(hmacSha1(key3, data3)),
              "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

// ---------------------------------------------------------------- AES

TEST(Aes128, Fips197Vector)
{
    Aes128 aes(fromHex("000102030405060708090a0b0c0d0e0f"));
    Bytes pt = fromHex("00112233445566778899aabbccddeeff");
    uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");

    uint8_t back[16];
    aes.decryptBlock(ct, back);
    EXPECT_EQ(toHex(ByteView(back, 16)), toHex(pt));
}

TEST(Aes128, ZeroKeyZeroBlock)
{
    Aes128 aes(Bytes(16, 0));
    uint8_t ct[16];
    uint8_t zero[16] = {0};
    aes.encryptBlock(zero, ct);
    EXPECT_EQ(toHex(ByteView(ct, 16)), "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

TEST(Aes128, EncryptDecryptRoundTripRandom)
{
    Rng rng(1234);
    for (int trial = 0; trial < 50; trial++) {
        Bytes key(16);
        Bytes pt(16);
        fillDeterministic(key, trial, 0);
        fillDeterministic(pt, trial, 100);
        Aes128 aes(key);
        uint8_t ct[16];
        uint8_t back[16];
        aes.encryptBlock(pt.data(), ct);
        aes.decryptBlock(ct, back);
        EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
    }
}

TEST(AesCbc, Sp800_38aVectors)
{
    Bytes key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Bytes iv = fromHex("000102030405060708090a0b0c0d0e0f");
    Bytes pt = fromHex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51");
    AesCbc cbc(key, iv);
    Bytes ct(pt.size());
    cbc.encrypt(pt, ct);
    EXPECT_EQ(toHex(ct),
              "7649abac8119b246cee98e9b12e9197d"
              "5086cb9b507219ee95db113a917678b2");

    AesCbc cbc2(key, iv);
    Bytes back(ct.size());
    cbc2.decrypt(ct, back);
    EXPECT_EQ(back, pt);
}

// ---------------------------------------------------------------- GHASH

TEST(Ghash, TableMatchesBitwiseReference)
{
    Rng rng(42);
    for (int trial = 0; trial < 100; trial++) {
        uint8_t h[16];
        uint8_t x[16];
        for (auto &b : h)
            b = static_cast<uint8_t>(rng.next());
        for (auto &b : x)
            b = static_cast<uint8_t>(rng.next());

        Ghash g;
        g.setH(h);
        g.absorbBlock(x);
        uint8_t table_out[16];
        g.digest(table_out);

        // One absorbed block starting from Y=0 is exactly (x * H).
        uint8_t ref_out[16];
        Ghash::gf128MulBitwise(x, h, ref_out);
        EXPECT_EQ(0, std::memcmp(table_out, ref_out, 16))
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------- GCM

struct GcmVector
{
    const char *key;
    const char *iv;
    const char *aad;
    const char *pt;
    const char *ct;
    const char *tag;
};

// McGrew & Viega AES-128-GCM test cases 1-4.
const GcmVector kGcmVectors[] = {
    {"00000000000000000000000000000000", "000000000000000000000000", "", "",
     "", "58e2fccefa7e3061367f1d57a4e7455a"},
    {"00000000000000000000000000000000", "000000000000000000000000", "",
     "00000000000000000000000000000000", "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
};

class GcmKat : public ::testing::TestWithParam<size_t>
{
};

TEST_P(GcmKat, EncryptMatchesVector)
{
    const GcmVector &v = kGcmVectors[GetParam()];
    AesGcm gcm(fromHex(v.key));
    Bytes pt = fromHex(v.pt);
    Bytes sealed = gcm.seal(fromHex(v.iv), fromHex(v.aad), pt);
    ASSERT_EQ(sealed.size(), pt.size() + AesGcm::kTagSize);
    EXPECT_EQ(toHex(ByteView(sealed.data(), pt.size())), v.ct);
    EXPECT_EQ(toHex(ByteView(sealed.data() + pt.size(), 16)), v.tag);
}

TEST_P(GcmKat, DecryptMatchesVector)
{
    const GcmVector &v = kGcmVectors[GetParam()];
    AesGcm gcm(fromHex(v.key));
    Bytes sealed = fromHex(v.ct);
    Bytes tag = fromHex(v.tag);
    sealed.insert(sealed.end(), tag.begin(), tag.end());
    Bytes pt;
    EXPECT_TRUE(gcm.open(fromHex(v.iv), fromHex(v.aad), sealed, pt));
    EXPECT_EQ(toHex(pt), v.pt);
}

TEST_P(GcmKat, TamperedTagFails)
{
    const GcmVector &v = kGcmVectors[GetParam()];
    AesGcm gcm(fromHex(v.key));
    Bytes sealed = fromHex(v.ct);
    Bytes tag = fromHex(v.tag);
    tag[0] ^= 1;
    sealed.insert(sealed.end(), tag.begin(), tag.end());
    Bytes pt;
    EXPECT_FALSE(gcm.open(fromHex(v.iv), fromHex(v.aad), sealed, pt));
}

INSTANTIATE_TEST_SUITE_P(Vectors, GcmKat,
                         ::testing::Range<size_t>(0, std::size(kGcmVectors)));

TEST(AesGcm, StreamingMatchesOneShot)
{
    // The NIC processes a record across many packet-sized chunks; any
    // chunking must yield identical ciphertext and tag.
    Bytes key(16);
    fillDeterministic(key, 1, 0);
    Bytes iv(12);
    fillDeterministic(iv, 2, 0);
    Bytes aad = ascii("header");
    Bytes pt(16384 + 7);
    fillDeterministic(pt, 3, 0);

    AesGcm one(key);
    Bytes sealed = one.seal(iv, aad, pt);

    Rng rng(5);
    for (int trial = 0; trial < 10; trial++) {
        AesGcm gcm(key);
        gcm.start(iv, aad);
        Bytes ct(pt.size());
        size_t off = 0;
        while (off < pt.size()) {
            size_t n = std::min<size_t>(rng.range(1, 1460), pt.size() - off);
            gcm.encryptUpdate(ByteView(pt).subspan(off, n),
                              ByteSpan(ct).subspan(off, n));
            off += n;
        }
        uint8_t tag[16];
        gcm.finishTag(tag);
        EXPECT_EQ(0, std::memcmp(ct.data(), sealed.data(), pt.size()));
        EXPECT_EQ(0, std::memcmp(tag, sealed.data() + pt.size(), 16));
    }
}

TEST(AesGcm, StreamingDecryptAnyChunking)
{
    Bytes key(16);
    fillDeterministic(key, 10, 0);
    Bytes iv(12);
    fillDeterministic(iv, 11, 0);
    Bytes pt(5000);
    fillDeterministic(pt, 12, 0);

    AesGcm enc(key);
    Bytes sealed = enc.seal(iv, {}, pt);

    AesGcm dec(key);
    dec.start(iv, {});
    Bytes out(pt.size());
    size_t chunks[] = {1, 13, 100, 1460, 3000, 426};
    size_t off = 0;
    size_t i = 0;
    while (off < pt.size()) {
        size_t n = std::min(chunks[i % std::size(chunks)], pt.size() - off);
        dec.decryptUpdate(ByteView(sealed).subspan(off, n),
                          ByteSpan(out).subspan(off, n));
        off += n;
        i++;
    }
    EXPECT_TRUE(dec.checkTag(ByteView(sealed).subspan(pt.size(), 16)));
    EXPECT_EQ(out, pt);
}

TEST(AesGcm, InPlaceStreamingDecrypt)
{
    // The NIC engine decrypts packet payloads in place; the GHASH
    // must still run over the (overwritten) ciphertext.
    Bytes key(16, 0x31);
    Bytes iv(12, 0x32);
    Bytes pt(4000);
    fillDeterministic(pt, 8, 0);
    AesGcm enc(key);
    Bytes sealed = enc.seal(iv, {}, pt);

    AesGcm dec(key);
    dec.start(iv, {});
    Bytes buf(sealed.begin(), sealed.end() - 16);
    size_t off = 0;
    size_t chunks[] = {1460, 16, 1, 900, 33, 4000};
    size_t i = 0;
    while (off < buf.size()) {
        size_t n = std::min(chunks[i++ % std::size(chunks)],
                            buf.size() - off);
        ByteSpan c = ByteSpan(buf).subspan(off, n);
        dec.decryptUpdate(c, c); // in place
        off += n;
    }
    EXPECT_TRUE(dec.checkTag(ByteView(sealed).subspan(pt.size())));
    EXPECT_EQ(buf, pt);
}

TEST(AesGcm, InPlaceStreamingEncrypt)
{
    Bytes key(16, 0x33);
    Bytes iv(12, 0x34);
    Bytes pt(2048);
    fillDeterministic(pt, 9, 0);
    AesGcm ref(key);
    Bytes sealed = ref.seal(iv, {}, pt);

    AesGcm enc(key);
    enc.start(iv, {});
    Bytes buf = pt;
    size_t off = 0;
    while (off < buf.size()) {
        size_t n = std::min<size_t>(700, buf.size() - off);
        ByteSpan c = ByteSpan(buf).subspan(off, n);
        enc.encryptUpdate(c, c);
        off += n;
    }
    uint8_t tag[16];
    enc.finishTag(tag);
    EXPECT_EQ(0, std::memcmp(buf.data(), sealed.data(), pt.size()));
    EXPECT_EQ(0, std::memcmp(tag, sealed.data() + pt.size(), 16));
}

TEST(AesGcm, DistinctIvsGiveDistinctCiphertexts)
{
    Bytes key(16, 0x55);
    Bytes pt(64, 0xaa);
    AesGcm gcm(key);
    Bytes iv1(12, 0x01);
    Bytes iv2(12, 0x02);
    Bytes c1 = gcm.seal(iv1, {}, pt);
    Bytes c2 = gcm.seal(iv2, {}, pt);
    EXPECT_NE(c1, c2);
}

TEST(AesGcm, TamperedAadFails)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Bytes pt(100, 0x33);
    AesGcm gcm(key);
    Bytes sealed = gcm.seal(iv, ascii("aad-1"), pt);
    Bytes out;
    EXPECT_FALSE(gcm.open(iv, ascii("aad-2"), sealed, out));
    EXPECT_TRUE(gcm.open(iv, ascii("aad-1"), sealed, out));
}

// ------------------------------------------------- kernel variants
//
// Everything above runs under the startup-selected dispatch (hw on
// capable CPUs, scalar otherwise, ANIC_CRYPTO_IMPL overrides). The
// tests below pin each compiled kernel variant explicitly and
// cross-check hw against the scalar reference.

std::vector<CryptoImpl>
compiledImpls()
{
    std::vector<CryptoImpl> v{CryptoImpl::Scalar};
    if (hwCryptoSupported())
        v.push_back(CryptoImpl::Hw);
    return v;
}

uint32_t
crcWithImpl(CryptoImpl impl, ByteView data)
{
    uint32_t s = 0xffffffffu;
    if (impl == CryptoImpl::Hw)
        s = detail::hwOpsIfSupported()->crc32cUpdate(s, data.data(),
                                                     data.size());
    else
        s = detail::crc32cScalarUpdate(s, data.data(), data.size());
    return ~s;
}

TEST(CryptoImplKat, Crc32cEveryVariant)
{
    for (CryptoImpl impl : compiledImpls()) {
        SCOPED_TRACE(cryptoImplName(impl));
        EXPECT_EQ(crcWithImpl(impl, ascii("123456789")), 0xe3069283u);
        EXPECT_EQ(crcWithImpl(impl, Bytes(32, 0x00)), 0x8a9136aau);
        EXPECT_EQ(crcWithImpl(impl, Bytes(32, 0xff)), 0x62a8ab43u);
        Bytes incr(32);
        for (int i = 0; i < 32; i++)
            incr[i] = static_cast<uint8_t>(i);
        EXPECT_EQ(crcWithImpl(impl, incr), 0x46dd794eu);
    }
}

TEST(CryptoImplKat, GcmEveryVariant)
{
    for (CryptoImpl impl : compiledImpls()) {
        SCOPED_TRACE(cryptoImplName(impl));
        for (const GcmVector &v : kGcmVectors) {
            AesGcm gcm(fromHex(v.key), impl);
            Bytes pt = fromHex(v.pt);
            Bytes sealed = gcm.seal(fromHex(v.iv), fromHex(v.aad), pt);
            EXPECT_EQ(toHex(ByteView(sealed.data(), pt.size())), v.ct);
            EXPECT_EQ(toHex(ByteView(sealed.data() + pt.size(), 16)), v.tag);

            Bytes wire = fromHex(v.ct);
            Bytes tag = fromHex(v.tag);
            wire.insert(wire.end(), tag.begin(), tag.end());
            Bytes back;
            EXPECT_TRUE(gcm.open(fromHex(v.iv), fromHex(v.aad), wire, back));
            EXPECT_EQ(toHex(back), v.pt);
        }
    }
}

class HwCrossCheck : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!hwCryptoSupported())
            GTEST_SKIP() << "hw crypto kernels not available on this host";
    }
};

TEST_F(HwCrossCheck, Crc32cLengthsAndAlignments)
{
    // Covers every tier of the hw kernel (byte head, 8KiB/256B/64B
    // 3-way blocks, 8-byte tail, byte tail) at all 8 misalignments.
    const size_t lengths[] = {0,    1,    7,    8,    63,           64,
                              255,  256,  768,  1460, 4096,         8192,
                              8275, 16384, 8192 * 3 + 17, 100000};
    Bytes buf(100000 + 8);
    fillDeterministic(buf, 77, 0);
    for (size_t align = 0; align < 8; align++) {
        for (size_t len : lengths) {
            ByteView v(buf.data() + align, len);
            EXPECT_EQ(crcWithImpl(CryptoImpl::Hw, v),
                      crcWithImpl(CryptoImpl::Scalar, v))
                << "align=" << align << " len=" << len;
        }
    }
}

TEST_F(HwCrossCheck, Crc32cStreamingSplits)
{
    // The NIC digests a PDU across arbitrary packet boundaries; the
    // dispatched Crc32c must give split-independent results.
    Bytes data(50000);
    fillDeterministic(data, 78, 0);
    uint32_t whole = crcWithImpl(CryptoImpl::Hw, data);
    EXPECT_EQ(whole, crcWithImpl(CryptoImpl::Scalar, data));

    Rng rng(17);
    for (int trial = 0; trial < 10; trial++) {
        Crc32c c;
        size_t off = 0;
        while (off < data.size()) {
            size_t n = std::min<size_t>(rng.range(1, 9000),
                                        data.size() - off);
            c.update(ByteView(data).subspan(off, n));
            off += n;
        }
        EXPECT_EQ(c.value(), whole);
    }
}

TEST_F(HwCrossCheck, AesKeyScheduleMatchesScalar)
{
    for (int trial = 0; trial < 20; trial++) {
        Bytes key(16);
        fillDeterministic(key, 1000 + trial, 0);

        uint8_t scalar_rk[Aes128::kRounds + 1][16];
        Aes128(key).exportRoundKeys(scalar_rk);

        uint8_t hw_rk[Aes128::kRounds + 1][16];
        detail::hwOpsIfSupported()->aesKeyExpand(key.data(), hw_rk);

        EXPECT_EQ(0, std::memcmp(scalar_rk, hw_rk, sizeof scalar_rk))
            << "trial " << trial;
    }
}

TEST_F(HwCrossCheck, AesEncryptBlockMatchesScalar)
{
    for (int trial = 0; trial < 20; trial++) {
        Bytes key(16);
        Bytes pt(16);
        fillDeterministic(key, 2000 + trial, 0);
        fillDeterministic(pt, 3000 + trial, 0);

        uint8_t ct_scalar[16];
        Aes128 aes(key);
        aes.encryptBlock(pt.data(), ct_scalar);

        uint8_t rk[Aes128::kRounds + 1][16];
        aes.exportRoundKeys(rk);
        uint8_t ct_hw[16];
        detail::hwOpsIfSupported()->aesEncryptBlock(rk, pt.data(), ct_hw);

        EXPECT_EQ(0, std::memcmp(ct_scalar, ct_hw, 16)) << "trial " << trial;
    }
}

TEST_F(HwCrossCheck, GhashMatchesScalarPerBlockCount)
{
    // 1..9 blocks exercises the single-block path, the 4-block
    // aggregated path, and the 8-block fused path plus remainders.
    Rng rng(23);
    for (size_t nblk = 1; nblk <= 9; nblk++) {
        uint8_t h[16];
        for (auto &b : h)
            b = static_cast<uint8_t>(rng.next());
        Bytes data(nblk * 16);
        fillDeterministic(data, 4000 + nblk, 0);

        Ghash scalar;
        scalar.setH(h, CryptoImpl::Scalar);
        Ghash hw;
        hw.setH(h, CryptoImpl::Hw);
        scalar.absorbPadded(data);
        hw.absorbPadded(data);

        uint8_t ds[16], dh[16];
        scalar.digest(ds);
        hw.digest(dh);
        EXPECT_EQ(0, std::memcmp(ds, dh, 16)) << "nblk " << nblk;
    }
}

TEST_F(HwCrossCheck, GcmStreamingScalarVsHwRandomChunks)
{
    // Random split points hammer the keystream/GHASH carry handoff
    // between the byte path and the hw bulk path.
    Rng rng(31);
    for (int trial = 0; trial < 8; trial++) {
        Bytes key(16);
        Bytes iv(12);
        fillDeterministic(key, 5000 + trial, 0);
        fillDeterministic(iv, 6000 + trial, 0);
        size_t len = rng.range(1, 20000);
        Bytes pt(len);
        fillDeterministic(pt, 7000 + trial, 0);
        Bytes aad(rng.range(0, 40));
        fillDeterministic(aad, 8000 + trial, 0);

        AesGcm s(key, CryptoImpl::Scalar);
        AesGcm h(key, CryptoImpl::Hw);
        s.start(iv, aad);
        h.start(iv, aad);
        Bytes cs(len), ch(len);
        size_t off = 0;
        while (off < len) {
            size_t n = std::min<size_t>(rng.range(1, 2000), len - off);
            s.encryptUpdate(ByteView(pt).subspan(off, n),
                            ByteSpan(cs).subspan(off, n));
            h.encryptUpdate(ByteView(pt).subspan(off, n),
                            ByteSpan(ch).subspan(off, n));
            off += n;
        }
        uint8_t ts[16], th[16];
        s.finishTag(ts);
        h.finishTag(th);
        EXPECT_EQ(cs, ch) << "trial " << trial;
        EXPECT_EQ(0, std::memcmp(ts, th, 16)) << "trial " << trial;

        // Decrypt the hw ciphertext with the scalar engine and vice
        // versa, on unaligned buffers.
        Bytes mis(len + 3 + 16);
        std::memcpy(mis.data() + 3, ch.data(), len);
        AesGcm ds(key, CryptoImpl::Scalar);
        ds.start(iv, aad);
        Bytes outs(len);
        ds.decryptUpdate(ByteView(mis.data() + 3, len), outs);
        EXPECT_TRUE(ds.checkTag(th));
        EXPECT_EQ(outs, pt);

        AesGcm dh(key, CryptoImpl::Hw);
        dh.start(iv, aad);
        Bytes outh(len);
        dh.decryptUpdate(ByteView(mis.data() + 3, len), outh);
        EXPECT_TRUE(dh.checkTag(ts));
        EXPECT_EQ(outh, pt);
    }
}

TEST_F(HwCrossCheck, CtrAtOffsetScalarVsHw)
{
    Bytes key(16);
    fillDeterministic(key, 42, 0);
    Bytes iv(12);
    fillDeterministic(iv, 43, 0);
    Aes128 aes(key);

    // Offsets hitting block boundaries, mid-block positions, and the
    // partial head+bulk+partial tail combination.
    const uint64_t offsets[] = {0, 1, 15, 16, 17, 100, 1460, 4096 + 5};
    const size_t lengths[] = {1, 15, 16, 17, 64, 333, 1460, 5000};
    for (uint64_t off : offsets) {
        for (size_t len : lengths) {
            Bytes a(len), b(len);
            fillDeterministic(a, off * 131 + len, 0);
            b = a;
            aesGcmCtrAtOffset(aes, iv, off, a, CryptoImpl::Scalar);
            aesGcmCtrAtOffset(aes, iv, off, b, CryptoImpl::Hw);
            EXPECT_EQ(a, b) << "off=" << off << " len=" << len;
        }
    }
}

TEST_F(HwCrossCheck, EnvOverrideForcesScalar)
{
    // activeCryptoImpl() is resolved once at startup; this only
    // verifies the name mapping stays consistent with the enum.
    EXPECT_STREQ(cryptoImplName(CryptoImpl::Scalar), "scalar");
    EXPECT_STREQ(cryptoImplName(CryptoImpl::Hw), "hw");
    EXPECT_STREQ(activeCryptoImplName(), cryptoImplName(activeCryptoImpl()));
}

} // namespace
} // namespace anic::crypto
