/**
 * @file
 * Unit tests for the hierarchical stats registry, its typed
 * instruments, and the trace ring.
 */

#include <gtest/gtest.h>

#include "sim/registry.hh"
#include "sim/trace.hh"

namespace anic::sim {
namespace {

// ---------------------------------------------------------- Counter

TEST(Counter, ActsLikeUint64)
{
    Counter c;
    EXPECT_EQ(c, 0u);
    c++;
    ++c;
    c += 40;
    EXPECT_EQ(c, 42u);
    uint64_t raw = c;
    EXPECT_EQ(raw, 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, StructCopyAndDelta)
{
    struct S
    {
        Counter a, b;
    };
    S s0;
    S s1 = s0;
    s1.a += 10;
    s1.b += 3;
    EXPECT_EQ(s1.a - s0.a, 10u);
    EXPECT_EQ(s1.b - s0.b, 3u);
}

// ------------------------------------------------------------ Gauge

TEST(Gauge, SetAndArithmetic)
{
    Gauge g;
    g.set(1.5);
    g += 0.5;
    EXPECT_DOUBLE_EQ(g, 2.0);
    g -= 2.0;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ----------------------------------------------------- Distribution

TEST(Distribution, PercentileEdgeCases)
{
    Distribution d;
    d.add(5.0);
    // Single sample: every percentile is that sample.
    EXPECT_DOUBLE_EQ(d.percentile(0), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 5.0);

    for (int i = 1; i <= 9; i++)
        d.add(static_cast<double>(i * 10));
    // p=0 -> min, p=100 -> max, out-of-range p clamps.
    EXPECT_DOUBLE_EQ(d.percentile(0), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(-3), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 90.0);
    EXPECT_DOUBLE_EQ(d.percentile(250), 90.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 90.0);
}

TEST(Distribution, TrimmedMeanDuplicatedExtremes)
{
    // Duplicated min and max: only ONE copy of each is dropped.
    Distribution d;
    for (double v : {1.0, 1.0, 2.0, 3.0, 9.0, 9.0})
        d.add(v);
    // drop one 1 and one 9 -> (1+2+3+9)/4
    EXPECT_DOUBLE_EQ(d.trimmedMean(), (1.0 + 2.0 + 3.0 + 9.0) / 4.0);
}

TEST(Distribution, TrimmedMeanTinySets)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.trimmedMean(), 0.0); // empty -> mean of nothing
    d.add(7.0);
    EXPECT_DOUBLE_EQ(d.trimmedMean(), 7.0); // <=2 samples -> plain mean
    d.add(9.0);
    EXPECT_DOUBLE_EQ(d.trimmedMean(), 8.0);
}

// -------------------------------------------------------- RateMeter

TEST(RateMeter, OpenWindowReadsZeroNotGarbage)
{
    // The old IntervalMeter computed endTick_(0) - startTick_ while
    // the window was open, producing a huge unsigned underflow.
    RateMeter m;
    EXPECT_EQ(m.elapsed(), 0u); // never started
    EXPECT_DOUBLE_EQ(m.perSecond(), 0.0);

    m.start(5 * kMillisecond);
    m.add(1000);
    EXPECT_EQ(m.elapsed(), 0u); // open window: no underflow
    EXPECT_DOUBLE_EQ(m.perSecond(), 0.0);
    EXPECT_DOUBLE_EQ(m.gbps(), 0.0);
    EXPECT_EQ(m.total(), 1000u);

    m.stop(6 * kMillisecond);
    EXPECT_EQ(m.elapsed(), 1 * kMillisecond);
    EXPECT_DOUBLE_EQ(m.perSecond(), 1000.0 / 1e-3);
}

TEST(RateMeter, RestartReopensWindow)
{
    RateMeter m;
    m.start(0);
    m.add(10);
    m.stop(kSecond);
    EXPECT_DOUBLE_EQ(m.perSecond(), 10.0);
    m.start(2 * kSecond);
    EXPECT_EQ(m.elapsed(), 0u); // reopened: guarded again
    EXPECT_EQ(m.total(), 0u);
}

// --------------------------------------------------------- Registry

TEST(Registry, LinkAndFind)
{
    StatsRegistry reg;
    Counter c;
    Gauge g;
    reg.link("a.ctr", c);
    reg.link("a.g", g);
    c += 7;
    ASSERT_NE(reg.findCounter("a.ctr"), nullptr);
    EXPECT_EQ(*reg.findCounter("a.ctr"), 7u);
    EXPECT_EQ(reg.findCounter("a.g"), nullptr); // wrong type
    EXPECT_NE(reg.findGauge("a.g"), nullptr);
    EXPECT_EQ(reg.findCounter("nope"), nullptr);
    EXPECT_TRUE(reg.contains("a.ctr"));
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, OwnedGetOrCreate)
{
    StatsRegistry reg;
    Counter &c1 = reg.counter("x.y");
    c1 += 3;
    Counter &c2 = reg.counter("x.y");
    EXPECT_EQ(&c1, &c2); // same instrument
    EXPECT_EQ(c2, 3u);
    Distribution &d = reg.distribution("x.d");
    d.add(1.0);
    EXPECT_EQ(reg.findDistribution("x.d")->count(), 1u);
}

TEST(Registry, RemoveSubtreeIsSegmentAware)
{
    StatsRegistry reg;
    Counter a, b, c;
    reg.link("nic.pktsTx", a);
    reg.link("nic.fsm.resyncs", b);
    reg.link("nicolas", c); // shares the string prefix, not the path
    reg.removeSubtree("nic");
    EXPECT_FALSE(reg.contains("nic.pktsTx"));
    EXPECT_FALSE(reg.contains("nic.fsm.resyncs"));
    EXPECT_TRUE(reg.contains("nicolas"));
}

TEST(Registry, UniqueNameAndScopeLifecycle)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.uniqueName("nic"), "nic");
    {
        StatsScope s1(reg, reg.uniqueName("nic"));
        EXPECT_EQ(s1.prefix(), "nic");
        EXPECT_EQ(reg.uniqueName("nic"), "nic2");
        StatsScope s2(reg, reg.uniqueName("nic"));
        EXPECT_EQ(reg.uniqueName("nic"), "nic3");
        Counter c;
        s1.link("pkts", c);
        EXPECT_TRUE(reg.contains("nic.pkts"));
    }
    // Both scopes died: links removed, names free again (stable
    // naming across sequential bench worlds in one process).
    EXPECT_FALSE(reg.contains("nic.pkts"));
    EXPECT_EQ(reg.uniqueName("nic"), "nic");
}

TEST(Registry, DetachedScopeIsNoop)
{
    StatsScope s; // default: detached
    Counter c;
    s.link("x", c); // must not crash
    EXPECT_FALSE(s.attached());
    StatsScope child = s.child("y");
    EXPECT_FALSE(child.attached());
}

TEST(Registry, ForEachVisitsInPathOrder)
{
    StatsRegistry reg;
    Counter a, b;
    reg.link("b.x", b);
    reg.link("a.x", a);
    std::vector<std::string> seen;
    reg.forEach([&](const std::string &p, const InstrumentRef &) {
        seen.push_back(p);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "a.x");
    EXPECT_EQ(seen[1], "b.x");
}

// ------------------------------------------------------------- JSON

TEST(RegistryJson, EmptyRegistryIsEmptyObject)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.jsonSnapshot(), "{}");
}

TEST(RegistryJson, NestedGroups)
{
    StatsRegistry reg;
    Counter pkts(3);
    Gauge util(0.5);
    reg.link("nic.pktsTx", pkts);
    reg.link("nic.fsm.resyncs", reg.counter("nic.fsm.resyncs"));
    reg.counter("nic.fsm.resyncs") += 2;
    reg.link("util", util);
    std::string js = reg.jsonSnapshot();
    EXPECT_EQ(js, "{\"nic\":{\"fsm\":{\"resyncs\":2},\"pktsTx\":3},"
                  "\"util\":0.5}");
}

TEST(RegistryJson, ConsecutiveSiblingsAndGroupClose)
{
    // Regression for the one-pass emitter's comma placement: leaf
    // following a closed group, and two leaves sharing a parent.
    StatsRegistry reg;
    Counter a(1), b(2), d(4);
    reg.link("a.b", a);
    reg.link("a.c", b);
    reg.link("d", d);
    EXPECT_EQ(reg.jsonSnapshot(), "{\"a\":{\"b\":1,\"c\":2},\"d\":4}");
}

TEST(RegistryJson, DistributionAndRateShapes)
{
    StatsRegistry reg;
    Distribution &d = reg.distribution("lat");
    EXPECT_NE(reg.jsonSnapshot().find("\"lat\":{\"count\":0}"),
              std::string::npos);
    d.add(1.0);
    d.add(3.0);
    std::string js = reg.jsonSnapshot();
    EXPECT_NE(js.find("\"count\":2"), std::string::npos);
    EXPECT_NE(js.find("\"mean\":2"), std::string::npos);

    RateMeter &m = reg.rate("rate");
    m.start(0);
    m.add(8);
    m.stop(kSecond);
    js = reg.jsonSnapshot();
    EXPECT_NE(js.find("\"total\":8"), std::string::npos);
    EXPECT_NE(js.find("\"perSec\":8"), std::string::npos);
}

// -------------------------------------------------------- TraceRing

TEST(TraceRing, DisabledRecordIsNoop)
{
    TraceRing ring;
    ring.record(1, TraceKind::FsmTransition, "nic", 1, 0, 1);
    EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, BoundedWithDropCount)
{
    TraceRing ring;
    ring.setCapacity(4);
    ring.enable();
    for (uint64_t i = 0; i < 10; i++)
        ring.record(i, TraceKind::Custom, "t", i, 0, 0);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);
    std::vector<TraceEvent> ev = ring.events();
    ASSERT_EQ(ev.size(), 4u);
    // Oldest-first, holding the last 4 of 10.
    EXPECT_EQ(ev.front().ts, 6u);
    EXPECT_EQ(ev.back().ts, 9u);
}

TEST(TraceRing, EventsAreOrderedAfterWrap)
{
    TraceRing ring;
    ring.setCapacity(3);
    ring.enable();
    for (uint64_t i = 0; i < 5; i++)
        ring.record(i * 10, TraceKind::Custom, "t", i, 0, 0);
    std::vector<TraceEvent> ev = ring.events();
    for (size_t i = 1; i < ev.size(); i++)
        EXPECT_LT(ev[i - 1].ts, ev[i].ts);
}

} // namespace
} // namespace anic::sim
