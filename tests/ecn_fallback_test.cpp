/**
 * @file
 * ECN negotiation and fallback: both-ends ECN with a marking link
 * (classic and DCTCP feedback loops close), asymmetric negotiation
 * falling back to non-ECN cleanly, CE marks on pure acks being
 * ignored, and a mid-stream impairment flip under an rx-offloaded TLS
 * flow holding every FSM invariant. The point throughout: ECN is a
 * performance signal, never a correctness dependency, and it must not
 * desync the autonomous offload FSM.
 */

#include <gtest/gtest.h>

#include "support/offload_world.hh"
#include "support/test_net.hh"
#include "testing/invariants.hh"
#include "tls/ktls.hh"

namespace anic {
namespace {

using tcp::CcAlgo;
using tcp::TcpConnection;
using testing::OffloadWorld;
using testing::TwoHostWorld;

constexpr uint64_t kBytes = 2 << 20;

/** Plain-TCP bulk transfer with per-side Config; returns the client. */
struct EcnBulk
{
    explicit EcnBulk(TwoHostWorld &w, TcpConnection::Config cliCfg,
                     TcpConnection::Config srvCfg, uint64_t bytes = kBytes)
        : total(bytes)
    {
        w.stackB->listen(80, srvCfg, [this](TcpConnection &c) {
            server = &c;
            c.setOnReadable([this, &c] {
                while (c.readable()) {
                    tcp::RxSegment seg = c.pop();
                    if (!checkDeterministic(seg.data, 5, seg.streamOff))
                        corrupt = true;
                    received += seg.data.size();
                }
            });
        });
        client = &w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB,
                                    80, cliCfg);
        client->setOnWritable([this] { pump(); });
        client->setOnConnected([this] {
            client->core().post([this] { pump(); });
        });
    }

    void
    pump()
    {
        while (sent < total && client->sendSpace() > 0) {
            size_t n = std::min<uint64_t>(client->sendSpace(),
                                          std::min<uint64_t>(total - sent,
                                                             65536));
            Bytes chunk(n);
            fillDeterministic(chunk, 5, sent);
            size_t acc = client->send(chunk);
            sent += acc;
            if (acc < n)
                break;
        }
    }

    uint64_t total;
    uint64_t sent = 0;
    uint64_t received = 0;
    bool corrupt = false;
    TcpConnection *client = nullptr;
    TcpConnection *server = nullptr;
};

TEST(EcnNegotiation, BothEndsMarkEchoAndReduce)
{
    net::Link::Config lcfg;
    lcfg.dir[0].ecnMarkRate = 0.05; // mark ECT data toward the server
    TwoHostWorld w(lcfg);

    TcpConnection::Config cfg;
    cfg.cc = CcAlgo::Reno;
    cfg.ecn = true;
    EcnBulk bulk(w, cfg, cfg);
    w.sim.runUntil(2 * sim::kSecond);

    EXPECT_EQ(bulk.received, kBytes);
    EXPECT_FALSE(bulk.corrupt);
    ASSERT_NE(bulk.server, nullptr);
    EXPECT_TRUE(bulk.client->ecnEnabled());
    EXPECT_TRUE(bulk.server->ecnEnabled());
    EXPECT_GT(w.link.stats(0).ecnMarked, 0u);
    EXPECT_GT(bulk.server->stats().ecnCeRcvd, 0u);
    EXPECT_GT(bulk.client->stats().ecnEchoesRcvd, 0u);
    EXPECT_GT(bulk.client->stats().ecnCwndReductions, 0u);
    // ECN did its job without costing a single retransmission.
    EXPECT_EQ(bulk.client->stats().rtoFires, 0u);
}

TEST(EcnNegotiation, DctcpImpliesEcnAndReactsPerWindow)
{
    net::Link::Config lcfg;
    lcfg.dir[0].ecnMarkRate = 0.05;
    TwoHostWorld w(lcfg);

    TcpConnection::Config cfg;
    cfg.cc = CcAlgo::Dctcp; // note: no explicit cfg.ecn
    EcnBulk bulk(w, cfg, cfg);
    w.sim.runUntil(2 * sim::kSecond);

    EXPECT_EQ(bulk.received, kBytes);
    EXPECT_FALSE(bulk.corrupt);
    EXPECT_TRUE(bulk.client->ecnEnabled());
    EXPECT_TRUE(bulk.server->ecnEnabled());
    EXPECT_GT(bulk.client->stats().ecnEchoesRcvd, 0u);
    EXPECT_GT(bulk.client->stats().ecnCwndReductions, 0u);
}

TEST(EcnNegotiation, NonEcnPeerFallsBackCleanly)
{
    net::Link::Config lcfg;
    // A link that would mark everything: with negotiation refused,
    // nothing is ECT so nothing can be marked.
    lcfg.dir[0].ecnMarkRate = 1.0;
    TwoHostWorld w(lcfg);

    TcpConnection::Config cli;
    cli.cc = CcAlgo::Reno;
    cli.ecn = true;
    TcpConnection::Config srv; // ECN not offered on the SYN-ACK
    EcnBulk bulk(w, cli, srv);
    w.sim.runUntil(2 * sim::kSecond);

    EXPECT_EQ(bulk.received, kBytes);
    EXPECT_FALSE(bulk.corrupt);
    EXPECT_FALSE(bulk.client->ecnEnabled());
    EXPECT_FALSE(bulk.server->ecnEnabled());
    EXPECT_EQ(w.link.stats(0).ecnMarked, 0u);
    EXPECT_EQ(bulk.client->stats().ecnEchoesRcvd, 0u);
    EXPECT_EQ(bulk.client->stats().ecnCwndReductions, 0u);
}

TEST(EcnNegotiation, DctcpSenderAgainstNonEcnPeerDegradesToReno)
{
    net::Link::Config lcfg;
    lcfg.dir[0].ecnMarkRate = 1.0;
    lcfg.dir[0].lossRate = 0.005; // real loss still recovered sans ECN
    TwoHostWorld w(lcfg);

    TcpConnection::Config cli;
    cli.cc = CcAlgo::Dctcp;
    TcpConnection::Config srv;
    EcnBulk bulk(w, cli, srv);
    w.sim.runUntil(4 * sim::kSecond);

    EXPECT_EQ(bulk.received, kBytes);
    EXPECT_FALSE(bulk.corrupt);
    EXPECT_FALSE(bulk.client->ecnEnabled());
    EXPECT_EQ(bulk.client->stats().ecnCwndReductions, 0u);
    EXPECT_GT(bulk.client->stats().fastRetransmits +
                  bulk.client->stats().rtoFires,
              0u);
}

TEST(EcnNegotiation, CeOnPureAcksIsIgnored)
{
    TwoHostWorld w;
    TcpConnection::Config cfg;
    cfg.ecn = true;
    EcnBulk bulk(w, cfg, cfg, /*bytes=*/64 << 10);
    w.sim.runUntil(100 * sim::kMillisecond);
    ASSERT_EQ(bulk.received, 64u << 10);
    ASSERT_NE(bulk.server, nullptr);

    // A buggy or hostile peer reflecting CE on pure acks: RFC 3168
    // only defines CE on ECT packets, and this stack only inspects
    // data segments — the acks must not latch an echo or cut cwnd.
    for (int i = 0; i < 2; i++) { // two: stays below dup-ack threshold
        net::Ipv4Header ip;
        ip.src = TwoHostWorld::kIpB;
        ip.dst = TwoHostWorld::kIpA;
        ip.tos = net::kEcnCe;
        net::TcpHeader th;
        th.srcPort = 80;
        th.dstPort = bulk.client->localFlow().srcPort;
        th.seq = bulk.server->sndNextByteSeq();
        th.ack = bulk.client->sndUna();
        th.flags = net::kTcpAck;
        th.window = 1 << 20;
        net::PacketPtr pkt = w.stackA->pool().makeTcp(ip, th, 0);
        host::Core &core = w.stackA->steer(pkt->flow().reversed());
        core.post([&w, pkt] { w.stackA->input(pkt); });
        w.sim.runUntil(w.sim.now() + 1 * sim::kMillisecond);
    }

    // More data flows; nobody saw CE, nobody echoed, nobody cut.
    bulk.total += 64 << 10;
    bulk.client->core().post([&] { bulk.pump(); });
    w.sim.runUntil(w.sim.now() + 100 * sim::kMillisecond);
    EXPECT_EQ(bulk.received, 128u << 10);
    EXPECT_FALSE(bulk.corrupt);
    EXPECT_EQ(bulk.client->stats().ecnCeRcvd, 0u);
    EXPECT_EQ(bulk.server->stats().ecnCeRcvd, 0u);
    EXPECT_EQ(bulk.client->stats().ecnEchoesRcvd, 0u);
    EXPECT_EQ(bulk.client->stats().ecnCwndReductions, 0u);
    EXPECT_EQ(bulk.server->stats().ecnEchoesRcvd, 0u);
}

/**
 * Mid-stream ECN/impairment flips under an rx-offloaded TLS flow: the
 * marking (and light reordering) appears and disappears while the NIC
 * FSM is live. The FSM invariant probe must stay silent and the
 * stream must be delivered exactly.
 */
TEST(EcnOffloadInteraction, MidStreamImpairmentFlipHoldsFsmInvariants)
{
    testing::FsmInvariantChecker checker;

    core::Node::Config ca, cb;
    ca.tcpCfg.cc = CcAlgo::Dctcp;
    cb.tcpCfg.cc = CcAlgo::Dctcp;
    cb.nicCfg.fsmProbe = &checker;
    OffloadWorld w({}, ca, cb);

    constexpr uint64_t kTlsBytes = 4 << 20;
    constexpr uint64_t kSecret = 0xeca57;
    tls::TlsStats agg;
    tls::TlsConfig srvTls;
    srvTls.recordSize = 4096;
    srvTls.rxOffload = true;
    srvTls.aggregate = &agg;
    tls::TlsConfig cliTls;
    cliTls.recordSize = 4096;

    uint64_t received = 0;
    bool corrupt = false;
    std::unique_ptr<tls::TlsSocket> rxTls, txTls;
    w.b.stack().listen(443, w.b.tcpConfig(), [&](TcpConnection &c) {
        rxTls = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kSecret, false), srvTls);
        rxTls->enableOffload(w.b.device());
        rxTls->setOnReadable([&] {
            while (rxTls->readable()) {
                tcp::RxSegment seg = rxTls->pop();
                if (!checkDeterministic(seg.data, 3, seg.streamOff))
                    corrupt = true;
                received += seg.data.size();
            }
        });
    });

    uint64_t sent = 0;
    TcpConnection &c = w.a.stack().connect(OffloadWorld::kIpA,
                                           OffloadWorld::kIpB, 443,
                                           w.a.tcpConfig());
    auto pump = [&] {
        while (sent < kTlsBytes) {
            size_t n = std::min<uint64_t>(4096, kTlsBytes - sent);
            Bytes chunk(n);
            fillDeterministic(chunk, 3, sent);
            size_t acc = txTls->send(chunk);
            sent += acc;
            if (acc < n)
                break;
        }
    };
    c.setOnConnected([&] {
        txTls = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kSecret, true), cliTls);
        txTls->setOnWritable(pump);
        pump();
    });

    // Flip marking + mild reordering on at 100 us (inside the
    // ramp-up), off at 1 ms, on again at 2 ms: the FSM rides through
    // every transition.
    net::Impairments rough;
    rough.ecnMarkRate = 0.3;
    rough.reorderRate = 0.01;
    rough.reorderExtraDelay = 5 * sim::kMicrosecond;
    w.sim.schedule(100 * sim::kMicrosecond,
                   [&] { w.link.setImpairments(0, rough); });
    w.sim.schedule(1 * sim::kMillisecond,
                   [&] { w.link.setImpairments(0, net::Impairments{}); });
    w.sim.schedule(2 * sim::kMillisecond,
                   [&] { w.link.setImpairments(0, rough); });

    w.sim.runUntil(2 * sim::kSecond);

    EXPECT_EQ(received, kTlsBytes);
    EXPECT_FALSE(corrupt);
    EXPECT_TRUE(checker.violations().empty())
        << checker.violations().front();
    EXPECT_GT(checker.eventsSeen(), 0u);
    // The offload did real work and ECN feedback really closed the
    // loop while it ran.
    EXPECT_GT(agg.rxFullyOffloaded, 0u);
    EXPECT_GT(w.link.stats(0).ecnMarked, 0u);
    EXPECT_GT(w.a.stack().stats().ecnCwndReductions, 0u);
}

} // namespace
} // namespace anic
