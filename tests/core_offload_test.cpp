/**
 * @file
 * Unit tests for the core offload framework: the tx message tracker
 * (seq->message map with ack trimming) and driver-level behaviours —
 * resync response staleness matching and shadow-context recovery —
 * exercised through a minimal TLS offload.
 */

#include <gtest/gtest.h>

#include "core/tx_msg_tracker.hh"
#include "support/offload_world.hh"
#include "tls/ktls.hh"

namespace anic {
namespace {

using core::TxMsgTracker;

TEST(TxMsgTracker, FindsContainingMessage)
{
    TxMsgTracker t;
    t.add(1000, 100, 0);
    t.add(1100, 50, 1);
    t.add(1150, 200, 2);

    EXPECT_EQ(t.find(1000)->msgIdx, 0u);
    EXPECT_EQ(t.find(1099)->msgIdx, 0u);
    EXPECT_EQ(t.find(1100)->msgIdx, 1u);
    EXPECT_EQ(t.find(1349)->msgIdx, 2u);
    EXPECT_EQ(t.find(1350), nullptr);
    EXPECT_EQ(t.find(999), nullptr);
}

TEST(TxMsgTracker, TrimsOnlyFullyAckedMessages)
{
    TxMsgTracker t;
    t.add(0, 100, 0);
    t.add(100, 100, 1);
    t.trimAcked(150); // message 1 partially acked: must stay
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.find(120)->msgIdx, 1u);
    t.trimAcked(200);
    EXPECT_TRUE(t.empty());
}

TEST(TxMsgTracker, SequenceWrapAround)
{
    TxMsgTracker t;
    uint32_t near_wrap = 0xffffff00u;
    t.add(near_wrap, 0x200, 7); // wraps past zero
    EXPECT_EQ(t.find(0x40)->msgIdx, 7u); // inside, post-wrap
    EXPECT_EQ(t.find(0x100), nullptr);
    t.trimAcked(0x100);
    EXPECT_TRUE(t.empty());
}

TEST(TxMsgTracker, RetainedBytesServeRebuilds)
{
    TxMsgTracker t;
    Bytes payload(300);
    fillDeterministic(payload, 5, 0);
    t.add(5000, 300, 3, payload);
    const TxMsgTracker::Entry *e = t.find(5100);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(checkDeterministic(
        ByteView(e->bytes).subspan(0, 100), 5, 0));
}

// ------------------------------------------------- driver behaviours

TEST(OffloadDriver, StaleResyncResponseIsDropped)
{
    // Covered behaviourally: a response for a speculation the NIC
    // abandoned must not confirm the new speculation. Exercised at
    // the unit level via the public l5o handle.
    testing::OffloadWorld w;
    std::unique_ptr<tls::TlsSocket> server;
    std::unique_ptr<tls::TlsSocket> client;
    w.b.stack().listen(443, {}, [&](tcp::TcpConnection &c) {
        tls::TlsConfig scfg;
        scfg.rxOffload = true;
        server = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(1, false), scfg);
        server->enableOffload(w.b.device());
    });
    tcp::TcpConnection &c =
        w.a.stack().connect(testing::OffloadWorld::kIpA,
                            testing::OffloadWorld::kIpB, 443, {});
    c.setOnConnected([&] {
        client = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(1, true), tls::TlsConfig{});
    });
    w.sim.runUntil(10 * sim::kMillisecond);
    ASSERT_NE(server, nullptr);

    // No speculation pending: an unsolicited response is ignored.
    server->offload()->resyncRxResp(12345, true, 99);
    EXPECT_EQ(server->rxFsmStats()->resyncConfirmed, 0u);
}

TEST(OffloadDriver, TxRecoveryFeedsRebuildOverPcie)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = 0.05;
    lc.seed = 3;
    testing::OffloadWorld w(lc);

    std::unique_ptr<tls::TlsSocket> server;
    std::unique_ptr<tls::TlsSocket> client;
    uint64_t received = 0;
    bool corrupt = false;
    constexpr uint64_t kSeed = 9;

    w.b.stack().listen(443, {}, [&](tcp::TcpConnection &c) {
        server = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(2, false), tls::TlsConfig{});
        server->setOnReadable([&] {
            while (server->readable()) {
                tcp::RxSegment seg = server->pop();
                if (!checkDeterministic(seg.data, kSeed, seg.streamOff))
                    corrupt = true;
                received += seg.data.size();
            }
        });
    });
    tcp::TcpConnection &c =
        w.a.stack().connect(testing::OffloadWorld::kIpA,
                            testing::OffloadWorld::kIpB, 443, {});
    uint64_t sent = 0;
    constexpr uint64_t kTotal = 1 << 20;
    c.setOnConnected([&] {
        tls::TlsConfig ccfg;
        ccfg.txOffload = true;
        client = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(2, true), ccfg);
        client->enableOffload(w.a.device());
        auto pump = [&] {
            while (sent < kTotal) {
                size_t n = std::min<uint64_t>(kTotal - sent, 32768);
                Bytes b(n);
                fillDeterministic(b, kSeed, sent);
                size_t acc = client->send(b);
                sent += acc;
                if (acc < n)
                    break;
            }
        };
        client->setOnWritable(pump);
        pump();
    });

    w.sim.runUntil(5 * sim::kSecond);
    EXPECT_EQ(received, kTotal);
    EXPECT_FALSE(corrupt);

    // Every tx resync DMA-read a rebuild prefix; the driver never
    // failed to find the message state.
    const nic::NicStats &ns = w.a.nicDev().stats();
    EXPECT_GT(ns.txResyncs, 0u);
    EXPECT_GT(w.a.nicDev().pcie().ctxRecoveryBytes, 0u);
    EXPECT_EQ(w.a.device().txRecoveryFailures(), 0u);
    EXPECT_EQ(client->stats().txMsgStateUpcalls, ns.txResyncs);
}

} // namespace
} // namespace anic
