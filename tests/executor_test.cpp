/**
 * @file
 * JobRunner determinism tests: the core invariant of the parallel
 * executor is that `--jobs N` output is byte-identical to a serial
 * sweep. The suites run the same workload serially and across 8
 * workers and compare every byte the ordered sink received.
 *
 * Built with -DANIC_TSAN=ON the same binary doubles as the
 * ThreadSanitizer gate for the executor and the per-run isolation of
 * the simulation worlds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_common.hh"
#include "sim/executor.hh"
#include "testing/differential.hh"

using namespace anic;

namespace {

/** Runs @p submit against a JobRunner with @p jobs workers and
 *  returns every byte the ordered sink saw, concatenated. */
std::string
capture(int jobs, const std::function<void(sim::JobRunner &)> &submit)
{
    std::string got;
    sim::JobRunner::Config cfg;
    cfg.jobs = jobs;
    cfg.sink = [&got](const sim::RunContext::Output &o) {
        got += o.text;
        got += '\x1e'; // record separator: flush boundaries must match
        got += o.jsonLines;
        for (const auto &[bench, line] : o.snapshots) {
            got += bench;
            got += ':';
            got += line;
        }
        got += o.traceDump;
    };
    sim::JobRunner runner(cfg);
    submit(runner);
    runner.drain();
    return got;
}

TEST(JobRunner, FlushesInSubmissionOrder)
{
    auto submit = [](sim::JobRunner &r) {
        // Jobs with wildly uneven cost: on 8 workers the cheap tail
        // finishes long before job 0, yet the sink must still see
        // submission order.
        for (int i = 0; i < 24; i++) {
            r.submit("point=" + std::to_string(i),
                     [i](sim::RunContext &ctx) {
                         uint64_t acc = 0;
                         uint64_t spins = (i % 3 == 0) ? 2'000'000 : 1'000;
                         for (uint64_t k = 0; k < spins; k++)
                             acc += k * k + i;
                         ctx.print("point %d done (acc %llu)\n", i,
                                   (unsigned long long)(acc != 0));
                         ctx.json("{\"point\": " + std::to_string(i) + "}");
                     });
        }
    };
    std::string serial = capture(1, submit);
    std::string parallel = capture(8, submit);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(JobRunner, CancelPendingSkipsUnstartedJobs)
{
    int executed = 0;
    size_t flushes = 0;
    std::atomic<bool> gate{false};
    sim::JobRunner::Config cfg;
    cfg.jobs = 1; // serial: cancellation point is deterministic
    cfg.sink = [&flushes](const sim::RunContext::Output &) { flushes++; };
    sim::JobRunner runner(cfg);
    for (int i = 0; i < 16; i++) {
        runner.submit("job=" + std::to_string(i),
                      [&, i](sim::RunContext &) {
                          // Job 0 holds the single worker until every
                          // job is queued, so the cancellation from
                          // job 3 always finds 12 pending jobs.
                          while (!gate.load())
                              std::this_thread::yield();
                          executed++;
                          if (i == 3)
                              runner.cancelPending();
                      });
    }
    gate.store(true);
    runner.drain();
    EXPECT_EQ(executed, 4);
    EXPECT_EQ(flushes, 4u); // canceled slots never reach the sink
    EXPECT_EQ(runner.stats().runs, 4u);
    EXPECT_EQ(runner.stats().canceled, 12u);
}

TEST(JobRunner, StatsCoverEveryRun)
{
    sim::JobRunner::Config cfg;
    cfg.jobs = 4;
    cfg.sink = [](const sim::RunContext::Output &) {};
    sim::JobRunner runner(cfg);
    for (int i = 0; i < 10; i++) {
        std::string label = "r";
        label += std::to_string(i);
        runner.submit(label, [](sim::RunContext &) {});
    }
    runner.drain();
    const sim::JobRunner::Stats &st = runner.stats();
    EXPECT_EQ(st.runs, 10u);
    EXPECT_EQ(st.perRun.size(), 10u);
    EXPECT_EQ(st.perRun[0].label, "r0");
    EXPECT_GT(st.wallSeconds, 0.0);
    EXPECT_GE(st.speedup(), 0.0);
}

TEST(RunContext, ScaledWindowNeverZero)
{
    sim::RunConfig cfg;
    cfg.windowScale = 0.25;
    sim::RunContext ctx(cfg);
    EXPECT_EQ(ctx.scaleWindow(0), 0u);  // "no window" stays no window
    EXPECT_EQ(ctx.scaleWindow(1), 1u);  // cannot floor to zero
    EXPECT_EQ(ctx.scaleWindow(3), 1u);
    EXPECT_EQ(ctx.scaleWindow(100), 25u);
}

/** The Figure 19 shape in miniature: an nginx sweep over connection
 *  counts and TLS variants, every point a full MacroWorld run. */
TEST(JobRunnerDeterminism, Fig19MiniSweep)
{
    const int kConns[] = {2, 4};
    const bench::HttpVariant kVariants[] = {bench::HttpVariant::Https,
                                            bench::HttpVariant::OffloadZc};
    auto submit = [&](sim::JobRunner &r) {
        for (int conns : kConns) {
            for (bench::HttpVariant v : kVariants) {
                std::string label = "conns=" + std::to_string(conns) +
                                    "/" + bench::variantName(v);
                r.submit(label, [conns, v, label](sim::RunContext &ctx) {
                    bench::NginxParams p;
                    p.serverCores = 1;
                    p.generatorCores = 2;
                    p.connections = conns;
                    p.fileCount = 4;
                    p.fileSize = 32 << 10;
                    p.variant = v;
                    p.warmup = 5 * sim::kMillisecond;
                    p.window = 4 * sim::kMillisecond;
                    bench::NginxResult res = bench::runNginx(ctx, p);
                    ctx.print("%s gbps=%.4f busy=%.3f err=%llu\n",
                              label.c_str(), res.gbps, res.busyCores,
                              (unsigned long long)res.errors);
                });
            }
        }
    };
    std::string serial = capture(1, submit);
    std::string parallel = capture(8, submit);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

/** The multi-core contention shape of the reworked Figure 19: four
 *  server cores, each owning a NIC TX/RX queue pair, RSS sharding
 *  flows across them. Serial vs 8-worker output must stay
 *  byte-identical, and under -DANIC_TSAN=ON this doubles as the
 *  ThreadSanitizer gate for the multi-queue receive path. A repeated
 *  serial run also pins seed-reproducibility of the sharded worlds. */
TEST(JobRunnerDeterminism, Fig19MultiCoreSweep)
{
    auto submit = [](sim::JobRunner &r) {
        for (int conns : {4, 8}) {
            for (bench::HttpVariant v : {bench::HttpVariant::Https,
                                         bench::HttpVariant::OffloadZc}) {
                std::string label = "cores=4/conns=" +
                                    std::to_string(conns) + "/" +
                                    bench::variantName(v);
                r.submit(label, [conns, v, label](sim::RunContext &ctx) {
                    bench::NginxParams p;
                    p.serverCores = 4;
                    p.generatorCores = 4;
                    p.connections = conns;
                    p.fileCount = 4;
                    p.fileSize = 32 << 10;
                    p.variant = v;
                    p.warmup = 5 * sim::kMillisecond;
                    p.window = 4 * sim::kMillisecond;
                    bench::NginxResult res = bench::runNginx(ctx, p);
                    ctx.print("%s gbps=%.4f busy=%.3f err=%llu\n",
                              label.c_str(), res.gbps, res.busyCores,
                              (unsigned long long)res.errors);
                });
            }
        }
    };
    std::string serial = capture(1, submit);
    std::string parallel = capture(8, submit);
    std::string repeat = capture(1, submit);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, repeat) << "multi-core run is not seed-reproducible";
}

/** A 64-seed differential fuzz batch: every world is run-isolated,
 *  so seed results and trace hashes cannot depend on --jobs. */
TEST(JobRunnerDeterminism, FuzzSeedBatch)
{
    constexpr uint64_t kSeeds = 64;
    auto submitSeeds = [](sim::JobRunner &r) {
        for (uint64_t seed = 1; seed <= kSeeds; seed++) {
            r.submit("seed=" + std::to_string(seed),
                     [seed](sim::RunContext &ctx) {
                         anic::testing::ScenarioGen gen;
                         anic::testing::Scenario s = gen.generate(seed);
                         anic::testing::DifferentialRunner dr;
                         uint64_t hash = dr.runOne(s, true).traceHash;
                         size_t errs = dr.check(s).size();
                         ctx.print("seed %llu hash %016llx errs %zu\n",
                                   (unsigned long long)seed,
                                   (unsigned long long)hash, errs);
                     });
        }
    };
    std::string serial = capture(1, submitSeeds);
    std::string parallel = capture(8, submitSeeds);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

/** Incast + congestion-control diversity through the differential
 *  runner: every generated scenario is forced to carry an incast
 *  fan-in and a short-flow arrival process, swept across all three
 *  CC algorithms. Serial vs 8-worker trace hashes must match — the
 *  burst synchronization, ECN marking draws, and CC arithmetic all
 *  live inside the run-isolated worlds. */
TEST(JobRunnerDeterminism, IncastScenarioBatch)
{
    constexpr uint64_t kSeeds = 8;
    const tcp::CcAlgo kAlgos[] = {tcp::CcAlgo::Reno, tcp::CcAlgo::Cubic,
                                  tcp::CcAlgo::Dctcp};
    auto submit = [&](sim::JobRunner &r) {
        for (tcp::CcAlgo cc : kAlgos) {
            for (uint64_t seed = 1; seed <= kSeeds; seed++) {
                std::string label = std::string(tcp::ccAlgoName(cc)) +
                                    "/seed=" + std::to_string(seed);
                r.submit(label, [cc, seed](sim::RunContext &ctx) {
                    anic::testing::ScenarioGen gen;
                    anic::testing::Scenario s = gen.generate(seed);
                    s.cc = cc;
                    s.ecn = cc != tcp::CcAlgo::Reno;
                    s.incast.senders = 4 + static_cast<uint32_t>(seed % 5);
                    s.incast.bytesPerSender = 16384;
                    s.incast.rounds = 2;
                    s.incast.startAt = 1 * sim::kMillisecond;
                    s.shortFlows.count = 8;
                    s.shortFlows.startAt = 1 * sim::kMillisecond;
                    anic::testing::DifferentialRunner dr;
                    uint64_t hash = dr.runOne(s, true).traceHash;
                    size_t errs = dr.check(s).size();
                    ctx.print("%s hash %016llx errs %zu\n",
                              tcp::ccAlgoName(cc),
                              (unsigned long long)hash, errs);
                });
            }
        }
    };
    std::string serial = capture(1, submit);
    std::string parallel = capture(8, submit);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

/** The calendar queue must be invisible to results: a fig19-style
 *  sweep plus a fuzz batch produce byte-identical sink output whether
 *  events run through the calendar (default) or the legacy heap
 *  (ANIC_SIM_QUEUE=heap). */
TEST(QueueDeterminism, CalendarMatchesHeapByteForByte)
{
    auto submit = [](sim::JobRunner &r) {
        for (int conns : {2, 4}) {
            std::string label = "conns=" + std::to_string(conns);
            r.submit(label, [conns, label](sim::RunContext &ctx) {
                bench::NginxParams p;
                p.serverCores = 1;
                p.generatorCores = 2;
                p.connections = conns;
                p.fileCount = 4;
                p.fileSize = 32 << 10;
                p.variant = bench::HttpVariant::OffloadZc;
                p.warmup = 5 * sim::kMillisecond;
                p.window = 4 * sim::kMillisecond;
                bench::NginxResult res = bench::runNginx(ctx, p);
                ctx.print("%s gbps=%.4f err=%llu\n", label.c_str(), res.gbps,
                          (unsigned long long)res.errors);
            });
        }
        for (uint64_t seed = 1; seed <= 16; seed++) {
            r.submit("seed=" + std::to_string(seed),
                     [seed](sim::RunContext &ctx) {
                         anic::testing::ScenarioGen gen;
                         anic::testing::Scenario s = gen.generate(seed);
                         anic::testing::DifferentialRunner dr;
                         ctx.print("seed %llu hash %016llx\n",
                                   (unsigned long long)seed,
                                   (unsigned long long)
                                       dr.runOne(s, true).traceHash);
                     });
        }
    };
    unsetenv("ANIC_SIM_QUEUE");
    std::string calendar = capture(1, submit);
    setenv("ANIC_SIM_QUEUE", "heap", 1);
    std::string heap = capture(1, submit);
    unsetenv("ANIC_SIM_QUEUE");
    EXPECT_FALSE(calendar.empty());
    EXPECT_EQ(calendar, heap);
}

} // namespace
