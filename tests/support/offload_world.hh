/**
 * @file
 * Two offload-capable hosts (core::Node) connected back-to-back —
 * the standard fixture for integration tests and benches. Host A is
 * the client / workload generator, host B the server / DUT.
 */

#ifndef ANIC_TESTS_SUPPORT_OFFLOAD_WORLD_HH
#define ANIC_TESTS_SUPPORT_OFFLOAD_WORLD_HH

#include "core/node.hh"
#include "net/link.hh"

namespace anic::testing {

struct OffloadWorld
{
    static constexpr net::IpAddr kIpA = net::makeIp(10, 0, 0, 1);
    static constexpr net::IpAddr kIpB = net::makeIp(10, 0, 0, 2);

    explicit OffloadWorld(net::Link::Config linkCfg = {},
                          core::Node::Config cfgA = {},
                          core::Node::Config cfgB = {})
        : link(sim, linkCfg), a(sim, withSeed(cfgA, 11, "a")),
          b(sim, withSeed(cfgB, 22, "b"))
    {
        a.attachPort(link, 0, kIpA);
        b.attachPort(link, 1, kIpB);
    }

    static core::Node::Config
    withSeed(core::Node::Config c, uint64_t seed, const char *name)
    {
        c.stackSeed = seed;
        if (c.name.empty())
            c.name = name;
        return c;
    }

    sim::Simulator sim;
    net::Link link;
    core::Node a;
    core::Node b;
};

} // namespace anic::testing

#endif // ANIC_TESTS_SUPPORT_OFFLOAD_WORLD_HH
