/**
 * @file
 * Single include point for the shared seeded-scenario machinery: test
 * suites pull the fuzz harness's scenario description and traffic
 * generators from src/testing/ through this header instead of keeping
 * private copies of the RNG/stream/pump helpers. Link anic_testing.
 */

#ifndef ANIC_TESTS_SUPPORT_SCENARIO_HH
#define ANIC_TESTS_SUPPORT_SCENARIO_HH

#include "testing/scenario.hh"
#include "testing/traffic.hh"

#endif // ANIC_TESTS_SUPPORT_SCENARIO_HH
