#ifndef ANIC_TESTS_SUPPORT_MACRO_WORLD_HH
#define ANIC_TESTS_SUPPORT_MACRO_WORLD_HH

#include "app/macro_world.hh"

namespace anic::testing {
using MacroWorld = app::MacroWorld;
} // namespace anic::testing

#endif // ANIC_TESTS_SUPPORT_MACRO_WORLD_HH
