/**
 * @file
 * Shared test harness: a plain (offload-less) network device that
 * serializes packets at a line rate onto a Link and delivers received
 * packets to a TCP stack on the steered core, plus a two-host world
 * fixture used by the TCP tests.
 */

#ifndef ANIC_TESTS_SUPPORT_TEST_NET_HH
#define ANIC_TESTS_SUPPORT_TEST_NET_HH

#include <deque>
#include <memory>

#include "host/core.hh"
#include "net/link.hh"
#include "tcp/net_device.hh"
#include "tcp/tcp_stack.hh"

namespace anic::testing {

/** Offload-less NIC stand-in with a bounded tx ring and line rate. */
class SimpleDevice : public tcp::NetDevice
{
  public:
    SimpleDevice(sim::Simulator &sim, net::Link &link, int port,
                 net::IpAddr ip, double gbps, size_t txRing = 4096)
        : sim_(sim), link_(link), port_(port), ip_(ip),
          psPerByte_(8000.0 / gbps), txRingCap_(txRing)
    {
        link_.attach(port, [this](net::PacketPtr pkt) { onWire(pkt); });
    }

    void attachStack(tcp::TcpStack *stack) { stack_ = stack; }

    bool
    transmit(net::PacketPtr pkt) override
    {
        if (txq_.size() >= txRingCap_)
            return false;
        txq_.push_back(std::move(pkt));
        pump();
        return true;
    }

    void setOnTxSpace(std::function<void()> cb) override { onTxSpace_ = std::move(cb); }
    net::IpAddr ipAddr() const override { return ip_; }

  private:
    void
    pump()
    {
        if (pumping_ || txq_.empty())
            return;
        pumping_ = true;
        sim::Tick start = std::max(sim_.now(), lineFreeAt_);
        sim_.scheduleAt(start, [this] { drainOne(); });
    }

    void
    drainOne()
    {
        pumping_ = false;
        if (txq_.empty())
            return;
        net::PacketPtr pkt = std::move(txq_.front());
        txq_.pop_front();
        sim::Tick ser = static_cast<sim::Tick>(
            static_cast<double>(pkt->wireSize()) * psPerByte_);
        lineFreeAt_ = std::max(sim_.now(), lineFreeAt_) + ser;
        link_.transmit(port_, std::move(pkt));
        bool had_backlog = txq_.size() + 1 >= txRingCap_;
        if (had_backlog && onTxSpace_)
            onTxSpace_();
        if (!txq_.empty()) {
            pumping_ = true;
            sim_.scheduleAt(lineFreeAt_, [this] { drainOne(); });
        }
    }

    void
    onWire(net::PacketPtr pkt)
    {
        if (stack_ == nullptr)
            return;
        host::Core &core = stack_->steer(pkt->flow().reversed());
        core.post([this, pkt, &core] {
            // Per-packet interrupts: entry/exit plus descriptor
            // handling, matching the un-coalesced OffloadDevice path.
            core.charge(core.model().interruptCost +
                        core.model().driverRxPerPacket);
            stack_->input(pkt);
        });
    }

    sim::Simulator &sim_;
    net::Link &link_;
    int port_;
    net::IpAddr ip_;
    double psPerByte_;
    size_t txRingCap_;
    std::deque<net::PacketPtr> txq_;
    bool pumping_ = false;
    sim::Tick lineFreeAt_ = 0;
    tcp::TcpStack *stack_ = nullptr;
    std::function<void()> onTxSpace_;
};

/** Two hosts connected back-to-back, one core each by default. */
struct TwoHostWorld
{
    static constexpr net::IpAddr kIpA = net::makeIp(10, 0, 0, 1);
    static constexpr net::IpAddr kIpB = net::makeIp(10, 0, 0, 2);

    explicit TwoHostWorld(net::Link::Config linkCfg = {}, int coresPerHost = 1,
                          double gbps = 100.0)
        : link(sim, linkCfg)
    {
        for (int i = 0; i < coresPerHost; i++) {
            coresA.push_back(std::make_unique<host::Core>(sim, model, i));
            coresB.push_back(std::make_unique<host::Core>(sim, model, i));
        }
        devA = std::make_unique<SimpleDevice>(sim, link, 0, kIpA, gbps);
        devB = std::make_unique<SimpleDevice>(sim, link, 1, kIpB, gbps);

        auto raw = [](auto &v) {
            std::vector<host::Core *> out;
            for (auto &c : v)
                out.push_back(c.get());
            return out;
        };
        stackA = std::make_unique<tcp::TcpStack>(sim, raw(coresA), 1);
        stackB = std::make_unique<tcp::TcpStack>(sim, raw(coresB), 2);
        stackA->addDevice(devA.get());
        stackB->addDevice(devB.get());
        devA->attachStack(stackA.get());
        devB->attachStack(stackB.get());
    }

    sim::Simulator sim;
    host::CycleModel model;
    net::Link link;
    std::vector<std::unique_ptr<host::Core>> coresA;
    std::vector<std::unique_ptr<host::Core>> coresB;
    std::unique_ptr<SimpleDevice> devA;
    std::unique_ptr<SimpleDevice> devB;
    std::unique_ptr<tcp::TcpStack> stackA;
    std::unique_ptr<tcp::TcpStack> stackB;
};

} // namespace anic::testing

#endif // ANIC_TESTS_SUPPORT_TEST_NET_HH
