/**
 * @file
 * Table-driven congestion-control coverage: each algorithm is driven
 * directly through the CongestionControl interface with hand-computed
 * expected windows (slow start, congestion avoidance, fast recovery,
 * RTO episodes), plus known-answer tests for the RFC 8312 cubic
 * window formulas and the RFC 8257 alpha EWMA, and a connection-level
 * regression for the RTO loss-episode ssthresh guard over a lossy
 * link.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/test_net.hh"
#include "tcp/congestion.hh"

namespace anic {
namespace {

using tcp::CcAlgo;
using tcp::CcConfig;
using tcp::CongestionControl;
using tcp::makeCongestionControl;
using tcp::TcpConnection;
using testing::TwoHostWorld;

// Round numbers keep the hand-computed tables readable.
constexpr uint32_t kMss = 1000;

CcConfig
ccCfg(uint32_t maxCwndSegs = 2048)
{
    CcConfig c;
    c.mss = kMss;
    c.initialCwndSegs = 10;
    c.maxCwndSegs = maxCwndSegs;
    return c;
}

CongestionControl::AckEvent
ackEv(uint32_t acked, uint32_t ackSeq = 0, uint32_t sndNxt = 0,
      bool ece = false, sim::Tick now = 0, sim::Tick srtt = 0)
{
    CongestionControl::AckEvent e;
    e.acked = acked;
    e.ackSeq = ackSeq;
    e.sndNxt = sndNxt;
    e.ecnEcho = ece;
    e.now = now;
    e.srtt = srtt;
    return e;
}

// ------------------------------------------------------------- naming

TEST(CcAlgoNames, ParseAndPrintRoundTrip)
{
    EXPECT_EQ(tcp::parseCcAlgo("reno"), CcAlgo::Reno);
    EXPECT_EQ(tcp::parseCcAlgo("cubic"), CcAlgo::Cubic);
    EXPECT_EQ(tcp::parseCcAlgo("dctcp"), CcAlgo::Dctcp);
    EXPECT_EQ(tcp::parseCcAlgo("bbr"), CcAlgo::Auto);
    EXPECT_EQ(tcp::parseCcAlgo(""), CcAlgo::Auto);
    for (CcAlgo a : {CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Dctcp}) {
        EXPECT_EQ(tcp::parseCcAlgo(tcp::ccAlgoName(a)), a);
        // Explicit selections never fall through to the env knob.
        EXPECT_EQ(tcp::resolveCcAlgo(a), a);
    }
}

TEST(CcAlgoNames, FactoryHonorsExplicitSelection)
{
    CcConfig cfg = ccCfg();
    EXPECT_EQ(makeCongestionControl(CcAlgo::Reno, cfg)->algo(), CcAlgo::Reno);
    EXPECT_EQ(makeCongestionControl(CcAlgo::Cubic, cfg)->algo(),
              CcAlgo::Cubic);
    EXPECT_EQ(makeCongestionControl(CcAlgo::Dctcp, cfg)->algo(),
              CcAlgo::Dctcp);
}

// --------------------------------------------------------------- reno

TEST(RenoTable, SlowStartThenCongestionAvoidance)
{
    auto cc = makeCongestionControl(CcAlgo::Reno, ccCfg());
    cc->onEstablished();
    EXPECT_EQ(cc->cwnd(), 10 * kMss);
    EXPECT_EQ(cc->ssthresh(), 0xffffffffu);

    // Slow start: one MSS per MSS-or-more acked.
    cc->onAcked(ackEv(1000));
    cc->onAcked(ackEv(1000));
    cc->onAcked(ackEv(1000));
    EXPECT_EQ(cc->cwnd(), 13000u);
    cc->onAcked(ackEv(2500)); // stretch ack still grows by one MSS
    EXPECT_EQ(cc->cwnd(), 14000u);

    // Loss: recovery halves to flight/2, dup-acks inflate, exit
    // deflates to ssthresh.
    cc->onEnterRecovery(/*flight=*/14000);
    EXPECT_EQ(cc->ssthresh(), 7000u);
    EXPECT_EQ(cc->cwnd(), 7000u + 3 * kMss);
    cc->onDupAck();
    EXPECT_EQ(cc->cwnd(), 7000u + 4 * kMss);
    cc->onExitRecovery();
    EXPECT_EQ(cc->cwnd(), 7000u);

    // Congestion avoidance: mss^2/cwnd per ack.
    cc->onAcked(ackEv(1000));
    EXPECT_EQ(cc->cwnd(), 7000u + 1000u * 1000u / 7000u); // 7142
    cc->onAcked(ackEv(1000));
    EXPECT_EQ(cc->cwnd(), 7142u + 1000u * 1000u / 7142u); // 7282
}

TEST(RenoTable, RecoveryFloorsAtTwoMss)
{
    auto cc = makeCongestionControl(CcAlgo::Reno, ccCfg());
    cc->onEstablished();
    cc->onEnterRecovery(/*flight=*/1500);
    EXPECT_EQ(cc->ssthresh(), 2 * kMss);
    EXPECT_EQ(cc->cwnd(), 2 * kMss + 3 * kMss);
}

TEST(RenoTable, MaxCwndClampsSlowStart)
{
    auto cc = makeCongestionControl(CcAlgo::Reno, ccCfg(/*maxCwndSegs=*/12));
    cc->onEstablished();
    for (int i = 0; i < 10; i++)
        cc->onAcked(ackEv(1000));
    EXPECT_EQ(cc->cwnd(), 12 * kMss);
}

TEST(RenoTable, RtoRecomputesSsthreshOnlyOnNewEpisode)
{
    auto cc = makeCongestionControl(CcAlgo::Reno, ccCfg());
    cc->onEstablished();
    cc->onRto(/*flight=*/10000, /*newEpisode=*/true);
    EXPECT_EQ(cc->ssthresh(), 5000u);
    EXPECT_EQ(cc->cwnd(), kMss);

    // Backoff fires within the episode see a flight the episode
    // itself collapsed; ssthresh must not follow it down.
    cc->onRto(/*flight=*/3000, /*newEpisode=*/false);
    cc->onRto(/*flight=*/1000, /*newEpisode=*/false);
    EXPECT_EQ(cc->ssthresh(), 5000u);
    EXPECT_EQ(cc->cwnd(), kMss);

    // A genuinely new episode recomputes (with the 2*MSS floor).
    cc->onRto(/*flight=*/3000, /*newEpisode=*/true);
    EXPECT_EQ(cc->ssthresh(), 2000u);
}

TEST(RenoTable, EcnEchoHalvesLikeLoss)
{
    auto cc = makeCongestionControl(CcAlgo::Reno, ccCfg());
    cc->onEstablished();
    cc->onEcnEcho();
    EXPECT_EQ(cc->ssthresh(), 5000u);
    EXPECT_EQ(cc->cwnd(), 5000u);
    EXPECT_FALSE(cc->perAckEcnEcho());
}

// -------------------------------------------------------------- cubic

TEST(CubicKat, WindowFormulaKnownAnswers)
{
    // RFC 8312: K = cbrt((W_max - cwnd) / C) with C = 0.4.
    // W_max = 100, cwnd = 70 -> K = cbrt(75) = 4.21716...
    double k = tcp::cubicK(100.0, 70.0);
    EXPECT_NEAR(k, 4.2171633, 1e-6);
    EXPECT_NEAR(k, std::cbrt(75.0), 1e-12);

    // At t = 0 the cubic passes exactly through the reduced window,
    // at t = K through W_max, and grows convexly past it.
    EXPECT_NEAR(tcp::cubicWindow(0.0, k, 100.0), 70.0, 1e-9);
    EXPECT_NEAR(tcp::cubicWindow(k, k, 100.0), 100.0, 1e-9);
    EXPECT_NEAR(tcp::cubicWindow(k + 1.0, k, 100.0), 100.4, 1e-9);

    // No deficit -> no waiting period.
    EXPECT_EQ(tcp::cubicK(50.0, 50.0), 0.0);
    EXPECT_EQ(tcp::cubicK(50.0, 60.0), 0.0);
}

TEST(CubicTable, ReductionUsesBeta)
{
    auto cc = makeCongestionControl(CcAlgo::Cubic, ccCfg());
    cc->onEstablished();
    EXPECT_EQ(cc->cwnd(), 10000u);
    cc->onEnterRecovery(/*flight=*/10000);
    EXPECT_EQ(cc->ssthresh(), 7000u); // beta = 0.7
    cc->onExitRecovery();
    EXPECT_EQ(cc->cwnd(), 7000u);
}

TEST(CubicTable, ConcaveGrowthMatchesFormula)
{
    auto cc = makeCongestionControl(CcAlgo::Cubic, ccCfg());
    cc->onEstablished();
    cc->onEnterRecovery(/*flight=*/10000); // W_max = 10 segs
    cc->onExitRecovery();                  // cwnd = 7000 = ssthresh

    // First CA ack opens the epoch; with srtt still unknown the
    // target is W(0) = cwnd, so no growth yet.
    cc->onAcked(ackEv(1000, 0, 0, false, /*now=*/1 * sim::kSecond));
    EXPECT_EQ(cc->cwnd(), 7000u);

    // Two seconds into the epoch the formula says nearly W_max.
    cc->onAcked(ackEv(1000, 0, 0, false, /*now=*/3 * sim::kSecond));
    double segs = 7.0;
    double k = tcp::cubicK(10.0, 7.0);
    double target = std::min(tcp::cubicWindow(2.0, k, 10.0), 1.5 * segs);
    uint32_t grown = static_cast<uint32_t>(
        std::floor((target - segs) / segs * 1.0 * 1000.0));
    EXPECT_EQ(cc->cwnd(), 7000u + grown);
    EXPECT_GT(grown, 300u); // ~428 bytes: distinctly cubic, not reno
}

TEST(CubicTable, FriendlyRegionFloorsGrowth)
{
    auto cc = makeCongestionControl(CcAlgo::Cubic, ccCfg());
    cc->onEstablished();
    cc->onEnterRecovery(/*flight=*/10000);
    cc->onExitRecovery();

    // With an RTT sample the TCP-friendly window applies from the
    // first ack of the epoch: W_est = W_max*beta + 3(1-b)/(1+b)*rtts.
    sim::Tick srtt = 100 * sim::kMillisecond; // 0.1 s
    cc->onAcked(ackEv(1000, 0, 0, false, /*now=*/1 * sim::kSecond, srtt));
    double segs = 7.0;
    double k = tcp::cubicK(10.0, 7.0);
    double t = 0.1; // (now - epochStart) + srtt, in seconds
    double target = std::min(tcp::cubicWindow(t, k, 10.0), 1.5 * segs);
    double wEst = 10.0 * 0.7 + (3.0 * 0.3 / 1.7) * 1.0; // rtts = 1
    target = std::max(target, wEst);
    uint32_t grown = static_cast<uint32_t>(
        std::floor((target - segs) / segs * 1.0 * 1000.0));
    EXPECT_EQ(cc->cwnd(), 7000u + grown);
    EXPECT_GT(grown, 0u);
}

TEST(CubicTable, FastConvergenceShrinksWmax)
{
    auto cc = makeCongestionControl(CcAlgo::Cubic, ccCfg());
    cc->onEstablished();
    cc->onEnterRecovery(/*flight=*/10000); // W_max = 10
    cc->onExitRecovery();                  // cwnd 7000

    // Second reduction below W_max: fast convergence remembers
    // 7 * (2 - beta) / 2 = 4.55 segs, not 7.
    cc->onEnterRecovery(/*flight=*/7000);
    EXPECT_EQ(cc->ssthresh(), 4900u);
    cc->onExitRecovery(); // cwnd 4900

    // cwnd >= remembered W_max, so the epoch re-anchors W_max at the
    // current window and the cubic is convex from t = 0: almost no
    // growth right after the epoch opens.
    cc->onAcked(ackEv(1000, 0, 0, false, /*now=*/10 * sim::kSecond));
    EXPECT_EQ(cc->cwnd(), 4900u);
    cc->onAcked(
        ackEv(1000, 0, 0, false, /*now=*/10 * sim::kSecond + sim::kSecond / 2));
    double segs = 4.9;
    double target = std::min(tcp::cubicWindow(0.5, 0.0, 4.9), 1.5 * segs);
    uint32_t grown = static_cast<uint32_t>(
        std::floor((target - segs) / segs * 1.0 * 1000.0));
    EXPECT_EQ(cc->cwnd(), 4900u + grown);
    // Without fast convergence (W_max = 7, K = cbrt(5.25)) the same
    // ack would have grown the window by hundreds of bytes.
    EXPECT_LT(grown, 50u);
}

TEST(CubicTable, RtoEpisodeGuardAndEcn)
{
    auto cc = makeCongestionControl(CcAlgo::Cubic, ccCfg());
    cc->onEstablished();
    cc->onRto(/*flight=*/10000, /*newEpisode=*/true);
    EXPECT_EQ(cc->ssthresh(), 7000u);
    EXPECT_EQ(cc->cwnd(), kMss);
    cc->onRto(/*flight=*/2000, /*newEpisode=*/false);
    EXPECT_EQ(cc->ssthresh(), 7000u);

    auto cc2 = makeCongestionControl(CcAlgo::Cubic, ccCfg());
    cc2->onEstablished();
    cc2->onEcnEcho();
    EXPECT_EQ(cc2->ssthresh(), 7000u);
    EXPECT_EQ(cc2->cwnd(), 7000u);
    EXPECT_FALSE(cc2->perAckEcnEcho());
}

// -------------------------------------------------------------- dctcp

TEST(DctcpKat, AlphaEwmaKnownAnswers)
{
    // RFC 8257: alpha = (1 - g) * alpha + g * F with g = 1/16.
    EXPECT_NEAR(tcp::dctcpAlphaStep(1.0, 0.0), 0.9375, 1e-12);
    EXPECT_NEAR(tcp::dctcpAlphaStep(0.0, 1.0), 0.0625, 1e-12);
    EXPECT_NEAR(tcp::dctcpAlphaStep(0.5, 0.5), 0.5, 1e-12); // fixed point

    double alpha = 1.0;
    for (int i = 0; i < 10; i++)
        alpha = tcp::dctcpAlphaStep(alpha, 0.0);
    EXPECT_NEAR(alpha, std::pow(0.9375, 10), 1e-12); // ~0.5246
}

TEST(DctcpTable, UnmarkedWindowsDecayAlphaBeforeReduction)
{
    auto cc = makeCongestionControl(CcAlgo::Dctcp, ccCfg());
    EXPECT_TRUE(cc->perAckEcnEcho());
    cc->onEstablished();
    EXPECT_EQ(cc->cwnd(), 10000u);

    // Open the observation window (acked = 0 keeps cwnd untouched).
    cc->onAcked(ackEv(0, /*ackSeq=*/0, /*sndNxt=*/100));
    // Ten clean windows: alpha decays from 1 by (1-g) each.
    double alpha = 1.0;
    for (uint32_t i = 1; i <= 10; i++) {
        cc->onAcked(ackEv(0, /*ackSeq=*/100 + i, /*sndNxt=*/101 + i));
        alpha = tcp::dctcpAlphaStep(alpha, 0.0);
    }
    EXPECT_EQ(cc->cwnd(), 10000u);

    // First ECE: one more window fold, then cwnd * (1 - alpha/2).
    bool reduced = cc->onAcked(
        ackEv(0, /*ackSeq=*/1000, /*sndNxt=*/2000, /*ece=*/true));
    alpha = tcp::dctcpAlphaStep(alpha, 0.0);
    EXPECT_TRUE(reduced); // the connection schedules a CWR for this
    uint32_t want = static_cast<uint32_t>(10000.0 * (1.0 - alpha / 2.0));
    EXPECT_EQ(cc->cwnd(), want);
    EXPECT_EQ(cc->ssthresh(), want);

    // A second ECE inside the same window of data must not cut again
    // (the ack falls through to plain congestion-avoidance growth).
    uint32_t cwndAfter = cc->cwnd();
    EXPECT_FALSE(cc->onAcked(
        ackEv(0, /*ackSeq=*/1500, /*sndNxt=*/2000, /*ece=*/true)));
    uint32_t caInc = std::max<uint32_t>(1, kMss * kMss / cwndAfter);
    EXPECT_EQ(cc->cwnd(), cwndAfter + caInc);
    EXPECT_EQ(cc->ssthresh(), want);

    // Once the ack passes the reduction window it cuts once more.
    EXPECT_TRUE(cc->onAcked(
        ackEv(0, /*ackSeq=*/2000, /*sndNxt=*/3000, /*ece=*/true)));
    EXPECT_LT(cc->cwnd(), cwndAfter);
}

TEST(DctcpTable, MarkFractionWeighsTheCut)
{
    auto cc = makeCongestionControl(CcAlgo::Dctcp, ccCfg());
    cc->onEstablished();
    cc->onAcked(ackEv(0, /*ackSeq=*/0, /*sndNxt=*/1000)); // open window

    // 600 clean + 400 marked bytes in the window: F = 0.4.
    cc->onAcked(ackEv(600, /*ackSeq=*/600, /*sndNxt=*/1000));
    EXPECT_EQ(cc->cwnd(), 10600u); // slow-start growth on the clean ack
    bool reduced = cc->onAcked(
        ackEv(400, /*ackSeq=*/1000, /*sndNxt=*/2000, /*ece=*/true));
    EXPECT_TRUE(reduced);
    double alpha = tcp::dctcpAlphaStep(1.0, 0.4);
    uint32_t want = static_cast<uint32_t>(10600.0 * (1.0 - alpha / 2.0));
    EXPECT_EQ(cc->cwnd(), want);
    EXPECT_EQ(cc->ssthresh(), want);
}

TEST(DctcpTable, LossHandlingIsRenoWithEpisodeGuard)
{
    auto cc = makeCongestionControl(CcAlgo::Dctcp, ccCfg());
    cc->onEstablished();
    cc->onEnterRecovery(/*flight=*/10000);
    EXPECT_EQ(cc->ssthresh(), 5000u);
    cc->onRto(/*flight=*/8000, /*newEpisode=*/true);
    EXPECT_EQ(cc->ssthresh(), 4000u);
    EXPECT_EQ(cc->cwnd(), kMss);
    cc->onRto(/*flight=*/1000, /*newEpisode=*/false);
    EXPECT_EQ(cc->ssthresh(), 4000u);
}

// ------------------------------- connection-level RTO episode guard

/**
 * Regression for the RTO backoff bug: a blackholed flight fires its
 * first RTO (ssthresh = flight/2), then a brief heal lets one
 * retransmission through — a partial ack inside the episode, which
 * collapses the flight. The next fire, still inside the episode, must
 * keep ssthresh; the buggy path recomputed it from the collapsed
 * flight and spiraled toward the floor.
 */
class RtoEpisodeConn : public ::testing::TestWithParam<CcAlgo>
{
};

TEST_P(RtoEpisodeConn, BackoffKeepsSsthreshAcrossPartialAck)
{
    net::Link::Config lcfg;
    lcfg.propDelay = 500 * sim::kMicrosecond; // fat RTT: no ack races
    TwoHostWorld w(lcfg);

    TcpConnection::Config ccfg;
    ccfg.cc = GetParam();
    constexpr uint64_t kBytes = 100 << 10;
    struct
    {
        uint64_t seed;
        uint64_t received = 0;
        bool corrupt = false;
        void
        attach(tcp::StreamSocket &s)
        {
            s.setOnReadable([this, &s] {
                while (s.readable()) {
                    tcp::RxSegment seg = s.pop();
                    if (!checkDeterministic(seg.data, seed, seg.streamOff))
                        corrupt = true;
                    received += seg.data.size();
                }
            });
        }
    } rx{9};
    w.stackB->listen(80, ccfg, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, ccfg);

    net::Impairments blackhole;
    blackhole.lossRate = 1.0;
    c.setOnConnected([&] {
        // Blackhole the data direction before the first payload byte:
        // the whole initial window ends up in the hole.
        w.link.setImpairments(0, blackhole);
        c.core().post([&] {
            Bytes chunk(kBytes);
            fillDeterministic(chunk, 9, 0);
            c.send(chunk);
        });
    });

    auto runUntil = [&](auto pred, sim::Tick cap) {
        while (!pred() && w.sim.now() < cap)
            w.sim.runUntil(w.sim.now() + 20 * sim::kMicrosecond);
    };

    runUntil([&] { return c.stats().rtoFires >= 1; }, 5 * sim::kSecond);
    ASSERT_GE(c.stats().rtoFires, 1u);
    uint32_t ssthresh1 = c.ssthreshBytes();
    EXPECT_EQ(c.cwndBytes(), c.config().mss);
    EXPECT_LT(ssthresh1, 0xffffffffu);
    if (GetParam() == CcAlgo::Reno || GetParam() == CcAlgo::Dctcp) {
        EXPECT_EQ(ssthresh1, 5 * c.config().mss); // flight/2 = 10 MSS / 2
    }

    // Heal: the next backoff retransmission gets through and is
    // partially acked (the ack cannot cover the whole hole).
    uint32_t una = c.sndUna();
    w.link.setImpairments(0, net::Impairments{});
    runUntil([&] { return c.sndUna() != una; }, 20 * sim::kSecond);
    ASSERT_NE(c.sndUna(), una);

    // Blackhole again before the episode can fully recover.
    w.link.setImpairments(0, blackhole);
    uint64_t fires = c.stats().rtoFires;
    runUntil([&] { return c.stats().rtoFires > fires; }, 60 * sim::kSecond);
    ASSERT_GT(c.stats().rtoFires, fires);
    EXPECT_EQ(c.ssthreshBytes(), ssthresh1) << "ssthresh was recomputed on "
                                               "a backoff fire inside one "
                                               "loss episode";

    // Heal for good: the transfer still completes, uncorrupted.
    w.link.setImpairments(0, net::Impairments{});
    runUntil([&] { return rx.received >= kBytes; }, 300 * sim::kSecond);
    EXPECT_EQ(rx.received, kBytes);
    EXPECT_FALSE(rx.corrupt);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, RtoEpisodeConn,
                         ::testing::Values(CcAlgo::Reno, CcAlgo::Cubic,
                                           CcAlgo::Dctcp),
                         [](const ::testing::TestParamInfo<CcAlgo> &i) {
                             return std::string(tcp::ccAlgoName(i.param));
                         });

} // namespace
} // namespace anic
