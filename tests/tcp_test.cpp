/**
 * @file
 * TCP substrate tests: handshake, bulk transfer, loss/reorder/
 * duplication recovery, flow control, congestion control, teardown,
 * and metadata-preserving reassembly.
 */

#include <gtest/gtest.h>

#include "support/test_net.hh"
#include "tcp/seq.hh"

namespace anic {
namespace {

using testing::TwoHostWorld;
using tcp::TcpConnection;

// ------------------------------------------------------------- seq math

TEST(SeqMath, WrapAroundComparisons)
{
    EXPECT_TRUE(tcp::seqLt(0xfffffff0u, 0x10u));
    EXPECT_TRUE(tcp::seqGt(0x10u, 0xfffffff0u));
    EXPECT_TRUE(tcp::seqLeq(5u, 5u));
    EXPECT_TRUE(tcp::seqGeq(5u, 5u));
    EXPECT_EQ(tcp::seqDiff(0x10u, 0xfffffff0u), 0x20u);
    EXPECT_EQ(tcp::seqMax(0xfffffff0u, 0x10u), 0x10u);
    EXPECT_EQ(tcp::seqMin(0xfffffff0u, 0x10u), 0xfffffff0u);
}

// ------------------------------------------------------ test application

/** Sends a deterministic byte stream and verifies it at the sink. */
struct BulkReceiver
{
    uint64_t seed;
    uint64_t received = 0;
    bool corrupt = false;
    bool peerClosed = false;

    void
    attach(tcp::StreamSocket &s)
    {
        s.setOnReadable([this, &s] {
            while (s.readable()) {
                tcp::RxSegment seg = s.pop();
                if (!checkDeterministic(seg.data, seed, seg.streamOff))
                    corrupt = true;
                received += seg.data.size();
            }
        });
        s.setOnPeerClosed([this] { peerClosed = true; });
    }
};

/** Pushes totalBytes of deterministic content through a socket. */
struct BulkSender
{
    uint64_t seed;
    uint64_t total;
    uint64_t sent = 0;
    bool closeWhenDone = false;

    void
    attach(tcp::StreamSocket &s)
    {
        auto pushMore = [this, &s] {
            while (sent < total && s.sendSpace() > 0) {
                size_t n = std::min<uint64_t>(s.sendSpace(),
                                              std::min<uint64_t>(
                                                  total - sent, 65536));
                Bytes chunk(n);
                fillDeterministic(chunk, seed, sent);
                size_t accepted = s.send(chunk);
                sent += accepted;
                if (accepted < n)
                    break;
            }
            if (sent >= total && closeWhenDone)
                s.close();
        };
        s.setOnWritable(pushMore);
    }

    void
    start(tcp::StreamSocket &s)
    {
        s.core().post([this, &s] {
            // Kick the first write from a core work item.
            while (sent < total && s.sendSpace() > 0) {
                size_t n = std::min<uint64_t>(
                    s.sendSpace(), std::min<uint64_t>(total - sent, 65536));
                Bytes chunk(n);
                fillDeterministic(chunk, seed, sent);
                size_t accepted = s.send(chunk);
                sent += accepted;
                if (accepted == 0)
                    break;
            }
            if (sent >= total && closeWhenDone)
                s.close();
        });
    }
};

/** Runs a one-direction bulk transfer over the given link config. */
struct BulkResult
{
    uint64_t received;
    bool corrupt;
    tcp::TcpStats clientStats;
    bool peerClosed;
};

BulkResult
runBulk(net::Link::Config linkCfg, uint64_t bytes, sim::Tick horizon,
        bool closeWhenDone = true, TcpConnection::Config ccfg = {})
{
    TwoHostWorld w(linkCfg);
    BulkReceiver rx{/*seed=*/77};
    BulkSender tx{/*seed=*/77, bytes};
    tx.closeWhenDone = closeWhenDone;

    w.stackB->listen(8080, ccfg, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &client =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 8080, ccfg);
    tx.attach(client);
    client.setOnConnected([&] { tx.start(client); });

    w.sim.runUntil(horizon);
    return BulkResult{rx.received, rx.corrupt, client.stats(), rx.peerClosed};
}

// ---------------------------------------------------------------- tests

TEST(TcpHandshake, EstablishesAndAcceptsData)
{
    TwoHostWorld w;
    bool serverGotConn = false;
    w.stackB->listen(80, {}, [&](TcpConnection &) { serverGotConn = true; });

    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    bool connected = false;
    c.setOnConnected([&] { connected = true; });

    w.sim.runUntil(10 * sim::kMillisecond);
    EXPECT_TRUE(connected);
    EXPECT_TRUE(serverGotConn);
    EXPECT_EQ(c.state(), TcpConnection::State::Established);
    EXPECT_EQ(w.stackB->connectionCount(), 1u);
}

TEST(TcpHandshake, SynLossRecoversByRetransmission)
{
    net::Link::Config cfg;
    cfg.dir[0].lossRate = 1.0; // drop the first SYN...
    TwoHostWorld w(cfg);
    w.stackB->listen(80, {}, [](TcpConnection &) {});
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    bool connected = false;
    c.setOnConnected([&] { connected = true; });

    w.sim.runUntil(5 * sim::kMillisecond);
    EXPECT_FALSE(connected);
    w.link.setImpairments(0, {}); // ...then heal the link
    w.sim.runUntil(200 * sim::kMillisecond);
    EXPECT_TRUE(connected);
}

TEST(TcpBulk, CleanLinkDeliversExactly)
{
    BulkResult r = runBulk({}, 4 << 20, 2 * sim::kSecond);
    EXPECT_EQ(r.received, 4u << 20);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.clientStats.retransmits, 0u);
    EXPECT_TRUE(r.peerClosed);
}

TEST(TcpBulk, SmallWritesAreCoalescedIntoStream)
{
    TwoHostWorld w;
    BulkReceiver rx{5};
    w.stackB->listen(80, {}, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    c.setOnConnected([&] {
        c.core().post([&] {
            uint64_t off = 0;
            for (int i = 0; i < 100; i++) {
                Bytes b(37);
                fillDeterministic(b, 5, off);
                ASSERT_EQ(c.send(b), b.size());
                off += b.size();
            }
        });
    });
    w.sim.runUntil(100 * sim::kMillisecond);
    EXPECT_EQ(rx.received, 3700u);
    EXPECT_FALSE(rx.corrupt);
}

TEST(TcpBulk, LossyLinkRecovers)
{
    net::Link::Config cfg;
    cfg.dir[0].lossRate = 0.02;
    cfg.seed = 42;
    BulkResult r = runBulk(cfg, 2 << 20, 5 * sim::kSecond);
    EXPECT_EQ(r.received, 2u << 20);
    EXPECT_FALSE(r.corrupt);
    EXPECT_GT(r.clientStats.retransmits, 0u);
}

TEST(TcpBulk, HeavyLossStillCompletes)
{
    net::Link::Config cfg;
    cfg.dir[0].lossRate = 0.10;
    cfg.dir[1].lossRate = 0.05; // acks too
    cfg.seed = 43;
    BulkResult r = runBulk(cfg, 256 << 10, 20 * sim::kSecond);
    EXPECT_EQ(r.received, 256u << 10);
    EXPECT_FALSE(r.corrupt);
}

TEST(TcpBulk, ReorderingLinkRecovers)
{
    net::Link::Config cfg;
    cfg.dir[0].reorderRate = 0.05;
    cfg.seed = 44;
    BulkResult r = runBulk(cfg, 2 << 20, 5 * sim::kSecond);
    EXPECT_EQ(r.received, 2u << 20);
    EXPECT_FALSE(r.corrupt);
}

TEST(TcpBulk, DuplicationIsHarmless)
{
    net::Link::Config cfg;
    cfg.dir[0].duplicateRate = 0.05;
    cfg.dir[1].duplicateRate = 0.05;
    cfg.seed = 45;
    BulkResult r = runBulk(cfg, 1 << 20, 5 * sim::kSecond);
    EXPECT_EQ(r.received, 1u << 20);
    EXPECT_FALSE(r.corrupt);
}

TEST(TcpBulk, CombinedImpairments)
{
    net::Link::Config cfg;
    cfg.dir[0].lossRate = 0.02;
    cfg.dir[0].reorderRate = 0.02;
    cfg.dir[0].duplicateRate = 0.01;
    cfg.seed = 46;
    BulkResult r = runBulk(cfg, 1 << 20, 10 * sim::kSecond);
    EXPECT_EQ(r.received, 1u << 20);
    EXPECT_FALSE(r.corrupt);
}

TEST(TcpBulk, ThroughputIsCpuBoundNotTrivial)
{
    // One core at 2 GHz should push multiple Gbps but cannot exceed
    // the line; sanity-check the cycle accounting plumbing.
    TwoHostWorld w;
    BulkReceiver rx{9};
    BulkSender tx{9, 1ull << 30};
    w.stackB->listen(80, {}, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    tx.attach(c);
    c.setOnConnected([&] { tx.start(c); });
    w.sim.runUntil(50 * sim::kMillisecond);

    double gbps = static_cast<double>(rx.received) * 8 /
                  sim::ticksToSeconds(w.sim.now()) / 1e9;
    EXPECT_GT(gbps, 2.0);
    EXPECT_LT(gbps, 100.0);
    EXPECT_GT(w.coresA[0]->totalBusyTicks(), 0u);
    EXPECT_GT(w.coresB[0]->totalBusyTicks(), 0u);
}

TEST(TcpFlowControl, SlowReaderThrottlesSender)
{
    TwoHostWorld w;
    TcpConnection::Config ccfg;
    ccfg.rcvBufSize = 64 << 10;

    tcp::StreamSocket *serverSock = nullptr;
    w.stackB->listen(80, ccfg,
                     [&](TcpConnection &c) { serverSock = &c; });

    BulkSender tx{3, 4 << 20};
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, ccfg);
    tx.attach(c);
    c.setOnConnected([&] { tx.start(c); });

    // Reader never pops: sender must stall at ~the receive window.
    w.sim.runUntil(200 * sim::kMillisecond);
    ASSERT_NE(serverSock, nullptr);
    TcpConnection *sc = static_cast<TcpConnection *>(serverSock);
    // Window advertisement lags in-flight data by up to an RTT, so a
    // small overrun past the nominal buffer is expected (real stacks
    // absorb it in rcvbuf slack too).
    EXPECT_LE(sc->rxQueuedBytes(), ccfg.rcvBufSize + 4 * 1460);
    EXPECT_LT(tx.sent, 4u << 20);

    // Now drain; transfer must resume and complete.
    uint64_t drained = 0;
    bool corrupt = false;
    serverSock->setOnReadable([&] {
        while (serverSock->readable()) {
            tcp::RxSegment seg = serverSock->pop();
            if (!checkDeterministic(seg.data, 3, seg.streamOff))
                corrupt = true;
            drained += seg.data.size();
        }
    });
    serverSock->core().post([&] {
        while (serverSock->readable()) {
            tcp::RxSegment seg = serverSock->pop();
            if (!checkDeterministic(seg.data, 3, seg.streamOff))
                corrupt = true;
            drained += seg.data.size();
        }
    });
    w.sim.runUntil(5 * sim::kSecond);
    EXPECT_EQ(drained, 4u << 20);
    EXPECT_FALSE(corrupt);
}

TEST(TcpTeardown, BothSidesClose)
{
    TwoHostWorld w;
    TcpConnection *server = nullptr;
    w.stackB->listen(80, {}, [&](TcpConnection &c) {
        server = &c;
        c.setOnPeerClosed([&c] { c.close(); });
    });
    TcpConnection &client =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    bool clientSawClose = false;
    client.setOnPeerClosed([&] { clientSawClose = true; });
    client.setOnConnected([&] {
        client.core().post([&] {
            Bytes b(1000, 0xab);
            client.send(b);
            client.close();
        });
    });

    w.sim.runUntil(2 * sim::kSecond);
    ASSERT_NE(server, nullptr);
    EXPECT_TRUE(clientSawClose);
    EXPECT_EQ(client.state(), TcpConnection::State::Closed);
    EXPECT_EQ(server->state(), TcpConnection::State::Closed);
}

TEST(TcpCongestion, CwndGrowsFromInitial)
{
    TwoHostWorld w;
    BulkReceiver rx{8};
    BulkSender tx{8, 64 << 20};
    w.stackB->listen(80, {}, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    tx.attach(c);
    c.setOnConnected([&] { tx.start(c); });
    w.sim.runUntil(50 * sim::kMillisecond);
    EXPECT_GT(c.cwndBytes(), 10u * 1460u);
}

TEST(TcpCongestion, LossShrinksCwnd)
{
    net::Link::Config cfg;
    cfg.dir[0].lossRate = 0.05;
    cfg.seed = 77;
    TwoHostWorld w(cfg);
    BulkReceiver rx{8};
    BulkSender tx{8, 64 << 20};
    w.stackB->listen(80, {}, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    tx.attach(c);
    c.setOnConnected([&] { tx.start(c); });
    w.sim.runUntil(300 * sim::kMillisecond);
    EXPECT_GT(c.stats().fastRetransmits + c.stats().rtoFires, 0u);
    EXPECT_LT(c.cwndBytes(), c.config().maxCwndSegs * c.config().mss);
}

TEST(TcpBackpressure, TinyTxRingStillDeliversEverything)
{
    TwoHostWorld w;
    // Rebuild device A with a 8-descriptor ring.
    w.devA = std::make_unique<testing::SimpleDevice>(
        w.sim, w.link, 0, TwoHostWorld::kIpA, 100.0, /*txRing=*/8);
    auto cores = std::vector<host::Core *>{w.coresA[0].get()};
    w.stackA = std::make_unique<tcp::TcpStack>(w.sim, cores, 1);
    w.stackA->addDevice(w.devA.get());
    w.devA->attachStack(w.stackA.get());

    BulkReceiver rx{6};
    BulkSender tx{6, 8 << 20};
    w.stackB->listen(80, {}, [&](TcpConnection &c) { rx.attach(c); });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    tx.attach(c);
    c.setOnConnected([&] { tx.start(c); });
    w.sim.runUntil(3 * sim::kSecond);
    EXPECT_EQ(rx.received, 8u << 20);
    EXPECT_FALSE(rx.corrupt);
}

TEST(TcpBackpressure, DestroyWhileTxBlockedIsSafe)
{
    // Regression for the blocked-writer queue: a connection waiting
    // for tx-ring space is linked on TcpStack::blocked_; destroying it
    // must unlink it, or the next tx-space wakeup walks a dangling
    // pointer. Two bulk streams share a tiny, slow ring so both are
    // persistently blocked; one is destroyed mid-flight and the other
    // must still finish.
    TwoHostWorld w({}, /*coresPerHost=*/1, /*gbps=*/0.1);
    w.devA = std::make_unique<testing::SimpleDevice>(
        w.sim, w.link, 0, TwoHostWorld::kIpA, 0.1, /*txRing=*/2);
    auto cores = std::vector<host::Core *>{w.coresA[0].get()};
    w.stackA = std::make_unique<tcp::TcpStack>(w.sim, cores, 1);
    w.stackA->addDevice(w.devA.get());
    w.devA->attachStack(w.stackA.get());

    BulkReceiver rx1{31};
    BulkReceiver rx2{32};
    BulkSender tx1{31, 512 << 10};
    BulkSender tx2{32, 64 << 10};
    int accepts = 0;
    w.stackB->listen(80, {}, [&](TcpConnection &c) {
        (accepts++ == 0 ? rx1 : rx2).attach(c);
    });
    TcpConnection &c1 =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    tx1.attach(c1);
    c1.setOnConnected([&] { tx1.start(c1); });
    TcpConnection &c2 =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    tx2.attach(c2);
    c2.setOnConnected([&] { tx2.start(c2); });

    // Mid-transfer both writers are stalled behind the 2-slot ring.
    w.sim.runUntil(20 * sim::kMillisecond);
    EXPECT_GT(rx1.received, 0u);
    EXPECT_LT(rx1.received, tx1.total);
    w.stackA->destroy(c1); // unlinks from the blocked queue

    w.sim.runUntil(20 * sim::kSecond);
    EXPECT_EQ(rx2.received, tx2.total);
    EXPECT_FALSE(rx2.corrupt);
    EXPECT_EQ(w.stackA->connectionCount(), 1u);
}

TEST(TcpBackpressure, TinyRingsBothSidesEchoCompletes)
{
    // Tiny rings on BOTH hosts: data and the acks flowing back both
    // bounce off full rings, so the receiver's ack path registers on
    // the blocked queue over and over (the dedupe case — without the
    // once-per-stall guard the queue grows by one entry per bounced
    // ack and wakeups go quadratic).
    TwoHostWorld w;
    for (int side = 0; side < 2; side++) {
        auto &dev = side == 0 ? w.devA : w.devB;
        auto &stack = side == 0 ? w.stackA : w.stackB;
        auto &coresV = side == 0 ? w.coresA : w.coresB;
        dev = std::make_unique<testing::SimpleDevice>(
            w.sim, w.link, side,
            side == 0 ? TwoHostWorld::kIpA : TwoHostWorld::kIpB, 100.0,
            /*txRing=*/4);
        auto cores = std::vector<host::Core *>{coresV[0].get()};
        stack = std::make_unique<tcp::TcpStack>(w.sim, cores, side + 1);
        stack->addDevice(dev.get());
        dev->attachStack(stack.get());
    }

    uint64_t echoed = 0;
    bool corrupt = false;
    w.stackB->listen(80, {}, [&](TcpConnection &c) {
        c.setOnReadable([&c] {
            while (c.readable()) {
                tcp::RxSegment seg = c.pop();
                c.send(seg.data); // echo through the tiny ring
            }
        });
    });
    TcpConnection &client =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    client.setOnReadable([&] {
        while (client.readable()) {
            tcp::RxSegment seg = client.pop();
            if (!checkDeterministic(seg.data, 33, seg.streamOff))
                corrupt = true;
            echoed += seg.data.size();
        }
    });
    BulkSender tx{33, 2 << 20};
    tx.attach(client);
    client.setOnConnected([&] { tx.start(client); });

    w.sim.runUntil(10 * sim::kSecond);
    EXPECT_EQ(echoed, 2u << 20);
    EXPECT_FALSE(corrupt);
}

TEST(TcpBidirectional, EchoWorksBothWays)
{
    TwoHostWorld w;
    uint64_t echoed = 0;
    bool corrupt = false;

    w.stackB->listen(80, {}, [&](TcpConnection &c) {
        c.setOnReadable([&c] {
            while (c.readable()) {
                tcp::RxSegment seg = c.pop();
                c.send(seg.data); // echo
            }
        });
    });

    TcpConnection &client =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    client.setOnReadable([&] {
        while (client.readable()) {
            tcp::RxSegment seg = client.pop();
            if (!checkDeterministic(seg.data, 21, seg.streamOff))
                corrupt = true;
            echoed += seg.data.size();
        }
    });
    client.setOnConnected([&] {
        client.core().post([&] {
            Bytes b(200000);
            fillDeterministic(b, 21, 0);
            size_t sent = client.send(b);
            ASSERT_EQ(sent, b.size());
        });
    });

    w.sim.runUntil(1 * sim::kSecond);
    EXPECT_EQ(echoed, 200000u);
    EXPECT_FALSE(corrupt);
}

TEST(TcpStack, ManyConcurrentConnections)
{
    TwoHostWorld w({}, /*coresPerHost=*/4);
    const int kConns = 50;
    const uint64_t kBytes = 100000;

    std::vector<std::unique_ptr<BulkReceiver>> rxs;
    std::vector<std::unique_ptr<BulkSender>> txs;
    w.stackB->listen(80, {}, [&](TcpConnection &c) {
        auto r = std::make_unique<BulkReceiver>();
        r->seed = 1000 + w.stackB->connectionCount();
        // Seed must match sender; use port to correlate instead.
        r->seed = c.localFlow().dstPort;
        r->attach(c);
        rxs.push_back(std::move(r));
    });

    for (int i = 0; i < kConns; i++) {
        TcpConnection &c = w.stackA->connect(TwoHostWorld::kIpA,
                                             TwoHostWorld::kIpB, 80, {});
        auto t = std::make_unique<BulkSender>();
        t->seed = c.localFlow().srcPort;
        t->total = kBytes;
        t->attach(c);
        TcpConnection *cp = &c;
        BulkSender *tp = t.get();
        c.setOnConnected([tp, cp] { tp->start(*cp); });
        txs.push_back(std::move(t));
    }

    w.sim.runUntil(2 * sim::kSecond);
    ASSERT_EQ(rxs.size(), static_cast<size_t>(kConns));
    uint64_t total = 0;
    for (auto &r : rxs) {
        EXPECT_FALSE(r->corrupt);
        total += r->received;
    }
    EXPECT_EQ(total, kConns * kBytes);
}

TEST(TcpStack, UnknownPacketsAreDropped)
{
    TwoHostWorld w;
    // Connect to a port nobody listens on: SYN is dropped, no crash.
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 9999, {});
    w.sim.runUntil(50 * sim::kMillisecond);
    EXPECT_EQ(c.state(), TcpConnection::State::SynSent);
    EXPECT_GT(w.stackB->droppedInputs(), 0u);
}

TEST(TcpMeta, SegmentsPreserveStreamOffsets)
{
    TwoHostWorld w;
    std::vector<tcp::RxSegment> segs;
    w.stackB->listen(80, {}, [&](TcpConnection &c) {
        c.setOnReadable([&segs, &c] {
            while (c.readable())
                segs.push_back(c.pop());
        });
    });
    TcpConnection &c =
        w.stackA->connect(TwoHostWorld::kIpA, TwoHostWorld::kIpB, 80, {});
    c.setOnConnected([&] {
        c.core().post([&] {
            Bytes b(10000);
            fillDeterministic(b, 1, 0);
            c.send(b);
        });
    });
    w.sim.runUntil(100 * sim::kMillisecond);

    uint64_t expect = 0;
    for (const auto &s : segs) {
        EXPECT_EQ(s.streamOff, expect);
        expect += s.data.size();
    }
    EXPECT_EQ(expect, 10000u);
}

} // namespace
} // namespace anic
