/**
 * @file
 * Unit tests for util: byte codecs, hex, deterministic fill, RNG,
 * slab arena handles, and the flat hash map (including a differential
 * check against std::unordered_map and a regression for sequential-id
 * clustering).
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/bytes.hh"
#include "util/flat_map.hh"
#include "util/panic.hh"
#include "util/rand.hh"
#include "util/slab.hh"

namespace anic {
namespace {

TEST(Bytes, BigEndianRoundTrip)
{
    uint8_t buf[8];
    putBe16(buf, 0xbeef);
    EXPECT_EQ(getBe16(buf), 0xbeef);
    putBe32(buf, 0xdeadbeefu);
    EXPECT_EQ(getBe32(buf), 0xdeadbeefu);
    putBe64(buf, 0x0123456789abcdefull);
    EXPECT_EQ(getBe64(buf), 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0xef);
}

TEST(Bytes, LittleEndianRoundTrip)
{
    uint8_t buf[4];
    putLe32(buf, 0xdeadbeefu);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[3], 0xde);
    EXPECT_EQ(getLe32(buf), 0xdeadbeefu);
    putLe16(buf, 0x1234);
    EXPECT_EQ(getLe16(buf), 0x1234);
}

TEST(Bytes, VariableWidthBigEndian)
{
    uint8_t buf[3];
    putBe(buf, 0x123456, 3);
    EXPECT_EQ(buf[0], 0x12);
    EXPECT_EQ(buf[1], 0x34);
    EXPECT_EQ(buf[2], 0x56);
    EXPECT_EQ(getBe(buf, 3), 0x123456u);
}

TEST(Bytes, HexRoundTrip)
{
    Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
    EXPECT_EQ(toHex(data), "deadbeef0001");
    EXPECT_EQ(fromHex("deadbeef0001"), data);
    EXPECT_EQ(fromHex("DEADBEEF0001"), data);
    EXPECT_TRUE(fromHex("").empty());
}

TEST(Bytes, DeterministicFillIsOffsetStable)
{
    // A sub-range generated at its own offset must match the same
    // range within a larger fill; this property underlies zero-copy
    // placement verification.
    Bytes whole(4096);
    fillDeterministic(whole, 42, 0);
    Bytes part(100);
    fillDeterministic(part, 42, 1000);
    EXPECT_TRUE(std::equal(part.begin(), part.end(), whole.begin() + 1000));
    EXPECT_TRUE(checkDeterministic(part, 42, 1000));
    EXPECT_FALSE(checkDeterministic(part, 42, 1001));
    EXPECT_FALSE(checkDeterministic(part, 43, 1000));
}

TEST(Bytes, DeterministicFillDiffersAcrossSeeds)
{
    Bytes a(256);
    Bytes b(256);
    fillDeterministic(a, 1, 0);
    fillDeterministic(b, 2, 0);
    EXPECT_NE(a, b);
}

TEST(Rng, DeterministicAcrossReseeds)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
    a.reseed(8);
    b.reseed(7);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(123);
    for (int i = 0; i < 10000; i++) {
        uint64_t v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng r(11);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        hits += r.chance(0.03) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.03, 0.005);
}

TEST(Strprintf, Formats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strprintf("%s", ""), "");
}

// ------------------------------------------------------------ slab arena

/** Counts constructions/destructions to observe slot lifecycle. */
struct Tracked
{
    static int liveInstances;
    int value;

    explicit Tracked(int v) : value(v) { liveInstances++; }
    ~Tracked() { liveInstances--; }
};

int Tracked::liveInstances = 0;

TEST(SlabArena, AllocGetFreeLifecycle)
{
    Tracked::liveInstances = 0;
    {
        util::SlabArena<Tracked> arena;
        util::SlabHandle a = arena.alloc(1);
        util::SlabHandle b = arena.alloc(2);
        EXPECT_EQ(arena.liveCount(), 2u);
        EXPECT_EQ(Tracked::liveInstances, 2);
        ASSERT_NE(arena.get(a), nullptr);
        EXPECT_EQ(arena.get(a)->value, 1);
        EXPECT_EQ(arena.at(b).value, 2);

        arena.free(a);
        EXPECT_EQ(arena.liveCount(), 1u);
        EXPECT_EQ(Tracked::liveInstances, 1);
        EXPECT_EQ(arena.get(a), nullptr); // stale handle resolves null
        arena.free(b);
    }
    EXPECT_EQ(Tracked::liveInstances, 0);
}

TEST(SlabArena, GenerationGuardsRecycledSlot)
{
    util::SlabArena<Tracked> arena;
    util::SlabHandle a = arena.alloc(1);
    arena.free(a);
    // The freelist hands the same slot back; the stale handle must not
    // alias the new occupant.
    util::SlabHandle b = arena.alloc(2);
    EXPECT_EQ(b.index, a.index);
    EXPECT_NE(b.gen, a.gen);
    EXPECT_EQ(arena.get(a), nullptr);
    ASSERT_NE(arena.get(b), nullptr);
    EXPECT_EQ(arena.get(b)->value, 2);
    arena.free(b);
}

TEST(SlabArena, AddressesStableAcrossGrowth)
{
    util::SlabArena<Tracked> arena;
    std::vector<util::SlabHandle> handles;
    std::vector<Tracked *> addrs;
    // Span several slabs so growth happens mid-test.
    const int n = 3 * util::SlabArena<Tracked>::kSlabObjects + 7;
    for (int i = 0; i < n; i++) {
        handles.push_back(arena.alloc(i));
        addrs.push_back(arena.get(handles.back()));
    }
    for (int i = 0; i < n; i++) {
        EXPECT_EQ(arena.get(handles[i]), addrs[i]);
        EXPECT_EQ(addrs[i]->value, i);
    }
    EXPECT_GT(arena.heapBytes(), n * sizeof(Tracked));
    for (auto h : handles)
        arena.free(h);
    EXPECT_EQ(arena.liveCount(), 0u);
}

TEST(SlabArena, DestructorDestroysStragglers)
{
    Tracked::liveInstances = 0;
    {
        util::SlabArena<Tracked> arena;
        arena.alloc(1);
        arena.alloc(2);
        arena.alloc(3);
        // Owner "forgets" to free: the arena destructor must run the
        // destructors (worlds tear down whole stacks at once).
    }
    EXPECT_EQ(Tracked::liveInstances, 0);
}

TEST(SlabArena, ForEachVisitsOnlyLive)
{
    util::SlabArena<Tracked> arena;
    util::SlabHandle a = arena.alloc(1);
    util::SlabHandle b = arena.alloc(2);
    util::SlabHandle c = arena.alloc(3);
    arena.free(b);
    int sum = 0;
    arena.forEach([&](Tracked &t) { sum += t.value; });
    EXPECT_EQ(sum, 4);
    arena.free(a);
    arena.free(c);
}

// -------------------------------------------------------------- flat map

TEST(FlatMap, BasicInsertFindErase)
{
    util::FlatMap<uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_FALSE(m.erase(7));

    m.emplace(7, 70);
    m.emplace(8, 80);
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
    EXPECT_TRUE(m.contains(8));
    EXPECT_FALSE(m.contains(9));

    m.put(7, 71); // overwrite
    EXPECT_EQ(*m.find(7), 71);
    m.put(9, 90); // insert through put
    EXPECT_EQ(m.size(), 3u);

    EXPECT_TRUE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.size(), 2u);

    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(8), nullptr);
}

TEST(FlatMap, ForEachVisitsEveryEntry)
{
    util::FlatMap<uint64_t, uint64_t> m;
    uint64_t want = 0;
    for (uint64_t k = 0; k < 100; k++) {
        m.emplace(k, k * 3);
        want += k * 3;
    }
    uint64_t sum = 0;
    size_t count = 0;
    m.forEach([&](const uint64_t &k, uint64_t &v) {
        EXPECT_EQ(v, k * 3);
        sum += v;
        count++;
    });
    EXPECT_EQ(count, 100u);
    EXPECT_EQ(sum, want);
}

TEST(FlatMap, MoveTransfersOwnership)
{
    util::FlatMap<uint64_t, int> a;
    a.emplace(1, 10);
    a.emplace(2, 20);
    util::FlatMap<uint64_t, int> b(std::move(a));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(*b.find(1), 10);

    util::FlatMap<uint64_t, int> c;
    c.emplace(9, 99);
    c = std::move(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.find(9), nullptr);
    EXPECT_EQ(*c.find(2), 20);
}

/** Degenerate hash: collapses keys into few home slots to exercise
 *  robin-hood displacement and backward-shift deletion directly. */
struct CoarseHash
{
    size_t operator()(const uint64_t &k) const { return k / 16; }
};

TEST(FlatMap, CollidingKeysProbeAndBackwardShift)
{
    util::FlatMap<uint64_t, uint64_t, CoarseHash> m;
    // 48 keys over 3 home slots: long probe chains, heavy displacement.
    for (uint64_t k = 0; k < 48; k++)
        m.emplace(k, k + 1000);
    for (uint64_t k = 0; k < 48; k++) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), k + 1000);
    }
    // Erase from the middle of chains; survivors must stay findable
    // (backward shift repairs the chain instead of tombstoning).
    for (uint64_t k = 0; k < 48; k += 3)
        EXPECT_TRUE(m.erase(k));
    for (uint64_t k = 0; k < 48; k++) {
        if (k % 3 == 0) {
            EXPECT_EQ(m.find(k), nullptr) << k;
        } else {
            ASSERT_NE(m.find(k), nullptr) << k;
            EXPECT_EQ(*m.find(k), k + 1000);
        }
    }
}

TEST(FlatMap, ReserveAvoidsGrowthAndKeepsEntries)
{
    util::FlatMap<uint64_t, uint64_t> m;
    m.reserve(1000);
    size_t bytes = m.heapBytes();
    for (uint64_t k = 0; k < 1000; k++)
        m.emplace(k, k);
    EXPECT_EQ(m.heapBytes(), bytes); // no rehash happened
    EXPECT_EQ(m.size(), 1000u);
    EXPECT_EQ(*m.find(999), 999u);
}

TEST(FlatMap, DifferentialAgainstUnorderedMap)
{
    // Random insert/overwrite/erase/lookup mix, checked against the
    // reference container after every phase. Keys are drawn from a
    // small space so operations collide with earlier ones often.
    util::FlatMap<uint64_t, uint64_t> m;
    std::unordered_map<uint64_t, uint64_t> ref;
    Rng rng(2024);
    for (int op = 0; op < 60000; op++) {
        uint64_t k = rng.below(4096);
        switch (rng.below(4)) {
          case 0:
          case 1: { // put (insert or overwrite)
            uint64_t v = rng.next();
            m.put(k, v);
            ref[k] = v;
            break;
          }
          case 2: { // erase
            bool a = m.erase(k);
            bool b = ref.erase(k) > 0;
            ASSERT_EQ(a, b);
            break;
          }
          case 3: { // lookup
            uint64_t *v = m.find(k);
            auto it = ref.find(k);
            if (it == ref.end()) {
                ASSERT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                ASSERT_EQ(*v, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(m.size(), ref.size());
    }
    // Full sweep at the end: every surviving entry matches.
    size_t visited = 0;
    m.forEach([&](const uint64_t &k, uint64_t &v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(v, it->second);
        visited++;
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, SequentialIdChurnStaysShallow)
{
    // Regression: context ids are sequential, and libstdc++'s
    // std::hash<uint64_t> is the identity. Before FlatHash, a sliding
    // window of sequential ids formed one contiguous run of occupied
    // slots, and every insert of an older "hot" id whose home slot
    // fell inside the run shifted the whole suffix, ratcheting probe
    // distances past the uint8 cap (panic at ~255). Replays that
    // pattern at the bench's scale: a 20000-entry resident window
    // sliding over 200000 sequential ids, with scattered hot survivors
    // re-inserted behind the window.
    util::FlatMap<uint64_t, uint64_t> m;
    std::vector<uint64_t> resident;
    Rng rng(7);
    uint64_t next = 0;
    const size_t kWindow = 20000;
    while (next < 200000) {
        uint64_t id = next++;
        m.put(id, id);
        resident.push_back(id);
        if (resident.size() > kWindow) {
            // Evict a mostly-oldest victim, but keep ~1% as "hot"
            // survivors and periodically re-insert an old id (a hot
            // flow fetched back into the cache).
            size_t victim = rng.below(100) == 0
                                ? rng.below(resident.size())
                                : 0;
            uint64_t ev = resident[victim];
            resident.erase(resident.begin() +
                           static_cast<ptrdiff_t>(victim));
            EXPECT_TRUE(m.erase(ev));
            if (rng.below(50) == 0 && ev > 0) {
                uint64_t hot = rng.below(ev);
                if (m.find(hot) == nullptr) {
                    m.put(hot, hot);
                    resident.push_back(hot);
                }
            }
        }
    }
    EXPECT_EQ(m.size(), resident.size());
    for (uint64_t id : resident)
        ASSERT_NE(m.find(id), nullptr) << id;
}

} // namespace
} // namespace anic
