/**
 * @file
 * Unit tests for util: byte codecs, hex, deterministic fill, RNG.
 */

#include <gtest/gtest.h>

#include "util/bytes.hh"
#include "util/panic.hh"
#include "util/rand.hh"

namespace anic {
namespace {

TEST(Bytes, BigEndianRoundTrip)
{
    uint8_t buf[8];
    putBe16(buf, 0xbeef);
    EXPECT_EQ(getBe16(buf), 0xbeef);
    putBe32(buf, 0xdeadbeefu);
    EXPECT_EQ(getBe32(buf), 0xdeadbeefu);
    putBe64(buf, 0x0123456789abcdefull);
    EXPECT_EQ(getBe64(buf), 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0xef);
}

TEST(Bytes, LittleEndianRoundTrip)
{
    uint8_t buf[4];
    putLe32(buf, 0xdeadbeefu);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[3], 0xde);
    EXPECT_EQ(getLe32(buf), 0xdeadbeefu);
    putLe16(buf, 0x1234);
    EXPECT_EQ(getLe16(buf), 0x1234);
}

TEST(Bytes, VariableWidthBigEndian)
{
    uint8_t buf[3];
    putBe(buf, 0x123456, 3);
    EXPECT_EQ(buf[0], 0x12);
    EXPECT_EQ(buf[1], 0x34);
    EXPECT_EQ(buf[2], 0x56);
    EXPECT_EQ(getBe(buf, 3), 0x123456u);
}

TEST(Bytes, HexRoundTrip)
{
    Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
    EXPECT_EQ(toHex(data), "deadbeef0001");
    EXPECT_EQ(fromHex("deadbeef0001"), data);
    EXPECT_EQ(fromHex("DEADBEEF0001"), data);
    EXPECT_TRUE(fromHex("").empty());
}

TEST(Bytes, DeterministicFillIsOffsetStable)
{
    // A sub-range generated at its own offset must match the same
    // range within a larger fill; this property underlies zero-copy
    // placement verification.
    Bytes whole(4096);
    fillDeterministic(whole, 42, 0);
    Bytes part(100);
    fillDeterministic(part, 42, 1000);
    EXPECT_TRUE(std::equal(part.begin(), part.end(), whole.begin() + 1000));
    EXPECT_TRUE(checkDeterministic(part, 42, 1000));
    EXPECT_FALSE(checkDeterministic(part, 42, 1001));
    EXPECT_FALSE(checkDeterministic(part, 43, 1000));
}

TEST(Bytes, DeterministicFillDiffersAcrossSeeds)
{
    Bytes a(256);
    Bytes b(256);
    fillDeterministic(a, 1, 0);
    fillDeterministic(b, 2, 0);
    EXPECT_NE(a, b);
}

TEST(Rng, DeterministicAcrossReseeds)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
    a.reseed(8);
    b.reseed(7);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(123);
    for (int i = 0; i < 10000; i++) {
        uint64_t v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng r(11);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        hits += r.chance(0.03) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.03, 0.005);
}

TEST(Strprintf, Formats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strprintf("%s", ""), "");
}

} // namespace
} // namespace anic
