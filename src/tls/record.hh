/**
 * @file
 * TLS record-layer definitions (TLS 1.3-style, AES-128-GCM).
 *
 * Record layout on the wire:
 *   [0]    content type (0x17 application data)
 *   [1..2] legacy version 0x0303
 *   [3..4] length of ciphertext || tag
 *   [5..]  ciphertext (same size as plaintext; GCM is a stream mode)
 *   [-16..] 16-byte ICV (GCM tag)
 *
 * Per-record nonce = static IV XOR 0^4||be64(record sequence); the
 * AAD is the 5-byte record header — exactly the fields the paper's
 * magic pattern uses: type (six valid values), constant version, and
 * a bounded length.
 */

#ifndef ANIC_TLS_RECORD_HH
#define ANIC_TLS_RECORD_HH

#include <array>
#include <optional>

#include "crypto/gcm.hh"
#include "util/bytes.hh"

namespace anic::tls {

constexpr size_t kHeaderSize = 5;
constexpr size_t kTagSize = crypto::AesGcm::kTagSize;
constexpr size_t kMaxPlaintext = 16384;
constexpr size_t kMaxWire = kHeaderSize + kMaxPlaintext + kTagSize;
constexpr uint8_t kTypeApplicationData = 0x17;
constexpr uint16_t kVersionTls12 = 0x0303;

/** Framing fields of a record header. */
struct RecordHeader
{
    uint8_t type = kTypeApplicationData;
    uint16_t version = kVersionTls12;
    uint16_t length = 0; ///< ciphertext + tag

    size_t wireLen() const { return kHeaderSize + length; }
    size_t plaintextLen() const { return length - kTagSize; }

    void
    encode(uint8_t *out) const
    {
        out[0] = type;
        putBe16(out + 1, version);
        putBe16(out + 3, length);
    }

    /**
     * Decodes and validates the magic pattern: known content type,
     * post-handshake version, and a length within protocol bounds.
     */
    static std::optional<RecordHeader>
    parse(ByteView h)
    {
        if (h.size() < kHeaderSize)
            return std::nullopt;
        RecordHeader r;
        r.type = h[0];
        r.version = getBe16(h.data() + 1);
        r.length = getBe16(h.data() + 3);
        // Valid content types: ccs(20) alert(21) handshake(22)
        // appdata(23); we only speculate on appdata+alert here.
        if (r.type != kTypeApplicationData && r.type != 21)
            return std::nullopt;
        if (r.version != kVersionTls12)
            return std::nullopt;
        if (r.length < kTagSize + 1 || r.length > kMaxPlaintext + kTagSize)
            return std::nullopt;
        return r;
    }
};

/** Builds the per-record GCM nonce from the static IV and seq. */
inline std::array<uint8_t, 12>
recordNonce(ByteView staticIv, uint64_t recordSeq)
{
    std::array<uint8_t, 12> nonce;
    std::memcpy(nonce.data(), staticIv.data(), 12);
    uint8_t seq_be[8];
    putBe64(seq_be, recordSeq);
    for (int i = 0; i < 8; i++)
        nonce[4 + i] ^= seq_be[i];
    return nonce;
}

/** Symmetric session keys for one direction. */
struct DirectionKeys
{
    Bytes key;      ///< 16-byte AES-128 key
    Bytes staticIv; ///< 12-byte IV base
};

/** Both directions of a session, as each endpoint sees them. */
struct SessionKeys
{
    DirectionKeys tx;
    DirectionKeys rx;

    /**
     * Stands in for the TLS handshake (which the paper leaves in
     * userspace OpenSSL, unmodified): both endpoints derive the same
     * key material from a shared secret seed; the client's tx keys
     * are the server's rx keys.
     */
    static SessionKeys
    derive(uint64_t secret, bool isClient)
    {
        auto dir = [&](uint64_t salt) {
            DirectionKeys d;
            d.key.resize(16);
            fillDeterministic(d.key, secret ^ salt, 0);
            d.staticIv.resize(12);
            fillDeterministic(d.staticIv, secret ^ salt, 1000);
            return d;
        };
        SessionKeys k;
        DirectionKeys c2s = dir(0x1111);
        DirectionKeys s2c = dir(0x2222);
        k.tx = isClient ? c2s : s2c;
        k.rx = isClient ? s2c : c2s;
        return k;
    }
};

} // namespace anic::tls

#endif // ANIC_TLS_RECORD_HH
