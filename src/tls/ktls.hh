/**
 * @file
 * Kernel-TLS-style software record layer (the paper's §5.2 software
 * side). A TlsSocket wraps a TcpConnection and presents the same
 * StreamSocket interface carrying *plaintext*, so applications (and
 * the NVMe-TCP L5P, for the NVMe-TLS composition) are oblivious to
 * whether crypto runs in software or on the NIC.
 *
 * Offload behaviour implemented from the paper:
 *  - tx: records are framed with dummy ICVs and passed down in
 *    plaintext; the NIC encrypts in place. A seq->record map answers
 *    l5o_get_tx_msgstate for retransmissions, sourcing rebuild bytes
 *    from TCP's own retained send buffer.
 *  - rx: a record whose packets all carry the NIC's `decrypted` bit
 *    skips software crypto entirely; a partially-offloaded record is
 *    recovered by re-encrypting the NIC-decrypted ranges (CTR) and
 *    then running the normal software decrypt+authenticate path —
 *    which is why partial decryption is costlier than none (§6.4).
 *  - rx resync: answers the NIC's header speculation when in-order
 *    processing reaches the speculated sequence number.
 *  - sendfile: software mode allocates a per-record encryption
 *    buffer; offload mode still allocates+copies; offload+zc hands
 *    page-cache bytes straight to the NIC (user must not modify).
 */

#ifndef ANIC_TLS_KTLS_HH
#define ANIC_TLS_KTLS_HH

#include <deque>

#include "core/offload_device.hh"
#include "core/tx_msg_tracker.hh"
#include "sim/registry.hh"
#include "tcp/tcp_connection.hh"
#include "tls/record.hh"
#include "tls/tls_engine.hh"

namespace anic::tls {

/** Socket-level statistics (drives Figures 11, 13, 16-18). */
struct TlsStats
{
    sim::Counter recordsTx;
    sim::Counter recordsRx;
    sim::Counter rxFullyOffloaded;
    sim::Counter rxPartiallyOffloaded;
    sim::Counter rxNotOffloaded;
    sim::Counter tagFailures;
    sim::Counter txMsgStateUpcalls;
    sim::Counter rxResyncRequests;
    sim::Counter rxResyncConfirmed;
    sim::Counter plaintextBytesTx;
    sim::Counter plaintextBytesRx;
};

/** Links every TlsStats counter under @p scope as "<stem>.<field>". */
void linkTlsStats(sim::StatsScope &scope, const std::string &stem,
                  const TlsStats &s);

/** Per-socket TLS configuration. */
struct TlsConfig
{
    size_t recordSize = kMaxPlaintext; ///< max plaintext per record
    bool txOffload = false;
    bool rxOffload = false;
    bool zerocopySendfile = false; ///< only meaningful with txOffload

    /** Owner-level aggregate every count also lands in; sockets come
     *  and go per connection, the aggregate is what the registry
     *  publishes (per-socket stats stay available via stats()). */
    TlsStats *aggregate = nullptr;
};

/** How transmitted bytes are sourced (send vs sendfile variants). */
enum class TxMode
{
    Copy,     ///< send(): user buffer copied into the record
    Sendfile, ///< sendfile(): page-cache source, no user copy
};

class TlsSocket : public tcp::StreamSocket, private core::L5pCallbacks
{
  public:
    /**
     * Wraps an *established* connection. Keys mirror the peer's (use
     * SessionKeys::derive with the same secret on both sides).
     */
    TlsSocket(tcp::TcpConnection &conn, const SessionKeys &keys,
              TlsConfig cfg);
    ~TlsSocket() override;

    /**
     * Installs NIC offload contexts (l5o_create) per the config's
     * txOffload/rxOffload flags. Must be called before any data moves
     * (i.e. right after the handshake).
     */
    void enableOffload(core::OffloadDevice &dev);

    // ------------------------------------------------ StreamSocket
    size_t send(ByteView data) override;
    size_t sendSpace() const override;
    void setOnWritable(std::function<void()> cb) override { onWritable_ = std::move(cb); }
    bool readable() const override { return !rxOut_.empty(); }
    tcp::RxSegment pop() override;
    void setOnReadable(std::function<void()> cb) override { onReadable_ = std::move(cb); }
    void setOnPeerClosed(std::function<void()> cb) override;
    void close() override { conn_.close(); }
    host::Core &core() override { return conn_.core(); }

    /**
     * sendfile-style transmit: @p len bytes of file content
     * (deterministically generated from @p seed at @p fileOff, i.e.
     * the page cache holds it). Returns bytes accepted.
     */
    size_t sendFile(uint64_t seed, uint64_t fileOff, size_t len);

    const TlsStats &stats() const { return stats_; }
    tcp::TcpConnection &connection() { return conn_; }
    core::L5Offload *offload() { return l5o_; }

    /** Aggregated FSM stats of the NIC rx context (null w/o offload). */
    const nic::FsmStats *rxFsmStats() const
    {
        return l5o_ ? l5o_->rxFsmStats() : nullptr;
    }

    /**
     * Observer invoked as each rx record completes, with its index
     * and the plaintext offset where its payload starts. The NVMe-TLS
     * composition uses this to translate the NIC's inner-layer resync
     * anchors (record index, offset) into plaintext positions.
     */
    void
    setRecordObserver(std::function<void(uint64_t recIdx, uint64_t plainOff)> cb)
    {
        recordObserver_ = std::move(cb);
    }

    /** Index the next received record will get. */
    uint64_t nextRxRecordSeq() const { return rxRecSeq_; }

    /** Framed record bytes TCP has not yet accepted. Zero together
     *  with an all-acked connection means no in-flight record depends
     *  on this socket's keys or NIC contexts — the safe point for a
     *  key-rotation style socket swap. */
    size_t txBacklog() const { return staging_.size() - stagingOff_; }

  private:
    // ------------------------------------------------------- tx
    bool emitRecord(ByteView plaintext, TxMode mode);
    void flushStaging();
    void chargeTxRecord(size_t plainLen, TxMode mode);

    // ------------------------------------------------------- rx
    void onTcpReadable();
    void ingestSegment(tcp::RxSegment seg);
    void finishRecord();
    void answerPendingResync(uint32_t recordStartSeq);

    // ---------------------------------------------- L5pCallbacks
    std::optional<TxMsgState> getTxMsgState(uint32_t tcpsn) override;
    void resyncRxReq(uint32_t tcpsn) override;

    /** Counts into the socket stats and the configured aggregate. */
    void
    count(sim::Counter TlsStats::*m, uint64_t n = 1)
    {
        (stats_.*m) += n;
        if (cfg_.aggregate != nullptr)
            (cfg_.aggregate->*m) += n;
    }

    tcp::TcpConnection &conn_;
    TlsConfig cfg_;
    SessionKeys keys_;
    crypto::AesGcm txGcm_;
    crypto::AesGcm rxGcm_;
    crypto::Aes128 rxCtrAes_; ///< for partial-offload re-encryption

    core::L5Offload *l5o_ = nullptr;

    // --- tx state
    uint64_t txRecSeq_ = 0;
    core::TxMsgTracker txMap_;
    Bytes staging_; ///< tail of a record TCP could not accept yet
    size_t stagingOff_ = 0;
    std::function<void()> onWritable_;

    // --- rx state
    struct Slice
    {
        size_t recOff = 0;
        Bytes data;
        net::RxOffloadMeta meta;
        bool decrypted = false;
    };
    RecordHeader rxHdr_;
    Bytes rxHdrBuf_;
    bool rxHdrComplete_ = false;
    std::vector<Slice> rxSlices_;
    size_t rxHave_ = 0; ///< record bytes collected (incl. header)
    uint64_t rxRecStartOff_ = 0;
    uint64_t rxStreamConsumed_ = 0; ///< next unconsumed TCP stream offset
    uint64_t rxRecSeq_ = 0;
    uint64_t rxPlainOff_ = 0;
    std::deque<tcp::RxSegment> rxOut_;
    bool rxError_ = false;

    bool resyncPending_ = false;
    uint32_t resyncSeq_ = 0;

    std::function<void()> onReadable_;
    std::function<void(uint64_t, uint64_t)> recordObserver_;
    TlsStats stats_;
};

} // namespace anic::tls

#endif // ANIC_TLS_KTLS_HH
