/**
 * @file
 * NIC-side TLS engines (the crypto offload the ConnectX6-Dx ships).
 *
 * TlsTxEngine encrypts plaintext records in place and fills the ICV
 * as packets stream out; TlsRxEngine decrypts in place and verifies
 * ICVs, and can host an *inner* engine fed with the decrypted record
 * payload — that is how the NVMe-TLS composition works (§5.3): "NIC
 * HW parsing starts from Ethernet, and proceeds to parse TLS then
 * NVMe-TCP".
 */

#ifndef ANIC_TLS_TLS_ENGINE_HH
#define ANIC_TLS_TLS_ENGINE_HH

#include <memory>

#include "core/l5o.hh"
#include "nic/stream_fsm.hh"
#include "tls/record.hh"

namespace anic::tls {

/**
 * TLS static offload state for the unified l5o_create binding: the
 * session keys. Constructing one registers the TLS engine factories
 * with the driver's protocol registry.
 */
class TlsStaticState : public core::L5StaticState
{
  public:
    explicit TlsStaticState(const SessionKeys &keys);

    net::L5Kind kind() const override { return net::L5Kind::Tls; }
    const SessionKeys &keys() const { return keys_; }

  private:
    SessionKeys keys_;
};

/** Shared framing logic: both engines parse the same headers. */
class TlsEngineBase : public nic::L5Engine
{
  public:
    explicit TlsEngineBase(const DirectionKeys &keys);

    net::L5Kind kind() const override { return net::L5Kind::Tls; }
    size_t headerSize() const override { return kHeaderSize; }
    std::optional<nic::MsgInfo> parseHeader(ByteView hdr) const override;
    bool resumeMidMessage() const override { return false; }
    void onMsgResume(uint64_t, ByteView, uint64_t) override;

  protected:
    void startRecord(uint64_t recordSeq, ByteView hdr);

    crypto::AesGcm gcm_;
    Bytes staticIv_;
    size_t ctEnd_ = 0; ///< record offset where ciphertext ends
};

/** Transmit: encrypt + fill ICV (l5o tx data path). */
class TlsTxEngine : public TlsEngineBase
{
  public:
    using TlsEngineBase::TlsEngineBase;

    void onMsgStart(uint64_t msgIdx, ByteView hdr) override;
    void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                   nic::PacketResult &res) override;
    void onMsgEnd(bool covered, nic::PacketResult &res) override;
    void onMsgAbort() override;

  private:
    uint8_t tag_[kTagSize];
    bool tagReady_ = false;
};

/**
 * Receive: decrypt + verify ICV; optionally feeds an inner layer.
 *
 * Unlike transmit, the rx engine resumes *mid-record* after out-of-
 * sequence traffic: AES-GCM's CTR body permits decryption from any
 * byte offset, so subsequent packets of a disrupted record are still
 * decrypted (and marked), merely without ICV verification. This is
 * safe because a disrupted record always ends up with at least one
 * packet whose `decrypted` bit is clear (the late gap-filler), which
 * forces kTLS down the partial-offload path that re-authenticates
 * the whole record in software. Without mid-record resume, a single
 * loss would disable offloading until a record happens to start
 * exactly at a packet boundary — with 16 KiB records over 1460-byte
 * segments that is 1-in-292 records, nothing like the recovery the
 * paper measures (Figure 17b).
 */
class TlsRxEngine : public TlsEngineBase
{
  public:
    explicit TlsRxEngine(const DirectionKeys &keys);

    bool resumeMidMessage() const override { return true; }
    void onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off) override;

    /**
     * Installs an inner engine (e.g. NVMe-TCP) that consumes the
     * decrypted plaintext stream. The inner FSM's resync requests are
     * surfaced through @p innerResyncReq with the TLS-level anchor
     * (record index, offset within record plaintext).
     */
    void installInner(std::unique_ptr<nic::L5Engine> inner,
                      std::function<void(uint64_t reqId, uint64_t recIdx,
                                         uint32_t recOff)>
                          innerResyncReq,
                      uint64_t plaintextPos, uint64_t innerMsgIdx);

    /** SW->HW resync response for the inner layer. */
    void innerResyncResponse(uint64_t reqId, bool ok, uint64_t msgIdx);

    /** Propagates the counter bank to the hosted inner engine too. */
    void setStats(nic::EngineStatsBank *stats) override;

    const nic::FsmStats *innerFsmStats() const;

    void onMsgStart(uint64_t msgIdx, ByteView hdr) override;
    void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                   nic::PacketResult &res) override;
    void onMsgEnd(bool covered, nic::PacketResult &res) override;
    void onMsgAbort() override;

  private:
    void innerNoteRecord(uint64_t msgIdx, uint64_t plainSkip);
    void innerResolveAbort(uint64_t resumeIdx, uint64_t resumeOff);

    crypto::Aes128 ctrAes_;       ///< raw CTR for mid-record resume
    std::array<uint8_t, 12> nonce_{};
    bool ctrOnly_ = false;        ///< resumed mid-record: no ICV check
    uint64_t ctrPos_ = 0;         ///< unused; kept via onMsgData offsets
    uint8_t tagBuf_[kTagSize];
    size_t tagHave_ = 0;
    bool recordOpen_ = false;
    bool pendingAbort_ = false;
    uint64_t abortRecIdx_ = 0;

    // ---- inner layer (NVMe-TLS composition)
    std::unique_ptr<nic::L5Engine> inner_;
    std::unique_ptr<nic::StreamFsm> innerFsm_;
    std::function<void(uint64_t, uint64_t, uint32_t)> innerResyncReq_;
    uint64_t innerPos_ = 0; ///< plaintext stream position
    uint64_t curRecIdx_ = 0;
    uint64_t curRecPlainStart_ = 0; ///< innerPos_ of record payload start
    bool haveSeenRecord_ = false;
    bool havePrevRec_ = false;
    uint64_t prevRecIdx_ = 0;
    uint64_t prevRecPlainStart_ = 0;
};

} // namespace anic::tls

#endif // ANIC_TLS_TLS_ENGINE_HH
