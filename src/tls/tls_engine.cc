#include "tls/tls_engine.hh"

#include "util/panic.hh"

namespace anic::tls {

// -------------------------------------------- unified-binding state

namespace {

void
ensureTlsRegistered()
{
    static const bool once = [] {
        core::L5ProtocolOps ops;
        ops.makeRx = [](const core::L5StaticState &st)
            -> std::unique_ptr<nic::L5Engine> {
            const auto &tls = static_cast<const TlsStaticState &>(st);
            return std::make_unique<TlsRxEngine>(tls.keys().rx);
        };
        ops.makeTx = [](const core::L5StaticState &st)
            -> std::unique_ptr<nic::L5Engine> {
            const auto &tls = static_cast<const TlsStaticState &>(st);
            return std::make_unique<TlsTxEngine>(tls.keys().tx);
        };
        core::registerL5Protocol(net::L5Kind::Tls, ops);
        return true;
    }();
    (void)once;
}

} // namespace

TlsStaticState::TlsStaticState(const SessionKeys &keys) : keys_(keys)
{
    ensureTlsRegistered();
}

// ----------------------------------------------------------- base

TlsEngineBase::TlsEngineBase(const DirectionKeys &keys)
    : staticIv_(keys.staticIv)
{
    gcm_.setKey(keys.key);
}

std::optional<nic::MsgInfo>
TlsEngineBase::parseHeader(ByteView hdr) const
{
    std::optional<RecordHeader> h = RecordHeader::parse(hdr);
    if (!h)
        return std::nullopt;
    return nic::MsgInfo{h->wireLen()};
}

void
TlsEngineBase::onMsgResume(uint64_t, ByteView, uint64_t)
{
    panic("TLS engines resume only at record boundaries");
}

void
TlsEngineBase::startRecord(uint64_t recordSeq, ByteView hdr)
{
    auto nonce = recordNonce(staticIv_, recordSeq);
    gcm_.start(nonce, hdr);
    RecordHeader h = *RecordHeader::parse(hdr);
    ctEnd_ = kHeaderSize + h.plaintextLen();
}

// ------------------------------------------------------- transmit

void
TlsTxEngine::onMsgStart(uint64_t msgIdx, ByteView hdr)
{
    startRecord(msgIdx, hdr);
    tagReady_ = false;
}

void
TlsTxEngine::onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                       nic::PacketResult &res)
{
    if (dryRun)
        return;
    size_t i = 0;
    while (i < data.size()) {
        uint64_t pos = off + i;
        if (pos < ctEnd_) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(ctEnd_ - pos, data.size() - i));
            // Encrypt plaintext in place.
            gcm_.encryptUpdate(data.subspan(i, n), data.subspan(i, n));
            count(&nic::EngineStats::bytesTransformed, n);
            res.bytesTransformed += n;
            i += n;
        } else {
            // ICV region: replace the dummy bytes with the tag.
            if (!tagReady_) {
                gcm_.finishTag(ByteSpan(tag_, kTagSize));
                tagReady_ = true;
            }
            size_t tag_off = static_cast<size_t>(pos - ctEnd_);
            size_t n = std::min(kTagSize - tag_off, data.size() - i);
            std::memcpy(data.data() + i, tag_ + tag_off, n);
            i += n;
        }
    }
}

void
TlsTxEngine::onMsgEnd(bool covered, nic::PacketResult &res)
{
    (void)covered;
    (void)res;
}

void
TlsTxEngine::onMsgAbort()
{
    tagReady_ = false;
}

// -------------------------------------------------------- receive

TlsRxEngine::TlsRxEngine(const DirectionKeys &keys)
    : TlsEngineBase(keys), ctrAes_(keys.key)
{
}

void
TlsRxEngine::installInner(
    std::unique_ptr<nic::L5Engine> inner,
    std::function<void(uint64_t reqId, uint64_t recIdx, uint32_t recOff)>
        innerResyncReq,
    uint64_t plaintextPos, uint64_t innerMsgIdx)
{
    inner_ = std::move(inner);
    innerResyncReq_ = std::move(innerResyncReq);
    innerFsm_ = std::make_unique<nic::StreamFsm>(
        *inner_, [this](uint64_t reqId, uint64_t pos) {
            // Translate the linear plaintext position into a
            // (record, offset) anchor software can identify. A
            // candidate can start in the previous record when the
            // scan carry straddles a record boundary.
            if (pos >= curRecPlainStart_) {
                innerResyncReq_(reqId, curRecIdx_,
                                static_cast<uint32_t>(pos - curRecPlainStart_));
            } else if (havePrevRec_ && pos >= prevRecPlainStart_) {
                innerResyncReq_(
                    reqId, prevRecIdx_,
                    static_cast<uint32_t>(pos - prevRecPlainStart_));
            } else {
                // Unanchorable; refute immediately so the FSM keeps
                // searching instead of waiting forever.
                innerFsm_->confirm(reqId, false, 0);
            }
        });
    innerPos_ = plaintextPos;
    inner_->setStats(engineStats_);
    innerFsm_->reset(plaintextPos, innerMsgIdx);
}

void
TlsRxEngine::setStats(nic::EngineStatsBank *stats)
{
    TlsEngineBase::setStats(stats);
    if (inner_)
        inner_->setStats(stats);
}

void
TlsRxEngine::innerResyncResponse(uint64_t reqId, bool ok, uint64_t msgIdx)
{
    if (innerFsm_)
        innerFsm_->confirm(reqId, ok, msgIdx);
}

const nic::FsmStats *
TlsRxEngine::innerFsmStats() const
{
    return innerFsm_ ? &innerFsm_->stats() : nullptr;
}

void
TlsRxEngine::innerResolveAbort(uint64_t resumeIdx, uint64_t resumeOff)
{
    if (!inner_ || !pendingAbort_)
        return;
    pendingAbort_ = false;
    uint64_t delivered = innerPos_ - curRecPlainStart_;
    uint64_t total_plain = ctEnd_ - kHeaderSize;
    if (resumeIdx == abortRecIdx_) {
        // Resuming inside the aborted record: the plaintext hole is
        // only up to the resume offset.
        uint64_t target = resumeOff >= kHeaderSize ? resumeOff - kHeaderSize
                                                   : 0;
        if (target > delivered)
            innerPos_ = curRecPlainStart_ + target;
    } else if (delivered < total_plain) {
        // The record's remaining plaintext was never delivered.
        innerPos_ += total_plain - delivered;
    }
}

void
TlsRxEngine::innerNoteRecord(uint64_t msgIdx, uint64_t plainSkip)
{
    if (!inner_)
        return;
    if (haveSeenRecord_ && msgIdx != curRecIdx_ + 1 && msgIdx != curRecIdx_) {
        // Records were skipped (processed in skip mode, never
        // decrypted): the plaintext stream has a hole of unknown
        // size, so the inner layer must re-anchor by searching.
        innerFsm_->positionLost();
        innerPos_ += kMaxWire; // fresh epoch, break continuity
    }
    if (msgIdx != curRecIdx_ || !haveSeenRecord_) {
        havePrevRec_ = haveSeenRecord_;
        prevRecIdx_ = curRecIdx_;
        prevRecPlainStart_ = curRecPlainStart_;
        curRecIdx_ = msgIdx;
        curRecPlainStart_ = innerPos_;
        haveSeenRecord_ = true;
    }
    // Plaintext bytes of this record we will never see (mid-record
    // resume): a known-length gap for the inner layer.
    innerPos_ += plainSkip;
}

void
TlsRxEngine::onMsgStart(uint64_t msgIdx, ByteView hdr)
{
    startRecord(msgIdx, hdr); // sets ctEnd_ for abort accounting below
    innerResolveAbort(msgIdx, 0);
    innerNoteRecord(msgIdx, 0);
    ctrOnly_ = false;
    tagHave_ = 0;
    recordOpen_ = true;
}

void
TlsRxEngine::onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off)
{
    // Mid-record resume: decrypt-only via CTR fast-forward; the ICV
    // cannot be verified (GHASH is incomplete), and software will
    // re-authenticate because at least one packet of this record
    // lacks the decrypted bit.
    RecordHeader h = *RecordHeader::parse(hdr);
    size_t prev_ct_end = ctEnd_;
    ctEnd_ = kHeaderSize + h.plaintextLen();
    nonce_ = recordNonce(staticIv_, msgIdx);
    ctrOnly_ = true;
    tagHave_ = 0;
    recordOpen_ = true;
    if (inner_) {
        // Restore ctEnd_ briefly for abort bookkeeping of the prior
        // record if the abort belonged to a different record.
        size_t cur = ctEnd_;
        ctEnd_ = pendingAbort_ && abortRecIdx_ != msgIdx ? prev_ct_end : cur;
        innerResolveAbort(msgIdx, off);
        ctEnd_ = cur;
        uint64_t body_off = off >= kHeaderSize ? off - kHeaderSize : 0;
        uint64_t delivered = innerPos_ - curRecPlainStart_;
        uint64_t skip = msgIdx == curRecIdx_ && haveSeenRecord_ &&
                                body_off > delivered
                            ? 0 // handled by innerResolveAbort
                            : (msgIdx != curRecIdx_ || !haveSeenRecord_
                                   ? body_off
                                   : 0);
        innerNoteRecord(msgIdx, skip);
    }
}

void
TlsRxEngine::onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                       nic::PacketResult &res)
{
    if (dryRun)
        return;
    size_t i = 0;
    while (i < data.size()) {
        uint64_t pos = off + i;
        if (pos < ctEnd_) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(ctEnd_ - pos, data.size() - i));
            ByteSpan chunk = data.subspan(i, n);
            if (ctrOnly_) {
                crypto::aesGcmCtrAtOffset(ctrAes_, nonce_,
                                          pos - kHeaderSize, chunk);
            } else {
                gcm_.decryptUpdate(chunk, chunk);
            }
            count(&nic::EngineStats::bytesTransformed, n);
            res.bytesTransformed += n;
            if (inner_) {
                // Feed the decrypted plaintext to the inner layer.
                uint32_t saved_base = res.payloadBase;
                res.payloadBase =
                    res.spanPktOff + static_cast<uint32_t>(i);
                innerFsm_->segment(innerPos_, chunk, res);
                res.payloadBase = saved_base;
                innerPos_ += n;
            }
            i += n;
        } else {
            // ICV region: collect for verification at record end
            // (meaningless in ctrOnly mode; software re-checks).
            size_t tag_off = static_cast<size_t>(pos - ctEnd_);
            size_t n = std::min(kTagSize - tag_off, data.size() - i);
            if (!ctrOnly_) {
                std::memcpy(tagBuf_ + tag_off, data.data() + i, n);
                tagHave_ = tag_off + n;
            }
            i += n;
        }
    }
}

void
TlsRxEngine::onMsgEnd(bool covered, nic::PacketResult &res)
{
    recordOpen_ = false;
    if (!covered || ctrOnly_) {
        // Incomplete coverage: no ICV verification here; software's
        // partial-record fallback authenticates the record.
        ctrOnly_ = false;
        res.setVerify(net::L5Kind::Tls, net::VerifyOutcome::Incomplete);
        return;
    }
    ANIC_ASSERT(tagHave_ == kTagSize);
    if (!gcm_.checkTag(ByteView(tagBuf_, kTagSize))) {
        res.setVerify(net::L5Kind::Tls, net::VerifyOutcome::Failed);
        count(&nic::EngineStats::verifyFailures);
    } else {
        res.setVerify(net::L5Kind::Tls, net::VerifyOutcome::Ok);
        count(&nic::EngineStats::verifiedOk);
    }
}

void
TlsRxEngine::onMsgAbort()
{
    recordOpen_ = false;
    ctrOnly_ = false;
    if (inner_) {
        // Defer the plaintext-gap accounting: if the same record is
        // resumed mid-way (CTR fast-forward), only part of it is lost.
        pendingAbort_ = true;
        abortRecIdx_ = curRecIdx_;
    }
}

} // namespace anic::tls
