#include "tls/ktls.hh"

#include "util/panic.hh"

namespace anic::tls {

void
linkTlsStats(sim::StatsScope &scope, const std::string &stem,
             const TlsStats &s)
{
    scope.link(stem + ".recordsTx", s.recordsTx);
    scope.link(stem + ".recordsRx", s.recordsRx);
    scope.link(stem + ".rxFullyOffloaded", s.rxFullyOffloaded);
    scope.link(stem + ".rxPartiallyOffloaded", s.rxPartiallyOffloaded);
    scope.link(stem + ".rxNotOffloaded", s.rxNotOffloaded);
    scope.link(stem + ".tagFailures", s.tagFailures);
    scope.link(stem + ".txMsgStateUpcalls", s.txMsgStateUpcalls);
    scope.link(stem + ".rxResyncRequests", s.rxResyncRequests);
    scope.link(stem + ".rxResyncConfirmed", s.rxResyncConfirmed);
    scope.link(stem + ".plaintextBytesTx", s.plaintextBytesTx);
    scope.link(stem + ".plaintextBytesRx", s.plaintextBytesRx);
}

namespace {

/** Clips offload metadata to a sub-range of a segment's data. */
net::RxOffloadMeta
metaSlice(const net::RxOffloadMeta &meta, size_t off, size_t len)
{
    net::RxOffloadMeta out = meta;
    out.placed.clear();
    for (const net::PlacedRange &r : meta.placed) {
        uint64_t start = std::max<uint64_t>(r.payloadOff, off);
        uint64_t end = std::min<uint64_t>(r.payloadOff + r.len, off + len);
        if (start < end) {
            out.placed.push_back(
                net::PlacedRange{static_cast<uint32_t>(start - off),
                                 static_cast<uint32_t>(end - start)});
        }
    }
    return out;
}

} // namespace

TlsSocket::TlsSocket(tcp::TcpConnection &conn, const SessionKeys &keys,
                     TlsConfig cfg)
    : conn_(conn), cfg_(cfg), keys_(keys)
{
    txGcm_.setKey(keys_.tx.key);
    rxGcm_.setKey(keys_.rx.key);
    rxCtrAes_.setKey(keys_.rx.key);
    rxHdrBuf_.reserve(kHeaderSize);

    conn_.setOnReadable([this] { onTcpReadable(); });
    conn_.setOnAcked([this](uint32_t una) { txMap_.trimAcked(una); });
    conn_.setOnWritable([this] {
        flushStaging();
        if (staging_.empty() && onWritable_)
            onWritable_();
    });
}

TlsSocket::~TlsSocket()
{
    if (l5o_ != nullptr)
        l5o_->destroy();
}

void
TlsSocket::enableOffload(core::OffloadDevice &dev)
{
    ANIC_ASSERT(l5o_ == nullptr, "offload already enabled");
    if (!cfg_.txOffload && !cfg_.rxOffload)
        return;

    // Unified binding: protocol kind + static state + directions.
    TlsStaticState st(keys_);
    unsigned dirs = (cfg_.rxOffload ? core::kL5Rx : 0u) |
                    (cfg_.txOffload ? core::kL5Tx : 0u);
    l5o_ = dev.l5oCreate(conn_, st, dirs, this, rxRecSeq_, txRecSeq_);
    if (cfg_.txOffload)
        conn_.setTxOffloadCtx(l5o_->txCtxId());
}

// ----------------------------------------------------------------- tx

size_t
TlsSocket::send(ByteView data)
{
    conn_.core().charge(conn_.core().model().syscallCost);
    flushStaging();
    if (!staging_.empty())
        return 0;

    size_t consumed = 0;
    while (consumed < data.size() && staging_.empty() &&
           conn_.sendSpace() > 0) {
        size_t n = std::min(cfg_.recordSize, data.size() - consumed);
        emitRecord(data.subspan(consumed, n), TxMode::Copy);
        consumed += n;
    }
    return consumed;
}

size_t
TlsSocket::sendFile(uint64_t seed, uint64_t fileOff, size_t len)
{
    conn_.core().charge(conn_.core().model().syscallCost);
    flushStaging();
    if (!staging_.empty())
        return 0;

    size_t consumed = 0;
    while (consumed < len && staging_.empty() && conn_.sendSpace() > 0) {
        size_t n = std::min(cfg_.recordSize, len - consumed);
        Bytes plain(n);
        fillDeterministic(plain, seed, fileOff + consumed);
        emitRecord(plain, TxMode::Sendfile);
        consumed += n;
    }
    return consumed;
}

void
TlsSocket::chargeTxRecord(size_t plainLen, TxMode mode)
{
    const host::CycleModel &m = conn_.core().model();
    double cycles = m.tlsRecordCost;
    double bytes = static_cast<double>(plainLen);

    if (mode == TxMode::Copy) {
        // send(): user -> record buffer copy always happens.
        cycles += m.copyLlcPerByte * bytes;
        if (!cfg_.txOffload)
            cycles += m.aesGcmEncryptPerByte * bytes;
    } else {
        // sendfile(): source is the page cache.
        if (!cfg_.txOffload) {
            cycles += m.tlsTxAllocPerRecord + m.aesGcmEncryptPerByte * bytes;
        } else if (!cfg_.zerocopySendfile) {
            cycles += m.tlsTxAllocPerRecord + m.copyLlcPerByte * bytes;
        }
        // offload+zc: page-cache pages go straight to the NIC.
    }
    conn_.core().charge(cycles);
}

bool
TlsSocket::emitRecord(ByteView plaintext, TxMode mode)
{
    ANIC_ASSERT(staging_.empty());
    ANIC_ASSERT(!plaintext.empty() && plaintext.size() <= kMaxPlaintext);

    RecordHeader h;
    h.length = static_cast<uint16_t>(plaintext.size() + kTagSize);
    Bytes wire(h.wireLen());
    h.encode(wire.data());

    chargeTxRecord(plaintext.size(), mode);

    if (cfg_.txOffload) {
        // Skip the operation: plaintext body + dummy ICV; the NIC
        // encrypts in place and fills the tag.
        std::memcpy(wire.data() + kHeaderSize, plaintext.data(),
                    plaintext.size());
    } else {
        auto nonce = recordNonce(keys_.tx.staticIv, txRecSeq_);
        txGcm_.start(nonce, ByteView(wire.data(), kHeaderSize));
        txGcm_.encryptUpdate(plaintext,
                             ByteSpan(wire).subspan(kHeaderSize,
                                                    plaintext.size()));
        txGcm_.finishTag(
            ByteSpan(wire).subspan(kHeaderSize + plaintext.size(), kTagSize));
    }

    // With tx offload the NIC may need the record's pre-encryption
    // bytes for context recovery on retransmission; keep them until
    // the record is fully acked.
    txMap_.add(conn_.sndNextByteSeq(), static_cast<uint32_t>(wire.size()),
               txRecSeq_, cfg_.txOffload ? wire : Bytes{});
    txRecSeq_++;
    count(&TlsStats::recordsTx);
    count(&TlsStats::plaintextBytesTx, plaintext.size());

    size_t acc = conn_.send(wire);
    if (acc < wire.size()) {
        staging_.assign(wire.begin() + acc, wire.end());
        stagingOff_ = 0;
        return false;
    }
    return true;
}

void
TlsSocket::flushStaging()
{
    if (staging_.empty())
        return;
    ByteView rest =
        ByteView(staging_).subspan(stagingOff_, staging_.size() - stagingOff_);
    size_t acc = conn_.send(rest);
    stagingOff_ += acc;
    if (stagingOff_ == staging_.size()) {
        staging_.clear();
        stagingOff_ = 0;
    }
}

size_t
TlsSocket::sendSpace() const
{
    if (!staging_.empty())
        return 0;
    size_t sp = conn_.sendSpace();
    size_t per_record = kHeaderSize + kTagSize;
    size_t records = sp / (cfg_.recordSize + per_record) + 1;
    size_t overhead = records * per_record;
    return sp > overhead ? sp - overhead : 0;
}

std::optional<core::L5pCallbacks::TxMsgState>
TlsSocket::getTxMsgState(uint32_t tcpsn)
{
    count(&TlsStats::txMsgStateUpcalls);
    const core::TxMsgTracker::Entry *e = txMap_.find(tcpsn);
    if (e == nullptr)
        return std::nullopt;
    TxMsgState st;
    st.msgStartSeq = e->startSeq;
    st.msgIdx = e->msgIdx;
    uint32_t n = tcpsn - e->startSeq;
    ANIC_ASSERT(e->bytes.size() >= n, "record bytes not retained");
    st.rebuild.assign(e->bytes.begin(), e->bytes.begin() + n);
    return st;
}

// ----------------------------------------------------------------- rx

void
TlsSocket::setOnPeerClosed(std::function<void()> cb)
{
    conn_.setOnPeerClosed(std::move(cb));
}

tcp::RxSegment
TlsSocket::pop()
{
    ANIC_ASSERT(!rxOut_.empty());
    tcp::RxSegment seg = std::move(rxOut_.front());
    rxOut_.pop_front();
    return seg;
}

void
TlsSocket::onTcpReadable()
{
    while (conn_.readable() && !rxError_)
        ingestSegment(conn_.pop());
    if (!rxOut_.empty() && onReadable_)
        onReadable_();
}

void
TlsSocket::ingestSegment(tcp::RxSegment seg)
{
    size_t off = 0;
    const size_t n = seg.data.size();
    while (off < n && !rxError_) {
        if (!rxHdrComplete_) {
            if (rxHdrBuf_.empty()) {
                // A record starts here: note its position and answer
                // any pending NIC speculation about it.
                rxRecStartOff_ = seg.streamOff + off;
                answerPendingResync(
                    conn_.seqOfRcvStreamOff(rxRecStartOff_));
            }
            size_t need = kHeaderSize - rxHdrBuf_.size();
            size_t take = std::min(need, n - off);
            rxHdrBuf_.insert(rxHdrBuf_.end(), seg.data.begin() + off,
                             seg.data.begin() + off + take);
            off += take;
            rxStreamConsumed_ = seg.streamOff + off;
            if (rxHdrBuf_.size() < kHeaderSize)
                break;
            std::optional<RecordHeader> h = RecordHeader::parse(rxHdrBuf_);
            if (!h) {
                // Stream desync: treat as a fatal protocol error.
                rxError_ = true;
                count(&TlsStats::tagFailures);
                return;
            }
            rxHdr_ = *h;
            rxHdrComplete_ = true;
            rxHave_ = kHeaderSize;
            continue;
        }

        size_t want = rxHdr_.wireLen() - rxHave_;
        size_t take = std::min(want, n - off);
        Slice s;
        s.recOff = rxHave_;
        s.data.assign(seg.data.begin() + off, seg.data.begin() + off + take);
        s.meta = metaSlice(seg.meta, off, take);
        // NIC-decrypted iff the packet went through the offload path
        // and no record tag that completed in it failed.
        s.decrypted = seg.meta.offloaded &&
                      seg.meta.verifyOf(net::L5Kind::Tls) !=
                          net::VerifyOutcome::Failed;
        rxSlices_.push_back(std::move(s));
        rxHave_ += take;
        off += take;
        rxStreamConsumed_ = seg.streamOff + off;
        if (rxHave_ == rxHdr_.wireLen())
            finishRecord();
    }
}

void
TlsSocket::finishRecord()
{
    const host::CycleModel &m = conn_.core().model();
    const size_t plain_len = rxHdr_.plaintextLen();

    bool all = true;
    bool any = false;
    for (const Slice &s : rxSlices_) {
        all &= s.decrypted;
        any |= s.decrypted;
    }

    double cycles = m.tlsRecordCost;
    bool offloaded = cfg_.rxOffload && all && !rxSlices_.empty();

    if (offloaded) {
        count(&TlsStats::rxFullyOffloaded);
        // NIC decrypted everything and verified the ICV: slices
        // already hold plaintext.
    } else {
        if (any)
            count(&TlsStats::rxPartiallyOffloaded);
        else
            count(&TlsStats::rxNotOffloaded);

        // Reassemble the ciphertext. NIC-decrypted ranges must first
        // be re-encrypted (AES-GCM authenticates ciphertext), which
        // is why partial offload costs more than no offload (§6.4).
        Bytes ct(plain_len + kTagSize);
        auto nonce = recordNonce(keys_.rx.staticIv, rxRecSeq_);
        for (const Slice &s : rxSlices_) {
            size_t body_off = s.recOff - kHeaderSize;
            std::memcpy(ct.data() + body_off, s.data.data(), s.data.size());
            if (s.decrypted) {
                size_t enc_start = body_off;
                size_t enc_len =
                    std::min(s.data.size(), plain_len - std::min(plain_len,
                                                                 body_off));
                if (body_off < plain_len && enc_len > 0) {
                    crypto::aesGcmCtrAtOffset(
                        rxCtrAes_, nonce, enc_start,
                        ByteSpan(ct).subspan(enc_start, enc_len));
                    cycles += m.aesCtrPerByte * static_cast<double>(enc_len);
                }
            }
        }

        rxGcm_.start(nonce, ByteView(rxHdrBuf_.data(), kHeaderSize));
        Bytes plain(plain_len);
        rxGcm_.decryptUpdate(ByteView(ct).subspan(0, plain_len), plain);
        cycles += m.aesGcmDecryptPerByte * static_cast<double>(plain_len);
        bool ok = rxGcm_.checkTag(ByteView(ct).subspan(plain_len, kTagSize));
        if (!ok) {
            conn_.core().charge(cycles);
            count(&TlsStats::tagFailures);
            rxError_ = true;
            return;
        }
        // Substitute the recovered plaintext back into the slices.
        for (Slice &s : rxSlices_) {
            size_t body_off = s.recOff - kHeaderSize;
            size_t cp = std::min(s.data.size(),
                                 plain_len > body_off ? plain_len - body_off
                                                      : 0);
            if (cp > 0)
                std::memcpy(s.data.data(), plain.data() + body_off, cp);
        }
    }
    conn_.core().charge(cycles);

    // Deliver the plaintext body, preserving slice boundaries and
    // inner-offload metadata (crc/placement for NVMe-TLS).
    for (Slice &s : rxSlices_) {
        size_t body_off = s.recOff - kHeaderSize;
        if (body_off >= plain_len)
            break; // tag-only slice
        size_t cp = std::min(s.data.size(), plain_len - body_off);
        tcp::RxSegment out;
        out.streamOff = rxPlainOff_;
        out.data.assign(s.data.begin(), s.data.begin() + cp);
        out.meta = metaSlice(s.meta, 0, cp);
        rxPlainOff_ += cp;
        rxOut_.push_back(std::move(out));
    }

    if (recordObserver_)
        recordObserver_(rxRecSeq_, rxPlainOff_ - plain_len);
    count(&TlsStats::recordsRx);
    count(&TlsStats::plaintextBytesRx, plain_len);
    rxRecSeq_++;
    rxSlices_.clear();
    rxHdrBuf_.clear();
    rxHdrComplete_ = false;
    rxHave_ = 0;
}

void
TlsSocket::answerPendingResync(uint32_t recordStartSeq)
{
    if (!resyncPending_ || l5o_ == nullptr)
        return;
    if (recordStartSeq == resyncSeq_) {
        resyncPending_ = false;
        count(&TlsStats::rxResyncConfirmed);
        l5o_->resyncRxResp(resyncSeq_, true, rxRecSeq_);
    } else if (tcp::seqGt(recordStartSeq, resyncSeq_)) {
        resyncPending_ = false;
        l5o_->resyncRxResp(resyncSeq_, false, 0);
    }
}

void
TlsSocket::resyncRxReq(uint32_t tcpsn)
{
    count(&TlsStats::rxResyncRequests);
    resyncPending_ = true;
    resyncSeq_ = tcpsn;

    bool mid_record = rxHdrComplete_ || !rxHdrBuf_.empty();
    if (mid_record) {
        uint32_t cur = conn_.seqOfRcvStreamOff(rxRecStartOff_);
        if (tcpsn == cur) {
            // The NIC guessed the record currently being assembled.
            resyncPending_ = false;
            count(&TlsStats::rxResyncConfirmed);
            l5o_->resyncRxResp(tcpsn, true, rxRecSeq_);
        } else if (tcp::seqLt(tcpsn, cur)) {
            resyncPending_ = false;
            l5o_->resyncRxResp(tcpsn, false, 0);
        }
        // Otherwise: resolved when the next record starts.
        return;
    }
    // Idle between records: the next record starts at the next
    // unconsumed stream byte.
    answerPendingResync(conn_.seqOfRcvStreamOff(rxStreamConsumed_));
}

} // namespace anic::tls
