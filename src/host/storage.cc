#include "host/storage.hh"

#include "util/panic.hh"

namespace anic::host {

sim::Tick
NvmeDrive::serviceTime(size_t len, double gbps) const
{
    // Bandwidth model: bytes / (GB/s) in picoseconds.
    return static_cast<sim::Tick>(static_cast<double>(len) / gbps *
                                  1e-9 * static_cast<double>(sim::kSecond));
}

void
NvmeDrive::read(uint64_t offset, size_t len, std::function<void(Bytes)> done)
{
    bytesRead_ += len;
    sim::Tick start = std::max(sim_.now(), channelFreeAt_);
    sim::Tick finish = start + serviceTime(len, cfg_.readGBps);
    channelFreeAt_ = finish;
    uint64_t seed = cfg_.contentSeed;
    sim_.scheduleAt(finish + cfg_.accessLatency,
                    [offset, len, seed, done = std::move(done)] {
                        Bytes data(len);
                        fillDeterministic(data, seed, offset);
                        done(std::move(data));
                    });
}

void
NvmeDrive::write(uint64_t offset, size_t len, std::function<void()> done)
{
    (void)offset;
    bytesWritten_ += len;
    sim::Tick start = std::max(sim_.now(), channelFreeAt_);
    sim::Tick finish = start + serviceTime(len, cfg_.writeGBps);
    channelFreeAt_ = finish;
    sim_.scheduleAt(finish + cfg_.accessLatency,
                    [done = std::move(done)] { done(); });
}

File
FileStore::create(uint64_t size)
{
    File f;
    f.id = static_cast<uint32_t>(files_.size());
    f.size = size;
    f.lba = nextLba_;
    f.seed = driveSeed_; // contiguous extent: content == drive content
    // Align extents to 4 KiB like a real filesystem would.
    nextLba_ += (size + PageCache::kPageSize - 1) & ~(PageCache::kPageSize - 1);
    files_.push_back(f);
    return f;
}

const File &
FileStore::get(uint32_t id) const
{
    ANIC_ASSERT(id < files_.size(), "bad file id %u", id);
    return files_[id];
}

bool
PageCache::contains(uint32_t fileId, uint64_t offset, uint64_t len) const
{
    if (len == 0)
        return true;
    uint64_t first = offset / kPageSize;
    uint64_t last = (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last; p++) {
        if (map_.find(key(fileId, p)) == map_.end())
            return false;
    }
    return true;
}

void
PageCache::insert(uint32_t fileId, uint64_t offset, uint64_t len)
{
    if (len == 0 || capacityPages_ == 0)
        return;
    uint64_t first = offset / kPageSize;
    uint64_t last = (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last; p++) {
        Key k = key(fileId, p);
        auto it = map_.find(k);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            continue;
        }
        while (map_.size() >= capacityPages_) {
            Key victim = lru_.back();
            lru_.pop_back();
            map_.erase(victim);
        }
        lru_.push_front(k);
        map_[k] = lru_.begin();
    }
}

void
PageCache::touch(uint32_t fileId, uint64_t offset, uint64_t len)
{
    if (len == 0)
        return;
    uint64_t first = offset / kPageSize;
    uint64_t last = (offset + len - 1) / kPageSize;
    for (uint64_t p = first; p <= last; p++) {
        auto it = map_.find(key(fileId, p));
        if (it != map_.end())
            lru_.splice(lru_.begin(), lru_, it->second);
    }
}

} // namespace anic::host
