/**
 * @file
 * CPU core model.
 *
 * Software work is expressed as work items posted to a core. Items
 * run to completion in FIFO order; while an item executes, any code
 * it calls charges cycles via charge(). The core then stays busy for
 * the charged duration before starting the next item, which creates
 * the queueing/backpressure behaviour that makes throughput
 * CPU-bound when a core saturates.
 *
 * The "execute instantly, charge retroactively" scheme means a work
 * item's side effects (e.g. posting a response packet) conceptually
 * happen at item start; the inaccuracy is bounded by one item's
 * duration and is irrelevant at the millisecond horizons benches use.
 */

#ifndef ANIC_HOST_CORE_HH
#define ANIC_HOST_CORE_HH

#include <deque>
#include <functional>

#include "host/cycle_model.hh"
#include "sim/registry.hh"
#include "sim/simulator.hh"

namespace anic::host {

/** A single CPU core with cycle accounting. */
class Core
{
  public:
    /** Work items share the simulator's inline-capture budget: no heap
     *  allocation per posted item, oversized captures fail to compile. */
    using Work = sim::Simulator::Callback;

    /** @param scope registry scope to publish cycle accounting under
     *  ("<node>.cpu0"); a detached scope keeps the core unregistered. */
    Core(sim::Simulator &sim, const CycleModel &model, int id,
         sim::StatsScope scope = {})
        : sim_(sim), model_(model), id_(id), scope_(std::move(scope))
    {
        scope_.link("busyCycles", busyCycles_);
        scope_.link("busyNs", busyNs_);
        scope_.link("itemsExecuted", items_);
    }

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    int id() const { return id_; }
    const CycleModel &model() const { return model_; }
    sim::Simulator &simulator() { return sim_; }

    /** Enqueues a work item; runs when the core becomes free. */
    void post(Work w);

    /**
     * Enqueues ahead of pending items (softirq-style priority). Used
     * for device redrives so transmit progress is not starved behind
     * queued application work on a saturated core.
     */
    void postUrgent(Work w);

    /**
     * Charges @p cycles to the currently executing work item. Must be
     * called from inside a work item (i.e. during post() execution).
     * Calls from outside any item (e.g. test setup) accumulate into
     * the next idle gap and are still counted as busy time.
     */
    void charge(double cycles);

    /** Total cycles this core has been busy since construction. */
    double totalBusyCycles() const { return busyCycles_; }

    /** Busy time in ticks since construction. */
    sim::Tick totalBusyTicks() const { return busyTicks_; }

    /** Number of work items executed. */
    uint64_t itemsExecuted() const { return items_; }

    /** Current queue depth (for saturation checks in tests). */
    size_t queueDepth() const { return queue_.size(); }

    /** True while a work item is executing on this core. */
    bool executing() const { return executing_; }

    /** The core whose work item is currently executing (nullptr when
     *  no item runs). Lets layered code charge the right core without
     *  threading it through every call (single-threaded simulation). */
    static Core *current() { return sCurrent_; }

    /** Charges @p cycles to the executing core, if any. */
    static void
    chargeCurrent(double cycles)
    {
        if (sCurrent_ != nullptr)
            sCurrent_->charge(cycles);
    }

    /**
     * Utilization in [0,1] over a window: busy ticks accumulated
     * since @p sinceBusyTicks snapshot divided by the window length.
     */
    double
    utilization(sim::Tick sinceBusyTicks, sim::Tick window) const
    {
        if (window == 0)
            return 0.0;
        return static_cast<double>(busyTicks_ - sinceBusyTicks) /
               static_cast<double>(window);
    }

  private:
    void pump();
    void runOne();
    void schedulePump();

    sim::Simulator &sim_;
    const CycleModel &model_;
    int id_;

    std::deque<Work> queue_;
    bool executing_ = false;
    bool pumpScheduled_ = false;
    sim::Tick freeAt_ = 0;

    // thread_local: each JobRunner worker simulates its own world, so
    // "the currently executing core" is a per-thread notion.
    static thread_local Core *sCurrent_;

    double pendingCycles_ = 0.0; // charged by the current item
    sim::Gauge busyCycles_;
    sim::Tick busyTicks_ = 0;
    sim::Gauge busyNs_; ///< busyTicks_ in ns, for the registry
    sim::Counter items_;
    sim::StatsScope scope_;
};

} // namespace anic::host

#endif // ANIC_HOST_CORE_HH
