/**
 * @file
 * Storage substrate: the NVMe drive model, block-layer buffers, the
 * page cache, and a simple extent-based file store.
 *
 * The drive stands in for the paper's Optane DC P4800X (resides on
 * the workload-generator machine and is exported over NVMe-TCP):
 * fixed access latency plus a bandwidth cap of 2.67 GB/s for reads,
 * which is the bound that the C1 experiments saturate.
 */

#ifndef ANIC_HOST_STORAGE_HH
#define ANIC_HOST_STORAGE_HH

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "sim/simulator.hh"
#include "util/bytes.hh"

namespace anic::host {

/**
 * Destination memory for block I/O. The NIC's NVMe-TCP copy offload
 * DMA-writes directly into these buffers; the software path memcpys
 * into them from packet payloads.
 */
struct BlockBuffer
{
    explicit BlockBuffer(size_t n) : data(n, 0) {}
    Bytes data;
};

using BlockBufferPtr = std::shared_ptr<BlockBuffer>;

/**
 * NVMe SSD model. Content is synthetic: a read of byte range
 * [off, off+len) returns fillDeterministic(contentSeed, off), so any
 * consumer can verify payload integrity end-to-end without storing
 * terabytes.
 */
class NvmeDrive
{
  public:
    struct Config
    {
        double readGBps = 2.67;
        double writeGBps = 2.2;
        sim::Tick accessLatency = 10 * sim::kMicrosecond;
        uint64_t contentSeed = 0xd15c;
    };

    NvmeDrive(sim::Simulator &sim, Config cfg) : sim_(sim), cfg_(cfg) {}

    /** Reads @p len bytes at @p offset; completion carries the data. */
    void read(uint64_t offset, size_t len, std::function<void(Bytes)> done);

    /** Writes (content discarded; timing only). */
    void write(uint64_t offset, size_t len, std::function<void()> done);

    uint64_t bytesRead() const { return bytesRead_; }
    uint64_t bytesWritten() const { return bytesWritten_; }
    const Config &config() const { return cfg_; }

  private:
    sim::Tick serviceTime(size_t len, double gbps) const;

    sim::Simulator &sim_;
    Config cfg_;
    sim::Tick channelFreeAt_ = 0;
    uint64_t bytesRead_ = 0;
    uint64_t bytesWritten_ = 0;
};

/** A file in the synthetic file store. */
struct File
{
    uint32_t id = 0;
    uint64_t size = 0;
    uint64_t lba = 0;  ///< byte offset of the file's extent on the drive
    uint64_t seed = 0; ///< content seed (drive seed ^ per-file salt)
};

/**
 * Extent-based file store: maps file ids to contiguous drive ranges.
 * Stands in for the ext4 filesystem in the nginx experiments; files
 * are laid out contiguously and read-ahead is configured to the file
 * size (as in the paper), so each request maps to whole-extent reads.
 */
class FileStore
{
  public:
    explicit FileStore(uint64_t driveSeed) : driveSeed_(driveSeed) {}

    /** Creates a file of @p size bytes; returns a copy of its
     *  descriptor (the store may reallocate on later creates). */
    File create(uint64_t size);

    const File &get(uint32_t id) const;
    size_t count() const { return files_.size(); }

  private:
    uint64_t driveSeed_;
    uint64_t nextLba_ = 0;
    std::vector<File> files_;
};

/**
 * LRU page cache (4 KiB pages). Configured per experiment: C1 runs
 * with a tiny capacity (every request misses and goes to the remote
 * drive), C2 is pre-warmed with every file resident.
 */
class PageCache
{
  public:
    static constexpr size_t kPageSize = 4096;

    explicit PageCache(size_t capacityBytes)
        : capacityPages_(capacityBytes / kPageSize)
    {
    }

    /** True if the whole byte range of @p fileId is resident. */
    bool contains(uint32_t fileId, uint64_t offset, uint64_t len) const;

    /** Inserts the byte range, evicting LRU pages as needed. */
    void insert(uint32_t fileId, uint64_t offset, uint64_t len);

    /** Marks the range most-recently-used (a hit). */
    void touch(uint32_t fileId, uint64_t offset, uint64_t len);

    size_t residentPages() const { return map_.size(); }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Records a lookup outcome (for hit-rate stats). */
    void
    recordLookup(bool hit)
    {
        if (hit)
            hits_++;
        else
            misses_++;
    }

  private:
    using Key = uint64_t; // fileId << 40 | pageIdx

    static Key
    key(uint32_t fileId, uint64_t pageIdx)
    {
        return (static_cast<uint64_t>(fileId) << 40) | pageIdx;
    }

    size_t capacityPages_;
    std::list<Key> lru_; // front = most recent
    std::unordered_map<Key, std::list<Key>::iterator> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace anic::host

#endif // ANIC_HOST_STORAGE_HH
