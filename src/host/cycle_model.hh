/**
 * @file
 * CPU cycle-cost model.
 *
 * The paper's evaluation runs on 2.0 GHz Xeon E5-2660 v4 servers and
 * reports results that are CPU-cycle-bound (cycles/request, busy
 * cores, single-core Gbps). This model substitutes for the real
 * machine: every software operation on the data path charges cycles
 * to the core it runs on.
 *
 * Constants are calibrated so the *fractions* the paper measures come
 * out in-band (see tests/calibration_test.cpp):
 *   - TLS 16 KiB record processing is 60-74% crypto (Fig. 2, Fig. 11);
 *   - NVMe-TCP 256 KiB request processing is 46-49% copy+CRC (Fig. 2);
 *   - copy costs grow ~4x once the working set spills out of the
 *     32 MiB LLC (Fig. 10, I/O depth >= 128 at 256 KiB).
 */

#ifndef ANIC_HOST_CYCLE_MODEL_HH
#define ANIC_HOST_CYCLE_MODEL_HH

#include <cstddef>
#include <cstdint>

#include "sim/simulator.hh"

namespace anic::host {

/** Cycle costs of the software data path. All values in CPU cycles. */
struct CycleModel
{
    /** Core clock in GHz (cycles per nanosecond). */
    double cpuGhz = 2.0;

    /** Last-level cache size; copies beyond this become DRAM-bound. */
    size_t llcBytes = 32ull << 20;

    // ---------------------------------------------------- per byte
    /** memcpy within the LLC (warm buffers). */
    double copyLlcPerByte = 0.12;
    /** memcpy when the working set exceeds the LLC. */
    double copyDramPerByte = 0.60;
    /** CRC32C with the SSE4.2 instruction (load-limited). */
    double crcPerByte = 0.40;
    /** AES-128-GCM encrypt with AES-NI + PCLMUL. */
    double aesGcmEncryptPerByte = 1.55;
    /** AES-128-GCM decrypt + authenticate. */
    double aesGcmDecryptPerByte = 1.70;
    /** Re-encrypt cost during partial-offload fallback (ciphertext
     *  reconstruction; CTR only, no GHASH). */
    double aesCtrPerByte = 0.90;

    // ---------------------------------------------------- per packet
    /** TCP/IP transmit path per segment (TSO amortizes most of it). */
    double tcpTxPerPacket = 320.0;
    /** TCP/IP receive path per data segment (softirq, reassembly). */
    double tcpRxPerPacket = 1050.0;
    /** Pure-ACK receive processing (GRO coalesces these heavily). */
    double tcpAckRxPerPacket = 150.0;
    /** NIC driver descriptor handling, transmit. */
    double driverTxPerPacket = 100.0;
    /** NIC driver descriptor handling, receive (per packet; charged
     *  once per completion-queue entry). */
    double driverRxPerPacket = 130.0;
    /** MSI-X interrupt entry/exit + NAPI poll setup, charged once per
     *  interrupt fired. With per-packet interrupts (the default, no
     *  coalescing) interruptCost + driverRxPerPacket equals the 250
     *  cycles/pkt the pre-multi-queue model charged, so calibration
     *  is unchanged; coalescing amortizes this term. */
    double interruptCost = 120.0;

    // ------------------------------------------------- per operation
    /** Syscall entry/exit + socket locking, per send/recv call. */
    double syscallCost = 600.0;
    /** kTLS record framing/bookkeeping, per record. */
    double tlsRecordCost = 400.0;
    /** kTLS sendfile non-zero-copy: per-record encrypt-buffer
     *  allocation (the cost our zc offload eliminates). */
    double tlsTxAllocPerRecord = 550.0;
    /** NVMe-TCP + block layer per I/O request (submit + complete). */
    double nvmeRequestCost = 16000.0;
    /** NVMe-TCP PDU header processing, per PDU. */
    double nvmePduCost = 300.0;
    /** HTTP server per request (parse, file lookup, response hdr). */
    double httpRequestCost = 4500.0;
    /** KV store per request (parse, index lookup). */
    double kvRequestCost = 3000.0;
    /** Page-cache lookup/insert per 4 KiB page touched. */
    double pageCachePer4k = 120.0;
    /** Software resync-handling upcall (l5o bookkeeping). */
    double resyncUpcallCost = 350.0;

    /** Copy cost per byte for a given working-set estimate. */
    double
    copyPerByte(size_t workingSetBytes) const
    {
        return workingSetBytes > llcBytes ? copyDramPerByte : copyLlcPerByte;
    }

    /** Converts a cycle count to simulator ticks (picoseconds). */
    sim::Tick
    cyclesToTicks(double cycles) const
    {
        return static_cast<sim::Tick>(cycles * 1000.0 / cpuGhz);
    }

    /** Converts ticks to cycles. */
    double
    ticksToCycles(sim::Tick t) const
    {
        return static_cast<double>(t) * cpuGhz / 1000.0;
    }
};

} // namespace anic::host

#endif // ANIC_HOST_CYCLE_MODEL_HH
