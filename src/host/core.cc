#include "host/core.hh"

#include "util/panic.hh"

namespace anic::host {

thread_local Core *Core::sCurrent_ = nullptr;

void
Core::post(Work w)
{
    queue_.push_back(std::move(w));
    schedulePump();
}

void
Core::postUrgent(Work w)
{
    queue_.push_front(std::move(w));
    schedulePump();
}

void
Core::schedulePump()
{
    if (!pumpScheduled_ && !executing_) {
        pumpScheduled_ = true;
        sim::Tick when = std::max(sim_.now(), freeAt_);
        sim_.scheduleAt(when, [this] { pump(); });
    }
}

void
Core::charge(double cycles)
{
    ANIC_ASSERT(cycles >= 0.0);
    if (executing_) {
        pendingCycles_ += cycles;
        return;
    }
    // Charged from outside a work item (e.g. timer wheels in tests):
    // account it as immediate busy time.
    sim::Tick dur = model_.cyclesToTicks(cycles);
    busyCycles_ += cycles;
    busyTicks_ += dur;
    busyNs_.set(static_cast<double>(busyTicks_) / sim::kNanosecond);
    freeAt_ = std::max(sim_.now(), freeAt_) + dur;
}

void
Core::pump()
{
    pumpScheduled_ = false;
    if (executing_ || queue_.empty())
        return;
    if (sim_.now() < freeAt_) {
        pumpScheduled_ = true;
        sim_.scheduleAt(freeAt_, [this] { pump(); });
        return;
    }
    runOne();
}

void
Core::runOne()
{
    Work w = std::move(queue_.front());
    queue_.pop_front();
    executing_ = true;
    Core *prev = sCurrent_;
    sCurrent_ = this;
    pendingCycles_ = 0.0;
    w();
    sCurrent_ = prev;
    executing_ = false;
    items_++;

    sim::Tick dur = model_.cyclesToTicks(pendingCycles_);
    busyCycles_ += pendingCycles_;
    busyTicks_ += dur;
    busyNs_.set(static_cast<double>(busyTicks_) / sim::kNanosecond);
    freeAt_ = sim_.now() + dur;
    pendingCycles_ = 0.0;

    if (!queue_.empty()) {
        pumpScheduled_ = true;
        sim_.scheduleAt(freeAt_, [this] { pump(); });
    }
}

} // namespace anic::host
