#include "nvmetcp/host_queue.hh"

#include <algorithm>

#include "util/panic.hh"

namespace anic::nvmetcp {

NvmeHostQueue::NvmeHostQueue(tcp::StreamSocket &sock, WireConfig wc,
                             NvmeOffloadConfig ocfg, NvmeHostStats *aggregate)
    : sock_(sock), wc_(wc), ocfg_(ocfg), assembler_(wc), aggregate_(aggregate)
{
    sock_.setOnReadable([this] { onReadable(); });
    sock_.setOnWritable([this] { flushSendQueue(); });
}

NvmeHostQueue::~NvmeHostQueue()
{
    if (l5o_ != nullptr)
        l5o_->destroy();
}

void
NvmeHostQueue::enableOffload(core::OffloadDevice &dev,
                             tcp::TcpConnection &conn)
{
    ANIC_ASSERT(l5o_ == nullptr && tlsSock_ == nullptr);
    conn_ = &conn;
    if (!ocfg_.crcRx && !ocfg_.copyRx && !ocfg_.crcTx)
        return;

    NvmeStaticState st(wc_);
    unsigned dirs = ((ocfg_.crcRx || ocfg_.copyRx) ? core::kL5Rx : 0u) |
                    (ocfg_.crcTx ? core::kL5Tx : 0u);
    if (ocfg_.crcTx)
        conn.setOnAcked([this](uint32_t una) { txMap_.trimAcked(una); });
    l5o_ = dev.l5oCreate(conn, st, dirs, this);
    if (dirs & core::kL5Rx)
        rxEngine_ = static_cast<NvmeRxEngine *>(l5o_->rxEngine());
    if (ocfg_.crcTx)
        conn.setTxOffloadCtx(l5o_->txCtxId());
}

void
NvmeHostQueue::enableOffloadOverTls(tls::TlsSocket &tlsSock)
{
    ANIC_ASSERT(l5o_ == nullptr && tlsSock_ == nullptr);
    tlsSock_ = &tlsSock;
    if (!ocfg_.crcRx && !ocfg_.copyRx)
        return;
    ANIC_ASSERT(!ocfg_.crcTx,
                "tx CRC offload over TLS is not composed (see DESIGN.md)");

    core::L5Offload *tls_l5o = tlsSock.offload();
    ANIC_ASSERT(tls_l5o != nullptr && tls_l5o->rxEngine() != nullptr,
                "TLS rx offload must be enabled before composing NVMe");
    tlsRxEngine_ = dynamic_cast<tls::TlsRxEngine *>(tls_l5o->rxEngine());
    ANIC_ASSERT(tlsRxEngine_ != nullptr);

    auto eng = std::make_unique<NvmeRxEngine>(wc_);
    rxEngine_ = eng.get();
    host::Core *core = &sock_.core();
    tlsRxEngine_->installInner(
        std::move(eng),
        [this, core](uint64_t reqId, uint64_t recIdx, uint32_t recOff) {
            core->post([this, core, reqId, recIdx, recOff] {
                core->charge(core->model().resyncUpcallCost);
                count(&NvmeHostStats::resyncRequests);
                resyncPending_ = true;
                resyncReqId_ = reqId;
                resyncPlainValid_ = false;
                innerAnchorPending_ = true;
                innerAnchorRecIdx_ = recIdx;
                innerAnchorRecOff_ = recOff;
                // Already behind us?
                if (tlsSock_->nextRxRecordSeq() > recIdx) {
                    innerAnchorPending_ = false;
                    resyncPending_ = false;
                    tlsRxEngine_->innerResyncResponse(reqId, false, 0);
                }
            });
        },
        /*plaintextPos=*/0, /*innerMsgIdx=*/0);

    tlsSock.setRecordObserver([this](uint64_t recIdx, uint64_t plainOff) {
        handleInnerAnchor(recIdx, plainOff);
    });
}

void
NvmeHostQueue::handleInnerAnchor(uint64_t recIdx, uint64_t plainOff)
{
    if (!innerAnchorPending_)
        return;
    if (recIdx == innerAnchorRecIdx_) {
        innerAnchorPending_ = false;
        resyncPlainOff_ = plainOff + innerAnchorRecOff_;
        resyncPlainValid_ = true;
        checkPendingResync();
    } else if (recIdx > innerAnchorRecIdx_) {
        innerAnchorPending_ = false;
        resyncPending_ = false;
        tlsRxEngine_->innerResyncResponse(resyncReqId_, false, 0);
    }
}

const nic::FsmStats *
NvmeHostQueue::rxFsmStats() const
{
    if (tlsRxEngine_ != nullptr)
        return tlsRxEngine_->innerFsmStats();
    return l5o_ != nullptr ? l5o_->rxFsmStats() : nullptr;
}

uint16_t
NvmeHostQueue::allocCid()
{
    for (;;) {
        uint16_t cid = nextCid_++;
        if (nextCid_ == 0)
            nextCid_ = 1;
        if (requests_.find(cid) == requests_.end())
            return cid;
    }
}

void
NvmeHostQueue::enqueuePdu(Bytes pdu, bool trackForResync)
{
    SendEntry e;
    e.bytes = std::move(pdu);
    e.track = trackForResync;
    sendq_.push_back(std::move(e));
    flushSendQueue();
}

void
NvmeHostQueue::flushSendQueue()
{
    while (!sendq_.empty()) {
        SendEntry &e = sendq_.front();
        if (e.track && !e.added) {
            // Register the message where its first byte will actually
            // land in the stream (now, not at enqueue time).
            ANIC_ASSERT(conn_ != nullptr);
            txMap_.add(conn_->sndNextByteSeq(),
                       static_cast<uint32_t>(e.bytes.size()), txMsgIdx_++,
                       e.bytes);
            e.added = true;
        } else if (!e.track && !e.added && conn_ != nullptr &&
                   l5o_ != nullptr && l5o_->txCtxId() != 0) {
            // All stream messages must be tracked when a tx context
            // exists, so framing recovery can cross any message.
            txMap_.add(conn_->sndNextByteSeq(),
                       static_cast<uint32_t>(e.bytes.size()), txMsgIdx_++,
                       e.bytes);
            e.added = true;
        }
        ByteView rest = ByteView(e.bytes).subspan(sendqOff_);
        size_t acc = sock_.send(rest);
        sendqOff_ += acc;
        if (sendqOff_ < e.bytes.size())
            return; // transport full; resume on writable
        sendq_.pop_front();
        sendqOff_ = 0;
    }
}

void
NvmeHostQueue::read(uint64_t slba, uint32_t len, ReadDone done)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    uint16_t cid = allocCid();
    Request req;
    req.opcode = kOpRead;
    req.slba = slba;
    req.len = len;
    req.buffer = std::make_shared<host::BlockBuffer>(len);
    req.readDone = std::move(done);
    outstandingBytes_ += len;

    if (ocfg_.copyRx && rxEngine_ != nullptr) {
        // l5o_add_rr_state: tell the NIC where responses belong.
        rxEngine_->addRrState(cid, req.buffer);
    }
    requests_.emplace(cid, std::move(req));

    CmdCapsule cmd;
    cmd.cid = cid;
    cmd.opcode = kOpRead;
    cmd.slba = slba;
    cmd.length = len;
    enqueuePdu(buildCmdCapsule(wc_, cmd), ocfg_.crcTx);
}

void
NvmeHostQueue::write(uint64_t slba, uint32_t len, uint64_t contentSeed,
                     WriteDone done)
{
    issueDataOutCmd(kOpWrite, slba, len, contentSeed, std::move(done));
}

void
NvmeHostQueue::flush(WriteDone done)
{
    issueDataOutCmd(kOpFlush, 0, 0, 0, std::move(done));
}

void
NvmeHostQueue::compare(uint64_t slba, uint32_t len, uint64_t contentSeed,
                       WriteDone done)
{
    issueDataOutCmd(kOpCompare, slba, len, contentSeed, std::move(done));
}

void
NvmeHostQueue::issueDataOutCmd(uint8_t opcode, uint64_t slba, uint32_t len,
                               uint64_t contentSeed, WriteDone done)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    uint16_t cid = allocCid();
    Request req;
    req.opcode = opcode;
    req.slba = slba;
    req.len = len;
    req.contentSeed = contentSeed;
    req.writeDone = std::move(done);
    outstandingBytes_ += len;
    requests_.emplace(cid, std::move(req));

    CmdCapsule cmd;
    cmd.cid = cid;
    cmd.opcode = opcode;
    cmd.slba = slba;
    cmd.length = len;
    enqueuePdu(buildCmdCapsule(wc_, cmd), ocfg_.crcTx);
    // The payload stays queued until the target grants R2T credit
    // (NVMe/TCP §3.3.2.2); data-less commands complete on the
    // response capsule alone.
}

void
NvmeHostQueue::onR2t(const R2tHdr &r2t)
{
    count(&NvmeHostStats::r2tPdusRx);
    auto it = requests_.find(r2t.cid);
    if (it == requests_.end())
        return; // stale credit for a completed/failed command
    Request &req = it->second;

    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    uint32_t off = r2t.r2tOffset;
    uint32_t end = static_cast<uint32_t>(
        std::min<uint64_t>(static_cast<uint64_t>(r2t.r2tOffset) +
                               r2t.r2tLength,
                           req.len));
    while (off < end) {
        uint32_t n = static_cast<uint32_t>(
            std::min<size_t>(wc_.maxDataPerPdu, end - off));
        Bytes data(n);
        fillDeterministic(data, req.contentSeed, req.slba + off);
        DataPduHdr dh;
        dh.cid = r2t.cid;
        dh.dataOffset = off;
        dh.dataLen = n;
        // Copy user data into the PDU; compute the digest in software
        // unless the NIC fills it.
        core.charge(m.copyLlcPerByte * n +
                    (wc_.dataDigest && !ocfg_.crcTx ? m.crcPerByte * n : 0) +
                    m.nvmePduCost);
        enqueuePdu(buildDataPdu(wc_, kPduH2CData, dh, data,
                                /*fillDdgst=*/!ocfg_.crcTx),
                   ocfg_.crcTx);
        off += n;
    }
}

void
NvmeHostQueue::onReadable()
{
    while (sock_.readable()) {
        tcp::RxSegment seg = sock_.pop();
        if (dead_) {
            (void)seg;
            continue;
        }
        assembler_.ingest(std::move(seg),
                          [this](RxPdu &&pdu) { onPdu(std::move(pdu)); });
        if (assembler_.error()) {
            // PDU framing lost (corrupted common header). Mirror a
            // real initiator's fatal-transport-error handling: fail
            // every outstanding command and go quiescent, instead of
            // asserting, so impairment fuzzing can corrupt streams.
            dead_ = true;
            failAllOutstanding();
        }
    }
    checkPendingResync();
}

void
NvmeHostQueue::failAllOutstanding()
{
    std::vector<uint16_t> cids;
    cids.reserve(requests_.size());
    for (const auto &[cid, req] : requests_)
        cids.push_back(cid);
    // Issue order, not hash order: completion callbacks can issue new
    // commands, and the replay must be identical across processes.
    std::sort(cids.begin(), cids.end());
    for (uint16_t cid : cids) {
        auto it = requests_.find(cid);
        if (it == requests_.end())
            continue;
        it->second.failed = true;
        completeRequest(cid, false);
    }
}

void
NvmeHostQueue::onPdu(RxPdu &&pdu)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    core.charge(m.nvmePduCost);

    if (wc_.headerDigest) {
        core.charge(m.crcPerByte * pdu.ch.hlen);
        if (!verifyHdgst(wc_, pdu.bytes, pdu.ch)) {
            // Fatal transport error: the specific header (cid, data
            // offset) cannot be trusted, so nothing in this PDU can
            // be attributed to a command.
            dead_ = true;
            failAllOutstanding();
            return;
        }
    }

    if (pdu.ch.type == kPduC2HData) {
        count(&NvmeHostStats::dataPdusRx);
        DataPduHdr dh = parseDataPduHdr(pdu.bytes);
        auto it = requests_.find(dh.cid);
        if (it == requests_.end())
            return; // stale / unknown capsule
        Request &req = it->second;

        size_t pdo = pdu.ch.pdo;
        ByteView data = ByteView(pdu.bytes).subspan(pdo, dh.dataLen);

        // ---- copy (placement offload skips NIC-placed ranges)
        std::vector<net::PlacedRange> placed;
        for (const PduSlice &s : pdu.slices) {
            for (const net::PlacedRange &r : s.placed)
                placed.push_back(r); // already PDU-relative
        }
        std::sort(placed.begin(), placed.end(),
                  [](const net::PlacedRange &a, const net::PlacedRange &b) {
                      return a.payloadOff < b.payloadOff;
                  });
        uint64_t cursor = pdo;
        uint64_t data_end = pdo + dh.dataLen;
        double copied = 0;
        uint64_t placed_bytes = 0;
        auto copyRange = [&](uint64_t from, uint64_t to) {
            if (from >= to)
                return;
            uint64_t dst = dh.dataOffset + (from - pdo);
            if (dst + (to - from) <= req.buffer->data.size()) {
                std::memcpy(req.buffer->data.data() + dst,
                            pdu.bytes.data() + from, to - from);
            }
            copied += static_cast<double>(to - from);
        };
        for (const net::PlacedRange &r : placed) {
            uint64_t ps = std::max<uint64_t>(r.payloadOff, pdo);
            uint64_t pe = std::min<uint64_t>(r.payloadOff + r.len, data_end);
            if (ps >= pe)
                continue;
            copyRange(cursor, ps);
            placed_bytes += pe - ps;
            cursor = std::max(cursor, pe);
        }
        copyRange(cursor, data_end);
        if (req.opcode != kOpRead)
            copied = 0; // writes have no inbound payload
        core.charge(m.copyPerByte(outstandingBytes_) * copied);
        count(&NvmeHostStats::bytesCopied, static_cast<uint64_t>(copied));
        count(&NvmeHostStats::bytesPlaced, placed_bytes);

        // ---- data digest
        if (wc_.dataDigest && dh.dataLen > 0) {
            bool skip = ocfg_.crcRx && pdu.digestFullyOffloaded();
            if (skip) {
                count(&NvmeHostStats::crcSkipped);
            } else {
                count(&NvmeHostStats::crcSoftware);
                core.charge(m.crcPerByte * dh.dataLen);
                uint32_t wire = static_cast<uint32_t>(
                    getLe32(pdu.bytes.data() + data_end));
                if (crypto::Crc32c::compute(data) != wire) {
                    req.failed = true;
                    count(&NvmeHostStats::crcFailures);
                }
            }
        }
        req.received += dh.dataLen;
        return;
    }

    if (pdu.ch.type == kPduR2T) {
        onR2t(parseR2tHdr(pdu.bytes));
        return;
    }

    if (pdu.ch.type == kPduCapsuleResp) {
        RespCapsule resp = parseRespCapsule(pdu.bytes);
        completeRequest(resp.cid, resp.status == 0);
        return;
    }
    // Hosts don't expect other PDU types.
}

void
NvmeHostQueue::completeRequest(uint16_t cid, bool ok)
{
    auto it = requests_.find(cid);
    if (it == requests_.end())
        return;
    Request req = std::move(it->second);
    requests_.erase(it);

    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);
    outstandingBytes_ -= req.len;

    if (ocfg_.copyRx && rxEngine_ != nullptr)
        rxEngine_->delRrState(cid); // l5o_del_rr_state

    bool success = ok && !req.failed &&
                   (req.opcode != kOpRead || req.received == req.len);
    if (!success)
        count(&NvmeHostStats::failures);
    if (req.opcode == kOpRead) {
        count(&NvmeHostStats::readsCompleted);
        if (req.readDone)
            req.readDone(success, std::move(req.buffer));
    } else {
        count(req.opcode == kOpFlush     ? &NvmeHostStats::flushesCompleted
              : req.opcode == kOpCompare ? &NvmeHostStats::comparesCompleted
                                         : &NvmeHostStats::writesCompleted);
        if (req.writeDone)
            req.writeDone(success);
    }
}

// ------------------------------------------------------------- resync

void
NvmeHostQueue::checkPendingResync()
{
    if (!resyncPending_ || !resyncPlainValid_)
        return;
    uint64_t cur = assembler_.midPdu() ? assembler_.curPduStartOff()
                                       : assembler_.streamConsumed();
    bool ok;
    if (cur == resyncPlainOff_) {
        ok = true;
    } else if (cur > resyncPlainOff_) {
        ok = false;
    } else {
        return; // not there yet
    }
    resyncPending_ = false;
    resyncPlainValid_ = false;
    if (ok)
        count(&NvmeHostStats::resyncConfirmed);
    if (tlsRxEngine_ != nullptr) {
        tlsRxEngine_->innerResyncResponse(resyncReqId_, ok, 0);
    } else if (l5o_ != nullptr) {
        // Confirm with software's PDU count: the NIC renumbers its
        // messages from this index, and message identity across
        // mid-message resumes rides on that numbering staying
        // consistent with what the engine saw before the gap.
        l5o_->resyncRxResp(resyncSeq_, ok, assembler_.pdusDelivered());
    }
}

std::optional<core::L5pCallbacks::TxMsgState>
NvmeHostQueue::getTxMsgState(uint32_t tcpsn)
{
    const core::TxMsgTracker::Entry *e = txMap_.find(tcpsn);
    if (e == nullptr)
        return std::nullopt;
    TxMsgState st;
    st.msgStartSeq = e->startSeq;
    st.msgIdx = e->msgIdx;
    uint32_t n = tcpsn - e->startSeq;
    st.rebuild.assign(e->bytes.begin(), e->bytes.begin() + n);
    return st;
}

void
NvmeHostQueue::resyncRxReq(uint32_t tcpsn)
{
    ANIC_ASSERT(conn_ != nullptr);
    count(&NvmeHostStats::resyncRequests);
    resyncPending_ = true;
    resyncSeq_ = tcpsn; // echoed in the response (stale-answer guard)
    // Translate the sequence number into our stream-offset space.
    uint64_t consumed = assembler_.streamConsumed();
    int64_t delta = static_cast<int32_t>(
        tcpsn - conn_->seqOfRcvStreamOff(consumed));
    resyncPlainOff_ = consumed + delta;
    resyncPlainValid_ = true;
    checkPendingResync();
}

} // namespace anic::nvmetcp
