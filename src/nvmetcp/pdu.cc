#include "nvmetcp/pdu.hh"

#include "util/panic.hh"

namespace anic::nvmetcp {

uint8_t
hlenForType(uint8_t type)
{
    switch (type) {
      case kPduCapsuleCmd:
        return kCmdHdrSize;
      case kPduCapsuleResp:
        return kRespHdrSize;
      case kPduH2CData:
      case kPduC2HData:
        return kDataHdrSize;
      case kPduR2T:
        return kR2tHdrSize;
      default:
        return 0;
    }
}

std::optional<CommonHdr>
parseCommonHdr(ByteView h, size_t maxPdu)
{
    if (h.size() < kCommonHdrSize)
        return std::nullopt;
    CommonHdr ch;
    ch.type = h[0];
    ch.flags = h[1];
    ch.hlen = h[2];
    ch.pdo = h[3];
    ch.plen = static_cast<uint32_t>(getLe32(h.data() + 4));

    uint8_t expect_hlen = hlenForType(ch.type);
    if (expect_hlen == 0 || ch.hlen != expect_hlen)
        return std::nullopt;
    if (ch.flags & ~(kFlagHdgst | kFlagDdgst))
        return std::nullopt;
    uint8_t expect_pdo = ch.hlen + (ch.hasHdgst() ? kDigestSize : 0);
    if (ch.pdo != expect_pdo)
        return std::nullopt;
    uint32_t min_len = ch.pdo + (ch.hasDdgst() ? kDigestSize : 0);
    // Data-less PDUs carry no DDGST even when negotiated.
    if (ch.type == kPduCapsuleResp || ch.type == kPduCapsuleCmd ||
        ch.type == kPduR2T)
        min_len = ch.pdo;
    if (ch.plen < min_len || ch.plen > maxPdu)
        return std::nullopt;
    return ch;
}

namespace {

Bytes
makeHeader(const WireConfig &wc, uint8_t type, uint8_t hlen, bool withData,
           uint32_t dataLen)
{
    uint8_t flags = 0;
    if (wc.headerDigest)
        flags |= kFlagHdgst;
    if (wc.dataDigest && withData)
        flags |= kFlagDdgst;
    uint8_t pdo = hlen + (wc.headerDigest ? kDigestSize : 0);
    uint32_t plen = pdo + dataLen +
                    ((wc.dataDigest && withData) ? kDigestSize : 0);
    if (!withData)
        plen = pdo;

    Bytes out(plen);
    out[0] = type;
    out[1] = flags;
    out[2] = hlen;
    out[3] = pdo;
    putLe32(out.data() + 4, plen);
    return out;
}

void
fillHdgst(const WireConfig &wc, Bytes &pdu, uint8_t hlen)
{
    if (!wc.headerDigest)
        return;
    uint32_t crc = crypto::Crc32c::compute(ByteView(pdu.data(), hlen));
    putLe32(pdu.data() + hlen, crc);
}

} // namespace

bool
verifyHdgst(const WireConfig &wc, ByteView pdu, const CommonHdr &ch)
{
    if (!wc.headerDigest)
        return true;
    if (pdu.size() < static_cast<size_t>(ch.hlen) + kDigestSize)
        return false;
    uint32_t wire =
        static_cast<uint32_t>(getLe32(pdu.data() + ch.hlen));
    return crypto::Crc32c::compute(ByteView(pdu.data(), ch.hlen)) == wire;
}

Bytes
buildCmdCapsule(const WireConfig &wc, const CmdCapsule &cmd)
{
    Bytes pdu = makeHeader(wc, kPduCapsuleCmd, kCmdHdrSize, false, 0);
    putLe16(pdu.data() + 8, cmd.cid);
    pdu[10] = cmd.opcode;
    putLe(pdu.data() + 12, cmd.slba, 8);
    putLe32(pdu.data() + 20, cmd.length);
    fillHdgst(wc, pdu, kCmdHdrSize);
    return pdu;
}

Bytes
buildRespCapsule(const WireConfig &wc, const RespCapsule &resp)
{
    Bytes pdu = makeHeader(wc, kPduCapsuleResp, kRespHdrSize, false, 0);
    putLe16(pdu.data() + 8, resp.cid);
    putLe16(pdu.data() + 10, resp.status);
    fillHdgst(wc, pdu, kRespHdrSize);
    return pdu;
}

Bytes
buildDataPdu(const WireConfig &wc, uint8_t type, const DataPduHdr &hdr,
             ByteView data, bool fillDdgst)
{
    ANIC_ASSERT(type == kPduC2HData || type == kPduH2CData);
    ANIC_ASSERT(data.size() <= wc.maxDataPerPdu);
    Bytes pdu = makeHeader(wc, type, kDataHdrSize, true,
                           static_cast<uint32_t>(data.size()));
    putLe16(pdu.data() + 8, hdr.cid);
    putLe32(pdu.data() + 12, hdr.dataOffset);
    putLe32(pdu.data() + 16, static_cast<uint32_t>(data.size()));
    fillHdgst(wc, pdu, kDataHdrSize);

    size_t pdo = kDataHdrSize + wc.digestLen();
    std::memcpy(pdu.data() + pdo, data.data(), data.size());
    if (wc.dataDigest && fillDdgst) {
        uint32_t crc = crypto::Crc32c::compute(data);
        putLe32(pdu.data() + pdo + data.size(), crc);
    }
    return pdu;
}

Bytes
buildR2tPdu(const WireConfig &wc, const R2tHdr &hdr)
{
    Bytes pdu = makeHeader(wc, kPduR2T, kR2tHdrSize, false, 0);
    putLe16(pdu.data() + 8, hdr.cid);
    putLe16(pdu.data() + 10, hdr.ttag);
    putLe32(pdu.data() + 12, hdr.r2tOffset);
    putLe32(pdu.data() + 16, hdr.r2tLength);
    fillHdgst(wc, pdu, kR2tHdrSize);
    return pdu;
}

CmdCapsule
parseCmdCapsule(ByteView pdu)
{
    CmdCapsule c;
    c.cid = getLe16(pdu.data() + 8);
    c.opcode = pdu[10];
    c.slba = getLe(pdu.data() + 12, 8);
    c.length = static_cast<uint32_t>(getLe32(pdu.data() + 20));
    return c;
}

RespCapsule
parseRespCapsule(ByteView pdu)
{
    RespCapsule r;
    r.cid = getLe16(pdu.data() + 8);
    r.status = getLe16(pdu.data() + 10);
    return r;
}

DataPduHdr
parseDataPduHdr(ByteView pdu)
{
    DataPduHdr d;
    d.cid = getLe16(pdu.data() + 8);
    d.dataOffset = static_cast<uint32_t>(getLe32(pdu.data() + 12));
    d.dataLen = static_cast<uint32_t>(getLe32(pdu.data() + 16));
    return d;
}

R2tHdr
parseR2tHdr(ByteView pdu)
{
    R2tHdr r;
    r.cid = getLe16(pdu.data() + 8);
    r.ttag = getLe16(pdu.data() + 10);
    r.r2tOffset = static_cast<uint32_t>(getLe32(pdu.data() + 12));
    r.r2tLength = static_cast<uint32_t>(getLe32(pdu.data() + 16));
    return r;
}

uint64_t
RxPdu::placedDataBytes() const
{
    uint64_t total = 0;
    for (const PduSlice &s : slices) {
        for (const net::PlacedRange &r : s.placed)
            total += r.len;
    }
    return total;
}

void
PduAssembler::ingest(const tcp::RxSegment &seg,
                     std::function<void(RxPdu &&)> sink)
{
    size_t off = 0;
    const size_t n = seg.data.size();
    while (off < n && !error_) {
        if (!hdrComplete_) {
            if (hdr8_.empty() && have_ == 0)
                pduStartOff_ = seg.streamOff + off;
            size_t need = kCommonHdrSize - hdr8_.size();
            size_t take = std::min(need, n - off);
            hdr8_.insert(hdr8_.end(), seg.data.begin() + off,
                         seg.data.begin() + off + take);
            off += take;
            have_ += take;
            consumed_ = seg.streamOff + off;
            if (hdr8_.size() < kCommonHdrSize)
                break;
            std::optional<CommonHdr> ch = parseCommonHdr(hdr8_, maxPdu_);
            if (!ch) {
                error_ = true;
                return;
            }
            cur_.ch = *ch;
            cur_.bytes.resize(ch->plen);
            std::memcpy(cur_.bytes.data(), hdr8_.data(), kCommonHdrSize);
            cur_.slices.clear();
            hdrComplete_ = true;
            continue;
        }

        size_t want = cur_.ch.plen - have_;
        size_t take = std::min(want, n - off);
        std::memcpy(cur_.bytes.data() + have_, seg.data.data() + off, take);

        PduSlice slice;
        slice.pduOff = have_;
        slice.len = take;
        // A chunk's digest counts as NIC-checked when the packet went
        // through the offload path and no digest that completed in it
        // was left uncovered; it passed unless a completed check
        // mismatched. Chunks with no completed digest are vacuously OK
        // (the verdict rides on the chunk holding the trailer).
        net::VerifyOutcome v = seg.meta.verifyOf(net::L5Kind::Nvme);
        slice.digestChecked =
            seg.meta.offloaded && v != net::VerifyOutcome::Incomplete;
        slice.digestOk =
            slice.digestChecked && v != net::VerifyOutcome::Failed;
        for (const net::PlacedRange &r : seg.meta.placed) {
            // Convert segment-relative placement to PDU-relative.
            uint64_t s = std::max<uint64_t>(r.payloadOff, off);
            uint64_t e = std::min<uint64_t>(r.payloadOff + r.len, off + take);
            if (s < e) {
                slice.placed.push_back(net::PlacedRange{
                    static_cast<uint32_t>(have_ + (s - off)),
                    static_cast<uint32_t>(e - s)});
            }
        }
        cur_.slices.push_back(std::move(slice));

        have_ += take;
        off += take;
        consumed_ = seg.streamOff + off;
        if (have_ == cur_.ch.plen) {
            RxPdu done = std::move(cur_);
            cur_ = RxPdu{};
            hdr8_.clear();
            hdrComplete_ = false;
            have_ = 0;
            pduIdx_++;
            sink(std::move(done));
        }
    }
}

} // namespace anic::nvmetcp
