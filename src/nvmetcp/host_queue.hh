/**
 * @file
 * NVMe-TCP host (initiator) queue: maps read/write/flush/compare
 * block requests to capsules over a StreamSocket. Data-out commands
 * (write, compare) are R2T-gated: H2CData PDUs are emitted only for
 * ranges the target has invited. Implements the paper's offloads:
 *
 *  - rx CRC offload: skip software data-digest verification when the
 *    NIC checked every chunk of a capsule;
 *  - rx copy offload: skip copying payload ranges the NIC already
 *    placed into the destination block buffer (zero-copy receive);
 *  - tx CRC offload: send data PDUs with dummy digests for the NIC
 *    to fill, keeping per-capsule state for retransmit recovery;
 *  - resync: answers the NIC's PDU-header speculations, both for the
 *    plain-TCP transport (sequence-number anchors) and for the
 *    NVMe-TLS composition (record/offset anchors via the TLS layer).
 *
 * The transport is any StreamSocket: a TcpConnection (plain NVMe-TCP)
 * or a TlsSocket (NVMe-TLS, §5.3).
 */

#ifndef ANIC_NVMETCP_HOST_QUEUE_HH
#define ANIC_NVMETCP_HOST_QUEUE_HH

#include <unordered_map>

#include "core/offload_device.hh"
#include "core/tx_msg_tracker.hh"
#include "host/storage.hh"
#include "nvmetcp/nvme_engine.hh"
#include "nvmetcp/pdu.hh"
#include "tls/ktls.hh"

namespace anic::nvmetcp {

struct NvmeHostStats
{
    sim::Counter readsCompleted;
    sim::Counter writesCompleted;
    sim::Counter flushesCompleted;
    sim::Counter comparesCompleted;
    sim::Counter failures;
    sim::Counter dataPdusRx;
    sim::Counter r2tPdusRx;   ///< write credits granted by the target
    sim::Counter crcSkipped;  ///< capsules fully verified by the NIC
    sim::Counter crcSoftware; ///< capsules verified in software
    sim::Counter crcFailures;
    sim::Counter bytesPlaced; ///< payload the NIC DMA'd to buffers
    sim::Counter bytesCopied; ///< payload copied by software
    sim::Counter resyncRequests;
    sim::Counter resyncConfirmed;
};

class NvmeHostQueue : private core::L5pCallbacks
{
  public:
    /** @param aggregate optional owner-level stats (e.g. one per
     *  StorageService across its per-core queues) every count also
     *  lands in — that is what the registry publishes. */
    NvmeHostQueue(tcp::StreamSocket &sock, WireConfig wc,
                  NvmeOffloadConfig ocfg, NvmeHostStats *aggregate = nullptr);
    ~NvmeHostQueue() override;

    /**
     * Installs NIC offload contexts when the transport is a plain
     * TcpConnection (l5o_create on the flow).
     */
    void enableOffload(core::OffloadDevice &dev, tcp::TcpConnection &conn);

    /**
     * NVMe-TLS composition: installs the NVMe engines *inside* the
     * TLS socket's NIC engines ("NIC HW parsing starts from Ethernet,
     * and proceeds to parse TLS then NVMe-TCP").
     */
    void enableOffloadOverTls(tls::TlsSocket &tlsSock);

    using ReadDone = std::function<void(bool ok, host::BlockBufferPtr)>;
    using WriteDone = std::function<void(bool ok)>;

    /** Reads @p len bytes at byte address @p slba. */
    void read(uint64_t slba, uint32_t len, ReadDone done);

    /** Writes @p len deterministic bytes (seed/slba-addressed). Data
     *  is held back until the target grants R2T credit. */
    void write(uint64_t slba, uint32_t len, uint64_t contentSeed,
               WriteDone done);

    /** FLUSH: a data-less command fence. */
    void flush(WriteDone done);

    /** COMPARE: sends @p len deterministic bytes for the target to
     *  match against the addressed range (R2T-gated like a write). */
    void compare(uint64_t slba, uint32_t len, uint64_t contentSeed,
                 WriteDone done);

    const NvmeHostStats &stats() const { return stats_; }
    size_t outstanding() const { return requests_.size(); }
    uint64_t outstandingBytes() const { return outstandingBytes_; }

    /** True once PDU framing was lost (corrupted common header): all
     *  outstanding commands were failed and the queue is quiescent —
     *  the initiator-side analogue of a fatal transport error. */
    bool desynced() const { return dead_; }

    /** FSM stats of the rx offload (outer or inner), if any. */
    const nic::FsmStats *rxFsmStats() const;

  private:
    struct Request
    {
        uint8_t opcode = 0;
        uint64_t slba = 0;
        uint32_t len = 0;
        uint64_t contentSeed = 0; ///< data-out payload (write/compare)
        host::BlockBufferPtr buffer;
        ReadDone readDone;
        WriteDone writeDone;
        uint32_t received = 0;
        bool failed = false;
    };

    uint16_t allocCid();
    void issueDataOutCmd(uint8_t opcode, uint64_t slba, uint32_t len,
                         uint64_t contentSeed, WriteDone done);
    void onR2t(const R2tHdr &r2t);
    void enqueuePdu(Bytes pdu, bool trackForResync);
    void flushSendQueue();
    void failAllOutstanding();
    void onReadable();
    void onPdu(RxPdu &&pdu);
    void completeRequest(uint16_t cid, bool ok);
    void checkPendingResync();
    void handleInnerAnchor(uint64_t recIdx, uint64_t plainOff);

    // L5pCallbacks (plain-TCP transport).
    std::optional<TxMsgState> getTxMsgState(uint32_t tcpsn) override;
    void resyncRxReq(uint32_t tcpsn) override;

    /** Counts into the queue stats and the owner aggregate. */
    void
    count(sim::Counter NvmeHostStats::*m, uint64_t n = 1)
    {
        (stats_.*m) += n;
        if (aggregate_ != nullptr)
            (aggregate_->*m) += n;
    }

    tcp::StreamSocket &sock_;
    WireConfig wc_;
    NvmeOffloadConfig ocfg_;

    // Offload plumbing (exactly one of these is active).
    core::L5Offload *l5o_ = nullptr;            // plain TCP transport
    tcp::TcpConnection *conn_ = nullptr;        // for seq translation
    tls::TlsSocket *tlsSock_ = nullptr;         // TLS transport
    tls::TlsRxEngine *tlsRxEngine_ = nullptr;   // hosts our inner engine
    NvmeRxEngine *rxEngine_ = nullptr;          // whoever owns it

    std::unordered_map<uint16_t, Request> requests_;
    uint16_t nextCid_ = 1;
    uint64_t outstandingBytes_ = 0;

    struct SendEntry
    {
        Bytes bytes;
        bool track = false; ///< register in txMap_ when it enters TCP
        bool added = false;
    };
    std::deque<SendEntry> sendq_;
    size_t sendqOff_ = 0;

    PduAssembler assembler_;
    bool dead_ = false;
    core::TxMsgTracker txMap_;
    uint64_t txMsgIdx_ = 0;

    // Pending resync speculation (one outstanding).
    bool resyncPending_ = false;
    uint64_t resyncReqId_ = 0;   // inner (TLS) path only
    uint32_t resyncSeq_ = 0;     // plain path: TCP seq
    uint64_t resyncPlainOff_ = 0;
    bool resyncPlainValid_ = false;
    bool innerAnchorPending_ = false;
    uint64_t innerAnchorRecIdx_ = 0;
    uint32_t innerAnchorRecOff_ = 0;

    NvmeHostStats stats_;
    NvmeHostStats *aggregate_ = nullptr;
};

} // namespace anic::nvmetcp

#endif // ANIC_NVMETCP_HOST_QUEUE_HH
