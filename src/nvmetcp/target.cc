#include "nvmetcp/target.hh"

#include "host/core.hh"
#include "util/panic.hh"

namespace anic::nvmetcp {

NvmeTarget::NvmeTarget(tcp::StreamSocket &sock, host::NvmeDrive &drive,
                       WireConfig wc)
    : sock_(sock), drive_(drive), wc_(wc), assembler_(wc)
{
    sock_.setOnReadable([this] { onReadable(); });
    sock_.setOnWritable([this] { flush(); });
}

void
NvmeTarget::onReadable()
{
    while (sock_.readable()) {
        tcp::RxSegment seg = sock_.pop();
        if (dead_) {
            (void)seg; // drain and discard; the session is over
            continue;
        }
        assembler_.ingest(std::move(seg),
                          [this](RxPdu &&pdu) { onPdu(std::move(pdu)); });
        if (assembler_.error()) {
            // A corrupted common header destroyed PDU framing; a real
            // controller treats this as a fatal transport error and
            // kills the connection. Stop serving instead of asserting
            // so impairment fuzzing can exercise this path.
            dead_ = true;
        }
    }
}

void
NvmeTarget::onPdu(RxPdu &&pdu)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    core.charge(m.nvmePduCost);

    if (wc_.headerDigest) {
        core.charge(m.crcPerByte * pdu.ch.hlen);
        if (!verifyHdgst(wc_, pdu.bytes, pdu.ch)) {
            // Fatal transport error: a corrupted specific header
            // (cid, slba, data offset) must not reach the command
            // table.
            dead_ = true;
            return;
        }
    }

    switch (pdu.ch.type) {
      case kPduCapsuleCmd: {
        CmdCapsule cmd = parseCmdCapsule(pdu.bytes);
        if (cmd.opcode == kOpRead) {
            serveRead(cmd);
        } else {
            PendingWrite w;
            w.len = cmd.length;
            w.slba = cmd.slba;
            writes_[cmd.cid] = w;
            if (cmd.length == 0)
                finishWrite(cmd.cid);
        }
        return;
      }
      case kPduH2CData: {
        DataPduHdr dh = parseDataPduHdr(pdu.bytes);
        auto it = writes_.find(dh.cid);
        if (it == writes_.end())
            return;
        PendingWrite &w = it->second;
        // Verify the data digest in software (the generator machine
        // is not the device under test).
        if (wc_.dataDigest && dh.dataLen > 0) {
            ByteView data =
                ByteView(pdu.bytes).subspan(pdu.ch.pdo, dh.dataLen);
            core.charge(m.crcPerByte * dh.dataLen);
            uint32_t wire = static_cast<uint32_t>(
                getLe32(pdu.bytes.data() + pdu.ch.pdo + dh.dataLen));
            if (crypto::Crc32c::compute(data) != wire) {
                w.crcOk = false;
                stats_.crcFailures++;
            }
        }
        core.charge(m.copyPerByte(w.len) * dh.dataLen);
        w.received += dh.dataLen;
        if (w.received >= w.len)
            finishWrite(dh.cid);
        return;
      }
      default:
        return; // targets ignore response-type PDUs
    }
}

void
NvmeTarget::serveRead(const CmdCapsule &cmd)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    drive_.read(cmd.slba, cmd.length, [this, cmd, &core](Bytes data) {
        core.post([this, cmd, data = std::move(data)] {
            host::Core &c = sock_.core();
            const host::CycleModel &m = c.model();
            stats_.readsServed++;
            stats_.bytesRead += data.size();

            size_t off = 0;
            while (off < data.size()) {
                size_t n = std::min(wc_.maxDataPerPdu, data.size() - off);
                DataPduHdr dh;
                dh.cid = cmd.cid;
                dh.dataOffset = static_cast<uint32_t>(off);
                dh.dataLen = static_cast<uint32_t>(n);
                // Drive buffer -> PDU copy plus software digest.
                c.charge(m.copyPerByte(data.size()) * n +
                         (wc_.dataDigest ? m.crcPerByte * n : 0) +
                         m.nvmePduCost);
                enqueue(buildDataPdu(wc_, kPduC2HData, dh,
                                     ByteView(data).subspan(off, n),
                                     /*fillDdgst=*/true));
                off += n;
            }
            RespCapsule resp;
            resp.cid = cmd.cid;
            resp.status = 0;
            enqueue(buildRespCapsule(wc_, resp));
        });
    });
}

void
NvmeTarget::finishWrite(uint16_t cid)
{
    auto it = writes_.find(cid);
    ANIC_ASSERT(it != writes_.end());
    PendingWrite w = it->second;
    writes_.erase(it);

    drive_.write(w.slba, w.len, [this, cid, w] {
        sock_.core().post([this, cid, w] {
            stats_.writesServed++;
            stats_.bytesWritten += w.len;
            RespCapsule resp;
            resp.cid = cid;
            resp.status = w.crcOk ? 0 : 1;
            enqueue(buildRespCapsule(wc_, resp));
        });
    });
}

void
NvmeTarget::enqueue(Bytes pdu)
{
    sendq_.push_back(std::move(pdu));
    flush();
}

void
NvmeTarget::flush()
{
    while (!sendq_.empty()) {
        ByteView rest = ByteView(sendq_.front()).subspan(sendqOff_);
        size_t acc = sock_.send(rest);
        sendqOff_ += acc;
        if (sendqOff_ < sendq_.front().size())
            return;
        sendq_.pop_front();
        sendqOff_ = 0;
    }
}

} // namespace anic::nvmetcp
