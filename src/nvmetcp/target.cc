#include "nvmetcp/target.hh"

#include <algorithm>
#include <cstring>

#include "host/core.hh"
#include "util/panic.hh"

namespace anic::nvmetcp {

NvmeTarget::NvmeTarget(tcp::StreamSocket &sock, host::NvmeDrive &drive,
                       WireConfig wc)
    : sock_(sock), drive_(drive), wc_(wc), assembler_(wc)
{
    sock_.setOnReadable([this] { onReadable(); });
    sock_.setOnWritable([this] { flush(); });
}

NvmeTarget::~NvmeTarget()
{
    if (l5o_ != nullptr)
        l5o_->destroy();
}

void
NvmeTarget::enableOffload(core::OffloadDevice &dev, tcp::TcpConnection &conn,
                          NvmeOffloadConfig ocfg)
{
    ANIC_ASSERT(l5o_ == nullptr);
    conn_ = &conn;
    ocfg_ = ocfg;
    if (!ocfg_.crcRx && !ocfg_.copyRx && !ocfg_.crcTx)
        return;

    NvmeStaticState st(wc_);
    unsigned dirs = ((ocfg_.crcRx || ocfg_.copyRx) ? core::kL5Rx : 0u) |
                    (ocfg_.crcTx ? core::kL5Tx : 0u);
    if (ocfg_.crcTx)
        conn.setOnAcked([this](uint32_t una) { txMap_.trimAcked(una); });
    l5o_ = dev.l5oCreate(conn, st, dirs, this);
    if (dirs & core::kL5Rx)
        rxEngine_ = static_cast<NvmeRxEngine *>(l5o_->rxEngine());
    if (ocfg_.crcTx)
        conn.setTxOffloadCtx(l5o_->txCtxId());
}

const nic::FsmStats *
NvmeTarget::rxFsmStats() const
{
    return l5o_ != nullptr ? l5o_->rxFsmStats() : nullptr;
}

void
NvmeTarget::onReadable()
{
    while (sock_.readable()) {
        tcp::RxSegment seg = sock_.pop();
        if (dead_) {
            (void)seg; // drain and discard; the session is over
            continue;
        }
        assembler_.ingest(std::move(seg),
                          [this](RxPdu &&pdu) { onPdu(std::move(pdu)); });
        if (assembler_.error()) {
            // A corrupted common header destroyed PDU framing; a real
            // controller treats this as a fatal transport error and
            // kills the connection. Stop serving instead of asserting
            // so impairment fuzzing can exercise this path.
            dead_ = true;
        }
    }
    checkPendingResync();
}

void
NvmeTarget::onPdu(RxPdu &&pdu)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    core.charge(m.nvmePduCost);

    if (wc_.headerDigest) {
        core.charge(m.crcPerByte * pdu.ch.hlen);
        if (!verifyHdgst(wc_, pdu.bytes, pdu.ch)) {
            // Fatal transport error: a corrupted specific header
            // (cid, slba, data offset) must not reach the command
            // table.
            dead_ = true;
            return;
        }
    }

    switch (pdu.ch.type) {
      case kPduCapsuleCmd: {
        CmdCapsule cmd = parseCmdCapsule(pdu.bytes);
        if (cmd.opcode == kOpRead) {
            serveRead(cmd);
        } else {
            // Data-out (WRITE, COMPARE) or data-less (FLUSH) command.
            PendingWrite w;
            w.opcode = cmd.opcode;
            w.len = cmd.length;
            w.slba = cmd.slba;
            w.buffer = std::make_shared<host::BlockBuffer>(cmd.length);
            writes_[cmd.cid] = w;
            if (cmd.length == 0)
                finishWrite(cmd.cid);
            else
                issueR2t(cmd.cid);
        }
        return;
      }
      case kPduH2CData:
        onH2cData(pdu);
        return;
      default:
        return; // targets ignore response-type PDUs
    }
}

void
NvmeTarget::issueR2t(uint16_t cid)
{
    auto it = writes_.find(cid);
    ANIC_ASSERT(it != writes_.end());
    PendingWrite &w = it->second;
    uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(wc_.maxR2tWindow, w.len - w.granted));
    if (n == 0)
        return;

    if (w.granted == 0 && ocfg_.copyRx && rxEngine_ != nullptr) {
        // l5o_add_rr_state before the credit leaves: H2CData can
        // arrive any time after, and the NIC places it directly.
        rxEngine_->addRrState(cid, w.buffer);
    }

    R2tHdr r2t;
    r2t.cid = cid;
    r2t.ttag = nextTtag_++;
    r2t.r2tOffset = w.granted;
    r2t.r2tLength = n;
    w.granted += n;
    stats_.r2tsSent++;
    sock_.core().charge(sock_.core().model().nvmePduCost);
    enqueue(buildR2tPdu(wc_, r2t));
}

void
NvmeTarget::onH2cData(RxPdu &pdu)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();

    DataPduHdr dh = parseDataPduHdr(pdu.bytes);
    auto it = writes_.find(dh.cid);
    if (it == writes_.end())
        return; // stale / unknown capsule
    PendingWrite &w = it->second;

    size_t pdo = pdu.ch.pdo;

    // ---- copy (placement offload skips NIC-placed ranges)
    std::vector<net::PlacedRange> placed;
    for (const PduSlice &s : pdu.slices) {
        for (const net::PlacedRange &r : s.placed)
            placed.push_back(r); // already PDU-relative
    }
    std::sort(placed.begin(), placed.end(),
              [](const net::PlacedRange &a, const net::PlacedRange &b) {
                  return a.payloadOff < b.payloadOff;
              });
    uint64_t cursor = pdo;
    uint64_t data_end = pdo + dh.dataLen;
    uint64_t copied = 0;
    uint64_t placed_bytes = 0;
    auto copyRange = [&](uint64_t from, uint64_t to) {
        if (from >= to)
            return;
        uint64_t dst = dh.dataOffset + (from - pdo);
        if (dst + (to - from) <= w.buffer->data.size()) {
            std::memcpy(w.buffer->data.data() + dst,
                        pdu.bytes.data() + from, to - from);
        }
        copied += to - from;
    };
    for (const net::PlacedRange &r : placed) {
        uint64_t ps = std::max<uint64_t>(r.payloadOff, pdo);
        uint64_t pe = std::min<uint64_t>(r.payloadOff + r.len, data_end);
        if (ps >= pe)
            continue;
        copyRange(cursor, ps);
        placed_bytes += pe - ps;
        cursor = std::max(cursor, pe);
    }
    copyRange(cursor, data_end);
    core.charge(m.copyPerByte(w.len) * static_cast<double>(copied));
    stats_.h2cBytesCopied += copied;
    stats_.h2cBytesPlaced += placed_bytes;

    // ---- data digest
    if (wc_.dataDigest && dh.dataLen > 0) {
        bool skip = ocfg_.crcRx && pdu.digestFullyOffloaded();
        if (skip) {
            stats_.h2cDigestSkipped++;
        } else {
            stats_.h2cDigestSoftware++;
            core.charge(m.crcPerByte * dh.dataLen);
            ByteView data = ByteView(pdu.bytes).subspan(pdo, dh.dataLen);
            uint32_t wire = static_cast<uint32_t>(
                getLe32(pdu.bytes.data() + data_end));
            if (crypto::Crc32c::compute(data) != wire) {
                w.digestOk = false;
                stats_.digestFailures++;
            }
        }
    }

    w.received += dh.dataLen;
    if (w.received >= w.len)
        finishWrite(dh.cid);
    else if (w.received >= w.granted)
        issueR2t(dh.cid); // previous window exhausted; grant the next
}

void
NvmeTarget::serveRead(const CmdCapsule &cmd)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    drive_.read(cmd.slba, cmd.length, [this, cmd, &core](Bytes data) {
        core.post([this, cmd, data = std::move(data)] {
            host::Core &c = sock_.core();
            const host::CycleModel &m = c.model();
            stats_.readsServed++;
            stats_.bytesRead += data.size();

            size_t off = 0;
            while (off < data.size()) {
                size_t n = std::min(wc_.maxDataPerPdu, data.size() - off);
                DataPduHdr dh;
                dh.cid = cmd.cid;
                dh.dataOffset = static_cast<uint32_t>(off);
                dh.dataLen = static_cast<uint32_t>(n);
                // Drive buffer -> PDU copy; compute the digest in
                // software unless the NIC tx offload fills it.
                c.charge(m.copyPerByte(data.size()) * n +
                         (wc_.dataDigest && !ocfg_.crcTx ? m.crcPerByte * n
                                                         : 0) +
                         m.nvmePduCost);
                enqueue(buildDataPdu(wc_, kPduC2HData, dh,
                                     ByteView(data).subspan(off, n),
                                     /*fillDdgst=*/!ocfg_.crcTx));
                off += n;
            }
            RespCapsule resp;
            resp.cid = cmd.cid;
            resp.status = 0;
            enqueue(buildRespCapsule(wc_, resp));
        });
    });
}

void
NvmeTarget::finishWrite(uint16_t cid)
{
    auto it = writes_.find(cid);
    ANIC_ASSERT(it != writes_.end());
    PendingWrite w = std::move(it->second);
    writes_.erase(it);
    if (rxEngine_ != nullptr)
        rxEngine_->delRrState(cid); // l5o_del_rr_state

    if (w.opcode == kOpCompare) {
        // COMPARE: read the addressed range back and match it against
        // the received payload; miscompare is a non-zero status.
        drive_.read(w.slba, w.len,
                    [this, cid, buf = w.buffer,
                     digestOk = w.digestOk](Bytes data) {
            sock_.core().post(
                [this, cid, buf, digestOk, data = std::move(data)] {
                    host::Core &c = sock_.core();
                    c.charge(c.model().copyLlcPerByte *
                             static_cast<double>(data.size())); // memcmp
                    bool match = data.size() == buf->data.size() &&
                                 std::memcmp(data.data(), buf->data.data(),
                                             data.size()) == 0;
                    stats_.comparesServed++;
                    if (!match)
                        stats_.compareMismatches++;
                    RespCapsule resp;
                    resp.cid = cid;
                    resp.status = (digestOk && match) ? 0 : 1;
                    enqueue(buildRespCapsule(wc_, resp));
                });
        });
        return;
    }

    // WRITE and FLUSH share the drive's write channel (a flush is a
    // zero-length fence: access latency, no data).
    drive_.write(w.slba, w.len,
                 [this, cid, opcode = w.opcode, len = w.len,
                  digestOk = w.digestOk] {
        sock_.core().post([this, cid, opcode, len, digestOk] {
            if (opcode == kOpFlush) {
                stats_.flushesServed++;
            } else {
                stats_.writesServed++;
                stats_.bytesWritten += len;
            }
            RespCapsule resp;
            resp.cid = cid;
            resp.status = digestOk ? 0 : 1;
            enqueue(buildRespCapsule(wc_, resp));
        });
    });
}

void
NvmeTarget::enqueue(Bytes pdu)
{
    SendEntry e;
    e.bytes = std::move(pdu);
    sendq_.push_back(std::move(e));
    flush();
}

void
NvmeTarget::flush()
{
    while (!sendq_.empty()) {
        SendEntry &e = sendq_.front();
        if (!e.added && conn_ != nullptr && l5o_ != nullptr &&
            l5o_->txCtxId() != 0) {
            // All stream messages must be tracked when a tx context
            // exists, so framing recovery can cross any message.
            txMap_.add(conn_->sndNextByteSeq(),
                       static_cast<uint32_t>(e.bytes.size()), txMsgIdx_++,
                       e.bytes);
            e.added = true;
        }
        ByteView rest = ByteView(e.bytes).subspan(sendqOff_);
        size_t acc = sock_.send(rest);
        sendqOff_ += acc;
        if (sendqOff_ < e.bytes.size())
            return;
        sendq_.pop_front();
        sendqOff_ = 0;
    }
}

// ------------------------------------------------------------- resync

void
NvmeTarget::checkPendingResync()
{
    if (!resyncPending_)
        return;
    uint64_t cur = assembler_.midPdu() ? assembler_.curPduStartOff()
                                       : assembler_.streamConsumed();
    bool ok;
    if (cur == resyncOff_) {
        ok = true;
    } else if (cur > resyncOff_) {
        ok = false;
    } else {
        return; // not there yet
    }
    resyncPending_ = false;
    if (ok)
        stats_.resyncConfirmed++;
    if (l5o_ != nullptr)
        l5o_->resyncRxResp(resyncSeq_, ok, assembler_.pdusDelivered());
}

std::optional<core::L5pCallbacks::TxMsgState>
NvmeTarget::getTxMsgState(uint32_t tcpsn)
{
    const core::TxMsgTracker::Entry *e = txMap_.find(tcpsn);
    if (e == nullptr)
        return std::nullopt;
    TxMsgState st;
    st.msgStartSeq = e->startSeq;
    st.msgIdx = e->msgIdx;
    uint32_t n = tcpsn - e->startSeq;
    st.rebuild.assign(e->bytes.begin(), e->bytes.begin() + n);
    return st;
}

void
NvmeTarget::resyncRxReq(uint32_t tcpsn)
{
    ANIC_ASSERT(conn_ != nullptr);
    stats_.resyncRequests++;
    resyncPending_ = true;
    resyncSeq_ = tcpsn;
    // Translate the sequence number into our stream-offset space.
    uint64_t consumed = assembler_.streamConsumed();
    int64_t delta = static_cast<int32_t>(
        tcpsn - conn_->seqOfRcvStreamOff(consumed));
    resyncOff_ = consumed + delta;
    checkPendingResync();
}

} // namespace anic::nvmetcp
