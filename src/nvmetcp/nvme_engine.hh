/**
 * @file
 * NIC-side NVMe-TCP engines (the paper's §5.1 offloads).
 *
 * NvmeRxEngine (host receive side):
 *  - CRC32C data-digest verification of C2HData PDUs, reported via
 *    the per-packet crc_ok descriptor bit;
 *  - zero-copy placement: a CID -> block-buffer map (l5o_add_rr_state)
 *    lets the NIC DMA capsule payload directly into the block layer
 *    (Figure 9), recorded as placed ranges in the descriptor.
 *  Placement resumes mid-message after out-of-sequence traffic when
 *  the capsule's sub-header (CID) has been seen; CRC verification for
 *  such capsules is reported as unchecked so software falls back.
 *
 * NvmeTxEngine: fills the data digest of outgoing data PDUs from the
 * running CRC as packets stream out (the host prepares capsules with
 * dummy CRC fields). Header digests stay in software — they cover at
 * most 32 bytes and are not worth offloading.
 */

#ifndef ANIC_NVMETCP_NVME_ENGINE_HH
#define ANIC_NVMETCP_NVME_ENGINE_HH

#include <unordered_map>

#include "core/l5o.hh"
#include "host/storage.hh"
#include "nic/stream_fsm.hh"
#include "nvmetcp/pdu.hh"

namespace anic::nvmetcp {

/** Which offloads a session requests from the NIC. */
struct NvmeOffloadConfig
{
    bool crcRx = false;
    bool copyRx = false;
    bool crcTx = false;
};

/**
 * NVMe-TCP static offload state for the unified l5o_create binding:
 * the negotiated wire format. Constructing one registers the NVMe
 * engine factories with the driver's protocol registry.
 */
class NvmeStaticState : public core::L5StaticState
{
  public:
    explicit NvmeStaticState(const WireConfig &wc);

    net::L5Kind kind() const override { return net::L5Kind::Nvme; }
    const WireConfig &wire() const { return wc_; }

  private:
    WireConfig wc_;
};

/** Common framing for both directions. */
class NvmeEngineBase : public nic::L5Engine
{
  public:
    explicit NvmeEngineBase(const WireConfig &wc) : wc_(wc) {}

    net::L5Kind kind() const override { return net::L5Kind::Nvme; }
    size_t headerSize() const override { return kCommonHdrSize; }

    std::optional<nic::MsgInfo>
    parseHeader(ByteView hdr) const override
    {
        std::optional<CommonHdr> ch = parseCommonHdr(hdr, 2 << 20);
        if (!ch)
            return std::nullopt;
        return nic::MsgInfo{ch->plen};
    }

  protected:
    WireConfig wc_;
    CommonHdr ch_;
};

/** Host-side receive engine: DDGST verify + placement. */
class NvmeRxEngine : public NvmeEngineBase
{
  public:
    explicit NvmeRxEngine(const WireConfig &wc) : NvmeEngineBase(wc) {}

    /** l5o_add_rr_state: maps a pending command's CID to its block
     *  buffer so responses can be placed directly. */
    void
    addRrState(uint16_t cid, host::BlockBufferPtr buf)
    {
        rrState_[cid] = std::move(buf);
    }

    /** l5o_del_rr_state. */
    void delRrState(uint16_t cid) { rrState_.erase(cid); }

    size_t rrStateSize() const { return rrState_.size(); }

    bool resumeMidMessage() const override { return true; }

    void onMsgStart(uint64_t msgIdx, ByteView hdr) override;
    void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                   nic::PacketResult &res) override;
    void onMsgEnd(bool covered, nic::PacketResult &res) override;
    void onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off) override;
    void onMsgAbort() override;

    uint64_t bytesPlaced() const { return bytesPlaced_; }

  private:
    void beginPdu(ByteView hdr);
    void parseSubHdr();

    std::unordered_map<uint16_t, host::BlockBufferPtr> rrState_;

    // Per-PDU dynamic state (constant size, as §3.2 requires).
    Bytes subHdr_;       ///< header bytes [8, hlen)
    size_t subHdrHave_ = 0;
    bool subHdrValid_ = false;
    bool subHdrDead_ = false; ///< early sub-header bytes lost to a gap
    DataPduHdr dataHdr_;
    host::BlockBufferPtr placeTarget_; ///< shared: survives del_rr_state
    uint64_t curMsgIdx_ = 0;
    bool haveMsgIdx_ = false;
    crypto::Crc32c crc_;
    bool crcValid_ = false; ///< running CRC covers the data from byte 0
    uint8_t ddgstBuf_[kDigestSize];
    size_t ddgstHave_ = 0;
    bool isDataPdu_ = false;
    uint64_t bytesPlaced_ = 0;
};

/** Transmit engine: fills DDGST on outgoing data PDUs. */
class NvmeTxEngine : public NvmeEngineBase
{
  public:
    explicit NvmeTxEngine(const WireConfig &wc) : NvmeEngineBase(wc) {}

    bool resumeMidMessage() const override { return false; }

    void onMsgStart(uint64_t msgIdx, ByteView hdr) override;
    void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                   nic::PacketResult &res) override;
    void onMsgEnd(bool covered, nic::PacketResult &res) override;
    void onMsgResume(uint64_t, ByteView, uint64_t) override;
    void onMsgAbort() override {}

  private:
    crypto::Crc32c crc_;
    bool isDataPdu_ = false;
    uint8_t ddgst_[kDigestSize];
    bool ddgstReady_ = false;
};

} // namespace anic::nvmetcp

#endif // ANIC_NVMETCP_NVME_ENGINE_HH
