/**
 * @file
 * NVMe-TCP target (controller): serves capsules over a StreamSocket
 * from an NvmeDrive. Lives on the workload-generator machine in the
 * paper's setup ("the server utilizes an Optane ... NVMe SSD that
 * resides remotely, on the generator").
 */

#ifndef ANIC_NVMETCP_TARGET_HH
#define ANIC_NVMETCP_TARGET_HH

#include <deque>
#include <unordered_map>

#include "host/storage.hh"
#include "nvmetcp/pdu.hh"

namespace anic::nvmetcp {

struct NvmeTargetStats
{
    uint64_t readsServed = 0;
    uint64_t writesServed = 0;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    uint64_t crcFailures = 0;
};

/** One connection's controller-side session. */
class NvmeTarget
{
  public:
    NvmeTarget(tcp::StreamSocket &sock, host::NvmeDrive &drive,
               WireConfig wc);

    const NvmeTargetStats &stats() const { return stats_; }

    /** True once PDU framing was lost (corrupted common header): the
     *  session stops serving — a real controller would reset the
     *  connection (NVMe/TCP §7.4.7 fatal transport error). */
    bool desynced() const { return dead_; }

  private:
    void onReadable();
    void onPdu(RxPdu &&pdu);
    void serveRead(const CmdCapsule &cmd);
    void finishWrite(uint16_t cid);
    void enqueue(Bytes pdu);
    void flush();

    tcp::StreamSocket &sock_;
    host::NvmeDrive &drive_;
    WireConfig wc_;
    PduAssembler assembler_;

    struct PendingWrite
    {
        uint32_t len = 0;
        uint32_t received = 0;
        uint64_t slba = 0;
        bool crcOk = true;
    };
    std::unordered_map<uint16_t, PendingWrite> writes_;

    std::deque<Bytes> sendq_;
    size_t sendqOff_ = 0;

    bool dead_ = false;
    NvmeTargetStats stats_;
};

} // namespace anic::nvmetcp

#endif // ANIC_NVMETCP_TARGET_HH
