/**
 * @file
 * NVMe-TCP target (controller): serves capsules over a StreamSocket
 * from an NvmeDrive. Lives on the workload-generator machine in the
 * paper's setup ("the server utilizes an Optane ... NVMe SSD that
 * resides remotely, on the generator").
 *
 * The write path is R2T-gated: a data-out command (WRITE, COMPARE)
 * is granted one outstanding R2T window at a time, and H2CData is
 * accepted only inside granted ranges. With enableOffload() the
 * target also acts as a device under test: its NIC verifies H2CData
 * digests and places payload directly into the pending write's block
 * buffer (rx), and fills C2HData digests on the way out (tx).
 */

#ifndef ANIC_NVMETCP_TARGET_HH
#define ANIC_NVMETCP_TARGET_HH

#include <deque>
#include <unordered_map>

#include "core/offload_device.hh"
#include "core/tx_msg_tracker.hh"
#include "host/storage.hh"
#include "nvmetcp/nvme_engine.hh"
#include "nvmetcp/pdu.hh"

namespace anic::nvmetcp {

struct NvmeTargetStats
{
    uint64_t readsServed = 0;
    uint64_t writesServed = 0;
    uint64_t flushesServed = 0;
    uint64_t comparesServed = 0;
    uint64_t compareMismatches = 0;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    uint64_t r2tsSent = 0;
    uint64_t digestFailures = 0;       ///< H2CData DDGST mismatches
    uint64_t h2cDigestSkipped = 0;     ///< PDUs fully verified by the NIC
    uint64_t h2cDigestSoftware = 0;    ///< PDUs verified in software
    uint64_t h2cBytesPlaced = 0;       ///< payload the NIC DMA'd to buffers
    uint64_t h2cBytesCopied = 0;       ///< payload copied by software
    uint64_t resyncRequests = 0;
    uint64_t resyncConfirmed = 0;
};

/** One connection's controller-side session. */
class NvmeTarget : private core::L5pCallbacks
{
  public:
    NvmeTarget(tcp::StreamSocket &sock, host::NvmeDrive &drive,
               WireConfig wc);
    ~NvmeTarget() override;

    /**
     * Installs NIC offload contexts on the target side (l5o_create on
     * the flow): rx digest verification + placement for inbound
     * H2CData, tx digest fill for outbound C2HData.
     */
    void enableOffload(core::OffloadDevice &dev, tcp::TcpConnection &conn,
                       NvmeOffloadConfig ocfg);

    const NvmeTargetStats &stats() const { return stats_; }

    /** True once PDU framing was lost (corrupted common header): the
     *  session stops serving — a real controller would reset the
     *  connection (NVMe/TCP §7.4.7 fatal transport error). */
    bool desynced() const { return dead_; }

    /** FSM stats of the rx offload, if any. */
    const nic::FsmStats *rxFsmStats() const;

  private:
    void onReadable();
    void onPdu(RxPdu &&pdu);
    void serveRead(const CmdCapsule &cmd);
    void onH2cData(RxPdu &pdu);
    void issueR2t(uint16_t cid);
    void finishWrite(uint16_t cid);
    void enqueue(Bytes pdu);
    void flush();
    void checkPendingResync();

    // L5pCallbacks.
    std::optional<TxMsgState> getTxMsgState(uint32_t tcpsn) override;
    void resyncRxReq(uint32_t tcpsn) override;

    tcp::StreamSocket &sock_;
    host::NvmeDrive &drive_;
    WireConfig wc_;
    PduAssembler assembler_;

    struct PendingWrite
    {
        uint8_t opcode = kOpWrite;
        uint32_t len = 0;
        uint32_t received = 0;
        uint32_t granted = 0;
        uint64_t slba = 0;
        bool digestOk = true;
        host::BlockBufferPtr buffer; ///< H2C payload lands here
    };
    std::unordered_map<uint16_t, PendingWrite> writes_;

    struct SendEntry
    {
        Bytes bytes;
        bool added = false; ///< registered in txMap_
    };
    std::deque<SendEntry> sendq_;
    size_t sendqOff_ = 0;

    bool dead_ = false;

    // Offload plumbing.
    NvmeOffloadConfig ocfg_;
    core::L5Offload *l5o_ = nullptr;
    tcp::TcpConnection *conn_ = nullptr;
    NvmeRxEngine *rxEngine_ = nullptr;
    core::TxMsgTracker txMap_;
    uint64_t txMsgIdx_ = 0;
    uint16_t nextTtag_ = 1;

    // Pending rx resync speculation (one outstanding).
    bool resyncPending_ = false;
    uint32_t resyncSeq_ = 0;
    uint64_t resyncOff_ = 0;

    NvmeTargetStats stats_;
};

} // namespace anic::nvmetcp

#endif // ANIC_NVMETCP_TARGET_HH
