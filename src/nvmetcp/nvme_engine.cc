#include "nvmetcp/nvme_engine.hh"

#include "util/panic.hh"

namespace anic::nvmetcp {

// -------------------------------------------- unified-binding state

namespace {

void
ensureNvmeRegistered()
{
    static const bool once = [] {
        core::L5ProtocolOps ops;
        ops.makeRx = [](const core::L5StaticState &st)
            -> std::unique_ptr<nic::L5Engine> {
            const auto &nvme = static_cast<const NvmeStaticState &>(st);
            return std::make_unique<NvmeRxEngine>(nvme.wire());
        };
        ops.makeTx = [](const core::L5StaticState &st)
            -> std::unique_ptr<nic::L5Engine> {
            const auto &nvme = static_cast<const NvmeStaticState &>(st);
            return std::make_unique<NvmeTxEngine>(nvme.wire());
        };
        core::registerL5Protocol(net::L5Kind::Nvme, ops);
        return true;
    }();
    (void)once;
}

} // namespace

NvmeStaticState::NvmeStaticState(const WireConfig &wc) : wc_(wc)
{
    ensureNvmeRegistered();
}

// ------------------------------------------------------------- receive

void
NvmeRxEngine::beginPdu(ByteView hdr)
{
    std::optional<CommonHdr> ch = parseCommonHdr(hdr, 2 << 20);
    ANIC_ASSERT(ch.has_value(), "beginPdu on invalid header");
    ch_ = *ch;
    isDataPdu_ = ch_.type == kPduC2HData || ch_.type == kPduH2CData;
    subHdr_.clear();
    subHdrHave_ = 0;
    subHdrValid_ = false;
    subHdrDead_ = false;
    placeTarget_ = nullptr;
    crc_.reset();
    ddgstHave_ = 0;
}

void
NvmeRxEngine::parseSubHdr()
{
    // subHdr_ holds bytes [8, hlen); synthesize a full header view.
    Bytes full(kCommonHdrSize + subHdr_.size());
    full[0] = ch_.type;
    full[2] = ch_.hlen;
    std::memcpy(full.data() + kCommonHdrSize, subHdr_.data(), subHdr_.size());
    if (isDataPdu_) {
        dataHdr_ = parseDataPduHdr(full);
        auto it = rrState_.find(dataHdr_.cid);
        placeTarget_ = it != rrState_.end() ? it->second : nullptr;
    }
    subHdrValid_ = true;
}

void
NvmeRxEngine::onMsgStart(uint64_t msgIdx, ByteView hdr)
{
    beginPdu(hdr);
    curMsgIdx_ = msgIdx;
    haveMsgIdx_ = true;
    crcValid_ = true;
}

void
NvmeRxEngine::onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off)
{
    // Either resuming the same capsule after a gap (sub-header known,
    // placement continues) or adopting a different capsule mid-way.
    // Identity must come from the message index — every large data
    // PDU has an identical header shape, so shape comparison alone
    // would silently attach the previous capsule's buffer. But the
    // index is seeded by software on resync confirmation, so a buggy
    // (or merely restarted) L5P can recycle an index for a different
    // PDU: also require the common header the FSM hands us to match
    // the cached one before trusting per-capsule state.
    std::optional<CommonHdr> ch = parseCommonHdr(hdr, 2 << 20);
    bool same_pdu = haveMsgIdx_ && msgIdx == curMsgIdx_ && subHdrValid_ &&
                    ch.has_value() && ch->type == ch_.type &&
                    ch->flags == ch_.flags && ch->pdo == ch_.pdo &&
                    ch->plen == ch_.plen;
    if (!same_pdu) {
        beginPdu(hdr);
        // Sub-header bytes before the resume point will never be
        // seen; without the CID, placement is impossible.
        if (off > kCommonHdrSize)
            subHdrDead_ = true;
        curMsgIdx_ = msgIdx;
        haveMsgIdx_ = true;
    }
    crcValid_ = false;
}

void
NvmeRxEngine::onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                        nic::PacketResult &res)
{
    if (dryRun)
        return;
    const size_t pdo = ch_.pdo;
    const uint64_t data_end = pdo + ch_.dataLen();

    size_t i = 0;
    while (i < data.size()) {
        uint64_t pos = off + i;
        if (pos < ch_.hlen) {
            // Sub-header byte range [8, hlen).
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(ch_.hlen - pos, data.size() - i));
            size_t idx = static_cast<size_t>(pos - kCommonHdrSize);
            if (subHdr_.size() < ch_.hlen - kCommonHdrSize)
                subHdr_.resize(ch_.hlen - kCommonHdrSize);
            std::memcpy(subHdr_.data() + idx, data.data() + i, n);
            subHdrHave_ += n;
            if (subHdrHave_ >= ch_.hlen - kCommonHdrSize && !subHdrValid_ &&
                !subHdrDead_) {
                parseSubHdr();
            }
            i += n;
        } else if (pos < pdo) {
            // Header digest: opaque to the engine.
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(pdo - pos, data.size() - i));
            i += n;
        } else if (pos < data_end) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(data_end - pos, data.size() - i));
            ByteView chunk(data.data() + i, n);
            if (isDataPdu_ && wc_.dataDigest) {
                crc_.update(chunk);
                count(&nic::EngineStats::bytesChecked, n);
            }
            if (placeTarget_ && subHdrValid_) {
                // DMA-write straight into the block buffer (Figure 9).
                uint64_t dst = dataHdr_.dataOffset + (pos - pdo);
                if (dst + n <= placeTarget_->data.size()) {
                    std::memcpy(placeTarget_->data.data() + dst,
                                chunk.data(), n);
                    res.placed.push_back(net::PlacedRange{
                        res.spanPktOff + static_cast<uint32_t>(i),
                        static_cast<uint32_t>(n)});
                    bytesPlaced_ += n;
                    count(&nic::EngineStats::bytesPlaced, n);
                }
            }
            i += n;
        } else {
            // Data digest trailer. Bytes past the constant-size
            // trailer mean the cached header disagrees with the
            // FSM's framing (stale state across a resume); ignore
            // them and leave verification to software.
            size_t tail_off = static_cast<size_t>(pos - data_end);
            if (tail_off >= kDigestSize) {
                crcValid_ = false;
                break;
            }
            size_t n = std::min(kDigestSize - tail_off, data.size() - i);
            std::memcpy(ddgstBuf_ + tail_off, data.data() + i, n);
            ddgstHave_ = tail_off + n;
            i += n;
        }
    }
}

void
NvmeRxEngine::onMsgEnd(bool covered, nic::PacketResult &res)
{
    if (!isDataPdu_ || !wc_.dataDigest || ch_.dataLen() == 0)
        return;
    if (!covered || !crcValid_ || ddgstHave_ < kDigestSize) {
        // Incomplete coverage: report unchecked so software verifies.
        res.setVerify(net::L5Kind::Nvme, net::VerifyOutcome::Incomplete);
        return;
    }
    uint32_t wire = static_cast<uint32_t>(getLe32(ddgstBuf_));
    if (crc_.value() != wire) {
        res.setVerify(net::L5Kind::Nvme, net::VerifyOutcome::Failed);
        count(&nic::EngineStats::verifyFailures);
    } else {
        res.setVerify(net::L5Kind::Nvme, net::VerifyOutcome::Ok);
        count(&nic::EngineStats::verifiedOk);
    }
}

void
NvmeRxEngine::onMsgAbort()
{
    crcValid_ = false;
}

// ------------------------------------------------------------ transmit

void
NvmeTxEngine::onMsgStart(uint64_t msgIdx, ByteView hdr)
{
    (void)msgIdx;
    std::optional<CommonHdr> ch = parseCommonHdr(hdr, 2 << 20);
    ANIC_ASSERT(ch.has_value());
    ch_ = *ch;
    isDataPdu_ = ch_.type == kPduC2HData || ch_.type == kPduH2CData;
    crc_.reset();
    ddgstReady_ = false;
}

void
NvmeTxEngine::onMsgResume(uint64_t, ByteView, uint64_t)
{
    panic("NVMe tx contexts are recovered via driver resync");
}

void
NvmeTxEngine::onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                        nic::PacketResult &res)
{
    (void)res;
    if (dryRun || !isDataPdu_ || !wc_.dataDigest)
        return;
    const size_t pdo = ch_.pdo;
    const uint64_t data_end = pdo + ch_.dataLen();

    size_t i = 0;
    while (i < data.size()) {
        uint64_t pos = off + i;
        if (pos < pdo) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(pdo - pos, data.size() - i));
            i += n;
        } else if (pos < data_end) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(data_end - pos, data.size() - i));
            crc_.update(ByteView(data.data() + i, n));
            count(&nic::EngineStats::bytesChecked, n);
            i += n;
        } else {
            // Replace the dummy digest with the computed CRC.
            if (!ddgstReady_) {
                putLe32(ddgst_, crc_.value());
                ddgstReady_ = true;
            }
            size_t tail_off = static_cast<size_t>(pos - data_end);
            if (tail_off >= kDigestSize)
                break; // framing disagreement; never write past plen
            size_t n = std::min(kDigestSize - tail_off, data.size() - i);
            std::memcpy(data.data() + i, ddgst_ + tail_off, n);
            i += n;
        }
    }
}

void
NvmeTxEngine::onMsgEnd(bool covered, nic::PacketResult &res)
{
    (void)covered;
    (void)res;
}

} // namespace anic::nvmetcp
