/**
 * @file
 * NVMe/TCP PDU wire format (NVMe-oF TCP transport binding, simplified
 * but faithful where the paper's offload depends on it).
 *
 * Every PDU starts with the 8-byte common header:
 *   [0]    type      (CapsuleCmd 0x04, CapsuleResp 0x05,
 *                     H2CData 0x06, C2HData 0x07, R2T 0x09)
 *   [1]    flags     (bit0 HDGST present, bit1 DDGST present)
 *   [2]    hlen      (PDU header length, type-specific constant)
 *   [3]    pdo       (data offset = hlen + optional 4-byte HDGST)
 *   [4..7] plen      (total PDU length incl. digests, little-endian)
 *
 * These are exactly the paper's §5.1 magic-pattern fields: "PDU type:
 * one of only eight valid values; header length: well known constant
 * for each PDU type; header digest; data digest".
 *
 * Type-specific headers (after the common 8 bytes, little-endian):
 *   CapsuleCmd  (hlen 32): cid u16, opcode u8, rsvd u8, slba u64,
 *                          length u32, rsvd[8]
 *   CapsuleResp (hlen 24): cid u16, status u16, rsvd[12]
 *   C2H/H2CData (hlen 24): cid u16, rsvd u16, dataOffset u32,
 *                          dataLen u32, rsvd[4]
 *   R2T         (hlen 24): cid u16, ttag u16, r2tOffset u32,
 *                          r2tLength u32, rsvd[4]
 *
 * Digests are CRC32C: HDGST over [0, hlen), DDGST over the data.
 */

#ifndef ANIC_NVMETCP_PDU_HH
#define ANIC_NVMETCP_PDU_HH

#include <functional>
#include <optional>

#include "crypto/crc32c.hh"
#include "tcp/socket.hh"
#include "util/bytes.hh"

namespace anic::nvmetcp {

enum PduType : uint8_t
{
    kPduCapsuleCmd = 0x04,
    kPduCapsuleResp = 0x05,
    kPduH2CData = 0x06,
    kPduC2HData = 0x07,
    kPduR2T = 0x09,
};

enum PduFlags : uint8_t
{
    kFlagHdgst = 0x01,
    kFlagDdgst = 0x02,
};

enum NvmeOpcode : uint8_t
{
    kOpFlush = 0x00,
    kOpWrite = 0x01,
    kOpRead = 0x02,
    kOpCompare = 0x05,
};

constexpr size_t kCommonHdrSize = 8;
constexpr size_t kCmdHdrSize = 32;
constexpr size_t kRespHdrSize = 24;
constexpr size_t kDataHdrSize = 24;
constexpr size_t kR2tHdrSize = 24;
constexpr size_t kDigestSize = 4;

/** Wire-format options negotiated at queue setup (ICReq/ICResp). */
struct WireConfig
{
    bool headerDigest = true;
    bool dataDigest = true;
    size_t maxDataPerPdu = 256 << 10;
    /** Largest write range one R2T invites (MAXH2CDATA analogue);
     *  the target keeps a single R2T outstanding per command. */
    size_t maxR2tWindow = 128 << 10;

    size_t digestLen() const { return headerDigest ? kDigestSize : 0; }
    size_t ddgstLen() const { return dataDigest ? kDigestSize : 0; }
};

/** Decoded common header. */
struct CommonHdr
{
    uint8_t type = 0;
    uint8_t flags = 0;
    uint8_t hlen = 0;
    uint8_t pdo = 0;
    uint32_t plen = 0;

    bool hasHdgst() const { return flags & kFlagHdgst; }
    bool hasDdgst() const { return flags & kFlagDdgst; }

    /** Data region [pdo, pdo + dataLen). */
    uint32_t
    dataLen() const
    {
        uint32_t tail = hasDdgst() ? kDigestSize : 0;
        return plen - pdo - tail;
    }
};

/** Expected hlen for a PDU type (0 = unknown type). */
uint8_t hlenForType(uint8_t type);

/**
 * Parses + validates a common header: known type, matching hlen,
 * consistent pdo and plen bounds. This is the offload's speculative
 * magic-pattern check.
 */
std::optional<CommonHdr> parseCommonHdr(ByteView h, size_t maxPdu = 2 << 20);

/** Fields of a command capsule. */
struct CmdCapsule
{
    uint16_t cid = 0;
    uint8_t opcode = 0;
    uint64_t slba = 0;  ///< byte address on the drive (simplified LBA)
    uint32_t length = 0;
};

/** Fields of a response capsule. */
struct RespCapsule
{
    uint16_t cid = 0;
    uint16_t status = 0; ///< 0 = success
};

/** Fields of a data PDU (C2H or H2C). */
struct DataPduHdr
{
    uint16_t cid = 0;
    uint32_t dataOffset = 0;
    uint32_t dataLen = 0;
};

/**
 * Fields of an R2T PDU (hlen 24): target-to-host write credit. The
 * host may only transmit the H2CData range the target has invited
 * (NVMe/TCP §3.3.2.2). Carries no data and never a DDGST.
 */
struct R2tHdr
{
    uint16_t cid = 0;
    uint16_t ttag = 0;       ///< transfer tag echoed in H2CData
    uint32_t r2tOffset = 0;  ///< offset into the command's data buffer
    uint32_t r2tLength = 0;  ///< bytes invited
};

// -------------------------------------------------------------- builders

/** Builds a command capsule (no data). */
Bytes buildCmdCapsule(const WireConfig &wc, const CmdCapsule &cmd);

/** Builds a response capsule. */
Bytes buildRespCapsule(const WireConfig &wc, const RespCapsule &resp);

/**
 * Builds a data PDU. When @p fillDdgst is false the digest field (if
 * configured) is left zero for the NIC tx offload to fill.
 */
Bytes buildDataPdu(const WireConfig &wc, uint8_t type, const DataPduHdr &hdr,
                   ByteView data, bool fillDdgst);

/** Builds an R2T PDU (no data). */
Bytes buildR2tPdu(const WireConfig &wc, const R2tHdr &hdr);

// --------------------------------------------------------------- parsing

CmdCapsule parseCmdCapsule(ByteView pdu);
RespCapsule parseRespCapsule(ByteView pdu);
DataPduHdr parseDataPduHdr(ByteView pdu);
R2tHdr parseR2tHdr(ByteView pdu);

/**
 * Verifies the header digest of a full wire PDU (trivially true when
 * HDGST is not negotiated). The common-header structure checks alone
 * cannot protect the specific header — a flipped cid or dataOffset
 * passes the data digest, so receivers must check this before
 * trusting any header field. A mismatch is a fatal transport error
 * (NVMe/TCP §7.4.7), like losing PDU framing.
 */
bool verifyHdgst(const WireConfig &wc, ByteView pdu, const CommonHdr &ch);

/** Offload flags of one contiguous chunk of an assembled PDU. */
struct PduSlice
{
    size_t pduOff = 0;
    size_t len = 0;
    bool digestChecked = false;
    bool digestOk = false;
    /** Placed ranges, PDU-relative. */
    std::vector<net::PlacedRange> placed;
};

/** A fully reassembled PDU with per-packet offload results. */
struct RxPdu
{
    CommonHdr ch;
    Bytes bytes; ///< full wire bytes [0, plen)
    std::vector<PduSlice> slices;

    /** True iff the NIC checked (and passed) the data digest on every
     *  chunk — the "crc_ok bits of all SKBs" condition. */
    bool
    digestFullyOffloaded() const
    {
        if (slices.empty())
            return false;
        for (const PduSlice &s : slices) {
            if (!s.digestChecked || !s.digestOk)
                return false;
        }
        return true;
    }

    /** Total bytes of the data region already placed by the NIC. */
    uint64_t placedDataBytes() const;
};

/**
 * Incremental PDU reassembler: feed in-order stream segments, get
 * complete PDUs. Mirrors what the in-kernel nvme-tcp receive path
 * does, including tracking which chunks the NIC already handled.
 */
class PduAssembler
{
  public:
    explicit PduAssembler(const WireConfig &wc, size_t maxPdu = 2 << 20)
        : wc_(wc), maxPdu_(maxPdu)
    {
    }

    /** Feeds a segment; invokes @p sink for each completed PDU. */
    void ingest(const tcp::RxSegment &seg,
                std::function<void(RxPdu &&)> sink);

    bool error() const { return error_; }

    /** Stream offset where the next (or current) PDU starts. */
    uint64_t curPduStartOff() const { return pduStartOff_; }

    /** Stream offset of the next unconsumed byte. */
    uint64_t streamConsumed() const { return consumed_; }

    /** True if mid-PDU (header or body partially collected). */
    bool midPdu() const { return have_ > 0; }

    /** Index of the next (or current) PDU: PDUs fully delivered so
     *  far. Echoed on resync confirmation so the NIC renumbers its
     *  messages consistently with software's count. */
    uint64_t pdusDelivered() const { return pduIdx_; }

  private:
    WireConfig wc_;
    size_t maxPdu_;
    RxPdu cur_;
    Bytes hdr8_;
    bool hdrComplete_ = false;
    size_t have_ = 0;
    uint64_t pduStartOff_ = 0;
    uint64_t consumed_ = 0;
    uint64_t pduIdx_ = 0;
    bool error_ = false;
};

} // namespace anic::nvmetcp

#endif // ANIC_NVMETCP_PDU_HH
