#include "testing/scenario.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/env.hh"

namespace anic::testing {

bool
Scenario::hasCorruption() const
{
    for (const PhaseSpec &p : phases)
        if (p.dir[0].corruptRate > 0 || p.dir[1].corruptRate > 0)
            return true;
    return false;
}

namespace {

void
appendDouble(std::string &out, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

} // namespace

std::string
Scenario::toText() const
{
    // v2 widens phase lines with the ECN marking knobs and adds the
    // cc/ecn/incast/shortflows directives; v1 files still parse.
    std::string out = "anic-scenario v2\n";
    out += "seed ";
    appendU64(out, seed);
    out += "\nwire_seed ";
    appendU64(out, wireSeed);
    out += "\nctx_cache ";
    appendU64(out, ctxCacheCapacity);
    out += "\ntime_limit_ps ";
    appendU64(out, timeLimit);
    out += "\ncc ";
    out += tcp::ccAlgoName(cc);
    out += "\necn ";
    appendU64(out, ecn ? 1 : 0);
    out += "\n";
    for (const PhaseSpec &p : phases) {
        out += "phase ";
        appendU64(out, p.duration);
        for (int d = 0; d < 2; d++) {
            const net::Impairments &im = p.dir[d];
            out += " ";
            appendDouble(out, im.lossRate);
            out += " ";
            appendDouble(out, im.reorderRate);
            out += " ";
            appendDouble(out, im.duplicateRate);
            out += " ";
            appendDouble(out, im.corruptRate);
            out += " ";
            appendU64(out, im.reorderExtraDelay);
            out += " ";
            appendDouble(out, im.ecnMarkRate);
            out += " ";
            appendU64(out, im.ecnMarkThresholdBytes);
        }
        out += "\n";
    }
    if (incast.senders > 0) {
        out += "incast ";
        appendU64(out, incast.senders);
        out += " ";
        appendU64(out, incast.bytesPerSender);
        out += " ";
        appendU64(out, incast.rounds);
        out += " ";
        appendU64(out, incast.gap);
        out += " ";
        appendU64(out, incast.startAt);
        out += "\n";
    }
    if (shortFlows.count > 0) {
        out += "shortflows ";
        appendU64(out, shortFlows.count);
        out += " ";
        appendU64(out, shortFlows.maxBytes);
        out += " ";
        appendU64(out, shortFlows.meanGap);
        out += " ";
        appendU64(out, shortFlows.startAt);
        out += "\n";
    }
    for (const TlsFlowSpec &f : tls) {
        out += "tls ";
        appendU64(out, f.secret);
        out += " ";
        appendU64(out, f.seed);
        out += " ";
        appendU64(out, f.bytes);
        out += " ";
        appendU64(out, f.recordSize);
        out += " ";
        appendU64(out, f.rotateEvery);
        out += " ";
        appendU64(out, f.reverse ? 1 : 0);
        out += " ";
        appendU64(out, f.startAt);
        out += "\n";
    }
    if (nvme.enabled) {
        out += "nvme ";
        appendU64(out, nvme.ops);
        out += " ";
        appendU64(out, nvme.maxLen);
        out += " ";
        appendU64(out, nvme.qdepth);
        out += " ";
        appendDouble(out, nvme.writeRatio);
        out += " ";
        appendU64(out, nvme.startAt);
        out += "\n";
    }
    if (iscsi.enabled) {
        out += "iscsi ";
        appendU64(out, iscsi.ops);
        out += " ";
        appendU64(out, iscsi.maxLen);
        out += " ";
        appendU64(out, iscsi.qdepth);
        out += " ";
        appendDouble(out, iscsi.writeRatio);
        out += " ";
        appendU64(out, iscsi.startAt);
        out += "\n";
    }
    out += "end\n";
    return out;
}

std::optional<Scenario>
Scenario::fromText(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return std::nullopt;
    int version;
    if (line == "anic-scenario v1")
        version = 1;
    else if (line == "anic-scenario v2")
        version = 2;
    else
        return std::nullopt;

    Scenario s;
    s.phases.clear();
    bool sawEnd = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "end") {
            sawEnd = true;
            break;
        } else if (key == "seed") {
            ls >> s.seed;
        } else if (key == "wire_seed") {
            ls >> s.wireSeed;
        } else if (key == "ctx_cache") {
            ls >> s.ctxCacheCapacity;
        } else if (key == "time_limit_ps") {
            ls >> s.timeLimit;
        } else if (key == "cc") {
            std::string name;
            ls >> name;
            s.cc = tcp::parseCcAlgo(name);
            if (s.cc == tcp::CcAlgo::Auto)
                return std::nullopt; // replays must pin the algorithm
        } else if (key == "ecn") {
            uint64_t on = 0;
            ls >> on;
            s.ecn = on != 0;
        } else if (key == "phase") {
            PhaseSpec p;
            ls >> p.duration;
            for (int d = 0; d < 2; d++) {
                net::Impairments &im = p.dir[d];
                ls >> im.lossRate >> im.reorderRate >> im.duplicateRate >>
                    im.corruptRate >> im.reorderExtraDelay;
                if (version >= 2)
                    ls >> im.ecnMarkRate >> im.ecnMarkThresholdBytes;
            }
            if (ls.fail())
                return std::nullopt;
            s.phases.push_back(p);
        } else if (key == "incast") {
            ls >> s.incast.senders >> s.incast.bytesPerSender >>
                s.incast.rounds >> s.incast.gap >> s.incast.startAt;
            if (ls.fail())
                return std::nullopt;
        } else if (key == "shortflows") {
            ls >> s.shortFlows.count >> s.shortFlows.maxBytes >>
                s.shortFlows.meanGap >> s.shortFlows.startAt;
            if (ls.fail())
                return std::nullopt;
        } else if (key == "tls") {
            TlsFlowSpec f;
            uint64_t rev = 0;
            ls >> f.secret >> f.seed >> f.bytes >> f.recordSize >>
                f.rotateEvery >> rev >> f.startAt;
            if (ls.fail())
                return std::nullopt;
            f.reverse = rev != 0;
            s.tls.push_back(f);
        } else if (key == "nvme") {
            s.nvme.enabled = true;
            ls >> s.nvme.ops >> s.nvme.maxLen >> s.nvme.qdepth >>
                s.nvme.writeRatio >> s.nvme.startAt;
            if (ls.fail())
                return std::nullopt;
        } else if (key == "iscsi") {
            s.iscsi.enabled = true;
            ls >> s.iscsi.ops >> s.iscsi.maxLen >> s.iscsi.qdepth >>
                s.iscsi.writeRatio >> s.iscsi.startAt;
            if (ls.fail())
                return std::nullopt;
        } else {
            return std::nullopt; // unknown directive
        }
        if (ls.fail())
            return std::nullopt;
    }
    if (!sawEnd)
        return std::nullopt;
    return s;
}

// ------------------------------------------------------------ generator

Scenario
ScenarioGen::generate(uint64_t seed) const
{
    // Decorrelate from callers that use small sequential seeds.
    Rng r(seed * 0x9e3779b97f4a7c15ull + 0x6a09e667f3bcc909ull);

    Scenario s;
    s.seed = seed;
    s.wireSeed = r.next() | 1;
    s.timeLimit = 4 * sim::kSecond;

    // Corruption makes the oracle weaker (flows may legitimately
    // stall), so keep a solid majority of scenarios corruption-free.
    bool allowCorrupt = r.chance(0.35);

    int nPhases = static_cast<int>(r.range(1, 4));
    for (int i = 0; i < nPhases; i++) {
        PhaseSpec p;
        p.duration = r.range(2, 12) * sim::kMillisecond;
        for (int d = 0; d < 2; d++) {
            net::Impairments &im = p.dir[d];
            if (r.chance(0.7))
                im.lossRate = r.uniform() * 0.06;
            if (r.chance(0.5))
                im.reorderRate = r.uniform() * 0.12;
            if (r.chance(0.35))
                im.duplicateRate = r.uniform() * 0.04;
            if (allowCorrupt && r.chance(0.5))
                im.corruptRate = r.uniform() * 0.02;
            im.reorderExtraDelay = r.range(5, 80) * sim::kMicrosecond;
        }
        s.phases.push_back(p);
    }

    // Context-cache pressure: a third of scenarios squeeze the cache
    // below the live context count (each flow uses up to two contexts
    // per node) to exercise evict/fetch churn.
    s.ctxCacheCapacity = r.chance(0.35) ? r.range(1, 6) : 20000;

    int nTls = static_cast<int>(r.range(1, 3));
    for (int i = 0; i < nTls; i++) {
        TlsFlowSpec f;
        f.secret = r.next() | 1;
        f.seed = r.next() | 1;
        f.bytes = r.range(16, 128) * 1024;
        f.recordSize = r.range(512, 16384);
        if (r.chance(0.35))
            f.rotateEvery = r.range(8, 48) * 1024;
        f.reverse = r.chance(0.25);
        f.startAt = r.range(0, 4) * sim::kMillisecond;
        s.tls.push_back(f);
    }

    if (r.chance(0.5)) {
        s.nvme.enabled = true;
        s.nvme.ops = static_cast<uint32_t>(r.range(2, 8));
        s.nvme.maxLen = static_cast<uint32_t>(r.range(4096, 65536));
        s.nvme.qdepth = static_cast<uint32_t>(r.range(1, 4));
        s.nvme.writeRatio = r.chance(0.5) ? 0.25 : 0.0;
        s.nvme.startAt = r.range(0, 4) * sim::kMillisecond;
    }

    // Congestion control: ANIC_TCP_CC pins every scenario (CI shards
    // the nightly seed range across algorithms this way); otherwise
    // mix so a plain sweep exercises all three. Resolved here — not at
    // run time — so replay files reproduce the exact transport.
    tcp::CcAlgo pinned = tcp::parseCcAlgo(util::Env::tcpCc());
    if (pinned != tcp::CcAlgo::Auto) {
        s.cc = pinned;
        r.next(); // keep the seed->scenario map independent of the pin
    } else {
        uint64_t roll = r.range(0, 3);
        s.cc = roll == 0 ? tcp::CcAlgo::Cubic
               : roll == 1 ? tcp::CcAlgo::Dctcp
                           : tcp::CcAlgo::Reno;
    }
    s.ecn = s.cc == tcp::CcAlgo::Dctcp || r.chance(0.35);

    // ECN marking schedules only matter (and only draw randoms) when
    // the endpoints negotiate ECN; dctcp gets the step threshold its
    // control law expects, anything else mostly random RED-style.
    if (s.ecn) {
        for (PhaseSpec &p : s.phases) {
            for (int d = 0; d < 2; d++) {
                net::Impairments &im = p.dir[d];
                if (r.chance(0.5))
                    im.ecnMarkRate = r.uniform() * 0.05;
                if (s.cc == tcp::CcAlgo::Dctcp && r.chance(0.7))
                    im.ecnMarkThresholdBytes = r.range(8, 40) * 1024;
            }
        }
    }

    // Incast fan-in: the heaviest OoS generator — synchronized bursts
    // into one receiver, retransmit storms on the shared path.
    if (r.chance(0.35)) {
        s.incast.senders = static_cast<uint32_t>(r.range(4, 16));
        s.incast.bytesPerSender = r.range(2, 32) * 1024;
        s.incast.rounds = static_cast<uint32_t>(r.range(1, 3));
        s.incast.gap = r.range(1, 4) * sim::kMillisecond;
        s.incast.startAt = r.range(0, 4) * sim::kMillisecond;
    }

    // Open-loop short flows: connection churn + cross traffic.
    if (r.chance(0.3)) {
        s.shortFlows.count = static_cast<uint32_t>(r.range(4, 24));
        s.shortFlows.maxBytes = r.range(1, 8) * 1024;
        s.shortFlows.meanGap = r.range(50, 400) * sim::kMicrosecond;
        s.shortFlows.startAt = r.range(0, 4) * sim::kMillisecond;
    }

    // Third-protocol storage axis (drawn last, so every earlier
    // seed->scenario mapping is unchanged): an iSCSI workload next to
    // the TLS and NVMe flows. ANIC_FUZZ_STORAGE pins the write-heavy
    // storage mix — the CI arm dedicated to the NVMe H2C/R2T write
    // path and the iSCSI digest/placement engines.
    bool storagePinned = util::Env::fuzzStorage();
    if (r.chance(0.35) || storagePinned) {
        s.iscsi.enabled = true;
        s.iscsi.ops = static_cast<uint32_t>(r.range(2, 8));
        s.iscsi.maxLen = static_cast<uint32_t>(r.range(4096, 65536));
        s.iscsi.qdepth = static_cast<uint32_t>(r.range(1, 4));
        s.iscsi.writeRatio =
            storagePinned ? 0.6 : (r.chance(0.5) ? 0.5 : 0.0);
        s.iscsi.startAt = r.range(0, 4) * sim::kMillisecond;
    }
    if (storagePinned) {
        if (!s.nvme.enabled) {
            s.nvme.enabled = true;
            s.nvme.ops = static_cast<uint32_t>(r.range(2, 8));
            s.nvme.maxLen = static_cast<uint32_t>(r.range(4096, 65536));
            s.nvme.qdepth = static_cast<uint32_t>(r.range(1, 4));
            s.nvme.startAt = r.range(0, 4) * sim::kMillisecond;
        }
        s.nvme.writeRatio = 0.75;
    }

    return s;
}

} // namespace anic::testing
