/**
 * @file
 * FSM invariant checking for the fuzz harness. FsmInvariantChecker
 * implements nic::FsmProbe and validates, synchronously and for every
 * per-flow FSM in a run, the properties the paper's transparency
 * argument rests on:
 *
 *  - a span is only ever processed (transforms applied) when the FSM
 *    is Offloading and the span starts exactly at the expected
 *    position — out-of-sequence data is never offloaded;
 *  - state transitions follow the documented diagram (the only exit
 *    from Offloading is Searching; Tracking is only entered from
 *    Searching);
 *  - resync request ids increase monotonically per flow, responses
 *    match an outstanding request, and *confirmed* speculations move
 *    strictly forward in sequence space;
 *
 * plus post-run trace-ring validation (timestamps monotonic) and a
 * stable FNV-1a hash over the trace used for determinism checks.
 */

#ifndef ANIC_TESTING_INVARIANTS_HH
#define ANIC_TESTING_INVARIANTS_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "nic/stream_fsm.hh"
#include "sim/trace.hh"

namespace anic::testing {

class FsmInvariantChecker : public nic::FsmProbe
{
  public:
    void onSegment(uint64_t traceId, nic::FsmState preState, uint64_t pos,
                   uint64_t preExpected, size_t len, bool processed) override;
    void onTransition(uint64_t traceId, nic::FsmState from,
                      nic::FsmState to) override;
    void onResyncRequest(uint64_t traceId, uint64_t reqId,
                         uint64_t pos) override;
    void onResyncResolved(uint64_t traceId, uint64_t reqId, bool ok,
                          uint64_t pos) override;

    const std::vector<std::string> &violations() const { return violations_; }
    uint64_t eventsSeen() const { return events_; }

  private:
    void fail(std::string msg);

    struct FlowState
    {
        uint64_t lastReqId = 0;
        uint64_t pendingReqId = 0;
        uint64_t pendingReqPos = 0;
        bool havePending = false;
        uint64_t lastConfirmedPos = 0;
        bool haveConfirmed = false;
    };

    std::unordered_map<uint64_t, FlowState> flows_;
    std::vector<std::string> violations_;
    uint64_t events_ = 0;
};

/** Validates the trace ring (timestamps oldest-first, non-decreasing);
 *  returns human-readable violations, empty when clean. */
std::vector<std::string> checkTraceRing(const sim::TraceRing &ring);

/** Stable FNV-1a hash over all trace events (ts, kind, id, operands,
 *  component name) — the run fingerprint for determinism checks. */
uint64_t traceHash(const sim::TraceRing &ring);

} // namespace anic::testing

#endif // ANIC_TESTING_INVARIANTS_HH
