/**
 * @file
 * Fuzz scenarios: a declarative, fully-seeded description of one
 * differential experiment — a time-varying impairment schedule on
 * both link directions, NIC context-cache pressure, a set of TLS
 * flows (with optional mid-stream key rotation and either data
 * direction), and an optional NVMe-TCP workload.
 *
 * Scenarios are pure data: ScenarioGen derives one deterministically
 * from a 64-bit seed (no wall clock, no global state), and the text
 * form round-trips losslessly so a failing scenario can be saved as a
 * replay file and reproduced tick-identically by
 * `fuzz_offload --replay <file>`.
 */

#ifndef ANIC_TESTING_SCENARIO_HH
#define ANIC_TESTING_SCENARIO_HH

#include <optional>
#include <string>
#include <vector>

#include "net/link.hh"
#include "sim/simulator.hh"
#include "tcp/congestion.hh"
#include "util/rand.hh"

namespace anic::testing {

/** One interval of the impairment schedule. */
struct PhaseSpec
{
    sim::Tick duration = 10 * sim::kMillisecond;
    net::Impairments dir[2]; // [0]: a->b, [1]: b->a
};

/** One TLS connection's workload. */
struct TlsFlowSpec
{
    uint64_t secret = 1;    ///< base key-derivation secret
    uint64_t seed = 1;      ///< plaintext content seed
    uint64_t bytes = 65536; ///< total plaintext to move
    size_t recordSize = 4096;
    /** Rotate to a fresh key (socket swap on the live connection)
     *  every this many plaintext bytes; 0 = never. */
    uint64_t rotateEvery = 0;
    bool reverse = false; ///< data flows server(b) -> client(a)
    sim::Tick startAt = 0;
};

/**
 * Incast fan-in: N plain-TCP senders on node a converge on one
 * acceptor port on node b, each pushing bytesPerSender per round in
 * synchronized bursts — the classic partition/aggregate microburst
 * that turns a shallow queue into retransmit storms.
 */
struct IncastSpec
{
    uint32_t senders = 0; ///< 0 disables the workload
    uint64_t bytesPerSender = 16384;
    uint32_t rounds = 1;
    sim::Tick gap = 1 * sim::kMillisecond; ///< between burst rounds
    sim::Tick startAt = 0;
};

/**
 * Open-loop short-flow arrivals: @p count one-shot a->b flows whose
 * sizes and inter-arrival gaps are drawn deterministically from the
 * scenario seed — background connection churn and cross-traffic for
 * the offloaded flows.
 */
struct ShortFlowSpec
{
    uint32_t count = 0; ///< 0 disables the workload
    uint64_t maxBytes = 8192;
    sim::Tick meanGap = 200 * sim::kMicrosecond;
    sim::Tick startAt = 0;
};

/** The NVMe-TCP workload (target on node a, host queue on node b). */
struct NvmeFlowSpec
{
    bool enabled = false;
    uint32_t ops = 0;         ///< total commands to issue
    uint32_t maxLen = 65536;  ///< per-command byte length cap
    uint32_t qdepth = 4;      ///< issue window
    double writeRatio = 0.25; ///< fraction of commands that are writes
    sim::Tick startAt = 0;
};

/** The iSCSI workload (target on node a, initiator on node b). Both
 *  endpoints are offloaded in the offload run — reads exercise the
 *  initiator's digest/placement engines, writes the target's. */
struct IscsiFlowSpec
{
    bool enabled = false;
    uint32_t ops = 0;        ///< total SCSI commands to issue
    uint32_t maxLen = 65536; ///< per-command byte length cap
    uint32_t qdepth = 4;     ///< issue window
    double writeRatio = 0.5; ///< fraction of commands that are writes
    sim::Tick startAt = 0;
};

struct Scenario
{
    uint64_t seed = 1;     ///< generator seed (labels the scenario)
    uint64_t wireSeed = 1; ///< link impairment RNG seed
    size_t ctxCacheCapacity = 20000;
    sim::Tick timeLimit = 4 * sim::kSecond;
    std::vector<PhaseSpec> phases; ///< after the last phase: clean link
    std::vector<TlsFlowSpec> tls;
    NvmeFlowSpec nvme;
    IscsiFlowSpec iscsi;
    IncastSpec incast;
    ShortFlowSpec shortFlows;
    /** Congestion control for every connection in the scenario. The
     *  generator resolves Auto (via ANIC_TCP_CC or the random mix) at
     *  generation time so replay files pin the algorithm. */
    tcp::CcAlgo cc = tcp::CcAlgo::Reno;
    bool ecn = false; ///< request ECN (implied on when cc == dctcp)

    /** True if any phase can flip payload bytes. Corrupting scenarios
     *  get the weaker oracle: delivered bytes must still be correct,
     *  but completion is not guaranteed (authentication failures
     *  legitimately stall a flow). */
    bool hasCorruption() const;

    /** Losslessly serializes to the replay-file text form. */
    std::string toText() const;

    /** Parses toText() output; nullopt on malformed input. */
    static std::optional<Scenario> fromText(const std::string &text);
};

/**
 * Derives scenarios from seeds. The distributions are chosen so quick
 * mode (a few hundred seeds) still hits the interesting regimes:
 * about half the scenarios are corruption-free (eligible for the
 * strict differential oracle), most carry loss/reorder on the data
 * path, a third rotate keys mid-stream, and a third squeeze the NIC
 * context cache below the live flow count.
 */
class ScenarioGen
{
  public:
    Scenario generate(uint64_t seed) const;
};

} // namespace anic::testing

#endif // ANIC_TESTING_SCENARIO_HH
