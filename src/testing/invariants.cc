#include "testing/invariants.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace anic::testing {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof buf, format, ap);
    va_end(ap);
    return buf;
}

} // namespace

void
FsmInvariantChecker::fail(std::string msg)
{
    // Bound memory: a broken FSM can violate on every packet.
    if (violations_.size() < 64)
        violations_.push_back(std::move(msg));
}

void
FsmInvariantChecker::onSegment(uint64_t traceId, nic::FsmState preState,
                               uint64_t pos, uint64_t preExpected, size_t len,
                               bool processed)
{
    events_++;
    (void)len;
    if (!processed)
        return;
    if (preState != nic::FsmState::Offloading)
        fail(fmt("flow %" PRIu64 ": span at pos %" PRIu64
                 " processed while FSM was %s",
                 traceId, pos, nic::fsmStateName(preState)));
    if (pos != preExpected)
        fail(fmt("flow %" PRIu64 ": out-of-sequence span processed "
                 "(pos %" PRIu64 ", expected %" PRIu64 ")",
                 traceId, pos, preExpected));
}

void
FsmInvariantChecker::onTransition(uint64_t traceId, nic::FsmState from,
                                  nic::FsmState to)
{
    events_++;
    if (from == to) {
        fail(fmt("flow %" PRIu64 ": self-loop transition reported (%s)",
                 traceId, nic::fsmStateName(from)));
        return;
    }
    // Legal edges (paper Fig. 7 plus the reset/arm edge): the only
    // exit from Offloading is Searching, and Tracking is only entered
    // from Searching.
    bool legal = (from == nic::FsmState::Offloading &&
                  to == nic::FsmState::Searching) ||
                 (from == nic::FsmState::Searching) ||
                 (from == nic::FsmState::Tracking);
    if (!legal)
        fail(fmt("flow %" PRIu64 ": illegal transition %s -> %s", traceId,
                 nic::fsmStateName(from), nic::fsmStateName(to)));
    // A transition out of Offloading abandons any live speculation
    // bookkeeping; entering Searching clears the pending request.
    if (to == nic::FsmState::Searching)
        flows_[traceId].havePending = false;
}

void
FsmInvariantChecker::onResyncRequest(uint64_t traceId, uint64_t reqId,
                                     uint64_t pos)
{
    events_++;
    FlowState &f = flows_[traceId];
    if (reqId <= f.lastReqId)
        fail(fmt("flow %" PRIu64 ": resync request ids not increasing "
                 "(%" PRIu64 " after %" PRIu64 ")",
                 traceId, reqId, f.lastReqId));
    f.lastReqId = reqId;
    f.pendingReqId = reqId;
    f.pendingReqPos = pos;
    f.havePending = true;
}

void
FsmInvariantChecker::onResyncResolved(uint64_t traceId, uint64_t reqId,
                                      bool ok, uint64_t pos)
{
    events_++;
    FlowState &f = flows_[traceId];
    if (!f.havePending || reqId != f.pendingReqId || pos != f.pendingReqPos) {
        fail(fmt("flow %" PRIu64 ": resolution for req %" PRIu64
                 " at pos %" PRIu64 " does not match the live speculation",
                 traceId, reqId, pos));
        return;
    }
    f.havePending = false;
    if (ok) {
        if (f.haveConfirmed && pos <= f.lastConfirmedPos)
            fail(fmt("flow %" PRIu64 ": resync confirmation moved backwards "
                     "in sequence space (%" PRIu64 " after %" PRIu64 ")",
                     traceId, pos, f.lastConfirmedPos));
        f.lastConfirmedPos = pos;
        f.haveConfirmed = true;
    }
}

std::vector<std::string>
checkTraceRing(const sim::TraceRing &ring)
{
    std::vector<std::string> out;
    std::vector<sim::TraceEvent> evs = ring.events();
    for (size_t i = 1; i < evs.size(); i++) {
        if (evs[i].ts < evs[i - 1].ts) {
            out.push_back(fmt("trace ring timestamps not monotonic at "
                              "event %zu (%" PRIu64 " after %" PRIu64 ")",
                              i, evs[i].ts, evs[i - 1].ts));
            break; // one report is enough
        }
    }
    return out;
}

uint64_t
traceHash(const sim::TraceRing &ring)
{
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= kPrime;
        }
    };
    for (const sim::TraceEvent &ev : ring.events()) {
        mix(ev.ts);
        mix(static_cast<uint64_t>(ev.kind));
        mix(ev.id);
        mix(ev.a);
        mix(ev.b);
        for (char c : ev.comp) {
            h ^= static_cast<uint8_t>(c);
            h *= kPrime;
        }
    }
    return h;
}

} // namespace anic::testing
