#include "testing/traffic.hh"

#include <cstring>
#include <memory>

#include "crypto/gcm.hh"

namespace anic::testing {

net::Impairments
randomImpairments(Rng &rng, const ImpairmentCaps &caps)
{
    net::Impairments im;
    im.lossRate = rng.uniform() * caps.loss;
    im.reorderRate = rng.uniform() * caps.reorder;
    im.duplicateRate = rng.uniform() * caps.duplicate;
    im.corruptRate = caps.corrupt > 0 ? rng.uniform() * caps.corrupt : 0.0;
    return im;
}

Bytes
buildTlsRecordStream(const tls::DirectionKeys &keys, Rng &rng, int count,
                     uint64_t plainSeed, std::vector<RecordInfo> &records,
                     size_t minPlain, size_t maxPlain)
{
    crypto::AesGcm gcm(keys.key);
    Bytes stream;
    records.clear();
    records.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++) {
        size_t plen = rng.range(minPlain, maxPlain);
        tls::RecordHeader h;
        h.length = static_cast<uint16_t>(plen + tls::kTagSize);
        size_t base = stream.size();
        records.push_back(RecordInfo{base, plen});
        stream.resize(base + h.wireLen());
        h.encode(stream.data() + base);
        Bytes pt(plen);
        fillDeterministic(pt, plainSeed, 0);
        auto nonce = tls::recordNonce(keys.staticIv, i);
        Bytes sealed = gcm.seal(
            nonce, ByteView(stream.data() + base, tls::kHeaderSize), pt);
        std::memcpy(stream.data() + base + tls::kHeaderSize, sealed.data(),
                    sealed.size());
    }
    return stream;
}

std::function<void()>
deterministicPump(std::function<size_t(ByteView)> send, uint64_t seed,
                  uint64_t total, uint64_t &sent, size_t chunk)
{
    auto st = std::make_shared<std::function<size_t(ByteView)>>(
        std::move(send));
    return [st, seed, total, &sent, chunk] {
        while (sent < total) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(total - sent, chunk));
            Bytes b(n);
            fillDeterministic(b, seed, sent);
            size_t acc = (*st)(b);
            sent += acc;
            if (acc < n)
                break;
        }
    };
}

} // namespace anic::testing
