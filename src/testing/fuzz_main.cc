/**
 * @file
 * fuzz_offload — deterministic differential fuzzer for the autonomous
 * offload FSM.
 *
 *   fuzz_offload --seeds 200            # quick sweep (CI tier)
 *   fuzz_offload --seeds 5000 --jobs 8  # sharded across 8 workers
 *   fuzz_offload --seed 1234567         # one specific seed
 *   fuzz_offload --replay fail.scenario # reproduce a saved scenario
 *   fuzz_offload --seeds 25 --expect-failure   # mutation smoke: with
 *       ANIC_FSM_BUG set the sweep must find and minimize a failure
 *
 * --jobs N shards the seed sweep across N worker threads; every world
 * is already run-isolated (its own simulator, registry, trace ring),
 * so stdout is byte-identical to a serial sweep and the reported
 * failing seed is the earliest in seed order. On the first failing
 * scenario the harness minimizes it, writes the replay file
 * (fuzz-fail-<seed>.scenario, --out selects the directory), re-loads
 * the file and verifies the reproduction, then exits non-zero. Every
 * Nth seed (--determinism-every, default 16) the offload run is
 * executed twice and the trace-ring hashes must match exactly — the
 * same seed always yields the same simulation.
 */

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/executor.hh"
#include "testing/differential.hh"

using namespace anic::testing;
namespace sim = anic::sim;

namespace {

struct Options
{
    uint64_t seeds = 200;
    uint64_t seedBase = 1;
    bool haveSingleSeed = false;
    uint64_t singleSeed = 0;
    std::string replayFile;
    std::string outDir = ".";
    uint64_t determinismEvery = 16;
    bool expectFailure = false;
    int jobs = 1;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seeds N] [--seed-base B] [--seed S] [--jobs N]\n"
        "          [--replay FILE] [--out DIR] [--determinism-every K]\n"
        "          [--expect-failure]\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--seeds") {
            const char *v = need("--seeds");
            if (v == nullptr)
                return false;
            opt.seeds = std::strtoull(v, nullptr, 10);
        } else if (a == "--seed-base") {
            const char *v = need("--seed-base");
            if (v == nullptr)
                return false;
            opt.seedBase = std::strtoull(v, nullptr, 10);
        } else if (a == "--seed") {
            const char *v = need("--seed");
            if (v == nullptr)
                return false;
            opt.haveSingleSeed = true;
            opt.singleSeed = std::strtoull(v, nullptr, 10);
        } else if (a == "--jobs") {
            const char *v = need("--jobs");
            if (v == nullptr)
                return false;
            opt.jobs = std::atoi(v);
            if (opt.jobs < 1)
                opt.jobs = 1;
        } else if (a == "--replay") {
            const char *v = need("--replay");
            if (v == nullptr)
                return false;
            opt.replayFile = v;
        } else if (a == "--out") {
            const char *v = need("--out");
            if (v == nullptr)
                return false;
            opt.outDir = v;
        } else if (a == "--determinism-every") {
            const char *v = need("--determinism-every");
            if (v == nullptr)
                return false;
            opt.determinismEvery = std::strtoull(v, nullptr, 10);
        } else if (a == "--expect-failure") {
            opt.expectFailure = true;
        } else {
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

void
printErrors(const std::vector<std::string> &errs)
{
    for (const std::string &e : errs)
        std::printf("  %s\n", e.c_str());
}

/** Minimizes, saves, and re-verifies one failing scenario.
 *  Returns true if the written replay file reproduces the failure. */
bool
handleFailure(DifferentialRunner &runner, const Scenario &s,
              const std::vector<std::string> &errs, const Options &opt)
{
    std::printf("FAIL seed %" PRIu64 " (%zu error%s):\n", s.seed,
                errs.size(), errs.size() == 1 ? "" : "s");
    printErrors(errs);

    std::printf("minimizing...\n");
    Scenario small = runner.minimize(s);
    std::string path =
        opt.outDir + "/fuzz-fail-" + std::to_string(s.seed) + ".scenario";
    std::ofstream out(path);
    out << small.toText();
    out.close();
    if (!out) {
        std::printf("could not write replay file %s\n", path.c_str());
        return false;
    }
    std::printf("replay written: %s\n", path.c_str());

    // Close the loop: the file on disk must itself reproduce.
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::optional<Scenario> reloaded = Scenario::fromText(buf.str());
    if (!reloaded) {
        std::printf("replay file does not parse back\n");
        return false;
    }
    std::vector<std::string> again = runner.check(*reloaded);
    if (again.empty()) {
        std::printf("replay file does NOT reproduce the failure\n");
        return false;
    }
    std::printf("replay reproduces (%zu error%s):\n", again.size(),
                again.size() == 1 ? "" : "s");
    printErrors(again);
    return true;
}

int
replayMode(const Options &opt)
{
    std::ifstream in(opt.replayFile);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", opt.replayFile.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::optional<Scenario> s = Scenario::fromText(buf.str());
    if (!s) {
        std::fprintf(stderr, "malformed scenario file %s\n",
                     opt.replayFile.c_str());
        return 2;
    }
    DifferentialRunner runner;
    std::vector<std::string> errs = runner.check(*s);
    if (errs.empty()) {
        std::printf("replay seed %" PRIu64 ": PASS\n", s->seed);
        return 0;
    }
    std::printf("replay seed %" PRIu64 ": FAIL (%zu error%s)\n", s->seed,
                errs.size(), errs.size() == 1 ? "" : "s");
    printErrors(errs);
    return 1;
}

/** What one seed's job recorded. Slots are distinct per submission
 *  index, so workers never share one. */
struct SeedOutcome
{
    bool ran = false;     ///< false: canceled after an earlier failure
    bool detFail = false; ///< trace-hash mismatch between double runs
    uint64_t h1 = 0, h2 = 0;
    std::vector<std::string> errs; ///< differential oracle violations
    Scenario scenario;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (!opt.replayFile.empty())
        return replayMode(opt);

    ScenarioGen gen;
    uint64_t first = opt.haveSingleSeed ? opt.singleSeed : opt.seedBase;
    uint64_t count = opt.haveSingleSeed ? 1 : opt.seeds;

    std::vector<SeedOutcome> outcomes(count);
    sim::JobRunner::Config rcfg;
    rcfg.jobs = opt.jobs;
    {
        // Progress goes to stderr (nondeterministic pacing is fine
        // there); successful jobs write nothing to stdout, so parallel
        // and serial stdout match byte for byte.
        uint64_t flushed = 0;
        rcfg.sink = [&flushed, count](const sim::RunContext::Output &o) {
            if (!o.text.empty())
                std::fwrite(o.text.data(), 1, o.text.size(), stdout);
            flushed++;
            if (flushed % 25 == 0)
                std::fprintf(stderr, "... %" PRIu64 "/%" PRIu64 " done\n",
                             flushed, count);
        };
        sim::JobRunner runner(rcfg);
        for (uint64_t i = 0; i < count; i++) {
            uint64_t seed = first + i;
            bool detCheck = opt.determinismEvery != 0 &&
                            i % opt.determinismEvery == 0;
            runner.submit(
                "seed=" + std::to_string(seed),
                [&gen, &outcomes, &runner, i, seed,
                 detCheck](sim::RunContext &) {
                    SeedOutcome &so = outcomes[i];
                    so.ran = true;
                    Scenario s = gen.generate(seed);
                    DifferentialRunner dr;
                    if (detCheck) {
                        so.h1 = dr.runOne(s, true).traceHash;
                        so.h2 = dr.runOne(s, true).traceHash;
                        if (so.h1 != so.h2) {
                            so.detFail = true;
                            so.scenario = s;
                            runner.cancelPending();
                            return;
                        }
                    }
                    so.errs = dr.check(s);
                    if (!so.errs.empty()) {
                        so.scenario = s;
                        // Seeds submitted before this one have already
                        // been popped (the queue drains in order), so
                        // they still finish: the earliest failure in
                        // seed order is always among completed slots.
                        runner.cancelPending();
                    }
                });
        }
        runner.drain();
    }

    // Report in seed order: the verdict is independent of --jobs.
    uint64_t checked = 0;
    uint64_t determinismChecks = 0;
    for (uint64_t i = 0; i < count; i++) {
        const SeedOutcome &so = outcomes[i];
        if (!so.ran)
            break;
        checked++;
        if (so.detFail) {
            std::printf("FAIL seed %" PRIu64
                        ": nondeterministic trace "
                        "(%016" PRIx64 " vs %016" PRIx64 ")\n",
                        first + i, so.h1, so.h2);
            return 1;
        }
        if (opt.determinismEvery != 0 && i % opt.determinismEvery == 0)
            determinismChecks++;
        if (!so.errs.empty()) {
            DifferentialRunner runner;
            bool reproduced =
                handleFailure(runner, so.scenario, so.errs, opt);
            if (opt.expectFailure && reproduced) {
                std::printf("expected failure found after %" PRIu64
                            " scenario%s\n",
                            checked, checked == 1 ? "" : "s");
                return 0;
            }
            return 1;
        }
    }

    if (opt.expectFailure) {
        std::printf("expected a failure but %" PRIu64
                    " scenarios passed\n",
                    checked);
        return 1;
    }
    std::printf("{\"scenarios\": %" PRIu64 ", \"failures\": 0, "
                "\"determinism_checks\": %" PRIu64 "}\n",
                checked, determinismChecks);
    return 0;
}
