/**
 * @file
 * Shared seeded traffic-generation helpers used by both the property
 * tests (tests/property_test.cpp via tests/support/scenario.hh) and
 * the fuzz harness. Everything here is a pure function of its Rng /
 * seed arguments so callers stay exactly reproducible.
 */

#ifndef ANIC_TESTING_TRAFFIC_HH
#define ANIC_TESTING_TRAFFIC_HH

#include <functional>

#include "net/link.hh"
#include "tcp/socket.hh"
#include "tls/record.hh"
#include "util/bytes.hh"
#include "util/rand.hh"

namespace anic::testing {

/** Bounds for randomImpairments(); defaults mirror the ranges the
 *  property suites historically swept. */
struct ImpairmentCaps
{
    double loss = 0.05;
    double reorder = 0.05;
    double duplicate = 0.02;
    double corrupt = 0.0;
};

/** One direction's impairments drawn uniformly below the caps. */
net::Impairments randomImpairments(Rng &rng, const ImpairmentCaps &caps = {});

/** One record of a buildTlsRecordStream() stream. */
struct RecordInfo
{
    uint64_t start = 0;   ///< stream offset of the record header
    size_t plainLen = 0;  ///< plaintext bytes in the record
};

/**
 * Builds a contiguous ciphertext stream of @p count AES-GCM records
 * with random plaintext sizes in [minPlain, maxPlain]. Record i is
 * sealed with recordNonce(keys.staticIv, i); plaintext is
 * fillDeterministic(@p plainSeed, 0) per record (each record's
 * expected plaintext is recomputable from its RecordInfo alone).
 */
Bytes buildTlsRecordStream(const tls::DirectionKeys &keys, Rng &rng,
                           int count, uint64_t plainSeed,
                           std::vector<RecordInfo> &records,
                           size_t minPlain = 64, size_t maxPlain = 16384);

/**
 * Returns a pump closure that streams fillDeterministic(@p seed)
 * bytes through @p send until @p total bytes were accepted,
 * advancing @p sent (caller-owned so completion is observable).
 * Install it as the socket's writable callback and call it once to
 * start.
 */
std::function<void()> deterministicPump(std::function<size_t(ByteView)> send,
                                        uint64_t seed, uint64_t total,
                                        uint64_t &sent, size_t chunk = 65536);

/**
 * Receiver-side ledger: feed every popped RxSegment; verifies the
 * bytes against fillDeterministic(seed, streamOff) and accumulates
 * the delivered count.
 */
struct DeliveryChecker
{
    uint64_t seed = 0;
    uint64_t received = 0;
    bool corrupt = false;

    void
    onSegment(const tcp::RxSegment &seg)
    {
        if (!checkDeterministic(seg.data, seed, seg.streamOff))
            corrupt = true;
        received += seg.data.size();
    }
};

} // namespace anic::testing

#endif // ANIC_TESTING_TRAFFIC_HH
