/**
 * @file
 * Differential execution of fuzz scenarios. Every scenario is run
 * twice in isolated worlds — once with NIC L5 offloads enabled
 * (TLS tx/rx, NVMe-TCP crc+copy) and once software-only — and the
 * oracle asserts the paper's transparency claim:
 *
 *  - delivered application bytes are always the ground-truth bytes
 *    (authenticated-crypto makes wrong-but-delivered impossible; this
 *    catches it if the stack ever breaks that),
 *  - in corruption-free scenarios both runs deliver *everything* and
 *    agree on TCP goodput accounting (record framing is made
 *    deterministic so ciphertext stream lengths are comparable),
 *  - FSM invariants hold on every NIC flow context (via FsmProbe),
 *  - the per-run trace ring is well-formed (monotonic timestamps).
 *
 * A failing scenario can be auto-minimized: phases are halved, flows
 * dropped, and impairment knobs zeroed one at a time while the
 * failure persists.
 */

#ifndef ANIC_TESTING_DIFFERENTIAL_HH
#define ANIC_TESTING_DIFFERENTIAL_HH

#include <string>
#include <vector>

#include "testing/scenario.hh"

namespace anic::testing {

/** Outcome of one world execution (offload or software). */
struct RunResult
{
    bool completed = false; ///< all flows finished before the limit
    std::vector<uint64_t> tlsDelivered;    ///< plaintext per TLS flow
    std::vector<uint64_t> tlsTcpDelivered; ///< ciphertext stream bytes
    uint64_t nvmeReadsOk = 0;
    uint64_t nvmeWritesOk = 0;
    uint64_t nvmeFailures = 0;
    uint64_t nvmeTcpDelivered = 0;
    bool nvmeDesynced = false;
    uint64_t iscsiReadsOk = 0;
    uint64_t iscsiWritesOk = 0;
    uint64_t iscsiFailures = 0;
    uint64_t iscsiTcpDelivered = 0;
    bool iscsiDesynced = false;
    uint64_t incastDelivered = 0; ///< plain-TCP incast bytes at receiver
    uint64_t shortDelivered = 0;  ///< short-flow bytes at receiver
    /** Plain-TCP payload mismatch. Expected under corruption (no
     *  authentication on the plain flows); an oracle error otherwise. */
    bool plainCorrupt = false;
    uint64_t traceHash = 0;   ///< run fingerprint (determinism checks)
    uint64_t fsmEvents = 0;   ///< probe callbacks observed
    std::vector<std::string> errors; ///< oracle/invariant violations
};

class DifferentialRunner
{
  public:
    /** Executes the scenario once. @p offload selects the NIC-offload
     *  or the software-only world. */
    RunResult runOne(const Scenario &s, bool offload);

    /** Full differential verdict: offload + software runs plus the
     *  cross-run oracle. Empty result means the scenario passes. */
    std::vector<std::string> check(const Scenario &s);

    /**
     * Shrinks a failing scenario while check() still fails: halves
     * the phase list, drops flows, zeroes one impairment knob at a
     * time, halves flow sizes. Bounded by @p maxEvals differential
     * evaluations; returns the smallest still-failing scenario.
     */
    Scenario minimize(Scenario s, int maxEvals = 48);
};

} // namespace anic::testing

#endif // ANIC_TESTING_DIFFERENTIAL_HH
