#include "testing/differential.hh"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>

#include "core/node.hh"
#include "host/storage.hh"
#include "iscsi/session.hh"
#include "nvmetcp/host_queue.hh"
#include "nvmetcp/target.hh"
#include "testing/invariants.hh"
#include "testing/traffic.hh"
#include "tls/ktls.hh"
#include "util/env.hh"

namespace anic::testing {

namespace {

constexpr net::IpAddr kIpA = net::makeIp(10, 0, 0, 1);
constexpr net::IpAddr kIpB = net::makeIp(10, 0, 0, 2);
constexpr uint16_t kTlsPortBase = 4000;
constexpr uint16_t kNvmePort = 4420;
constexpr uint16_t kIscsiPort = 3260;
constexpr uint16_t kIncastPort = 4600;
constexpr uint16_t kShortFlowPort = 4700;
constexpr sim::Tick kPollPeriod = 200 * sim::kMicrosecond;

std::string
fmtMsg(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof buf, format, ap);
    va_end(ap);
    return buf;
}

/** Key-derivation secret for rotation generation @p gen of a flow. */
uint64_t
genSecret(const TlsFlowSpec &f, uint64_t gen)
{
    return f.secret + 0x9e3779b97f4a7c15ull * gen;
}

net::Link::Config
linkCfg(const Scenario &s)
{
    net::Link::Config c;
    c.seed = s.wireSeed;
    if (!s.phases.empty()) {
        c.dir[0] = s.phases[0].dir[0];
        c.dir[1] = s.phases[0].dir[1];
    }
    return c;
}

core::Node::Config
nodeCfg(const Scenario &s, const char *name, uint64_t stackSeed,
        sim::StatsRegistry *reg, sim::TraceRing *trace, nic::FsmProbe *probe)
{
    core::Node::Config c;
    c.name = name;
    c.stackSeed = stackSeed;
    c.registry = reg;
    c.trace = trace;
    c.nicCfg.ctxCacheCapacity = s.ctxCacheCapacity;
    c.nicCfg.trace = trace;
    c.nicCfg.fsmProbe = probe;
    c.tcpCfg.cc = s.cc;
    c.tcpCfg.ecn = s.ecn;
    return c;
}

/**
 * One isolated execution world: its own simulator, registry, trace
 * ring, link, and two nodes, so the offload and software runs share
 * nothing. The impairment schedule is armed at construction.
 */
struct FuzzWorld
{
    sim::Simulator sim;
    sim::StatsRegistry registry;
    sim::TraceRing trace{1 << 16};
    net::Link link;
    core::Node a;
    core::Node b;
    // Per-phase impairment pairs, indexed by scheduled events (an
    // index capture fits the inline callback budget; the structs
    // themselves would not).
    std::vector<std::array<net::Impairments, 2>> phaseImp;

    // One probe per node: context ids are only unique per NIC.
    FuzzWorld(const Scenario &s, nic::FsmProbe *probeA,
              nic::FsmProbe *probeB)
        : link(sim, linkCfg(s)),
          a(sim, nodeCfg(s, "a", 11, &registry, &trace, probeA)),
          b(sim, nodeCfg(s, "b", 22, &registry, &trace, probeB))
    {
        trace.enable();
        a.attachPort(link, 0, kIpA);
        b.attachPort(link, 1, kIpB);
        // Phase 0 is live from t=0 (via the link config); later phase
        // boundaries and the final clean-drain switch are scheduled.
        sim::Tick at = 0;
        for (size_t i = 0; i < s.phases.size(); i++) {
            at += s.phases[i].duration;
            net::Impairments d0, d1; // clean after the last phase
            if (i + 1 < s.phases.size()) {
                d0 = s.phases[i + 1].dir[0];
                d1 = s.phases[i + 1].dir[1];
            }
            size_t slot = phaseImp.size();
            phaseImp.push_back({d0, d1});
            sim.schedule(at, [this, slot] {
                link.setImpairments(0, phaseImp[slot][0]);
                link.setImpairments(1, phaseImp[slot][1]);
            });
        }
    }
};

/**
 * Drives one TLS flow: client on node a connects to node b, the
 * sender streams fillDeterministic(seed) plaintext in
 * record-granular chunks (so the framed ciphertext stream is
 * identical across the offload and software runs), the receiver
 * verifies every delivered byte against the same generator. Optional
 * mid-stream key rotation swaps the TlsSocket on both sides of the
 * live connection:
 *
 *  - the receiver swaps the moment it has delivered the last
 *    generation byte (zero-delay event; all old-key ciphertext has
 *    been consumed synchronously, so the new socket starts exactly at
 *    the generation boundary of the TCP stream);
 *  - the sender swaps only once the boundary is fully acked (no
 *    staged record tail, sndUna == sndNxt), which happens-after the
 *    receiver consumed — and therefore re-keyed past — the boundary.
 */
class TlsFlowDriver
{
  public:
    TlsFlowDriver(FuzzWorld &w, const TlsFlowSpec &spec, int idx,
                  bool offload)
        : w_(w), spec_(spec), offload_(offload),
          port_(static_cast<uint16_t>(kTlsPortBase + idx))
    {
        // The accept callback fires on the SYN; sockets can only be
        // armed once the connection is established on each side.
        w_.b.stack().listen(port_, w_.b.tcpConfig(),
                            [this](tcp::TcpConnection &c) {
                                connB_ = &c;
                                c.setOnConnected(
                                    [this] { makeSocket(false); });
                            });
        w_.sim.schedule(spec_.startAt, [this] {
            tcp::TcpConnection &c = w_.a.stack().connect(
                kIpA, kIpB, port_, w_.a.tcpConfig());
            connA_ = &c;
            c.setOnConnected([this] { makeSocket(true); });
        });
        if (spec_.rotateEvery != 0)
            w_.sim.schedule(spec_.startAt + kPollPeriod,
                            [this] { senderPoll(); });
    }

    bool done() const { return received_ >= spec_.bytes; }
    uint64_t delivered() const { return received_; }
    bool corrupt() const { return corrupt_; }

    /** Ciphertext stream bytes the receiver's TCP delivered. */
    uint64_t
    tcpDelivered() const
    {
        tcp::TcpConnection *c = spec_.reverse ? connA_ : connB_;
        return c != nullptr ? c->stats().bytesDelivered.value() : 0;
    }

    /** End-of-run diagnostics (printed on failure by the runner). */
    std::string
    debugState() const
    {
        tcp::TcpConnection *sc = spec_.reverse ? connB_ : connA_;
        tcp::TcpConnection *rc = spec_.reverse ? connA_ : connB_;
        const tls::TlsSocket *ss = spec_.reverse ? bSock_.get() : aSock_.get();
        const tls::TlsSocket *rs = spec_.reverse ? aSock_.get() : bSock_.get();
        std::string out = fmtMsg(
            "sent=%" PRIu64 "/%" PRIu64 " recv=%" PRIu64 " gens=%" PRIu64
            "/%" PRIu64,
            sent_, spec_.bytes, received_, sendGen_, recvGen_);
        if (sc != nullptr)
            out += fmtMsg(" | snd una=%u nxt=%u retx=%" PRIu64
                          " rto=%" PRIu64,
                          sc->sndUna(), sc->sndNextByteSeq(),
                          sc->stats().retransmits.value(),
                          sc->stats().rtoFires.value());
        if (rc != nullptr)
            out += fmtMsg(" | rcv nxt=%u queued=%zu delivered=%" PRIu64,
                          rc->rcvNxt(), rc->rxQueuedBytes(),
                          rc->stats().bytesDelivered.value());
        if (ss != nullptr)
            out += fmtMsg(" | stx rec=%" PRIu64 " backlog=%zu",
                          ss->stats().recordsTx.value(), ss->txBacklog());
        if (rs != nullptr)
            out += fmtMsg(" | rrx rec=%" PRIu64 " tagfail=%" PRIu64
                          " resync=%" PRIu64 "/%" PRIu64,
                          rs->stats().recordsRx.value(),
                          rs->stats().tagFailures.value(),
                          rs->stats().rxResyncRequests.value(),
                          rs->stats().rxResyncConfirmed.value());
        return out;
    }

  private:
    uint64_t
    genEnd(uint64_t gen) const
    {
        if (spec_.rotateEvery == 0)
            return spec_.bytes;
        return std::min<uint64_t>(spec_.bytes,
                                  (gen + 1) * spec_.rotateEvery);
    }

    tls::TlsSocket *
    senderSock()
    {
        return (spec_.reverse ? bSock_ : aSock_).get();
    }

    tls::TlsSocket *
    recvSock()
    {
        return (spec_.reverse ? aSock_ : bSock_).get();
    }

    /** (Re)creates one side's socket for its current generation. */
    void
    makeSocket(bool aSide)
    {
        tcp::TcpConnection *conn = aSide ? connA_ : connB_;
        bool isSender = (aSide != spec_.reverse);
        uint64_t gen = isSender ? sendGen_ : recvGen_;
        tls::TlsConfig cfg;
        cfg.recordSize = spec_.recordSize;
        cfg.txOffload = offload_ && isSender;
        cfg.rxOffload = offload_ && !isSender;
        auto &slot = aSide ? aSock_ : bSock_;
        slot.reset(); // old l5o contexts must go before the new ones
        slot = std::make_unique<tls::TlsSocket>(
            *conn, tls::SessionKeys::derive(genSecret(spec_, gen), aSide),
            cfg);
        if (offload_)
            slot->enableOffload(aSide ? w_.a.device(0) : w_.b.device(0));
        if (isSender) {
            slot->setOnWritable([this] { pump(); });
            pump();
        } else {
            slot->setOnReadable([this] { drain(); });
        }
    }

    void
    pump()
    {
        tls::TlsSocket *s = senderSock();
        if (s == nullptr)
            return;
        uint64_t end = genEnd(sendGen_);
        while (sent_ < end) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(spec_.recordSize, end - sent_));
            Bytes buf(n);
            fillDeterministic(buf, spec_.seed, sent_);
            size_t acc = s->send(buf);
            sent_ += acc;
            if (acc < n)
                break;
        }
    }

    void
    drain()
    {
        tls::TlsSocket *s = recvSock();
        if (s == nullptr)
            return;
        while (s->readable()) {
            tcp::RxSegment seg = s->pop();
            // streamOff restarts at 0 in each post-rotation socket.
            if (!checkDeterministic(seg.data, spec_.seed,
                                    recvBase_ + seg.streamOff))
                corrupt_ = true;
            received_ += seg.data.size();
        }
        maybeRotateRecv();
    }

    void
    maybeRotateRecv()
    {
        if (spec_.rotateEvery == 0 || rotatePending_)
            return;
        if (received_ >= spec_.bytes || received_ < genEnd(recvGen_))
            return;
        rotatePending_ = true;
        // Defer the swap out of the delivery callback: the socket we
        // are destroying is the one that invoked drain().
        w_.sim.schedule(0, [this] {
            rotatePending_ = false;
            recvGen_++;
            recvBase_ = received_;
            makeSocket(spec_.reverse);
        });
    }

    void
    senderPoll()
    {
        tls::TlsSocket *s = senderSock();
        tcp::TcpConnection *c = spec_.reverse ? connB_ : connA_;
        if (s != nullptr && sent_ < spec_.bytes &&
            sent_ == genEnd(sendGen_) && s->txBacklog() == 0 &&
            c->sndUna() == c->sndNextByteSeq()) {
            sendGen_++;
            makeSocket(!spec_.reverse);
        }
        if (!done())
            w_.sim.schedule(kPollPeriod, [this] { senderPoll(); });
    }

    FuzzWorld &w_;
    TlsFlowSpec spec_;
    bool offload_;
    uint16_t port_;

    tcp::TcpConnection *connA_ = nullptr;
    tcp::TcpConnection *connB_ = nullptr;
    std::unique_ptr<tls::TlsSocket> aSock_;
    std::unique_ptr<tls::TlsSocket> bSock_;

    uint64_t sent_ = 0;
    uint64_t received_ = 0;
    uint64_t sendGen_ = 0;
    uint64_t recvGen_ = 0;
    uint64_t recvBase_ = 0;
    bool rotatePending_ = false;
    bool corrupt_ = false;
};

/**
 * Drives the NVMe-TCP workload: target + drive on node a, host queue
 * on node b, a pre-generated command list (identical in both runs)
 * issued through a fixed-depth window. Reads verify content against
 * the drive's deterministic generator; writes carry the same content
 * seed so they never perturb what later reads expect.
 */
class NvmeDriver
{
  public:
    NvmeDriver(FuzzWorld &w, const Scenario &s, bool offload)
        : w_(w), spec_(s.nvme), drive_(w.sim, {})
    {
        Rng r(s.seed ^ 0x5eedb10cull);
        ops_.resize(spec_.ops);
        for (Op &op : ops_) {
            op.write = r.uniform() < spec_.writeRatio;
            op.len = static_cast<uint32_t>(r.range(512, spec_.maxLen));
            op.slba = r.range(0, 1u << 20);
        }
        w_.a.stack().listen(kNvmePort, w_.a.tcpConfig(),
                            [this](tcp::TcpConnection &c) {
                                target_ = std::make_unique<
                                    nvmetcp::NvmeTarget>(c, drive_, wc_);
                            });
        w_.sim.schedule(spec_.startAt, [this, offload] {
            tcp::TcpConnection &c = w_.b.stack().connect(
                kIpB, kIpA, kNvmePort, w_.b.tcpConfig());
            c.setOnConnected([this, &c, offload] {
                nvmetcp::NvmeOffloadConfig ocfg;
                ocfg.crcRx = ocfg.copyRx = ocfg.crcTx = offload;
                hostq_ = std::make_unique<nvmetcp::NvmeHostQueue>(c, wc_,
                                                                  ocfg);
                connB_ = &c;
                if (offload)
                    hostq_->enableOffload(w_.b.device(0), c);
                issueMore();
            });
        });
    }

    bool
    done() const
    {
        if (completed_ == ops_.size())
            return true;
        return hostq_ != nullptr && hostq_->desynced() && inFlight_ == 0;
    }

    bool desynced() const { return hostq_ != nullptr && hostq_->desynced(); }
    uint64_t readsOk() const { return readsOk_; }
    uint64_t writesOk() const { return writesOk_; }
    uint64_t failures() const { return failures_; }
    bool contentMismatch() const { return contentMismatch_; }

    uint64_t
    tcpDelivered() const
    {
        return connB_ != nullptr ? connB_->stats().bytesDelivered.value()
                                 : 0;
    }

  private:
    struct Op
    {
        bool write = false;
        uint64_t slba = 0;
        uint32_t len = 0;
    };

    void
    issueMore()
    {
        while (next_ < ops_.size() && inFlight_ < spec_.qdepth &&
               !hostq_->desynced()) {
            const Op &op = ops_[next_++];
            inFlight_++;
            if (op.write) {
                hostq_->write(op.slba, op.len,
                              drive_.config().contentSeed,
                              [this](bool ok) { onDone(ok, true); });
            } else {
                uint64_t slba = op.slba;
                hostq_->read(
                    op.slba, op.len,
                    [this, slba](bool ok, host::BlockBufferPtr buf) {
                        if (ok &&
                            !checkDeterministic(
                                buf->data, drive_.config().contentSeed,
                                slba))
                            contentMismatch_ = true;
                        onDone(ok, false);
                    });
            }
        }
    }

    void
    onDone(bool ok, bool write)
    {
        inFlight_--;
        completed_++;
        if (ok)
            (write ? writesOk_ : readsOk_)++;
        else
            failures_++;
        issueMore();
    }

    FuzzWorld &w_;
    NvmeFlowSpec spec_;
    host::NvmeDrive drive_;
    nvmetcp::WireConfig wc_;
    std::unique_ptr<nvmetcp::NvmeTarget> target_;
    std::unique_ptr<nvmetcp::NvmeHostQueue> hostq_;
    tcp::TcpConnection *connB_ = nullptr;

    std::vector<Op> ops_;
    size_t next_ = 0;
    uint32_t inFlight_ = 0;
    size_t completed_ = 0;
    uint64_t readsOk_ = 0;
    uint64_t writesOk_ = 0;
    uint64_t failures_ = 0;
    bool contentMismatch_ = false;
};

/**
 * Drives the iSCSI workload: target + drive on node a, initiator on
 * node b, a pre-generated command list issued through a fixed-depth
 * window, mirroring NvmeDriver. Unlike the NVMe workload (host-side
 * offload only), the offload run offloads BOTH endpoints, so reads
 * exercise the initiator's digest/placement engines and writes the
 * target's Data-Out placement path under the same impairments.
 */
class IscsiDriver
{
  public:
    IscsiDriver(FuzzWorld &w, const Scenario &s, bool offload)
        : w_(w), spec_(s.iscsi), drive_(w.sim, {})
    {
        Rng r(s.seed ^ 0x15c51f10ull);
        ops_.resize(spec_.ops);
        for (Op &op : ops_) {
            op.write = r.uniform() < spec_.writeRatio;
            op.len = static_cast<uint32_t>(r.range(512, spec_.maxLen));
            op.slba = r.range(0, 1u << 20);
        }
        w_.a.stack().listen(kIscsiPort, w_.a.tcpConfig(),
                            [this, offload](tcp::TcpConnection &c) {
                                target_ = std::make_unique<
                                    iscsi::IscsiTarget>(c, drive_, wc_);
                                iscsi::IscsiOffloadConfig tcfg;
                                tcfg.crcRx = tcfg.copyRx = tcfg.crcTx =
                                    offload;
                                target_->enableOffload(w_.a.device(0), c,
                                                       tcfg);
                            });
        w_.sim.schedule(spec_.startAt, [this, offload] {
            tcp::TcpConnection &c = w_.b.stack().connect(
                kIpB, kIpA, kIscsiPort, w_.b.tcpConfig());
            c.setOnConnected([this, &c, offload] {
                iscsi::IscsiOffloadConfig ocfg;
                ocfg.crcRx = ocfg.copyRx = ocfg.crcTx = offload;
                init_ = std::make_unique<iscsi::IscsiInitiator>(c, wc_,
                                                                ocfg);
                connB_ = &c;
                if (offload)
                    init_->enableOffload(w_.b.device(0), c);
                issueMore();
            });
        });
    }

    bool
    done() const
    {
        if (completed_ == ops_.size())
            return true;
        return init_ != nullptr && init_->desynced() && inFlight_ == 0;
    }

    bool desynced() const { return init_ != nullptr && init_->desynced(); }
    uint64_t readsOk() const { return readsOk_; }
    uint64_t writesOk() const { return writesOk_; }
    uint64_t failures() const { return failures_; }
    bool contentMismatch() const { return contentMismatch_; }

    uint64_t
    tcpDelivered() const
    {
        return connB_ != nullptr ? connB_->stats().bytesDelivered.value()
                                 : 0;
    }

  private:
    struct Op
    {
        bool write = false;
        uint64_t slba = 0;
        uint32_t len = 0;
    };

    void
    issueMore()
    {
        while (next_ < ops_.size() && inFlight_ < spec_.qdepth &&
               !init_->desynced()) {
            const Op &op = ops_[next_++];
            inFlight_++;
            if (op.write) {
                init_->write(op.slba, op.len, drive_.config().contentSeed,
                             [this](bool ok) { onDone(ok, true); });
            } else {
                uint64_t slba = op.slba;
                init_->read(
                    op.slba, op.len,
                    [this, slba](bool ok, host::BlockBufferPtr buf) {
                        if (ok &&
                            !checkDeterministic(
                                buf->data, drive_.config().contentSeed,
                                slba))
                            contentMismatch_ = true;
                        onDone(ok, false);
                    });
            }
        }
    }

    void
    onDone(bool ok, bool write)
    {
        inFlight_--;
        completed_++;
        if (ok)
            (write ? writesOk_ : readsOk_)++;
        else
            failures_++;
        issueMore();
    }

    FuzzWorld &w_;
    IscsiFlowSpec spec_;
    host::NvmeDrive drive_;
    iscsi::IscsiWireConfig wc_;
    std::unique_ptr<iscsi::IscsiTarget> target_;
    std::unique_ptr<iscsi::IscsiInitiator> init_;
    tcp::TcpConnection *connB_ = nullptr;

    std::vector<Op> ops_;
    size_t next_ = 0;
    uint32_t inFlight_ = 0;
    size_t completed_ = 0;
    uint64_t readsOk_ = 0;
    uint64_t writesOk_ = 0;
    uint64_t failures_ = 0;
    bool contentMismatch_ = false;
};

/**
 * Incast fan-in: spec.senders plain-TCP connections from node a
 * converge on one acceptor port on node b. Every round releases
 * bytesPerSender more bytes to every sender at the same tick — the
 * synchronized microburst that makes the shared egress queue (and,
 * with ECN armed, the CE marker) earn its keep. All senders share one
 * content seed, so the receiver verifies any connection's bytes from
 * its own stream offset without knowing which sender it accepted.
 */
class IncastDriver
{
  public:
    IncastDriver(FuzzWorld &w, const Scenario &s)
        : w_(w), spec_(s.incast), seed_((s.seed ^ 0x1ca5717eull) | 1)
    {
        check_.seed = seed_;
        w_.b.stack().listen(kIncastPort, w_.b.tcpConfig(),
                            [this](tcp::TcpConnection &c) {
                                c.setOnReadable([this, &c] { drain(c); });
                            });
        senders_.resize(spec_.senders);
        for (uint32_t i = 0; i < spec_.senders; i++)
            w_.sim.schedule(spec_.startAt, [this, i] {
                tcp::TcpConnection &c = w_.a.stack().connect(
                    kIpA, kIpB, kIncastPort, w_.a.tcpConfig());
                senders_[i].conn = &c;
                c.setOnConnected([this, i] { pump(i); });
                c.setOnWritable([this, i] { pump(i); });
            });
        roundsOpen_ = 1;
        for (uint32_t k = 1; k < spec_.rounds; k++)
            w_.sim.schedule(spec_.startAt + k * spec_.gap, [this] {
                roundsOpen_++;
                for (uint32_t i = 0; i < senders_.size(); i++)
                    pump(i);
            });
    }

    uint64_t
    expectedBytes() const
    {
        return static_cast<uint64_t>(spec_.senders) * spec_.rounds *
               spec_.bytesPerSender;
    }

    bool done() const { return check_.received >= expectedBytes(); }
    uint64_t delivered() const { return check_.received; }
    bool corrupt() const { return check_.corrupt; }

  private:
    struct Sender
    {
        tcp::TcpConnection *conn = nullptr;
        uint64_t sent = 0;
        bool closed = false;
    };

    void
    pump(uint32_t i)
    {
        Sender &sn = senders_[i];
        if (sn.conn == nullptr || sn.closed)
            return;
        uint64_t target = std::min<uint64_t>(roundsOpen_, spec_.rounds) *
                          spec_.bytesPerSender;
        while (sn.sent < target) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(4096, target - sn.sent));
            Bytes buf(n);
            fillDeterministic(buf, seed_, sn.sent);
            size_t acc = sn.conn->send(buf);
            sn.sent += acc;
            if (acc < n)
                return;
        }
        if (sn.sent >= static_cast<uint64_t>(spec_.rounds) *
                           spec_.bytesPerSender) {
            sn.closed = true;
            sn.conn->close();
        }
    }

    void
    drain(tcp::TcpConnection &c)
    {
        while (c.readable())
            check_.onSegment(c.pop());
    }

    FuzzWorld &w_;
    IncastSpec spec_;
    uint64_t seed_;
    std::vector<Sender> senders_;
    uint32_t roundsOpen_ = 0;
    DeliveryChecker check_{};
};

/**
 * Open-loop short flows: one-shot a->b connections whose sizes and
 * exponential inter-arrival gaps are drawn from the scenario seed at
 * construction (identical in the offload and software runs). Each
 * flow connects, streams its bytes, and closes — connection churn and
 * cross traffic next to the offloaded flows.
 */
class ShortFlowDriver
{
  public:
    ShortFlowDriver(FuzzWorld &w, const Scenario &s)
        : w_(w), spec_(s.shortFlows), seed_((s.seed ^ 0x5f10775eedull) | 1)
    {
        check_.seed = seed_;
        w_.b.stack().listen(kShortFlowPort, w_.b.tcpConfig(),
                            [this](tcp::TcpConnection &c) {
                                c.setOnReadable([this, &c] { drain(c); });
                            });
        Rng r(seed_);
        flows_.resize(spec_.count);
        sim::Tick at = spec_.startAt;
        for (uint32_t i = 0; i < spec_.count; i++) {
            flows_[i].bytes = r.range(64, spec_.maxBytes);
            expected_ += flows_[i].bytes;
            w_.sim.schedule(at, [this, i] {
                tcp::TcpConnection &c = w_.a.stack().connect(
                    kIpA, kIpB, kShortFlowPort, w_.a.tcpConfig());
                flows_[i].conn = &c;
                c.setOnConnected([this, i] { pump(i); });
                c.setOnWritable([this, i] { pump(i); });
            });
            double u = r.uniform();
            at += static_cast<sim::Tick>(
                -std::log(1.0 - u * 0.999) *
                static_cast<double>(spec_.meanGap));
        }
    }

    uint64_t expectedBytes() const { return expected_; }
    bool done() const { return check_.received >= expected_; }
    uint64_t delivered() const { return check_.received; }
    bool corrupt() const { return check_.corrupt; }

  private:
    struct Flow
    {
        tcp::TcpConnection *conn = nullptr;
        uint64_t bytes = 0;
        uint64_t sent = 0;
        bool closed = false;
    };

    void
    pump(uint32_t i)
    {
        Flow &f = flows_[i];
        if (f.conn == nullptr || f.closed)
            return;
        while (f.sent < f.bytes) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(4096, f.bytes - f.sent));
            Bytes buf(n);
            fillDeterministic(buf, seed_, f.sent);
            size_t acc = f.conn->send(buf);
            f.sent += acc;
            if (acc < n)
                return;
        }
        f.closed = true;
        f.conn->close();
    }

    void
    drain(tcp::TcpConnection &c)
    {
        while (c.readable())
            check_.onSegment(c.pop());
    }

    FuzzWorld &w_;
    ShortFlowSpec spec_;
    uint64_t seed_;
    std::vector<Flow> flows_;
    uint64_t expected_ = 0;
    DeliveryChecker check_{};
};

} // namespace

RunResult
DifferentialRunner::runOne(const Scenario &s, bool offload)
{
    RunResult r;
    FsmInvariantChecker probeA, probeB;
    FuzzWorld w(s, &probeA, &probeB);
    // Drivers after the world: their sockets must die while the NIC
    // devices (and thus the l5o contexts they tear down) still exist.
    std::vector<std::unique_ptr<TlsFlowDriver>> tls;
    for (size_t i = 0; i < s.tls.size(); i++)
        tls.push_back(std::make_unique<TlsFlowDriver>(
            w, s.tls[i], static_cast<int>(i), offload));
    std::unique_ptr<NvmeDriver> nvme;
    if (s.nvme.enabled)
        nvme = std::make_unique<NvmeDriver>(w, s, offload);
    std::unique_ptr<IscsiDriver> iscsi;
    if (s.iscsi.enabled)
        iscsi = std::make_unique<IscsiDriver>(w, s, offload);
    std::unique_ptr<IncastDriver> incast;
    if (s.incast.senders > 0)
        incast = std::make_unique<IncastDriver>(w, s);
    std::unique_ptr<ShortFlowDriver> shortFlows;
    if (s.shortFlows.count > 0)
        shortFlows = std::make_unique<ShortFlowDriver>(w, s);

    auto allDone = [&] {
        for (auto &f : tls)
            if (!f->done())
                return false;
        if (nvme != nullptr && !nvme->done())
            return false;
        if (iscsi != nullptr && !iscsi->done())
            return false;
        if (incast != nullptr && !incast->done())
            return false;
        return shortFlows == nullptr || shortFlows->done();
    };
    while (w.sim.now() < s.timeLimit && !allDone())
        w.sim.runFor(kPollPeriod);

    r.completed = allDone();
    for (size_t i = 0; i < tls.size(); i++) {
        r.tlsDelivered.push_back(tls[i]->delivered());
        r.tlsTcpDelivered.push_back(tls[i]->tcpDelivered());
        if (tls[i]->corrupt())
            r.errors.push_back(fmtMsg(
                "tls flow %zu delivered bytes that differ from the "
                "ground-truth plaintext", i));
    }
    if (nvme != nullptr) {
        r.nvmeReadsOk = nvme->readsOk();
        r.nvmeWritesOk = nvme->writesOk();
        r.nvmeFailures = nvme->failures();
        r.nvmeTcpDelivered = nvme->tcpDelivered();
        r.nvmeDesynced = nvme->desynced();
        if (nvme->contentMismatch())
            r.errors.push_back(
                "nvme read completed ok with wrong content");
    }
    if (iscsi != nullptr) {
        r.iscsiReadsOk = iscsi->readsOk();
        r.iscsiWritesOk = iscsi->writesOk();
        r.iscsiFailures = iscsi->failures();
        r.iscsiTcpDelivered = iscsi->tcpDelivered();
        r.iscsiDesynced = iscsi->desynced();
        if (iscsi->contentMismatch())
            r.errors.push_back(
                "iscsi read completed ok with wrong content");
    }
    if (incast != nullptr) {
        r.incastDelivered = incast->delivered();
        r.plainCorrupt = r.plainCorrupt || incast->corrupt();
    }
    if (shortFlows != nullptr) {
        r.shortDelivered = shortFlows->delivered();
        r.plainCorrupt = r.plainCorrupt || shortFlows->corrupt();
    }
    // Plain TCP has no authentication: corrupted payload is delivered
    // as-is, so a mismatch is only an oracle error on a clean wire.
    if (r.plainCorrupt && !s.hasCorruption())
        r.errors.push_back(
            "plain-TCP flow delivered bytes that differ from the "
            "ground-truth stream");
    for (const std::string &v : probeA.violations())
        r.errors.push_back("fsm invariant (nic a): " + v);
    for (const std::string &v : probeB.violations())
        r.errors.push_back("fsm invariant (nic b): " + v);
    for (const std::string &v : checkTraceRing(w.trace))
        r.errors.push_back(v);
    r.traceHash = traceHash(w.trace);
    r.fsmEvents = probeA.eventsSeen() + probeB.eventsSeen();
    if (util::Env::fuzzDebug())
        for (size_t i = 0; i < tls.size(); i++)
            std::fprintf(stderr, "[%s] tls %zu: %s\n",
                         offload ? "offload" : "software", i,
                         tls[i]->debugState().c_str());
    return r;
}

std::vector<std::string>
DifferentialRunner::check(const Scenario &s)
{
    std::vector<std::string> errs;
    RunResult off = runOne(s, true);
    RunResult sw = runOne(s, false);
    for (const std::string &e : off.errors)
        errs.push_back("[offload] " + e);
    for (const std::string &e : sw.errors)
        errs.push_back("[software] " + e);

    // Corrupting scenarios get the weaker oracle: per-run content and
    // invariant checks above. Authentication failures legitimately
    // stall a flow, and which packet gets flipped differs between the
    // runs (the wire RNG sees different packet sequences), so
    // completion and goodput are not comparable.
    if (s.hasCorruption())
        return errs;

    if (!off.completed)
        errs.push_back("[offload] scenario did not complete in time");
    if (!sw.completed)
        errs.push_back("[software] scenario did not complete in time");
    for (size_t i = 0; i < s.tls.size(); i++) {
        if (off.tlsDelivered[i] != s.tls[i].bytes)
            errs.push_back(fmtMsg(
                "[offload] tls flow %zu delivered %" PRIu64
                " of %" PRIu64 " bytes",
                i, off.tlsDelivered[i], s.tls[i].bytes));
        if (sw.tlsDelivered[i] != s.tls[i].bytes)
            errs.push_back(fmtMsg(
                "[software] tls flow %zu delivered %" PRIu64
                " of %" PRIu64 " bytes",
                i, sw.tlsDelivered[i], s.tls[i].bytes));
        if (off.tlsTcpDelivered[i] != sw.tlsTcpDelivered[i])
            errs.push_back(fmtMsg(
                "tls flow %zu TCP goodput differs: offload %" PRIu64
                " vs software %" PRIu64,
                i, off.tlsTcpDelivered[i], sw.tlsTcpDelivered[i]));
    }
    if (s.incast.senders > 0) {
        uint64_t want = static_cast<uint64_t>(s.incast.senders) *
                        s.incast.rounds * s.incast.bytesPerSender;
        if (off.incastDelivered != want)
            errs.push_back(fmtMsg(
                "[offload] incast delivered %" PRIu64 " of %" PRIu64
                " bytes",
                off.incastDelivered, want));
        if (sw.incastDelivered != want)
            errs.push_back(fmtMsg(
                "[software] incast delivered %" PRIu64 " of %" PRIu64
                " bytes",
                sw.incastDelivered, want));
    }
    if (s.shortFlows.count > 0 &&
        off.shortDelivered != sw.shortDelivered)
        errs.push_back(fmtMsg(
            "short-flow goodput differs: offload %" PRIu64
            " vs software %" PRIu64,
            off.shortDelivered, sw.shortDelivered));
    if (s.nvme.enabled) {
        if (off.nvmeReadsOk != sw.nvmeReadsOk ||
            off.nvmeWritesOk != sw.nvmeWritesOk)
            errs.push_back(fmtMsg(
                "nvme completions differ: offload %" PRIu64 "r/%" PRIu64
                "w vs software %" PRIu64 "r/%" PRIu64 "w",
                off.nvmeReadsOk, off.nvmeWritesOk, sw.nvmeReadsOk,
                sw.nvmeWritesOk));
        if (off.nvmeFailures != 0 || sw.nvmeFailures != 0)
            errs.push_back(fmtMsg(
                "nvme failures on a clean link: offload %" PRIu64
                " software %" PRIu64,
                off.nvmeFailures, sw.nvmeFailures));
        if (off.nvmeTcpDelivered != sw.nvmeTcpDelivered)
            errs.push_back(fmtMsg(
                "nvme TCP goodput differs: offload %" PRIu64
                " vs software %" PRIu64,
                off.nvmeTcpDelivered, sw.nvmeTcpDelivered));
    }
    if (s.iscsi.enabled) {
        if (off.iscsiReadsOk != sw.iscsiReadsOk ||
            off.iscsiWritesOk != sw.iscsiWritesOk)
            errs.push_back(fmtMsg(
                "iscsi completions differ: offload %" PRIu64 "r/%" PRIu64
                "w vs software %" PRIu64 "r/%" PRIu64 "w",
                off.iscsiReadsOk, off.iscsiWritesOk, sw.iscsiReadsOk,
                sw.iscsiWritesOk));
        if (off.iscsiFailures != 0 || sw.iscsiFailures != 0)
            errs.push_back(fmtMsg(
                "iscsi failures on a clean link: offload %" PRIu64
                " software %" PRIu64,
                off.iscsiFailures, sw.iscsiFailures));
        if (off.iscsiTcpDelivered != sw.iscsiTcpDelivered)
            errs.push_back(fmtMsg(
                "iscsi TCP goodput differs: offload %" PRIu64
                " vs software %" PRIu64,
                off.iscsiTcpDelivered, sw.iscsiTcpDelivered));
    }
    return errs;
}

Scenario
DifferentialRunner::minimize(Scenario s, int maxEvals)
{
    int evals = 0;
    auto stillFails = [&](const Scenario &cand) {
        if (evals >= maxEvals)
            return false;
        evals++;
        return !check(cand).empty();
    };

    bool progress = true;
    while (progress && evals < maxEvals) {
        progress = false;

        if (s.phases.size() > 1) {
            Scenario c = s;
            c.phases.resize((s.phases.size() + 1) / 2);
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                continue;
            }
        }
        for (size_t i = 0; i < s.tls.size(); i++) {
            Scenario c = s;
            c.tls.erase(c.tls.begin() + static_cast<ptrdiff_t>(i));
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                break;
            }
        }
        if (progress)
            continue;
        if (s.nvme.enabled) {
            Scenario c = s;
            c.nvme.enabled = false;
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                continue;
            }
        }
        if (s.iscsi.enabled) {
            Scenario c = s;
            c.iscsi.enabled = false;
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                continue;
            }
        }
        if (s.incast.senders > 0) {
            Scenario c = s;
            c.incast.senders = 0;
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                continue;
            }
        }
        if (s.shortFlows.count > 0) {
            Scenario c = s;
            c.shortFlows.count = 0;
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                continue;
            }
        }
        // Is the failure CC-specific? Reno without ECN is the
        // best-understood baseline.
        if (s.cc != tcp::CcAlgo::Reno || s.ecn) {
            Scenario c = s;
            c.cc = tcp::CcAlgo::Reno;
            c.ecn = false;
            if (stillFails(c)) {
                s = std::move(c);
                progress = true;
                continue;
            }
        }
        // Zero one impairment knob at a time.
        for (size_t p = 0; p < s.phases.size() && !progress; p++) {
            for (int d = 0; d < 2 && !progress; d++) {
                double net::Impairments::*knobs[] = {
                    &net::Impairments::lossRate,
                    &net::Impairments::reorderRate,
                    &net::Impairments::duplicateRate,
                    &net::Impairments::corruptRate,
                    &net::Impairments::ecnMarkRate,
                };
                for (auto knob : knobs) {
                    if (s.phases[p].dir[d].*knob == 0.0)
                        continue;
                    Scenario c = s;
                    c.phases[p].dir[d].*knob = 0.0;
                    if (stillFails(c)) {
                        s = std::move(c);
                        progress = true;
                        break;
                    }
                }
                if (!progress &&
                    s.phases[p].dir[d].ecnMarkThresholdBytes != 0) {
                    Scenario c = s;
                    c.phases[p].dir[d].ecnMarkThresholdBytes = 0;
                    if (stillFails(c)) {
                        s = std::move(c);
                        progress = true;
                    }
                }
            }
        }
        if (progress)
            continue;
        // Shrink flows: halve byte counts, drop rotation.
        for (size_t i = 0; i < s.tls.size() && !progress; i++) {
            if (s.tls[i].bytes > 8192) {
                Scenario c = s;
                c.tls[i].bytes /= 2;
                if (stillFails(c)) {
                    s = std::move(c);
                    progress = true;
                    break;
                }
            }
            if (s.tls[i].rotateEvery != 0) {
                Scenario c = s;
                c.tls[i].rotateEvery = 0;
                if (stillFails(c)) {
                    s = std::move(c);
                    progress = true;
                    break;
                }
            }
        }
    }
    return s;
}

} // namespace anic::testing
