#include "accel/qat.hh"

#include <memory>

namespace anic::accel {

namespace {

/** One cooperating client thread of the speed test. */
struct SpeedThread
{
    sim::Simulator &sim;
    host::Core &core;
    OffCpuAccelerator &dev;
    size_t blockSize;
    sim::Tick deadline;
    uint64_t *bytesDone;

    void
    loop()
    {
        if (sim.now() >= deadline)
            return;
        // Submit on the CPU...
        core.post([this] {
            core.charge(dev.config().cpuCyclesPerOp / 2);
            dev.submit(blockSize, [this] {
                // ...completion reaped on the CPU; thread then loops.
                core.post([this] {
                    core.charge(dev.config().cpuCyclesPerOp / 2);
                    *bytesDone += blockSize;
                    loop();
                });
            });
        });
    }
};

} // namespace

double
runAcceleratedSpeedTest(sim::Simulator &sim, host::Core &core,
                        OffCpuAccelerator &dev, int threads,
                        size_t blockSize, sim::Tick duration)
{
    uint64_t bytes = 0;
    sim::Tick deadline = sim.now() + duration;
    std::vector<std::unique_ptr<SpeedThread>> pool;
    for (int i = 0; i < threads; i++) {
        pool.push_back(std::make_unique<SpeedThread>(
            SpeedThread{sim, core, dev, blockSize, deadline, &bytes}));
        pool.back()->loop();
    }
    sim.runUntil(deadline);
    return static_cast<double>(bytes) / sim::ticksToSeconds(duration) / 1e6;
}

double
runOnCpuSpeedTest(sim::Simulator &sim, host::Core &core, double cyclesPerByte,
                  size_t blockSize, sim::Tick duration)
{
    // Pure CPU loop: one block per work item until the window closes.
    uint64_t bytes = 0;
    sim::Tick deadline = sim.now() + duration;
    std::function<void()> step = [&sim, &core, cyclesPerByte, blockSize,
                                  deadline, &bytes, &step] {
        if (sim.now() >= deadline)
            return;
        core.charge(cyclesPerByte * static_cast<double>(blockSize));
        bytes += blockSize;
        core.post(step);
    };
    core.post(step);
    sim.runUntil(deadline);
    return static_cast<double>(bytes) / sim::ticksToSeconds(duration) / 1e6;
}

} // namespace anic::accel
