/**
 * @file
 * Off-CPU (QuickAssist-class) accelerator model for the paper's
 * Table 1 study (§2.3): a PCIe crypto device with per-operation
 * invocation overhead and round-trip latency. Single-threaded clients
 * are latency-bound; many threads overlap waiting with useful work
 * and approach the device's throughput cap — reproducing the on-CPU
 * vs off-CPU crossover.
 */

#ifndef ANIC_ACCEL_QAT_HH
#define ANIC_ACCEL_QAT_HH

#include <functional>

#include "host/core.hh"
#include "sim/simulator.hh"

namespace anic::accel {

/** The accelerator device. */
class OffCpuAccelerator
{
  public:
    struct Config
    {
        /** Device crypto throughput (GB/s); Table 1 saturates ~3.1. */
        double deviceGBps = 3.2;
        /** Round-trip latency per operation (submit -> completion). */
        sim::Tick opLatency = 55 * sim::kMicrosecond;
        /** CPU cycles to submit a request and reap its completion. */
        double cpuCyclesPerOp = 2400;
    };

    OffCpuAccelerator(sim::Simulator &sim, Config cfg) : sim_(sim), cfg_(cfg) {}

    /**
     * Submits @p bytes for transformation; @p done fires when the
     * device finishes. CPU submit cost must be charged by the caller
     * (cpuCyclesPerOp/2 at submit, /2 at completion).
     */
    void
    submit(size_t bytes, std::function<void()> done)
    {
        sim::Tick service = static_cast<sim::Tick>(
            static_cast<double>(bytes) / cfg_.deviceGBps * 1e-9 *
            static_cast<double>(sim::kSecond));
        sim::Tick start = std::max(sim_.now(), deviceFreeAt_);
        deviceFreeAt_ = start + service;
        sim_.scheduleAt(deviceFreeAt_ + cfg_.opLatency,
                        [done = std::move(done)] { done(); });
        opsSubmitted_++;
        bytesSubmitted_ += bytes;
    }

    const Config &config() const { return cfg_; }
    uint64_t opsSubmitted() const { return opsSubmitted_; }
    uint64_t bytesSubmitted() const { return bytesSubmitted_; }

  private:
    sim::Simulator &sim_;
    Config cfg_;
    sim::Tick deviceFreeAt_ = 0;
    uint64_t opsSubmitted_ = 0;
    uint64_t bytesSubmitted_ = 0;
};

/** Per-cipher on-CPU cost (cycles/byte) for the Table 1 comparison. */
struct CipherCosts
{
    /** AES-128-CBC-HMAC-SHA1 with AES-NI: AES accelerated, SHA1 not. */
    static constexpr double kCbcHmacSha1PerByte = 3.45;
    /** AES-128-GCM with AES-NI + PCLMUL. */
    static constexpr double kGcmPerByte = 0.76;
};

/**
 * OpenSSL-speed-style driver: @p threads cooperating user threads
 * share ONE core; each loops submit -> wait -> reap. Returns MB/s
 * over the simulated window.
 */
double runAcceleratedSpeedTest(sim::Simulator &sim, host::Core &core,
                               OffCpuAccelerator &dev, int threads,
                               size_t blockSize, sim::Tick duration);

/** On-CPU (AES-NI) speed: pure cycle-bound loop on one core. */
double runOnCpuSpeedTest(sim::Simulator &sim, host::Core &core,
                         double cyclesPerByte, size_t blockSize,
                         sim::Tick duration);

} // namespace anic::accel

#endif // ANIC_ACCEL_QAT_HH
