/**
 * @file
 * TCP connection: a software TCP implementation sufficient to
 * exercise everything the paper's offloads depend on — segmentation,
 * cumulative ACKs, delayed ACKs, RTT estimation, RTO and fast
 * retransmit (Reno/NewReno), out-of-order reassembly that preserves
 * per-packet NIC offload metadata, receive-window flow control, and
 * 3-way handshake / FIN teardown.
 *
 * Deliberate simplifications (documented in DESIGN.md): no SACK, no
 * timestamps option (RTT sampled Karn-style), fixed header size, and
 * a configurable minimum RTO that defaults below Linux's 200 ms so
 * that millisecond-scale simulations recover from tail losses the
 * way long-running real benchmarks do.
 */

#ifndef ANIC_TCP_TCP_CONNECTION_HH
#define ANIC_TCP_TCP_CONNECTION_HH

#include <deque>
#include <map>
#include <memory>

#include "host/core.hh"
#include "net/packet.hh"
#include "sim/registry.hh"
#include "tcp/congestion.hh"
#include "tcp/seq.hh"
#include "tcp/socket.hh"

namespace anic::tcp {

class TcpStack;

/** Ring buffer holding unacknowledged send-stream bytes. */
class SendRing
{
  public:
    explicit SendRing(size_t capacity) : capacity_(capacity) {}

    size_t size() const { return size_; }
    size_t space() const { return capacity_ - size_; }

    /** Appends up to data.size() bytes; returns bytes accepted. */
    size_t push(ByteView data);

    /** Copies @p len bytes starting @p relOff bytes past the head. */
    void copyOut(size_t relOff, ByteSpan out) const;

    /** Drops @p n bytes from the head (they were acked). */
    void popFront(size_t n);

  private:
    size_t capacity_;
    Bytes buf_; // allocated on first use
    size_t head_ = 0;
    size_t size_ = 0;
};

/** Counters exposed for tests and benches. */
struct TcpStats
{
    sim::Counter dataPktsSent;
    sim::Counter dataPktsRcvd;
    sim::Counter acksSent;
    sim::Counter acksRcvd;
    sim::Counter retransmits;
    sim::Counter fastRetransmits;
    sim::Counter rtoFires;
    sim::Counter dupAcksRcvd;
    sim::Counter oooPktsRcvd;
    sim::Counter bytesSent;     ///< first transmissions only
    sim::Counter bytesDelivered;
    sim::Counter ecnCeRcvd;          ///< CE-marked data segments seen
    sim::Counter ecnEchoesRcvd;      ///< forward acks carrying ECE
    sim::Counter ecnCwndReductions;  ///< cwnd cuts from ECN feedback
};

/**
 * A TCP endpoint. Created via TcpStack::connect or a listener; runs
 * all processing on one pinned core (ARFS-style steering).
 */
class TcpConnection : public StreamSocket
{
  public:
    struct Config
    {
        uint32_t mss = 1460;
        size_t sndBufSize = 1 << 20;
        size_t rcvBufSize = 1 << 20;
        uint32_t initialCwndSegs = 10;
        uint32_t maxCwndSegs = 2048;
        sim::Tick minRto = 10 * sim::kMillisecond;
        sim::Tick maxRto = 2 * sim::kSecond;
        sim::Tick initialRto = 20 * sim::kMillisecond;
        sim::Tick delayedAckTimeout = 1 * sim::kMillisecond;
        /** Congestion control; Auto resolves through ANIC_TCP_CC and
         *  falls back to reno (the historical behavior). */
        CcAlgo cc = CcAlgo::Auto;
        /** Request ECN on the handshake. Implied by dctcp; with other
         *  algorithms ECE triggers the classic RFC 3168 halving. */
        bool ecn = false;
    };

    enum class State
    {
        Closed,
        SynSent,
        SynRcvd,
        Established,
        FinWait1,
        FinWait2,
        CloseWait,
        LastAck,
        Closing,
    };

    TcpConnection(TcpStack &stack, host::Core &core, const Config &cfg,
                  net::FlowKey local, uint32_t iss);
    ~TcpConnection() override = default;

    // ------------------------------------------------ StreamSocket
    size_t send(ByteView data) override;
    size_t sendSpace() const override { return sndRing_.space(); }
    void setOnWritable(std::function<void()> cb) override { onWritable_ = std::move(cb); }
    bool readable() const override { return !rxQueue_.empty(); }
    RxSegment pop() override;
    void setOnReadable(std::function<void()> cb) override { onReadable_ = std::move(cb); }
    void setOnPeerClosed(std::function<void()> cb) override { onPeerClosed_ = std::move(cb); }
    void close() override;
    host::Core &core() override { return core_; }

    // ------------------------------------------------ L5P hooks
    /** Absolute TCP sequence number the next send() byte will get. */
    uint32_t sndNextByteSeq() const { return iss_ + 1 + static_cast<uint32_t>(bytesAccepted_); }

    /** Registers a cumulative-ACK observer (kTLS trims record state). */
    void setOnAcked(std::function<void(uint32_t sndUna)> cb) { onAcked_ = std::move(cb); }

    /**
     * Copies unacknowledged send-stream bytes starting at @p seq into
     * @p out. Exists because TCP already retains everything up to the
     * cumulative ACK; L5Ps use it to source tx context-recovery reads
     * instead of keeping a second copy of every message.
     */
    void
    copyUnacked(uint32_t seq, ByteSpan out) const
    {
        sndRing_.copyOut(seqDiff(seq, sndUna_), out);
    }

    /** TCP sequence number of receive-stream offset @p off (used to
     *  translate NIC resync anchors, which are sequence numbers). */
    uint32_t
    seqOfRcvStreamOff(uint64_t off) const
    {
        return irs_ + 1 + static_cast<uint32_t>(off);
    }

    /** Tags outgoing packets with an l5o context id (0 = none). */
    void setTxOffloadCtx(uint64_t ctx) { txOffloadCtx_ = ctx; }

    // ------------------------------------------------ stack-facing
    /** Handles one received packet; runs in a core work item. */
    void onPacket(const net::PacketPtr &pkt);

    /** Starts the active-open handshake. */
    void startConnect();

    /** Responds to a received SYN (passive open). @p synFlags is the
     *  SYN's TCP flags byte: ECN is negotiated from its ECE|CWR. */
    void startAccept(uint32_t irs, uint8_t synFlags);

    void setOnConnected(std::function<void()> cb) { onConnected_ = std::move(cb); }

    /** Retries transmission after the device reported free tx space. */
    void onDeviceWritable();

    // ------------------------------------------------ introspection
    State state() const { return state_; }
    const TcpStats &stats() const { return stats_; }
    const net::FlowKey &localFlow() const { return local_; }
    uint32_t cwndBytes() const { return cc_->cwnd(); }
    uint32_t ssthreshBytes() const { return cc_->ssthresh(); }
    CcAlgo ccAlgo() const { return cc_->algo(); }
    bool ecnEnabled() const { return ecnEnabled_; }
    uint32_t sndUna() const { return sndUna_; }
    uint32_t rcvNxt() const { return rcvNxt_; }
    size_t rxQueuedBytes() const { return rxQueuedBytes_; }
    const Config &config() const { return cfg_; }

  private:
    // Transmit machinery.
    void trySend();
    bool sendSegment(uint32_t seq, uint32_t len, bool retransmission);
    void sendFlagsPacket(uint8_t flags, uint32_t seq, bool withAck);
    void sendAck();
    void scheduleDelayedAck();
    void armRto();
    void cancelRto();
    /** Invalidates every outstanding timer closure (RTO, delayed
     *  ack) so none can act on this connection after the stack frees
     *  its slot — destroy() may run while timers are armed. */
    void
    cancelTimers()
    {
        cancelRto();
        delAckGeneration_++;
        delayedAckScheduled_ = false;
    }
    void onRtoFire(uint64_t generation);
    uint32_t flightSize() const { return sndNxt_ - sndUna_; }
    uint32_t sndLimit() const;

    // Receive machinery.
    void processAck(const net::TcpHeader &h);
    void processData(const net::PacketPtr &pkt, const net::TcpHeader &h);
    void deliverSegment(uint32_t seq, SegmentBuffer data,
                        net::RxOffloadMeta meta, bool fin);
    void drainOoo();
    void enterEstablished();
    void handleFin();

    void enterFastRecovery();
    void rttSample(sim::Tick sample);
    /** TCP flags for our (re)transmitted SYN / SYN-ACK, carrying the
     *  RFC 3168 ECN-setup bits when appropriate. */
    uint8_t synFlags() const;
    uint8_t synAckFlags() const;
    /** ECE/CWR bits to put on an ack-bearing packet right now. */
    uint8_t ecnAckFlags(bool dataSegment) const;
    /** Bookkeeping after an ack-bearing packet actually went out. */
    void ecnEchoSent(bool dataSegment);
    /** Records an ECN-driven cwnd reduction (stats + distributions). */
    void noteCwndReduction();

    /** Bumps a stat on this connection and on the stack aggregate. */
    void count(sim::Counter TcpStats::*m, uint64_t n = 1);

    TcpStack &stack_;
    host::Core &core_;
    Config cfg_;
    net::FlowKey local_; // srcIp/Port = this endpoint
    State state_ = State::Closed;

    // --- send state
    SendRing sndRing_;
    uint32_t iss_ = 0;
    uint32_t sndUna_ = 0;
    uint32_t sndNxt_ = 0;
    uint64_t bytesAccepted_ = 0;
    uint32_t peerWnd_ = 0;
    std::unique_ptr<CongestionControl> cc_;
    uint32_t dupAcks_ = 0;
    bool inRecovery_ = false;
    uint32_t recover_ = 0;
    // RTO loss-episode marker: ssthresh is recomputed only on the
    // first fire of an episode; repeat backoffs keep it (the episode
    // ends when the cumulative ack passes rtoRecover_).
    bool rtoEpisode_ = false;
    uint32_t rtoRecover_ = 0;
    // --- ECN state
    bool ecnWanted_ = false;   ///< config requested (or dctcp implies)
    bool ecnEnabled_ = false;  ///< negotiated on the handshake
    bool ecnEceLatched_ = false; ///< rx: echo ECE until peer's CWR
    bool ecnCeSinceAck_ = false; ///< rx: CE seen since last ack (dctcp)
    bool cwrPending_ = false;    ///< tx: announce reduction on next data
    bool ecnRespValid_ = false;  ///< tx: once-per-RTT classic reaction
    uint32_t ecnRespSeq_ = 0;
    bool finQueued_ = false;
    bool finSent_ = false;
    bool writableSignaled_ = true; ///< edge trigger for onWritable
    uint64_t txOffloadCtx_ = 0;
    bool devBlocked_ = false;
    bool inBlockedQueue_ = false; ///< linked on TcpStack::blocked_[dev]

    // --- RTT/RTO
    sim::Tick srtt_ = 0;
    sim::Tick rttvar_ = 0;
    sim::Tick rto_;
    uint64_t rtoGeneration_ = 0;
    bool rtoArmed_ = false;
    sim::Tick rtoDeadline_ = 0; ///< lazy re-arm: see armRto()
    int rtoBackoff_ = 0;
    uint32_t rttSeq_ = 0;
    sim::Tick rttSentAt_ = 0;
    bool rttPending_ = false;

    // --- receive state
    uint32_t irs_ = 0;
    uint32_t rcvNxt_ = 0;
    uint64_t rcvStreamOff_ = 0;
    std::deque<RxSegment> rxQueue_;
    size_t rxQueuedBytes_ = 0;
    struct OooSegment
    {
        Bytes data;
        net::RxOffloadMeta meta;
        bool fin = false;
    };
    std::map<uint64_t, OooSegment> ooo_; // keyed by 64-bit stream position
    size_t oooBytes_ = 0;
    uint32_t lastAdvertisedWnd_ = 0;
    int unackedDataPkts_ = 0;
    bool delayedAckScheduled_ = false;
    uint64_t delAckGeneration_ = 0;
    bool peerFinSeen_ = false;

    // --- callbacks
    std::function<void()> onWritable_;
    std::function<void()> onReadable_;
    std::function<void()> onPeerClosed_;
    std::function<void()> onConnected_;
    std::function<void(uint32_t)> onAcked_;

    TcpStats stats_;

    friend class TcpStack;
};

} // namespace anic::tcp

#endif // ANIC_TCP_TCP_CONNECTION_HH
