#include "tcp/tcp_stack.hh"

#include "util/panic.hh"

namespace anic::tcp {

TcpStack::TcpStack(sim::Simulator &sim, std::vector<host::Core *> cores,
                   uint64_t seed, sim::StatsScope scope,
                   sim::TraceRing *trace, net::PacketPool *pool)
    : sim_(sim), cores_(std::move(cores)), rng_(seed),
      pool_(pool != nullptr ? *pool : net::PacketPool::threadDefault()),
      scope_(std::move(scope)),
      trace_(trace != nullptr ? trace : &sim::TraceRing::global())
{
    ANIC_ASSERT(!cores_.empty(), "stack needs at least one core");
    scope_.link("dataPktsSent", agg_.dataPktsSent);
    scope_.link("dataPktsRcvd", agg_.dataPktsRcvd);
    scope_.link("acksSent", agg_.acksSent);
    scope_.link("acksRcvd", agg_.acksRcvd);
    scope_.link("retransmits", agg_.retransmits);
    scope_.link("fastRetransmits", agg_.fastRetransmits);
    scope_.link("rtoFires", agg_.rtoFires);
    scope_.link("dupAcksRcvd", agg_.dupAcksRcvd);
    scope_.link("oooPktsRcvd", agg_.oooPktsRcvd);
    scope_.link("bytesSent", agg_.bytesSent);
    scope_.link("bytesDelivered", agg_.bytesDelivered);
    scope_.link("droppedInputs", droppedInputs_);
    scope_.link("connections", connections_);
    // Congestion-control view: distributions sampled on congestion
    // events plus the ECN/retransmit counters that explain them.
    ccScope_ = scope_.child("cc");
    ccScope_.link("cwndSegs", cwndSegsDist_);
    ccScope_.link("ssthreshSegs", ssthreshSegsDist_);
    ccScope_.link("ecnCeRcvd", agg_.ecnCeRcvd);
    ccScope_.link("ecnEchoesRcvd", agg_.ecnEchoesRcvd);
    ccScope_.link("ecnCwndReductions", agg_.ecnCwndReductions);
    ccScope_.link("fastRetransmits", agg_.fastRetransmits);
    ccScope_.link("rtoFires", agg_.rtoFires);
}

void
TcpStack::addDevice(NetDevice *dev)
{
    ANIC_ASSERT(dev != nullptr);
    devices_.push_back(dev);
    dev->setOnTxSpace([this, dev] { onDeviceTxSpace(dev); });
}

NetDevice *
TcpStack::deviceFor(net::IpAddr localIp) const
{
    for (NetDevice *d : devices_) {
        if (d->ipAddr() == localIp)
            return d;
    }
    return nullptr;
}

host::Core &
TcpStack::steer(const net::FlowKey &flow) const
{
    // RSS steering: when the device models rx queues, a flow's core
    // is the one its rx queue's interrupt lands on, so stack work for
    // the flow stays on the interrupted core (no cross-core bounce).
    // @p flow is the local view (src = us); the device hashes the
    // wire view of arriving packets (src = remote), i.e. reversed().
    NetDevice *dev = deviceFor(flow.srcIp);
    if (dev != nullptr && dev->rxQueues() > 0)
        return coreForQueue(dev->rxQueueFor(flow.reversed()));
    // ARFS-style fallback: pin each flow to a core by hash.
    size_t idx = net::FlowKeyHash{}(flow) % cores_.size();
    return *cores_[idx];
}

void
TcpStack::listen(uint16_t port, const TcpConnection::Config &cfg,
                 AcceptFn onAccept)
{
    ANIC_ASSERT(listeners_.find(port) == listeners_.end(),
                "port %u already listening", port);
    listeners_.emplace(port, Listener{cfg, std::move(onAccept)});
}

TcpConnection &
TcpStack::createConnection(const net::FlowKey &local,
                           const TcpConnection::Config &cfg, host::Core *core)
{
    ANIC_ASSERT(conns_.find(local) == nullptr, "flow already exists");
    host::Core &c = core != nullptr ? *core : steer(local);
    uint32_t iss = static_cast<uint32_t>(rng_.next());
    util::SlabHandle h = connArena_.alloc(*this, c, cfg, local, iss);
    conns_.emplace(local, h);
    connections_.set(static_cast<double>(conns_.size()));
    return connArena_.at(h);
}

TcpConnection &
TcpStack::connect(net::IpAddr localIp, net::IpAddr dstIp, uint16_t dstPort,
                  const TcpConnection::Config &cfg, host::Core *core)
{
    ANIC_ASSERT(deviceFor(localIp) != nullptr, "no device for local ip");
    net::FlowKey local;
    local.srcIp = localIp;
    local.dstIp = dstIp;
    local.dstPort = dstPort;
    // Ephemeral port: advance until free (4-tuple uniqueness).
    for (;;) {
        local.srcPort = nextEphemeral_;
        nextEphemeral_ = nextEphemeral_ == 0xffff
                             ? 32768
                             : static_cast<uint16_t>(nextEphemeral_ + 1);
        if (conns_.find(local) == nullptr)
            break;
    }
    TcpConnection &conn = createConnection(local, cfg, core);
    conn.core().post([&conn] { conn.startConnect(); });
    return conn;
}

void
TcpStack::input(const net::PacketPtr &pkt)
{
    const net::Ipv4Header ip = pkt->ip();
    const net::TcpHeader th = pkt->tcp();

    // Local view: src = us.
    net::FlowKey key;
    key.srcIp = ip.dst;
    key.srcPort = th.dstPort;
    key.dstIp = ip.src;
    key.dstPort = th.srcPort;

    if (util::SlabHandle *h = conns_.find(key)) {
        connArena_.at(*h).onPacket(pkt);
        return;
    }

    // New connection? Only a bare SYN to a listening port qualifies.
    if ((th.flags & net::kTcpSyn) && !(th.flags & net::kTcpAck)) {
        auto lit = listeners_.find(th.dstPort);
        if (lit != listeners_.end() && deviceFor(ip.dst) != nullptr) {
            TcpConnection &conn =
                createConnection(key, lit->second.cfg, nullptr);
            conn.peerWnd_ = th.window;
            // Process the SYN first so sequence state (rcvNxt) is
            // valid when the application installs offloads in the
            // accept callback; no data can arrive in between.
            conn.startAccept(th.seq, th.flags);
            lit->second.onAccept(conn);
            return;
        }
    }
    droppedInputs_++;
}

bool
TcpStack::output(TcpConnection &conn, net::PacketPtr pkt)
{
    NetDevice *dev = deviceFor(conn.localFlow().srcIp);
    ANIC_ASSERT(dev != nullptr, "connection bound to unknown device");
    if (dev->transmit(std::move(pkt)))
        return true;
    // Register for the tx-space wakeup once, no matter how many
    // transmits bounce while the ring stays full (sendFlagsPacket
    // fires acks through here too — without the flag a busy receiver
    // behind a full ring re-registers every ack).
    if (!conn.inBlockedQueue_) {
        conn.inBlockedQueue_ = true;
        std::vector<TcpConnection *> *vec = blocked_.find(dev);
        if (vec == nullptr)
            vec = &blocked_.emplace(dev, {});
        vec->push_back(&conn);
    }
    return false;
}

void
TcpStack::onDeviceTxSpace(NetDevice *dev)
{
    std::vector<TcpConnection *> *vec = blocked_.find(dev);
    if (vec == nullptr || vec->empty())
        return;
    std::vector<TcpConnection *> conns = std::move(*vec);
    vec->clear();
    for (TcpConnection *c : conns) {
        c->inBlockedQueue_ = false;
        // Softirq-style priority: transmit redrives must not starve
        // behind queued application work on a saturated core. The
        // work item re-resolves the flow key so a connection torn
        // down (and possibly recycled) before it runs is skipped
        // instead of dereferenced.
        net::FlowKey key = c->localFlow();
        c->core().postUrgent([this, key] {
            if (util::SlabHandle *h = conns_.find(key))
                connArena_.at(*h).onDeviceWritable();
        });
    }
}

void
TcpStack::unlinkBlocked(TcpConnection &conn)
{
    if (!conn.inBlockedQueue_)
        return;
    conn.inBlockedQueue_ = false;
    NetDevice *dev = deviceFor(conn.localFlow().srcIp);
    std::vector<TcpConnection *> *vec = blocked_.find(dev);
    if (vec == nullptr)
        return;
    for (size_t i = 0; i < vec->size(); i++) {
        if ((*vec)[i] == &conn) {
            vec->erase(vec->begin() + static_cast<ptrdiff_t>(i));
            return;
        }
    }
}

void
TcpStack::destroy(TcpConnection &conn)
{
    util::SlabHandle *h = conns_.find(conn.localFlow());
    if (h == nullptr || connArena_.get(*h) != &conn)
        return; // already destroyed (double destroy is a no-op)
    // Timers may still be armed (destroy mid-flight, or FIN
    // retransmission state): invalidate their closures before the
    // slot is freed and possibly recycled.
    conn.cancelTimers();
    unlinkBlocked(conn);
    util::SlabHandle handle = *h;
    conns_.erase(conn.localFlow());
    connArena_.free(handle);
    connections_.set(static_cast<double>(conns_.size()));
}

} // namespace anic::tcp
