#include "tcp/congestion.hh"

#include <algorithm>
#include <cmath>

#include "tcp/seq.hh"
#include "util/env.hh"

namespace anic::tcp {

CcAlgo
parseCcAlgo(const std::string &name)
{
    if (name == "reno")
        return CcAlgo::Reno;
    if (name == "cubic")
        return CcAlgo::Cubic;
    if (name == "dctcp")
        return CcAlgo::Dctcp;
    return CcAlgo::Auto;
}

const char *
ccAlgoName(CcAlgo a)
{
    switch (a) {
      case CcAlgo::Reno:
        return "reno";
      case CcAlgo::Cubic:
        return "cubic";
      case CcAlgo::Dctcp:
        return "dctcp";
      case CcAlgo::Auto:
        break;
    }
    return "auto";
}

CcAlgo
resolveCcAlgo(CcAlgo configured)
{
    if (configured != CcAlgo::Auto)
        return configured;
    CcAlgo fromEnv = parseCcAlgo(util::Env::tcpCc());
    return fromEnv == CcAlgo::Auto ? CcAlgo::Reno : fromEnv;
}

double
cubicK(double wMaxSegs, double cwndSegs)
{
    if (cwndSegs >= wMaxSegs)
        return 0.0;
    return std::cbrt((wMaxSegs - cwndSegs) / 0.4);
}

double
cubicWindow(double tSec, double kSec, double wMaxSegs)
{
    double d = tSec - kSec;
    return 0.4 * d * d * d + wMaxSegs;
}

double
dctcpAlphaStep(double alpha, double f)
{
    return (1.0 - 1.0 / 16.0) * alpha + (1.0 / 16.0) * f;
}

// ------------------------------------------------------------------- Reno

namespace {

/**
 * NewReno. The default, and the reference: this arithmetic is the
 * exact window behavior TcpConnection had before the CC layer, so
 * reno runs stay byte-identical to pre-layer figure benches.
 */
class RenoCc : public CongestionControl
{
  public:
    using CongestionControl::CongestionControl;

    CcAlgo algo() const override { return CcAlgo::Reno; }

    bool
    onAcked(const AckEvent &e) override
    {
        if (cwnd_ < ssthresh_) {
            cwnd_ += std::min(e.acked, cfg_.mss); // slow start
        } else {
            uint32_t inc = std::max<uint32_t>(
                1, static_cast<uint32_t>(
                       static_cast<uint64_t>(cfg_.mss) * cfg_.mss / cwnd_));
            cwnd_ += inc; // congestion avoidance
        }
        cwnd_ = std::min(cwnd_, maxCwnd());
        return false;
    }

    void
    onEnterRecovery(uint32_t flight) override
    {
        ssthresh_ = std::max(flight / 2, 2 * cfg_.mss);
        cwnd_ = ssthresh_ + 3 * cfg_.mss;
    }

    void
    onRto(uint32_t flight, bool newEpisode) override
    {
        if (newEpisode)
            ssthresh_ = std::max(flight / 2, 2 * cfg_.mss);
        cwnd_ = cfg_.mss;
    }
};

// ------------------------------------------------------------------ CUBIC

/** RFC 8312 constants. */
constexpr double kCubicC = 0.4;
constexpr double kCubicBeta = 0.7;

class CubicCc : public CongestionControl
{
  public:
    using CongestionControl::CongestionControl;

    CcAlgo algo() const override { return CcAlgo::Cubic; }

    bool
    onAcked(const AckEvent &e) override
    {
        if (cwnd_ < ssthresh_) {
            cwnd_ += std::min(e.acked, cfg_.mss); // slow start
            cwnd_ = std::min(cwnd_, maxCwnd());
            epochValid_ = false;
            return false;
        }

        double segs = static_cast<double>(cwnd_) / cfg_.mss;
        if (!epochValid_) {
            epochValid_ = true;
            epochStart_ = e.now;
            if (wMaxSegs_ < segs)
                wMaxSegs_ = segs;
            k_ = cubicK(wMaxSegs_, segs);
            fracBytes_ = 0.0;
        }

        // Window target one RTT ahead (RFC 8312 uses t + RTT).
        double t = static_cast<double>(e.now - epochStart_ + e.srtt) /
                   static_cast<double>(sim::kSecond);
        double target = cubicWindow(t, k_, wMaxSegs_);
        // RFC 8312 5.1: growth is capped at 1.5x per RTT.
        target = std::min(target, 1.5 * segs);

        // TCP-friendly region: never slower than an equivalent Reno
        // flow (only computable once an RTT sample exists).
        if (e.srtt > 0) {
            double rtts = t * static_cast<double>(sim::kSecond) /
                          static_cast<double>(e.srtt);
            double wEst = wMaxSegs_ * kCubicBeta +
                          (3.0 * (1.0 - kCubicBeta) / (1.0 + kCubicBeta)) *
                              rtts;
            target = std::max(target, wEst);
        }

        if (target > segs) {
            double ackedSegs = static_cast<double>(e.acked) / cfg_.mss;
            fracBytes_ +=
                (target - segs) / segs * ackedSegs * cfg_.mss;
            if (fracBytes_ >= 1.0) {
                double whole = std::floor(fracBytes_);
                fracBytes_ -= whole;
                cwnd_ += static_cast<uint32_t>(whole);
            }
        }
        cwnd_ = std::min(cwnd_, maxCwnd());
        return false;
    }

    void
    onEnterRecovery(uint32_t /*flight*/) override
    {
        reduce();
        cwnd_ = ssthresh_ + 3 * cfg_.mss;
    }

    void
    onRto(uint32_t /*flight*/, bool newEpisode) override
    {
        if (newEpisode)
            reduce();
        epochValid_ = false;
        cwnd_ = cfg_.mss;
    }

    void
    onEcnEcho() override
    {
        reduce();
        cwnd_ = ssthresh_;
    }

  private:
    /** Multiplicative decrease with fast convergence (RFC 8312 4.6). */
    void
    reduce()
    {
        double segs = static_cast<double>(cwnd_) / cfg_.mss;
        if (segs < wMaxSegs_)
            wMaxSegs_ = segs * (2.0 - kCubicBeta) / 2.0;
        else
            wMaxSegs_ = segs;
        ssthresh_ = std::max(
            static_cast<uint32_t>(static_cast<double>(cwnd_) * kCubicBeta),
            2 * cfg_.mss);
        epochValid_ = false;
    }

    double wMaxSegs_ = 0.0;
    double k_ = 0.0;
    double fracBytes_ = 0.0;
    sim::Tick epochStart_ = 0;
    bool epochValid_ = false;
};

// ------------------------------------------------------------------ DCTCP

/**
 * DCTCP (RFC 8257). Growth and loss handling are Reno's; the ECN
 * path differs: the receiver echoes CE state per ack, the sender
 * keeps an EWMA of the marked-byte fraction per window (alpha) and
 * scales cwnd by (1 - alpha/2) at most once per window of data.
 */
class DctcpCc : public RenoCc
{
  public:
    using RenoCc::RenoCc;

    CcAlgo algo() const override { return CcAlgo::Dctcp; }
    bool perAckEcnEcho() const override { return true; }

    bool
    onAcked(const AckEvent &e) override
    {
        ackedBytes_ += e.acked;
        if (e.ecnEcho)
            markedBytes_ += e.acked;

        if (!windowValid_) {
            windowValid_ = true;
            windowEnd_ = e.sndNxt;
        } else if (seqGeq(e.ackSeq, windowEnd_)) {
            // One observation window (a cwnd of data) fully acked:
            // fold the mark fraction into alpha.
            double f = ackedBytes_ > 0
                           ? static_cast<double>(markedBytes_) /
                                 static_cast<double>(ackedBytes_)
                           : 0.0;
            alpha_ = dctcpAlphaStep(alpha_, f);
            ackedBytes_ = 0;
            markedBytes_ = 0;
            windowEnd_ = e.sndNxt;
        }

        bool reduced = false;
        if (e.ecnEcho && (!reduceValid_ || seqGeq(e.ackSeq, reduceEnd_))) {
            uint32_t scaled = static_cast<uint32_t>(
                static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0));
            cwnd_ = std::max(scaled, 2 * cfg_.mss);
            ssthresh_ = cwnd_;
            reduceValid_ = true;
            reduceEnd_ = e.sndNxt;
            reduced = true;
        }
        if (!reduced)
            RenoCc::onAcked(e);
        return reduced;
    }

    double alpha() const { return alpha_; }

  private:
    double alpha_ = 1.0; ///< RFC 8257 suggests initializing to 1
    uint64_t ackedBytes_ = 0;
    uint64_t markedBytes_ = 0;
    uint32_t windowEnd_ = 0;
    bool windowValid_ = false;
    uint32_t reduceEnd_ = 0;
    bool reduceValid_ = false;
};

} // namespace

std::unique_ptr<CongestionControl>
makeCongestionControl(CcAlgo algo, const CcConfig &cfg)
{
    switch (resolveCcAlgo(algo)) {
      case CcAlgo::Cubic:
        return std::make_unique<CubicCc>(cfg);
      case CcAlgo::Dctcp:
        return std::make_unique<DctcpCc>(cfg);
      default:
        return std::make_unique<RenoCc>(cfg);
    }
}

} // namespace anic::tcp
