#include "tcp/tcp_connection.hh"

#include "tcp/tcp_stack.hh"
#include "util/panic.hh"

namespace anic::tcp {

using net::kTcpAck;
using net::kTcpCwr;
using net::kTcpEce;
using net::kTcpFin;
using net::kTcpPsh;
using net::kTcpSyn;

void
TcpConnection::count(sim::Counter TcpStats::*m, uint64_t n)
{
    (stats_.*m) += n;
    (stack_.agg_.*m) += n;
}

// --------------------------------------------------------------- SendRing

size_t
SendRing::push(ByteView data)
{
    if (buf_.empty())
        buf_.resize(capacity_); // lazy: idle connections stay small
    size_t n = std::min(space(), data.size());
    size_t tail = (head_ + size_) % buf_.size();
    size_t first = std::min(n, buf_.size() - tail);
    std::memcpy(buf_.data() + tail, data.data(), first);
    if (n > first)
        std::memcpy(buf_.data(), data.data() + first, n - first);
    size_ += n;
    return n;
}

void
SendRing::copyOut(size_t relOff, ByteSpan out) const
{
    ANIC_ASSERT(relOff + out.size() <= size_, "copyOut beyond ring data");
    if (out.empty())
        return;
    size_t pos = (head_ + relOff) % buf_.size();
    size_t first = std::min(out.size(), buf_.size() - pos);
    std::memcpy(out.data(), buf_.data() + pos, first);
    if (out.size() > first)
        std::memcpy(out.data() + first, buf_.data(), out.size() - first);
}

void
SendRing::popFront(size_t n)
{
    ANIC_ASSERT(n <= size_);
    if (n == 0)
        return;
    head_ = (head_ + n) % buf_.size();
    size_ -= n;
}

// --------------------------------------------------------- helper: meta

namespace {

/** Adjusts placement metadata after trimming @p trim payload bytes
 *  from the front and keeping @p keep bytes. */
net::RxOffloadMeta
trimMeta(const net::RxOffloadMeta &meta, size_t trim, size_t keep)
{
    net::RxOffloadMeta out = meta;
    out.placed.clear();
    for (const net::PlacedRange &r : meta.placed) {
        uint64_t start = std::max<uint64_t>(r.payloadOff, trim);
        uint64_t end = std::min<uint64_t>(r.payloadOff + r.len, trim + keep);
        if (start < end) {
            out.placed.push_back(net::PlacedRange{
                static_cast<uint32_t>(start - trim),
                static_cast<uint32_t>(end - start)});
        }
    }
    return out;
}

} // namespace

// ----------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(TcpStack &stack, host::Core &core,
                             const Config &cfg, net::FlowKey local,
                             uint32_t iss)
    : stack_(stack),
      core_(core),
      cfg_(cfg),
      local_(local),
      sndRing_(cfg.sndBufSize),
      iss_(iss),
      sndUna_(iss),
      sndNxt_(iss),
      cc_(makeCongestionControl(
          cfg.cc, CcConfig{cfg.mss, cfg.initialCwndSegs, cfg.maxCwndSegs})),
      rto_(cfg.initialRto)
{
    lastAdvertisedWnd_ = static_cast<uint32_t>(cfg_.rcvBufSize);
    ecnWanted_ = cfg_.ecn || cc_->algo() == CcAlgo::Dctcp;
}

uint32_t
TcpConnection::sndLimit() const
{
    uint32_t wnd = std::min(cc_->cwnd(), peerWnd_);
    // Zero-window deadlock avoidance: allow a 1-byte probe when
    // nothing is in flight.
    if (wnd == 0 && flightSize() == 0)
        wnd = 1;
    return wnd;
}

size_t
TcpConnection::send(ByteView data)
{
    if (state_ != State::Established && state_ != State::CloseWait)
        return 0;
    ANIC_ASSERT(!finQueued_, "send() after close()");
    size_t n = sndRing_.push(data);
    bytesAccepted_ += n;
    size_t threshold = std::max<size_t>(cfg_.mss, cfg_.sndBufSize / 3);
    writableSignaled_ = sndRing_.space() >= threshold;
    if (n > 0)
        trySend();
    return n;
}

RxSegment
TcpConnection::pop()
{
    ANIC_ASSERT(!rxQueue_.empty(), "pop() on empty receive queue");
    RxSegment seg = std::move(rxQueue_.front());
    rxQueue_.pop_front();
    rxQueuedBytes_ -= seg.data.size();

    // Window update: if the advertised window grew substantially
    // since we last told the peer, send an ACK so it can resume.
    uint64_t queued = rxQueuedBytes_ + oooBytes_;
    uint32_t wnd = queued >= cfg_.rcvBufSize
                       ? 0
                       : static_cast<uint32_t>(cfg_.rcvBufSize - queued);
    if (state_ != State::Closed && wnd > lastAdvertisedWnd_ &&
        wnd - lastAdvertisedWnd_ >= 2 * cfg_.mss &&
        static_cast<uint64_t>(wnd - lastAdvertisedWnd_) >=
            cfg_.rcvBufSize / 4) {
        sendAck();
    }
    return seg;
}

void
TcpConnection::close()
{
    if (finQueued_ || state_ == State::Closed)
        return;
    finQueued_ = true;
    trySend();
}

uint8_t
TcpConnection::synFlags() const
{
    // RFC 3168 ECN-setup SYN: ECE and CWR both set.
    return kTcpSyn | (ecnWanted_ ? (kTcpEce | kTcpCwr) : 0);
}

uint8_t
TcpConnection::synAckFlags() const
{
    // RFC 3168 ECN-setup SYN-ACK: ECE only (once negotiated).
    return kTcpSyn | kTcpAck | (ecnEnabled_ ? kTcpEce : 0);
}

void
TcpConnection::startConnect()
{
    ANIC_ASSERT(state_ == State::Closed);
    state_ = State::SynSent;
    sendFlagsPacket(synFlags(), iss_, false);
    sndNxt_ = iss_ + 1;
    armRto();
}

void
TcpConnection::startAccept(uint32_t irs, uint8_t peerSynFlags)
{
    ANIC_ASSERT(state_ == State::Closed);
    irs_ = irs;
    rcvNxt_ = irs + 1;
    state_ = State::SynRcvd;
    // ECN-setup SYN has both ECE and CWR; anything else (including a
    // plain SYN from a non-ECN peer) leaves the connection non-ECT.
    ecnEnabled_ = ecnWanted_ && (peerSynFlags & kTcpEce) != 0 &&
                  (peerSynFlags & kTcpCwr) != 0;
    sendFlagsPacket(synAckFlags(), iss_, true);
    sndNxt_ = iss_ + 1;
    armRto();
}

void
TcpConnection::enterEstablished()
{
    state_ = State::Established;
    cc_->onEstablished();
    cancelRto();
    if (onConnected_)
        onConnected_();
}

void
TcpConnection::onPacket(const net::PacketPtr &pkt)
{
    const net::TcpHeader h = pkt->tcp();
    core_.charge(pkt->payloadSize() > 0 ? core_.model().tcpRxPerPacket
                                        : core_.model().tcpAckRxPerPacket);

    switch (state_) {
      case State::Closed:
        return;
      case State::SynSent:
        if ((h.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
            h.ack == iss_ + 1) {
            irs_ = h.seq;
            rcvNxt_ = h.seq + 1;
            sndUna_ = h.ack;
            peerWnd_ = h.window;
            // ECN-setup SYN-ACK carries ECE without CWR; a peer that
            // echoes neither (or both) did not negotiate ECN.
            ecnEnabled_ = ecnWanted_ && (h.flags & kTcpEce) != 0 &&
                          (h.flags & kTcpCwr) == 0;
            enterEstablished();
            sendAck();
        }
        return;
      case State::SynRcvd:
        if ((h.flags & kTcpSyn) && !(h.flags & kTcpAck)) {
            // Duplicate SYN: our SYN-ACK was lost; resend.
            sendFlagsPacket(synAckFlags(), iss_, true);
            return;
        }
        if ((h.flags & kTcpAck) && h.ack == iss_ + 1) {
            sndUna_ = h.ack;
            peerWnd_ = h.window;
            enterEstablished();
            // May carry data already; fall through to data handling.
            if (pkt->payloadSize() > 0 || (h.flags & kTcpFin))
                processData(pkt, h);
        }
        return;
      default:
        break;
    }

    // A SYN in a synchronized state is the peer retransmitting its
    // SYN-ACK: our handshake ACK was lost. RFC 793 requires any such
    // unacceptable segment to elicit an empty ACK — without it a
    // connection that never sends data (so nothing else carries an
    // ACK) leaves the peer stuck in SYN-RCVD forever.
    if (h.flags & kTcpSyn) {
        sendAck();
        return;
    }

    if (h.flags & kTcpAck)
        processAck(h);
    if (pkt->payloadSize() > 0 || (h.flags & kTcpFin))
        processData(pkt, h);
}

void
TcpConnection::processAck(const net::TcpHeader &h)
{
    uint32_t ack = h.ack;
    peerWnd_ = h.window;

    if (seqGt(ack, sndNxt_))
        return; // acks data we never sent

    bool ece = ecnEnabled_ && (h.flags & kTcpEce) != 0;

    if (seqGt(ack, sndUna_)) {
        uint32_t acked = seqDiff(ack, sndUna_);
        count(&TcpStats::acksRcvd);
        if (ece)
            count(&TcpStats::ecnEchoesRcvd);

        if (rttPending_ && seqGeq(ack, rttSeq_)) {
            rttSample(stack_.sim().now() - rttSentAt_);
            rttPending_ = false;
        }

        // The FIN, if sent and covered by this ack, consumed one
        // sequence number that has no ring bytes behind it.
        uint32_t dataAcked = acked;
        bool finAcked = finSent_ && ack == sndNxt_;
        if (finAcked && dataAcked > 0)
            dataAcked--;
        dataAcked = std::min<uint32_t>(dataAcked, sndRing_.size());
        sndRing_.popFront(dataAcked);
        sndUna_ = ack;
        rtoBackoff_ = 0;
        dupAcks_ = 0;
        if (rtoEpisode_ && seqGeq(ack, rtoRecover_))
            rtoEpisode_ = false; // loss episode fully recovered

        CongestionControl::AckEvent ev;
        ev.acked = acked;
        ev.flight = flightSize();
        ev.ackSeq = ack;
        ev.sndNxt = sndNxt_;
        ev.ecnEcho = ece;
        ev.now = stack_.sim().now();
        ev.srtt = srtt_;
        if (cc_->onAcked(ev)) {
            // DCTCP reduced in-band: announce with CWR on next data.
            cwrPending_ = true;
            noteCwndReduction();
        }

        if (inRecovery_) {
            if (seqGeq(ack, recover_)) {
                inRecovery_ = false;
                cc_->onExitRecovery();
            } else {
                // NewReno partial ack: retransmit the next hole.
                uint32_t len = std::min<uint32_t>(
                    cfg_.mss, std::min<uint32_t>(flightSize(),
                                                 sndRing_.size()));
                if (len > 0) {
                    sendSegment(sndUna_, len, true);
                }
            }
        } else if (ece && !cc_->perAckEcnEcho() &&
                   (!ecnRespValid_ || seqGeq(ack, ecnRespSeq_))) {
            // Classic RFC 3168 reaction: at most once per window of
            // data, and recovery already covers the reduction.
            cc_->onEcnEcho();
            ecnRespValid_ = true;
            ecnRespSeq_ = sndNxt_;
            cwrPending_ = true;
            noteCwndReduction();
        }

        if (flightSize() == 0)
            cancelRto();
        else
            armRto();

        if (onAcked_)
            onAcked_(sndUna_);

        if (finAcked) {
            if (state_ == State::FinWait1)
                state_ = State::FinWait2;
            else if (state_ == State::LastAck || state_ == State::Closing)
                state_ = State::Closed;
        }

        // Low-water-mark wakeups (like tcp_poll's 1/3-free rule):
        // waking the writer on every ack would make it dribble tiny
        // sends with full per-call overhead.
        size_t threshold = std::max<size_t>(cfg_.mss, cfg_.sndBufSize / 3);
        bool above = sndRing_.space() >= threshold;
        if (onWritable_ && above && !writableSignaled_) {
            writableSignaled_ = true;
            onWritable_();
        }
    } else if (ack == sndUna_ && flightSize() > 0 &&
               (h.flags & ~(kTcpEce | kTcpCwr)) == kTcpAck) {
        // Potential duplicate ACK (no data, no SYN/FIN; ECN echo bits
        // don't disqualify — DCTCP receivers set ECE on dup acks too).
        dupAcks_++;
        count(&TcpStats::dupAcksRcvd);
        if (dupAcks_ == 3 && !inRecovery_) {
            enterFastRecovery();
        } else if (inRecovery_) {
            cc_->onDupAck(); // inflation during recovery
        }
    }

    trySend();
}

void
TcpConnection::enterFastRecovery()
{
    cc_->onEnterRecovery(flightSize());
    inRecovery_ = true;
    recover_ = sndNxt_;
    count(&TcpStats::fastRetransmits);
    stack_.sampleCongestion(cc_->cwnd(), cc_->ssthresh(), cfg_.mss);
    uint32_t len = std::min<uint32_t>(
        cfg_.mss, std::min<uint32_t>(flightSize(), sndRing_.size()));
    if (len > 0)
        sendSegment(sndUna_, len, true);
    else if (finSent_)
        sendFlagsPacket(kTcpFin | kTcpAck, sndNxt_ - 1, true);
}

void
TcpConnection::noteCwndReduction()
{
    count(&TcpStats::ecnCwndReductions);
    stack_.sampleCongestion(cc_->cwnd(), cc_->ssthresh(), cfg_.mss);
}

void
TcpConnection::rttSample(sim::Tick sample)
{
    if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
    } else {
        sim::Tick err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
    }
    sim::Tick rto = srtt_ + std::max<sim::Tick>(4 * rttvar_,
                                                sim::kMillisecond / 4);
    rto_ = std::clamp(rto, cfg_.minRto, cfg_.maxRto);
}

void
TcpConnection::trySend()
{
    if (state_ != State::Established && state_ != State::CloseWait &&
        state_ != State::FinWait1 && state_ != State::LastAck) {
        return;
    }
    if (devBlocked_)
        return;

    for (;;) {
        uint32_t limit = sndLimit();
        uint32_t flight = flightSize();
        uint32_t data_end = sndUna_ + static_cast<uint32_t>(sndRing_.size());
        uint32_t unsent = seqGt(data_end, sndNxt_) ? seqDiff(data_end, sndNxt_)
                                                   : 0;
        // Retransmitted FIN occupies flight but is past ring data.
        if (finSent_)
            unsent = 0;
        if (unsent == 0)
            break;
        if (flight >= limit)
            break;
        uint32_t len = std::min({unsent, cfg_.mss, limit - flight});
        if (len == 0)
            break;
        if (!sendSegment(sndNxt_, len, false))
            return; // device full; redriven via onDeviceWritable
        sndNxt_ += len;
        count(&TcpStats::bytesSent, len);
    }

    // Send FIN once all data has been transmitted at least once.
    if (finQueued_ && !finSent_ &&
        sndNxt_ == sndUna_ + static_cast<uint32_t>(sndRing_.size())) {
        sendFlagsPacket(kTcpFin | kTcpAck, sndNxt_, true);
        sndNxt_ += 1;
        finSent_ = true;
        if (state_ == State::Established)
            state_ = State::FinWait1;
        else if (state_ == State::CloseWait)
            state_ = State::LastAck;
    }

    if (flightSize() > 0 && !rtoArmed_)
        armRto();
}

uint8_t
TcpConnection::ecnAckFlags(bool dataSegment) const
{
    if (!ecnEnabled_)
        return 0;
    uint8_t f = 0;
    bool echo = cc_->perAckEcnEcho() ? ecnCeSinceAck_ : ecnEceLatched_;
    if (echo)
        f |= kTcpEce;
    if (dataSegment && cwrPending_)
        f |= kTcpCwr;
    return f;
}

void
TcpConnection::ecnEchoSent(bool dataSegment)
{
    if (!ecnEnabled_)
        return;
    ecnCeSinceAck_ = false; // this ack conveyed the CE state
    if (dataSegment && cwrPending_)
        cwrPending_ = false;
}

bool
TcpConnection::sendSegment(uint32_t seq, uint32_t len, bool retransmission)
{
    net::Ipv4Header ip;
    ip.src = local_.srcIp;
    ip.dst = local_.dstIp;
    if (ecnEnabled_)
        ip.tos = net::kEcnEct0; // data segments are ECN-capable

    net::TcpHeader th;
    th.srcPort = local_.srcPort;
    th.dstPort = local_.dstPort;
    th.seq = seq;
    th.ack = rcvNxt_;
    th.flags = kTcpAck | ecnAckFlags(true);
    uint32_t data_end = sndUna_ + static_cast<uint32_t>(sndRing_.size());
    if (seq + len == data_end)
        th.flags |= kTcpPsh;
    uint64_t queued = rxQueuedBytes_ + oooBytes_;
    th.window = queued >= cfg_.rcvBufSize
                    ? 0
                    : static_cast<uint32_t>(cfg_.rcvBufSize - queued);

    // Pooled packet, payload copied straight from the retransmission
    // ring into the wire buffer (no intermediate allocation).
    net::PacketPtr pkt = stack_.pool().makeTcp(ip, th, len);
    sndRing_.copyOut(seqDiff(seq, sndUna_), pkt->payloadMut());
    pkt->txCtx = txOffloadCtx_;

    core_.charge(core_.model().tcpTxPerPacket);
    if (!stack_.output(*this, pkt)) {
        devBlocked_ = true;
        return false;
    }
    count(&TcpStats::dataPktsSent);
    if (retransmission) {
        count(&TcpStats::retransmits);
        stack_.trace_->record(stack_.sim().now(), sim::TraceKind::Retransmit,
                              stack_.scope_.prefix().empty()
                                  ? "tcp"
                                  : stack_.scope_.prefix(),
                              net::FlowKeyHash{}(local_), seq, len);
    } else if (!rttPending_) {
        rttSeq_ = seq + len;
        rttSentAt_ = stack_.sim().now();
        rttPending_ = true;
    }
    // This segment carried an up-to-date ack.
    unackedDataPkts_ = 0;
    lastAdvertisedWnd_ = th.window;
    ecnEchoSent(true);
    return true;
}

void
TcpConnection::sendFlagsPacket(uint8_t flags, uint32_t seq, bool withAck)
{
    net::Ipv4Header ip;
    ip.src = local_.srcIp;
    ip.dst = local_.dstIp;

    net::TcpHeader th;
    th.srcPort = local_.srcPort;
    th.dstPort = local_.dstPort;
    th.seq = seq;
    th.ack = withAck ? rcvNxt_ : 0;
    th.flags = flags | (withAck ? kTcpAck : 0);
    // Pure acks echo CE state (never CWR: that rides on data only),
    // but the handshake packets carry exactly their negotiated bits.
    if (withAck && !(flags & kTcpSyn))
        th.flags |= ecnAckFlags(false);
    uint64_t queued = rxQueuedBytes_ + oooBytes_;
    th.window = queued >= cfg_.rcvBufSize
                    ? 0
                    : static_cast<uint32_t>(cfg_.rcvBufSize - queued);

    net::PacketPtr pkt = stack_.pool().makeTcp(ip, th, 0);
    pkt->txCtx = txOffloadCtx_;

    core_.charge(core_.model().tcpTxPerPacket);
    stack_.output(*this, pkt); // control packets ignore backpressure
    if (withAck) {
        count(&TcpStats::acksSent);
        unackedDataPkts_ = 0;
        lastAdvertisedWnd_ = th.window;
        if (!(flags & kTcpSyn))
            ecnEchoSent(false);
    }
}

void
TcpConnection::sendAck()
{
    sendFlagsPacket(kTcpAck, sndNxt_, true);
}

void
TcpConnection::scheduleDelayedAck()
{
    if (delayedAckScheduled_)
        return;
    delayedAckScheduled_ = true;
    uint64_t gen = ++delAckGeneration_;
    stack_.sim().schedule(cfg_.delayedAckTimeout, [this, gen] {
        core_.post([this, gen] {
            if (gen != delAckGeneration_)
                return;
            delayedAckScheduled_ = false;
            if (unackedDataPkts_ > 0)
                sendAck();
        });
    });
}

void
TcpConnection::armRto()
{
    // Lazy re-arm: every ack would otherwise schedule a fresh event,
    // leaving millions of stale closures in the event queue at high
    // ack rates. Instead keep at most one outstanding event per
    // connection and push the deadline forward; the event re-posts
    // itself if it fires early.
    sim::Tick timeout = rto_ << std::min(rtoBackoff_, 6);
    rtoDeadline_ = stack_.sim().now() + timeout;
    if (rtoArmed_)
        return;
    rtoArmed_ = true;
    uint64_t gen = ++rtoGeneration_;
    stack_.sim().scheduleAt(rtoDeadline_, [this, gen] {
        core_.post([this, gen] { onRtoFire(gen); });
    });
}

void
TcpConnection::cancelRto()
{
    rtoGeneration_++;
    rtoArmed_ = false;
}

void
TcpConnection::onRtoFire(uint64_t generation)
{
    if (generation != rtoGeneration_)
        return;
    rtoArmed_ = false;
    if (stack_.sim().now() < rtoDeadline_) {
        // The deadline moved (acks arrived): re-arm for the rest.
        rtoArmed_ = true;
        uint64_t gen = ++rtoGeneration_;
        stack_.sim().scheduleAt(rtoDeadline_, [this, gen] {
            core_.post([this, gen] { onRtoFire(gen); });
        });
        return;
    }

    if (state_ == State::SynSent) {
        count(&TcpStats::rtoFires);
        rtoBackoff_++;
        sendFlagsPacket(synFlags(), iss_, false);
        armRto();
        return;
    }
    if (state_ == State::SynRcvd) {
        count(&TcpStats::rtoFires);
        rtoBackoff_++;
        sendFlagsPacket(synAckFlags(), iss_, true);
        armRto();
        return;
    }
    if (flightSize() == 0)
        return;

    count(&TcpStats::rtoFires);
    // ssthresh is recomputed only on the first fire of a loss episode.
    // Repeat backoffs (or fires after partial progress within the
    // episode) used to recompute it from a flight the episode itself
    // had collapsed, spiraling ssthresh to its floor.
    bool newEpisode = !rtoEpisode_;
    if (newEpisode) {
        rtoEpisode_ = true;
        rtoRecover_ = sndNxt_;
    }
    cc_->onRto(flightSize(), newEpisode);
    if (newEpisode)
        stack_.sampleCongestion(cc_->cwnd(), cc_->ssthresh(), cfg_.mss);
    inRecovery_ = false;
    dupAcks_ = 0;
    rttPending_ = false; // Karn: don't sample retransmitted segments
    rtoBackoff_++;

    uint32_t len = std::min<uint32_t>(
        cfg_.mss, std::min<uint32_t>(flightSize(), sndRing_.size()));
    if (len > 0)
        sendSegment(sndUna_, len, true);
    else if (finSent_)
        sendFlagsPacket(kTcpFin | kTcpAck, sndNxt_ - 1, true);
    armRto();
}

void
TcpConnection::processData(const net::PacketPtr &pkt, const net::TcpHeader &h)
{
    ByteView payload = pkt->payload();
    bool fin = (h.flags & kTcpFin) != 0;
    if (!payload.empty())
        count(&TcpStats::dataPktsRcvd);

    // CE is only meaningful on segments that occupy sequence space;
    // a broken peer reflecting ECT/CE onto pure acks never reaches
    // here, so it cannot fake congestion signals.
    if (ecnEnabled_) {
        if (h.flags & kTcpCwr)
            ecnEceLatched_ = false; // peer reduced; stop the echo
        if ((pkt->ip().tos & net::kEcnMask) == net::kEcnCe) {
            count(&TcpStats::ecnCeRcvd);
            if (cc_->perAckEcnEcho())
                ecnCeSinceAck_ = true;
            else
                ecnEceLatched_ = true;
        }
    }

    int64_t delta = static_cast<int32_t>(h.seq - rcvNxt_);
    int64_t end_delta = delta + static_cast<int64_t>(payload.size());

    if (end_delta + (fin ? 1 : 0) <= 0) {
        // Entirely in the past: duplicate. Ack immediately so the
        // sender sees progress.
        sendAck();
        return;
    }

    if (delta > 0) {
        // Out of order: buffer, duplicate-ack immediately.
        count(&TcpStats::oooPktsRcvd);
        uint64_t pos = rcvStreamOff_ + static_cast<uint64_t>(delta);
        if (oooBytes_ + payload.size() <= cfg_.rcvBufSize) {
            auto it = ooo_.find(pos);
            if (it == ooo_.end() || it->second.data.size() < payload.size()) {
                OooSegment seg;
                seg.data.assign(payload.begin(), payload.end());
                seg.meta = pkt->rx;
                seg.fin = fin;
                if (it != ooo_.end()) {
                    oooBytes_ -= it->second.data.size();
                    ooo_.erase(it);
                }
                oooBytes_ += seg.data.size();
                ooo_.emplace(pos, std::move(seg));
            }
        }
        sendAck();
        return;
    }

    // In order (possibly with a stale-front overlap to trim). The
    // fast path hands the application a view into the packet's own
    // payload — the pooled packet stays pinned until the segment is
    // consumed, and no bytes are copied.
    size_t trim = static_cast<size_t>(-delta);
    size_t keep = payload.size() - trim;
    net::RxOffloadMeta meta = trimMeta(pkt->rx, trim, keep);
    SegmentBuffer buf;
    buf.bind(pkt, payload.subspan(trim, keep));
    deliverSegment(h.seq + static_cast<uint32_t>(trim), std::move(buf),
                   std::move(meta), fin);
    drainOoo();

    if (peerFinSeen_)
        handleFin();

    unackedDataPkts_++;
    bool have_gap = !ooo_.empty();
    if (unackedDataPkts_ >= 2 || fin || have_gap || peerFinSeen_)
        sendAck();
    else
        scheduleDelayedAck();

    if (onReadable_ && readable())
        onReadable_();
}

void
TcpConnection::deliverSegment(uint32_t seq, SegmentBuffer data,
                              net::RxOffloadMeta meta, bool fin)
{
    ANIC_ASSERT(seq == rcvNxt_, "deliver must be in order");
    if (!data.empty()) {
        size_t len = data.size();
        RxSegment seg;
        seg.streamOff = rcvStreamOff_;
        seg.data = std::move(data);
        seg.meta = std::move(meta);
        rxQueuedBytes_ += len;
        rxQueue_.push_back(std::move(seg));
        rcvStreamOff_ += len;
        rcvNxt_ += static_cast<uint32_t>(len);
        count(&TcpStats::bytesDelivered, len);
    }
    if (fin) {
        rcvNxt_ += 1;
        peerFinSeen_ = true;
    }
}

void
TcpConnection::drainOoo()
{
    while (!ooo_.empty()) {
        auto it = ooo_.begin();
        uint64_t pos = it->first;
        OooSegment &seg = it->second;
        uint64_t end = pos + seg.data.size();
        if (pos > rcvStreamOff_)
            break; // still a gap
        oooBytes_ -= seg.data.size();
        if (end > rcvStreamOff_ || (seg.fin && end == rcvStreamOff_)) {
            size_t trim = static_cast<size_t>(rcvStreamOff_ - pos);
            size_t keep = seg.data.size() - trim;
            net::RxOffloadMeta meta = trimMeta(seg.meta, trim, keep);
            SegmentBuffer buf;
            if (trim == 0) {
                // Whole buffered segment: hand its bytes over without
                // another copy.
                buf.adopt(std::move(seg.data));
            } else {
                buf.assign(ByteView(seg.data).subspan(trim, keep));
            }
            deliverSegment(rcvNxt_, std::move(buf), std::move(meta),
                           seg.fin);
        }
        ooo_.erase(it);
    }
}

void
TcpConnection::handleFin()
{
    switch (state_) {
      case State::Established:
        state_ = State::CloseWait;
        break;
      case State::FinWait1:
        state_ = State::Closing;
        break;
      case State::FinWait2:
        state_ = State::Closed; // TIME_WAIT elided in simulation
        break;
      default:
        break;
    }
    peerFinSeen_ = false; // handled
    if (onPeerClosed_)
        onPeerClosed_();
}

void
TcpConnection::onDeviceWritable()
{
    if (!devBlocked_)
        return;
    devBlocked_ = false;
    trySend();
}

} // namespace anic::tcp
