/**
 * @file
 * Pluggable congestion control for TcpConnection.
 *
 * The connection owns exactly one CongestionControl instance and
 * reports transport events to it (acks, dup-acks, recovery entry/exit,
 * RTO, ECN echoes); the algorithm owns cwnd and ssthresh. Three
 * algorithms are provided:
 *
 *   reno   NewReno, byte-identical to the arithmetic TcpConnection
 *          used before this layer existed (the default).
 *   cubic  RFC 8312: cubic window growth around the last W_max with
 *          fast convergence and the TCP-friendly region.
 *   dctcp  RFC 8257: per-window ECN mark fraction smoothed into alpha
 *          (g = 1/16), cwnd scaled by (1 - alpha/2) once per window.
 *          Selecting dctcp implies ECN on the connection.
 *
 * Selection: TcpConnection::Config::cc, with CcAlgo::Auto resolving
 * through the ANIC_TCP_CC environment knob (empty -> reno) so whole
 * test/bench runs can be swept without touching configs.
 */

#ifndef ANIC_TCP_CONGESTION_HH
#define ANIC_TCP_CONGESTION_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/simulator.hh"

namespace anic::tcp {

enum class CcAlgo : uint8_t
{
    Auto,  ///< resolve via ANIC_TCP_CC, falling back to Reno
    Reno,
    Cubic,
    Dctcp,
};

/** Parses "reno" / "cubic" / "dctcp" (anything else -> Auto). */
CcAlgo parseCcAlgo(const std::string &name);

/** Canonical lowercase name ("auto" for CcAlgo::Auto). */
const char *ccAlgoName(CcAlgo a);

/** Resolves Auto through the ANIC_TCP_CC knob; empty/unset -> Reno. */
CcAlgo resolveCcAlgo(CcAlgo configured);

/** The subset of TcpConnection::Config an algorithm needs. */
struct CcConfig
{
    uint32_t mss = 1460;
    uint32_t initialCwndSegs = 10;
    uint32_t maxCwndSegs = 2048;
};

/**
 * One sender's congestion state. All window arithmetic is in bytes to
 * match TcpConnection; hooks are invoked from the connection's pinned
 * core, so no locking.
 */
class CongestionControl
{
  public:
    /** Everything an algorithm may want to know about one new ack. */
    struct AckEvent
    {
        uint32_t acked = 0;   ///< newly acknowledged bytes (incl. FIN)
        uint32_t flight = 0;  ///< flight size after the ack
        uint32_t ackSeq = 0;  ///< cumulative ack (== new sndUna)
        uint32_t sndNxt = 0;
        bool ecnEcho = false; ///< ECE was set on this ack
        sim::Tick now = 0;
        sim::Tick srtt = 0;   ///< 0 until the first RTT sample
    };

    explicit CongestionControl(const CcConfig &cfg) : cfg_(cfg) {}
    virtual ~CongestionControl() = default;

    virtual CcAlgo algo() const = 0;
    const char *name() const { return ccAlgoName(algo()); }

    uint32_t cwnd() const { return cwnd_; }
    uint32_t ssthresh() const { return ssthresh_; }

    /** Handshake finished: open the initial window. */
    virtual void
    onEstablished()
    {
        cwnd_ = cfg_.initialCwndSegs * cfg_.mss;
    }

    /**
     * A forward ack arrived (called for every ack that advances
     * sndUna, including partial acks during recovery). Returns true
     * when the algorithm reduced cwnd in response to ECN feedback
     * in-band (DCTCP); the connection then schedules a CWR echo.
     */
    virtual bool onAcked(const AckEvent &e) = 0;

    /** Duplicate ack while in fast recovery: window inflation. */
    virtual void onDupAck() { cwnd_ += cfg_.mss; }

    /** Third dup-ack: entering fast recovery (loss inferred). */
    virtual void onEnterRecovery(uint32_t flight) = 0;

    /** Cumulative ack covered recover_: recovery over, deflate. */
    virtual void onExitRecovery() { cwnd_ = ssthresh_; }

    /**
     * Retransmission timeout with data in flight. @p newEpisode is
     * false for repeat fires within one loss episode (no forward
     * progress past the sequence outstanding at the first fire) —
     * ssthresh must only be recomputed when it is true, otherwise a
     * flight collapsed by the episode itself rewrites ssthresh down
     * to its floor.
     */
    virtual void onRto(uint32_t flight, bool newEpisode) = 0;

    /**
     * Classic (RFC 3168) reaction to an ECE echo, invoked by the
     * connection at most once per RTT and never while in recovery.
     * DCTCP never sees this; it reacts inside onAcked instead.
     */
    virtual void
    onEcnEcho()
    {
        ssthresh_ = std::max(cwnd_ / 2, 2 * cfg_.mss);
        cwnd_ = ssthresh_;
    }

    /** DCTCP-style receivers echo CE per ack instead of latching. */
    virtual bool perAckEcnEcho() const { return false; }

  protected:
    uint32_t maxCwnd() const { return cfg_.maxCwndSegs * cfg_.mss; }

    CcConfig cfg_;
    uint32_t cwnd_ = 0;
    uint32_t ssthresh_ = 0xffffffff;
};

std::unique_ptr<CongestionControl> makeCongestionControl(CcAlgo algo,
                                                         const CcConfig &cfg);

// Known-answer helpers for tests (RFC 8312 formulas, windows in
// segments, time in seconds).
double cubicK(double wMaxSegs, double cwndSegs);
double cubicWindow(double tSec, double kSec, double wMaxSegs);

/** One RFC 8257 alpha EWMA step (g = 1/16) over mark fraction @p f. */
double dctcpAlphaStep(double alpha, double f);

} // namespace anic::tcp

#endif // ANIC_TCP_CONGESTION_HH
