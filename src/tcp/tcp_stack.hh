/**
 * @file
 * TCP stack: connection demultiplexing, listeners, port allocation,
 * flow-to-core steering (models accelerated RFS), and routing of
 * outgoing packets to the bound device.
 */

#ifndef ANIC_TCP_TCP_STACK_HH
#define ANIC_TCP_TCP_STACK_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "host/core.hh"
#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"
#include "tcp/net_device.hh"
#include "tcp/tcp_connection.hh"
#include "util/flat_map.hh"
#include "util/rand.hh"
#include "util/slab.hh"

namespace anic::tcp {

/** Per-host TCP stack. */
class TcpStack
{
  public:
    using AcceptFn = std::function<void(TcpConnection &)>;

    /** @param scope registry scope to publish stack-wide counters
     *  under ("<node>.tcp"); a detached scope keeps the stack
     *  unregistered (bare construction in unit tests).
     *  @param trace ring for retransmit events; null falls back to
     *  the thread-local TraceRing::global() (worlds owned by a
     *  RunContext must inject its ring).
     *  @param pool packet arena for outgoing segments; null falls
     *  back to PacketPool::threadDefault(). */
    TcpStack(sim::Simulator &sim, std::vector<host::Core *> cores,
             uint64_t seed = 0x7cb, sim::StatsScope scope = {},
             sim::TraceRing *trace = nullptr,
             net::PacketPool *pool = nullptr);

    /** Binds a device/IP pair (a host may have several ports). */
    void addDevice(NetDevice *dev);

    /** Starts listening; incoming SYNs to @p port spawn connections. */
    void listen(uint16_t port, const TcpConnection::Config &cfg,
                AcceptFn onAccept);

    /**
     * Active open from @p localIp (must match a bound device) toward
     * dst; the connection is pinned to @p core if given, else steered
     * by flow hash.
     */
    TcpConnection &connect(net::IpAddr localIp, net::IpAddr dstIp,
                           uint16_t dstPort, const TcpConnection::Config &cfg,
                           host::Core *core = nullptr);

    /**
     * Demultiplexes one received packet to its connection (or
     * listener). Must be called from a work item on steer(flow).
     */
    void input(const net::PacketPtr &pkt);

    /** The core that packets of @p flow are steered to. */
    host::Core &steer(const net::FlowKey &flow) const;

    /** The core an rx queue's completion interrupts are delivered to
     *  (MSI-X affinity: queue N -> core N mod cores). */
    host::Core &
    coreForQueue(int queue) const
    {
        return *cores_[static_cast<size_t>(queue) % cores_.size()];
    }

    /** Routes an outgoing packet to the device owning its source IP. */
    bool output(TcpConnection &conn, net::PacketPtr pkt);

    sim::Simulator &sim() { return sim_; }
    Rng &rng() { return rng_; }
    net::PacketPool &pool() { return pool_; }

    /** Closes and forgets a connection (tests / teardown). */
    void destroy(TcpConnection &conn);

    size_t connectionCount() const { return conns_.size(); }

    /** Host-wide dropped-input counter (no matching flow). */
    uint64_t droppedInputs() const { return droppedInputs_; }

    /** Roll-up of every connection's counters on this stack. */
    const TcpStats &stats() const { return agg_; }

    /** Records a congestion event's cwnd/ssthresh into the tcp.cc
     *  distributions (sampled on events, not per ack, so the registry
     *  stays bounded; capped as a backstop for loss-storm fuzzing). */
    void
    sampleCongestion(uint32_t cwndBytes, uint32_t ssthreshBytes, uint32_t mss)
    {
        if (mss == 0 || cwndSegsDist_.count() >= kMaxCcSamples)
            return;
        cwndSegsDist_.add(static_cast<double>(cwndBytes) / mss);
        ssthreshSegsDist_.add(static_cast<double>(ssthreshBytes) / mss);
    }

  private:
    struct Listener
    {
        TcpConnection::Config cfg;
        AcceptFn onAccept;
    };

    NetDevice *deviceFor(net::IpAddr localIp) const;
    void onDeviceTxSpace(NetDevice *dev);
    void unlinkBlocked(TcpConnection &conn);
    TcpConnection &createConnection(const net::FlowKey &local,
                                    const TcpConnection::Config &cfg,
                                    host::Core *core);

    sim::Simulator &sim_;
    std::vector<host::Core *> cores_;
    Rng rng_;
    net::PacketPool &pool_;

    std::vector<NetDevice *> devices_;
    // Connections are slab-allocated (stable addresses — cores hold
    // raw pointers in queued work) and demuxed through a flat table
    // of 8-byte handles; churn recycles slots instead of hitting
    // malloc per connection (DESIGN.md §15).
    util::SlabArena<TcpConnection> connArena_;
    util::FlatMap<net::FlowKey, util::SlabHandle, net::FlowKeyHash> conns_;
    std::unordered_map<uint16_t, Listener> listeners_;
    uint16_t nextEphemeral_ = 32768;
    sim::Counter droppedInputs_;

    // Connections waiting for tx-ring space, per device. Each conn
    // appears at most once (TcpConnection::inBlockedQueue_) and is
    // unlinked on destroy, so the vectors cannot grow unboundedly —
    // or dangle — under connection churn.
    util::FlatMap<NetDevice *, std::vector<TcpConnection *>> blocked_;

    // Observability: per-connection stats roll up here so the
    // registry stays bounded at any connection count.
    sim::StatsScope scope_;
    TcpStats agg_;
    sim::Gauge connections_;
    sim::TraceRing *trace_ = nullptr;

    // Congestion-control observability under "<node>.tcp.cc".
    static constexpr size_t kMaxCcSamples = 1 << 16;
    sim::StatsScope ccScope_;
    sim::Distribution cwndSegsDist_;
    sim::Distribution ssthreshSegsDist_;

    friend class TcpConnection;
};

} // namespace anic::tcp

#endif // ANIC_TCP_TCP_STACK_HH
