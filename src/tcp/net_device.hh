/**
 * @file
 * Interface between the TCP stack and a network device driver. The
 * autonomous-offload driver (src/core) implements this on top of the
 * NIC model; tests use simple loopback doubles.
 */

#ifndef ANIC_TCP_NET_DEVICE_HH
#define ANIC_TCP_NET_DEVICE_HH

#include <functional>

#include "net/packet.hh"

namespace anic::tcp {

/** Driver-side transmit interface with backpressure. */
class NetDevice
{
  public:
    virtual ~NetDevice() = default;

    /**
     * Queues a packet for transmission. Returns false if the tx ring
     * is full; the device will invoke the tx-space callback when the
     * caller should retry (BQL-style backpressure).
     */
    virtual bool transmit(net::PacketPtr pkt) = 0;

    /** Registers the callback fired when tx space frees up. */
    virtual void setOnTxSpace(std::function<void()> cb) = 0;

    /** The IP address bound to this device. */
    virtual net::IpAddr ipAddr() const = 0;
};

} // namespace anic::tcp

#endif // ANIC_TCP_NET_DEVICE_HH
