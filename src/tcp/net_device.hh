/**
 * @file
 * Interface between the TCP stack and a network device driver. The
 * autonomous-offload driver (src/core) implements this on top of the
 * NIC model; tests use simple loopback doubles.
 */

#ifndef ANIC_TCP_NET_DEVICE_HH
#define ANIC_TCP_NET_DEVICE_HH

#include <functional>

#include "net/packet.hh"

namespace anic::tcp {

/** Driver-side transmit interface with backpressure. */
class NetDevice
{
  public:
    virtual ~NetDevice() = default;

    /**
     * Queues a packet for transmission. Returns false if the tx ring
     * is full; the device will invoke the tx-space callback when the
     * caller should retry (BQL-style backpressure).
     */
    virtual bool transmit(net::PacketPtr pkt) = 0;

    /** Registers the callback fired when tx space frees up. */
    virtual void setOnTxSpace(std::function<void()> cb) = 0;

    /** The IP address bound to this device. */
    virtual net::IpAddr ipAddr() const = 0;

    /**
     * Number of RSS rx queues this device steers flows across.
     * 0 (the default) means the device has no RSS model and the stack
     * falls back to software flow-hash steering.
     */
    virtual int rxQueues() const { return 0; }

    /** The rx queue packets of @p wireFlow land on (flow as seen on
     *  arriving packets: src = remote peer). Only meaningful when
     *  rxQueues() > 0. */
    virtual int
    rxQueueFor(const net::FlowKey &wireFlow) const
    {
        (void)wireFlow;
        return 0;
    }
};

} // namespace anic::tcp

#endif // ANIC_TCP_NET_DEVICE_HH
