/**
 * @file
 * Stream socket abstraction shared by plain TCP and kTLS sockets, so
 * L5Ps (NVMe-TCP) and applications can run over either — which is how
 * the NVMe-TLS composition works.
 *
 * Unlike a POSIX byte-stream recv(), receive hands out *segments*
 * that preserve per-packet NIC offload metadata; the paper's design
 * depends on L5P software seeing which packets the NIC processed
 * ("the L5P software reads L5P messages handed to it by TCP
 * packet-by-packet").
 */

#ifndef ANIC_TCP_SOCKET_HH
#define ANIC_TCP_SOCKET_HH

#include <functional>

#include "net/packet.hh"
#include "util/bytes.hh"

namespace anic::host {
class Core;
}

namespace anic::tcp {

/**
 * One in-order chunk of received stream data, carrying the NIC
 * offload results of the packet it arrived in. Segments with
 * different offload results are never coalesced.
 */
struct RxSegment
{
    uint64_t streamOff = 0; ///< offset in the connection byte stream
    Bytes data;
    net::RxOffloadMeta meta;
};

/** Reliable byte stream with per-segment offload metadata. */
class StreamSocket
{
  public:
    virtual ~StreamSocket() = default;

    /**
     * Appends up to data.size() bytes to the send stream; returns how
     * many were accepted (0 when the send buffer is full).
     */
    virtual size_t send(ByteView data) = 0;

    /** Free space in the send buffer. */
    virtual size_t sendSpace() const = 0;

    /** Invoked when sendSpace() becomes nonzero again. */
    virtual void setOnWritable(std::function<void()> cb) = 0;

    /** True if an in-order segment is available. */
    virtual bool readable() const = 0;

    /** Pops the next in-order segment; readable() must be true. */
    virtual RxSegment pop() = 0;

    /** Invoked when data becomes readable. */
    virtual void setOnReadable(std::function<void()> cb) = 0;

    /** Invoked when the peer closed its direction (FIN). */
    virtual void setOnPeerClosed(std::function<void()> cb) = 0;

    /** Graceful close of the send direction. */
    virtual void close() = 0;

    /** The core this connection's processing is steered to. */
    virtual host::Core &core() = 0;
};

} // namespace anic::tcp

#endif // ANIC_TCP_SOCKET_HH
