/**
 * @file
 * Stream socket abstraction shared by plain TCP and kTLS sockets, so
 * L5Ps (NVMe-TCP) and applications can run over either — which is how
 * the NVMe-TLS composition works.
 *
 * Unlike a POSIX byte-stream recv(), receive hands out *segments*
 * that preserve per-packet NIC offload metadata; the paper's design
 * depends on L5P software seeing which packets the NIC processed
 * ("the L5P software reads L5P messages handed to it by TCP
 * packet-by-packet").
 */

#ifndef ANIC_TCP_SOCKET_HH
#define ANIC_TCP_SOCKET_HH

#include <functional>

#include "net/packet.hh"
#include "util/bytes.hh"

namespace anic::host {
class Core;
}

namespace anic::tcp {

/**
 * Byte storage for an RxSegment. On the in-order fast path it is a
 * zero-copy view into the delivering packet's payload, pinning the
 * pooled packet alive for as long as the segment exists; reassembled
 * or transformed data (out-of-order drains, software TLS decrypt)
 * owns its bytes instead. The read interface mimics a const byte
 * vector so consumers are agnostic to which mode backs the data.
 */
class SegmentBuffer
{
  public:
    SegmentBuffer() = default;

    /** Zero-copy: view @p v inside @p pkt's payload, pinning it. */
    void
    bind(net::PacketPtr pkt, ByteView v)
    {
        pkt_ = std::move(pkt);
        owned_.clear();
        view_ = v;
    }

    /** Owning copy of @p v. */
    void
    assign(ByteView v)
    {
        owned_.assign(v.begin(), v.end());
        pkt_.reset();
        view_ = owned_;
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        owned_.assign(first, last);
        pkt_.reset();
        view_ = owned_;
    }

    /** Takes ownership of @p b without copying. */
    void
    adopt(Bytes &&b)
    {
        owned_ = std::move(b);
        pkt_.reset();
        view_ = owned_;
    }

    // Copies deep-copy owned bytes so the view never dangles; moves
    // are cheap (vector storage is stable across moves).
    SegmentBuffer(const SegmentBuffer &o) { *this = o; }

    SegmentBuffer &
    operator=(const SegmentBuffer &o)
    {
        if (this == &o)
            return *this;
        if (o.pkt_ != nullptr) {
            pkt_ = o.pkt_;
            owned_.clear();
            view_ = o.view_;
        } else {
            owned_.assign(o.view_.begin(), o.view_.end());
            pkt_.reset();
            view_ = owned_;
        }
        return *this;
    }

    SegmentBuffer(SegmentBuffer &&) = default;
    SegmentBuffer &operator=(SegmentBuffer &&) = default;

    const uint8_t *data() const { return view_.data(); }
    size_t size() const { return view_.size(); }
    bool empty() const { return view_.empty(); }
    const uint8_t *begin() const { return view_.data(); }
    const uint8_t *end() const { return view_.data() + view_.size(); }
    uint8_t operator[](size_t i) const { return view_[i]; }
    operator ByteView() const { return view_; }

    /** The packet pinned by a zero-copy view (null when owning). */
    const net::PacketPtr &backingPacket() const { return pkt_; }

  private:
    net::PacketPtr pkt_;
    ByteView view_;
    Bytes owned_;
};

/**
 * One in-order chunk of received stream data, carrying the NIC
 * offload results of the packet it arrived in. Segments with
 * different offload results are never coalesced.
 */
struct RxSegment
{
    uint64_t streamOff = 0; ///< offset in the connection byte stream
    SegmentBuffer data;
    net::RxOffloadMeta meta;
};

/** Reliable byte stream with per-segment offload metadata. */
class StreamSocket
{
  public:
    virtual ~StreamSocket() = default;

    /**
     * Appends up to data.size() bytes to the send stream; returns how
     * many were accepted (0 when the send buffer is full).
     */
    virtual size_t send(ByteView data) = 0;

    /** Free space in the send buffer. */
    virtual size_t sendSpace() const = 0;

    /** Invoked when sendSpace() becomes nonzero again. */
    virtual void setOnWritable(std::function<void()> cb) = 0;

    /** True if an in-order segment is available. */
    virtual bool readable() const = 0;

    /** Pops the next in-order segment; readable() must be true. */
    virtual RxSegment pop() = 0;

    /** Invoked when data becomes readable. */
    virtual void setOnReadable(std::function<void()> cb) = 0;

    /** Invoked when the peer closed its direction (FIN). */
    virtual void setOnPeerClosed(std::function<void()> cb) = 0;

    /** Graceful close of the send direction. */
    virtual void close() = 0;

    /** The core this connection's processing is steered to. */
    virtual host::Core &core() = 0;
};

} // namespace anic::tcp

#endif // ANIC_TCP_SOCKET_HH
