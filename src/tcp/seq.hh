/**
 * @file
 * Wraparound-safe TCP sequence-number arithmetic (RFC 793 comparisons
 * on modulo-2^32 values).
 */

#ifndef ANIC_TCP_SEQ_HH
#define ANIC_TCP_SEQ_HH

#include <cstdint>

namespace anic::tcp {

/** a < b in sequence space. */
inline bool
seqLt(uint32_t a, uint32_t b)
{
    return static_cast<int32_t>(a - b) < 0;
}

/** a <= b in sequence space. */
inline bool
seqLeq(uint32_t a, uint32_t b)
{
    return !seqLt(b, a);
}

/** a > b in sequence space. */
inline bool
seqGt(uint32_t a, uint32_t b)
{
    return seqLt(b, a);
}

/** a >= b in sequence space. */
inline bool
seqGeq(uint32_t a, uint32_t b)
{
    return !seqLt(a, b);
}

/** Bytes from a to b (b - a), valid when a <= b within half the ring. */
inline uint32_t
seqDiff(uint32_t b, uint32_t a)
{
    return b - a;
}

/** max in sequence space. */
inline uint32_t
seqMax(uint32_t a, uint32_t b)
{
    return seqLt(a, b) ? b : a;
}

/** min in sequence space. */
inline uint32_t
seqMin(uint32_t a, uint32_t b)
{
    return seqLt(a, b) ? a : b;
}

} // namespace anic::tcp

#endif // ANIC_TCP_SEQ_HH
