/**
 * @file
 * Bounded event trace ring for the offload datapath. Components record
 * discrete events — FSM state transitions, resync request/confirm,
 * context-cache evictions, TCP retransmits — into a fixed-capacity
 * ring; when full, the oldest events are overwritten (and counted as
 * dropped), so tracing is safe to leave compiled in.
 *
 * The global ring is disabled by default; set ANIC_TRACE=1 to enable
 * it (ANIC_TRACE_CAP overrides the default capacity). Benches dump it
 * as JSONL or chrome://tracing format when ANIC_TRACE_FILE is set.
 */

#ifndef ANIC_SIM_TRACE_HH
#define ANIC_SIM_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace anic::sim {

enum class TraceKind : uint8_t
{
    FsmTransition,   ///< a: from state, b: to state
    ResyncRequest,   ///< a: tcp seq the NIC asked about
    ResyncConfirmed, ///< a: confirmed seq
    ResyncRefuted,   ///< a: refuted seq
    CtxEvict,        ///< a: evicted flow id, b: writeback bytes
    CtxFetch,        ///< a: flow id, b: fetch bytes
    Retransmit,      ///< a: seq, b: bytes
    TxResync,        ///< a: flow id
    RxQueueSelect,   ///< id: rx queue, a: rss hash
    IrqFire,         ///< id: queue, a: packets in the batch
    IrqCoalesce,     ///< id: queue, a: completions now pending
    Custom,          ///< component-defined
};

const char *traceKindName(TraceKind k);

struct TraceEvent
{
    Tick ts = 0;
    TraceKind kind = TraceKind::Custom;
    uint64_t id = 0; ///< flow/connection identifier
    uint64_t a = 0;  ///< kind-specific operand
    uint64_t b = 0;  ///< kind-specific operand
    std::string comp; ///< component instance name ("srv.nic0.fsm")
};

class TraceRing
{
  public:
    static constexpr size_t kDefaultCapacity = 4096;

    explicit TraceRing(size_t capacity = kDefaultCapacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /**
     * Fallback ring used by components that have no injected ring.
     * Thread-local: parallel JobRunner workers that fall through to
     * it never share a ring (runs should inject their RunContext's
     * ring instead — see DESIGN.md §12). Enabled (and sized) from
     * ANIC_TRACE / ANIC_TRACE_CAP on first use per thread; stays
     * disabled otherwise so record() is a cheap no-op.
     */
    static TraceRing &global();

    bool enabled() const { return enabled_; }
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }

    void
    setCapacity(size_t capacity)
    {
        capacity_ = capacity == 0 ? 1 : capacity;
        clear();
    }
    size_t capacity() const { return capacity_; }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
        dropped_ = 0;
    }

    void
    record(Tick ts, TraceKind kind, std::string comp, uint64_t id = 0,
           uint64_t a = 0, uint64_t b = 0)
    {
        if (!enabled_)
            return;
        TraceEvent ev{ts, kind, id, a, b, std::move(comp)};
        if (buf_.size() < capacity_) {
            buf_.push_back(std::move(ev));
        } else {
            buf_[head_] = std::move(ev);
            head_ = (head_ + 1) % capacity_;
            dropped_++;
        }
    }

    size_t size() const { return buf_.size(); }
    uint64_t dropped() const { return dropped_; }

    /** Events oldest-first. */
    std::vector<TraceEvent> events() const;

    /** One JSON object per line, as a string. */
    std::string jsonl() const;

    /** One JSON object per line. */
    void dumpJsonl(std::FILE *f) const;

    /** chrome://tracing "trace events" array (instant events). */
    void dumpChromeTrace(std::FILE *f) const;

  private:
    size_t capacity_;
    std::vector<TraceEvent> buf_;
    size_t head_ = 0; ///< oldest element once the ring wrapped
    uint64_t dropped_ = 0;
    bool enabled_ = false;
};

} // namespace anic::sim

#endif // ANIC_SIM_TRACE_HH
