/**
 * @file
 * DEPRECATED forwarding header. The instruments moved to
 * sim/registry.hh as part of the unified stats registry:
 *
 *   SampleStat    -> sim::Distribution
 *   IntervalMeter -> sim::RateMeter
 *
 * The aliases below keep out-of-tree includes compiling for one
 * release; this header will be removed in the next PR. Include
 * sim/registry.hh directly in new code.
 */

#ifndef ANIC_SIM_STATS_HH
#define ANIC_SIM_STATS_HH

#include "sim/registry.hh"

namespace anic::sim {

using SampleStat = Distribution;
using IntervalMeter = RateMeter;

} // namespace anic::sim

#endif // ANIC_SIM_STATS_HH
