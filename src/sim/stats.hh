/**
 * @file
 * Lightweight statistics: counters, sample distributions, and interval
 * rate meters used by benches to report throughput and CPU usage.
 */

#ifndef ANIC_SIM_STATS_HH
#define ANIC_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace anic::sim {

/**
 * Collects scalar samples and reports mean / stddev / percentiles.
 * Keeps all samples; fine for the sample counts benches produce.
 */
class SampleStat
{
  public:
    void add(double v) { samples_.push_back(v); }
    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double
    mean() const
    {
        if (samples_.empty())
            return 0.0;
        double sum = 0.0;
        for (double v : samples_)
            sum += v;
        return sum / static_cast<double>(samples_.size());
    }

    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double m = mean();
        double acc = 0.0;
        for (double v : samples_)
            acc += (v - m) * (v - m);
        return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
    }

    double min() const;
    double max() const;

    /** p in [0,100]; nearest-rank percentile. */
    double percentile(double p) const;

    /**
     * Trimmed mean as used by the paper's methodology: drop the single
     * minimum and maximum sample, average the rest.
     */
    double trimmedMean() const;

    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

/**
 * Measures a rate (e.g. bytes delivered) over a measurement window so
 * warm-up traffic can be excluded.
 */
class IntervalMeter
{
  public:
    /** Starts (or restarts) the measurement window at time @p now. */
    void
    start(Tick now)
    {
        startTick_ = now;
        value_ = 0;
        running_ = true;
    }

    /** Accumulates @p amount if the window is open. */
    void
    add(uint64_t amount)
    {
        if (running_)
            value_ += amount;
    }

    /** Closes the window at @p now. */
    void
    stop(Tick now)
    {
        endTick_ = now;
        running_ = false;
    }

    uint64_t total() const { return value_; }
    Tick elapsed() const { return endTick_ - startTick_; }

    /** Rate in units/second over the closed window. */
    double
    perSecond() const
    {
        Tick e = elapsed();
        if (e == 0)
            return 0.0;
        return static_cast<double>(value_) / ticksToSeconds(e);
    }

    /** Convenience: bits/sec in Gbps when value is bytes. */
    double gbps() const { return perSecond() * 8.0 / 1e9; }

  private:
    Tick startTick_ = 0;
    Tick endTick_ = 0;
    uint64_t value_ = 0;
    bool running_ = false;
};

} // namespace anic::sim

#endif // ANIC_SIM_STATS_HH
