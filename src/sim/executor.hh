/**
 * @file
 * JobRunner: a thread pool that shards independent simulation runs
 * (bench sweep points, fuzz seeds, ablation variants) across N
 * workers with deterministic, submission-order result aggregation.
 *
 * Each submitted job executes against its own RunContext — private
 * StatsRegistry, private TraceRing, buffered output — so runs share
 * no mutable state. Completed outputs are handed to the sink strictly
 * in submission order regardless of which worker finishes first,
 * which makes `--jobs 8` output byte-identical to `--jobs 1`.
 *
 * Per-run wall-clock and the aggregate speedup (sum of run times /
 * elapsed time) are collected in Stats so sweeps can record their
 * perf trajectory.
 */

#ifndef ANIC_SIM_EXECUTOR_HH
#define ANIC_SIM_EXECUTOR_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/run_context.hh"

namespace anic::sim {

class JobRunner
{
  public:
    /** One independent simulation run. All output must go through
     *  the RunContext; the job must not touch stdout/files itself. */
    using Job = std::function<void(RunContext &)>;

    /** Receives completed run outputs, in submission order, one run
     *  at a time (never called concurrently). */
    using Sink = std::function<void(const RunContext::Output &)>;

    struct Config
    {
        /** Worker threads; values < 1 are clamped to 1. */
        int jobs = 1;
        /** Per-run configuration template (window scale, tracing). */
        RunConfig run;
        /** Output sink; null writes each run's text to stdout. */
        Sink sink;
    };

    struct RunTiming
    {
        std::string label;
        double wallSeconds = 0.0;
    };

    struct Stats
    {
        int jobs = 1;
        uint64_t runs = 0;     ///< jobs executed (excludes canceled)
        uint64_t canceled = 0;
        double wallSeconds = 0.0; ///< first submit -> drain, elapsed
        double cpuSeconds = 0.0;  ///< sum of per-run wall clocks
        std::vector<RunTiming> perRun; ///< submission order

        /** Aggregate parallel speedup (1.0 when serial). */
        double
        speedup() const
        {
            return wallSeconds > 0.0 ? cpuSeconds / wallSeconds : 0.0;
        }
    };

    explicit JobRunner(Config cfg);
    ~JobRunner();

    JobRunner(const JobRunner &) = delete;
    JobRunner &operator=(const JobRunner &) = delete;

    int jobs() const { return jobs_; }

    /** Enqueues a run. @p label names it in per-run timing (and in
     *  failure reports of callers that keep their own result slots). */
    void submit(std::string label, Job job);

    /** Drops every job not yet started (their slots flush empty).
     *  Used for early exit once a sweep has found what it wanted. */
    void cancelPending();

    /** Blocks until every non-canceled job has executed and every
     *  output has been flushed to the sink, then records stats.
     *  Idempotent; also called by the destructor. */
    void drain();

    /** Valid after drain(). */
    const Stats &stats() const { return stats_; }

  private:
    struct Slot
    {
        std::string label;
        bool done = false;
        bool canceled = false;
        RunContext::Output out;
        double wallSeconds = 0.0;
    };

    struct Pending
    {
        size_t index;
        Job job;
    };

    void workerLoop();
    void flushLocked(std::unique_lock<std::mutex> &lk);
    void defaultSink(const RunContext::Output &out);

    Config cfg_;
    int jobs_ = 1;

    std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::deque<Pending> queue_;
    std::deque<Slot> slots_;
    size_t flushNext_ = 0; ///< next submission index to hand the sink
    size_t inFlight_ = 0;  ///< jobs currently executing
    bool flushing_ = false;
    bool stop_ = false;
    bool drained_ = false;
    bool clockStarted_ = false;
    std::chrono::steady_clock::time_point start_{};
    Stats stats_;

    std::vector<std::thread> workers_;
};

} // namespace anic::sim

#endif // ANIC_SIM_EXECUTOR_HH
