#include "sim/executor.hh"

#include <cstdio>

#include "util/panic.hh"

namespace anic::sim {

JobRunner::JobRunner(Config cfg) : cfg_(std::move(cfg))
{
    jobs_ = cfg_.jobs < 1 ? 1 : cfg_.jobs;
    stats_.jobs = jobs_;
    workers_.reserve(static_cast<size_t>(jobs_));
    for (int i = 0; i < jobs_; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

JobRunner::~JobRunner()
{
    drain();
}

void
JobRunner::submit(std::string label, Job job)
{
    std::unique_lock<std::mutex> lk(mu_);
    ANIC_ASSERT(!drained_, "submit after drain");
    if (!clockStarted_) {
        clockStarted_ = true;
        start_ = std::chrono::steady_clock::now();
    }
    size_t index = slots_.size();
    slots_.push_back(Slot{std::move(label), false, false, {}, 0.0});
    queue_.push_back(Pending{index, std::move(job)});
    lk.unlock();
    workCv_.notify_one();
}

void
JobRunner::cancelPending()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (Pending &p : queue_) {
        Slot &s = slots_[p.index];
        s.done = true;
        s.canceled = true;
        stats_.canceled++;
    }
    queue_.clear();
    flushLocked(lk);
    doneCv_.notify_all();
}

void
JobRunner::drain()
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [this] {
            return queue_.empty() && inFlight_ == 0 &&
                   flushNext_ == slots_.size() && !flushing_;
        });
        if (!drained_) {
            drained_ = true;
            if (clockStarted_) {
                stats_.wallSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
            }
            for (const Slot &s : slots_) {
                if (s.canceled)
                    continue;
                stats_.runs++;
                stats_.cpuSeconds += s.wallSeconds;
                stats_.perRun.push_back(RunTiming{s.label, s.wallSeconds});
            }
        }
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

void
JobRunner::workerLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            p = std::move(queue_.front());
            queue_.pop_front();
            inFlight_++;
        }

        RunContext ctx(cfg_.run);
        ctx.clockStart();
        p.job(ctx);
        ctx.clockStop();

        std::unique_lock<std::mutex> lk(mu_);
        Slot &s = slots_[p.index];
        s.out = ctx.takeOutput();
        s.wallSeconds = ctx.wallSeconds();
        s.done = true;
        inFlight_--;
        flushLocked(lk);
        lk.unlock();
        doneCv_.notify_all();
    }
}

void
JobRunner::flushLocked(std::unique_lock<std::mutex> &lk)
{
    // Single flusher at a time: whoever completes the next-in-order
    // slot walks the done prefix, handing outputs to the sink outside
    // the lock (the sink does file I/O) but still strictly in order.
    if (flushing_)
        return;
    flushing_ = true;
    while (flushNext_ < slots_.size() && slots_[flushNext_].done) {
        Slot &s = slots_[flushNext_];
        RunContext::Output out = std::move(s.out);
        s.out = {};
        flushNext_++;
        bool emit = !s.canceled;
        lk.unlock();
        if (emit) {
            if (cfg_.sink)
                cfg_.sink(out);
            else
                defaultSink(out);
        }
        lk.lock();
    }
    flushing_ = false;
}

void
JobRunner::defaultSink(const RunContext::Output &out)
{
    if (!out.text.empty()) {
        std::fwrite(out.text.data(), 1, out.text.size(), stdout);
        std::fflush(stdout);
    }
}

} // namespace anic::sim
