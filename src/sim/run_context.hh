/**
 * @file
 * Per-run execution context: the ownership boundary that makes
 * independent simulation runs (bench sweep points, fuzz seeds,
 * ablation variants) safe to execute concurrently.
 *
 * A RunContext owns everything that used to be process-global per
 * run: the stats registry the run's components publish into, the
 * event-trace ring, the measurement-window scaling (quick mode), and
 * all of the run's textual output. Nothing a run produces touches
 * stdout or the filesystem directly — it accumulates in the context's
 * Output and is flushed by the JobRunner in submission order, which
 * is what makes `--jobs N` byte-identical to a serial sweep.
 *
 * Ownership rules (DESIGN.md §12): a simulation world must take its
 * StatsRegistry and TraceRing from the RunContext it runs under; the
 * thread-local global() fallbacks exist only for ad-hoc single-run
 * tools and unit tests.
 */

#ifndef ANIC_SIM_RUN_CONTEXT_HH
#define ANIC_SIM_RUN_CONTEXT_HH

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "sim/registry.hh"
#include "sim/trace.hh"

namespace anic::sim {

/**
 * Static per-run configuration. Replaces the hidden ANIC_QUICK read
 * inside the measurement loop: quick mode is now a field callers can
 * set (fromEnv() derives the historical behavior from the
 * environment once, at the edge).
 */
struct RunConfig
{
    /** Measurement-window scale factor; 1.0 = the full window the
     *  bench asks for, quick mode historically ran 1/4 windows. */
    double windowScale = 1.0;

    /** Arm this run's TraceRing (events are recorded). */
    bool traceEnabled = false;

    /** Capacity of this run's TraceRing. */
    size_t traceCap = TraceRing::kDefaultCapacity;

    /** Historical env-driven defaults: ANIC_QUICK -> windowScale
     *  0.25, ANIC_TRACE / ANIC_TRACE_CAP -> trace knobs. */
    static RunConfig fromEnv();
};

class RunContext
{
  public:
    /** Everything one run produced, flushed as a unit, in order. */
    struct Output
    {
        /** The run's stdout stream (tables, JSON lines, messages). */
        std::string text;
        /** Machine-readable JSON lines only (ANIC_BENCH_JSON sink). */
        std::string jsonLines;
        /** Registry snapshots: (bench name, snapshot line) pairs for
         *  per-run ANIC_SNAPSHOT_DIR files. */
        std::vector<std::pair<std::string, std::string>> snapshots;
        /** JSONL dump of the run's trace ring (ANIC_TRACE_FILE sink);
         *  empty when no dump was requested. */
        std::string traceDump;

        bool
        empty() const
        {
            return text.empty() && jsonLines.empty() && snapshots.empty() &&
                   traceDump.empty();
        }
    };

    explicit RunContext(RunConfig cfg = RunConfig::fromEnv());

    RunContext(const RunContext &) = delete;
    RunContext &operator=(const RunContext &) = delete;

    const RunConfig &config() const { return cfg_; }

    /** The run's private registry; worlds must publish here. */
    StatsRegistry &registry() { return registry_; }

    /** The run's private trace ring; worlds must record here. */
    TraceRing &trace() { return trace_; }

    /**
     * Applies the quick-mode window scale. Never returns 0: a scaled
     * window is clamped to at least one tick so short windows cannot
     * silently degenerate into an empty measurement.
     */
    Tick
    scaleWindow(Tick full) const
    {
        if (full == 0)
            return 0;
        double scaled = static_cast<double>(full) * cfg_.windowScale;
        Tick t = static_cast<Tick>(scaled);
        return t == 0 ? 1 : t;
    }

    // ------------------------------------------------- run output
    /** printf into the run's stdout stream. */
    void print(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    /** Appends one machine-readable JSON line: it appears in the
     *  stdout stream *and* the jsonLines sink, like the historical
     *  jsonRecord() behavior. */
    void json(const std::string &line);

    /** Registers a registry-snapshot line for per-run file output. */
    void
    addSnapshot(std::string bench, std::string line)
    {
        out_.snapshots.emplace_back(std::move(bench), std::move(line));
    }

    /** Requests a JSONL dump of this run's trace ring in the output
     *  (no-op when the ring is disabled or empty). */
    void captureTraceDump();

    /** Moves the accumulated output out (context can keep running). */
    Output
    takeOutput()
    {
        Output o = std::move(out_);
        out_ = Output{};
        return o;
    }

    // -------------------------------------------------- wall clock
    /** Starts the run's wall-clock (called by the JobRunner). */
    void clockStart() { t0_ = std::chrono::steady_clock::now(); }

    /** Stops the clock, accumulating into wallSeconds(). */
    void
    clockStop()
    {
        wall_ += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0_)
                     .count();
    }

    /** Real (not simulated) seconds this run has executed for. */
    double wallSeconds() const { return wall_; }

  private:
    RunConfig cfg_;
    StatsRegistry registry_;
    TraceRing trace_;
    Output out_;
    std::chrono::steady_clock::time_point t0_{};
    double wall_ = 0.0;
};

} // namespace anic::sim

#endif // ANIC_SIM_RUN_CONTEXT_HH
