#include "sim/simulator.hh"

#include <cstdlib>
#include <string_view>

namespace anic::sim {

Simulator::Simulator()
{
    const char *q = std::getenv("ANIC_SIM_QUEUE");
    calendar_ = !(q != nullptr && std::string_view(q) == "heap");
}

void
Simulator::scheduleAt(Tick when, Callback cb)
{
    ANIC_ASSERT(when >= now_, "scheduling into the past: %llu < %llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(now_));
    insert(Event{when, nextSeq_++, std::move(cb)});
}

void
Simulator::insert(Event ev)
{
    size_++;
    if (!calendar_) {
        heap_.push(std::move(ev));
        return;
    }
    if (ev.when < wheelBase_ + kBucketWidth)
        near_.push(std::move(ev));
    else if (ev.when < windowEnd()) {
        buckets_[bucketIndex(ev.when)].push_back(std::move(ev));
        bucketed_++;
    } else
        far_.push(std::move(ev));
}

bool
Simulator::settle()
{
    // Invariants: every event in near_ is < wheelBase_ + kBucketWidth,
    // every bucketed event is in [wheelBase_ + kBucketWidth,
    // windowEnd()), every far event is >= windowEnd(). The three
    // ranges are disjoint, so near_'s top (ordered by (when, seq)) is
    // the global minimum whenever near_ is non-empty.
    while (near_.empty()) {
        if (bucketed_ == 0 && far_.empty())
            return false;
        if (bucketed_ == 0) {
            // Sparse period (timer-only horizon): jump the window
            // straight to the earliest far event instead of stepping
            // bucket by bucket.
            wheelBase_ = (far_.top().when >> kBucketShift) << kBucketShift;
        } else {
            wheelBase_ += kBucketWidth;
        }
        // The bucket that just entered [wheelBase_, wheelBase_ +
        // kBucketWidth) spills into near_; heap order restores the
        // exact (when, seq) sequence within it.
        std::vector<Event> &b = buckets_[bucketIndex(wheelBase_)];
        if (!b.empty()) {
            bucketed_ -= b.size();
            for (Event &ev : b)
                near_.push(std::move(ev));
            b.clear(); // keeps capacity for reuse
        }
        // Far events uncovered by the advancing horizon migrate in.
        while (!far_.empty() && far_.top().when < windowEnd()) {
            Event ev = far_.pop();
            if (ev.when < wheelBase_ + kBucketWidth)
                near_.push(std::move(ev));
            else {
                buckets_[bucketIndex(ev.when)].push_back(std::move(ev));
                bucketed_++;
            }
        }
    }
    return true;
}

void
Simulator::execute(Event ev)
{
    size_--;
    now_ = ev.when;
    executed_++;
    ev.cb();
}

void
Simulator::run()
{
    if (!calendar_) {
        while (!heap_.empty())
            execute(heap_.pop());
        return;
    }
    while (settle())
        execute(near_.pop());
}

void
Simulator::runUntil(Tick until)
{
    if (!calendar_) {
        while (!heap_.empty() && heap_.top().when <= until)
            execute(heap_.pop());
    } else {
        while (settle() && near_.top().when <= until)
            execute(near_.pop());
    }
    if (now_ < until)
        now_ = until;
}

} // namespace anic::sim
