#include "sim/simulator.hh"

namespace anic::sim {

void
Simulator::scheduleAt(Tick when, Callback cb)
{
    ANIC_ASSERT(when >= now_, "scheduling into the past: %llu < %llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(now_));
    queue_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
Simulator::run()
{
    while (!queue_.empty()) {
        // priority_queue::top() returns const&; the callback must be
        // moved out before pop, so copy the event (cheap: one
        // std::function).
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        executed_++;
        ev.cb();
    }
}

void
Simulator::runUntil(Tick until)
{
    while (!queue_.empty() && queue_.top().when <= until) {
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        executed_++;
        ev.cb();
    }
    if (now_ < until)
        now_ = until;
}

} // namespace anic::sim
