/**
 * @file
 * Hierarchical statistics registry: typed instruments addressable by
 * dotted path (e.g. "srv.nic0.pcie.ctxFetchBytes").
 *
 * Instruments are plain value types so components keep them as struct
 * members exactly as before (copies snapshot values, arithmetic works
 * through implicit conversion). A component additionally *links* its
 * member instruments into a StatsRegistry under a stable instance
 * name chosen at construction; a StatsScope is the RAII handle that
 * removes those links when the component dies.
 *
 * Instrument types:
 *  - Counter       monotonically increasing uint64 (packets, bytes)
 *  - Gauge         instantaneous double (cycles, depths)
 *  - Distribution  scalar samples with moments/percentiles
 *  - RateMeter     value accumulated over an explicit measurement
 *                  window
 *
 * The registry renders one nested JSON object from the dotted paths;
 * bench_json.hh wraps that into the shared snapshot schema every
 * bench and example emits.
 */

#ifndef ANIC_SIM_REGISTRY_HH
#define ANIC_SIM_REGISTRY_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/simulator.hh"

namespace anic::sim {

/** Monotonic event/byte counter. Drop-in for a raw uint64_t field. */
class Counter
{
  public:
    constexpr Counter() = default;
    constexpr Counter(uint64_t v) : v_(v) {}

    uint64_t value() const { return v_; }
    void inc(uint64_t n = 1) { v_ += n; }
    void reset() { v_ = 0; }

    Counter &operator+=(uint64_t n) { v_ += n; return *this; }
    Counter &operator++() { ++v_; return *this; }
    uint64_t operator++(int) { return v_++; }
    operator uint64_t() const { return v_; }

  private:
    uint64_t v_ = 0;
};

/** Instantaneous scalar (utilizations, cycle totals, queue depths). */
class Gauge
{
  public:
    constexpr Gauge() = default;
    constexpr Gauge(double v) : v_(v) {}

    double value() const { return v_; }
    void set(double v) { v_ = v; }

    Gauge &operator+=(double d) { v_ += d; return *this; }
    Gauge &operator-=(double d) { v_ -= d; return *this; }
    operator double() const { return v_; }

  private:
    double v_ = 0.0;
};

/**
 * Collects scalar samples and reports mean / stddev / percentiles.
 * Keeps all samples; fine for the sample counts benches produce.
 */
class Distribution
{
  public:
    void add(double v) { samples_.push_back(v); }
    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double
    mean() const
    {
        if (samples_.empty())
            return 0.0;
        double sum = 0.0;
        for (double v : samples_)
            sum += v;
        return sum / static_cast<double>(samples_.size());
    }

    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double m = mean();
        double acc = 0.0;
        for (double v : samples_)
            acc += (v - m) * (v - m);
        return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
    }

    double min() const;
    double max() const;

    /** p in [0,100]; nearest-rank percentile. */
    double percentile(double p) const;

    /**
     * Trimmed mean as used by the paper's methodology: drop the single
     * minimum and maximum sample, average the rest.
     */
    double trimmedMean() const;

    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

/**
 * Measures a rate (e.g. bytes delivered) over a measurement window so
 * warm-up traffic can be excluded.
 */
class RateMeter
{
  public:
    /** Starts (or restarts) the measurement window at time @p now. */
    void
    start(Tick now)
    {
        startTick_ = now;
        endTick_ = 0;
        value_ = 0;
        running_ = true;
        closed_ = false;
    }

    /** Accumulates @p amount if the window is open. */
    void
    add(uint64_t amount)
    {
        if (running_)
            value_ += amount;
    }

    /** Closes the window at @p now. */
    void
    stop(Tick now)
    {
        endTick_ = now;
        running_ = false;
        closed_ = true;
    }

    uint64_t total() const { return value_; }
    bool running() const { return running_; }

    /**
     * Window length. Reading while the window is still open (or never
     * opened) returns 0 rather than the endTick_ - startTick_
     * underflow a naive endTick - startTick would produce.
     */
    Tick
    elapsed() const
    {
        if (!closed_ || endTick_ < startTick_)
            return 0;
        return endTick_ - startTick_;
    }

    /** Rate in units/second over the closed window (0 while open). */
    double
    perSecond() const
    {
        Tick e = elapsed();
        if (e == 0)
            return 0.0;
        return static_cast<double>(value_) / ticksToSeconds(e);
    }

    /** Convenience: bits/sec in Gbps when value is bytes. */
    double gbps() const { return perSecond() * 8.0 / 1e9; }

  private:
    Tick startTick_ = 0;
    Tick endTick_ = 0;
    uint64_t value_ = 0;
    bool running_ = false;
    bool closed_ = false;
};

/** Non-owning view of any instrument, for iteration and JSON. */
using InstrumentRef = std::variant<const Counter *, const Gauge *,
                                   const Distribution *, const RateMeter *>;

/** Appends the instrument's JSON value (number or object) to @p out. */
void appendInstrumentJson(const InstrumentRef &ref, std::string &out);

/**
 * The registry: dotted path -> instrument. Holds non-owning links to
 * component-member instruments (removed by StatsScope on component
 * destruction) and owns get-or-create instruments for ad-hoc use.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Thread-local fallback; components register here unless a
     *  config supplies another registry (worlds running under a
     *  RunContext must use its registry instead). */
    static StatsRegistry &global();

    // ------------------------------------------------------- links
    void link(const std::string &path, const Counter &c) { put(path, &c, {}); }
    void link(const std::string &path, const Gauge &g) { put(path, &g, {}); }
    void link(const std::string &path, const Distribution &d) { put(path, &d, {}); }
    void link(const std::string &path, const RateMeter &r) { put(path, &r, {}); }

    // --------------------------------- owned (get-or-create by path)
    Counter &counter(const std::string &path);
    Gauge &gauge(const std::string &path);
    Distribution &distribution(const std::string &path);
    RateMeter &rate(const std::string &path);

    // ----------------------------------------------------- removal
    void unlink(const std::string &path) { entries_.erase(path); }

    /** Removes @p prefix itself and every entry under "prefix.". */
    void removeSubtree(const std::string &prefix);

    void clear() { entries_.clear(); }

    // ------------------------------------------------------ lookup
    bool contains(const std::string &path) const
    {
        return entries_.find(path) != entries_.end();
    }
    const Counter *findCounter(const std::string &path) const;
    const Gauge *findGauge(const std::string &path) const;
    const Distribution *findDistribution(const std::string &path) const;
    const RateMeter *findRate(const std::string &path) const;

    size_t size() const { return entries_.size(); }

    /** Visits entries in path order. */
    void forEach(
        const std::function<void(const std::string &, const InstrumentRef &)>
            &fn) const;

    // ------------------------------------------------------ naming
    /**
     * Returns @p base if no live scope or entry occupies it, else
     * base2, base3, ... Stable across sequential worlds in one
     * process because scopes free their names on destruction.
     */
    std::string uniqueName(const std::string &base) const;

    void claimPrefix(const std::string &prefix) { claimed_[prefix]++; }
    void
    releasePrefix(const std::string &prefix)
    {
        auto it = claimed_.find(prefix);
        if (it != claimed_.end() && --it->second == 0)
            claimed_.erase(it);
    }

    // -------------------------------------------------------- JSON
    /** Nested JSON object, e.g. {"srv":{"nic0":{"pktsTx":12,...}}}. */
    std::string jsonSnapshot() const;
    void writeJson(std::string &out) const;

  private:
    struct Entry
    {
        InstrumentRef ref;
        std::shared_ptr<void> owned; ///< null for links
    };

    void put(const std::string &path, InstrumentRef ref,
             std::shared_ptr<void> owned);
    template <typename T> T &ownedInstrument(const std::string &path);
    bool subtreeOccupied(const std::string &prefix) const;

    std::map<std::string, Entry> entries_;
    std::map<std::string, int> claimed_; ///< live scope prefixes
};

/**
 * RAII handle a component holds for its registry links: claims the
 * instance-name prefix at construction and removes the subtree on
 * destruction. A default-constructed scope is detached (links are
 * no-ops), which keeps bare component construction in unit tests
 * registry-free when desired.
 */
class StatsScope
{
  public:
    StatsScope() = default;
    StatsScope(StatsRegistry &reg, std::string prefix)
        : reg_(&reg), prefix_(std::move(prefix))
    {
        reg_->claimPrefix(prefix_);
    }

    StatsScope(const StatsScope &) = delete;
    StatsScope &operator=(const StatsScope &) = delete;

    StatsScope(StatsScope &&o) noexcept
        : reg_(o.reg_), prefix_(std::move(o.prefix_))
    {
        o.reg_ = nullptr;
    }

    StatsScope &
    operator=(StatsScope &&o) noexcept
    {
        if (this != &o) {
            detach();
            reg_ = o.reg_;
            prefix_ = std::move(o.prefix_);
            o.reg_ = nullptr;
        }
        return *this;
    }

    ~StatsScope() { detach(); }

    /** Removes everything linked under this scope's prefix. */
    void
    detach()
    {
        if (reg_ == nullptr)
            return;
        reg_->removeSubtree(prefix_);
        reg_->releasePrefix(prefix_);
        reg_ = nullptr;
    }

    bool attached() const { return reg_ != nullptr; }
    StatsRegistry *registry() const { return reg_; }
    const std::string &prefix() const { return prefix_; }

    std::string
    path(const std::string &leaf) const
    {
        return prefix_.empty() ? leaf : prefix_ + "." + leaf;
    }

    template <typename T>
    void
    link(const std::string &leaf, const T &inst)
    {
        if (reg_ != nullptr)
            reg_->link(path(leaf), inst);
    }

    /** Child scope under "prefix.name" (detached if this one is). */
    StatsScope
    child(const std::string &name)
    {
        if (reg_ == nullptr)
            return {};
        return StatsScope(*reg_, path(name));
    }

  private:
    StatsRegistry *reg_ = nullptr;
    std::string prefix_;
};

} // namespace anic::sim

#endif // ANIC_SIM_REGISTRY_HH
