#include "sim/run_context.hh"

#include <cstdarg>
#include <cstdio>

#include "util/env.hh"

namespace anic::sim {

RunConfig
RunConfig::fromEnv()
{
    RunConfig c;
    c.windowScale = util::Env::quick() ? 0.25 : 1.0;
    c.traceEnabled = util::Env::traceEnabled();
    if (util::Env::traceCap() > 0)
        c.traceCap = util::Env::traceCap();
    return c;
}

RunContext::RunContext(RunConfig cfg) : cfg_(cfg), trace_(cfg.traceCap)
{
    if (cfg_.traceEnabled)
        trace_.enable();
}

void
RunContext::print(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n > 0) {
        size_t old = out_.text.size();
        out_.text.resize(old + static_cast<size_t>(n) + 1);
        std::vsnprintf(out_.text.data() + old, static_cast<size_t>(n) + 1,
                       fmt, ap2);
        out_.text.resize(old + static_cast<size_t>(n));
    }
    va_end(ap2);
}

void
RunContext::json(const std::string &line)
{
    out_.text += line;
    out_.text += '\n';
    out_.jsonLines += line;
    out_.jsonLines += '\n';
}

void
RunContext::captureTraceDump()
{
    if (!trace_.enabled() || trace_.size() == 0)
        return;
    out_.traceDump = trace_.jsonl();
}

} // namespace anic::sim
