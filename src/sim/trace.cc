#include "sim/trace.hh"

#include <cstdlib>

namespace anic::sim {

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::FsmTransition:
        return "fsm_transition";
      case TraceKind::ResyncRequest:
        return "resync_request";
      case TraceKind::ResyncConfirmed:
        return "resync_confirmed";
      case TraceKind::ResyncRefuted:
        return "resync_refuted";
      case TraceKind::CtxEvict:
        return "ctx_evict";
      case TraceKind::CtxFetch:
        return "ctx_fetch";
      case TraceKind::Retransmit:
        return "retransmit";
      case TraceKind::TxResync:
        return "tx_resync";
      case TraceKind::Custom:
        return "custom";
    }
    return "?";
}

TraceRing &
TraceRing::global()
{
    static TraceRing *ring = [] {
        size_t cap = kDefaultCapacity;
        if (const char *c = std::getenv("ANIC_TRACE_CAP")) {
            unsigned long v = std::strtoul(c, nullptr, 10);
            if (v > 0)
                cap = v;
        }
        auto *r = new TraceRing(cap);
        if (const char *e = std::getenv("ANIC_TRACE")) {
            if (e[0] != '\0' && e[0] != '0')
                r->enable();
        }
        return r;
    }();
    return *ring;
}

std::vector<TraceEvent>
TraceRing::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    // Once wrapped, head_ is the oldest slot.
    for (size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

void
TraceRing::dumpJsonl(std::FILE *f) const
{
    for (const TraceEvent &ev : events()) {
        std::fprintf(f,
                     "{\"ts_ns\":%llu,\"kind\":\"%s\",\"comp\":\"%s\","
                     "\"id\":%llu,\"a\":%llu,\"b\":%llu}\n",
                     (unsigned long long)(ev.ts / kNanosecond),
                     traceKindName(ev.kind), ev.comp.c_str(),
                     (unsigned long long)ev.id, (unsigned long long)ev.a,
                     (unsigned long long)ev.b);
    }
}

void
TraceRing::dumpChromeTrace(std::FILE *f) const
{
    std::fprintf(f, "[");
    bool first = true;
    for (const TraceEvent &ev : events()) {
        // chrome://tracing wants microsecond timestamps.
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\","
                     "\"ts\":%.3f,\"pid\":1,\"tid\":1,"
                     "\"args\":{\"comp\":\"%s\",\"id\":%llu,"
                     "\"a\":%llu,\"b\":%llu}}",
                     first ? "" : ",\n", traceKindName(ev.kind),
                     static_cast<double>(ev.ts) / kMicrosecond,
                     ev.comp.c_str(), (unsigned long long)ev.id,
                     (unsigned long long)ev.a, (unsigned long long)ev.b);
        first = false;
    }
    std::fprintf(f, "]\n");
}

} // namespace anic::sim
