#include "sim/trace.hh"

#include "util/env.hh"
#include "util/panic.hh"

namespace anic::sim {

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::FsmTransition:
        return "fsm_transition";
      case TraceKind::ResyncRequest:
        return "resync_request";
      case TraceKind::ResyncConfirmed:
        return "resync_confirmed";
      case TraceKind::ResyncRefuted:
        return "resync_refuted";
      case TraceKind::CtxEvict:
        return "ctx_evict";
      case TraceKind::CtxFetch:
        return "ctx_fetch";
      case TraceKind::Retransmit:
        return "retransmit";
      case TraceKind::TxResync:
        return "tx_resync";
      case TraceKind::RxQueueSelect:
        return "rx_queue_select";
      case TraceKind::IrqFire:
        return "irq_fire";
      case TraceKind::IrqCoalesce:
        return "irq_coalesce";
      case TraceKind::Custom:
        return "custom";
    }
    return "?";
}

TraceRing &
TraceRing::global()
{
    static thread_local TraceRing *ring = [] {
        size_t cap = kDefaultCapacity;
        if (util::Env::traceCap() > 0)
            cap = util::Env::traceCap();
        auto *r = new TraceRing(cap);
        if (util::Env::traceEnabled())
            r->enable();
        return r;
    }();
    return *ring;
}

std::vector<TraceEvent>
TraceRing::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    // Once wrapped, head_ is the oldest slot.
    for (size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

std::string
TraceRing::jsonl() const
{
    std::string out;
    for (const TraceEvent &ev : events()) {
        out += strprintf(
            "{\"ts_ns\":%llu,\"kind\":\"%s\",\"comp\":\"%s\","
            "\"id\":%llu,\"a\":%llu,\"b\":%llu}\n",
            (unsigned long long)(ev.ts / kNanosecond),
            traceKindName(ev.kind), ev.comp.c_str(),
            (unsigned long long)ev.id, (unsigned long long)ev.a,
            (unsigned long long)ev.b);
    }
    return out;
}

void
TraceRing::dumpJsonl(std::FILE *f) const
{
    std::string out = jsonl();
    std::fwrite(out.data(), 1, out.size(), f);
}

void
TraceRing::dumpChromeTrace(std::FILE *f) const
{
    std::fprintf(f, "[");
    bool first = true;
    for (const TraceEvent &ev : events()) {
        // chrome://tracing wants microsecond timestamps.
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\","
                     "\"ts\":%.3f,\"pid\":1,\"tid\":1,"
                     "\"args\":{\"comp\":\"%s\",\"id\":%llu,"
                     "\"a\":%llu,\"b\":%llu}}",
                     first ? "" : ",\n", traceKindName(ev.kind),
                     static_cast<double>(ev.ts) / kMicrosecond,
                     ev.comp.c_str(), (unsigned long long)ev.id,
                     (unsigned long long)ev.a, (unsigned long long)ev.b);
        first = false;
    }
    std::fprintf(f, "]\n");
}

} // namespace anic::sim
