/**
 * @file
 * Discrete-event simulation core.
 *
 * Time is kept in integer picoseconds so that a single byte time at
 * 100 Gbps (80 ps) is exactly representable; uint64_t picoseconds
 * overflow only after ~213 days of simulated time.
 */

#ifndef ANIC_SIM_SIMULATOR_HH
#define ANIC_SIM_SIMULATOR_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/inline_function.hh"
#include "util/panic.hh"

namespace anic::sim {

/** Simulated time in picoseconds. */
using Tick = uint64_t;

constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Converts seconds (double) to ticks; convenience for configs. */
inline Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond));
}

/** Converts ticks to seconds (double); convenience for reporting. */
inline double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/**
 * The event-driven simulator: a time-ordered queue of callbacks.
 *
 * Events scheduled for the same tick run in scheduling order (a
 * monotonic sequence number breaks ties), which keeps runs
 * deterministic. The (when, seq) total order is identical in both
 * queue implementations below, so every run is byte-identical no
 * matter which one executes it.
 *
 * Two queue implementations are compiled in:
 *
 *  - calendar (default): a two-tier calendar queue. A wheel of
 *    kBucketCount unsorted buckets, each kBucketWidth ticks wide,
 *    covers the near future (~67 us at the default geometry: enough
 *    for propagation delays, serialization times, NIC latencies and
 *    core work); events beyond the wheel horizon (RTOs, delayed acks,
 *    measurement windows) sit in a small min-heap and migrate into
 *    buckets as the window advances. Events inside the current bucket
 *    are kept in a min-heap ("near") so extraction stays exactly
 *    ordered. Insert and extract are O(1) amortized instead of the
 *    O(log n) of one big heap whose n is dominated by far-future
 *    timers.
 *
 *  - heap: the seed implementation, one binary heap ordered by
 *    (when, seq). Selected with ANIC_SIM_QUEUE=heap; kept as the
 *    reference oracle for byte-identity tests.
 *
 * Callbacks are InlineFunction<kCallbackBytes>: captures never heap
 * allocate, and capture sets that would are rejected at compile time.
 */
class Simulator
{
  public:
    /** Inline capture budget for scheduled callbacks (and, by
     *  convention, core work items): fits four pointers plus slack,
     *  which covers every capture set in the tree. */
    static constexpr size_t kCallbackBytes = 64;

    using Callback = InlineFunction<kCallbackBytes>;

    Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules @p cb to run @p delay ticks from now. */
    void schedule(Tick delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

    /** Schedules @p cb at absolute time @p when (>= now). */
    void scheduleAt(Tick when, Callback cb);

    /** Runs events until the queue drains. */
    void run();

    /** Runs events with timestamp <= @p until, then sets now to @p until. */
    void runUntil(Tick until);

    /** Runs for @p delta more ticks. */
    void runFor(Tick delta) { runUntil(now_ + delta); }

    /** Number of events executed so far. */
    uint64_t eventsExecuted() const { return executed_; }

    /** True if no events remain. */
    bool idle() const { return size_ == 0; }

    /** True when the calendar queue is active (vs the legacy heap). */
    bool usingCalendarQueue() const { return calendar_; }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    /** a runs after b in the (when, seq) total order. */
    static bool
    later(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /** Min-heap of events supporting move-only callbacks. */
    class EventHeap
    {
      public:
        bool empty() const { return v_.empty(); }

        void
        push(Event ev)
        {
            v_.push_back(std::move(ev));
            std::push_heap(v_.begin(), v_.end(), later);
        }

        Event
        pop()
        {
            std::pop_heap(v_.begin(), v_.end(), later);
            Event ev = std::move(v_.back());
            v_.pop_back();
            return ev;
        }

        const Event &top() const { return v_.front(); }

      private:
        std::vector<Event> v_;
    };

    // Wheel geometry: 1024 buckets of 2^16 ps (~65.5 ns) give a
    // ~67 us horizon that comfortably spans every data-path latency
    // while RTO/ack timers stay in the far heap.
    static constexpr int kBucketShift = 16;
    static constexpr Tick kBucketWidth = Tick(1) << kBucketShift;
    static constexpr size_t kBucketCount = 1024;

    size_t bucketIndex(Tick when) const
    {
        return static_cast<size_t>(when >> kBucketShift) & (kBucketCount - 1);
    }

    Tick windowEnd() const { return wheelBase_ + kBucketCount * kBucketWidth; }

    void insert(Event ev);

    /** Moves events around until near_ holds the global minimum (or
     *  returns false when the queue is empty). Pure reorganization:
     *  never executes anything. */
    bool settle();

    void execute(Event ev);

    bool calendar_;
    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
    size_t size_ = 0;

    // --- calendar queue state
    Tick wheelBase_ = 0; ///< multiple of kBucketWidth
    size_t bucketed_ = 0; ///< events currently in buckets_
    EventHeap near_;      ///< events with when < wheelBase_ + kBucketWidth
    EventHeap far_;       ///< events with when >= windowEnd()
    std::array<std::vector<Event>, kBucketCount> buckets_;

    // --- legacy single-heap state (ANIC_SIM_QUEUE=heap)
    EventHeap heap_;
};

} // namespace anic::sim

#endif // ANIC_SIM_SIMULATOR_HH
