/**
 * @file
 * Discrete-event simulation core.
 *
 * Time is kept in integer picoseconds so that a single byte time at
 * 100 Gbps (80 ps) is exactly representable; uint64_t picoseconds
 * overflow only after ~213 days of simulated time.
 */

#ifndef ANIC_SIM_SIMULATOR_HH
#define ANIC_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/panic.hh"

namespace anic::sim {

/** Simulated time in picoseconds. */
using Tick = uint64_t;

constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Converts seconds (double) to ticks; convenience for configs. */
inline Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond));
}

/** Converts ticks to seconds (double); convenience for reporting. */
inline double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/**
 * The event-driven simulator: a time-ordered queue of callbacks.
 *
 * Events scheduled for the same tick run in scheduling order (a
 * monotonic sequence number breaks ties), which keeps runs
 * deterministic.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules @p cb to run @p delay ticks from now. */
    void schedule(Tick delay, Callback cb) { scheduleAt(now_ + delay, std::move(cb)); }

    /** Schedules @p cb at absolute time @p when (>= now). */
    void scheduleAt(Tick when, Callback cb);

    /** Runs events until the queue drains. */
    void run();

    /** Runs events with timestamp <= @p until, then sets now to @p until. */
    void runUntil(Tick until);

    /** Runs for @p delta more ticks. */
    void runFor(Tick delta) { runUntil(now_ + delta); }

    /** Number of events executed so far. */
    uint64_t eventsExecuted() const { return executed_; }

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace anic::sim

#endif // ANIC_SIM_SIMULATOR_HH
