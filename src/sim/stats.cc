#include "sim/stats.hh"

#include "util/panic.hh"

namespace anic::sim {

double
SampleStat::min() const
{
    ANIC_ASSERT(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStat::max() const
{
    ANIC_ASSERT(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleStat::percentile(double p) const
{
    ANIC_ASSERT(!samples_.empty());
    ANIC_ASSERT(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0)
        return sorted.front();
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

double
SampleStat::trimmedMean() const
{
    if (samples_.size() <= 2)
        return mean();
    double lo = min();
    double hi = max();
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return (sum - lo - hi) / static_cast<double>(samples_.size() - 2);
}

} // namespace anic::sim
