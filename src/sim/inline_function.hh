/**
 * @file
 * Fixed-capacity, move-only callable for the simulator hot path.
 *
 * std::function heap-allocates whenever a capture set exceeds its
 * implementation-defined small-buffer (16 bytes in libstdc++), which
 * makes every scheduled event and every core work item a malloc/free
 * pair at high packet rates. InlineFunction<N> stores the callable
 * inline, always: a capture set larger than N bytes is a compile-time
 * error, not a silent heap fallback, so the zero-allocation property
 * is enforced where the lambda is written.
 *
 * Trivially-copyable callables (the common case: a few pointers and
 * integers) move by memcpy with no per-type code at all; everything
 * else goes through generated relocate/destroy thunks.
 */

#ifndef ANIC_SIM_INLINE_FUNCTION_HH
#define ANIC_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace anic::sim {

template <size_t N>
class InlineFunction
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= N,
                      "capture set exceeds the InlineFunction inline buffer; "
                      "shrink the lambda captures (no heap fallback exists)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callable");
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        ops_ = &opsFor<Fn>;
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    void
    reset()
    {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-constructs dst from src and destroys src; null means
         *  "memcpy the buffer" (trivially relocatable callable). */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static void
    invokeFn(void *b)
    {
        (*static_cast<Fn *>(b))();
    }

    template <typename Fn>
    static void
    relocateFn(void *dst, void *src)
    {
        ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
        static_cast<Fn *>(src)->~Fn();
    }

    template <typename Fn>
    static void
    destroyFn(void *b)
    {
        static_cast<Fn *>(b)->~Fn();
    }

    template <typename Fn>
    static constexpr bool kTrivialRelocate =
        std::is_trivially_copyable_v<Fn> &&
        std::is_trivially_destructible_v<Fn>;

    template <typename Fn>
    static inline const Ops opsFor{
        &invokeFn<Fn>,
        kTrivialRelocate<Fn> ? nullptr : &relocateFn<Fn>,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroyFn<Fn>};

    void
    moveFrom(InlineFunction &o)
    {
        ops_ = o.ops_;
        if (ops_ != nullptr) {
            if (ops_->relocate != nullptr)
                ops_->relocate(buf_, o.buf_);
            else
                std::memcpy(buf_, o.buf_, N);
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[N];
    const Ops *ops_ = nullptr;
};

} // namespace anic::sim

#endif // ANIC_SIM_INLINE_FUNCTION_HH
