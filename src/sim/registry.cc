#include "sim/registry.hh"

#include <cassert>
#include <cstdio>

namespace anic::sim {

double
Distribution::min() const
{
    assert(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Distribution::max() const
{
    assert(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Distribution::percentile(double p) const
{
    assert(!samples_.empty());
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    // Nearest-rank: smallest value with at least p% of samples <= it.
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

double
Distribution::trimmedMean() const
{
    if (samples_.size() <= 2)
        return mean();
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    sum -= min();
    sum -= max();
    return sum / static_cast<double>(samples_.size() - 2);
}

namespace {

void
appendNumber(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
}

void
appendNumber(std::string &out, uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += buf;
}

} // namespace

void
appendInstrumentJson(const InstrumentRef &ref, std::string &out)
{
    std::visit(
        [&out](auto *inst) {
            using T = std::decay_t<std::remove_pointer_t<decltype(inst)>>;
            if constexpr (std::is_same_v<T, Counter>) {
                appendNumber(out, inst->value());
            } else if constexpr (std::is_same_v<T, Gauge>) {
                appendNumber(out, inst->value());
            } else if constexpr (std::is_same_v<T, Distribution>) {
                out += "{\"count\":";
                appendNumber(out, (uint64_t)inst->count());
                if (!inst->empty()) {
                    out += ",\"mean\":";
                    appendNumber(out, inst->mean());
                    out += ",\"min\":";
                    appendNumber(out, inst->min());
                    out += ",\"max\":";
                    appendNumber(out, inst->max());
                    out += ",\"p50\":";
                    appendNumber(out, inst->percentile(50));
                    out += ",\"p90\":";
                    appendNumber(out, inst->percentile(90));
                    out += ",\"p99\":";
                    appendNumber(out, inst->percentile(99));
                }
                out += "}";
            } else {
                out += "{\"total\":";
                appendNumber(out, inst->total());
                out += ",\"elapsedNs\":";
                appendNumber(out, (uint64_t)(inst->elapsed() / kNanosecond));
                out += ",\"perSec\":";
                appendNumber(out, inst->perSecond());
                out += "}";
            }
        },
        ref);
}

StatsRegistry &
StatsRegistry::global()
{
    // Thread-local: each JobRunner worker that falls through to the
    // fallback registry gets its own (runs should inject their
    // RunContext's registry instead — see DESIGN.md §12).
    static thread_local StatsRegistry reg;
    return reg;
}

void
StatsRegistry::put(const std::string &path, InstrumentRef ref,
                   std::shared_ptr<void> owned)
{
    entries_[path] = Entry{ref, std::move(owned)};
}

template <typename T>
T &
StatsRegistry::ownedInstrument(const std::string &path)
{
    auto it = entries_.find(path);
    if (it != entries_.end()) {
        if (auto *p = std::get_if<const T *>(&it->second.ref)) {
            // const_cast is safe: owned instruments are created
            // non-const below; linked ones belong to the component
            // and must be mutated through the component.
            if (it->second.owned)
                return *const_cast<T *>(*p);
        }
    }
    auto inst = std::make_shared<T>();
    // Take the raw pointer before the call: argument evaluation order
    // is unspecified, so inst.get() inside the argument list could
    // run after std::move(inst) empties it.
    T *raw = inst.get();
    put(path, InstrumentRef{static_cast<const T *>(raw)}, std::move(inst));
    return *raw;
}

Counter &
StatsRegistry::counter(const std::string &path)
{
    return ownedInstrument<Counter>(path);
}

Gauge &
StatsRegistry::gauge(const std::string &path)
{
    return ownedInstrument<Gauge>(path);
}

Distribution &
StatsRegistry::distribution(const std::string &path)
{
    return ownedInstrument<Distribution>(path);
}

RateMeter &
StatsRegistry::rate(const std::string &path)
{
    return ownedInstrument<RateMeter>(path);
}

void
StatsRegistry::removeSubtree(const std::string &prefix)
{
    auto it = entries_.lower_bound(prefix);
    while (it != entries_.end()) {
        const std::string &key = it->first;
        bool inside = key == prefix ||
                      (key.size() > prefix.size() &&
                       key.compare(0, prefix.size(), prefix) == 0 &&
                       key[prefix.size()] == '.');
        if (!inside) {
            // map is sorted; once past "prefix." + anything, stop.
            if (key.compare(0, prefix.size(), prefix) != 0)
                break;
            ++it;
            continue;
        }
        it = entries_.erase(it);
    }
}

const Counter *
StatsRegistry::findCounter(const std::string &path) const
{
    auto it = entries_.find(path);
    if (it == entries_.end())
        return nullptr;
    auto *p = std::get_if<const Counter *>(&it->second.ref);
    return p ? *p : nullptr;
}

const Gauge *
StatsRegistry::findGauge(const std::string &path) const
{
    auto it = entries_.find(path);
    if (it == entries_.end())
        return nullptr;
    auto *p = std::get_if<const Gauge *>(&it->second.ref);
    return p ? *p : nullptr;
}

const Distribution *
StatsRegistry::findDistribution(const std::string &path) const
{
    auto it = entries_.find(path);
    if (it == entries_.end())
        return nullptr;
    auto *p = std::get_if<const Distribution *>(&it->second.ref);
    return p ? *p : nullptr;
}

const RateMeter *
StatsRegistry::findRate(const std::string &path) const
{
    auto it = entries_.find(path);
    if (it == entries_.end())
        return nullptr;
    auto *p = std::get_if<const RateMeter *>(&it->second.ref);
    return p ? *p : nullptr;
}

void
StatsRegistry::forEach(
    const std::function<void(const std::string &, const InstrumentRef &)> &fn)
    const
{
    for (const auto &[path, entry] : entries_)
        fn(path, entry.ref);
}

bool
StatsRegistry::subtreeOccupied(const std::string &prefix) const
{
    if (claimed_.find(prefix) != claimed_.end())
        return true;
    auto it = entries_.lower_bound(prefix);
    if (it == entries_.end())
        return false;
    const std::string &key = it->first;
    return key == prefix ||
           (key.size() > prefix.size() &&
            key.compare(0, prefix.size(), prefix) == 0 &&
            key[prefix.size()] == '.');
}

std::string
StatsRegistry::uniqueName(const std::string &base) const
{
    if (!subtreeOccupied(base))
        return base;
    for (int i = 2;; ++i) {
        std::string cand = base + std::to_string(i);
        if (!subtreeOccupied(cand))
            return cand;
    }
}

namespace {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> segs;
    size_t start = 0;
    while (true) {
        size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(path.substr(start));
            break;
        }
        segs.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
    return segs;
}

} // namespace

void
StatsRegistry::writeJson(std::string &out) const
{
    // entries_ is path-sorted, so the nested object can be emitted in
    // one pass by tracking the open segment stack.
    out += "{";
    std::vector<std::string> open;
    bool first = true;
    for (const auto &[path, entry] : entries_) {
        std::vector<std::string> segs = splitPath(path);
        // leaf name is the last segment; parents are the rest
        size_t common = 0;
        while (common < open.size() && common + 1 < segs.size() &&
               open[common] == segs[common])
            ++common;
        while (open.size() > common) {
            out += "}";
            open.pop_back();
            first = false; // the group just closed is a prior entry
        }
        for (size_t i = common; i + 1 < segs.size(); ++i) {
            if (!first)
                out += ",";
            out += "\"" + segs[i] + "\":{";
            open.push_back(segs[i]);
            first = true;
        }
        if (!first)
            out += ",";
        out += "\"" + segs.back() + "\":";
        appendInstrumentJson(entry.ref, out);
        first = false;
    }
    while (!open.empty()) {
        out += "}";
        open.pop_back();
    }
    out += "}";
}

std::string
StatsRegistry::jsonSnapshot() const
{
    std::string out;
    writeJson(out);
    return out;
}

} // namespace anic::sim
