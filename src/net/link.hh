/**
 * @file
 * Point-to-point link with netem-style impairments: loss, reordering
 * (extra delay for selected packets), and duplication. Serialization
 * (line rate) is modeled by the NICs; the link adds propagation delay
 * and impairments only.
 *
 * Deliveries landing on the same tick for the same port are coalesced
 * into one scheduled event that drains the whole batch in send order,
 * so a burst costs one queue operation instead of one per packet.
 */

#ifndef ANIC_NET_LINK_HH
#define ANIC_NET_LINK_HH

#include <functional>
#include <vector>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "sim/simulator.hh"
#include "util/rand.hh"

namespace anic::net {

/** One direction's impairment knobs. */
struct Impairments
{
    double lossRate = 0.0;      ///< probability a packet is dropped
    double reorderRate = 0.0;   ///< probability a packet is delayed extra
    double duplicateRate = 0.0; ///< probability a packet is duplicated
    /** Probability a packet's TCP payload is bit-flipped in flight.
     *  IP/TCP headers stay valid (the stack still delivers the bytes)
     *  so corruption surfaces as L5 integrity failures: TLS auth-tag
     *  mismatches and NVMe-TCP data-digest (CRC) mismatches. Packets
     *  without payload are never corrupted. */
    double corruptRate = 0.0;
    sim::Tick reorderExtraDelay = 20 * sim::kMicrosecond;
    /** Probability an ECT packet gets a CE mark (random RED-style
     *  marking; non-ECT packets are never touched). */
    double ecnMarkRate = 0.0;
    /** DCTCP-style step marking: CE-mark every ECT packet while more
     *  than this many bytes sit in the link's delivery queue for the
     *  destination port. 0 disables the threshold. */
    uint64_t ecnMarkThresholdBytes = 0;
};

/** Per-direction delivery counters. */
struct LinkStats
{
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t reordered = 0;
    uint64_t duplicated = 0;
    uint64_t corrupted = 0;
    uint64_t ecnMarked = 0;
};

/**
 * Back-to-back cable between two NIC ports. Port 0 and port 1 attach
 * receive handlers; transmit(from, pkt) delivers to the other side.
 */
class Link
{
  public:
    struct Config
    {
        sim::Tick propDelay = 2 * sim::kMicrosecond;
        Impairments dir[2]; // [0]: port0->port1, [1]: port1->port0
        uint64_t seed = 1;
        /** Arena for corruption/duplication copies; null falls back to
         *  PacketPool::threadDefault(). */
        PacketPool *pool = nullptr;
    };

    using Handler = std::function<void(PacketPtr)>;

    Link(sim::Simulator &sim, Config cfg)
        : sim_(sim),
          cfg_(cfg),
          rng_(cfg.seed),
          pool_(cfg.pool != nullptr ? *cfg.pool : PacketPool::threadDefault())
    {
    }

    /** Attaches the receive handler for @p port (0 or 1). */
    void
    attach(int port, Handler h)
    {
        ANIC_ASSERT(port == 0 || port == 1);
        handler_[port] = std::move(h);
    }

    /** Sends @p pkt from @p fromPort toward the opposite port. */
    void transmit(int fromPort, PacketPtr pkt);

    const LinkStats &stats(int dir) const { return stats_[dir]; }

    /** Replaces impairments at runtime (benches sweep loss rates). */
    void setImpairments(int dir, const Impairments &imp) { cfg_.dir[dir] = imp; }

  private:
    /** Packets due at one tick on one port, drained by one event. */
    struct Batch
    {
        sim::Tick due = 0;
        std::vector<PacketPtr> pkts;
    };

    void deliver(int toPort, PacketPtr pkt, sim::Tick delay);
    void flush(int toPort, sim::Tick due);

    sim::Simulator &sim_;
    Config cfg_;
    Rng rng_;
    PacketPool &pool_;
    Handler handler_[2];
    LinkStats stats_[2];
    std::vector<Batch> pending_[2];
    uint64_t pendingBytes_[2] = {0, 0}; ///< queued wire bytes per port
    std::vector<std::vector<PacketPtr>> batchFree_; ///< capacity recycling
};

} // namespace anic::net

#endif // ANIC_NET_LINK_HH
