#include "net/toeplitz.hh"

#include "util/panic.hh"

namespace anic::net {

namespace {

/** The Microsoft RSS verification-suite key. */
constexpr uint8_t kStandardKey[Toeplitz::kKeyBytes] = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
};

/** 32-bit window of @p key starting at bit @p pos (msb-first). */
uint32_t
keyWindow(const uint8_t (&key)[Toeplitz::kKeyBytes], size_t pos)
{
    uint64_t acc = 0;
    size_t byte = pos / 8;
    for (size_t i = 0; i < 8; i++)
        acc = (acc << 8) | (byte + i < Toeplitz::kKeyBytes ? key[byte + i] : 0);
    return static_cast<uint32_t>(acc >> (32 - pos % 8));
}

} // namespace

Toeplitz::Toeplitz(const uint8_t (&key)[kKeyBytes])
{
    // Input bit i (msb-first) selects the key window starting at bit
    // i; a byte's contribution is the xor of its set bits' windows,
    // which collapses to one table lookup per input byte.
    for (size_t o = 0; o < kMaxInput; o++) {
        uint32_t win[8];
        for (int bit = 0; bit < 8; bit++)
            win[bit] = keyWindow(key, o * 8 + static_cast<size_t>(bit));
        for (unsigned v = 0; v < 256; v++) {
            uint32_t h = 0;
            for (int bit = 0; bit < 8; bit++) {
                if (v & (0x80u >> bit))
                    h ^= win[bit];
            }
            table_[o][v] = h;
        }
    }
}

const Toeplitz &
Toeplitz::standard()
{
    static const Toeplitz t(kStandardKey);
    return t;
}

uint32_t
Toeplitz::hashBytes(const uint8_t *data, size_t len) const
{
    ANIC_ASSERT(len <= kMaxInput, "toeplitz input too long: %zu", len);
    uint32_t h = 0;
    for (size_t i = 0; i < len; i++)
        h ^= table_[i][data[i]];
    return h;
}

uint32_t
Toeplitz::hashBytesRef(const uint8_t (&key)[kKeyBytes], const uint8_t *data,
                       size_t len)
{
    uint32_t result = 0;
    uint32_t window = (static_cast<uint32_t>(key[0]) << 24) |
                      (static_cast<uint32_t>(key[1]) << 16) |
                      (static_cast<uint32_t>(key[2]) << 8) | key[3];
    size_t nextBit = 32;
    for (size_t i = 0; i < len; i++) {
        for (int b = 7; b >= 0; b--) {
            if (data[i] & (1u << b))
                result ^= window;
            window <<= 1;
            if (nextBit < kKeyBytes * 8 &&
                (key[nextBit / 8] & (0x80u >> (nextBit % 8))))
                window |= 1;
            nextBit++;
        }
    }
    return result;
}

uint32_t
Toeplitz::hashIpv4(IpAddr src, IpAddr dst) const
{
    const uint8_t in[8] = {
        static_cast<uint8_t>(src >> 24), static_cast<uint8_t>(src >> 16),
        static_cast<uint8_t>(src >> 8),  static_cast<uint8_t>(src),
        static_cast<uint8_t>(dst >> 24), static_cast<uint8_t>(dst >> 16),
        static_cast<uint8_t>(dst >> 8),  static_cast<uint8_t>(dst),
    };
    return hashBytes(in, sizeof in);
}

uint32_t
Toeplitz::hashIpv4Tcp(IpAddr src, IpAddr dst, uint16_t srcPort,
                      uint16_t dstPort) const
{
    const uint8_t in[12] = {
        static_cast<uint8_t>(src >> 24),     static_cast<uint8_t>(src >> 16),
        static_cast<uint8_t>(src >> 8),      static_cast<uint8_t>(src),
        static_cast<uint8_t>(dst >> 24),     static_cast<uint8_t>(dst >> 16),
        static_cast<uint8_t>(dst >> 8),      static_cast<uint8_t>(dst),
        static_cast<uint8_t>(srcPort >> 8),  static_cast<uint8_t>(srcPort),
        static_cast<uint8_t>(dstPort >> 8),  static_cast<uint8_t>(dstPort),
    };
    return hashBytes(in, sizeof in);
}

} // namespace anic::net
