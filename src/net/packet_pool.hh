/**
 * @file
 * Freelist arena for Packet buffers.
 *
 * Every simulated packet on the hot path comes from a pool: release
 * of the last PacketPtr pushes the packet onto the owning pool's
 * freelist with its payload vector's capacity intact, so after a
 * short warm-up the steady-state data path performs zero per-packet
 * heap allocations. Pools are per-world (one per RunContext-bound
 * MacroWorld), which keeps --jobs N runs isolated without locks; the
 * pool must be declared before the Simulator that schedules events
 * holding PacketPtrs, so that every packet is released before the
 * pool is destroyed.
 *
 * Code without a plumbed pool (bare unit tests) falls back to
 * PacketPool::threadDefault(), a thread-local arena with the same
 * semantics.
 */

#ifndef ANIC_NET_PACKET_POOL_HH
#define ANIC_NET_PACKET_POOL_HH

#include "net/packet.hh"
#include "sim/registry.hh"

namespace anic::net {

class PacketPool
{
  public:
    PacketPool() = default;
    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;
    ~PacketPool();

    /** A packet with bytes.size() == @p size; contents unspecified
     *  (callers overwrite). Recycles a freelist packet when one fits. */
    PacketPtr alloc(size_t size);

    /** Encodes headers + @p payloadLen unwritten payload bytes; the
     *  caller fills payloadMut(). The header cache is primed from the
     *  structs, so the packet is never re-decoded. */
    PacketPtr makeTcp(const Ipv4Header &ip, const TcpHeader &tcp,
                      size_t payloadLen);

    /** makeTcp + payload copy (control path / tests). */
    PacketPtr make(const Ipv4Header &ip, const TcpHeader &tcp,
                   ByteView payload);

    /** Content copy of @p src (link corruption/duplication). */
    PacketPtr copy(const Packet &src);

    /** Publishes sim.alloc.* under @p scope ("sim.alloc"). */
    void linkStats(sim::StatsScope scope);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t grows() const { return grows_; }
    uint64_t liveCount() const { return liveCount_; }
    uint64_t freeCount() const { return freeCount_; }

    /** Thread-local fallback pool for code without a plumbed pool. */
    static PacketPool &threadDefault();

  private:
    friend class PacketPtr;

    Packet *take(size_t size);
    void recycle(Packet *p);

    Packet *free_ = nullptr;
    uint64_t freeCount_ = 0;
    uint64_t liveCount_ = 0;

    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter grows_;
    sim::Counter recycled_;
    sim::Gauge live_;
    sim::Gauge hwmLive_;
    double hwm_ = 0.0;
    /** Callbacks that overflowed the InlineFunction SBO: structurally
     *  zero (overflow is a compile error), published so snapshots can
     *  assert the zero-allocation claim. */
    sim::Counter cbHeapFallbacks_;
    sim::StatsScope scope_;
};

} // namespace anic::net

#endif // ANIC_NET_PACKET_POOL_HH
