#include "net/headers.hh"

#include "util/panic.hh"

namespace anic::net {

std::string
ipToString(IpAddr ip)
{
    return strprintf("%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                     (ip >> 8) & 0xff, ip & 0xff);
}

void
Ipv4Header::encode(uint8_t *out) const
{
    std::memset(out, 0, kSize);
    out[0] = 0x45; // version 4, IHL 5
    out[1] = tos;
    putBe16(out + 2, totalLen);
    out[8] = ttl;
    out[9] = protocol;
    putBe32(out + 12, src);
    putBe32(out + 16, dst);
    // Header checksum over the 20 bytes with checksum field zero.
    uint16_t csum = internetChecksum(ByteView(out, kSize));
    putBe16(out + 10, csum);
}

Ipv4Header
Ipv4Header::decode(const uint8_t *in)
{
    Ipv4Header h;
    h.tos = in[1];
    h.totalLen = getBe16(in + 2);
    h.ttl = in[8];
    h.protocol = in[9];
    h.src = getBe32(in + 12);
    h.dst = getBe32(in + 16);
    return h;
}

void
TcpHeader::encode(uint8_t *out) const
{
    std::memset(out, 0, kSize);
    putBe16(out, srcPort);
    putBe16(out + 2, dstPort);
    putBe32(out + 4, seq);
    putBe32(out + 8, ack);
    out[12] = 5 << 4; // data offset: 5 words
    out[13] = flags;
    putBe16(out + 14, static_cast<uint16_t>(
                          std::min<uint32_t>(window >> kWindowShift, 0xffff)));
}

TcpHeader
TcpHeader::decode(const uint8_t *in)
{
    TcpHeader h;
    h.srcPort = getBe16(in);
    h.dstPort = getBe16(in + 2);
    h.seq = getBe32(in + 4);
    h.ack = getBe32(in + 8);
    h.flags = in[13];
    h.window = static_cast<uint32_t>(getBe16(in + 14)) << kWindowShift;
    return h;
}

uint16_t
internetChecksum(ByteView data)
{
    uint32_t sum = 0;
    size_t i = 0;
    for (; i + 1 < data.size(); i += 2)
        sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < data.size())
        sum += static_cast<uint32_t>(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(~sum);
}

} // namespace anic::net
