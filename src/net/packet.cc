#include "net/packet.hh"

#include "net/packet_pool.hh"

namespace anic::net {

Packet
Packet::make(const Ipv4Header &ip, const TcpHeader &tcp, ByteView payload)
{
    Packet p;
    p.bytes.resize(kHeaderSize + payload.size());

    Ipv4Header iph = ip;
    iph.totalLen = static_cast<uint16_t>(p.bytes.size());
    iph.encode(p.bytes.data());
    tcp.encode(p.bytes.data() + Ipv4Header::kSize);
    if (!payload.empty()) {
        std::memcpy(p.bytes.data() + kHeaderSize, payload.data(),
                    payload.size());
    }
    p.setHeaders(iph, tcp);
    return p;
}

void
Packet::decodeHeaders() const
{
    ipHdr_ = Ipv4Header::decode(bytes.data());
    tcpHdr_ = TcpHeader::decode(bytes.data() + Ipv4Header::kSize);
    flow_ = FlowKey{ipHdr_.src, ipHdr_.dst, tcpHdr_.srcPort, tcpHdr_.dstPort};
    hdrValid_ = true;
}

void
PacketPtr::release(Packet *p)
{
    ANIC_ASSERT(p->refs_ > 0, "packet double release");
    if (--p->refs_ != 0)
        return;
    if (p->pool_ != nullptr)
        p->pool_->recycle(p);
    else
        delete p;
}

} // namespace anic::net
