#include "net/packet.hh"

namespace anic::net {

Packet
Packet::make(const Ipv4Header &ip, const TcpHeader &tcp, ByteView payload)
{
    Packet p;
    p.bytes.resize(Ipv4Header::kSize + TcpHeader::kSize + payload.size());

    Ipv4Header iph = ip;
    iph.totalLen = static_cast<uint16_t>(p.bytes.size());
    iph.encode(p.bytes.data());
    tcp.encode(p.bytes.data() + Ipv4Header::kSize);
    if (!payload.empty()) {
        std::memcpy(p.bytes.data() + Ipv4Header::kSize + TcpHeader::kSize,
                    payload.data(), payload.size());
    }
    return p;
}

} // namespace anic::net
