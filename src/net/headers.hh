/**
 * @file
 * Wire-format header codecs for the simulated network.
 *
 * Headers are encoded into real packet bytes because the NIC model
 * parses them exactly like hardware does (flow lookup, sequence
 * tracking, payload scanning). IPv4 and TCP use their standard 20-byte
 * layouts without options; the one liberty taken is that the TCP
 * window field carries an implicit scale factor (as if wscale had been
 * negotiated), which is documented at kWindowShift.
 */

#ifndef ANIC_NET_HEADERS_HH
#define ANIC_NET_HEADERS_HH

#include <cstdint>
#include <functional>

#include "util/bytes.hh"

namespace anic::net {

/** IPv4 address (host order in the API, big-endian on the wire). */
using IpAddr = uint32_t;

/** Makes an address from dotted-quad components. */
constexpr IpAddr
makeIp(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
{
    return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
           (static_cast<uint32_t>(c) << 8) | d;
}

std::string ipToString(IpAddr ip);

/** ECN codepoints: the low two bits of the IPv4 TOS byte (RFC 3168). */
enum EcnBits : uint8_t
{
    kEcnMask = 0x03,
    kEcnNotEct = 0x00,
    kEcnEct1 = 0x01,
    kEcnEct0 = 0x02, ///< what ECN-capable senders mark data with
    kEcnCe = 0x03,   ///< congestion experienced (set by the network)
};

/** 20-byte IPv4 header, no options. */
struct Ipv4Header
{
    static constexpr size_t kSize = 20;
    static constexpr uint8_t kProtoTcp = 6;

    IpAddr src = 0;
    IpAddr dst = 0;
    uint16_t totalLen = 0; // header + payload
    uint8_t protocol = kProtoTcp;
    uint8_t ttl = 64;
    uint8_t tos = 0; // DSCP + ECN bits (only ECN is used here)

    void encode(uint8_t *out) const;
    static Ipv4Header decode(const uint8_t *in);
};

/** TCP flag bits (subset used by the simulator). */
enum TcpFlags : uint8_t
{
    kTcpFin = 0x01,
    kTcpSyn = 0x02,
    kTcpRst = 0x04,
    kTcpPsh = 0x08,
    kTcpAck = 0x10,
    kTcpEce = 0x40, ///< ECN echo (RFC 3168)
    kTcpCwr = 0x80, ///< congestion window reduced (RFC 3168)
};

/** 20-byte TCP header, no options. */
struct TcpHeader
{
    static constexpr size_t kSize = 20;

    /**
     * Implicit window scale: the 16-bit window field is shifted left
     * by this amount, as if RFC 7323 window scaling with shift 10 had
     * been negotiated during the handshake. Gives a 64 MiB max window.
     */
    static constexpr int kWindowShift = 10;

    uint16_t srcPort = 0;
    uint16_t dstPort = 0;
    uint32_t seq = 0;
    uint32_t ack = 0;
    uint8_t flags = 0;
    uint32_t window = 0; // unscaled byte count; encoded >> kWindowShift

    void encode(uint8_t *out) const;
    static TcpHeader decode(const uint8_t *in);
};

/** Identifies one direction of a TCP flow. */
struct FlowKey
{
    IpAddr srcIp = 0;
    IpAddr dstIp = 0;
    uint16_t srcPort = 0;
    uint16_t dstPort = 0;

    bool
    operator==(const FlowKey &o) const
    {
        return srcIp == o.srcIp && dstIp == o.dstIp &&
               srcPort == o.srcPort && dstPort == o.dstPort;
    }

    /** The same flow as seen from the other endpoint. */
    FlowKey
    reversed() const
    {
        return FlowKey{dstIp, srcIp, dstPort, srcPort};
    }
};

struct FlowKeyHash
{
    size_t
    operator()(const FlowKey &k) const
    {
        uint64_t x = (static_cast<uint64_t>(k.srcIp) << 32) | k.dstIp;
        uint64_t y = (static_cast<uint64_t>(k.srcPort) << 16) | k.dstPort;
        x ^= y + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<size_t>(x);
    }
};

/** RFC 1071 internet checksum over @p data (for header validation). */
uint16_t internetChecksum(ByteView data);

} // namespace anic::net

#endif // ANIC_NET_HEADERS_HH
