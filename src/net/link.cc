#include "net/link.hh"

namespace anic::net {

void
Link::transmit(int fromPort, PacketPtr pkt)
{
    ANIC_ASSERT(fromPort == 0 || fromPort == 1);
    int dir = fromPort;      // direction index == sending port
    int to = 1 - fromPort;
    const Impairments &imp = cfg_.dir[dir];
    LinkStats &st = stats_[dir];
    st.sent++;

    if (imp.lossRate > 0 && rng_.chance(imp.lossRate)) {
        st.dropped++;
        return;
    }

    sim::Tick delay = cfg_.propDelay;
    if (imp.reorderRate > 0 && rng_.chance(imp.reorderRate)) {
        st.reordered++;
        delay += imp.reorderExtraDelay;
    }

    if (imp.corruptRate > 0 && pkt->payloadSize() > 0 &&
        rng_.chance(imp.corruptRate)) {
        st.corrupted++;
        // Corrupt a private copy: the sender retains the pristine bytes
        // for retransmission, exactly like real wire corruption.
        auto bad = std::make_shared<Packet>(*pkt);
        bad->rx = RxOffloadMeta{};
        ByteSpan pay = bad->payloadMut();
        size_t len = pay.size();
        size_t flips = 1 + rng_.below(3);
        for (size_t i = 0; i < flips; i++)
            pay[rng_.below(len)] ^= static_cast<uint8_t>(1 + rng_.below(255));
        pkt = std::move(bad);
    }

    deliver(to, pkt, delay);

    if (imp.duplicateRate > 0 && rng_.chance(imp.duplicateRate)) {
        st.duplicated++;
        // The duplicate arrives slightly later, carrying its own copy
        // of the bytes so downstream mutation (NIC decrypt-in-place)
        // cannot alias.
        auto dup = std::make_shared<Packet>(*pkt);
        dup->rx = RxOffloadMeta{};
        deliver(to, std::move(dup), delay + sim::kMicrosecond);
    }
}

void
Link::deliver(int toPort, PacketPtr pkt, sim::Tick delay)
{
    stats_[1 - toPort].delivered++;
    sim_.schedule(delay, [this, toPort, pkt = std::move(pkt)]() mutable {
        ANIC_ASSERT(handler_[toPort] != nullptr, "link port %d unattached",
                    toPort);
        handler_[toPort](std::move(pkt));
    });
}

} // namespace anic::net
