#include "net/link.hh"

namespace anic::net {

void
Link::transmit(int fromPort, PacketPtr pkt)
{
    ANIC_ASSERT(fromPort == 0 || fromPort == 1);
    int dir = fromPort;      // direction index == sending port
    int to = 1 - fromPort;
    const Impairments &imp = cfg_.dir[dir];
    LinkStats &st = stats_[dir];
    st.sent++;

    if (imp.lossRate > 0 && rng_.chance(imp.lossRate)) {
        st.dropped++;
        return;
    }

    sim::Tick delay = cfg_.propDelay;
    if (imp.reorderRate > 0 && rng_.chance(imp.reorderRate)) {
        st.reordered++;
        delay += imp.reorderExtraDelay;
    }

    // ECN marking happens where an AQM would sit: at the egress queue,
    // before corruption/duplication so copies carry the mark too. Only
    // ECT traffic is eligible, so non-ECN runs draw no extra randoms
    // (byte-identical RNG streams).
    if ((pkt->ip().tos & kEcnMask) != kEcnNotEct) {
        bool mark = imp.ecnMarkThresholdBytes > 0 &&
                    pendingBytes_[to] >= imp.ecnMarkThresholdBytes;
        if (!mark && imp.ecnMarkRate > 0 && rng_.chance(imp.ecnMarkRate))
            mark = true;
        if (mark && (pkt->ip().tos & kEcnMask) != kEcnCe) {
            st.ecnMarked++;
            // Mark a private copy for the same reason corruption does:
            // the sender's retransmission buffer keeps pristine bytes.
            PacketPtr ce = pool_.copy(*pkt);
            ce->rx = RxOffloadMeta{};
            Ipv4Header ip = ce->ip();
            ip.tos = static_cast<uint8_t>((ip.tos & ~kEcnMask) | kEcnCe);
            ip.encode(ce->bytes.data());
            ce->invalidateHeaders();
            pkt = std::move(ce);
        }
    }

    if (imp.corruptRate > 0 && pkt->payloadSize() > 0 &&
        rng_.chance(imp.corruptRate)) {
        st.corrupted++;
        // Corrupt a private copy: the sender retains the pristine bytes
        // for retransmission, exactly like real wire corruption.
        PacketPtr bad = pool_.copy(*pkt);
        bad->rx = RxOffloadMeta{};
        ByteSpan pay = bad->payloadMut();
        size_t len = pay.size();
        size_t flips = 1 + rng_.below(3);
        for (size_t i = 0; i < flips; i++)
            pay[rng_.below(len)] ^= static_cast<uint8_t>(1 + rng_.below(255));
        pkt = std::move(bad);
    }

    bool duplicate = imp.duplicateRate > 0 && rng_.chance(imp.duplicateRate);
    PacketPtr dup;
    if (duplicate) {
        st.duplicated++;
        // The duplicate arrives slightly later, carrying its own copy
        // of the bytes so downstream mutation (NIC decrypt-in-place)
        // cannot alias.
        dup = pool_.copy(*pkt);
        dup->rx = RxOffloadMeta{};
    }

    deliver(to, std::move(pkt), delay);
    if (duplicate)
        deliver(to, std::move(dup), delay + sim::kMicrosecond);
}

void
Link::deliver(int toPort, PacketPtr pkt, sim::Tick delay)
{
    stats_[1 - toPort].delivered++;
    pendingBytes_[toPort] += pkt->wireSize();
    sim::Tick due = sim_.now() + delay;
    std::vector<Batch> &pend = pending_[toPort];
    for (Batch &b : pend) {
        if (b.due == due) {
            b.pkts.push_back(std::move(pkt));
            return;
        }
    }
    std::vector<PacketPtr> pkts;
    if (!batchFree_.empty()) {
        pkts = std::move(batchFree_.back());
        batchFree_.pop_back();
    }
    pkts.push_back(std::move(pkt));
    pend.push_back(Batch{due, std::move(pkts)});
    sim_.scheduleAt(due, [this, toPort, due] { flush(toPort, due); });
}

void
Link::flush(int toPort, sim::Tick due)
{
    ANIC_ASSERT(handler_[toPort] != nullptr, "link port %d unattached",
                toPort);
    std::vector<Batch> &pend = pending_[toPort];
    for (size_t i = 0; i < pend.size(); i++) {
        if (pend[i].due != due)
            continue;
        std::vector<PacketPtr> pkts = std::move(pend[i].pkts);
        pend.erase(pend.begin() + static_cast<ptrdiff_t>(i));
        for (PacketPtr &p : pkts) {
            pendingBytes_[toPort] -= p->wireSize();
            handler_[toPort](std::move(p));
        }
        pkts.clear();
        batchFree_.push_back(std::move(pkts));
        return;
    }
    panic("link flush with no pending batch at tick %llu",
          static_cast<unsigned long long>(due));
}

} // namespace anic::net
