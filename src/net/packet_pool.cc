#include "net/packet_pool.hh"

namespace anic::net {

PacketPool::~PacketPool()
{
    ANIC_ASSERT(liveCount_ == 0,
                "PacketPool destroyed with %llu live packets; declare the "
                "pool before the Simulator and components that hold packets",
                static_cast<unsigned long long>(liveCount_));
    Packet *p = free_;
    while (p != nullptr) {
        Packet *next = p->nextFree_;
        delete p;
        p = next;
    }
}

Packet *
PacketPool::take(size_t size)
{
    Packet *p;
    if (free_ != nullptr) {
        p = free_;
        free_ = p->nextFree_;
        p->nextFree_ = nullptr;
        freeCount_--;
        hits_++;
        if (p->bytes.capacity() < size)
            grows_++;
    } else {
        p = new Packet;
        p->pool_ = this;
        misses_++;
    }
    p->refs_ = 1;
    p->bytes.resize(size);
    liveCount_++;
    live_.set(static_cast<double>(liveCount_));
    if (static_cast<double>(liveCount_) > hwm_) {
        hwm_ = static_cast<double>(liveCount_);
        hwmLive_.set(hwm_);
    }
    return p;
}

void
PacketPool::recycle(Packet *p)
{
    ANIC_ASSERT(liveCount_ > 0);
    liveCount_--;
    live_.set(static_cast<double>(liveCount_));
    recycled_++;
    p->rx.kind = L5Kind::None;
    p->rx.offloaded = false;
    for (VerifyOutcome &v : p->rx.verify)
        v = VerifyOutcome::None;
    p->rx.placed.clear(); // keeps vector capacity
    p->txCtx = 0;
    p->hdrValid_ = false;
    p->bytes.clear(); // keeps buffer capacity
    p->nextFree_ = free_;
    free_ = p;
    freeCount_++;
}

PacketPtr
PacketPool::alloc(size_t size)
{
    return PacketPtr::adopt(take(size));
}

PacketPtr
PacketPool::makeTcp(const Ipv4Header &ip, const TcpHeader &tcp,
                    size_t payloadLen)
{
    PacketPtr p = alloc(Packet::kHeaderSize + payloadLen);
    Ipv4Header iph = ip;
    iph.totalLen = static_cast<uint16_t>(p->bytes.size());
    iph.encode(p->bytes.data());
    tcp.encode(p->bytes.data() + Ipv4Header::kSize);
    p->setHeaders(iph, tcp);
    return p;
}

PacketPtr
PacketPool::make(const Ipv4Header &ip, const TcpHeader &tcp, ByteView payload)
{
    PacketPtr p = makeTcp(ip, tcp, payload.size());
    if (!payload.empty())
        std::memcpy(p->payloadMut().data(), payload.data(), payload.size());
    return p;
}

PacketPtr
PacketPool::copy(const Packet &src)
{
    PacketPtr p = alloc(src.bytes.size());
    std::memcpy(p->bytes.data(), src.bytes.data(), src.bytes.size());
    p->rx = src.rx;
    p->txCtx = src.txCtx;
    return p;
}

void
PacketPool::linkStats(sim::StatsScope scope)
{
    scope_ = std::move(scope);
    scope_.link("poolHits", hits_);
    scope_.link("poolMisses", misses_);
    scope_.link("poolGrows", grows_);
    scope_.link("poolRecycled", recycled_);
    scope_.link("livePackets", live_);
    scope_.link("livePacketsHwm", hwmLive_);
    scope_.link("cbHeapFallbacks", cbHeapFallbacks_);
}

PacketPool &
PacketPool::threadDefault()
{
    // One arena per thread: JobRunner workers each simulate a private
    // world, so no locking is needed.
    static thread_local PacketPool pool;
    return pool;
}

} // namespace anic::net
