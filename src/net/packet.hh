/**
 * @file
 * The simulated packet: real wire bytes plus the receive-descriptor
 * metadata a NIC attaches on its way up the stack (the moral
 * equivalent of Linux SKB fields like `decrypted`).
 *
 * Packets are reference-counted intrusively and recycled through
 * net::PacketPool so the steady-state data path does zero per-packet
 * heap allocation (see DESIGN.md §13). Decoded IP/TCP headers are
 * cached on first use; code that rewrites header bytes in place must
 * call invalidateHeaders().
 */

#ifndef ANIC_NET_PACKET_HH
#define ANIC_NET_PACKET_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "net/headers.hh"
#include "util/bytes.hh"
#include "util/panic.hh"

namespace anic::net {

class PacketPool;
class PacketPtr;

/**
 * Byte range of a packet's TCP payload that the NIC already DMA-wrote
 * to its final destination (L5P placement offload). Offsets are
 * relative to the start of the TCP payload.
 */
struct PlacedRange
{
    uint32_t payloadOff = 0;
    uint32_t len = 0;
};

/**
 * The layer-5 protocols the NIC knows how to offload. An engine kind
 * doubles as the index of that protocol's outcome slot in descriptor
 * metadata and of its counter bank in the engine statistics, so a new
 * protocol adds an enumerator here and nothing in the NIC core.
 */
enum class L5Kind : uint8_t
{
    None = 0, ///< no engine / protocol-agnostic test engines
    Tls,
    Nvme,
    Iscsi,
};

constexpr size_t kL5KindCount = 4;

constexpr const char *
l5KindName(L5Kind k)
{
    switch (k) {
      case L5Kind::Tls:
        return "tls";
      case L5Kind::Nvme:
        return "nvme";
      case L5Kind::Iscsi:
        return "iscsi";
      default:
        return "none";
    }
}

/**
 * Per-message verification outcome an engine reports for bytes of one
 * packet. Declared in severity order so combining the outcomes of
 * multiple messages completing in the same packet is max():
 * any Failed beats any Incomplete beats any Ok.
 */
enum class VerifyOutcome : uint8_t
{
    None = 0,   ///< no verification completed in this packet
    Ok,         ///< every check that completed here passed
    Incomplete, ///< a message ended without full coverage; software
                ///  must verify
    Failed,     ///< a completed check mismatched
};

/** Severity-max combination (see VerifyOutcome). */
constexpr VerifyOutcome
worseOutcome(VerifyOutcome a, VerifyOutcome b)
{
    return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/**
 * Offload results the NIC driver surfaces to the stack with each
 * received packet. The stack must not merge packets whose flags
 * differ (mirrors the paper's "takes care not to coalesce packets
 * with different offload results").
 *
 * The fields are protocol-agnostic: one verification-outcome slot per
 * engine kind (composed engines — TLS outer, NVMe inner — each report
 * in their own slot), the placed ranges, and the kind tag of the
 * outermost engine. Consumers query their own layer via verifyOf().
 */
struct RxOffloadMeta
{
    /** Kind of the outermost engine installed on the flow. */
    L5Kind kind = L5Kind::None;

    /** The flow's FSM processed this packet in the Offloading state
     *  (transforms applied; per-layer outcomes below are live). */
    bool offloaded = false;

    /** Per-layer verification outcome, indexed by L5Kind. */
    VerifyOutcome verify[kL5KindCount] = {};

    /** Payload ranges already placed at their final destination. */
    std::vector<PlacedRange> placed;

    VerifyOutcome
    verifyOf(L5Kind k) const
    {
        return verify[static_cast<size_t>(k)];
    }

    bool
    any() const
    {
        if (offloaded || !placed.empty())
            return true;
        for (VerifyOutcome v : verify)
            if (v != VerifyOutcome::None)
                return true;
        return false;
    }
};

/** A packet on the simulated wire: IPv4 + TCP + payload bytes. */
class Packet
{
  public:
    /** Per-frame wire overhead: preamble+SFD (8) + Ethernet header
     *  (14) + FCS (4) + min IPG (12). */
    static constexpr size_t kWireOverhead = 38;

    static constexpr size_t kHeaderSize = Ipv4Header::kSize + TcpHeader::kSize;

    Packet() = default;

    // Copies transfer content only; refcount and pool identity are
    // per-object.
    Packet(const Packet &o) : bytes(o.bytes), rx(o.rx), txCtx(o.txCtx) {}

    Packet &
    operator=(const Packet &o)
    {
        bytes = o.bytes;
        rx = o.rx;
        txCtx = o.txCtx;
        hdrValid_ = false;
        return *this;
    }

    /** Builds a standalone (non-pooled) packet from headers + payload;
     *  unit-test convenience. Hot paths use PacketPool::makeTcp. */
    static Packet make(const Ipv4Header &ip, const TcpHeader &tcp,
                       ByteView payload);

    Bytes bytes;
    RxOffloadMeta rx;

    /**
     * Transmit-side l5o context tag (0 = none). "This ID is passed
     * down from the L5P, which obtained it on context creation" —
     * saves the driver/NIC a lookup by packet fields.
     */
    uint64_t txCtx = 0;

    /** Decoded views (cached on first use) ------------------------- */

    const Ipv4Header &
    ip() const
    {
        if (!hdrValid_)
            decodeHeaders();
        return ipHdr_;
    }

    const TcpHeader &
    tcp() const
    {
        if (!hdrValid_)
            decodeHeaders();
        return tcpHdr_;
    }

    const FlowKey &
    flow() const
    {
        if (!hdrValid_)
            decodeHeaders();
        return flow_;
    }

    /** Drops the cached header decode; call after mutating the first
     *  kHeaderSize bytes (payload mutation never requires this). */
    void invalidateHeaders() { hdrValid_ = false; }

    /** Primes the header cache without a decode (packet builders that
     *  already hold the structs). */
    void
    setHeaders(const Ipv4Header &iph, const TcpHeader &tcph)
    {
        ipHdr_ = iph;
        tcpHdr_ = tcph;
        flow_ = FlowKey{iph.src, iph.dst, tcph.srcPort, tcph.dstPort};
        hdrValid_ = true;
    }

    size_t payloadSize() const { return bytes.size() - kHeaderSize; }

    ByteView payload() const { return ByteView(bytes).subspan(kHeaderSize); }

    ByteSpan payloadMut() { return ByteSpan(bytes).subspan(kHeaderSize); }

    /** Frame size on the wire, including Ethernet-level overhead. */
    size_t wireSize() const { return bytes.size() + kWireOverhead; }

  private:
    friend class PacketPool;
    friend class PacketPtr;

    void decodeHeaders() const;

    mutable Ipv4Header ipHdr_;
    mutable TcpHeader tcpHdr_;
    mutable FlowKey flow_;
    mutable bool hdrValid_ = false;

    // Intrusive refcount + pool identity (single-threaded per world;
    // no atomics by design).
    uint32_t refs_ = 0;
    PacketPool *pool_ = nullptr;
    Packet *nextFree_ = nullptr;
};

/**
 * Intrusive smart pointer for pooled packets. Release of the last
 * reference returns the packet to its owning PacketPool (retaining
 * buffer capacity) or deletes it if it was heap-allocated standalone.
 */
class PacketPtr
{
  public:
    PacketPtr() = default;
    PacketPtr(std::nullptr_t) {}

    PacketPtr(const PacketPtr &o) : p_(o.p_)
    {
        if (p_ != nullptr)
            p_->refs_++;
    }

    PacketPtr(PacketPtr &&o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    PacketPtr &
    operator=(const PacketPtr &o)
    {
        if (o.p_ != nullptr)
            o.p_->refs_++;
        Packet *old = p_;
        p_ = o.p_;
        if (old != nullptr)
            release(old);
        return *this;
    }

    PacketPtr &
    operator=(PacketPtr &&o) noexcept
    {
        if (this != &o) {
            reset();
            p_ = o.p_;
            o.p_ = nullptr;
        }
        return *this;
    }

    ~PacketPtr() { reset(); }

    void
    reset()
    {
        if (p_ != nullptr) {
            release(p_);
            p_ = nullptr;
        }
    }

    Packet *get() const { return p_; }
    Packet &operator*() const { return *p_; }
    Packet *operator->() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

    bool operator==(const PacketPtr &o) const { return p_ == o.p_; }
    bool operator!=(const PacketPtr &o) const { return p_ != o.p_; }
    bool operator==(std::nullptr_t) const { return p_ == nullptr; }
    bool operator!=(std::nullptr_t) const { return p_ != nullptr; }

    /** Number of live references (tests). */
    uint32_t useCount() const { return p_ != nullptr ? p_->refs_ : 0; }

    /** Wraps a packet whose first reference the caller owns. */
    static PacketPtr
    adopt(Packet *p)
    {
        PacketPtr ptr;
        ptr.p_ = p;
        return ptr;
    }

  private:
    static void release(Packet *p);

    Packet *p_ = nullptr;
};

} // namespace anic::net

#endif // ANIC_NET_PACKET_HH
