/**
 * @file
 * The simulated packet: real wire bytes plus the receive-descriptor
 * metadata a NIC attaches on its way up the stack (the moral
 * equivalent of Linux SKB fields like `decrypted`).
 */

#ifndef ANIC_NET_PACKET_HH
#define ANIC_NET_PACKET_HH

#include <memory>
#include <vector>

#include "net/headers.hh"
#include "util/bytes.hh"

namespace anic::net {

/**
 * Byte range of a packet's TCP payload that the NIC already DMA-wrote
 * to its final destination (NVMe-TCP copy offload). Offsets are
 * relative to the start of the TCP payload.
 */
struct PlacedRange
{
    uint32_t payloadOff = 0;
    uint32_t len = 0;
};

/**
 * Offload results the NIC driver surfaces to the stack with each
 * received packet. The stack must not merge packets whose flags
 * differ (mirrors the paper's "takes care not to coalesce packets
 * with different offload results").
 */
struct RxOffloadMeta
{
    /** TLS: every record byte in this packet was decrypted by the NIC
     *  and every record tag that completed inside it verified. */
    bool decrypted = false;

    /** NVMe-TCP: every capsule CRC that completed in this packet
     *  verified. Only meaningful when crcChecked. */
    bool crcOk = false;
    bool crcChecked = false;

    /** NVMe-TCP: payload ranges already placed into block buffers. */
    std::vector<PlacedRange> placed;

    bool any() const { return decrypted || crcChecked || !placed.empty(); }
};

/** A packet on the simulated wire: IPv4 + TCP + payload bytes. */
class Packet
{
  public:
    /** Per-frame wire overhead: preamble+SFD (8) + Ethernet header
     *  (14) + FCS (4) + min IPG (12). */
    static constexpr size_t kWireOverhead = 38;

    Packet() = default;

    /** Builds a packet from headers + payload (encodes real bytes). */
    static Packet make(const Ipv4Header &ip, const TcpHeader &tcp,
                       ByteView payload);

    Bytes bytes;
    RxOffloadMeta rx;

    /**
     * Transmit-side l5o context tag (0 = none). "This ID is passed
     * down from the L5P, which obtained it on context creation" —
     * saves the driver/NIC a lookup by packet fields.
     */
    uint64_t txCtx = 0;

    /** Decoded views -------------------------------------------------- */

    Ipv4Header ip() const { return Ipv4Header::decode(bytes.data()); }

    TcpHeader
    tcp() const
    {
        return TcpHeader::decode(bytes.data() + Ipv4Header::kSize);
    }

    FlowKey
    flow() const
    {
        Ipv4Header iph = ip();
        TcpHeader tcph = tcp();
        return FlowKey{iph.src, iph.dst, tcph.srcPort, tcph.dstPort};
    }

    size_t
    payloadSize() const
    {
        return bytes.size() - Ipv4Header::kSize - TcpHeader::kSize;
    }

    ByteView
    payload() const
    {
        return ByteView(bytes).subspan(Ipv4Header::kSize + TcpHeader::kSize);
    }

    ByteSpan
    payloadMut()
    {
        return ByteSpan(bytes).subspan(Ipv4Header::kSize + TcpHeader::kSize);
    }

    /** Frame size on the wire, including Ethernet-level overhead. */
    size_t wireSize() const { return bytes.size() + kWireOverhead; }
};

using PacketPtr = std::shared_ptr<Packet>;

} // namespace anic::net

#endif // ANIC_NET_PACKET_HH
