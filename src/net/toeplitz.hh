/**
 * @file
 * Toeplitz hash for receive-side scaling (RSS).
 *
 * The NIC model steers arriving packets to per-core receive queues by
 * hashing the IPv4/TCP 4-tuple with the Toeplitz function NICs
 * implement in hardware (Microsoft RSS specification). The hash is
 * deterministic and endpoint-symmetric in neither direction — both
 * sides of the simulation therefore compute it over the *wire view*
 * of a flow (src = remote peer for arriving packets).
 *
 * The bit-serial definition costs ~100 shift/xor steps per packet; on
 * the simulator's hot path that would be noticeable, so construction
 * precomputes a per-byte lookup table (12 offsets x 256 values) and
 * hashing is 12 table lookups. hashBytesRef() keeps the bit-serial
 * reference alive for the known-answer tests.
 */

#ifndef ANIC_NET_TOEPLITZ_HH
#define ANIC_NET_TOEPLITZ_HH

#include <cstddef>
#include <cstdint>

#include "net/headers.hh"

namespace anic::net {

class Toeplitz
{
  public:
    /** RSS secret key length (320 bits). */
    static constexpr size_t kKeyBytes = 40;
    /** Longest hash input: IPv4 4-tuple (4 + 4 + 2 + 2 bytes). */
    static constexpr size_t kMaxInput = 12;

    explicit Toeplitz(const uint8_t (&key)[kKeyBytes]);

    /** Shared instance keyed with the Microsoft RSS verification-suite
     *  key (the de-facto default key drivers ship with). */
    static const Toeplitz &standard();

    /** Table-driven hash of @p len bytes (len <= kMaxInput). */
    uint32_t hashBytes(const uint8_t *data, size_t len) const;

    /** Bit-serial reference implementation (tests compare the table
     *  against this; keep both in sync with the RSS spec). */
    static uint32_t hashBytesRef(const uint8_t (&key)[kKeyBytes],
                                 const uint8_t *data, size_t len);

    /** IPv4-only hash: src then dst address, network byte order. */
    uint32_t hashIpv4(IpAddr src, IpAddr dst) const;

    /** IPv4+TCP hash: addresses then ports, network byte order. */
    uint32_t hashIpv4Tcp(IpAddr src, IpAddr dst, uint16_t srcPort,
                         uint16_t dstPort) const;

    /** 4-tuple hash of @p wire as seen on arriving packets. */
    uint32_t
    hashFlow(const FlowKey &wire) const
    {
        return hashIpv4Tcp(wire.srcIp, wire.dstIp, wire.srcPort,
                           wire.dstPort);
    }

  private:
    /** table_[o][v]: xor of the 32-bit key windows selected by the
     *  set bits of input byte value v at byte offset o. */
    uint32_t table_[kMaxInput][256];
};

} // namespace anic::net

#endif // ANIC_NET_TOEPLITZ_HH
