/**
 * @file
 * iSCSI session endpoints over a StreamSocket, backed by the same
 * host::NvmeDrive block model the NVMe-TCP endpoints use.
 *
 * IscsiInitiator maps read/write block requests to SCSI Command PDUs;
 * writes carry unsolicited Data-Out (InitialR2T=No with a large
 * FirstBurstLength, a common fast-path configuration — credit-gated
 * data-out is exercised by the NVMe-TCP R2T path). IscsiTarget serves
 * Data-In segments and collects Data-Out into per-task buffers.
 *
 * Both sides install NIC offloads through the protocol-agnostic
 * l5o_create binding (IscsiStaticState + direction mask):
 *  - rx digest offload: skip software header+data digest checks when
 *    the NIC verified every chunk of a PDU;
 *  - rx copy offload: skip copying ranges the NIC placed into the
 *    task buffer (ITT-keyed, at the wire BufferOffset);
 *  - tx digest offload: send data PDUs with dummy data digests for
 *    the NIC to fill;
 *  - resync: answers NIC BHS speculations with PDU-boundary anchors.
 */

#ifndef ANIC_ISCSI_SESSION_HH
#define ANIC_ISCSI_SESSION_HH

#include <deque>
#include <unordered_map>

#include "core/offload_device.hh"
#include "core/tx_msg_tracker.hh"
#include "host/storage.hh"
#include "iscsi/iscsi_engine.hh"
#include "iscsi/pdu.hh"

namespace anic::iscsi {

struct IscsiInitiatorStats
{
    sim::Counter readsCompleted;
    sim::Counter writesCompleted;
    sim::Counter failures;
    sim::Counter dataInPdus;
    sim::Counter digestSkipped;  ///< PDUs fully verified by the NIC
    sim::Counter digestSoftware; ///< PDUs verified in software
    sim::Counter digestFailures;
    sim::Counter bytesPlaced;
    sim::Counter bytesCopied;
    sim::Counter resyncRequests;
    sim::Counter resyncConfirmed;
};

class IscsiInitiator : private core::L5pCallbacks
{
  public:
    IscsiInitiator(tcp::StreamSocket &sock, IscsiWireConfig wc,
                   IscsiOffloadConfig ocfg,
                   IscsiInitiatorStats *aggregate = nullptr);
    ~IscsiInitiator() override;

    /** Installs NIC offload contexts (unified l5o_create binding). */
    void enableOffload(core::OffloadDevice &dev, tcp::TcpConnection &conn);

    using ReadDone = std::function<void(bool ok, host::BlockBufferPtr)>;
    using WriteDone = std::function<void(bool ok)>;

    /** Reads @p len bytes at byte address @p slba. */
    void read(uint64_t slba, uint32_t len, ReadDone done);

    /** Writes @p len deterministic bytes (seed/slba-addressed),
     *  shipped as unsolicited Data-Out right behind the command. */
    void write(uint64_t slba, uint32_t len, uint64_t contentSeed,
               WriteDone done);

    const IscsiInitiatorStats &stats() const { return stats_; }
    size_t outstanding() const { return tasks_.size(); }
    bool desynced() const { return dead_; }
    const nic::FsmStats *rxFsmStats() const;

  private:
    struct Task
    {
        uint8_t scsiOp = 0;
        uint64_t slba = 0;
        uint32_t len = 0;
        host::BlockBufferPtr buffer;
        ReadDone readDone;
        WriteDone writeDone;
        uint32_t received = 0;
        bool failed = false;
    };

    uint32_t allocItt();
    void sendDataOut(uint32_t itt, const Task &task, uint64_t contentSeed);
    void enqueuePdu(Bytes pdu);
    void flushSendQueue();
    void onReadable();
    void onPdu(IscsiRxPdu &&pdu);
    void completeTask(uint32_t itt, bool ok);
    void failAllOutstanding();
    void checkPendingResync();

    // L5pCallbacks.
    std::optional<TxMsgState> getTxMsgState(uint32_t tcpsn) override;
    void resyncRxReq(uint32_t tcpsn) override;

    void
    count(sim::Counter IscsiInitiatorStats::*m, uint64_t n = 1)
    {
        (stats_.*m) += n;
        if (aggregate_ != nullptr)
            (aggregate_->*m) += n;
    }

    tcp::StreamSocket &sock_;
    IscsiWireConfig wc_;
    IscsiOffloadConfig ocfg_;

    core::L5Offload *l5o_ = nullptr;
    tcp::TcpConnection *conn_ = nullptr;
    IscsiRxEngine *rxEngine_ = nullptr;

    std::unordered_map<uint32_t, Task> tasks_;
    uint32_t nextItt_ = 1;

    struct SendEntry
    {
        Bytes bytes;
        bool added = false;
    };
    std::deque<SendEntry> sendq_;
    size_t sendqOff_ = 0;

    IscsiAssembler assembler_;
    bool dead_ = false;
    core::TxMsgTracker txMap_;
    uint64_t txMsgIdx_ = 0;

    bool resyncPending_ = false;
    uint32_t resyncSeq_ = 0;
    uint64_t resyncOff_ = 0;

    IscsiInitiatorStats stats_;
    IscsiInitiatorStats *aggregate_ = nullptr;
};

struct IscsiTargetStats
{
    sim::Counter readsServed;
    sim::Counter writesServed;
    sim::Counter bytesRead;
    sim::Counter bytesWritten;
    sim::Counter dataOutPdus;
    sim::Counter digestSkipped;
    sim::Counter digestSoftware;
    sim::Counter digestFailures;
    sim::Counter bytesPlaced;
    sim::Counter bytesCopied;
    sim::Counter resyncRequests;
    sim::Counter resyncConfirmed;
};

class IscsiTarget : private core::L5pCallbacks
{
  public:
    IscsiTarget(tcp::StreamSocket &sock, host::NvmeDrive &drive,
                IscsiWireConfig wc);
    ~IscsiTarget() override;

    /** Installs NIC offload contexts (unified l5o_create binding). */
    void enableOffload(core::OffloadDevice &dev, tcp::TcpConnection &conn,
                       IscsiOffloadConfig ocfg);

    const IscsiTargetStats &stats() const { return stats_; }
    bool desynced() const { return dead_; }
    const nic::FsmStats *rxFsmStats() const;

  private:
    struct PendingWrite
    {
        uint64_t slba = 0;
        uint32_t len = 0;
        uint32_t received = 0;
        bool digestOk = true;
        host::BlockBufferPtr buffer;
    };

    void onReadable();
    void onPdu(IscsiRxPdu &&pdu);
    void onDataOut(IscsiRxPdu &pdu, const IscsiBhs &bhs);
    void serveRead(const IscsiBhs &bhs);
    void finishWrite(uint32_t itt);
    void enqueue(Bytes pdu);
    void flush();
    void checkPendingResync();

    // L5pCallbacks.
    std::optional<TxMsgState> getTxMsgState(uint32_t tcpsn) override;
    void resyncRxReq(uint32_t tcpsn) override;

    tcp::StreamSocket &sock_;
    host::NvmeDrive &drive_;
    IscsiWireConfig wc_;
    IscsiOffloadConfig ocfg_;

    core::L5Offload *l5o_ = nullptr;
    tcp::TcpConnection *conn_ = nullptr;
    IscsiRxEngine *rxEngine_ = nullptr;

    std::unordered_map<uint32_t, PendingWrite> writes_;

    struct SendEntry
    {
        Bytes bytes;
        bool added = false;
    };
    std::deque<SendEntry> sendq_;
    size_t sendqOff_ = 0;

    IscsiAssembler assembler_;
    bool dead_ = false;
    core::TxMsgTracker txMap_;
    uint64_t txMsgIdx_ = 0;

    bool resyncPending_ = false;
    uint32_t resyncSeq_ = 0;
    uint64_t resyncOff_ = 0;

    IscsiTargetStats stats_;
};

} // namespace anic::iscsi

#endif // ANIC_ISCSI_SESSION_HH
