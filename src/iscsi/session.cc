#include "iscsi/session.hh"

#include <algorithm>
#include <cstring>

#include "host/core.hh"
#include "util/panic.hh"

namespace anic::iscsi {

namespace {

/** Placement-aware copy of a data PDU's segment into @p dst at
 *  @p bufferOffset: NIC-placed ranges are skipped, the rest is
 *  memcpy'd. Returns {copied, placed} byte counts. */
std::pair<uint64_t, uint64_t>
copySegment(const IscsiWireConfig &wc, const IscsiRxPdu &pdu, uint32_t dsl,
            uint32_t bufferOffset, host::BlockBuffer &dst)
{
    const uint64_t pdo = kBhsSize + wc.hdgstLen();
    const uint64_t data_end = pdo + dsl;

    std::vector<net::PlacedRange> placed;
    for (const IscsiPduSlice &s : pdu.slices) {
        for (const net::PlacedRange &r : s.placed)
            placed.push_back(r); // already PDU-relative
    }
    std::sort(placed.begin(), placed.end(),
              [](const net::PlacedRange &a, const net::PlacedRange &b) {
                  return a.payloadOff < b.payloadOff;
              });

    uint64_t cursor = pdo;
    uint64_t copied = 0;
    uint64_t placed_bytes = 0;
    auto copyRange = [&](uint64_t from, uint64_t to) {
        if (from >= to)
            return;
        uint64_t at = bufferOffset + (from - pdo);
        if (at + (to - from) <= dst.data.size()) {
            std::memcpy(dst.data.data() + at, pdu.bytes.data() + from,
                        to - from);
        }
        copied += to - from;
    };
    for (const net::PlacedRange &r : placed) {
        uint64_t ps = std::max<uint64_t>(r.payloadOff, pdo);
        uint64_t pe = std::min<uint64_t>(r.payloadOff + r.len, data_end);
        if (ps >= pe)
            continue;
        copyRange(cursor, ps);
        placed_bytes += pe - ps;
        cursor = std::max(cursor, pe);
    }
    copyRange(cursor, data_end);
    return {copied, placed_bytes};
}

/** Software data-digest check of a data PDU (true = matches). */
bool
checkDataDigest(const IscsiWireConfig &wc, const IscsiRxPdu &pdu,
                uint32_t dsl)
{
    const uint64_t pdo = kBhsSize + wc.hdgstLen();
    ByteView data = ByteView(pdu.bytes).subspan(pdo, dsl);
    uint32_t wire =
        static_cast<uint32_t>(getLe32(pdu.bytes.data() + pdo + dsl));
    return crypto::Crc32c::compute(data) == wire;
}

} // namespace

// ----------------------------------------------------------- initiator

IscsiInitiator::IscsiInitiator(tcp::StreamSocket &sock, IscsiWireConfig wc,
                               IscsiOffloadConfig ocfg,
                               IscsiInitiatorStats *aggregate)
    : sock_(sock), wc_(wc), ocfg_(ocfg), assembler_(wc),
      aggregate_(aggregate)
{
    sock_.setOnReadable([this] { onReadable(); });
    sock_.setOnWritable([this] { flushSendQueue(); });
}

IscsiInitiator::~IscsiInitiator()
{
    if (l5o_ != nullptr)
        l5o_->destroy();
}

void
IscsiInitiator::enableOffload(core::OffloadDevice &dev,
                              tcp::TcpConnection &conn)
{
    ANIC_ASSERT(l5o_ == nullptr);
    conn_ = &conn;
    if (!ocfg_.crcRx && !ocfg_.copyRx && !ocfg_.crcTx)
        return;

    IscsiStaticState st(wc_);
    unsigned dirs = ((ocfg_.crcRx || ocfg_.copyRx) ? core::kL5Rx : 0u) |
                    (ocfg_.crcTx ? core::kL5Tx : 0u);
    if (ocfg_.crcTx)
        conn.setOnAcked([this](uint32_t una) { txMap_.trimAcked(una); });
    l5o_ = dev.l5oCreate(conn, st, dirs, this);
    if (dirs & core::kL5Rx)
        rxEngine_ = static_cast<IscsiRxEngine *>(l5o_->rxEngine());
    if (ocfg_.crcTx)
        conn.setTxOffloadCtx(l5o_->txCtxId());
}

const nic::FsmStats *
IscsiInitiator::rxFsmStats() const
{
    return l5o_ != nullptr ? l5o_->rxFsmStats() : nullptr;
}

uint32_t
IscsiInitiator::allocItt()
{
    for (;;) {
        uint32_t itt = nextItt_++;
        if (nextItt_ == 0)
            nextItt_ = 1;
        if (tasks_.find(itt) == tasks_.end())
            return itt;
    }
}

void
IscsiInitiator::read(uint64_t slba, uint32_t len, ReadDone done)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    uint32_t itt = allocItt();
    Task task;
    task.scsiOp = kScsiRead;
    task.slba = slba;
    task.len = len;
    task.buffer = std::make_shared<host::BlockBuffer>(len);
    task.readDone = std::move(done);

    if (ocfg_.copyRx && rxEngine_ != nullptr) {
        // l5o_add_rr_state: tell the NIC where Data-In belongs.
        rxEngine_->addRrState(itt, task.buffer);
    }
    tasks_.emplace(itt, std::move(task));

    IscsiBhs bhs;
    bhs.itt = itt;
    bhs.edtl = len;
    bhs.scsiOp = kScsiRead;
    bhs.slba = slba;
    bhs.length = len;
    enqueuePdu(buildScsiCmd(wc_, bhs));
}

void
IscsiInitiator::write(uint64_t slba, uint32_t len, uint64_t contentSeed,
                      WriteDone done)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    uint32_t itt = allocItt();
    Task task;
    task.scsiOp = kScsiWrite;
    task.slba = slba;
    task.len = len;
    task.writeDone = std::move(done);

    IscsiBhs bhs;
    bhs.itt = itt;
    bhs.edtl = len;
    bhs.scsiOp = kScsiWrite;
    bhs.slba = slba;
    bhs.length = len;
    enqueuePdu(buildScsiCmd(wc_, bhs));
    sendDataOut(itt, task, contentSeed);
    tasks_.emplace(itt, std::move(task));
}

void
IscsiInitiator::sendDataOut(uint32_t itt, const Task &task,
                            uint64_t contentSeed)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    uint32_t off = 0;
    while (off < task.len) {
        uint32_t n = static_cast<uint32_t>(
            std::min<size_t>(wc_.maxDataSegment, task.len - off));
        Bytes data(n);
        fillDeterministic(data, contentSeed, task.slba + off);
        IscsiBhs dh;
        dh.itt = itt;
        dh.bufferOffset = off;
        dh.flags = off + n >= task.len ? kFlagFinal : 0;
        // User buffer -> PDU copy; compute the data digest in
        // software unless the NIC tx engine fills it.
        core.charge(m.copyLlcPerByte * n +
                    (wc_.dataDigest && !ocfg_.crcTx ? m.crcPerByte * n : 0) +
                    m.nvmePduCost);
        enqueuePdu(buildDataPdu(wc_, kOpDataOut, dh, data,
                                /*fillDdgst=*/!ocfg_.crcTx));
        off += n;
    }
}

void
IscsiInitiator::enqueuePdu(Bytes pdu)
{
    SendEntry e;
    e.bytes = std::move(pdu);
    sendq_.push_back(std::move(e));
    flushSendQueue();
}

void
IscsiInitiator::flushSendQueue()
{
    while (!sendq_.empty()) {
        SendEntry &e = sendq_.front();
        if (!e.added && conn_ != nullptr && l5o_ != nullptr &&
            l5o_->txCtxId() != 0) {
            // All stream messages must be tracked when a tx context
            // exists, so framing recovery can cross any message.
            txMap_.add(conn_->sndNextByteSeq(),
                       static_cast<uint32_t>(e.bytes.size()), txMsgIdx_++,
                       e.bytes);
            e.added = true;
        }
        ByteView rest = ByteView(e.bytes).subspan(sendqOff_);
        size_t acc = sock_.send(rest);
        sendqOff_ += acc;
        if (sendqOff_ < e.bytes.size())
            return; // transport full; resume on writable
        sendq_.pop_front();
        sendqOff_ = 0;
    }
}

void
IscsiInitiator::onReadable()
{
    while (sock_.readable()) {
        tcp::RxSegment seg = sock_.pop();
        if (dead_) {
            (void)seg;
            continue;
        }
        assembler_.ingest(std::move(seg),
                          [this](IscsiRxPdu &&pdu) { onPdu(std::move(pdu)); });
        if (assembler_.error()) {
            // BHS framing lost: fatal transport error, fail every
            // outstanding task and go quiescent (impairment fuzzing
            // corrupts streams; never assert on wire content).
            dead_ = true;
            failAllOutstanding();
        }
    }
    checkPendingResync();
}

void
IscsiInitiator::failAllOutstanding()
{
    std::vector<uint32_t> itts;
    itts.reserve(tasks_.size());
    for (const auto &[itt, task] : tasks_)
        itts.push_back(itt);
    // Issue order, not hash order, for cross-process determinism.
    std::sort(itts.begin(), itts.end());
    for (uint32_t itt : itts) {
        auto it = tasks_.find(itt);
        if (it == tasks_.end())
            continue;
        it->second.failed = true;
        completeTask(itt, false);
    }
}

void
IscsiInitiator::onPdu(IscsiRxPdu &&pdu)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    core.charge(m.nvmePduCost);
    IscsiBhs bhs = parseBhs(pdu.bytes);

    // Digest verification: one decision covers both digests — the
    // NIC engine folds the header and data digest verdicts into the
    // same per-PDU outcome.
    bool skip = ocfg_.crcRx && pdu.digestFullyOffloaded();
    bool hdgst_ok = true;
    bool ddgst_ok = true;
    if (skip) {
        count(&IscsiInitiatorStats::digestSkipped);
    } else {
        count(&IscsiInitiatorStats::digestSoftware);
        if (wc_.headerDigest) {
            core.charge(m.crcPerByte * kBhsSize);
            hdgst_ok = verifyHdgst(wc_, pdu.bytes);
        }
        if (wc_.dataDigest && bhs.dsl > 0) {
            core.charge(m.crcPerByte * bhs.dsl);
            ddgst_ok = checkDataDigest(wc_, pdu, bhs.dsl);
        }
    }
    if (!hdgst_ok) {
        // The BHS (ITT, buffer offset) cannot be trusted: fatal
        // transport error, like a corrupted NVMe specific header.
        count(&IscsiInitiatorStats::digestFailures);
        dead_ = true;
        failAllOutstanding();
        return;
    }

    if (bhs.opcode == kOpDataIn) {
        count(&IscsiInitiatorStats::dataInPdus);
        auto it = tasks_.find(bhs.itt);
        if (it == tasks_.end())
            return; // stale / unknown task
        Task &task = it->second;
        auto [copied, placed] =
            copySegment(wc_, pdu, bhs.dsl, bhs.bufferOffset, *task.buffer);
        core.charge(m.copyPerByte(task.len) * static_cast<double>(copied));
        count(&IscsiInitiatorStats::bytesCopied, copied);
        count(&IscsiInitiatorStats::bytesPlaced, placed);
        if (!ddgst_ok) {
            task.failed = true;
            count(&IscsiInitiatorStats::digestFailures);
        }
        task.received += bhs.dsl;
        return;
    }

    if (bhs.opcode == kOpScsiResp) {
        completeTask(bhs.itt, bhs.status == 0);
        return;
    }
    // Initiators don't expect other opcodes.
}

void
IscsiInitiator::completeTask(uint32_t itt, bool ok)
{
    auto it = tasks_.find(itt);
    if (it == tasks_.end())
        return;
    Task task = std::move(it->second);
    tasks_.erase(it);

    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    if (ocfg_.copyRx && rxEngine_ != nullptr)
        rxEngine_->delRrState(itt); // l5o_del_rr_state

    bool success = ok && !task.failed &&
                   (task.scsiOp != kScsiRead || task.received == task.len);
    if (!success)
        count(&IscsiInitiatorStats::failures);
    if (task.scsiOp == kScsiRead) {
        count(&IscsiInitiatorStats::readsCompleted);
        if (task.readDone)
            task.readDone(success, std::move(task.buffer));
    } else {
        count(&IscsiInitiatorStats::writesCompleted);
        if (task.writeDone)
            task.writeDone(success);
    }
}

// ------------------------------------------------------------- resync

void
IscsiInitiator::checkPendingResync()
{
    if (!resyncPending_)
        return;
    uint64_t cur = assembler_.midPdu() ? assembler_.curPduStartOff()
                                       : assembler_.streamConsumed();
    bool ok;
    if (cur == resyncOff_) {
        ok = true;
    } else if (cur > resyncOff_) {
        ok = false;
    } else {
        return; // not there yet
    }
    resyncPending_ = false;
    if (ok)
        count(&IscsiInitiatorStats::resyncConfirmed);
    if (l5o_ != nullptr)
        l5o_->resyncRxResp(resyncSeq_, ok, assembler_.pdusDelivered());
}

std::optional<core::L5pCallbacks::TxMsgState>
IscsiInitiator::getTxMsgState(uint32_t tcpsn)
{
    const core::TxMsgTracker::Entry *e = txMap_.find(tcpsn);
    if (e == nullptr)
        return std::nullopt;
    TxMsgState st;
    st.msgStartSeq = e->startSeq;
    st.msgIdx = e->msgIdx;
    uint32_t n = tcpsn - e->startSeq;
    st.rebuild.assign(e->bytes.begin(), e->bytes.begin() + n);
    return st;
}

void
IscsiInitiator::resyncRxReq(uint32_t tcpsn)
{
    ANIC_ASSERT(conn_ != nullptr);
    count(&IscsiInitiatorStats::resyncRequests);
    resyncPending_ = true;
    resyncSeq_ = tcpsn;
    // Translate the sequence number into our stream-offset space.
    uint64_t consumed = assembler_.streamConsumed();
    int64_t delta = static_cast<int32_t>(
        tcpsn - conn_->seqOfRcvStreamOff(consumed));
    resyncOff_ = consumed + delta;
    checkPendingResync();
}

// -------------------------------------------------------------- target

IscsiTarget::IscsiTarget(tcp::StreamSocket &sock, host::NvmeDrive &drive,
                         IscsiWireConfig wc)
    : sock_(sock), drive_(drive), wc_(wc), assembler_(wc)
{
    sock_.setOnReadable([this] { onReadable(); });
    sock_.setOnWritable([this] { flush(); });
}

IscsiTarget::~IscsiTarget()
{
    if (l5o_ != nullptr)
        l5o_->destroy();
}

void
IscsiTarget::enableOffload(core::OffloadDevice &dev,
                           tcp::TcpConnection &conn, IscsiOffloadConfig ocfg)
{
    ANIC_ASSERT(l5o_ == nullptr);
    conn_ = &conn;
    ocfg_ = ocfg;
    if (!ocfg_.crcRx && !ocfg_.copyRx && !ocfg_.crcTx)
        return;

    IscsiStaticState st(wc_);
    unsigned dirs = ((ocfg_.crcRx || ocfg_.copyRx) ? core::kL5Rx : 0u) |
                    (ocfg_.crcTx ? core::kL5Tx : 0u);
    if (ocfg_.crcTx)
        conn.setOnAcked([this](uint32_t una) { txMap_.trimAcked(una); });
    l5o_ = dev.l5oCreate(conn, st, dirs, this);
    if (dirs & core::kL5Rx)
        rxEngine_ = static_cast<IscsiRxEngine *>(l5o_->rxEngine());
    if (ocfg_.crcTx)
        conn.setTxOffloadCtx(l5o_->txCtxId());
}

const nic::FsmStats *
IscsiTarget::rxFsmStats() const
{
    return l5o_ != nullptr ? l5o_->rxFsmStats() : nullptr;
}

void
IscsiTarget::onReadable()
{
    while (sock_.readable()) {
        tcp::RxSegment seg = sock_.pop();
        if (dead_) {
            (void)seg;
            continue;
        }
        assembler_.ingest(std::move(seg),
                          [this](IscsiRxPdu &&pdu) { onPdu(std::move(pdu)); });
        if (assembler_.error())
            dead_ = true; // fatal transport error; stop serving
    }
    checkPendingResync();
}

void
IscsiTarget::onPdu(IscsiRxPdu &&pdu)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    core.charge(m.nvmePduCost);
    IscsiBhs bhs = parseBhs(pdu.bytes);

    bool skip = ocfg_.crcRx && pdu.digestFullyOffloaded();
    bool hdgst_ok = true;
    bool ddgst_ok = true;
    if (skip) {
        stats_.digestSkipped++;
    } else {
        stats_.digestSoftware++;
        if (wc_.headerDigest) {
            core.charge(m.crcPerByte * kBhsSize);
            hdgst_ok = verifyHdgst(wc_, pdu.bytes);
        }
        if (wc_.dataDigest && bhs.dsl > 0) {
            core.charge(m.crcPerByte * bhs.dsl);
            ddgst_ok = checkDataDigest(wc_, pdu, bhs.dsl);
        }
    }
    if (!hdgst_ok) {
        stats_.digestFailures++;
        dead_ = true; // a corrupted BHS must not reach the task table
        return;
    }

    switch (bhs.opcode) {
      case kOpScsiCmd: {
        if (bhs.scsiOp == kScsiRead) {
            serveRead(bhs);
        } else {
            PendingWrite w;
            w.slba = bhs.slba;
            w.len = bhs.length;
            w.buffer = std::make_shared<host::BlockBuffer>(bhs.length);
            if (ocfg_.copyRx && rxEngine_ != nullptr && bhs.length > 0) {
                // Unsolicited Data-Out can arrive right behind the
                // command: register placement state immediately.
                rxEngine_->addRrState(bhs.itt, w.buffer);
            }
            writes_[bhs.itt] = std::move(w);
            if (bhs.length == 0)
                finishWrite(bhs.itt);
        }
        return;
      }
      case kOpDataOut:
        if (!ddgst_ok) {
            auto it = writes_.find(bhs.itt);
            if (it != writes_.end())
                it->second.digestOk = false;
            stats_.digestFailures++;
        }
        onDataOut(pdu, bhs);
        return;
      default:
        return; // targets ignore response-type opcodes
    }
}

void
IscsiTarget::onDataOut(IscsiRxPdu &pdu, const IscsiBhs &bhs)
{
    host::Core &core = sock_.core();
    const host::CycleModel &m = core.model();
    stats_.dataOutPdus++;

    auto it = writes_.find(bhs.itt);
    if (it == writes_.end())
        return; // stale / unknown task
    PendingWrite &w = it->second;

    auto [copied, placed] =
        copySegment(wc_, pdu, bhs.dsl, bhs.bufferOffset, *w.buffer);
    core.charge(m.copyPerByte(w.len) * static_cast<double>(copied));
    stats_.bytesCopied += copied;
    stats_.bytesPlaced += placed;

    w.received += bhs.dsl;
    if (w.received >= w.len)
        finishWrite(bhs.itt);
}

void
IscsiTarget::serveRead(const IscsiBhs &bhs)
{
    host::Core &core = sock_.core();
    core.charge(core.model().nvmeRequestCost / 2);

    drive_.read(bhs.slba, bhs.length, [this, bhs, &core](Bytes data) {
        core.post([this, itt = bhs.itt, data = std::move(data)] {
            host::Core &c = sock_.core();
            const host::CycleModel &m = c.model();
            stats_.readsServed++;
            stats_.bytesRead += data.size();

            size_t off = 0;
            while (off < data.size()) {
                size_t n = std::min(wc_.maxDataSegment, data.size() - off);
                IscsiBhs dh;
                dh.itt = itt;
                dh.bufferOffset = static_cast<uint32_t>(off);
                dh.flags = off + n >= data.size() ? kFlagFinal : 0;
                c.charge(m.copyPerByte(data.size()) * n +
                         (wc_.dataDigest && !ocfg_.crcTx ? m.crcPerByte * n
                                                         : 0) +
                         m.nvmePduCost);
                enqueue(buildDataPdu(wc_, kOpDataIn, dh,
                                     ByteView(data).subspan(off, n),
                                     /*fillDdgst=*/!ocfg_.crcTx));
                off += n;
            }
            IscsiBhs resp;
            resp.itt = itt;
            resp.status = 0;
            enqueue(buildScsiResp(wc_, resp));
        });
    });
}

void
IscsiTarget::finishWrite(uint32_t itt)
{
    auto it = writes_.find(itt);
    ANIC_ASSERT(it != writes_.end());
    PendingWrite w = std::move(it->second);
    writes_.erase(it);
    if (rxEngine_ != nullptr)
        rxEngine_->delRrState(itt); // l5o_del_rr_state

    drive_.write(w.slba, w.len,
                 [this, itt, len = w.len, digestOk = w.digestOk] {
        sock_.core().post([this, itt, len, digestOk] {
            stats_.writesServed++;
            stats_.bytesWritten += len;
            IscsiBhs resp;
            resp.itt = itt;
            resp.status = digestOk ? 0 : 1;
            enqueue(buildScsiResp(wc_, resp));
        });
    });
}

void
IscsiTarget::enqueue(Bytes pdu)
{
    SendEntry e;
    e.bytes = std::move(pdu);
    sendq_.push_back(std::move(e));
    flush();
}

void
IscsiTarget::flush()
{
    while (!sendq_.empty()) {
        SendEntry &e = sendq_.front();
        if (!e.added && conn_ != nullptr && l5o_ != nullptr &&
            l5o_->txCtxId() != 0) {
            txMap_.add(conn_->sndNextByteSeq(),
                       static_cast<uint32_t>(e.bytes.size()), txMsgIdx_++,
                       e.bytes);
            e.added = true;
        }
        ByteView rest = ByteView(e.bytes).subspan(sendqOff_);
        size_t acc = sock_.send(rest);
        sendqOff_ += acc;
        if (sendqOff_ < e.bytes.size())
            return;
        sendq_.pop_front();
        sendqOff_ = 0;
    }
}

// ------------------------------------------------------------- resync

void
IscsiTarget::checkPendingResync()
{
    if (!resyncPending_)
        return;
    uint64_t cur = assembler_.midPdu() ? assembler_.curPduStartOff()
                                       : assembler_.streamConsumed();
    bool ok;
    if (cur == resyncOff_) {
        ok = true;
    } else if (cur > resyncOff_) {
        ok = false;
    } else {
        return; // not there yet
    }
    resyncPending_ = false;
    if (ok)
        stats_.resyncConfirmed++;
    if (l5o_ != nullptr)
        l5o_->resyncRxResp(resyncSeq_, ok, assembler_.pdusDelivered());
}

std::optional<core::L5pCallbacks::TxMsgState>
IscsiTarget::getTxMsgState(uint32_t tcpsn)
{
    const core::TxMsgTracker::Entry *e = txMap_.find(tcpsn);
    if (e == nullptr)
        return std::nullopt;
    TxMsgState st;
    st.msgStartSeq = e->startSeq;
    st.msgIdx = e->msgIdx;
    uint32_t n = tcpsn - e->startSeq;
    st.rebuild.assign(e->bytes.begin(), e->bytes.begin() + n);
    return st;
}

void
IscsiTarget::resyncRxReq(uint32_t tcpsn)
{
    ANIC_ASSERT(conn_ != nullptr);
    stats_.resyncRequests++;
    resyncPending_ = true;
    resyncSeq_ = tcpsn;
    uint64_t consumed = assembler_.streamConsumed();
    int64_t delta = static_cast<int32_t>(
        tcpsn - conn_->seqOfRcvStreamOff(consumed));
    resyncOff_ = consumed + delta;
    checkPendingResync();
}

} // namespace anic::iscsi
