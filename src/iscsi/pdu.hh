/**
 * @file
 * iSCSI PDU wire format (RFC 7143, simplified but faithful where the
 * paper's §7 "other L5Ps" argument depends on it: fixed-size BHS,
 * CRC32C header and data digests, ITT-keyed solicited data).
 *
 * Every PDU starts with the 48-byte Basic Header Segment:
 *   [0]      opcode     (SCSI Cmd 0x01, Data-Out 0x05, SCSI Resp
 *                        0x21, Data-In 0x25)
 *   [1]      flags      (bit7 F/final; Cmd: bit6 R read, bit5 W write)
 *   [2..3]   reserved   (zero — part of the magic pattern)
 *   [4]      totalAhsLength (always zero here — no AHS)
 *   [5..7]   dataSegmentLength, 24-bit big-endian
 *   [8..15]  LUN
 *   [16..19] initiator task tag (ITT)
 *   [20..23] Cmd: expected data transfer length; Data-In/-Out: TTT
 *   [32..47] Cmd: CDB (simplified: scsiOp u8, slba u64 LE, len u32 LE)
 *            Resp: [32] status
 *   [40..43] Data-In/-Out: buffer offset
 *
 * After the BHS: optional 4-byte CRC32C HeaderDigest over [0, 48),
 * then the data segment, then (iff dataSegmentLength > 0) a 4-byte
 * CRC32C DataDigest over the segment. Simplifications, documented:
 * no AHS, and no 4-byte pad of the data segment — padding would only
 * obscure the offload mechanics the model exists to study.
 */

#ifndef ANIC_ISCSI_PDU_HH
#define ANIC_ISCSI_PDU_HH

#include <functional>
#include <optional>

#include "crypto/crc32c.hh"
#include "net/packet.hh"
#include "tcp/socket.hh"
#include "util/bytes.hh"

namespace anic::iscsi {

enum IscsiOpcode : uint8_t
{
    kOpScsiCmd = 0x01,
    kOpDataOut = 0x05,
    kOpScsiResp = 0x21,
    kOpDataIn = 0x25,
};

enum IscsiFlags : uint8_t
{
    kFlagFinal = 0x80,
    kFlagRead = 0x40,
    kFlagWrite = 0x20,
};

enum ScsiOp : uint8_t
{
    kScsiRead = 0x28,  // READ(10)
    kScsiWrite = 0x2a, // WRITE(10)
};

constexpr size_t kBhsSize = 48;
constexpr size_t kDigestSize = 4;

/** Session-wide wire options (negotiated at login in real iSCSI). */
struct IscsiWireConfig
{
    bool headerDigest = true;
    bool dataDigest = true;
    size_t maxDataSegment = 128 << 10; // MaxRecvDataSegmentLength

    size_t hdgstLen() const { return headerDigest ? kDigestSize : 0; }
    size_t ddgstLen() const { return dataDigest ? kDigestSize : 0; }

    /** Total wire length of a PDU with @p dsl data-segment bytes. */
    size_t
    pduLen(size_t dsl) const
    {
        return kBhsSize + hdgstLen() + dsl + (dsl > 0 ? ddgstLen() : 0);
    }
};

/** Decoded BHS (superset of all four opcodes' fields). */
struct IscsiBhs
{
    uint8_t opcode = 0;
    uint8_t flags = 0;
    uint32_t dsl = 0; ///< data segment length
    uint64_t lun = 0;
    uint32_t itt = 0;
    uint32_t edtl = 0;         ///< Cmd: expected data transfer length
    uint32_t bufferOffset = 0; ///< Data-In/-Out
    uint8_t scsiOp = 0;        ///< Cmd CDB
    uint64_t slba = 0;         ///< Cmd CDB
    uint32_t length = 0;       ///< Cmd CDB
    uint8_t status = 0;        ///< Resp
};

/**
 * Parses + validates the first 8 bytes of a BHS: known opcode, zero
 * reserved bytes, bounded data segment. This is the iSCSI analogue
 * of the NVMe common-header magic pattern — enough to frame the PDU.
 * Returns the full wire length (BHS + digests + data) on success.
 */
std::optional<uint64_t> parseBhsPrefix(const IscsiWireConfig &wc,
                                       ByteView h, size_t maxDsl);

/** Decodes a complete 48-byte BHS (no validation beyond size). */
IscsiBhs parseBhs(ByteView pdu);

/** Builders. All fill the header digest; the data digest of data
 *  PDUs is filled iff @p fillDdgst (dummy zeros otherwise, for the
 *  NIC tx engine to fill in-stream). */
Bytes buildScsiCmd(const IscsiWireConfig &wc, const IscsiBhs &bhs);
Bytes buildScsiResp(const IscsiWireConfig &wc, const IscsiBhs &bhs);
Bytes buildDataPdu(const IscsiWireConfig &wc, uint8_t opcode,
                   const IscsiBhs &bhs, ByteView data, bool fillDdgst);

/** Verifies the header digest (true when absent by config). */
bool verifyHdgst(const IscsiWireConfig &wc, ByteView pdu);

/** One contiguous chunk of a reassembled PDU with its rx-offload
 *  verdicts (mirrors nvmetcp::PduSlice). */
struct IscsiPduSlice
{
    uint64_t pduOff = 0;
    size_t len = 0;
    bool digestChecked = false;
    bool digestOk = false;
    std::vector<net::PlacedRange> placed; ///< PDU-relative
};

/** A reassembled PDU plus per-chunk offload metadata. */
struct IscsiRxPdu
{
    Bytes bytes;
    uint64_t wireLen = 0;
    std::vector<IscsiPduSlice> slices;

    /** True iff every chunk was digest-checked by the NIC and none
     *  failed — software may skip both digests. */
    bool
    digestFullyOffloaded() const
    {
        if (slices.empty())
            return false;
        for (const IscsiPduSlice &s : slices)
            if (!s.digestChecked || !s.digestOk)
                return false;
        return true;
    }
};

/**
 * Streams TCP segments into complete PDUs, preserving per-chunk
 * offload metadata. Framing loss (invalid BHS prefix) sets error().
 */
class IscsiAssembler
{
  public:
    explicit IscsiAssembler(const IscsiWireConfig &wc,
                            size_t maxDsl = 2 << 20)
        : wc_(wc), maxDsl_(maxDsl)
    {
    }

    void ingest(const tcp::RxSegment &seg,
                std::function<void(IscsiRxPdu &&)> sink);

    bool error() const { return error_; }
    uint64_t curPduStartOff() const { return pduStartOff_; }
    uint64_t streamConsumed() const { return consumed_; }
    bool midPdu() const { return have_ > 0; }

    /** PDUs fully delivered; echoed on resync confirmation so the
     *  NIC renumbers messages consistently with software. */
    uint64_t pdusDelivered() const { return pduIdx_; }

  private:
    IscsiWireConfig wc_;
    size_t maxDsl_;
    IscsiRxPdu cur_;
    Bytes hdr8_;
    bool hdrComplete_ = false;
    size_t have_ = 0;
    uint64_t pduStartOff_ = 0;
    uint64_t consumed_ = 0;
    uint64_t pduIdx_ = 0;
    bool error_ = false;
};

} // namespace anic::iscsi

#endif // ANIC_ISCSI_PDU_HH
