#include "iscsi/iscsi_engine.hh"

#include <cstring>

#include "util/panic.hh"

namespace anic::iscsi {

namespace {

uint32_t
getBe24(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 16) |
           (static_cast<uint32_t>(p[1]) << 8) | p[2];
}

/** One-time registration of the iSCSI engine factories: linking this
 *  module and constructing an IscsiStaticState is all it takes — the
 *  driver core and the stream FSM contain no iSCSI-specific code. */
void
ensureIscsiRegistered()
{
    static const bool once = [] {
        core::L5ProtocolOps ops;
        ops.makeRx = [](const core::L5StaticState &st)
            -> std::unique_ptr<nic::L5Engine> {
            const auto &is = static_cast<const IscsiStaticState &>(st);
            return std::make_unique<IscsiRxEngine>(is.wire());
        };
        ops.makeTx = [](const core::L5StaticState &st)
            -> std::unique_ptr<nic::L5Engine> {
            const auto &is = static_cast<const IscsiStaticState &>(st);
            return std::make_unique<IscsiTxEngine>(is.wire());
        };
        core::registerL5Protocol(net::L5Kind::Iscsi, ops);
        return true;
    }();
    (void)once;
}

} // namespace

IscsiStaticState::IscsiStaticState(const IscsiWireConfig &wc) : wc_(wc)
{
    ensureIscsiRegistered();
}

// ------------------------------------------------------------- receive

void
IscsiRxEngine::beginPdu(ByteView hdr)
{
    std::optional<uint64_t> wire_len = parseBhsPrefix(wc_, hdr, 2 << 20);
    ANIC_ASSERT(wire_len.has_value(), "beginPdu on invalid BHS");
    opcode_ = hdr[0];
    dsl_ = getBe24(hdr.data() + 5);
    isDataPdu_ = opcode_ == kOpDataIn || opcode_ == kOpDataOut;
    dataEnd_ = kBhsSize + wc_.hdgstLen() + dsl_;
    subHdr_.clear();
    subHdrHave_ = 0;
    subHdrValid_ = false;
    subHdrDead_ = false;
    placeTarget_ = nullptr;
    hdrCrc_.reset();
    hdrCrc_.update(ByteView(hdr.data(), 8));
    hdgstHave_ = 0;
    hdrCovered_ = true;
    dataCrc_.reset();
    ddgstHave_ = 0;
}

void
IscsiRxEngine::parseSubHdr()
{
    // subHdr_ holds BHS bytes [8, 48).
    itt_ = static_cast<uint32_t>(getLe32(subHdr_.data() + 8));
    bufferOffset_ = static_cast<uint32_t>(getLe32(subHdr_.data() + 32));
    if (isDataPdu_) {
        auto it = rrState_.find(itt_);
        placeTarget_ = it != rrState_.end() ? it->second : nullptr;
    }
    subHdrValid_ = true;
}

void
IscsiRxEngine::onMsgStart(uint64_t msgIdx, ByteView hdr)
{
    beginPdu(hdr);
    curMsgIdx_ = msgIdx;
    haveMsgIdx_ = true;
    crcValid_ = true;
}

void
IscsiRxEngine::onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off)
{
    // Same identity rule as the NVMe engine: the message index names
    // the PDU, but the index is seeded by software on resync
    // confirmation, so the FSM-provided header must also match the
    // cached one before per-PDU state is trusted.
    std::optional<uint64_t> wire_len = parseBhsPrefix(wc_, hdr, 2 << 20);
    bool same_pdu = haveMsgIdx_ && msgIdx == curMsgIdx_ && subHdrValid_ &&
                    wire_len.has_value() && hdr[0] == opcode_ &&
                    getBe24(hdr.data() + 5) == dsl_;
    if (!same_pdu) {
        beginPdu(hdr);
        if (off > 8) {
            // BHS bytes before the resume point will never be seen:
            // no ITT (placement impossible) and no header digest.
            subHdrDead_ = true;
            hdrCovered_ = false;
        }
        curMsgIdx_ = msgIdx;
        haveMsgIdx_ = true;
    }
    crcValid_ = false;
}

void
IscsiRxEngine::onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                         nic::PacketResult &res)
{
    if (dryRun)
        return;
    const uint64_t pdo = kBhsSize + wc_.hdgstLen();

    size_t i = 0;
    while (i < data.size()) {
        uint64_t pos = off + i;
        if (pos < kBhsSize) {
            // BHS bytes [8, 48).
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(kBhsSize - pos, data.size() - i));
            size_t idx = static_cast<size_t>(pos - 8);
            if (subHdr_.size() < kBhsSize - 8)
                subHdr_.resize(kBhsSize - 8);
            std::memcpy(subHdr_.data() + idx, data.data() + i, n);
            subHdrHave_ += n;
            if (!subHdrDead_) {
                hdrCrc_.update(ByteView(data.data() + i, n));
                if (wc_.headerDigest)
                    count(&nic::EngineStats::bytesChecked, n);
            }
            if (subHdrHave_ >= kBhsSize - 8 && !subHdrValid_ &&
                !subHdrDead_) {
                parseSubHdr();
            }
            i += n;
        } else if (pos < pdo) {
            // Header digest bytes.
            size_t tail_off = static_cast<size_t>(pos - kBhsSize);
            size_t n = std::min(kDigestSize - tail_off, data.size() - i);
            std::memcpy(hdgstBuf_ + tail_off, data.data() + i, n);
            hdgstHave_ = tail_off + n;
            i += n;
        } else if (pos < dataEnd_) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(dataEnd_ - pos, data.size() - i));
            ByteView chunk(data.data() + i, n);
            if (wc_.dataDigest) {
                dataCrc_.update(chunk);
                count(&nic::EngineStats::bytesChecked, n);
            }
            if (placeTarget_ && subHdrValid_) {
                // DMA-write straight into the task's buffer at its
                // BufferOffset (the NVMe Figure 9 path, ITT-keyed).
                uint64_t dst = bufferOffset_ + (pos - pdo);
                if (dst + n <= placeTarget_->data.size()) {
                    std::memcpy(placeTarget_->data.data() + dst,
                                chunk.data(), n);
                    res.placed.push_back(net::PlacedRange{
                        res.spanPktOff + static_cast<uint32_t>(i),
                        static_cast<uint32_t>(n)});
                    bytesPlaced_ += n;
                    count(&nic::EngineStats::bytesPlaced, n);
                }
            }
            i += n;
        } else {
            // Data digest trailer; clamp against framing
            // disagreement exactly like the NVMe engine.
            size_t tail_off = static_cast<size_t>(pos - dataEnd_);
            if (tail_off >= kDigestSize) {
                crcValid_ = false;
                break;
            }
            size_t n = std::min(kDigestSize - tail_off, data.size() - i);
            std::memcpy(ddgstBuf_ + tail_off, data.data() + i, n);
            ddgstHave_ = tail_off + n;
            i += n;
        }
    }
}

void
IscsiRxEngine::onMsgEnd(bool covered, nic::PacketResult &res)
{
    bool data_digest = isDataPdu_ && wc_.dataDigest && dsl_ > 0;
    if (!wc_.headerDigest && !data_digest)
        return; // nothing to verify on this PDU
    bool incomplete = !covered || !crcValid_;
    if (wc_.headerDigest && (!hdrCovered_ || hdgstHave_ < kDigestSize))
        incomplete = true;
    if (data_digest && ddgstHave_ < kDigestSize)
        incomplete = true;
    if (incomplete) {
        res.setVerify(net::L5Kind::Iscsi, net::VerifyOutcome::Incomplete);
        return;
    }
    bool ok = true;
    if (wc_.headerDigest &&
        hdrCrc_.value() != static_cast<uint32_t>(getLe32(hdgstBuf_)))
        ok = false;
    if (data_digest &&
        dataCrc_.value() != static_cast<uint32_t>(getLe32(ddgstBuf_)))
        ok = false;
    if (ok) {
        res.setVerify(net::L5Kind::Iscsi, net::VerifyOutcome::Ok);
        count(&nic::EngineStats::verifiedOk);
    } else {
        res.setVerify(net::L5Kind::Iscsi, net::VerifyOutcome::Failed);
        count(&nic::EngineStats::verifyFailures);
    }
}

void
IscsiRxEngine::onMsgAbort()
{
    crcValid_ = false;
}

// ------------------------------------------------------------ transmit

void
IscsiTxEngine::onMsgStart(uint64_t msgIdx, ByteView hdr)
{
    (void)msgIdx;
    std::optional<uint64_t> wire_len = parseBhsPrefix(wc_, hdr, 2 << 20);
    ANIC_ASSERT(wire_len.has_value());
    isDataPdu_ = hdr[0] == kOpDataIn || hdr[0] == kOpDataOut;
    dsl_ = getBe24(hdr.data() + 5);
    dataEnd_ = kBhsSize + wc_.hdgstLen() + dsl_;
    crc_.reset();
    ddgstReady_ = false;
}

void
IscsiTxEngine::onMsgResume(uint64_t, ByteView, uint64_t)
{
    panic("iSCSI tx contexts are recovered via driver resync");
}

void
IscsiTxEngine::onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                         nic::PacketResult &res)
{
    (void)res;
    if (dryRun || !isDataPdu_ || !wc_.dataDigest || dsl_ == 0)
        return;
    const uint64_t pdo = kBhsSize + wc_.hdgstLen();

    size_t i = 0;
    while (i < data.size()) {
        uint64_t pos = off + i;
        if (pos < pdo) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(pdo - pos, data.size() - i));
            i += n;
        } else if (pos < dataEnd_) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(dataEnd_ - pos, data.size() - i));
            crc_.update(ByteView(data.data() + i, n));
            count(&nic::EngineStats::bytesChecked, n);
            i += n;
        } else {
            // Replace the dummy digest with the computed CRC.
            if (!ddgstReady_) {
                putLe32(ddgst_, crc_.value());
                ddgstReady_ = true;
            }
            size_t tail_off = static_cast<size_t>(pos - dataEnd_);
            if (tail_off >= kDigestSize)
                break; // framing disagreement; never write past plen
            size_t n = std::min(kDigestSize - tail_off, data.size() - i);
            std::memcpy(data.data() + i, ddgst_ + tail_off, n);
            i += n;
        }
    }
}

void
IscsiTxEngine::onMsgEnd(bool covered, nic::PacketResult &res)
{
    (void)covered;
    (void)res;
}

} // namespace anic::iscsi
