/**
 * @file
 * NIC-side iSCSI engines — the third autonomous L5P offload, bound
 * through the same protocol-agnostic l5o_create path as TLS and
 * NVMe-TCP (paper §7: the architecture "is not limited to the three
 * offloads we present").
 *
 * IscsiRxEngine:
 *  - CRC32C verification of both digests: the header digest over the
 *    48-byte BHS and the data digest over the data segment, reported
 *    through the per-kind verify outcome slot;
 *  - zero-copy placement: an ITT -> block-buffer map (l5o_add_rr_state
 *    analogue) lets the NIC place Data-In/Data-Out segments at their
 *    BufferOffset directly.
 *  Like the NVMe engine, placement resumes mid-message once the BHS
 *  (ITT + BufferOffset) has been seen; digests of partially covered
 *  PDUs are reported unchecked so software falls back.
 *
 * IscsiTxEngine: fills the data digest of outgoing data PDUs from a
 * running CRC (software sends dummy digest fields). Header digests
 * stay in software — 48 bytes, same rationale as NVMe.
 */

#ifndef ANIC_ISCSI_ISCSI_ENGINE_HH
#define ANIC_ISCSI_ISCSI_ENGINE_HH

#include <unordered_map>

#include "core/l5o.hh"
#include "host/storage.hh"
#include "iscsi/pdu.hh"
#include "nic/stream_fsm.hh"

namespace anic::iscsi {

/** Which offloads a session requests from the NIC. */
struct IscsiOffloadConfig
{
    bool crcRx = false;
    bool copyRx = false;
    bool crcTx = false;
};

/**
 * iSCSI static offload state for the unified l5o_create binding.
 * Constructing one registers the iSCSI engine factories — the driver
 * and stream FSM need no iSCSI-specific code at all.
 */
class IscsiStaticState : public core::L5StaticState
{
  public:
    explicit IscsiStaticState(const IscsiWireConfig &wc);

    net::L5Kind kind() const override { return net::L5Kind::Iscsi; }
    const IscsiWireConfig &wire() const { return wc_; }

  private:
    IscsiWireConfig wc_;
};

/** Common framing for both directions. */
class IscsiEngineBase : public nic::L5Engine
{
  public:
    explicit IscsiEngineBase(const IscsiWireConfig &wc) : wc_(wc) {}

    net::L5Kind kind() const override { return net::L5Kind::Iscsi; }
    size_t headerSize() const override { return 8; }

    std::optional<nic::MsgInfo>
    parseHeader(ByteView hdr) const override
    {
        std::optional<uint64_t> len = parseBhsPrefix(wc_, hdr, 2 << 20);
        if (!len)
            return std::nullopt;
        return nic::MsgInfo{*len};
    }

  protected:
    IscsiWireConfig wc_;
};

/** Receive engine: header+data digest verify + ITT placement. */
class IscsiRxEngine : public IscsiEngineBase
{
  public:
    explicit IscsiRxEngine(const IscsiWireConfig &wc) : IscsiEngineBase(wc)
    {
    }

    /** l5o_add_rr_state: maps a pending task's ITT to its buffer. */
    void
    addRrState(uint32_t itt, host::BlockBufferPtr buf)
    {
        rrState_[itt] = std::move(buf);
    }

    /** l5o_del_rr_state. */
    void delRrState(uint32_t itt) { rrState_.erase(itt); }

    size_t rrStateSize() const { return rrState_.size(); }

    bool resumeMidMessage() const override { return true; }

    void onMsgStart(uint64_t msgIdx, ByteView hdr) override;
    void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                   nic::PacketResult &res) override;
    void onMsgEnd(bool covered, nic::PacketResult &res) override;
    void onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off) override;
    void onMsgAbort() override;

    uint64_t bytesPlaced() const { return bytesPlaced_; }

  private:
    void beginPdu(ByteView hdr);
    void parseSubHdr();

    std::unordered_map<uint32_t, host::BlockBufferPtr> rrState_;

    // Per-PDU dynamic state (constant size, as §3.2 requires).
    uint8_t opcode_ = 0;
    uint32_t dsl_ = 0;
    uint64_t dataEnd_ = 0;       ///< message offset one past the data
    bool isDataPdu_ = false;
    Bytes subHdr_;               ///< BHS bytes [8, 48)
    size_t subHdrHave_ = 0;
    bool subHdrValid_ = false;
    bool subHdrDead_ = false;    ///< resumed past the BHS: no identity
    uint32_t itt_ = 0;
    uint32_t bufferOffset_ = 0;
    host::BlockBufferPtr placeTarget_;
    crypto::Crc32c hdrCrc_;      ///< over BHS [0, 48)
    uint8_t hdgstBuf_[kDigestSize] = {};
    size_t hdgstHave_ = 0;
    bool hdrCovered_ = false;    ///< saw the BHS from its first byte
    crypto::Crc32c dataCrc_;
    uint8_t ddgstBuf_[kDigestSize] = {};
    size_t ddgstHave_ = 0;
    bool crcValid_ = false;      ///< no gap since this PDU started
    uint64_t curMsgIdx_ = 0;
    bool haveMsgIdx_ = false;
    uint64_t bytesPlaced_ = 0;
};

/** Transmit engine: fills data digests of outgoing data PDUs. */
class IscsiTxEngine : public IscsiEngineBase
{
  public:
    explicit IscsiTxEngine(const IscsiWireConfig &wc) : IscsiEngineBase(wc)
    {
    }

    bool resumeMidMessage() const override { return false; }

    void onMsgStart(uint64_t msgIdx, ByteView hdr) override;
    void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                   nic::PacketResult &res) override;
    void onMsgEnd(bool covered, nic::PacketResult &res) override;
    void onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off) override;
    void onMsgAbort() override {}

  private:
    bool isDataPdu_ = false;
    uint32_t dsl_ = 0;
    uint64_t dataEnd_ = 0;
    crypto::Crc32c crc_;
    uint8_t ddgst_[kDigestSize] = {};
    bool ddgstReady_ = false;
};

} // namespace anic::iscsi

#endif // ANIC_ISCSI_ISCSI_ENGINE_HH
