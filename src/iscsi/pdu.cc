#include "iscsi/pdu.hh"

#include <cstring>

#include "util/panic.hh"

namespace anic::iscsi {

namespace {

uint32_t
getBe24(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 16) |
           (static_cast<uint32_t>(p[1]) << 8) | p[2];
}

void
putBe24(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v >> 16);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v);
}

bool
knownOpcode(uint8_t op)
{
    return op == kOpScsiCmd || op == kOpDataOut || op == kOpScsiResp ||
           op == kOpDataIn;
}

/** Allocates a PDU and fills the BHS common fields + header digest
 *  placeholder (the digest itself is filled after opcode-specific
 *  fields are written). */
Bytes
makePdu(const IscsiWireConfig &wc, uint8_t opcode, uint8_t flags,
        uint32_t dsl)
{
    Bytes out(wc.pduLen(dsl));
    out[0] = opcode;
    out[1] = flags;
    // [2..4] stay zero: reserved + totalAhsLength (magic pattern).
    putBe24(out.data() + 5, dsl);
    return out;
}

void
fillHdgst(const IscsiWireConfig &wc, Bytes &pdu)
{
    if (!wc.headerDigest)
        return;
    uint32_t crc = crypto::Crc32c::compute(ByteView(pdu.data(), kBhsSize));
    putLe32(pdu.data() + kBhsSize, crc);
}

} // namespace

std::optional<uint64_t>
parseBhsPrefix(const IscsiWireConfig &wc, ByteView h, size_t maxDsl)
{
    if (h.size() < 8)
        return std::nullopt;
    if (!knownOpcode(h[0]))
        return std::nullopt;
    if (h[2] != 0 || h[3] != 0 || h[4] != 0)
        return std::nullopt; // reserved bytes + TotalAHSLength
    uint32_t dsl = getBe24(h.data() + 5);
    if (dsl > maxDsl)
        return std::nullopt;
    // Data-less opcodes never carry a segment; a nonzero DSL on a
    // response would break the digest layout.
    if ((h[0] == kOpScsiCmd || h[0] == kOpScsiResp) && dsl != 0)
        return std::nullopt;
    return wc.pduLen(dsl);
}

IscsiBhs
parseBhs(ByteView pdu)
{
    ANIC_ASSERT(pdu.size() >= kBhsSize);
    IscsiBhs b;
    b.opcode = pdu[0];
    b.flags = pdu[1];
    b.dsl = getBe24(pdu.data() + 5);
    b.lun = getLe(pdu.data() + 8, 8);
    b.itt = static_cast<uint32_t>(getLe32(pdu.data() + 16));
    b.edtl = static_cast<uint32_t>(getLe32(pdu.data() + 20));
    b.bufferOffset = static_cast<uint32_t>(getLe32(pdu.data() + 40));
    b.scsiOp = pdu[32];
    b.slba = getLe(pdu.data() + 33, 8);
    b.length = static_cast<uint32_t>(getLe32(pdu.data() + 41));
    b.status = pdu[32];
    return b;
}

Bytes
buildScsiCmd(const IscsiWireConfig &wc, const IscsiBhs &bhs)
{
    uint8_t flags = kFlagFinal |
                    (bhs.scsiOp == kScsiRead ? kFlagRead : kFlagWrite);
    Bytes pdu = makePdu(wc, kOpScsiCmd, flags, 0);
    putLe(pdu.data() + 8, bhs.lun, 8);
    putLe32(pdu.data() + 16, bhs.itt);
    putLe32(pdu.data() + 20, bhs.edtl);
    pdu[32] = bhs.scsiOp;
    putLe(pdu.data() + 33, bhs.slba, 8);
    putLe32(pdu.data() + 41, bhs.length);
    fillHdgst(wc, pdu);
    return pdu;
}

Bytes
buildScsiResp(const IscsiWireConfig &wc, const IscsiBhs &bhs)
{
    Bytes pdu = makePdu(wc, kOpScsiResp, kFlagFinal, 0);
    putLe(pdu.data() + 8, bhs.lun, 8);
    putLe32(pdu.data() + 16, bhs.itt);
    pdu[32] = bhs.status;
    fillHdgst(wc, pdu);
    return pdu;
}

Bytes
buildDataPdu(const IscsiWireConfig &wc, uint8_t opcode, const IscsiBhs &bhs,
             ByteView data, bool fillDdgst)
{
    ANIC_ASSERT(opcode == kOpDataIn || opcode == kOpDataOut);
    Bytes pdu =
        makePdu(wc, opcode, bhs.flags, static_cast<uint32_t>(data.size()));
    putLe(pdu.data() + 8, bhs.lun, 8);
    putLe32(pdu.data() + 16, bhs.itt);
    putLe32(pdu.data() + 40, bhs.bufferOffset);
    fillHdgst(wc, pdu);
    size_t data_off = kBhsSize + wc.hdgstLen();
    std::memcpy(pdu.data() + data_off, data.data(), data.size());
    if (wc.dataDigest && !data.empty() && fillDdgst) {
        uint32_t crc = crypto::Crc32c::compute(data);
        putLe32(pdu.data() + data_off + data.size(), crc);
    }
    return pdu;
}

bool
verifyHdgst(const IscsiWireConfig &wc, ByteView pdu)
{
    if (!wc.headerDigest)
        return true;
    uint32_t crc = crypto::Crc32c::compute(ByteView(pdu.data(), kBhsSize));
    return crc == static_cast<uint32_t>(getLe32(pdu.data() + kBhsSize));
}

void
IscsiAssembler::ingest(const tcp::RxSegment &seg,
                       std::function<void(IscsiRxPdu &&)> sink)
{
    size_t off = 0;
    const size_t n = seg.data.size();
    while (off < n && !error_) {
        if (!hdrComplete_) {
            if (hdr8_.empty() && have_ == 0)
                pduStartOff_ = seg.streamOff + off;
            size_t need = 8 - hdr8_.size();
            size_t take = std::min(need, n - off);
            hdr8_.insert(hdr8_.end(), seg.data.begin() + off,
                         seg.data.begin() + off + take);
            off += take;
            have_ += take;
            consumed_ = seg.streamOff + off;
            if (hdr8_.size() < 8)
                break;
            std::optional<uint64_t> wire_len =
                parseBhsPrefix(wc_, hdr8_, maxDsl_);
            if (!wire_len) {
                error_ = true;
                return;
            }
            cur_.wireLen = *wire_len;
            cur_.bytes.resize(*wire_len);
            std::memcpy(cur_.bytes.data(), hdr8_.data(), 8);
            cur_.slices.clear();
            hdrComplete_ = true;
            continue;
        }

        size_t want = static_cast<size_t>(cur_.wireLen) - have_;
        size_t take = std::min(want, n - off);
        std::memcpy(cur_.bytes.data() + have_, seg.data.data() + off, take);

        IscsiPduSlice slice;
        slice.pduOff = have_;
        slice.len = take;
        net::VerifyOutcome v = seg.meta.verifyOf(net::L5Kind::Iscsi);
        slice.digestChecked =
            seg.meta.offloaded && v != net::VerifyOutcome::Incomplete;
        slice.digestOk =
            slice.digestChecked && v != net::VerifyOutcome::Failed;
        for (const net::PlacedRange &r : seg.meta.placed) {
            uint64_t s = std::max<uint64_t>(r.payloadOff, off);
            uint64_t e = std::min<uint64_t>(r.payloadOff + r.len, off + take);
            if (s < e) {
                slice.placed.push_back(net::PlacedRange{
                    static_cast<uint32_t>(have_ + (s - off)),
                    static_cast<uint32_t>(e - s)});
            }
        }
        cur_.slices.push_back(std::move(slice));

        have_ += take;
        off += take;
        consumed_ = seg.streamOff + off;
        if (have_ == cur_.wireLen) {
            IscsiRxPdu done = std::move(cur_);
            cur_ = IscsiRxPdu{};
            hdr8_.clear();
            hdrComplete_ = false;
            have_ = 0;
            pduIdx_++;
            sink(std::move(done));
        }
    }
}

} // namespace anic::iscsi
