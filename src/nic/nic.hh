/**
 * @file
 * The NIC device model.
 *
 * Models the data-path properties the paper's evaluation depends on:
 *  - line-rate serialization (100 Gbps ConnectX6-Dx class),
 *  - a bounded transmit ring with BQL-style backpressure,
 *  - per-flow offload contexts living in a finite on-NIC cache
 *    (~4 MiB / 208 B per flow => ~20K flows) with a pluggable
 *    eviction policy (LRU default; see nic/cache_policy.hh) and
 *    PCIe fetch/writeback costs on miss (Figure 19),
 *  - PCIe bandwidth accounting, including the context-recovery reads
 *    for transmit-side resynchronization (Figure 16b),
 *  - the receive-side autonomous offload pipeline (StreamFsm +
 *    engines) and the transmit-side in-sequence offload processing
 *    with driver-initiated recovery.
 *
 * Everything above layer 2 stays in software: the NIC never sees TCP
 * state beyond the per-context expected sequence number.
 */

#ifndef ANIC_NIC_NIC_HH
#define ANIC_NIC_NIC_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/toeplitz.hh"
#include "nic/cache_policy.hh"
#include "nic/stream_fsm.hh"
#include "sim/registry.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "util/flat_map.hh"
#include "util/slab.hh"

namespace anic::nic {

/** PCIe byte counters by category (drives Figure 16b). */
struct PcieStats
{
    sim::Counter rxDataBytes;      ///< packet DMA writes to host
    sim::Counter txDataBytes;      ///< packet DMA reads from host
    sim::Counter descriptorBytes;  ///< descriptor traffic
    sim::Counter ctxFetchBytes;    ///< context cache misses
    sim::Counter ctxWritebackBytes;///< context evictions
    sim::Counter ctxRecoveryBytes; ///< tx resync re-reads of message data

    uint64_t
    total() const
    {
        return rxDataBytes + txDataBytes + descriptorBytes + ctxFetchBytes +
               ctxWritebackBytes + ctxRecoveryBytes;
    }
};

/** NIC-level counters (aggregate roll-up over every queue). */
struct NicStats
{
    sim::Counter pktsTx;
    sim::Counter pktsRx;
    sim::Counter bytesTx;
    sim::Counter bytesRx;
    sim::Counter ctxCacheHits;
    sim::Counter ctxCacheMisses;
    sim::Counter ctxCacheEvictions;
    sim::Counter rxOffloadedPkts;
    sim::Counter txOffloadedPkts;
    sim::Counter txResyncs;
    sim::Counter irqsFired;     ///< completion interrupts delivered
    sim::Counter coalescedPkts; ///< completions that rode an earlier irq
};

/** Per-queue counters, published as nic.qN.* with the NicStats
 *  aggregate as the roll-up. */
struct QueueStats
{
    sim::Counter txPkts;        ///< packets sent from this tx ring
    sim::Counter rxPkts;        ///< packets steered to this rx queue
    sim::Counter compIrqs;      ///< completion interrupts fired
    sim::Counter coalescedPkts; ///< completions beyond the first per irq
    sim::Counter ctxHits;       ///< context-cache hits on this queue
    sim::Counter ctxMisses;     ///< context-cache misses on this queue
    sim::Counter evictions;     ///< contexts this queue's misses pushed out
};

/**
 * One direction's offload context: the paper's per-flow HW state
 * (expected tcp sequence, message position/index, L5P state inside
 * the engine).
 */
class FlowContext
{
  public:
    FlowContext(uint64_t id, std::unique_ptr<L5Engine> engine,
                std::function<void(uint64_t reqId, uint32_t tcpSeq)> resyncReq);

    uint64_t id() const { return id_; }
    L5Engine &engine() { return *engine_; }
    StreamFsm &fsm() { return fsm_; }
    const StreamFsm &fsm() const { return fsm_; }

    /** Arms the context at TCP sequence @p tcpsn, message @p msgIdx. */
    void arm(uint32_t tcpsn, uint64_t msgIdx);

    /** Maps a TCP sequence number onto the 64-bit stream position. */
    uint64_t posOf(uint32_t seq) const;

    /** Translates a stream position back to a TCP sequence number. */
    uint32_t seqOf(uint64_t pos) const;

    /** Re-anchors the mapping as the stream advances. */
    void advanceTo(uint32_t seq);

  private:
    uint64_t id_;
    std::unique_ptr<L5Engine> engine_;
    std::function<void(uint64_t, uint32_t)> resyncReq_;
    StreamFsm fsm_;
    uint32_t baseSeq_ = 0;
    uint64_t basePos_ = 0;
};

/**
 * The NIC. Attaches to one link port; the driver (src/core) sits on
 * top and implements tcp::NetDevice with it.
 */
class Nic
{
  public:
    struct Config
    {
        double gbps = 100.0;
        size_t txRingSize = 4096; ///< per tx queue
        sim::Tick rxLatency = 1500 * sim::kNanosecond;
        sim::Tick txLatency = 1000 * sim::kNanosecond;

        /**
         * TX/RX queue pairs. 0 = auto: the driver (Node::attachPort)
         * resolves it to the host's core count so every core owns a
         * pair; bare Nic construction resolves 0 to 1. With one queue
         * the data path is identical to the pre-multi-queue NIC.
         */
        int numQueues = 0;
        /** RSS indirection table entries (filled round-robin). */
        size_t rssTableSize = 128;
        /**
         * Interrupt coalescing: fire the completion interrupt once
         * @p coalescePkts completions are pending, or @p coalesceDelay
         * after the first pending completion, whichever comes first.
         * The default (1 pkt, no delay) interrupts per packet, which
         * keeps the cycle-model calibration of the pre-coalescing
         * driver path (see CycleModel::interruptCost).
         */
        uint32_t coalescePkts = 1;
        sim::Tick coalesceDelay = 0;

        /** Flow-context cache: 4 MiB at 208 B/flow ~ 20K flows. */
        size_t ctxCacheCapacity = 20000;
        size_t ctxBytes = 208;
        sim::Tick ctxFetchLatency = 600 * sim::kNanosecond;
        /** Context-cache eviction policy; Auto resolves against
         *  ANIC_CTX_POLICY and defaults to exact LRU (the original
         *  model — byte-identical to the pre-policy NIC). */
        CtxPolicy ctxPolicy = CtxPolicy::Auto;

        /** PCIe gen3 x16 usable bandwidth (~126 Gbps). */
        double pcieGbps = 126.0;

        size_t descriptorBytes = 32;

        /** Stable instance name for the stats registry ("srv.nic0");
         *  empty -> a unique "nic", "nic2", ... is chosen. */
        std::string name;
        /** Registry to publish under; null -> StatsRegistry::global(). */
        sim::StatsRegistry *registry = nullptr;
        /** Trace ring for evict/resync events and per-flow FSM
         *  transitions; null -> TraceRing::global(). */
        sim::TraceRing *trace = nullptr;
        /** Optional invariant probe installed on every per-flow FSM
         *  (fuzz harness / tests); null -> no probing. */
        FsmProbe *fsmProbe = nullptr;
    };

    Nic(sim::Simulator &sim, net::Link &link, int port, Config cfg);

    // ------------------------------------------------ driver: data
    /** One interrupt's worth of rx completions. */
    using RxBatch = std::vector<net::PacketPtr>;

    /**
     * Queues a packet on the tx ring its flow hashes to (XPS-style:
     * the same Toeplitz hash as rx steering, so a flow's tx queue
     * pairs with its rx queue and per-flow descriptor order is
     * preserved across rings). Returns false if that ring is full.
     */
    bool transmit(net::PacketPtr pkt);

    /** Same, onto an explicit tx queue. */
    bool transmit(net::PacketPtr pkt, int queue);

    void setOnTxSpace(std::function<void()> cb) { onTxSpace_ = std::move(cb); }

    /**
     * Driver receive entry: one call per completion interrupt, with
     * every packet the interrupt covers (already includes NIC rx
     * processing). The driver should hand the emptied vector back via
     * recycleRxBatch() to keep the steady state allocation-free.
     */
    void setOnRxInterrupt(std::function<void(int queue, RxBatch pkts)> cb)
    {
        onRxInterrupt_ = std::move(cb);
    }

    /** Returns an emptied completion vector to the NIC's free list. */
    void
    recycleRxBatch(RxBatch &&v)
    {
        v.clear();
        rxVecFree_.push_back(std::move(v));
    }

    /** Number of TX/RX queue pairs (resolved, >= 1). */
    int queueCount() const { return static_cast<int>(queues_.size()); }

    /** RSS steering: the rx queue packets of @p wireFlow land on
     *  (flow as seen on arriving packets: src = remote peer). */
    int rxQueueFor(const net::FlowKey &wireFlow) const;

    /** Per-queue counters (nic.qN.* in the registry). */
    const QueueStats &queueStats(int queue) const
    {
        return queues_[static_cast<size_t>(queue)]->stats;
    }

    // ------------------------------------------- driver: contexts
    /**
     * Installs a receive-side offload context for @p flow (the flow
     * key as seen on arriving packets: src = remote peer). Returns
     * the context id used in descriptors and upcalls.
     */
    uint64_t createRxContext(const net::FlowKey &flow,
                             std::unique_ptr<L5Engine> engine,
                             uint32_t tcpsn, uint64_t msgIdx);

    /** Installs a transmit-side context, keyed by l5o context id that
     *  the stack tags outgoing packets with. */
    uint64_t createTxContext(std::unique_ptr<L5Engine> engine, uint32_t tcpsn,
                             uint64_t msgIdx);

    void destroyRxContext(uint64_t id);
    void destroyTxContext(uint64_t id);

    /** HW->SW: the NIC asks software to confirm a speculated header
     *  (l5o_resync_rx_req path). */
    void setOnResyncRequest(
        std::function<void(uint64_t ctxId, uint64_t reqId, uint32_t tcpSeq)> cb)
    {
        onResyncRequest_ = std::move(cb);
    }

    /** SW->HW: l5o_resync_rx_resp. @p msgIdx is the message index at
     *  the confirmed sequence number. */
    void rxResyncResponse(uint64_t ctxId, uint64_t reqId, bool ok,
                          uint64_t msgIdx);

    /**
     * SW->HW: transmit context recovery. Placed into the flow's send
     * ring as a special descriptor so it is processed in order with
     * the data descriptors around it ("offload-related commands are
     * passed to the NIC via special descriptors, which are placed
     * into the flow's usual send ring to ensure ordering"). The NIC
     * DMA-reads @p rebuild (the message bytes from the message start
     * up to @p tcpsn) to reconstruct the engine state, then expects
     * the next data descriptor at @p tcpsn.
     */
    void postTxResync(uint64_t ctxId, uint32_t tcpsn, uint64_t msgIdx,
                      ByteView rebuild, int queue = 0);

    /** The tx ring an outgoing packet of @p txFlow (src = us) rides:
     *  its rx queue's pair, so resync descriptors and data stay
     *  ordered per flow. */
    int
    txQueueFor(const net::FlowKey &txFlow) const
    {
        return queues_.size() == 1 ? 0 : rxQueueFor(txFlow.reversed());
    }

    /** Engine access for protocol-specific driver commands
     *  (l5o_add_rr_state: NVMe CID -> buffer map updates). */
    L5Engine *rxEngine(uint64_t ctxId);
    L5Engine *txEngine(uint64_t ctxId);

    /** Expected transmit sequence of a tx context (driver shadow). */
    uint32_t txExpectedSeq(uint64_t ctxId) const;

    // ------------------------------------------------------ stats
    const NicStats &stats() const { return stats_; }
    const PcieStats &pcie() const { return pcie_; }
    const Config &config() const { return cfg_; }

    /** The live replacement policy (resolved from Config/env). */
    const CachePolicy &ctxCache() const { return *cache_; }

    /** Host heap behind the flow tables: context slab + the three
     *  flat indexes (feeds bytes/flow in bench_flowscale). */
    size_t
    ctxTableHeapBytes() const
    {
        return ctxArena_.heapBytes() + rxByFlow_.heapBytes() +
               rxById_.heapBytes() + txById_.heapBytes();
    }

    const FsmStats *rxFsmStats(uint64_t ctxId) const;

    /** Roll-up of every per-flow FSM on this NIC (rx and tx). */
    const FsmStats &fsmStats() const { return fsmAgg_; }
    /** Roll-up of every engine's work counters on this NIC. */
    const EngineStatsBank &engineStats() const { return engineAgg_; }
    /** Per-state dwell time (ns per visit) across all flows. */
    const sim::Distribution &fsmDwellNs(FsmState s) const
    {
        return fsmDwellNs_[static_cast<int>(s)];
    }

    /** Registry instance name ("nic", "srv.nic0", ...). */
    const std::string &name() const { return name_; }

    /** PCIe utilization over [since, now] given byte delta. */
    double
    pcieUtilization(uint64_t bytesDelta, sim::Tick window) const
    {
        if (window == 0)
            return 0.0;
        double gbps = static_cast<double>(bytesDelta) * 8.0 /
                      sim::ticksToSeconds(window) / 1e9;
        return gbps / cfg_.pcieGbps;
    }

  private:
    struct TxCtx
    {
        util::SlabHandle ctx;
        uint32_t expectedSeq = 0;
    };

    struct TxResyncCmd
    {
        uint64_t ctxId = 0;
        uint32_t tcpsn = 0;
        uint64_t msgIdx = 0;
        Bytes rebuild;
    };

    struct TxEntry
    {
        net::PacketPtr pkt;                  // data descriptor, or
        std::unique_ptr<TxResyncCmd> resync; // special descriptor
    };

    /** Rx handoffs due at one tick, drained by one event. The queue
     *  index travels alongside each packet (parallel vectors) so the
     *  flush can route to per-queue completion queues without
     *  rehashing. */
    struct RxPending
    {
        sim::Tick due = 0;
        std::vector<net::PacketPtr> pkts;
        std::vector<int> queues;
    };

    /** One TX/RX queue pair with its MSI-X completion state. */
    struct QueueState
    {
        std::deque<TxEntry> txRing;
        RxBatch comp;            ///< completions pending interrupt
        uint64_t irqGen = 0;     ///< invalidates stale coalesce timers
        bool timerArmed = false;
        QueueStats stats;
        sim::StatsScope scope;
    };

    void applyTxResync(const TxResyncCmd &cmd);
    void pumpTx();
    void drainOne();
    void onWire(net::PacketPtr pkt);
    void flushRx(sim::Tick due);
    void deliverToQueue(int queue, net::PacketPtr pkt);
    void fireIrq(int queue);
    void onIrqTimer(int queue, uint64_t gen);
    RxBatch takeFreeVec();
    sim::Tick touchContext(uint64_t ctxId, QueueStats *qs = nullptr);
    void onCtxEvict(uint64_t ctxId);
    void processTxOffload(net::Packet &pkt, QueueStats &qs);
    void processRxOffload(net::Packet &pkt, FlowContext &ctx);
    void installFsmHooks(FlowContext &ctx);
    void linkInstruments();

    sim::Simulator &sim_;
    net::Link &link_;
    int port_;
    Config cfg_;

    // Queue pairs: unique_ptr for stable addresses (StatsScope links
    // point into QueueStats).
    std::vector<std::unique_ptr<QueueState>> queues_;
    std::vector<uint16_t> rssTable_;
    const net::Toeplitz *rss_ = nullptr;
    int rrNext_ = 0;          ///< round-robin tx arbitration cursor
    size_t txPendingTotal_ = 0;
    bool txPumping_ = false;
    sim::Tick lineFreeAt_ = 0;

    std::vector<RxPending> rxPending_;
    std::vector<RxPending> rxPendingFree_;
    std::vector<RxBatch> rxVecFree_;

    std::function<void()> onTxSpace_;
    std::function<void(int, RxBatch)> onRxInterrupt_;
    std::function<void(uint64_t, uint64_t, uint32_t)> onResyncRequest_;

    uint64_t nextCtxId_ = 1;
    // Flow contexts live in one slab arena (stable addresses — the
    // FSM closure captures its FlowContext) and every index stores
    // the 8-byte handle by value, so the flat tables stay pointer-
    // and allocation-free under churn.
    util::SlabArena<FlowContext> ctxArena_;
    util::FlatMap<net::FlowKey, util::SlabHandle, net::FlowKeyHash>
        rxByFlow_;
    // Reverse index carries the flow key so destroy is O(1) instead
    // of a scan over every installed flow.
    struct RxRef
    {
        util::SlabHandle ctx;
        net::FlowKey flow;
    };
    util::FlatMap<uint64_t, RxRef> rxById_;
    util::FlatMap<uint64_t, TxCtx> txById_;

    // Replacement policy over resident context ids (rx and tx both).
    std::unique_ptr<CachePolicy> cache_;
    QueueStats *evictQs_ = nullptr; ///< queue charged during insert()

    NicStats stats_;
    PcieStats pcie_;

    // Observability: per-flow FSMs roll up here so the registry stays
    // bounded at any flow count (the ROADMAP's millions-of-flows goal).
    std::string name_;
    sim::StatsScope scope_;
    sim::TraceRing *trace_ = nullptr;
    FsmStats fsmAgg_;
    EngineStatsBank engineAgg_;
    sim::Distribution fsmDwellNs_[kFsmStateCount];
};

} // namespace anic::nic

#endif // ANIC_NIC_NIC_HH
