/**
 * @file
 * The NIC device model.
 *
 * Models the data-path properties the paper's evaluation depends on:
 *  - line-rate serialization (100 Gbps ConnectX6-Dx class),
 *  - a bounded transmit ring with BQL-style backpressure,
 *  - per-flow offload contexts living in a finite on-NIC cache
 *    (~4 MiB / 208 B per flow => ~20K flows) with LRU eviction and
 *    PCIe fetch/writeback costs on miss (Figure 19),
 *  - PCIe bandwidth accounting, including the context-recovery reads
 *    for transmit-side resynchronization (Figure 16b),
 *  - the receive-side autonomous offload pipeline (StreamFsm +
 *    engines) and the transmit-side in-sequence offload processing
 *    with driver-initiated recovery.
 *
 * Everything above layer 2 stays in software: the NIC never sees TCP
 * state beyond the per-context expected sequence number.
 */

#ifndef ANIC_NIC_NIC_HH
#define ANIC_NIC_NIC_HH

#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/link.hh"
#include "nic/stream_fsm.hh"
#include "sim/registry.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"

namespace anic::nic {

/** PCIe byte counters by category (drives Figure 16b). */
struct PcieStats
{
    sim::Counter rxDataBytes;      ///< packet DMA writes to host
    sim::Counter txDataBytes;      ///< packet DMA reads from host
    sim::Counter descriptorBytes;  ///< descriptor traffic
    sim::Counter ctxFetchBytes;    ///< context cache misses
    sim::Counter ctxWritebackBytes;///< context evictions
    sim::Counter ctxRecoveryBytes; ///< tx resync re-reads of message data

    uint64_t
    total() const
    {
        return rxDataBytes + txDataBytes + descriptorBytes + ctxFetchBytes +
               ctxWritebackBytes + ctxRecoveryBytes;
    }
};

/** NIC-level counters. */
struct NicStats
{
    sim::Counter pktsTx;
    sim::Counter pktsRx;
    sim::Counter bytesTx;
    sim::Counter bytesRx;
    sim::Counter ctxCacheHits;
    sim::Counter ctxCacheMisses;
    sim::Counter ctxCacheEvictions;
    sim::Counter rxOffloadedPkts;
    sim::Counter txOffloadedPkts;
    sim::Counter txResyncs;
};

/**
 * One direction's offload context: the paper's per-flow HW state
 * (expected tcp sequence, message position/index, L5P state inside
 * the engine).
 */
class FlowContext
{
  public:
    FlowContext(uint64_t id, std::unique_ptr<L5Engine> engine,
                std::function<void(uint64_t reqId, uint32_t tcpSeq)> resyncReq);

    uint64_t id() const { return id_; }
    L5Engine &engine() { return *engine_; }
    StreamFsm &fsm() { return fsm_; }

    /** Arms the context at TCP sequence @p tcpsn, message @p msgIdx. */
    void arm(uint32_t tcpsn, uint64_t msgIdx);

    /** Maps a TCP sequence number onto the 64-bit stream position. */
    uint64_t posOf(uint32_t seq) const;

    /** Translates a stream position back to a TCP sequence number. */
    uint32_t seqOf(uint64_t pos) const;

    /** Re-anchors the mapping as the stream advances. */
    void advanceTo(uint32_t seq);

  private:
    uint64_t id_;
    std::unique_ptr<L5Engine> engine_;
    std::function<void(uint64_t, uint32_t)> resyncReq_;
    StreamFsm fsm_;
    uint32_t baseSeq_ = 0;
    uint64_t basePos_ = 0;
};

/**
 * The NIC. Attaches to one link port; the driver (src/core) sits on
 * top and implements tcp::NetDevice with it.
 */
class Nic
{
  public:
    struct Config
    {
        double gbps = 100.0;
        size_t txRingSize = 4096;
        sim::Tick rxLatency = 1500 * sim::kNanosecond;
        sim::Tick txLatency = 1000 * sim::kNanosecond;

        /** Flow-context cache: 4 MiB at 208 B/flow ~ 20K flows. */
        size_t ctxCacheCapacity = 20000;
        size_t ctxBytes = 208;
        sim::Tick ctxFetchLatency = 600 * sim::kNanosecond;

        /** PCIe gen3 x16 usable bandwidth (~126 Gbps). */
        double pcieGbps = 126.0;

        size_t descriptorBytes = 32;

        /** Stable instance name for the stats registry ("srv.nic0");
         *  empty -> a unique "nic", "nic2", ... is chosen. */
        std::string name;
        /** Registry to publish under; null -> StatsRegistry::global(). */
        sim::StatsRegistry *registry = nullptr;
        /** Trace ring for evict/resync events and per-flow FSM
         *  transitions; null -> TraceRing::global(). */
        sim::TraceRing *trace = nullptr;
        /** Optional invariant probe installed on every per-flow FSM
         *  (fuzz harness / tests); null -> no probing. */
        FsmProbe *fsmProbe = nullptr;
    };

    Nic(sim::Simulator &sim, net::Link &link, int port, Config cfg);

    // ------------------------------------------------ driver: data
    /** Queues a packet; false if the tx ring is full. */
    bool transmit(net::PacketPtr pkt);

    void setOnTxSpace(std::function<void()> cb) { onTxSpace_ = std::move(cb); }

    /** Driver receive entry (already includes NIC rx processing). */
    void setOnReceive(std::function<void(net::PacketPtr)> cb) { onReceive_ = std::move(cb); }

    // ------------------------------------------- driver: contexts
    /**
     * Installs a receive-side offload context for @p flow (the flow
     * key as seen on arriving packets: src = remote peer). Returns
     * the context id used in descriptors and upcalls.
     */
    uint64_t createRxContext(const net::FlowKey &flow,
                             std::unique_ptr<L5Engine> engine,
                             uint32_t tcpsn, uint64_t msgIdx);

    /** Installs a transmit-side context, keyed by l5o context id that
     *  the stack tags outgoing packets with. */
    uint64_t createTxContext(std::unique_ptr<L5Engine> engine, uint32_t tcpsn,
                             uint64_t msgIdx);

    void destroyRxContext(uint64_t id);
    void destroyTxContext(uint64_t id);

    /** HW->SW: the NIC asks software to confirm a speculated header
     *  (l5o_resync_rx_req path). */
    void setOnResyncRequest(
        std::function<void(uint64_t ctxId, uint64_t reqId, uint32_t tcpSeq)> cb)
    {
        onResyncRequest_ = std::move(cb);
    }

    /** SW->HW: l5o_resync_rx_resp. @p msgIdx is the message index at
     *  the confirmed sequence number. */
    void rxResyncResponse(uint64_t ctxId, uint64_t reqId, bool ok,
                          uint64_t msgIdx);

    /**
     * SW->HW: transmit context recovery. Placed into the flow's send
     * ring as a special descriptor so it is processed in order with
     * the data descriptors around it ("offload-related commands are
     * passed to the NIC via special descriptors, which are placed
     * into the flow's usual send ring to ensure ordering"). The NIC
     * DMA-reads @p rebuild (the message bytes from the message start
     * up to @p tcpsn) to reconstruct the engine state, then expects
     * the next data descriptor at @p tcpsn.
     */
    void postTxResync(uint64_t ctxId, uint32_t tcpsn, uint64_t msgIdx,
                      ByteView rebuild);

    /** Engine access for protocol-specific driver commands
     *  (l5o_add_rr_state: NVMe CID -> buffer map updates). */
    L5Engine *rxEngine(uint64_t ctxId);
    L5Engine *txEngine(uint64_t ctxId);

    /** Expected transmit sequence of a tx context (driver shadow). */
    uint32_t txExpectedSeq(uint64_t ctxId) const;

    // ------------------------------------------------------ stats
    const NicStats &stats() const { return stats_; }
    const PcieStats &pcie() const { return pcie_; }
    const Config &config() const { return cfg_; }
    const FsmStats *rxFsmStats(uint64_t ctxId) const;

    /** Roll-up of every per-flow FSM on this NIC (rx and tx). */
    const FsmStats &fsmStats() const { return fsmAgg_; }
    /** Roll-up of every engine's work counters on this NIC. */
    const EngineStats &engineStats() const { return engineAgg_; }
    /** Per-state dwell time (ns per visit) across all flows. */
    const sim::Distribution &fsmDwellNs(FsmState s) const
    {
        return fsmDwellNs_[static_cast<int>(s)];
    }

    /** Registry instance name ("nic", "srv.nic0", ...). */
    const std::string &name() const { return name_; }

    /** PCIe utilization over [since, now] given byte delta. */
    double
    pcieUtilization(uint64_t bytesDelta, sim::Tick window) const
    {
        if (window == 0)
            return 0.0;
        double gbps = static_cast<double>(bytesDelta) * 8.0 /
                      sim::ticksToSeconds(window) / 1e9;
        return gbps / cfg_.pcieGbps;
    }

  private:
    struct TxCtx
    {
        std::unique_ptr<FlowContext> ctx;
        uint32_t expectedSeq = 0;
    };

    struct TxResyncCmd
    {
        uint64_t ctxId = 0;
        uint32_t tcpsn = 0;
        uint64_t msgIdx = 0;
        Bytes rebuild;
    };

    struct TxEntry
    {
        net::PacketPtr pkt;                  // data descriptor, or
        std::unique_ptr<TxResyncCmd> resync; // special descriptor
    };

    /** Rx handoffs due at one tick, drained by one event. */
    struct RxBatch
    {
        sim::Tick due = 0;
        std::vector<net::PacketPtr> pkts;
    };

    void applyTxResync(const TxResyncCmd &cmd);
    void pumpTx();
    void drainOne();
    void onWire(net::PacketPtr pkt);
    void flushRx(sim::Tick due);
    sim::Tick touchContext(uint64_t ctxId);
    void processTxOffload(net::Packet &pkt);
    void processRxOffload(net::Packet &pkt);
    void installFsmHooks(FlowContext &ctx);
    void linkInstruments();

    sim::Simulator &sim_;
    net::Link &link_;
    int port_;
    Config cfg_;

    std::deque<TxEntry> txq_;
    bool txPumping_ = false;
    sim::Tick lineFreeAt_ = 0;

    std::vector<RxBatch> rxPending_;
    std::vector<std::vector<net::PacketPtr>> rxBatchFree_;

    std::function<void()> onTxSpace_;
    std::function<void(net::PacketPtr)> onReceive_;
    std::function<void(uint64_t, uint64_t, uint32_t)> onResyncRequest_;

    uint64_t nextCtxId_ = 1;
    std::unordered_map<net::FlowKey, std::unique_ptr<FlowContext>,
                       net::FlowKeyHash>
        rxByFlow_;
    // Reverse index carries the flow key so destroy is O(1) instead
    // of a scan over every installed flow.
    struct RxRef
    {
        FlowContext *ctx;
        net::FlowKey flow;
    };
    std::unordered_map<uint64_t, RxRef> rxById_;
    std::unordered_map<uint64_t, TxCtx> txById_;

    // LRU context cache (ids of both rx and tx contexts).
    std::list<uint64_t> cacheLru_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> cacheMap_;

    NicStats stats_;
    PcieStats pcie_;

    // Observability: per-flow FSMs roll up here so the registry stays
    // bounded at any flow count (the ROADMAP's millions-of-flows goal).
    std::string name_;
    sim::StatsScope scope_;
    sim::TraceRing *trace_ = nullptr;
    FsmStats fsmAgg_;
    EngineStats engineAgg_;
    sim::Distribution fsmDwellNs_[kFsmStateCount];
};

} // namespace anic::nic

#endif // ANIC_NIC_NIC_HH
