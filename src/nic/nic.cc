#include "nic/nic.hh"

#include <utility>

#include "util/panic.hh"
#include "util/rand.hh"

namespace anic::nic {

// ------------------------------------------------------------ FlowContext

FlowContext::FlowContext(
    uint64_t id, std::unique_ptr<L5Engine> engine,
    std::function<void(uint64_t reqId, uint32_t tcpSeq)> resyncReq)
    : id_(id),
      engine_(std::move(engine)),
      resyncReq_(std::move(resyncReq)),
      fsm_(*engine_, [this](uint64_t reqId, uint64_t pos) {
          if (resyncReq_)
              resyncReq_(reqId, seqOf(pos));
      })
{
}

void
FlowContext::arm(uint32_t tcpsn, uint64_t msgIdx)
{
    baseSeq_ = tcpsn;
    basePos_ = tcpsn; // start the 64-bit space at the sequence value
    fsm_.reset(basePos_, msgIdx);
    engine_->onRearm();
}

uint64_t
FlowContext::posOf(uint32_t seq) const
{
    return basePos_ + static_cast<int64_t>(static_cast<int32_t>(seq - baseSeq_));
}

uint32_t
FlowContext::seqOf(uint64_t pos) const
{
    return baseSeq_ + static_cast<uint32_t>(pos - basePos_);
}

void
FlowContext::advanceTo(uint32_t seq)
{
    basePos_ = posOf(seq);
    baseSeq_ = seq;
}

// -------------------------------------------------------------------- Nic

Nic::Nic(sim::Simulator &sim, net::Link &link, int port, Config cfg)
    : sim_(sim), link_(link), port_(port), cfg_(cfg)
{
    sim::StatsRegistry &reg =
        cfg_.registry != nullptr ? *cfg_.registry : sim::StatsRegistry::global();
    name_ = reg.uniqueName(cfg_.name.empty() ? "nic" : cfg_.name);
    scope_ = sim::StatsScope(reg, name_);
    trace_ = cfg_.trace != nullptr ? cfg_.trace : &sim::TraceRing::global();

    // 0 = auto; the driver resolves it to the host core count before
    // construction (Node::attachPort), bare construction gets 1.
    if (cfg_.numQueues <= 0)
        cfg_.numQueues = 1;
    if (cfg_.coalescePkts == 0)
        cfg_.coalescePkts = 1;
    if (cfg_.rssTableSize == 0)
        cfg_.rssTableSize = 1;
    cfg_.ctxPolicy = resolveCtxPolicy(cfg_.ctxPolicy);
    cache_ = CachePolicy::make(cfg_.ctxPolicy, cfg_.ctxCacheCapacity,
                               [this](uint64_t id) { onCtxEvict(id); });
    rss_ = &net::Toeplitz::standard();
    queues_.reserve(static_cast<size_t>(cfg_.numQueues));
    for (int i = 0; i < cfg_.numQueues; i++) {
        auto q = std::make_unique<QueueState>();
        q->scope = scope_.child("q" + std::to_string(i));
        q->scope.link("txPkts", q->stats.txPkts);
        q->scope.link("rxPkts", q->stats.rxPkts);
        q->scope.link("compIrqs", q->stats.compIrqs);
        q->scope.link("coalescedPkts", q->stats.coalescedPkts);
        q->scope.link("ctxHits", q->stats.ctxHits);
        q->scope.link("ctxMisses", q->stats.ctxMisses);
        // q.evictions is exposed via queueStats() only: linking it
        // would add a field to every registry snapshot and break
        // byte-compatibility of existing bench output.
        queues_.push_back(std::move(q));
    }
    // Balanced fill, then a fixed-seed shuffle. The shuffle matters:
    // Toeplitz is XOR-linear, so flows on consecutive ephemeral ports
    // hash to slots whose low bits span a tiny GF(2) subspace — with
    // a plain round-robin fill (slot % queues) eight neighbouring
    // ports can collapse onto two queues. Decorrelating slot index
    // from queue keeps the per-slot balance exact while restoring the
    // spread a driver-programmed indirection table would have.
    rssTable_.resize(cfg_.rssTableSize);
    for (size_t i = 0; i < rssTable_.size(); i++)
        rssTable_[i] = static_cast<uint16_t>(i % queues_.size());
    Rng shuffleRng(0x52535321); // "RSS!" — same table every run
    for (size_t i = rssTable_.size(); i > 1; i--)
        std::swap(rssTable_[i - 1], rssTable_[shuffleRng.next() % i]);

    linkInstruments();
    link_.attach(port, [this](net::PacketPtr pkt) { onWire(std::move(pkt)); });
}

void
Nic::linkInstruments()
{
    scope_.link("pktsTx", stats_.pktsTx);
    scope_.link("pktsRx", stats_.pktsRx);
    scope_.link("bytesTx", stats_.bytesTx);
    scope_.link("bytesRx", stats_.bytesRx);
    scope_.link("ctxCacheHits", stats_.ctxCacheHits);
    scope_.link("ctxCacheMisses", stats_.ctxCacheMisses);
    scope_.link("ctxCacheEvictions", stats_.ctxCacheEvictions);
    scope_.link("rxOffloadedPkts", stats_.rxOffloadedPkts);
    scope_.link("txOffloadedPkts", stats_.txOffloadedPkts);
    scope_.link("txResyncs", stats_.txResyncs);
    scope_.link("irqsFired", stats_.irqsFired);
    scope_.link("coalescedPkts", stats_.coalescedPkts);

    scope_.link("pcie.rxDataBytes", pcie_.rxDataBytes);
    scope_.link("pcie.txDataBytes", pcie_.txDataBytes);
    scope_.link("pcie.descriptorBytes", pcie_.descriptorBytes);
    scope_.link("pcie.ctxFetchBytes", pcie_.ctxFetchBytes);
    scope_.link("pcie.ctxWritebackBytes", pcie_.ctxWritebackBytes);
    scope_.link("pcie.ctxRecoveryBytes", pcie_.ctxRecoveryBytes);

    scope_.link("fsm.msgsCompleted", fsmAgg_.msgsCompleted);
    scope_.link("fsm.msgsCovered", fsmAgg_.msgsCovered);
    scope_.link("fsm.msgsAborted", fsmAgg_.msgsAborted);
    scope_.link("fsm.resyncRequests", fsmAgg_.resyncRequests);
    scope_.link("fsm.resyncConfirmed", fsmAgg_.resyncConfirmed);
    scope_.link("fsm.resyncRefuted", fsmAgg_.resyncRefuted);
    scope_.link("fsm.trackFailures", fsmAgg_.trackFailures);
    scope_.link("fsm.desyncs", fsmAgg_.desyncs);
    scope_.link("fsm.gapEvents", fsmAgg_.gapEvents);
    scope_.link("fsm.bypassedSpans", fsmAgg_.bypassedSpans);
    scope_.link("fsm.midMsgResumes", fsmAgg_.midMsgResumes);
    scope_.link("fsm.dwellOffloadingNs",
                fsmDwellNs_[static_cast<int>(FsmState::Offloading)]);
    scope_.link("fsm.dwellSearchingNs",
                fsmDwellNs_[static_cast<int>(FsmState::Searching)]);
    scope_.link("fsm.dwellTrackingNs",
                fsmDwellNs_[static_cast<int>(FsmState::Tracking)]);

    // Aggregate engine work plus one scope per engine kind. The
    // legacy aggregate names (tagsVerified/crcFailures/...) stay
    // linked as roll-ups of the corresponding kind banks so existing
    // snapshot consumers keep parsing.
    scope_.link("engine.bytesTransformed", engineAgg_.total.bytesTransformed);
    scope_.link("engine.bytesChecked", engineAgg_.total.bytesChecked);
    scope_.link("engine.bytesPlaced", engineAgg_.total.bytesPlaced);
    scope_.link("engine.verifiedOk", engineAgg_.total.verifiedOk);
    scope_.link("engine.verifyFailures", engineAgg_.total.verifyFailures);
    scope_.link("engine.tagsVerified",
                engineAgg_.kind[static_cast<size_t>(net::L5Kind::Tls)]
                    .verifiedOk);
    scope_.link("engine.tagFailures",
                engineAgg_.kind[static_cast<size_t>(net::L5Kind::Tls)]
                    .verifyFailures);
    scope_.link("engine.crcsVerified",
                engineAgg_.kind[static_cast<size_t>(net::L5Kind::Nvme)]
                    .verifiedOk);
    scope_.link("engine.crcFailures",
                engineAgg_.kind[static_cast<size_t>(net::L5Kind::Nvme)]
                    .verifyFailures);
    for (size_t k = 1; k < net::kL5KindCount; k++) {
        std::string stem = "engine.";
        stem += net::l5KindName(static_cast<net::L5Kind>(k));
        EngineStats &es = engineAgg_.kind[k];
        scope_.link(stem + ".bytesTransformed", es.bytesTransformed);
        scope_.link(stem + ".bytesChecked", es.bytesChecked);
        scope_.link(stem + ".bytesPlaced", es.bytesPlaced);
        scope_.link(stem + ".verifiedOk", es.verifiedOk);
        scope_.link(stem + ".verifyFailures", es.verifyFailures);
    }
}

void
Nic::installFsmHooks(FlowContext &ctx)
{
    FsmHooks hooks;
    hooks.now = [this] { return sim_.now(); };
    hooks.aggregate = &fsmAgg_;
    for (int i = 0; i < kFsmStateCount; i++)
        hooks.dwellNs[i] = &fsmDwellNs_[i];
    hooks.trace = trace_;
    hooks.traceId = ctx.id();
    hooks.probe = cfg_.fsmProbe;
    hooks.name = name_ + ".fsm";
    ctx.fsm().setHooks(std::move(hooks));
    ctx.engine().setStats(&engineAgg_);
}

// ------------------------------------------------------------- transmit

bool
Nic::transmit(net::PacketPtr pkt)
{
    int queue =
        queues_.size() == 1 ? 0 : rxQueueFor(pkt->flow().reversed());
    return transmit(std::move(pkt), queue);
}

bool
Nic::transmit(net::PacketPtr pkt, int queue)
{
    QueueState &q = *queues_[static_cast<size_t>(queue)];
    if (q.txRing.size() >= cfg_.txRingSize)
        return false;
    pcie_.txDataBytes += pkt->bytes.size();
    pcie_.descriptorBytes += cfg_.descriptorBytes;
    q.txRing.push_back(TxEntry{std::move(pkt), nullptr});
    txPendingTotal_++;
    pumpTx();
    return true;
}

void
Nic::postTxResync(uint64_t ctxId, uint32_t tcpsn, uint64_t msgIdx,
                  ByteView rebuild, int queue)
{
    auto cmd = std::make_unique<TxResyncCmd>();
    cmd->ctxId = ctxId;
    cmd->tcpsn = tcpsn;
    cmd->msgIdx = msgIdx;
    cmd->rebuild.assign(rebuild.begin(), rebuild.end());
    pcie_.descriptorBytes += cfg_.descriptorBytes;
    // Special descriptors ride the same ring as the flow's data so
    // ordering with surrounding packets is preserved.
    queues_[static_cast<size_t>(queue)]->txRing.push_back(
        TxEntry{nullptr, std::move(cmd)});
    txPendingTotal_++;
    pumpTx();
}

void
Nic::pumpTx()
{
    if (txPumping_ || txPendingTotal_ == 0)
        return;
    txPumping_ = true;
    sim::Tick start = std::max(sim_.now() + cfg_.txLatency, lineFreeAt_);
    sim_.scheduleAt(start, [this] { drainOne(); });
}

void
Nic::drainOne()
{
    txPumping_ = false;
    // Round-robin arbitration over the tx rings: one packet per grant,
    // starting after the ring served last. With one queue this is the
    // single-ring FIFO drain of the pre-multi-queue NIC.
    const int n = queueCount();
    QueueState *qs = nullptr;
    int qi = rrNext_;
    for (int scanned = 0; scanned < n; scanned++, qi = (qi + 1) % n) {
        QueueState &q = *queues_[static_cast<size_t>(qi)];
        // Apply special descriptors preceding this ring's next packet.
        while (!q.txRing.empty() && q.txRing.front().resync != nullptr) {
            applyTxResync(*q.txRing.front().resync);
            q.txRing.pop_front();
            txPendingTotal_--;
        }
        if (!q.txRing.empty()) {
            qs = &q;
            break;
        }
    }
    if (qs == nullptr)
        return;
    rrNext_ = (qi + 1) % n;

    net::PacketPtr pkt = std::move(qs->txRing.front().pkt);
    qs->txRing.pop_front();
    txPendingTotal_--;

    if (pkt->txCtx != 0)
        processTxOffload(*pkt, qs->stats);

    double ps_per_byte = 8000.0 / cfg_.gbps;
    sim::Tick ser = static_cast<sim::Tick>(
        static_cast<double>(pkt->wireSize()) * ps_per_byte);
    lineFreeAt_ = std::max(sim_.now(), lineFreeAt_) + ser;

    stats_.pktsTx++;
    stats_.bytesTx += pkt->bytes.size();
    qs->stats.txPkts++;
    // The last bit leaves when serialization completes.
    sim_.scheduleAt(lineFreeAt_, [this, pkt = std::move(pkt)]() mutable {
        link_.transmit(port_, std::move(pkt));
    });

    bool had_backlog = qs->txRing.size() + 1 >= cfg_.txRingSize;
    if (had_backlog && onTxSpace_)
        onTxSpace_();
    if (txPendingTotal_ > 0) {
        txPumping_ = true;
        sim_.scheduleAt(lineFreeAt_, [this] { drainOne(); });
    }
}

void
Nic::processTxOffload(net::Packet &pkt, QueueStats &qstats)
{
    TxCtx *tc = txById_.find(pkt.txCtx);
    if (tc == nullptr)
        return; // context destroyed; send as-is
    FlowContext &ctx = ctxArena_.at(tc->ctx);
    touchContext(pkt.txCtx, &qstats);

    const net::TcpHeader th = pkt.tcp();
    size_t payload = pkt.payloadSize();
    if (payload == 0)
        return; // pure ack/control

    // The driver guarantees in-sequence posting (it issues txResync
    // for out-of-sequence packets first).
    ANIC_ASSERT(th.seq == tc->expectedSeq,
                "tx descriptor out of sequence: seq=%u expected=%u", th.seq,
                tc->expectedSeq);

    PacketResult res;
    bool processed =
        ctx.fsm().segment(ctx.posOf(th.seq), pkt.payloadMut(), res);
    if (processed)
        stats_.txOffloadedPkts++;
    tc->expectedSeq = th.seq + static_cast<uint32_t>(payload);
    ctx.advanceTo(tc->expectedSeq);
}

// -------------------------------------------------------------- receive

int
Nic::rxQueueFor(const net::FlowKey &wireFlow) const
{
    if (queues_.size() == 1)
        return 0;
    uint32_t h = rss_->hashFlow(wireFlow);
    return rssTable_[h % rssTable_.size()];
}

void
Nic::onWire(net::PacketPtr pkt)
{
    stats_.pktsRx++;
    stats_.bytesRx += pkt->bytes.size();
    pcie_.rxDataBytes += pkt->bytes.size();
    pcie_.descriptorBytes += cfg_.descriptorBytes;

    // RSS: the indirection table pins the flow to one rx queue, so a
    // flow never migrates between queues (or cores) mid-stream.
    int queue = 0;
    if (queues_.size() > 1) {
        uint32_t h = rss_->hashFlow(pkt->flow());
        queue = rssTable_[h % rssTable_.size()];
        // record() copies the component name before its own enabled
        // check; guard here so the per-packet path stays allocation
        // free when tracing is off.
        if (trace_->enabled())
            trace_->record(sim_.now(), sim::TraceKind::RxQueueSelect, name_,
                           static_cast<uint64_t>(queue), h);
    }
    QueueState &qs = *queues_[static_cast<size_t>(queue)];
    qs.stats.rxPkts++;

    sim::Tick extra = 0;
    util::SlabHandle *h = rxByFlow_.find(pkt->flow());
    if (h != nullptr && pkt->payloadSize() > 0) {
        FlowContext &ctx = ctxArena_.at(*h);
        extra = touchContext(ctx.id(), &qs.stats);
        processRxOffload(*pkt, ctx);
    }

    // Same-tick handoffs coalesce into one event per distinct tick:
    // the batch drains in arrival order, so delivery order (and every
    // delivery tick) matches the unbatched schedule exactly.
    sim::Tick due = sim_.now() + cfg_.rxLatency + extra;
    for (RxPending &b : rxPending_) {
        if (b.due == due) {
            b.pkts.push_back(std::move(pkt));
            b.queues.push_back(queue);
            return;
        }
    }
    RxPending b;
    if (!rxPendingFree_.empty()) {
        b = std::move(rxPendingFree_.back());
        rxPendingFree_.pop_back();
    }
    b.due = due;
    b.pkts.push_back(std::move(pkt));
    b.queues.push_back(queue);
    rxPending_.push_back(std::move(b));
    sim_.scheduleAt(due, [this, due] { flushRx(due); });
}

void
Nic::flushRx(sim::Tick due)
{
    for (size_t i = 0; i < rxPending_.size(); i++) {
        if (rxPending_[i].due != due)
            continue;
        RxPending b = std::move(rxPending_[i]);
        rxPending_.erase(rxPending_.begin() + static_cast<ptrdiff_t>(i));
        for (size_t k = 0; k < b.pkts.size(); k++)
            deliverToQueue(b.queues[k], std::move(b.pkts[k]));
        b.pkts.clear();
        b.queues.clear();
        rxPendingFree_.push_back(std::move(b));
        return;
    }
    panic("nic rx flush with no pending batch at tick %llu",
          static_cast<unsigned long long>(due));
}

void
Nic::deliverToQueue(int queue, net::PacketPtr pkt)
{
    QueueState &q = *queues_[static_cast<size_t>(queue)];
    q.comp.push_back(std::move(pkt));
    if (q.comp.size() >= cfg_.coalescePkts) {
        fireIrq(queue);
        return;
    }
    if (trace_->enabled())
        trace_->record(sim_.now(), sim::TraceKind::IrqCoalesce, name_,
                       static_cast<uint64_t>(queue), q.comp.size());
    if (!q.timerArmed) {
        q.timerArmed = true;
        uint64_t gen = q.irqGen;
        sim_.scheduleAt(sim_.now() + cfg_.coalesceDelay,
                        [this, queue, gen] { onIrqTimer(queue, gen); });
    }
}

void
Nic::fireIrq(int queue)
{
    QueueState &q = *queues_[static_cast<size_t>(queue)];
    q.irqGen++; // invalidates any armed coalesce timer
    q.timerArmed = false;
    RxBatch pkts = std::move(q.comp);
    q.comp = takeFreeVec();

    uint64_t n = pkts.size();
    q.stats.compIrqs++;
    stats_.irqsFired++;
    q.stats.coalescedPkts += n - 1;
    stats_.coalescedPkts += n - 1;
    if (trace_->enabled())
        trace_->record(sim_.now(), sim::TraceKind::IrqFire, name_,
                       static_cast<uint64_t>(queue), n);
    if (onRxInterrupt_)
        onRxInterrupt_(queue, std::move(pkts));
    else
        recycleRxBatch(std::move(pkts));
}

void
Nic::onIrqTimer(int queue, uint64_t gen)
{
    QueueState &q = *queues_[static_cast<size_t>(queue)];
    if (gen != q.irqGen || q.comp.empty())
        return; // a threshold fire beat the timer
    fireIrq(queue);
}

Nic::RxBatch
Nic::takeFreeVec()
{
    if (rxVecFree_.empty())
        return {};
    RxBatch v = std::move(rxVecFree_.back());
    rxVecFree_.pop_back();
    return v;
}

void
Nic::processRxOffload(net::Packet &pkt, FlowContext &ctx)
{
    const net::TcpHeader th = pkt.tcp();

    PacketResult res;
    bool processed = ctx.fsm().segment(ctx.posOf(th.seq), pkt.payloadMut(), res);

    net::RxOffloadMeta meta;
    meta.kind = ctx.engine().kind();
    meta.offloaded = processed;
    for (size_t k = 0; k < net::kL5KindCount; k++)
        meta.verify[k] = res.tagFailed ? net::VerifyOutcome::Failed
                                       : res.verify[k];
    meta.placed = std::move(res.placed);
    pkt.rx = std::move(meta);

    if (processed) {
        stats_.rxOffloadedPkts++;
        ctx.advanceTo(th.seq + static_cast<uint32_t>(pkt.payloadSize()));
    }
}

// -------------------------------------------------------- context cache

sim::Tick
Nic::touchContext(uint64_t ctxId, QueueStats *qs)
{
    if (cache_->touch(ctxId)) {
        stats_.ctxCacheHits++;
        if (qs != nullptr)
            qs->ctxHits++;
        return 0;
    }
    stats_.ctxCacheMisses++;
    if (qs != nullptr)
        qs->ctxMisses++;
    pcie_.ctxFetchBytes += cfg_.ctxBytes;
    trace_->record(sim_.now(), sim::TraceKind::CtxFetch, name_, ctxId,
                   cfg_.ctxBytes);
    // insert() evicts through onCtxEvict(); charge those writebacks
    // to the queue whose miss forced them.
    evictQs_ = qs;
    cache_->insert(ctxId);
    evictQs_ = nullptr;
    return cfg_.ctxFetchLatency;
}

void
Nic::onCtxEvict(uint64_t ctxId)
{
    stats_.ctxCacheEvictions++;
    if (evictQs_ != nullptr)
        evictQs_->evictions++;
    pcie_.ctxWritebackBytes += cfg_.ctxBytes;
    trace_->record(sim_.now(), sim::TraceKind::CtxEvict, name_, ctxId,
                   cfg_.ctxBytes);
}

// ------------------------------------------------------ context mgmt

uint64_t
Nic::createRxContext(const net::FlowKey &flow,
                     std::unique_ptr<L5Engine> engine, uint32_t tcpsn,
                     uint64_t msgIdx)
{
    uint64_t id = nextCtxId_++;
    ANIC_ASSERT(rxByFlow_.find(flow) == nullptr,
                "rx context already exists for flow");
    util::SlabHandle h = ctxArena_.alloc(
        id, std::move(engine), [this, id](uint64_t reqId, uint32_t seq) {
            if (onResyncRequest_) {
                pcie_.descriptorBytes += cfg_.descriptorBytes;
                onResyncRequest_(id, reqId, seq);
            }
        });
    FlowContext &ctx = ctxArena_.at(h);
    installFsmHooks(ctx);
    ctx.arm(tcpsn, msgIdx);
    rxByFlow_.emplace(flow, h);
    rxById_.emplace(id, RxRef{h, flow});
    pcie_.descriptorBytes += cfg_.ctxBytes; // initial state download
    touchContext(id);
    return id;
}

uint64_t
Nic::createTxContext(std::unique_ptr<L5Engine> engine, uint32_t tcpsn,
                     uint64_t msgIdx)
{
    uint64_t id = nextCtxId_++;
    TxCtx tc;
    tc.ctx = ctxArena_.alloc(id, std::move(engine), nullptr);
    FlowContext &ctx = ctxArena_.at(tc.ctx);
    installFsmHooks(ctx);
    ctx.arm(tcpsn, msgIdx);
    tc.expectedSeq = tcpsn;
    txById_.emplace(id, tc);
    pcie_.descriptorBytes += cfg_.ctxBytes;
    touchContext(id);
    return id;
}

void
Nic::destroyRxContext(uint64_t id)
{
    RxRef *r = rxById_.find(id);
    if (r == nullptr)
        return;
    RxRef ref = *r; // copy out: erase invalidates the pointer
    rxById_.erase(id);
    rxByFlow_.erase(ref.flow);
    ctxArena_.free(ref.ctx);
    cache_->remove(id);
}

void
Nic::destroyTxContext(uint64_t id)
{
    TxCtx *tc = txById_.find(id);
    if (tc == nullptr)
        return;
    ctxArena_.free(tc->ctx);
    txById_.erase(id);
    cache_->remove(id);
}

void
Nic::rxResyncResponse(uint64_t ctxId, uint64_t reqId, bool ok, uint64_t msgIdx)
{
    RxRef *r = rxById_.find(ctxId);
    if (r == nullptr)
        return;
    pcie_.descriptorBytes += cfg_.descriptorBytes;
    ctxArena_.at(r->ctx).fsm().confirm(reqId, ok, msgIdx);
}

void
Nic::applyTxResync(const TxResyncCmd &cmd)
{
    TxCtx *tc = txById_.find(cmd.ctxId);
    if (tc == nullptr)
        return; // context destroyed while the command was in flight
    FlowContext &ctx = ctxArena_.at(tc->ctx);
    stats_.txResyncs++;
    trace_->record(sim_.now(), sim::TraceKind::TxResync, name_, cmd.ctxId,
                   cmd.tcpsn, cmd.rebuild.size());
    touchContext(cmd.ctxId);

    // The NIC re-reads the message bytes preceding the retransmitted
    // packet from host memory to rebuild the engine state (the PCIe
    // overhead Figure 16b measures).
    pcie_.ctxRecoveryBytes += cmd.rebuild.size();

    uint32_t msg_start =
        cmd.tcpsn - static_cast<uint32_t>(cmd.rebuild.size());
    ctx.arm(msg_start, cmd.msgIdx);
    if (!cmd.rebuild.empty()) {
        // Feed a scratch copy through the engine: same transforms as
        // the original pass, output discarded.
        Bytes scratch(cmd.rebuild);
        PacketResult res;
        ctx.fsm().segment(ctx.posOf(msg_start), scratch, res);
    }
    tc->expectedSeq = cmd.tcpsn;
    ctx.advanceTo(cmd.tcpsn);
}

L5Engine *
Nic::rxEngine(uint64_t ctxId)
{
    RxRef *r = rxById_.find(ctxId);
    return r == nullptr ? nullptr : &ctxArena_.at(r->ctx).engine();
}

L5Engine *
Nic::txEngine(uint64_t ctxId)
{
    TxCtx *tc = txById_.find(ctxId);
    return tc == nullptr ? nullptr : &ctxArena_.at(tc->ctx).engine();
}

uint32_t
Nic::txExpectedSeq(uint64_t ctxId) const
{
    const TxCtx *tc = txById_.find(ctxId);
    ANIC_ASSERT(tc != nullptr);
    return tc->expectedSeq;
}

const FsmStats *
Nic::rxFsmStats(uint64_t ctxId) const
{
    const RxRef *r = rxById_.find(ctxId);
    return r == nullptr ? nullptr : &ctxArena_.get(r->ctx)->fsm().stats();
}

} // namespace anic::nic
