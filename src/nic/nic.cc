#include "nic/nic.hh"

#include "util/panic.hh"

namespace anic::nic {

// ------------------------------------------------------------ FlowContext

FlowContext::FlowContext(
    uint64_t id, std::unique_ptr<L5Engine> engine,
    std::function<void(uint64_t reqId, uint32_t tcpSeq)> resyncReq)
    : id_(id),
      engine_(std::move(engine)),
      resyncReq_(std::move(resyncReq)),
      fsm_(*engine_, [this](uint64_t reqId, uint64_t pos) {
          if (resyncReq_)
              resyncReq_(reqId, seqOf(pos));
      })
{
}

void
FlowContext::arm(uint32_t tcpsn, uint64_t msgIdx)
{
    baseSeq_ = tcpsn;
    basePos_ = tcpsn; // start the 64-bit space at the sequence value
    fsm_.reset(basePos_, msgIdx);
    engine_->onRearm();
}

uint64_t
FlowContext::posOf(uint32_t seq) const
{
    return basePos_ + static_cast<int64_t>(static_cast<int32_t>(seq - baseSeq_));
}

uint32_t
FlowContext::seqOf(uint64_t pos) const
{
    return baseSeq_ + static_cast<uint32_t>(pos - basePos_);
}

void
FlowContext::advanceTo(uint32_t seq)
{
    basePos_ = posOf(seq);
    baseSeq_ = seq;
}

// -------------------------------------------------------------------- Nic

Nic::Nic(sim::Simulator &sim, net::Link &link, int port, Config cfg)
    : sim_(sim), link_(link), port_(port), cfg_(cfg)
{
    sim::StatsRegistry &reg =
        cfg_.registry != nullptr ? *cfg_.registry : sim::StatsRegistry::global();
    name_ = reg.uniqueName(cfg_.name.empty() ? "nic" : cfg_.name);
    scope_ = sim::StatsScope(reg, name_);
    trace_ = cfg_.trace != nullptr ? cfg_.trace : &sim::TraceRing::global();
    linkInstruments();
    link_.attach(port, [this](net::PacketPtr pkt) { onWire(std::move(pkt)); });
}

void
Nic::linkInstruments()
{
    scope_.link("pktsTx", stats_.pktsTx);
    scope_.link("pktsRx", stats_.pktsRx);
    scope_.link("bytesTx", stats_.bytesTx);
    scope_.link("bytesRx", stats_.bytesRx);
    scope_.link("ctxCacheHits", stats_.ctxCacheHits);
    scope_.link("ctxCacheMisses", stats_.ctxCacheMisses);
    scope_.link("ctxCacheEvictions", stats_.ctxCacheEvictions);
    scope_.link("rxOffloadedPkts", stats_.rxOffloadedPkts);
    scope_.link("txOffloadedPkts", stats_.txOffloadedPkts);
    scope_.link("txResyncs", stats_.txResyncs);

    scope_.link("pcie.rxDataBytes", pcie_.rxDataBytes);
    scope_.link("pcie.txDataBytes", pcie_.txDataBytes);
    scope_.link("pcie.descriptorBytes", pcie_.descriptorBytes);
    scope_.link("pcie.ctxFetchBytes", pcie_.ctxFetchBytes);
    scope_.link("pcie.ctxWritebackBytes", pcie_.ctxWritebackBytes);
    scope_.link("pcie.ctxRecoveryBytes", pcie_.ctxRecoveryBytes);

    scope_.link("fsm.msgsCompleted", fsmAgg_.msgsCompleted);
    scope_.link("fsm.msgsCovered", fsmAgg_.msgsCovered);
    scope_.link("fsm.msgsAborted", fsmAgg_.msgsAborted);
    scope_.link("fsm.resyncRequests", fsmAgg_.resyncRequests);
    scope_.link("fsm.resyncConfirmed", fsmAgg_.resyncConfirmed);
    scope_.link("fsm.resyncRefuted", fsmAgg_.resyncRefuted);
    scope_.link("fsm.trackFailures", fsmAgg_.trackFailures);
    scope_.link("fsm.desyncs", fsmAgg_.desyncs);
    scope_.link("fsm.gapEvents", fsmAgg_.gapEvents);
    scope_.link("fsm.bypassedSpans", fsmAgg_.bypassedSpans);
    scope_.link("fsm.midMsgResumes", fsmAgg_.midMsgResumes);
    scope_.link("fsm.dwellOffloadingNs",
                fsmDwellNs_[static_cast<int>(FsmState::Offloading)]);
    scope_.link("fsm.dwellSearchingNs",
                fsmDwellNs_[static_cast<int>(FsmState::Searching)]);
    scope_.link("fsm.dwellTrackingNs",
                fsmDwellNs_[static_cast<int>(FsmState::Tracking)]);

    scope_.link("engine.bytesTransformed", engineAgg_.bytesTransformed);
    scope_.link("engine.bytesChecked", engineAgg_.bytesChecked);
    scope_.link("engine.bytesPlaced", engineAgg_.bytesPlaced);
    scope_.link("engine.tagsVerified", engineAgg_.tagsVerified);
    scope_.link("engine.tagFailures", engineAgg_.tagFailures);
    scope_.link("engine.crcsVerified", engineAgg_.crcsVerified);
    scope_.link("engine.crcFailures", engineAgg_.crcFailures);
}

void
Nic::installFsmHooks(FlowContext &ctx)
{
    FsmHooks hooks;
    hooks.now = [this] { return sim_.now(); };
    hooks.aggregate = &fsmAgg_;
    for (int i = 0; i < kFsmStateCount; i++)
        hooks.dwellNs[i] = &fsmDwellNs_[i];
    hooks.trace = trace_;
    hooks.traceId = ctx.id();
    hooks.probe = cfg_.fsmProbe;
    hooks.name = name_ + ".fsm";
    ctx.fsm().setHooks(std::move(hooks));
    ctx.engine().setStats(&engineAgg_);
}

// ------------------------------------------------------------- transmit

bool
Nic::transmit(net::PacketPtr pkt)
{
    if (txq_.size() >= cfg_.txRingSize)
        return false;
    pcie_.txDataBytes += pkt->bytes.size();
    pcie_.descriptorBytes += cfg_.descriptorBytes;
    txq_.push_back(TxEntry{std::move(pkt), nullptr});
    pumpTx();
    return true;
}

void
Nic::postTxResync(uint64_t ctxId, uint32_t tcpsn, uint64_t msgIdx,
                  ByteView rebuild)
{
    auto cmd = std::make_unique<TxResyncCmd>();
    cmd->ctxId = ctxId;
    cmd->tcpsn = tcpsn;
    cmd->msgIdx = msgIdx;
    cmd->rebuild.assign(rebuild.begin(), rebuild.end());
    pcie_.descriptorBytes += cfg_.descriptorBytes;
    // Special descriptors ride the same ring as data so ordering with
    // surrounding packets is preserved.
    txq_.push_back(TxEntry{nullptr, std::move(cmd)});
    pumpTx();
}

void
Nic::pumpTx()
{
    if (txPumping_ || txq_.empty())
        return;
    txPumping_ = true;
    sim::Tick start = std::max(sim_.now() + cfg_.txLatency, lineFreeAt_);
    sim_.scheduleAt(start, [this] { drainOne(); });
}

void
Nic::drainOne()
{
    txPumping_ = false;
    // Apply any special descriptors that precede the next packet.
    while (!txq_.empty() && txq_.front().resync != nullptr) {
        applyTxResync(*txq_.front().resync);
        txq_.pop_front();
    }
    if (txq_.empty())
        return;
    net::PacketPtr pkt = std::move(txq_.front().pkt);
    txq_.pop_front();

    if (pkt->txCtx != 0)
        processTxOffload(*pkt);

    double ps_per_byte = 8000.0 / cfg_.gbps;
    sim::Tick ser = static_cast<sim::Tick>(
        static_cast<double>(pkt->wireSize()) * ps_per_byte);
    lineFreeAt_ = std::max(sim_.now(), lineFreeAt_) + ser;

    stats_.pktsTx++;
    stats_.bytesTx += pkt->bytes.size();
    // The last bit leaves when serialization completes.
    sim_.scheduleAt(lineFreeAt_, [this, pkt = std::move(pkt)]() mutable {
        link_.transmit(port_, std::move(pkt));
    });

    bool had_backlog = txq_.size() + 1 >= cfg_.txRingSize;
    if (had_backlog && onTxSpace_)
        onTxSpace_();
    if (!txq_.empty()) {
        txPumping_ = true;
        sim_.scheduleAt(lineFreeAt_, [this] { drainOne(); });
    }
}

void
Nic::processTxOffload(net::Packet &pkt)
{
    auto it = txById_.find(pkt.txCtx);
    if (it == txById_.end())
        return; // context destroyed; send as-is
    TxCtx &tc = it->second;
    touchContext(pkt.txCtx);

    const net::TcpHeader th = pkt.tcp();
    size_t payload = pkt.payloadSize();
    if (payload == 0)
        return; // pure ack/control

    // The driver guarantees in-sequence posting (it issues txResync
    // for out-of-sequence packets first).
    ANIC_ASSERT(th.seq == tc.expectedSeq,
                "tx descriptor out of sequence: seq=%u expected=%u", th.seq,
                tc.expectedSeq);

    PacketResult res;
    bool processed =
        tc.ctx->fsm().segment(tc.ctx->posOf(th.seq), pkt.payloadMut(), res);
    if (processed)
        stats_.txOffloadedPkts++;
    tc.expectedSeq = th.seq + static_cast<uint32_t>(payload);
    tc.ctx->advanceTo(tc.expectedSeq);
}

// -------------------------------------------------------------- receive

void
Nic::onWire(net::PacketPtr pkt)
{
    stats_.pktsRx++;
    stats_.bytesRx += pkt->bytes.size();
    pcie_.rxDataBytes += pkt->bytes.size();
    pcie_.descriptorBytes += cfg_.descriptorBytes;

    sim::Tick extra = 0;
    auto it = rxByFlow_.find(pkt->flow());
    if (it != rxByFlow_.end() && pkt->payloadSize() > 0) {
        extra = touchContext(it->second->id());
        processRxOffload(*pkt);
    }

    // Same-tick handoffs coalesce into one event per distinct tick:
    // the batch drains in arrival order, so delivery order (and every
    // delivery tick) matches the unbatched schedule exactly.
    sim::Tick due = sim_.now() + cfg_.rxLatency + extra;
    for (RxBatch &b : rxPending_) {
        if (b.due == due) {
            b.pkts.push_back(std::move(pkt));
            return;
        }
    }
    std::vector<net::PacketPtr> pkts;
    if (!rxBatchFree_.empty()) {
        pkts = std::move(rxBatchFree_.back());
        rxBatchFree_.pop_back();
    }
    pkts.push_back(std::move(pkt));
    rxPending_.push_back(RxBatch{due, std::move(pkts)});
    sim_.scheduleAt(due, [this, due] { flushRx(due); });
}

void
Nic::flushRx(sim::Tick due)
{
    for (size_t i = 0; i < rxPending_.size(); i++) {
        if (rxPending_[i].due != due)
            continue;
        std::vector<net::PacketPtr> pkts = std::move(rxPending_[i].pkts);
        rxPending_.erase(rxPending_.begin() + static_cast<ptrdiff_t>(i));
        for (net::PacketPtr &p : pkts) {
            if (onReceive_)
                onReceive_(std::move(p));
        }
        pkts.clear();
        rxBatchFree_.push_back(std::move(pkts));
        return;
    }
    panic("nic rx flush with no pending batch at tick %llu",
          static_cast<unsigned long long>(due));
}

void
Nic::processRxOffload(net::Packet &pkt)
{
    FlowContext &ctx = *rxByFlow_.find(pkt.flow())->second;
    const net::TcpHeader th = pkt.tcp();

    PacketResult res;
    bool processed = ctx.fsm().segment(ctx.posOf(th.seq), pkt.payloadMut(), res);

    net::RxOffloadMeta meta;
    meta.decrypted = processed && !res.tagFailed;
    if (res.sawCrcBytes || processed) {
        meta.crcChecked = processed && !res.crcIncomplete;
        meta.crcOk = meta.crcChecked && !res.crcFailed;
    }
    meta.placed = std::move(res.placed);
    pkt.rx = meta;

    if (processed) {
        stats_.rxOffloadedPkts++;
        ctx.advanceTo(th.seq + static_cast<uint32_t>(pkt.payloadSize()));
    }
}

// -------------------------------------------------------- context cache

sim::Tick
Nic::touchContext(uint64_t ctxId)
{
    auto it = cacheMap_.find(ctxId);
    if (it != cacheMap_.end()) {
        cacheLru_.splice(cacheLru_.begin(), cacheLru_, it->second);
        stats_.ctxCacheHits++;
        return 0;
    }
    stats_.ctxCacheMisses++;
    pcie_.ctxFetchBytes += cfg_.ctxBytes;
    trace_->record(sim_.now(), sim::TraceKind::CtxFetch, name_, ctxId,
                   cfg_.ctxBytes);
    while (cacheMap_.size() >= cfg_.ctxCacheCapacity) {
        uint64_t victim = cacheLru_.back();
        cacheLru_.pop_back();
        cacheMap_.erase(victim);
        stats_.ctxCacheEvictions++;
        pcie_.ctxWritebackBytes += cfg_.ctxBytes;
        trace_->record(sim_.now(), sim::TraceKind::CtxEvict, name_, victim,
                       cfg_.ctxBytes);
    }
    cacheLru_.push_front(ctxId);
    cacheMap_[ctxId] = cacheLru_.begin();
    return cfg_.ctxFetchLatency;
}

// ------------------------------------------------------ context mgmt

uint64_t
Nic::createRxContext(const net::FlowKey &flow,
                     std::unique_ptr<L5Engine> engine, uint32_t tcpsn,
                     uint64_t msgIdx)
{
    uint64_t id = nextCtxId_++;
    auto ctx = std::make_unique<FlowContext>(
        id, std::move(engine), [this, id](uint64_t reqId, uint32_t seq) {
            if (onResyncRequest_) {
                pcie_.descriptorBytes += cfg_.descriptorBytes;
                onResyncRequest_(id, reqId, seq);
            }
        });
    installFsmHooks(*ctx);
    ctx->arm(tcpsn, msgIdx);
    FlowContext *raw = ctx.get();
    ANIC_ASSERT(rxByFlow_.find(flow) == rxByFlow_.end(),
                "rx context already exists for flow");
    rxByFlow_.emplace(flow, std::move(ctx));
    rxById_.emplace(id, RxRef{raw, flow});
    pcie_.descriptorBytes += cfg_.ctxBytes; // initial state download
    touchContext(id);
    return id;
}

uint64_t
Nic::createTxContext(std::unique_ptr<L5Engine> engine, uint32_t tcpsn,
                     uint64_t msgIdx)
{
    uint64_t id = nextCtxId_++;
    TxCtx tc;
    tc.ctx = std::make_unique<FlowContext>(id, std::move(engine), nullptr);
    installFsmHooks(*tc.ctx);
    tc.ctx->arm(tcpsn, msgIdx);
    tc.expectedSeq = tcpsn;
    txById_.emplace(id, std::move(tc));
    pcie_.descriptorBytes += cfg_.ctxBytes;
    touchContext(id);
    return id;
}

void
Nic::destroyRxContext(uint64_t id)
{
    auto it = rxById_.find(id);
    if (it == rxById_.end())
        return;
    rxByFlow_.erase(it->second.flow);
    rxById_.erase(it);
    auto cit = cacheMap_.find(id);
    if (cit != cacheMap_.end()) {
        cacheLru_.erase(cit->second);
        cacheMap_.erase(cit);
    }
}

void
Nic::destroyTxContext(uint64_t id)
{
    txById_.erase(id);
    auto cit = cacheMap_.find(id);
    if (cit != cacheMap_.end()) {
        cacheLru_.erase(cit->second);
        cacheMap_.erase(cit);
    }
}

void
Nic::rxResyncResponse(uint64_t ctxId, uint64_t reqId, bool ok, uint64_t msgIdx)
{
    auto it = rxById_.find(ctxId);
    if (it == rxById_.end())
        return;
    pcie_.descriptorBytes += cfg_.descriptorBytes;
    it->second.ctx->fsm().confirm(reqId, ok, msgIdx);
}

void
Nic::applyTxResync(const TxResyncCmd &cmd)
{
    auto it = txById_.find(cmd.ctxId);
    if (it == txById_.end())
        return; // context destroyed while the command was in flight
    TxCtx &tc = it->second;
    stats_.txResyncs++;
    trace_->record(sim_.now(), sim::TraceKind::TxResync, name_, cmd.ctxId,
                   cmd.tcpsn, cmd.rebuild.size());
    touchContext(cmd.ctxId);

    // The NIC re-reads the message bytes preceding the retransmitted
    // packet from host memory to rebuild the engine state (the PCIe
    // overhead Figure 16b measures).
    pcie_.ctxRecoveryBytes += cmd.rebuild.size();

    uint32_t msg_start =
        cmd.tcpsn - static_cast<uint32_t>(cmd.rebuild.size());
    tc.ctx->arm(msg_start, cmd.msgIdx);
    if (!cmd.rebuild.empty()) {
        // Feed a scratch copy through the engine: same transforms as
        // the original pass, output discarded.
        Bytes scratch(cmd.rebuild);
        PacketResult res;
        tc.ctx->fsm().segment(tc.ctx->posOf(msg_start), scratch, res);
    }
    tc.expectedSeq = cmd.tcpsn;
    tc.ctx->advanceTo(cmd.tcpsn);
}

L5Engine *
Nic::rxEngine(uint64_t ctxId)
{
    auto it = rxById_.find(ctxId);
    return it == rxById_.end() ? nullptr : &it->second.ctx->engine();
}

L5Engine *
Nic::txEngine(uint64_t ctxId)
{
    auto it = txById_.find(ctxId);
    return it == txById_.end() ? nullptr : &it->second.ctx->engine();
}

uint32_t
Nic::txExpectedSeq(uint64_t ctxId) const
{
    auto it = txById_.find(ctxId);
    ANIC_ASSERT(it != txById_.end());
    return it->second.expectedSeq;
}

const FsmStats *
Nic::rxFsmStats(uint64_t ctxId) const
{
    auto it = rxById_.find(ctxId);
    return it == rxById_.end() ? nullptr : &it->second.ctx->fsm().stats();
}

} // namespace anic::nic
