#include "nic/stream_fsm.hh"

#include <cstdlib>
#include <cstring>

#include "util/env.hh"
#include "util/panic.hh"

namespace anic::nic {

namespace {

/**
 * Mutation-testing hook: ANIC_FSM_BUG=<name> deliberately mis-wires
 * one FSM decision so the fuzz harness can prove it detects real
 * bugs (the "mutation smoke check"). Never set in production runs.
 *
 *  - confirm_off_by_one: adopt a confirmed speculation with the wrong
 *    message index (crypto state one record ahead of the stream).
 *  - skip_confirm: treat a software *refutation* as a confirmation —
 *    i.e. the NIC stops honoring the resync handshake.
 */
enum class FsmBug
{
    None,
    ConfirmOffByOne,
    SkipConfirm,
};

FsmBug
fsmBug()
{
    static const FsmBug bug = [] {
        const std::string &e = util::Env::fsmBug();
        if (e == "confirm_off_by_one")
            return FsmBug::ConfirmOffByOne;
        if (e == "skip_confirm")
            return FsmBug::SkipConfirm;
        return FsmBug::None;
    }();
    return bug;
}

} // namespace

const char *
fsmStateName(FsmState s)
{
    switch (s) {
      case FsmState::Offloading:
        return "offloading";
      case FsmState::Searching:
        return "searching";
      case FsmState::Tracking:
        return "tracking";
    }
    return "?";
}

StreamFsm::StreamFsm(
    L5Engine &engine,
    std::function<void(uint64_t reqId, uint64_t pos)> requestResync)
    : engine_(engine), requestResync_(std::move(requestResync))
{
}

void
StreamFsm::setHooks(FsmHooks hooks)
{
    hooks_ = std::move(hooks);
    if (hooks_.now)
        stateEnterTick_ = hooks_.now();
}

void
StreamFsm::toState(FsmState next)
{
    if (next == state_)
        return;
    if (hooks_.probe != nullptr)
        hooks_.probe->onTransition(hooks_.traceId, state_, next);
    if (hooks_.now) {
        sim::Tick now = hooks_.now();
        if (auto *d = hooks_.dwellNs[static_cast<int>(state_)])
            d->add(static_cast<double>(now - stateEnterTick_) /
                   sim::kNanosecond);
        stateEnterTick_ = now;
    }
    traceEvent(sim::TraceKind::FsmTransition, static_cast<uint64_t>(state_),
               static_cast<uint64_t>(next));
    state_ = next;
}

void
StreamFsm::bump(sim::Counter FsmStats::*m, uint64_t n)
{
    (stats_.*m) += n;
    if (hooks_.aggregate != nullptr)
        ((*hooks_.aggregate).*m) += n;
}

void
StreamFsm::traceEvent(sim::TraceKind kind, uint64_t a, uint64_t b)
{
    if (hooks_.trace == nullptr)
        return;
    hooks_.trace->record(hooks_.now ? hooks_.now() : 0, kind, hooks_.name,
                         hooks_.traceId, a, b);
}

void
StreamFsm::reset(uint64_t pos, uint64_t msgIdx)
{
    toState(FsmState::Offloading);
    expected_ = pos;
    msgStart_ = pos;
    msgIdx_ = msgIdx;
    hdrBuf_.clear();
    hdrComplete_ = false;
    msgLen_ = 0;
    inMsgOff_ = 0;
    covered_ = true;
    skipMode_ = false;
    msgActive_ = false;
    contValid_ = false;
    searchCarry_.clear();
    trackHdrBuf_.clear();
    pendingReqId_ = 0;
    haveConfirm_ = false;
}

bool
StreamFsm::segment(uint64_t pos, ByteSpan data, PacketResult &res)
{
    if (data.empty())
        return false;
    FsmState pre = state_;
    uint64_t preExpected = expected_;
    bool processed = segmentImpl(pos, data, res);
    if (hooks_.probe != nullptr)
        hooks_.probe->onSegment(hooks_.traceId, pre, pos, preExpected,
                                data.size(), processed);
    return processed;
}

bool
StreamFsm::segmentImpl(uint64_t pos, ByteSpan data, PacketResult &res)
{
    switch (state_) {
      case FsmState::Offloading: {
        uint64_t end = pos + data.size();
        if (end <= expected_ || pos < expected_) {
            // Entirely or partially "in the past" (retransmission /
            // overlap): bypassed, context unchanged (Figure 8a).
            bump(&FsmStats::bypassedSpans);
            return false;
        }
        if (pos == expected_)
            return processSpan(pos, data, res);
        bump(&FsmStats::gapEvents);
        handleGap(pos, data, res);
        return false;
      }
      case FsmState::Searching:
        bump(&FsmStats::bypassedSpans);
        scanSpan(pos, data, res);
        return false;
      case FsmState::Tracking:
        bump(&FsmStats::bypassedSpans);
        trackSpan(pos, data, res);
        return false;
    }
    return false;
}

void
StreamFsm::feedScan(uint64_t pos, ByteView data, PacketResult &res)
{
    if (state_ == FsmState::Searching)
        scanSpan(pos, data, res);
    else if (state_ == FsmState::Tracking)
        trackSpan(pos, data, res);
}

bool
StreamFsm::processSpan(uint64_t pos, ByteSpan data, PacketResult &res,
                       bool allowResume)
{
    ANIC_ASSERT(pos == expected_);
    const size_t hdr_size = engine_.headerSize();

    // Packet-aligned resumption points: transforms may only switch on
    // at the start of a *packet* so a packet is never half-processed
    // (allowResume is false for the dry-run tail of an out-of-
    // sequence packet, which must go up the stack unmodified).
    if (skipMode_ && allowResume) {
        if (!hdrComplete_ && hdrBuf_.empty() && inMsgOff_ == 0) {
            // Fresh message boundary at span start: full resume.
            skipMode_ = false;
            covered_ = true;
        } else if (hdrComplete_ && engine_.resumeMidMessage()) {
            // Placement-style engines resume inside the message.
            engine_.onMsgResume(msgIdx_, hdrBuf_, inMsgOff_);
            msgActive_ = true;
            skipMode_ = false;
            covered_ = false;
            bump(&FsmStats::midMsgResumes);
        }
    }

    size_t off = 0;
    const size_t n = data.size();
    while (off < n) {
        if (!hdrComplete_) {
            size_t need = hdr_size - hdrBuf_.size();
            size_t take = std::min(need, n - off);
            hdrBuf_.insert(hdrBuf_.end(), data.begin() + off,
                           data.begin() + off + take);
            inMsgOff_ += take;
            off += take;
            if (hdrBuf_.size() < hdr_size)
                break;

            std::optional<MsgInfo> info = engine_.parseHeader(hdrBuf_);
            if (!info) {
                // In-sequence framing desync: the previous length
                // field led us astray (possible only after incorrect
                // speculation). Fall back to searching and rescan,
                // seeding the scanner with the failed header bytes.
                if (msgActive_) {
                    engine_.onMsgAbort();
                    msgActive_ = false;
                    bump(&FsmStats::msgsAborted);
                }
                bump(&FsmStats::desyncs);
                Bytes failed = hdrBuf_;
                uint64_t fail_end = pos + off;
                enterSearch(fail_end - failed.size());
                scanSpan(fail_end - failed.size(), failed, res);
                if (off < n)
                    feedScan(fail_end, data.subspan(off), res);
                // Earlier bytes of this span may already have been
                // transformed; flag the packet so software treats the
                // flow as broken rather than re-processing mixed
                // content (only reachable via a wrong confirmation).
                res.tagFailed = true;
                return false;
            }
            ANIC_ASSERT(info->wireLen >= hdr_size,
                        "message shorter than its header");
            msgLen_ = info->wireLen;
            hdrComplete_ = true;
            if (!skipMode_) {
                engine_.onMsgStart(msgIdx_, hdrBuf_);
                msgActive_ = true;
            }
        } else {
            uint64_t remaining = msgLen_ - inMsgOff_;
            size_t take =
                static_cast<size_t>(std::min<uint64_t>(remaining, n - off));
            if (!skipMode_) {
                res.spanPktOff = res.payloadBase + static_cast<uint32_t>(off);
                engine_.onMsgData(inMsgOff_, data.subspan(off, take), false,
                                  res);
            }
            inMsgOff_ += take;
            off += take;
            if (inMsgOff_ == msgLen_) {
                if (!skipMode_) {
                    engine_.onMsgEnd(covered_, res);
                    msgActive_ = false;
                    bump(&FsmStats::msgsCompleted);
                    if (covered_)
                        bump(&FsmStats::msgsCovered);
                    covered_ = true;
                }
                msgIdx_++;
                msgStart_ += msgLen_;
                hdrBuf_.clear();
                hdrComplete_ = false;
                inMsgOff_ = 0;
            }
        }
    }
    expected_ = pos + n;
    return !skipMode_;
}

void
StreamFsm::handleGap(uint64_t pos, ByteSpan data, PacketResult &res)
{
    uint64_t end = pos + data.size();

    if (msgActive_) {
        engine_.onMsgAbort();
        msgActive_ = false;
        bump(&FsmStats::msgsAborted);
    }

    if (!hdrComplete_) {
        // Boundary position unknown (header unseen or split): the NIC
        // cannot re-frame deterministically -> speculative search.
        enterSearch(pos);
        scanSpan(pos, data, res);
        return;
    }

    uint64_t boundary = msgStart_ + msgLen_;
    if (boundary < pos) {
        // The gap jumped past the next header: framing lost.
        enterSearch(pos);
        scanSpan(pos, data, res);
        return;
    }

    covered_ = false;
    if (end < boundary) {
        // Gap and packet are inside the current message. The packet
        // itself is bypassed; subsequent packets can resume mid-
        // message for placement-style engines, or wait for the
        // boundary otherwise.
        skipMode_ = true;
        inMsgOff_ = end - msgStart_;
        expected_ = end;
        bump(&FsmStats::bypassedSpans);
        return;
    }

    // The packet reaches or crosses the boundary: virtually consume
    // the rest of the current message and dry-run the remainder of
    // the packet from the boundary (parses headers, Figure 8b).
    msgIdx_++;
    msgStart_ = boundary;
    hdrBuf_.clear();
    hdrComplete_ = false;
    inMsgOff_ = 0;
    skipMode_ = true;
    expected_ = boundary;
    bump(&FsmStats::bypassedSpans);
    if (end > boundary) {
        processSpan(boundary,
                    data.subspan(static_cast<size_t>(boundary - pos)), res,
                    /*allowResume=*/false);
    }
}

void
StreamFsm::enterSearch(uint64_t contPos)
{
    toState(FsmState::Searching);
    contValid_ = true;
    searchCont_ = contPos;
    searchCarry_.clear();
    trackHdrBuf_.clear();
    pendingReqId_ = 0;
    haveConfirm_ = false;
}

void
StreamFsm::positionLost()
{
    if (msgActive_) {
        engine_.onMsgAbort();
        msgActive_ = false;
        bump(&FsmStats::msgsAborted);
    }
    toState(FsmState::Searching);
    contValid_ = false;
    searchCarry_.clear();
    trackHdrBuf_.clear();
    pendingReqId_ = 0;
    haveConfirm_ = false;
}

void
StreamFsm::scanSpan(uint64_t pos, ByteView data, PacketResult &res)
{
    const size_t hdr_size = engine_.headerSize();

    if (contValid_ && pos < searchCont_) {
        if (pos + data.size() <= searchCont_)
            return; // stale bytes
        data = data.subspan(static_cast<size_t>(searchCont_ - pos));
        pos = searchCont_;
    }
    if (!contValid_ || pos != searchCont_)
        searchCarry_.clear();

    // Assemble carry + data so patterns split across packets match.
    Bytes window(searchCarry_);
    window.insert(window.end(), data.begin(), data.end());
    uint64_t window_base = pos - searchCarry_.size();

    for (size_t i = 0; i + hdr_size <= window.size(); i++) {
        std::optional<MsgInfo> info =
            engine_.parseHeader(ByteView(window).subspan(i, hdr_size));
        if (!info)
            continue;

        // Plausible header: speculate, ask software, start tracking.
        uint64_t cand = window_base + i;
        bump(&FsmStats::resyncRequests);
        pendingReqId_ = nextReqId_++;
        pendingReqPos_ = cand;
        haveConfirm_ = false;
        toState(FsmState::Tracking);
        traceEvent(sim::TraceKind::ResyncRequest, cand);
        if (hooks_.probe != nullptr)
            hooks_.probe->onResyncRequest(hooks_.traceId, pendingReqId_, cand);
        trackMsgCount_ = 0;
        trackCurStart_ = cand;
        trackCurLen_ = info->wireLen;
        trackCurHdr_.assign(window.begin() + i, window.begin() + i + hdr_size);
        nextHdrPos_ = cand + info->wireLen;
        trackHdrBuf_.clear();
        trackCont_ = cand + hdr_size;
        requestResync_(pendingReqId_, cand);

        // Keep tracking through the remainder of this packet.
        uint64_t consumed = trackCont_ - pos; // header end within data
        if (consumed < data.size()) {
            trackSpan(trackCont_,
                      data.subspan(static_cast<size_t>(consumed)), res);
        }
        return;
    }

    size_t keep = std::min(window.size(), hdr_size - 1);
    searchCarry_.assign(window.end() - keep, window.end());
    contValid_ = true;
    searchCont_ = pos + data.size();
}

void
StreamFsm::trackSpan(uint64_t pos, ByteView data, PacketResult &res)
{
    const size_t hdr_size = engine_.headerSize();
    uint64_t end = pos + data.size();

    if (pos != trackCont_) {
        if (pos < trackCont_) {
            if (end <= trackCont_)
                return; // stale bytes
            data = data.subspan(static_cast<size_t>(trackCont_ - pos));
            pos = trackCont_;
        } else {
            // Gap while tracking. Body bytes don't matter, but a gap
            // over (or into) the next header loses the chain.
            if (!trackHdrBuf_.empty() || pos > nextHdrPos_) {
                enterSearch(pos);
                scanSpan(pos, data, res);
                return;
            }
            trackCont_ = pos;
        }
    }

    size_t off = 0;
    while (off < data.size()) {
        uint64_t cur = pos + off;
        if (cur < nextHdrPos_) {
            uint64_t skip = std::min<uint64_t>(nextHdrPos_ - cur,
                                               data.size() - off);
            off += static_cast<size_t>(skip);
            continue;
        }
        size_t need = hdr_size - trackHdrBuf_.size();
        size_t take = std::min(need, data.size() - off);
        trackHdrBuf_.insert(trackHdrBuf_.end(), data.begin() + off,
                            data.begin() + off + take);
        off += take;
        if (trackHdrBuf_.size() < hdr_size)
            break;

        std::optional<MsgInfo> info = engine_.parseHeader(trackHdrBuf_);
        if (!info) {
            // Magic mismatch: the speculation was wrong (d1).
            bump(&FsmStats::trackFailures);
            Bytes failed = trackHdrBuf_;
            uint64_t fail_pos = nextHdrPos_;
            enterSearch(fail_pos);
            scanSpan(fail_pos, failed, res);
            if (off < data.size())
                feedScan(pos + off, data.subspan(off), res);
            return;
        }
        trackMsgCount_++;
        trackCurStart_ = nextHdrPos_;
        trackCurLen_ = info->wireLen;
        trackCurHdr_ = trackHdrBuf_;
        nextHdrPos_ += info->wireLen;
        trackHdrBuf_.clear();
    }
    trackCont_ = pos + data.size();
}

void
StreamFsm::confirm(uint64_t reqId, bool ok, uint64_t msgIdx)
{
    if (state_ != FsmState::Tracking || reqId != pendingReqId_)
        return; // stale response for an abandoned speculation
    uint64_t reqPos = pendingReqPos_;
    pendingReqId_ = 0;
    if (hooks_.probe != nullptr)
        hooks_.probe->onResyncResolved(hooks_.traceId, reqId, ok, reqPos);
    if (fsmBug() == FsmBug::SkipConfirm && !ok)
        ok = true; // mutation: ignore software's refutation
    if (!ok) {
        bump(&FsmStats::resyncRefuted);
        traceEvent(sim::TraceKind::ResyncRefuted, trackCont_);
        enterSearch(trackCont_);
        return;
    }
    bump(&FsmStats::resyncConfirmed);
    // Operand b carries the speculated stream position so trace-level
    // checkers can assert confirmations advance in sequence space.
    traceEvent(sim::TraceKind::ResyncConfirmed, msgIdx, reqPos);
    confirmedMsgIdx_ = msgIdx;
    if (fsmBug() == FsmBug::ConfirmOffByOne)
        confirmedMsgIdx_ = msgIdx + 1; // mutation: wrong record index
    adoptTrackedPosition();
}

void
StreamFsm::adoptTrackedPosition()
{
    // Software confirmed that the message at the candidate position
    // is message #confirmedMsgIdx_. Everything tracked since then is
    // position- and index-known, so flip to Offloading in skip mode;
    // transforms re-engage at the next packet-aligned boundary (d2).
    toState(FsmState::Offloading);
    skipMode_ = true;
    covered_ = false;
    msgActive_ = false;
    expected_ = trackCont_;

    if (!trackHdrBuf_.empty()) {
        // Mid-header of the message after the tracked chain.
        msgStart_ = nextHdrPos_;
        msgIdx_ = confirmedMsgIdx_ + trackMsgCount_ + 1;
        hdrBuf_ = trackHdrBuf_;
        hdrComplete_ = false;
        msgLen_ = 0;
        inMsgOff_ = trackHdrBuf_.size();
    } else if (trackCont_ == nextHdrPos_) {
        // Exactly at a boundary.
        msgStart_ = nextHdrPos_;
        msgIdx_ = confirmedMsgIdx_ + trackMsgCount_ + 1;
        hdrBuf_.clear();
        hdrComplete_ = false;
        msgLen_ = 0;
        inMsgOff_ = 0;
    } else {
        // Mid-body of the tracked message.
        msgStart_ = trackCurStart_;
        msgIdx_ = confirmedMsgIdx_ + trackMsgCount_;
        hdrBuf_ = trackCurHdr_;
        hdrComplete_ = true;
        msgLen_ = trackCurLen_;
        inMsgOff_ = trackCont_ - trackCurStart_;
    }
    trackHdrBuf_.clear();
}

} // namespace anic::nic
