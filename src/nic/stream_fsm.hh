/**
 * @file
 * The autonomous-offload stream state machine (paper §4.3, Figure 7).
 *
 * One StreamFsm instance tracks one L5P layer of one flow direction
 * inside the NIC. It is generic over the protocol via L5Engine and is
 * reused both for the outer layer (messages framed directly in the
 * TCP byte stream) and, in the NVMe-TLS composition, for the inner
 * layer (messages framed in the TLS plaintext stream).
 *
 * States:
 *  - Offloading: the context can process the next in-sequence byte.
 *    A sub-mode ("skip") performs framing-only processing while
 *    waiting to re-enable transforms at a packet-aligned message
 *    boundary, which keeps offload decisions packet-granular (a
 *    packet is either fully processed or fully bypassed, mirroring
 *    the single decrypted/crc_ok descriptor bit).
 *  - Searching: scans payload for the protocol's magic pattern;
 *    a plausible header triggers a resync request to software.
 *  - Tracking: follows the speculated message chain via header
 *    length fields, verifying each subsequent magic pattern, until
 *    software confirms or refutes the speculation.
 *
 * Positions are 64-bit logical stream offsets maintained by the
 * caller (the NIC maps TCP sequence numbers onto them; inner layers
 * count plaintext bytes).
 */

#ifndef ANIC_NIC_STREAM_FSM_HH
#define ANIC_NIC_STREAM_FSM_HH

#include <functional>

#include "nic/engine.hh"

namespace anic::nic {

enum class FsmState
{
    Offloading,
    Searching,
    Tracking,
};

/** Observable FSM statistics (drive Figures 16-18 classification). */
struct FsmStats
{
    uint64_t msgsCompleted = 0;   ///< messages whose end was processed
    uint64_t msgsCovered = 0;     ///< ... with full coverage (verified)
    uint64_t msgsAborted = 0;     ///< messages disrupted mid-processing
    uint64_t resyncRequests = 0;  ///< speculations sent to software
    uint64_t resyncConfirmed = 0; ///< speculations software confirmed
    uint64_t resyncRefuted = 0;   ///< speculations software refuted
    uint64_t trackFailures = 0;   ///< magic mismatch while tracking
    uint64_t desyncs = 0;         ///< in-sequence framing desync (bad)
    uint64_t gapEvents = 0;       ///< out-of-sequence spans observed
    uint64_t bypassedSpans = 0;   ///< spans passed through unprocessed
    uint64_t midMsgResumes = 0;   ///< mid-message (placement) resumes
};

class StreamFsm
{
  public:
    /**
     * @param engine    protocol engine (owned by the flow context)
     * @param requestResync  upcall: ask software to confirm a header
     *                       speculation at a stream position; the id
     *                       must be echoed in confirm().
     */
    StreamFsm(L5Engine &engine,
              std::function<void(uint64_t reqId, uint64_t pos)> requestResync);

    /** Arms the FSM: the next message starts at @p pos with index
     *  @p msgIdx (from l5o_create / context recovery). */
    void reset(uint64_t pos, uint64_t msgIdx);

    /**
     * Feeds one span of this layer's stream (one packet's worth of
     * bytes at this layer) at logical position @p pos. Bytes may be
     * transformed in place; results accumulate into @p res.
     *
     * @return true iff every byte of the span was consumed with
     * transforms active — the condition for setting the packet's
     * single offloaded descriptor bit.
     */
    bool segment(uint64_t pos, ByteSpan data, PacketResult &res);

    /** The caller lost track of stream positions (inner layer only):
     *  drop to Searching and accept the next segment position as a
     *  fresh continuity base. */
    void positionLost();

    /** Software's answer to a resync request. @p msgIdx is the index
     *  of the message starting at the speculated position (valid when
     *  @p ok). */
    void confirm(uint64_t reqId, bool ok, uint64_t msgIdx);

    FsmState state() const { return state_; }
    const FsmStats &stats() const { return stats_; }

    /** True while transforms are live (Offloading, not skip mode). */
    bool transformsActive() const
    {
        return state_ == FsmState::Offloading && !skipMode_;
    }

  private:
    bool processSpan(uint64_t pos, ByteSpan data, PacketResult &res,
                     bool allowResume = true);
    void feedScan(uint64_t pos, ByteView data, PacketResult &res);
    void handleGap(uint64_t pos, ByteSpan data, PacketResult &res);
    void enterSearch(uint64_t contPos);
    void scanSpan(uint64_t pos, ByteView data, PacketResult &res);
    void trackSpan(uint64_t pos, ByteView data, PacketResult &res);
    void adoptTrackedPosition();

    L5Engine &engine_;
    std::function<void(uint64_t, uint64_t)> requestResync_;

    FsmState state_ = FsmState::Searching;
    FsmStats stats_;

    // ---- Offloading sub-state
    uint64_t expected_ = 0; ///< next processable stream position
    uint64_t msgStart_ = 0; ///< current message start position
    uint64_t msgIdx_ = 0;   ///< index of the current message
    Bytes hdrBuf_;          ///< header bytes (partial or complete)
    bool hdrComplete_ = false;
    uint64_t msgLen_ = 0;   ///< wire length (valid when hdrComplete_)
    uint64_t inMsgOff_ = 0; ///< consumed bytes of the current message
    bool covered_ = false;  ///< message seen from its start, gap-free
    bool skipMode_ = false; ///< framing-only (transforms disabled)
    bool msgActive_ = false; ///< engine holds transform state

    // ---- Searching sub-state
    bool contValid_ = false;
    uint64_t searchCont_ = 0;
    Bytes searchCarry_;

    // ---- Tracking sub-state
    uint64_t trackCont_ = 0;
    uint64_t nextHdrPos_ = 0;
    Bytes trackHdrBuf_;
    uint64_t trackMsgCount_ = 0;
    uint64_t trackCurStart_ = 0; ///< start of the tracked msg preceding nextHdrPos_
    uint64_t trackCurLen_ = 0;
    Bytes trackCurHdr_;
    uint64_t pendingReqId_ = 0;
    uint64_t nextReqId_ = 1;
    bool confirmedOk_ = false;
    uint64_t confirmedMsgIdx_ = 0;
    bool haveConfirm_ = false;
};

} // namespace anic::nic

#endif // ANIC_NIC_STREAM_FSM_HH
