/**
 * @file
 * The autonomous-offload stream state machine (paper §4.3, Figure 7).
 *
 * One StreamFsm instance tracks one L5P layer of one flow direction
 * inside the NIC. It is generic over the protocol via L5Engine and is
 * reused both for the outer layer (messages framed directly in the
 * TCP byte stream) and, in the NVMe-TLS composition, for the inner
 * layer (messages framed in the TLS plaintext stream).
 *
 * States:
 *  - Offloading: the context can process the next in-sequence byte.
 *    A sub-mode ("skip") performs framing-only processing while
 *    waiting to re-enable transforms at a packet-aligned message
 *    boundary, which keeps offload decisions packet-granular (a
 *    packet is either fully processed or fully bypassed, mirroring
 *    the single decrypted/crc_ok descriptor bit).
 *  - Searching: scans payload for the protocol's magic pattern;
 *    a plausible header triggers a resync request to software.
 *  - Tracking: follows the speculated message chain via header
 *    length fields, verifying each subsequent magic pattern, until
 *    software confirms or refutes the speculation.
 *
 * Positions are 64-bit logical stream offsets maintained by the
 * caller (the NIC maps TCP sequence numbers onto them; inner layers
 * count plaintext bytes).
 */

#ifndef ANIC_NIC_STREAM_FSM_HH
#define ANIC_NIC_STREAM_FSM_HH

#include <functional>
#include <string>

#include "nic/engine.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace anic::nic {

enum class FsmState
{
    Offloading,
    Searching,
    Tracking,
};

constexpr int kFsmStateCount = 3;

const char *fsmStateName(FsmState s);

/** Observable FSM statistics (drive Figures 16-18 classification). */
struct FsmStats
{
    sim::Counter msgsCompleted;   ///< messages whose end was processed
    sim::Counter msgsCovered;     ///< ... with full coverage (verified)
    sim::Counter msgsAborted;     ///< messages disrupted mid-processing
    sim::Counter resyncRequests;  ///< speculations sent to software
    sim::Counter resyncConfirmed; ///< speculations software confirmed
    sim::Counter resyncRefuted;   ///< speculations software refuted
    sim::Counter trackFailures;   ///< magic mismatch while tracking
    sim::Counter desyncs;         ///< in-sequence framing desync (bad)
    sim::Counter gapEvents;       ///< out-of-sequence spans observed
    sim::Counter bypassedSpans;   ///< spans passed through unprocessed
    sim::Counter midMsgResumes;   ///< mid-message (placement) resumes
};

/**
 * Invariant probe: a harness-side observer of every FSM decision.
 * Unlike the TraceRing (bounded, sampling-friendly), a probe sees
 * every event synchronously and can assert invariants the paper's
 * transparency argument rests on — e.g. a span is only ever processed
 * in-sequence from the Offloading state, transition edges follow the
 * documented diagram, and resync confirmations move forward in
 * sequence space. All callbacks default to no-ops so checkers
 * override only what they need.
 */
struct FsmProbe
{
    virtual ~FsmProbe() = default;
    /** One segment() call: @p preState / @p preExpected are the state
     *  and next-processable position on entry, @p processed the
     *  return value (span fully consumed with transforms active). */
    virtual void onSegment(uint64_t traceId, FsmState preState, uint64_t pos,
                           uint64_t preExpected, size_t len, bool processed)
    {
        (void)traceId, (void)preState, (void)pos;
        (void)preExpected, (void)len, (void)processed;
    }
    /** A state change (self-loops are never reported). */
    virtual void onTransition(uint64_t traceId, FsmState from, FsmState to)
    {
        (void)traceId, (void)from, (void)to;
    }
    virtual void onResyncRequest(uint64_t traceId, uint64_t reqId,
                                 uint64_t pos)
    {
        (void)traceId, (void)reqId, (void)pos;
    }
    /** Software's confirm/refute reached a live speculation; @p pos is
     *  the originally speculated stream position. */
    virtual void onResyncResolved(uint64_t traceId, uint64_t reqId, bool ok,
                                  uint64_t pos)
    {
        (void)traceId, (void)reqId, (void)ok, (void)pos;
    }
};

/**
 * Observability hooks the owner (the NIC, or a test) installs on a
 * StreamFsm. All members are optional; a default-constructed hooks
 * struct keeps the FSM silent. The NIC aggregates every per-flow FSM
 * into one FsmStats + per-state dwell distributions so the registry
 * stays bounded no matter how many flows exist.
 */
struct FsmHooks
{
    std::function<sim::Tick()> now; ///< time source for dwell/trace
    FsmStats *aggregate = nullptr;  ///< owner-level roll-up
    /** Per-state dwell-time distributions (ns per visit), indexed by
     *  FsmState; the Figs 17-18 signal for how long loss/reorder keep
     *  the NIC out of Offloading. */
    sim::Distribution *dwellNs[kFsmStateCount] = {};
    sim::TraceRing *trace = nullptr;
    uint64_t traceId = 0;           ///< flow id stamped on trace events
    FsmProbe *probe = nullptr;      ///< synchronous invariant observer
    std::string name;               ///< component path, e.g. "srv.nic0.fsm"
};

class StreamFsm
{
  public:
    /**
     * @param engine    protocol engine (owned by the flow context)
     * @param requestResync  upcall: ask software to confirm a header
     *                       speculation at a stream position; the id
     *                       must be echoed in confirm().
     */
    StreamFsm(L5Engine &engine,
              std::function<void(uint64_t reqId, uint64_t pos)> requestResync);

    /** Installs observability hooks (see FsmHooks). Call before
     *  reset() so the initial state's dwell clock starts correctly. */
    void setHooks(FsmHooks hooks);

    /** Arms the FSM: the next message starts at @p pos with index
     *  @p msgIdx (from l5o_create / context recovery). */
    void reset(uint64_t pos, uint64_t msgIdx);

    /**
     * Feeds one span of this layer's stream (one packet's worth of
     * bytes at this layer) at logical position @p pos. Bytes may be
     * transformed in place; results accumulate into @p res.
     *
     * @return true iff every byte of the span was consumed with
     * transforms active — the condition for setting the packet's
     * single offloaded descriptor bit.
     */
    bool segment(uint64_t pos, ByteSpan data, PacketResult &res);

    /** The caller lost track of stream positions (inner layer only):
     *  drop to Searching and accept the next segment position as a
     *  fresh continuity base. */
    void positionLost();

    /** Software's answer to a resync request. @p msgIdx is the index
     *  of the message starting at the speculated position (valid when
     *  @p ok). */
    void confirm(uint64_t reqId, bool ok, uint64_t msgIdx);

    FsmState state() const { return state_; }
    const FsmStats &stats() const { return stats_; }

    /** True while transforms are live (Offloading, not skip mode). */
    bool transformsActive() const
    {
        return state_ == FsmState::Offloading && !skipMode_;
    }

  private:
    bool segmentImpl(uint64_t pos, ByteSpan data, PacketResult &res);
    bool processSpan(uint64_t pos, ByteSpan data, PacketResult &res,
                     bool allowResume = true);
    void feedScan(uint64_t pos, ByteView data, PacketResult &res);
    void handleGap(uint64_t pos, ByteSpan data, PacketResult &res);
    void enterSearch(uint64_t contPos);
    void scanSpan(uint64_t pos, ByteView data, PacketResult &res);
    void trackSpan(uint64_t pos, ByteView data, PacketResult &res);
    void adoptTrackedPosition();

    /** State transition: closes the departing state's dwell interval
     *  and records a trace event when the state actually changes. */
    void toState(FsmState next);
    /** Increments a stat on this FSM and on the owner aggregate. */
    void bump(sim::Counter FsmStats::*m, uint64_t n = 1);
    void traceEvent(sim::TraceKind kind, uint64_t a = 0, uint64_t b = 0);

    L5Engine &engine_;
    std::function<void(uint64_t, uint64_t)> requestResync_;

    FsmState state_ = FsmState::Searching;
    FsmStats stats_;
    FsmHooks hooks_;
    sim::Tick stateEnterTick_ = 0;

    // ---- Offloading sub-state
    uint64_t expected_ = 0; ///< next processable stream position
    uint64_t msgStart_ = 0; ///< current message start position
    uint64_t msgIdx_ = 0;   ///< index of the current message
    Bytes hdrBuf_;          ///< header bytes (partial or complete)
    bool hdrComplete_ = false;
    uint64_t msgLen_ = 0;   ///< wire length (valid when hdrComplete_)
    uint64_t inMsgOff_ = 0; ///< consumed bytes of the current message
    bool covered_ = false;  ///< message seen from its start, gap-free
    bool skipMode_ = false; ///< framing-only (transforms disabled)
    bool msgActive_ = false; ///< engine holds transform state

    // ---- Searching sub-state
    bool contValid_ = false;
    uint64_t searchCont_ = 0;
    Bytes searchCarry_;

    // ---- Tracking sub-state
    uint64_t trackCont_ = 0;
    uint64_t nextHdrPos_ = 0;
    Bytes trackHdrBuf_;
    uint64_t trackMsgCount_ = 0;
    uint64_t trackCurStart_ = 0; ///< start of the tracked msg preceding nextHdrPos_
    uint64_t trackCurLen_ = 0;
    Bytes trackCurHdr_;
    uint64_t pendingReqId_ = 0;
    uint64_t pendingReqPos_ = 0; ///< speculated position of the live request
    uint64_t nextReqId_ = 1;
    bool confirmedOk_ = false;
    uint64_t confirmedMsgIdx_ = 0;
    bool haveConfirm_ = false;
};

} // namespace anic::nic

#endif // ANIC_NIC_STREAM_FSM_HH
