#include "nic/cache_policy.hh"

#include <utility>

#include "util/env.hh"
#include "util/panic.hh"

namespace anic::nic {

CtxPolicy
parseCtxPolicy(const std::string &s)
{
    if (s == "lru")
        return CtxPolicy::Lru;
    if (s == "clock")
        return CtxPolicy::Clock;
    if (s == "pinhot" || s == "pin-hot")
        return CtxPolicy::PinHot;
    fatal("unknown context-cache policy '%s' (want lru|clock|pinhot)",
          s.c_str());
}

const char *
ctxPolicyName(CtxPolicy p)
{
    switch (p) {
      case CtxPolicy::Auto: return "auto";
      case CtxPolicy::Lru: return "lru";
      case CtxPolicy::Clock: return "clock";
      case CtxPolicy::PinHot: return "pinhot";
    }
    return "?";
}

CtxPolicy
resolveCtxPolicy(CtxPolicy configured)
{
    if (configured != CtxPolicy::Auto)
        return configured;
    const std::string &env = util::Env::ctxPolicy();
    return env.empty() ? CtxPolicy::Lru : parseCtxPolicy(env);
}

namespace {

/**
 * Exact LRU over an intrusive doubly-linked list whose nodes live in
 * one vector (index-linked, freelist-recycled) with a FlatMap id ->
 * node index. Replicates the original std::list + unordered_map
 * model decision-for-decision: hit -> splice to front; miss-insert ->
 * pop the back while size >= capacity, then push front.
 */
class LruCache final : public CachePolicy
{
  public:
    LruCache(size_t capacity, EvictFn evict)
        : cap_(capacity), evict_(std::move(evict))
    {
        ANIC_ASSERT(cap_ > 0, "context cache capacity must be >= 1");
    }

    bool
    touch(uint64_t ctxId) override
    {
        uint32_t *n = map_.find(ctxId);
        if (n == nullptr)
            return false;
        moveToFront(*n);
        return true;
    }

    void
    insert(uint64_t ctxId) override
    {
        ANIC_ASSERT(map_.find(ctxId) == nullptr, "double insert");
        while (map_.size() >= cap_)
            evictBack();
        pushFront(ctxId);
    }

    void
    remove(uint64_t ctxId) override
    {
        uint32_t *n = map_.find(ctxId);
        if (n == nullptr)
            return;
        uint32_t idx = *n;
        unlink(idx);
        freeNode(idx);
        map_.erase(ctxId);
    }

    bool resident(uint64_t ctxId) const override
    {
        return map_.contains(ctxId);
    }
    size_t size() const override { return map_.size(); }
    const char *name() const override { return "lru"; }

  private:
    static constexpr uint32_t kNil = 0xffffffffu;

    struct Node
    {
        uint64_t id;
        uint32_t prev;
        uint32_t next;
    };

    uint32_t
    allocNode(uint64_t id)
    {
        uint32_t idx;
        if (free_ != kNil) {
            idx = free_;
            free_ = nodes_[idx].next;
        } else {
            idx = static_cast<uint32_t>(nodes_.size());
            nodes_.emplace_back();
        }
        nodes_[idx].id = id;
        return idx;
    }

    void
    freeNode(uint32_t idx)
    {
        nodes_[idx].next = free_;
        free_ = idx;
    }

    void
    unlink(uint32_t idx)
    {
        Node &n = nodes_[idx];
        if (n.prev != kNil)
            nodes_[n.prev].next = n.next;
        else
            head_ = n.next;
        if (n.next != kNil)
            nodes_[n.next].prev = n.prev;
        else
            tail_ = n.prev;
    }

    void
    pushFront(uint64_t id)
    {
        uint32_t idx = allocNode(id);
        Node &n = nodes_[idx];
        n.prev = kNil;
        n.next = head_;
        if (head_ != kNil)
            nodes_[head_].prev = idx;
        head_ = idx;
        if (tail_ == kNil)
            tail_ = idx;
        map_.put(id, idx);
    }

    void
    moveToFront(uint32_t idx)
    {
        if (head_ == idx)
            return;
        unlink(idx);
        Node &n = nodes_[idx];
        n.prev = kNil;
        n.next = head_;
        nodes_[head_].prev = idx;
        head_ = idx;
    }

    void
    evictBack()
    {
        ANIC_ASSERT(tail_ != kNil, "evict from empty cache");
        uint32_t idx = tail_;
        uint64_t id = nodes_[idx].id;
        unlink(idx);
        freeNode(idx);
        map_.erase(id);
        evict_(id);
    }

    std::vector<Node> nodes_;
    uint32_t head_ = kNil;
    uint32_t tail_ = kNil;
    uint32_t free_ = kNil;
    util::FlatMap<uint64_t, uint32_t> map_;
    size_t cap_;
    EvictFn evict_;
};

/**
 * CLOCK (second chance): a ring of at most `capacity` slots, one
 * reference bit each. Hits just set the bit — no pointer surgery —
 * which is why real hardware tables prefer this shape. On a full
 * insert the hand sweeps, clearing set bits, and evicts the first
 * slot it finds clear; the newcomer takes that slot with its bit set.
 */
class ClockCache final : public CachePolicy
{
  public:
    ClockCache(size_t capacity, EvictFn evict)
        : cap_(capacity), evict_(std::move(evict))
    {
        ANIC_ASSERT(cap_ > 0, "context cache capacity must be >= 1");
    }

    bool
    touch(uint64_t ctxId) override
    {
        uint32_t *s = map_.find(ctxId);
        if (s == nullptr)
            return false;
        slots_[*s].ref = true;
        return true;
    }

    void
    insert(uint64_t ctxId) override
    {
        ANIC_ASSERT(map_.find(ctxId) == nullptr, "double insert");
        uint32_t slot;
        if (!freeSlots_.empty()) {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        } else if (slots_.size() < cap_) {
            slot = static_cast<uint32_t>(slots_.size());
            slots_.emplace_back();
        } else {
            slot = evictAtHand();
        }
        slots_[slot].id = ctxId;
        slots_[slot].ref = true;
        slots_[slot].occupied = true;
        map_.put(ctxId, slot);
    }

    void
    remove(uint64_t ctxId) override
    {
        uint32_t *s = map_.find(ctxId);
        if (s == nullptr)
            return;
        slots_[*s].occupied = false;
        freeSlots_.push_back(*s);
        map_.erase(ctxId);
    }

    bool resident(uint64_t ctxId) const override
    {
        return map_.contains(ctxId);
    }
    size_t size() const override { return map_.size(); }
    const char *name() const override { return "clock"; }

  private:
    struct Slot
    {
        uint64_t id = 0;
        bool ref = false;
        bool occupied = false;
    };

    uint32_t
    evictAtHand()
    {
        // Terminates within two sweeps: the first pass clears every
        // set bit, so the second pass must find a clear one. Holes
        // never coexist with a full ring (insert drains freeSlots_
        // first), so occupied slots are all the hand can meet here.
        for (;;) {
            Slot &s = slots_[hand_];
            uint32_t here = hand_;
            hand_ = (hand_ + 1) % static_cast<uint32_t>(slots_.size());
            ANIC_ASSERT(s.occupied, "hole in full clock ring");
            if (s.ref) {
                s.ref = false;
                continue;
            }
            map_.erase(s.id);
            s.occupied = false;
            evict_(s.id);
            return here;
        }
    }

    std::vector<Slot> slots_;
    std::vector<uint32_t> freeSlots_;
    util::FlatMap<uint64_t, uint32_t> map_; ///< id -> ring slot
    uint32_t hand_ = 0;
    size_t cap_ = 0;
    EvictFn evict_;
};

/**
 * Pin-hot (segmented LRU): the cache is split into a probationary
 * segment (1/4) and a protected segment (3/4). New contexts enter
 * probation; a second touch promotes to protected, demoting the
 * protected LRU back to probation's MRU end if the segment is over
 * budget. Eviction always takes the probation LRU first, so a burst
 * of one-shot flows (connection churn) cannot flush the established
 * hot set. At capacity 1 the protected budget is 0 and this is plain
 * LRU; with capacity >= flows nothing evicts — both pinned by tests.
 */
class PinHotCache final : public CachePolicy
{
  public:
    PinHotCache(size_t capacity, EvictFn evict)
        : cap_(capacity), protCap_(capacity * 3 / 4),
          evict_(std::move(evict))
    {
        ANIC_ASSERT(cap_ > 0, "context cache capacity must be >= 1");
    }

    bool
    touch(uint64_t ctxId) override
    {
        uint32_t *n = map_.find(ctxId);
        if (n == nullptr)
            return false;
        uint32_t idx = *n;
        if (nodes_[idx].seg == kProtected) {
            moveToFront(protected_, idx);
        } else {
            // Second touch: promote out of probation.
            unlink(probation_, idx);
            nodes_[idx].seg = kProtected;
            pushFront(protected_, idx);
            while (protected_.count > protCap_)
                demoteProtectedLru();
        }
        return true;
    }

    void
    insert(uint64_t ctxId) override
    {
        ANIC_ASSERT(map_.find(ctxId) == nullptr, "double insert");
        while (map_.size() >= cap_)
            evictOne();
        uint32_t idx = allocNode(ctxId);
        nodes_[idx].seg = kProbation;
        pushFront(probation_, idx);
        map_.put(ctxId, idx);
    }

    void
    remove(uint64_t ctxId) override
    {
        uint32_t *n = map_.find(ctxId);
        if (n == nullptr)
            return;
        uint32_t idx = *n;
        unlink(list(nodes_[idx].seg), idx);
        freeNode(idx);
        map_.erase(ctxId);
    }

    bool resident(uint64_t ctxId) const override
    {
        return map_.contains(ctxId);
    }
    size_t size() const override { return map_.size(); }
    const char *name() const override { return "pinhot"; }

  private:
    static constexpr uint32_t kNil = 0xffffffffu;
    static constexpr uint8_t kProbation = 0;
    static constexpr uint8_t kProtected = 1;

    struct Node
    {
        uint64_t id;
        uint32_t prev;
        uint32_t next;
        uint8_t seg;
    };

    struct List
    {
        uint32_t head = kNil;
        uint32_t tail = kNil;
        size_t count = 0;
    };

    List &list(uint8_t seg)
    {
        return seg == kProtected ? protected_ : probation_;
    }

    uint32_t
    allocNode(uint64_t id)
    {
        uint32_t idx;
        if (free_ != kNil) {
            idx = free_;
            free_ = nodes_[idx].next;
        } else {
            idx = static_cast<uint32_t>(nodes_.size());
            nodes_.emplace_back();
        }
        nodes_[idx].id = id;
        return idx;
    }

    void
    freeNode(uint32_t idx)
    {
        nodes_[idx].next = free_;
        free_ = idx;
    }

    void
    unlink(List &l, uint32_t idx)
    {
        Node &n = nodes_[idx];
        if (n.prev != kNil)
            nodes_[n.prev].next = n.next;
        else
            l.head = n.next;
        if (n.next != kNil)
            nodes_[n.next].prev = n.prev;
        else
            l.tail = n.prev;
        l.count--;
    }

    void
    pushFront(List &l, uint32_t idx)
    {
        Node &n = nodes_[idx];
        n.prev = kNil;
        n.next = l.head;
        if (l.head != kNil)
            nodes_[l.head].prev = idx;
        l.head = idx;
        if (l.tail == kNil)
            l.tail = idx;
        l.count++;
    }

    void
    moveToFront(List &l, uint32_t idx)
    {
        if (l.head == idx)
            return;
        unlink(l, idx);
        pushFront(l, idx);
    }

    void
    demoteProtectedLru()
    {
        uint32_t idx = protected_.tail;
        ANIC_ASSERT(idx != kNil);
        unlink(protected_, idx);
        nodes_[idx].seg = kProbation;
        pushFront(probation_, idx);
    }

    void
    evictOne()
    {
        uint32_t idx =
            probation_.tail != kNil ? probation_.tail : protected_.tail;
        ANIC_ASSERT(idx != kNil, "evict from empty cache");
        uint64_t id = nodes_[idx].id;
        unlink(list(nodes_[idx].seg), idx);
        freeNode(idx);
        map_.erase(id);
        evict_(id);
    }

    std::vector<Node> nodes_;
    uint32_t free_ = kNil;
    List probation_;
    List protected_;
    util::FlatMap<uint64_t, uint32_t> map_;
    size_t cap_;
    size_t protCap_;
    EvictFn evict_;
};

} // namespace

std::unique_ptr<CachePolicy>
CachePolicy::make(CtxPolicy p, size_t capacity, EvictFn evict)
{
    switch (resolveCtxPolicy(p)) {
      case CtxPolicy::Lru:
        return std::make_unique<LruCache>(capacity, std::move(evict));
      case CtxPolicy::Clock:
        return std::make_unique<ClockCache>(capacity, std::move(evict));
      case CtxPolicy::PinHot:
        return std::make_unique<PinHotCache>(capacity, std::move(evict));
      case CtxPolicy::Auto:
        break;
    }
    panic("unresolved context-cache policy");
}

} // namespace anic::nic
