/**
 * @file
 * Pluggable replacement policies for the NIC's on-die flow-context
 * cache (~4 MiB at 208 B/flow => ~20K contexts, far fewer than the
 * live flows a loaded server carries). Which contexts stay resident
 * decides the offload hit rate — the paper's Figure 19 tension — so
 * the policy is a first-class experimental knob:
 *
 *   lru     exact least-recently-used (the original model; default)
 *   clock   second-chance ring: one reference bit per slot, a hand
 *           that clears bits until it finds a zero — what a hardware
 *           table would actually implement (no global ordering)
 *   pinhot  segmented LRU: 3/4 of the cache is a protected segment
 *           that only flows touched at least twice enter; one-shot
 *           flows wash through the probationary 1/4 without evicting
 *           the hot set (churn-resistant)
 *
 * Selected per NIC via Nic::Config::ctxPolicy, with ANIC_CTX_POLICY
 * as the process-wide default. All policies degenerate to identical
 * behavior at capacity 1 and at capacity >= flow count (tests pin
 * this), and `lru` reproduces the pre-refactor std::list model
 * decision-for-decision.
 */

#ifndef ANIC_NIC_CACHE_POLICY_HH
#define ANIC_NIC_CACHE_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/flat_map.hh"

namespace anic::nic {

/** Context-cache eviction policy selector (Nic::Config::ctxPolicy).
 *  Auto resolves to ANIC_CTX_POLICY, or Lru when unset. */
enum class CtxPolicy
{
    Auto,
    Lru,
    Clock,
    PinHot,
};

/** Parses "lru" / "clock" / "pinhot" (also "pin-hot"); panics on
 *  anything else so knob typos fail loudly. */
CtxPolicy parseCtxPolicy(const std::string &s);

const char *ctxPolicyName(CtxPolicy p);

/** Resolves Auto against the ANIC_CTX_POLICY environment knob. */
CtxPolicy resolveCtxPolicy(CtxPolicy configured);

/**
 * Replacement-policy interface. The policy tracks residency only
 * (context ids); the context payload lives in the NIC's slab arena
 * regardless of residency — eviction models the writeback of the
 * 208 B hardware state over PCIe, not destruction.
 */
class CachePolicy
{
  public:
    /** Invoked for every context evicted during insert(): the owner
     *  accounts the PCIe writeback + stats. */
    using EvictFn = std::function<void(uint64_t ctxId)>;

    virtual ~CachePolicy() = default;

    /** Access by the data path: returns true on a hit (and updates
     *  recency state); false means the caller must fetch and then
     *  insert(). */
    virtual bool touch(uint64_t ctxId) = 0;

    /** Makes @p ctxId resident after a miss, evicting (via the
     *  callback) until it fits. Pre: !resident(ctxId). */
    virtual void insert(uint64_t ctxId) = 0;

    /** Drops @p ctxId without an eviction callback (context
     *  destroyed); no-op when not resident. */
    virtual void remove(uint64_t ctxId) = 0;

    virtual bool resident(uint64_t ctxId) const = 0;
    virtual size_t size() const = 0;
    virtual const char *name() const = 0;

    static std::unique_ptr<CachePolicy> make(CtxPolicy p, size_t capacity,
                                             EvictFn evict);
};

} // namespace anic::nic

#endif // ANIC_NIC_CACHE_POLICY_HH
