/**
 * @file
 * NIC-side L5P engine interface.
 *
 * The autonomous-offload NIC separates *framing + resynchronization*
 * (generic across L5Ps, implemented once in StreamFsm) from the
 * *offloaded computation* (per-L5P, implemented by an L5Engine).
 *
 * An engine instance is the per-flow hardware state for one protocol
 * layer and one direction: it holds the static state from l5o_create
 * (keys, maps) and the dynamic state the paper requires to be
 * constant-size (cipher position, running CRC).
 */

#ifndef ANIC_NIC_ENGINE_HH
#define ANIC_NIC_ENGINE_HH

#include <cstdint>
#include <optional>

#include "net/packet.hh"
#include "sim/registry.hh"
#include "util/bytes.hh"

namespace anic::nic {

/**
 * Work counters shared by all engine kinds; the NIC owns one
 * aggregate per device (published as "<nic>.engine.*") and installs
 * it on every engine it hosts, including inner engines of the
 * NVMe-TLS composition.
 */
struct EngineStats
{
    sim::Counter bytesTransformed; ///< encrypted/decrypted in place
    sim::Counter bytesChecked;     ///< CRC-covered payload bytes
    sim::Counter bytesPlaced;      ///< zero-copy DMA placement
    sim::Counter tagsVerified;     ///< TLS ICVs checked OK
    sim::Counter tagFailures;      ///< TLS ICV mismatches
    sim::Counter crcsVerified;     ///< NVMe data digests checked OK
    sim::Counter crcFailures;      ///< NVMe data digest mismatches
};

/**
 * Accumulates the offload results for the packet currently moving
 * through the rx pipeline; the NIC copies them into the packet's
 * receive descriptor (net::RxOffloadMeta).
 */
struct PacketResult
{
    /** TLS: bytes decrypted in this packet. */
    bool sawCryptoBytes = false;
    /** TLS: a record tag completed in this packet and failed. */
    bool tagFailed = false;
    /** NVMe: the CRC engine processed bytes in this packet. */
    bool sawCrcBytes = false;
    /** NVMe: a capsule CRC completed here without full coverage. */
    bool crcIncomplete = false;
    /** NVMe: a capsule CRC completed here and mismatched. */
    bool crcFailed = false;
    /** NVMe: payload ranges DMA-written to their destination
     *  (offsets relative to the TCP payload of the packet). */
    std::vector<net::PlacedRange> placed;

    /** Offset within the packet's TCP payload corresponding to byte 0
     *  of the span handed to StreamFsm::segment (outer layer: 0; inner
     *  layers: set by the enclosing engine before feeding). */
    uint32_t payloadBase = 0;

    /** Offset within the packet's TCP payload of the bytes currently
     *  passed to onMsgData. Maintained by StreamFsm so engines can
     *  record placement ranges against the packet. */
    uint32_t spanPktOff = 0;
};

/** Framing information parsed from an L5P message header. */
struct MsgInfo
{
    /** Total size of the message on the wire (header + payload +
     *  trailer), in stream bytes at this engine's layer. */
    uint64_t wireLen = 0;
};

/**
 * Per-flow, per-layer engine. All stream offsets are relative to the
 * layer's own logical byte stream (TCP payload for the outer layer,
 * TLS plaintext for an inner layer).
 */
class L5Engine
{
  public:
    virtual ~L5Engine() = default;

    /** Fixed header size used for magic-pattern speculation. */
    virtual size_t headerSize() const = 0;

    /**
     * Validates the magic pattern at @p hdr (headerSize() bytes) and
     * extracts framing. Returns nullopt if the pattern does not match
     * (used both for in-stream framing and speculative search).
     */
    virtual std::optional<MsgInfo> parseHeader(ByteView hdr) const = 0;

    /**
     * True if the engine can resume processing mid-message (e.g.
     * NVMe-TCP placement); false if it must wait for the next message
     * boundary (e.g. TLS record crypto).
     */
    virtual bool resumeMidMessage() const = 0;

    // ------------------------------------------------- data path
    /**
     * A new message starts. @p msgIdx counts messages from offload
     * creation (the "number of previous messages" the dynamic state
     * may depend on); @p hdr is the complete header.
     */
    virtual void onMsgStart(uint64_t msgIdx, ByteView hdr) = 0;

    /**
     * In-sequence message bytes (header bytes included, starting at
     * message offset @p off). @p dryRun requests framing-only
     * processing with no transform and no placement (used for the
     * packet in which offload resumes mid-way, which must go up the
     * stack unmodified). May modify bytes in place when !dryRun.
     */
    virtual void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                           PacketResult &res) = 0;

    /**
     * The message completed (all bytes seen since the engine's last
     * start/resume point). @p covered is false when processing
     * resumed mid-message, i.e. verification state is incomplete.
     */
    virtual void onMsgEnd(bool covered, PacketResult &res) = 0;

    /**
     * Processing resumes mid-message after out-of-sequence traffic:
     * the header was observed (possibly in a bypassed packet) and
     * subsequent packets will be fed from @p off onward. Only called
     * when resumeMidMessage() is true.
     */
    virtual void onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off) = 0;

    /** The current message was disrupted; discard transform state. */
    virtual void onMsgAbort() = 0;

    /** The context was re-armed via a driver descriptor (tx resync /
     *  l5o re-create); engines hosting inner layers reset them here. */
    virtual void onRearm() {}

    /** Installs the owner's aggregate work counters (may be null).
     *  Engines hosting inner layers propagate the pointer down. */
    virtual void setStats(EngineStats *stats) { engineStats_ = stats; }

  protected:
    /** Bumps an aggregate counter if one is installed. */
    void
    count(sim::Counter EngineStats::*m, uint64_t n = 1)
    {
        if (engineStats_ != nullptr)
            (engineStats_->*m) += n;
    }

    EngineStats *engineStats_ = nullptr;
};

} // namespace anic::nic

#endif // ANIC_NIC_ENGINE_HH
