/**
 * @file
 * NIC-side L5P engine interface.
 *
 * The autonomous-offload NIC separates *framing + resynchronization*
 * (generic across L5Ps, implemented once in StreamFsm) from the
 * *offloaded computation* (per-L5P, implemented by an L5Engine).
 *
 * An engine instance is the per-flow hardware state for one protocol
 * layer and one direction: it holds the static state from l5o_create
 * (keys, maps) and the dynamic state the paper requires to be
 * constant-size (cipher position, running CRC).
 */

#ifndef ANIC_NIC_ENGINE_HH
#define ANIC_NIC_ENGINE_HH

#include <cstdint>
#include <optional>

#include "net/packet.hh"
#include "sim/registry.hh"
#include "util/bytes.hh"

namespace anic::nic {

/**
 * Work counters shared by all engine kinds. Every counter is
 * protocol-agnostic; per-protocol attribution happens by publishing
 * one instance per engine kind (see EngineStatsBank).
 */
struct EngineStats
{
    sim::Counter bytesTransformed; ///< encrypted/decrypted in place
    sim::Counter bytesChecked;     ///< digest-covered payload bytes
    sim::Counter bytesPlaced;      ///< zero-copy DMA placement
    sim::Counter verifiedOk;       ///< tags/digests checked OK
    sim::Counter verifyFailures;   ///< tag/digest mismatches
};

/**
 * The per-device engine counter file: one aggregate bank plus one
 * bank per engine kind. The NIC owns one per device (published as
 * "<nic>.engine.*" and "<nic>.engine.<kind>.*") and installs it on
 * every engine it hosts, including inner engines of the NVMe-TLS
 * composition; engines attribute their own work via their kind().
 */
struct EngineStatsBank
{
    EngineStats total;
    EngineStats kind[net::kL5KindCount];

    void
    bump(net::L5Kind k, sim::Counter EngineStats::*m, uint64_t n = 1)
    {
        (total.*m) += n;
        (kind[static_cast<size_t>(k)].*m) += n;
    }

    const EngineStats &
    of(net::L5Kind k) const
    {
        return kind[static_cast<size_t>(k)];
    }
};

/**
 * Accumulates the offload results for the packet currently moving
 * through the rx pipeline; the NIC copies them into the packet's
 * receive descriptor (net::RxOffloadMeta). All fields are
 * protocol-agnostic: engines report verification outcomes into their
 * kind's slot, so composed layers (TLS outer, NVMe inner) never
 * clobber each other.
 */
struct PacketResult
{
    /** Per-layer verification outcome, indexed by net::L5Kind.
     *  Engines report through setVerify(); outcomes of multiple
     *  messages completing in one packet combine by severity. */
    net::VerifyOutcome verify[net::kL5KindCount] = {};

    /** Payload bytes transformed in place (crypto) in this packet. */
    uint64_t bytesTransformed = 0;

    /** The FSM tagged this packet as failed: it hit an irrecoverable
     *  framing/tracking fault and the stack must treat every offload
     *  claim on the packet as void. Set by StreamFsm, not engines. */
    bool tagFailed = false;

    /** Payload ranges DMA-written to their destination (offsets
     *  relative to the TCP payload of the packet). */
    std::vector<net::PlacedRange> placed;

    /** Offset within the packet's TCP payload corresponding to byte 0
     *  of the span handed to StreamFsm::segment (outer layer: 0; inner
     *  layers: set by the enclosing engine before feeding). */
    uint32_t payloadBase = 0;

    /** Offset within the packet's TCP payload of the bytes currently
     *  passed to onMsgData. Maintained by StreamFsm so engines can
     *  record placement ranges against the packet. */
    uint32_t spanPktOff = 0;

    /** Folds @p o into @p k's outcome slot (severity-max). */
    void
    setVerify(net::L5Kind k, net::VerifyOutcome o)
    {
        net::VerifyOutcome &slot = verify[static_cast<size_t>(k)];
        slot = net::worseOutcome(slot, o);
    }

    net::VerifyOutcome
    verifyOf(net::L5Kind k) const
    {
        return verify[static_cast<size_t>(k)];
    }
};

/** Framing information parsed from an L5P message header. */
struct MsgInfo
{
    /** Total size of the message on the wire (header + payload +
     *  trailer), in stream bytes at this engine's layer. */
    uint64_t wireLen = 0;
};

/**
 * Per-flow, per-layer engine. All stream offsets are relative to the
 * layer's own logical byte stream (TCP payload for the outer layer,
 * TLS plaintext for an inner layer).
 */
class L5Engine
{
  public:
    virtual ~L5Engine() = default;

    /** Protocol kind; selects the outcome slot and counter bank this
     *  engine reports into. */
    virtual net::L5Kind kind() const = 0;

    /** Fixed header size used for magic-pattern speculation. */
    virtual size_t headerSize() const = 0;

    /**
     * Validates the magic pattern at @p hdr (headerSize() bytes) and
     * extracts framing. Returns nullopt if the pattern does not match
     * (used both for in-stream framing and speculative search).
     */
    virtual std::optional<MsgInfo> parseHeader(ByteView hdr) const = 0;

    /**
     * True if the engine can resume processing mid-message (e.g.
     * NVMe-TCP placement); false if it must wait for the next message
     * boundary (e.g. TLS record crypto).
     */
    virtual bool resumeMidMessage() const = 0;

    // ------------------------------------------------- data path
    /**
     * A new message starts. @p msgIdx counts messages from offload
     * creation (the "number of previous messages" the dynamic state
     * may depend on); @p hdr is the complete header.
     */
    virtual void onMsgStart(uint64_t msgIdx, ByteView hdr) = 0;

    /**
     * In-sequence message bytes (header bytes included, starting at
     * message offset @p off). @p dryRun requests framing-only
     * processing with no transform and no placement (used for the
     * packet in which offload resumes mid-way, which must go up the
     * stack unmodified). May modify bytes in place when !dryRun.
     */
    virtual void onMsgData(uint64_t off, ByteSpan data, bool dryRun,
                           PacketResult &res) = 0;

    /**
     * The message completed (all bytes seen since the engine's last
     * start/resume point). @p covered is false when processing
     * resumed mid-message, i.e. verification state is incomplete.
     */
    virtual void onMsgEnd(bool covered, PacketResult &res) = 0;

    /**
     * Processing resumes mid-message after out-of-sequence traffic:
     * the header was observed (possibly in a bypassed packet) and
     * subsequent packets will be fed from @p off onward. Only called
     * when resumeMidMessage() is true.
     */
    virtual void onMsgResume(uint64_t msgIdx, ByteView hdr, uint64_t off) = 0;

    /** The current message was disrupted; discard transform state. */
    virtual void onMsgAbort() = 0;

    /** The context was re-armed via a driver descriptor (tx resync /
     *  l5o re-create); engines hosting inner layers reset them here. */
    virtual void onRearm() {}

    /** Installs the owner's counter bank (may be null). Engines
     *  hosting inner layers propagate the pointer down. */
    virtual void setStats(EngineStatsBank *stats) { engineStats_ = stats; }

  protected:
    /** Bumps a counter (aggregate + this engine's kind bank). */
    void
    count(sim::Counter EngineStats::*m, uint64_t n = 1)
    {
        if (engineStats_ != nullptr)
            engineStats_->bump(kind(), m, n);
    }

    EngineStatsBank *engineStats_ = nullptr;
};

} // namespace anic::nic

#endif // ANIC_NIC_ENGINE_HH
