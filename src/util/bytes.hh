/**
 * @file
 * Byte-manipulation helpers: big-endian codecs, hex formatting, and a
 * deterministic payload generator used by workloads and tests.
 */

#ifndef ANIC_UTIL_BYTES_HH
#define ANIC_UTIL_BYTES_HH

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace anic {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;
using ByteSpan = std::span<uint8_t>;

/** Writes a big-endian integer of @p n bytes (n <= 8) at @p dst. */
inline void
putBe(uint8_t *dst, uint64_t v, size_t n)
{
    for (size_t i = 0; i < n; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * (n - 1 - i)));
}

/** Reads a big-endian integer of @p n bytes (n <= 8) from @p src. */
inline uint64_t
getBe(const uint8_t *src, size_t n)
{
    uint64_t v = 0;
    for (size_t i = 0; i < n; i++)
        v = (v << 8) | src[i];
    return v;
}

inline void putBe16(uint8_t *dst, uint16_t v) { putBe(dst, v, 2); }
inline void putBe32(uint8_t *dst, uint32_t v) { putBe(dst, v, 4); }
inline void putBe64(uint8_t *dst, uint64_t v) { putBe(dst, v, 8); }
inline uint16_t getBe16(const uint8_t *s) { return getBe(s, 2); }
inline uint32_t getBe32(const uint8_t *s) { return getBe(s, 4); }
inline uint64_t getBe64(const uint8_t *s) { return getBe(s, 8); }

/** Writes a little-endian integer of @p n bytes (n <= 8) at @p dst. */
inline void
putLe(uint8_t *dst, uint64_t v, size_t n)
{
    for (size_t i = 0; i < n; i++)
        dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

/** Reads a little-endian integer of @p n bytes (n <= 8) from @p src. */
inline uint64_t
getLe(const uint8_t *src, size_t n)
{
    uint64_t v = 0;
    for (size_t i = 0; i < n; i++)
        v |= static_cast<uint64_t>(src[i]) << (8 * i);
    return v;
}

inline void putLe16(uint8_t *dst, uint16_t v) { putLe(dst, v, 2); }
inline void putLe32(uint8_t *dst, uint32_t v) { putLe(dst, v, 4); }
inline uint16_t getLe16(const uint8_t *s) { return getLe(s, 2); }
inline uint32_t getLe32(const uint8_t *s) { return getLe(s, 4); }

/** Hex-encodes a byte range ("deadbeef"). */
std::string toHex(ByteView data);

/** Decodes a hex string; panics on malformed input (test helper). */
Bytes fromHex(const std::string &hex);

/**
 * Deterministic content generator. Fills @p out with bytes that are a
 * pure function of (seed, absolute offset), so any sub-range of an
 * object's content can be generated or verified independently.
 */
void fillDeterministic(ByteSpan out, uint64_t seed, uint64_t offset);

/** Verifies that @p data matches fillDeterministic(seed, offset). */
bool checkDeterministic(ByteView data, uint64_t seed, uint64_t offset);

} // namespace anic

#endif // ANIC_UTIL_BYTES_HH
