/**
 * @file
 * FlatMap<K, V>: open-addressing hash map with robin-hood probing and
 * backward-shift deletion — no per-node allocation, no tombstones,
 * entries stored inline in one flat array.
 *
 * Replaces std::unordered_map on flow-table hot paths (NIC context
 * lookup per packet, TCP demux per segment): a lookup touches one
 * cache line in the common case instead of chasing a bucket list, and
 * erase under connection churn recycles slots in place instead of
 * freeing nodes. See DESIGN.md §15.
 *
 * Semantics notes:
 *  - pointers/references into the map are invalidated by insert (may
 *    rehash) and by erase (backward shift moves entries); callers that
 *    need stable addresses keep the object in a SlabArena and store
 *    the handle here by value;
 *  - iteration order is unspecified and must not drive simulation
 *    behavior (same contract the unordered_map code had).
 */

#ifndef ANIC_UTIL_FLAT_MAP_HH
#define ANIC_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "util/panic.hh"

namespace anic::util {

/**
 * Default hasher. libstdc++'s std::hash for integers is the identity,
 * and most integer keys here are sequential ids (context ids, slab
 * handles): under open addressing with power-of-two masking, a live
 * window of sequential ids occupies one contiguous run of slots, and
 * every insert whose home slot lands inside the run shifts the entire
 * suffix right and increments its probe distances — distances grow
 * with the number of such inserts, not log(n). Finalizing with
 * splitmix64 scatters sequential keys so probe chains stay short.
 * Non-arithmetic keys defer to std::hash (FlowKeyHash etc. are passed
 * explicitly).
 */
template <typename K>
struct FlatHash
{
    size_t
    operator()(const K &k) const
    {
        if constexpr (std::is_integral_v<K> || std::is_enum_v<K> ||
                      std::is_pointer_v<K>) {
            uint64_t x;
            if constexpr (std::is_pointer_v<K>)
                x = reinterpret_cast<uintptr_t>(k);
            else
                x = static_cast<uint64_t>(k);
            x += 0x9e3779b97f4a7c15ull;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            return static_cast<size_t>(x ^ (x >> 31));
        } else {
            return std::hash<K>{}(k);
        }
    }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
{
  public:
    FlatMap() = default;
    FlatMap(const FlatMap &) = delete;
    FlatMap &operator=(const FlatMap &) = delete;

    FlatMap(FlatMap &&o) noexcept { swap(o); }
    FlatMap &
    operator=(FlatMap &&o) noexcept
    {
        if (this != &o) {
            clearAndRelease();
            swap(o);
        }
        return *this;
    }

    ~FlatMap() { clearAndRelease(); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Value for @p key, or null. Stable only until the next
     *  insert/erase. */
    V *
    find(const K &key)
    {
        if (size_ == 0)
            return nullptr;
        size_t i = indexOf(hash(key));
        for (uint8_t d = 1; dist_[i] != 0; i = nextIndex(i), d++) {
            if (dist_[i] < d)
                return nullptr; // robin-hood: key would have displaced
            if (dist_[i] == d && slot(i)->first == key)
                return &slot(i)->second;
        }
        return nullptr;
    }

    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /** Inserts a new key (must not be present); returns the stored
     *  value (stable until the next insert/erase). */
    V &
    emplace(const K &key, V value)
    {
        ANIC_ASSERT(find(key) == nullptr, "flat map duplicate key");
        if ((size_ + 1) * 4 > cap_ * 3) // max load factor 3/4
            rehash(cap_ == 0 ? kMinCapacity : cap_ * 2);
        return insertNoGrow(key, std::move(value));
    }

    /** Inserts or overwrites; returns the stored value. */
    V &
    put(const K &key, V value)
    {
        if (V *v = find(key)) {
            *v = std::move(value);
            return *v;
        }
        return emplace(key, std::move(value));
    }

    /** Removes @p key; returns false when absent. */
    bool
    erase(const K &key)
    {
        if (size_ == 0)
            return false;
        size_t i = indexOf(hash(key));
        for (uint8_t d = 1; dist_[i] != 0; i = nextIndex(i), d++) {
            if (dist_[i] < d)
                return false;
            if (dist_[i] == d && slot(i)->first == key) {
                removeAt(i);
                return true;
            }
        }
        return false;
    }

    void
    clear()
    {
        for (size_t i = 0; i < cap_; i++) {
            if (dist_[i] != 0) {
                slot(i)->~Entry();
                dist_[i] = 0;
            }
        }
        size_ = 0;
    }

    /** Visits every entry as fn(const K&, V&); unspecified order. */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (size_t i = 0; i < cap_; i++) {
            if (dist_[i] != 0)
                fn(static_cast<const K &>(slot(i)->first), slot(i)->second);
        }
    }

    /** Pre-sizes the table for @p n entries without rehashing later. */
    void
    reserve(size_t n)
    {
        size_t want = kMinCapacity;
        while (n * 4 > want * 3)
            want *= 2;
        if (want > cap_)
            rehash(want);
    }

    /** Heap bytes backing the table (bytes/flow accounting). */
    size_t
    heapBytes() const
    {
        return cap_ * (sizeof(Entry) + 1);
    }

  private:
    using Entry = std::pair<K, V>;
    static constexpr size_t kMinCapacity = 16;

    size_t hash(const K &key) const { return Hash{}(key); }
    size_t indexOf(size_t h) const { return h & (cap_ - 1); }
    size_t nextIndex(size_t i) const { return (i + 1) & (cap_ - 1); }

    Entry *
    slot(size_t i)
    {
        return std::launder(reinterpret_cast<Entry *>(
            slots_.get() + i * sizeof(Entry)));
    }

    V &
    insertNoGrow(K key, V value)
    {
        size_t i = indexOf(hash(key));
        uint8_t d = 1;
        V *placed = nullptr;
        for (;;) {
            if (dist_[i] == 0) {
                new (slots_.get() + i * sizeof(Entry))
                    Entry(std::move(key), std::move(value));
                dist_[i] = d;
                size_++;
                return placed != nullptr ? *placed : slot(i)->second;
            }
            if (dist_[i] < d) {
                // Robin hood: displace the richer entry and keep
                // walking with it.
                Entry *e = slot(i);
                std::swap(key, e->first);
                std::swap(value, e->second);
                std::swap(d, dist_[i]);
                if (placed == nullptr)
                    placed = &e->second;
            }
            i = nextIndex(i);
            d++;
            if (d == 0)
                panic("flat map probe chain overflow: key=%s cap=%zu "
                      "size=%zu",
                      typeid(K).name(), cap_, size_);
        }
    }

    void
    removeAt(size_t i)
    {
        slot(i)->~Entry();
        dist_[i] = 0;
        size_--;
        // Backward shift: pull successors one slot closer until a
        // slot that is empty or already home (dist 1).
        size_t prev = i;
        for (size_t j = nextIndex(i); dist_[j] > 1; j = nextIndex(j)) {
            Entry *e = slot(j);
            new (slots_.get() + prev * sizeof(Entry))
                Entry(std::move(e->first), std::move(e->second));
            dist_[prev] = static_cast<uint8_t>(dist_[j] - 1);
            e->~Entry();
            dist_[j] = 0;
            prev = j;
        }
    }

    void
    rehash(size_t newCap)
    {
        std::unique_ptr<unsigned char[]> oldSlots = std::move(slots_);
        std::unique_ptr<uint8_t[]> oldDist = std::move(dist_);
        size_t oldCap = cap_;

        cap_ = newCap;
        slots_ = std::make_unique<unsigned char[]>(cap_ * sizeof(Entry));
        dist_ = std::make_unique<uint8_t[]>(cap_);
        for (size_t i = 0; i < cap_; i++)
            dist_[i] = 0;
        size_ = 0;

        for (size_t i = 0; i < oldCap; i++) {
            if (oldDist[i] == 0)
                continue;
            Entry *e = std::launder(reinterpret_cast<Entry *>(
                oldSlots.get() + i * sizeof(Entry)));
            insertNoGrow(std::move(e->first), std::move(e->second));
            e->~Entry();
        }
    }

    void
    clearAndRelease()
    {
        clear();
        slots_.reset();
        dist_.reset();
        cap_ = 0;
    }

    void
    swap(FlatMap &o)
    {
        std::swap(slots_, o.slots_);
        std::swap(dist_, o.dist_);
        std::swap(cap_, o.cap_);
        std::swap(size_, o.size_);
    }

    // Raw storage: entries constructed in place only where dist_ != 0.
    // dist_[i] is the probe distance + 1 of the occupant (0 = empty);
    // uint8_t caps chains at 255 — unreachable at 3/4 load with a
    // mixing hash (insertNoGrow panics with table stats if a weak
    // hash ever clusters that badly; see FlatHash).
    std::unique_ptr<unsigned char[]> slots_;
    std::unique_ptr<uint8_t[]> dist_;
    size_t cap_ = 0;
    size_t size_ = 0;
};

} // namespace anic::util

#endif // ANIC_UTIL_FLAT_MAP_HH
