#include "util/bytes.hh"

#include "util/panic.hh"

namespace anic {

std::string
toHex(ByteView data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

namespace {

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/**
 * Mixes a 64-bit value (splitmix64 finalizer); used to derive one
 * content word per 8-byte block of a deterministic object.
 */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint8_t
deterministicByte(uint64_t seed, uint64_t off)
{
    uint64_t word = mix64(seed ^ mix64(off / 8));
    return static_cast<uint8_t>(word >> (8 * (off % 8)));
}

} // namespace

Bytes
fromHex(const std::string &hex)
{
    ANIC_ASSERT(hex.size() % 2 == 0, "odd-length hex string");
    Bytes out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); i++) {
        int hi = hexNibble(hex[2 * i]);
        int lo = hexNibble(hex[2 * i + 1]);
        ANIC_ASSERT(hi >= 0 && lo >= 0, "bad hex digit");
        out[i] = static_cast<uint8_t>((hi << 4) | lo);
    }
    return out;
}

void
fillDeterministic(ByteSpan out, uint64_t seed, uint64_t offset)
{
    // Byte (offset + i) is byte ((offset + i) % 8) of the mixed word
    // for block ((offset + i) / 8); hash once per block, not per byte.
    size_t i = 0;
    uint64_t off = offset;
    while (i < out.size() && (off & 7) != 0)
        out[i++] = deterministicByte(seed, off++);
    while (i + 8 <= out.size()) {
        uint64_t word = mix64(seed ^ mix64(off >> 3));
        for (int k = 0; k < 8; k++)
            out[i + k] = static_cast<uint8_t>(word >> (8 * k));
        i += 8;
        off += 8;
    }
    while (i < out.size())
        out[i++] = deterministicByte(seed, off++);
}

bool
checkDeterministic(ByteView data, uint64_t seed, uint64_t offset)
{
    size_t i = 0;
    uint64_t off = offset;
    while (i < data.size() && (off & 7) != 0) {
        if (data[i++] != deterministicByte(seed, off++))
            return false;
    }
    while (i + 8 <= data.size()) {
        uint64_t word = mix64(seed ^ mix64(off >> 3));
        uint64_t got = 0;
        for (int k = 0; k < 8; k++)
            got |= static_cast<uint64_t>(data[i + k]) << (8 * k);
        if (got != word)
            return false;
        i += 8;
        off += 8;
    }
    while (i < data.size()) {
        if (data[i++] != deterministicByte(seed, off++))
            return false;
    }
    return true;
}

} // namespace anic
