#include "util/rand.hh"

#include <cmath>

#include "util/panic.hh"

namespace anic {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    ANIC_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    ANIC_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

// ----------------------------------------------------------- ZipfGen

ZipfGen::ZipfGen(uint32_t n, double s, uint64_t seed) : s_(s), rng_(seed)
{
    ANIC_ASSERT(n > 0, "zipf over empty range");
    ANIC_ASSERT(s >= 0.0, "zipf skew must be non-negative");
    cdf_.resize(n);
    double sum = 0.0;
    for (uint32_t r = 0; r < n; r++) {
        sum += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
        cdf_[r] = sum;
    }
    // Normalize so the last bucket is exactly 1.0 (binary search never
    // falls off the end).
    for (uint32_t r = 0; r < n; r++)
        cdf_[r] /= sum;
    cdf_[n - 1] = 1.0;
}

uint32_t
ZipfGen::next()
{
    double u = rng_.uniform();
    // First rank whose CDF covers u.
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(cdf_.size()) - 1;
    while (lo < hi) {
        uint32_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace anic
