/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used
 * everywhere in the simulator so runs are exactly reproducible.
 */

#ifndef ANIC_UTIL_RAND_HH
#define ANIC_UTIL_RAND_HH

#include <cstdint>

namespace anic {

/**
 * xoshiro256** generator. Small, fast, and good enough for workload
 * generation and link impairment decisions; std::mt19937 is avoided so
 * state is compact and seeding is trivially reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed) { reseed(seed); }

    /** Re-initializes all 256 bits of state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t s_[4];
};

} // namespace anic

#endif // ANIC_UTIL_RAND_HH
