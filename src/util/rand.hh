/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used
 * everywhere in the simulator so runs are exactly reproducible.
 */

#ifndef ANIC_UTIL_RAND_HH
#define ANIC_UTIL_RAND_HH

#include <cstdint>
#include <vector>

namespace anic {

/**
 * xoshiro256** generator. Small, fast, and good enough for workload
 * generation and link impairment decisions; std::mt19937 is avoided so
 * state is compact and seeding is trivially reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed) { reseed(seed); }

    /** Re-initializes all 256 bits of state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t s_[4];
};

/**
 * Deterministic Zipf(s) rank sampler over [0, n): rank r is drawn
 * with probability proportional to 1/(r+1)^s. Used by the flow-scale
 * harness to model realistic flow popularity (a few hot flows, a long
 * cold tail). s = 0 degenerates to uniform; s ~ 1 is the classic
 * web-workload skew.
 *
 * Implementation: the CDF is precomputed once (8 bytes/rank — 800 KB
 * at 10^5 flows) and sampled by binary search, so next() costs
 * O(log n) with no floating-point accumulation drift across calls.
 */
class ZipfGen
{
  public:
    ZipfGen(uint32_t n, double s, uint64_t seed);

    /** Next rank in [0, n); rank 0 is the most popular. */
    uint32_t next();

    uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }
    double skew() const { return s_; }

  private:
    std::vector<double> cdf_; ///< cdf_[r] = P(rank <= r)
    double s_;
    Rng rng_;
};

} // namespace anic

#endif // ANIC_UTIL_RAND_HH
