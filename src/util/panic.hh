/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - invariant violation inside the simulator itself; aborts.
 * fatal()  - unrecoverable user/configuration error; exits cleanly.
 * ANIC_ASSERT - cheap invariant check kept in release builds.
 */

#ifndef ANIC_UTIL_PANIC_HH
#define ANIC_UTIL_PANIC_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace anic {

/** Formats like printf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

} // namespace anic

#define panic(...) \
    ::anic::panicImpl(__FILE__, __LINE__, ::anic::strprintf(__VA_ARGS__))

#define fatal(...) \
    ::anic::fatalImpl(__FILE__, __LINE__, ::anic::strprintf(__VA_ARGS__))

#define ANIC_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::anic::panicImpl(__FILE__, __LINE__,                         \
                std::string("assertion failed: " #cond " ") +             \
                ::anic::strprintf("" __VA_ARGS__));                       \
        }                                                                 \
    } while (0)

#endif // ANIC_UTIL_PANIC_HH
