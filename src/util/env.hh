/**
 * @file
 * Typed accessors for every ANIC_* environment knob. The whole
 * environment is snapshotted once, on first access, so values are
 * stable for the life of the process and safe to read from worker
 * threads (no getenv racing a putenv).
 *
 * Knob table (documented in README "Environment knobs"):
 *
 *   ANIC_QUICK         bool    shrink bench measurement windows (CI)
 *   ANIC_CORES         int     override simulated server core count
 *                              in benches (0/unset = bench default)
 *   ANIC_FLOWS         int     override concurrent flow count in
 *                              flow-scale benches (0/unset = default)
 *   ANIC_CTX_POLICY    enum    lru | clock | pinhot — default NIC
 *                              context-cache eviction policy
 *   ANIC_TRACE         bool    enable the fallback global trace ring
 *   ANIC_TRACE_CAP     size    capacity of that ring (events)
 *   ANIC_TRACE_FILE    path    dump the trace ring as JSONL
 *   ANIC_SNAPSHOT_DIR  path    write one registry snapshot file/run
 *   ANIC_BENCH_JSON    path    append bench JSON lines to this file
 *   ANIC_CRYPTO_IMPL   enum    scalar | hw | auto kernel selection
 *   ANIC_TCP_CC        enum    reno | cubic | dctcp — congestion
 *                              control for configs left on Auto
 *   ANIC_FSM_BUG       enum    fault injection for the mutation smoke
 *   ANIC_FUZZ_DEBUG    bool    verbose differential-runner logging
 *   ANIC_FUZZ_STORAGE  bool    pin fuzz scenarios to a write-heavy
 *                              storage mix (NVMe writes + iSCSI)
 *
 * Code must come here instead of calling std::getenv("ANIC_...")
 * directly; this is the single list of supported knobs.
 */

#ifndef ANIC_UTIL_ENV_HH
#define ANIC_UTIL_ENV_HH

#include <cstddef>
#include <string>

namespace anic::util {

class Env
{
  public:
    /** ANIC_QUICK: set (and not "0") -> shrink measurement windows. */
    static bool quick();

    /** ANIC_CORES: simulated server core count override for benches;
     *  0 means "use the bench's default". */
    static int cores();

    /** ANIC_FLOWS: concurrent flow count override for flow-scale
     *  benches; 0 means "use the bench's default". */
    static int flows();

    /** ANIC_CTX_POLICY: raw value ("" when unset; nic/cache_policy.cc
     *  parses lru|clock|pinhot). */
    static const std::string &ctxPolicy();

    /** ANIC_TRACE: enable the fallback global TraceRing. */
    static bool traceEnabled();

    /** ANIC_TRACE_CAP: trace ring capacity; 0 means "use default". */
    static size_t traceCap();

    /** ANIC_TRACE_FILE: JSONL dump path ("" when unset). */
    static const std::string &traceFile();

    /** ANIC_SNAPSHOT_DIR: per-run snapshot directory ("" when unset). */
    static const std::string &snapshotDir();

    /** ANIC_BENCH_JSON: bench JSON append path ("" when unset). */
    static const std::string &benchJson();

    /** ANIC_CRYPTO_IMPL: raw value ("" when unset; cpu.cc parses). */
    static const std::string &cryptoImpl();

    /** ANIC_TCP_CC: raw value ("" when unset; tcp/congestion.cc
     *  parses reno|cubic|dctcp). */
    static const std::string &tcpCc();

    /** ANIC_FSM_BUG: raw value ("" when unset; stream_fsm.cc parses). */
    static const std::string &fsmBug();

    /** ANIC_FUZZ_DEBUG: verbose differential-runner logging. */
    static bool fuzzDebug();

    /** ANIC_FUZZ_STORAGE: every fuzz scenario carries a write-heavy
     *  NVMe workload plus an iSCSI workload (the storage CI arm). */
    static bool fuzzStorage();

  private:
    struct Values;
    static const Values &values();
};

} // namespace anic::util

#endif // ANIC_UTIL_ENV_HH
