/**
 * @file
 * SlabArena<T>: a fixed-size slab allocator with freelist recycling
 * and generation-checked handles, built for per-flow state at
 * million-flow scale (see DESIGN.md §15).
 *
 * Why not unique_ptr-per-object:
 *  - one heap allocation per flow scatters contexts across the heap
 *    (every touch is a cache miss at 10^5+ flows);
 *  - allocator metadata adds ~32 B/object;
 *  - churn (open/close storms) pounds malloc instead of popping a
 *    freelist.
 *
 * Objects are constructed in place inside slabs of kSlabObjects slots
 * and never move, so raw pointers/references handed out by get() stay
 * valid until free(). A Handle is {slot index, generation}; the
 * generation bumps on every free, so a stale handle held across a
 * recycle resolves to null instead of aliasing the new occupant
 * (use-after-free becomes a checkable condition, which the NIC and
 * TCP layers rely on under connection churn).
 *
 * Not thread-safe by design: one arena per simulated world, like
 * net::PacketPool.
 */

#ifndef ANIC_UTIL_SLAB_HH
#define ANIC_UTIL_SLAB_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/panic.hh"

namespace anic::util {

/**
 * Generation-checked reference to a slab slot. Trivially copyable
 * (8 bytes) so it can live in flat hash tables by value. A
 * default-constructed handle is null.
 */
struct SlabHandle
{
    uint32_t index = kNullIndex;
    uint32_t gen = 0;

    static constexpr uint32_t kNullIndex = 0xffffffffu;

    explicit operator bool() const { return index != kNullIndex; }
    bool operator==(const SlabHandle &o) const
    {
        return index == o.index && gen == o.gen;
    }
    bool operator!=(const SlabHandle &o) const { return !(*this == o); }
};

template <typename T>
class SlabArena
{
  public:
    using Handle = SlabHandle;

    /** Slots per slab: large enough to amortize the slab allocation,
     *  small enough that a mostly-idle arena stays compact. */
    static constexpr size_t kSlabObjects = 1024;

    SlabArena() = default;
    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    ~SlabArena()
    {
        // Destroy stragglers in slot order (owners normally free
        // every object; worlds tear down whole stacks at once).
        for (size_t i = 0; i < slots_.size(); i++) {
            if (slots_[i]->live)
                destroySlot(*slots_[i]);
        }
    }

    /** Constructs a T in a recycled (or fresh) slot. */
    template <typename... Args>
    Handle
    alloc(Args &&...args)
    {
        uint32_t idx;
        if (freeHead_ != SlabHandle::kNullIndex) {
            idx = freeHead_;
            freeHead_ = slots_[idx]->nextFree;
        } else {
            idx = static_cast<uint32_t>(slots_.size());
            grow();
        }
        Slot &s = *slots_[idx];
        new (s.storage) T(std::forward<Args>(args)...);
        s.live = true;
        live_++;
        return Handle{idx, s.gen};
    }

    /** Destroys the object and recycles its slot; the handle (and any
     *  copy of it) goes stale. */
    void
    free(Handle h)
    {
        Slot &s = slotFor(h);
        ANIC_ASSERT(s.live && s.gen == h.gen, "slab free of stale handle");
        destroySlot(s);
        s.nextFree = freeHead_;
        freeHead_ = h.index;
    }

    /** Live object for @p h, or null if the handle is stale/null. */
    T *
    get(Handle h)
    {
        if (h.index >= slots_.size())
            return nullptr;
        Slot &s = *slots_[h.index];
        if (!s.live || s.gen != h.gen)
            return nullptr;
        return std::launder(reinterpret_cast<T *>(s.storage));
    }

    const T *
    get(Handle h) const
    {
        return const_cast<SlabArena *>(this)->get(h);
    }

    /** Checked access: panics on a stale handle. */
    T &
    at(Handle h)
    {
        T *p = get(h);
        ANIC_ASSERT(p != nullptr, "slab access through stale handle");
        return *p;
    }

    size_t liveCount() const { return live_; }
    size_t capacity() const { return slots_.size(); }

    /** Bytes the arena holds on the heap (slab payload + slot
     *  headers); feeds the bytes/flow accounting in bench_flowscale. */
    size_t
    heapBytes() const
    {
        return slots_.size() * sizeof(Slot) +
               slots_.capacity() * sizeof(Slot *);
    }

    /** Visits every live object (teardown sweeps, debug stats). */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (size_t i = 0; i < slots_.size(); i++) {
            if (slots_[i]->live)
                fn(*std::launder(reinterpret_cast<T *>(slots_[i]->storage)));
        }
    }

  private:
    struct Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        uint32_t gen = 0;
        uint32_t nextFree = SlabHandle::kNullIndex;
        bool live = false;
    };

    Slot &
    slotFor(Handle h)
    {
        ANIC_ASSERT(h.index < slots_.size(), "slab handle out of range");
        return *slots_[h.index];
    }

    void
    destroySlot(Slot &s)
    {
        std::launder(reinterpret_cast<T *>(s.storage))->~T();
        s.live = false;
        s.gen++;
        live_--;
    }

    void
    grow()
    {
        // One contiguous slab of kSlabObjects slots; the index table
        // points into it so slot addresses are stable forever.
        slabs_.push_back(std::make_unique<Slot[]>(kSlabObjects));
        Slot *slab = slabs_.back().get();
        slots_.reserve(slots_.size() + kSlabObjects);
        size_t base = slots_.size();
        for (size_t i = 0; i < kSlabObjects; i++)
            slots_.push_back(&slab[i]);
        // Slot base+0 goes to the caller; the rest chain onto the
        // freelist so the next allocs pop in ascending slot order.
        for (size_t i = kSlabObjects - 1; i >= 1; i--) {
            slab[i].nextFree = freeHead_;
            freeHead_ = static_cast<uint32_t>(base + i);
        }
    }

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<Slot *> slots_; ///< flat index -> slot
    uint32_t freeHead_ = SlabHandle::kNullIndex;
    size_t live_ = 0;
};

} // namespace anic::util

#endif // ANIC_UTIL_SLAB_HH
