#include "util/env.hh"

#include <cstdlib>

namespace anic::util {

struct Env::Values
{
    bool quick = false;
    int cores = 0;
    int flows = 0;
    std::string ctxPolicy;
    bool traceEnabled = false;
    size_t traceCap = 0;
    std::string traceFile;
    std::string snapshotDir;
    std::string benchJson;
    std::string cryptoImpl;
    std::string tcpCc;
    std::string fsmBug;
    bool fuzzDebug = false;
    bool fuzzStorage = false;
};

namespace {

bool
envFlag(const char *name)
{
    const char *e = std::getenv(name);
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}

std::string
envString(const char *name)
{
    const char *e = std::getenv(name);
    return e != nullptr ? e : "";
}

size_t
envSize(const char *name)
{
    const char *e = std::getenv(name);
    if (e == nullptr)
        return 0;
    return static_cast<size_t>(std::strtoull(e, nullptr, 10));
}

} // namespace

const Env::Values &
Env::values()
{
    // Magic static: snapshotted once, thread-safe thereafter.
    static const Values v = [] {
        Values r;
        r.quick = envFlag("ANIC_QUICK");
        r.cores = static_cast<int>(envSize("ANIC_CORES"));
        r.flows = static_cast<int>(envSize("ANIC_FLOWS"));
        r.ctxPolicy = envString("ANIC_CTX_POLICY");
        r.traceEnabled = envFlag("ANIC_TRACE");
        r.traceCap = envSize("ANIC_TRACE_CAP");
        r.traceFile = envString("ANIC_TRACE_FILE");
        r.snapshotDir = envString("ANIC_SNAPSHOT_DIR");
        r.benchJson = envString("ANIC_BENCH_JSON");
        r.cryptoImpl = envString("ANIC_CRYPTO_IMPL");
        r.tcpCc = envString("ANIC_TCP_CC");
        r.fsmBug = envString("ANIC_FSM_BUG");
        r.fuzzDebug = envFlag("ANIC_FUZZ_DEBUG");
        r.fuzzStorage = envFlag("ANIC_FUZZ_STORAGE");
        return r;
    }();
    return v;
}

bool Env::quick() { return values().quick; }
int Env::cores() { return values().cores; }
int Env::flows() { return values().flows; }
const std::string &Env::ctxPolicy() { return values().ctxPolicy; }
bool Env::traceEnabled() { return values().traceEnabled; }
size_t Env::traceCap() { return values().traceCap; }
const std::string &Env::traceFile() { return values().traceFile; }
const std::string &Env::snapshotDir() { return values().snapshotDir; }
const std::string &Env::benchJson() { return values().benchJson; }
const std::string &Env::cryptoImpl() { return values().cryptoImpl; }
const std::string &Env::tcpCc() { return values().tcpCc; }
const std::string &Env::fsmBug() { return values().fsmBug; }
bool Env::fuzzDebug() { return values().fuzzDebug; }
bool Env::fuzzStorage() { return values().fuzzStorage; }

} // namespace anic::util
