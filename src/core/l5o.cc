#include "core/l5o.hh"

#include "util/panic.hh"

namespace anic::core {

namespace {

L5ProtocolOps g_ops[net::kL5KindCount];
bool g_registered[net::kL5KindCount];

} // namespace

void
registerL5Protocol(net::L5Kind kind, const L5ProtocolOps &ops)
{
    size_t i = static_cast<size_t>(kind);
    ANIC_ASSERT(i < net::kL5KindCount);
    g_ops[i] = ops;
    g_registered[i] = true;
}

const L5ProtocolOps &
l5ProtocolOps(net::L5Kind kind)
{
    size_t i = static_cast<size_t>(kind);
    ANIC_ASSERT(i < net::kL5KindCount && g_registered[i],
                "no engine factories registered for this L5 kind");
    return g_ops[i];
}

} // namespace anic::core
