/**
 * @file
 * The autonomous-offload software interface (paper §4.1).
 *
 * Mirrors Listings 1 and 2:
 *   Listing 1 (driver -> L5P):  OffloadDevice::l5oCreate /
 *       L5Offload::destroy / engine access for request-response state
 *       (l5o_add_rr_state) / L5Offload::resyncRxResp.
 *   Listing 2 (L5P -> driver):  L5pCallbacks::getTxMsgState
 *       (l5o_get_tx_msgstate) and L5pCallbacks::resyncRxReq
 *       (l5o_resync_rx_req).
 */

#ifndef ANIC_CORE_L5O_HH
#define ANIC_CORE_L5O_HH

#include <memory>
#include <optional>

#include "nic/stream_fsm.hh"

namespace anic::core {

/**
 * Upcalls an L5P implements so the driver can recover NIC contexts
 * (Listing 2). Invoked on the connection's core.
 */
class L5pCallbacks
{
  public:
    virtual ~L5pCallbacks() = default;

    /** State needed to rebuild the tx context for a retransmission. */
    struct TxMsgState
    {
        uint32_t msgStartSeq = 0; ///< TCP seq of the enclosing message
        uint64_t msgIdx = 0;      ///< index of that message
        Bytes rebuild;            ///< message bytes [msgStartSeq, tcpsn)
    };

    /**
     * l5o_get_tx_msgstate: maps a TCP sequence number inside an
     * unacknowledged message to that message's state. Returns nullopt
     * if the L5P no longer holds it (then the offload cannot recover
     * and the connection must stop offloading).
     */
    virtual std::optional<TxMsgState> getTxMsgState(uint32_t tcpsn) = 0;

    /**
     * l5o_resync_rx_req: the NIC speculatively identified a message
     * header at @p tcpsn. The L5P answers later (when its receive
     * processing reaches that point) via L5Offload::resyncRxResp.
     */
    virtual void resyncRxReq(uint32_t tcpsn) = 0;
};

/**
 * Static offload state handed to l5o_create (the paper's "static
 * state": crypto keys, negotiated wire options). Each protocol module
 * derives its own state type, reports its kind, and registers engine
 * factories for it via registerL5Protocol() — the driver then turns
 * (kind, state, directions) into NIC engines without naming any
 * protocol, which is what lets a new L5P bind with zero driver edits.
 */
class L5StaticState
{
  public:
    virtual ~L5StaticState() = default;
    virtual net::L5Kind kind() const = 0;
};

/** Direction mask for the unified l5o_create binding. */
enum : unsigned
{
    kL5Rx = 1u,
    kL5Tx = 2u,
};

/** Engine factories one protocol registers for its kind. Either may
 *  be null when the protocol offloads only one direction. */
struct L5ProtocolOps
{
    std::unique_ptr<nic::L5Engine> (*makeRx)(const L5StaticState &) = nullptr;
    std::unique_ptr<nic::L5Engine> (*makeTx)(const L5StaticState &) = nullptr;
};

/** Registers (or replaces) the factories for @p kind. Protocol
 *  modules call this from their static-state constructor so linking
 *  the module is all it takes to enable the binding. */
void registerL5Protocol(net::L5Kind kind, const L5ProtocolOps &ops);

/** Looks up the factories for @p kind; panics if unregistered. */
const L5ProtocolOps &l5ProtocolOps(net::L5Kind kind);

/**
 * Handle returned by l5o_create (Listing 1). Owned by the driver;
 * the L5P keeps a pointer until it calls destroy().
 */
class L5Offload
{
  public:
    virtual ~L5Offload() = default;

    /** l5o_resync_rx_resp: answers the pending speculation. @p msgIdx
     *  is the index of the message starting at @p tcpsn when ok. */
    virtual void resyncRxResp(uint32_t tcpsn, bool ok, uint64_t msgIdx) = 0;

    /** l5o_destroy. The handle is invalid afterwards. */
    virtual void destroy() = 0;

    /** Engine access for protocol-specific configuration descriptors
     *  (e.g. NVMe-TCP l5o_add_rr_state / l5o_del_rr_state update the
     *  CID -> buffer map inside the rx engine). */
    virtual nic::L5Engine *rxEngine() = 0;
    virtual nic::L5Engine *txEngine() = 0;

    /** Context id the stack tags outgoing packets with. */
    virtual uint64_t txCtxId() const = 0;

    /** Receive FSM statistics (tests, benches). */
    virtual const nic::FsmStats *rxFsmStats() const = 0;
};

} // namespace anic::core

#endif // ANIC_CORE_L5O_HH
