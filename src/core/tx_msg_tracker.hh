/**
 * @file
 * Map from TCP sequence numbers to in-flight L5P messages.
 *
 * "The L5P software must maintain a map from TCP sequence numbers to
 * their corresponding L5P messages (in our experience, this takes
 * ~200 LoC)" — both kTLS (records) and NVMe-TCP (capsules) use this
 * to answer l5o_get_tx_msgstate; entries are trimmed as cumulative
 * ACKs arrive, mirroring how TCP itself releases acked bytes.
 */

#ifndef ANIC_CORE_TX_MSG_TRACKER_HH
#define ANIC_CORE_TX_MSG_TRACKER_HH

#include <deque>
#include <optional>

#include "tcp/seq.hh"
#include "util/bytes.hh"
#include "util/panic.hh"

namespace anic::core {

class TxMsgTracker
{
  public:
    struct Entry
    {
        uint32_t startSeq = 0;
        uint32_t wireLen = 0;
        uint64_t msgIdx = 0;
        /** Pre-offload message bytes, retained until the whole
         *  message is acked ("the L5P holds a reference to the
         *  buffers which contain transmitted L5P message data"); the
         *  NIC reads its context-recovery rebuild from here. TCP
         *  cannot serve this: it releases at byte granularity. */
        Bytes bytes;
    };

    /** Records a message; messages must be added in stream order. */
    void
    add(uint32_t startSeq, uint32_t wireLen, uint64_t msgIdx,
        Bytes bytes = {})
    {
        ANIC_ASSERT(msgs_.empty() ||
                        startSeq == msgs_.back().startSeq + msgs_.back().wireLen,
                    "messages must be contiguous in sequence space");
        msgs_.push_back(Entry{startSeq, wireLen, msgIdx, std::move(bytes)});
    }

    /** Drops messages fully acknowledged below @p una. */
    void
    trimAcked(uint32_t una)
    {
        while (!msgs_.empty() &&
               tcp::seqLeq(msgs_.front().startSeq + msgs_.front().wireLen,
                           una)) {
            msgs_.pop_front();
        }
    }

    /** Finds the message containing @p tcpsn. */
    const Entry *
    find(uint32_t tcpsn) const
    {
        for (const Entry &e : msgs_) {
            if (tcp::seqGeq(tcpsn, e.startSeq) &&
                tcp::seqLt(tcpsn, e.startSeq + e.wireLen)) {
                return &e;
            }
        }
        return nullptr;
    }

    size_t size() const { return msgs_.size(); }
    bool empty() const { return msgs_.empty(); }
    const Entry &front() const { return msgs_.front(); }

  private:
    std::deque<Entry> msgs_;
};

} // namespace anic::core

#endif // ANIC_CORE_TX_MSG_TRACKER_HH
