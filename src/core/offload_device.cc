#include "core/offload_device.hh"

#include "util/panic.hh"

namespace anic::core {

/** Driver-side record of one l5o offload instance. */
class OffloadDevice::OffloadImpl : public L5Offload
{
  public:
    OffloadImpl(OffloadDevice &dev, uint64_t id) : dev_(dev), id_(id) {}

    void
    resyncRxResp(uint32_t tcpsn, bool ok, uint64_t msgIdx) override
    {
        if (rxCtx_ == 0 || pendingReqId_ == 0)
            return;
        // A response is only valid for the speculation that is still
        // outstanding: the NIC may have abandoned the one this answer
        // refers to and speculated anew (stale answers would confirm
        // the wrong message index).
        if (tcpsn != pendingSeq_)
            return;
        uint64_t req = pendingReqId_;
        pendingReqId_ = 0;
        dev_.nic_.rxResyncResponse(rxCtx_, req, ok, msgIdx);
    }

    void destroy() override { dev_.destroyOffload(id_); }

    nic::L5Engine *
    rxEngine() override
    {
        return rxCtx_ ? dev_.nic_.rxEngine(rxCtx_) : nullptr;
    }

    nic::L5Engine *
    txEngine() override
    {
        return txCtx_ ? dev_.nic_.txEngine(txCtx_) : nullptr;
    }

    uint64_t txCtxId() const override { return txCtx_; }

    const nic::FsmStats *
    rxFsmStats() const override
    {
        return rxCtx_ ? dev_.nic_.rxFsmStats(rxCtx_) : nullptr;
    }

    OffloadDevice &dev_;
    uint64_t id_;
    uint64_t rxCtx_ = 0;
    uint64_t txCtx_ = 0;
    uint64_t pendingReqId_ = 0;
    uint32_t pendingSeq_ = 0;
    L5pCallbacks *callbacks_ = nullptr;
    host::Core *core_ = nullptr;
};

OffloadDevice::OffloadDevice(sim::Simulator &sim, nic::Nic &nic,
                             net::IpAddr ip)
    : sim_(sim), nic_(nic), ip_(ip)
{
    nic_.setOnRxInterrupt([this](int queue, nic::Nic::RxBatch pkts) {
        onNicRxInterrupt(queue, std::move(pkts));
    });
    nic_.setOnResyncRequest(
        [this](uint64_t ctxId, uint64_t reqId, uint32_t seq) {
            onNicResyncRequest(ctxId, reqId, seq);
        });
}

OffloadDevice::~OffloadDevice() = default;

void
OffloadDevice::attachStack(tcp::TcpStack *stack)
{
    stack_ = stack;
}

bool
OffloadDevice::transmit(net::PacketPtr pkt)
{
    if (host::Core *cur = host::Core::current())
        cur->charge(cur->model().driverTxPerPacket);

    if (pkt->txCtx != 0 && pkt->payloadSize() > 0) {
        const net::TcpHeader th = pkt->tcp();
        // The driver shadows the NIC context in software; the NIC's
        // own state only advances when ring entries drain.
        auto sit = txShadow_.find(pkt->txCtx);
        ANIC_ASSERT(sit != txShadow_.end(), "unknown tx offload ctx");
        uint32_t expected = sit->second;
        if (th.seq != expected) {
            // §4.2 context recovery: ask the L5P for the enclosing
            // message's state, hand it to the NIC via a special
            // descriptor, then post the packet as usual.
            auto tit = byTxCtx_.find(pkt->txCtx);
            auto it = tit == byTxCtx_.end() ? offloads_.end()
                                            : offloads_.find(tit->second);
            if (it == offloads_.end()) {
                txRecoveryFailures_++;
            } else {
                OffloadImpl &off = *it->second;
                std::optional<L5pCallbacks::TxMsgState> st =
                    off.callbacks_->getTxMsgState(th.seq);
                ANIC_ASSERT(st.has_value(),
                            "L5P lost tx message state for unacked seq %u",
                            th.seq);
                if (host::Core *cur = host::Core::current())
                    cur->charge(cur->model().resyncUpcallCost);
                // The special descriptor must ride the same ring the
                // data packet will, or the resync could drain after
                // the packet it is meant to precede.
                nic_.postTxResync(pkt->txCtx, th.seq, st->msgIdx,
                                  st->rebuild, nic_.txQueueFor(pkt->flow()));
            }
        }
        sit->second = th.seq + static_cast<uint32_t>(pkt->payloadSize());
    }
    return nic_.transmit(std::move(pkt));
}

void
OffloadDevice::setOnTxSpace(std::function<void()> cb)
{
    nic_.setOnTxSpace(std::move(cb));
}

void
OffloadDevice::onNicRxInterrupt(int queue, nic::Nic::RxBatch pkts)
{
    if (stack_ == nullptr) {
        nic_.recycleRxBatch(std::move(pkts));
        return;
    }
    // MSI-X affinity: queue N interrupts core N mod cores. RSS pinned
    // every flow in this batch to this queue, so the stack work runs
    // on the flow's steered core without a cross-core handoff.
    host::Core &core = stack_->coreForQueue(queue);
    core.post([this, pkts = std::move(pkts), &core]() mutable {
        core.charge(core.model().interruptCost);
        for (net::PacketPtr &p : pkts) {
            core.charge(core.model().driverRxPerPacket);
            stack_->input(p);
            p.reset();
        }
        nic_.recycleRxBatch(std::move(pkts));
    });
}

void
OffloadDevice::onNicResyncRequest(uint64_t ctxId, uint64_t reqId,
                                  uint32_t tcpSeq)
{
    auto it = byRxCtx_.find(ctxId);
    if (it == byRxCtx_.end())
        return;
    OffloadImpl *off = it->second;
    off->pendingReqId_ = reqId;
    off->pendingSeq_ = tcpSeq;
    host::Core *core = off->core_;
    ANIC_ASSERT(core != nullptr);
    core->post([off, tcpSeq, core] {
        core->charge(core->model().resyncUpcallCost);
        off->callbacks_->resyncRxReq(tcpSeq);
    });
}

L5Offload *
OffloadDevice::l5oCreate(L5oParams params)
{
    ANIC_ASSERT(params.callbacks != nullptr && params.core != nullptr);
    uint64_t id = nextOffloadId_++;
    auto off = std::make_unique<OffloadImpl>(*this, id);
    off->callbacks_ = params.callbacks;
    off->core_ = params.core;

    if (params.rxEngine) {
        off->rxCtx_ = nic_.createRxContext(params.rxFlow,
                                           std::move(params.rxEngine),
                                           params.rxTcpsn, params.rxMsgIdx);
        byRxCtx_[off->rxCtx_] = off.get();
    }
    if (params.txEngine) {
        off->txCtx_ = nic_.createTxContext(std::move(params.txEngine),
                                           params.txTcpsn, params.txMsgIdx);
        byTxCtx_[off->txCtx_] = id;
        txShadow_[off->txCtx_] = params.txTcpsn;
    }

    L5Offload *handle = off.get();
    offloads_.emplace(id, std::move(off));
    return handle;
}

L5Offload *
OffloadDevice::l5oCreate(tcp::TcpConnection &conn, const L5StaticState &st,
                         unsigned dirs, L5pCallbacks *cb, uint64_t rxMsgIdx,
                         uint64_t txMsgIdx)
{
    ANIC_ASSERT(dirs != 0);
    const L5ProtocolOps &ops = l5ProtocolOps(st.kind());
    L5oParams params;
    params.callbacks = cb;
    params.core = &conn.core();
    if (dirs & kL5Rx) {
        ANIC_ASSERT(ops.makeRx != nullptr,
                    "protocol registered no rx engine factory");
        params.rxEngine = ops.makeRx(st);
        params.rxFlow = conn.localFlow().reversed();
        params.rxTcpsn = conn.rcvNxt();
        params.rxMsgIdx = rxMsgIdx;
    }
    if (dirs & kL5Tx) {
        ANIC_ASSERT(ops.makeTx != nullptr,
                    "protocol registered no tx engine factory");
        params.txEngine = ops.makeTx(st);
        params.txTcpsn = conn.sndNextByteSeq();
        params.txMsgIdx = txMsgIdx;
    }
    return l5oCreate(std::move(params));
}

void
OffloadDevice::destroyOffload(uint64_t id)
{
    auto it = offloads_.find(id);
    if (it == offloads_.end())
        return;
    OffloadImpl &off = *it->second;
    if (off.rxCtx_ != 0) {
        nic_.destroyRxContext(off.rxCtx_);
        byRxCtx_.erase(off.rxCtx_);
    }
    if (off.txCtx_ != 0) {
        nic_.destroyTxContext(off.txCtx_);
        byTxCtx_.erase(off.txCtx_);
        txShadow_.erase(off.txCtx_);
    }
    offloads_.erase(it);
}

} // namespace anic::core
