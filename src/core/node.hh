/**
 * @file
 * Node: one simulated host — cores, TCP stack, and one offload-aware
 * NIC per attached link port. This is the top-level wiring benches,
 * examples and integration tests instantiate.
 */

#ifndef ANIC_CORE_NODE_HH
#define ANIC_CORE_NODE_HH

#include <memory>
#include <vector>

#include "core/offload_device.hh"
#include "host/storage.hh"
#include "sim/run_context.hh"

namespace anic::core {

class Node
{
  public:
    struct Config
    {
        int cores = 1;
        host::CycleModel model;
        nic::Nic::Config nicCfg;
        uint64_t stackSeed = 0x1234;
        tcp::TcpConnection::Config tcpCfg;

        /** Stable instance name for the stats registry ("srv");
         *  empty -> a unique "node", "node2", ... is chosen. Cores
         *  become <name>.cpu<i>, the stack <name>.tcp, and port @p i's
         *  NIC <name>.nic<i>. */
        std::string name;
        /** Registry to publish under; null -> StatsRegistry::global(). */
        sim::StatsRegistry *registry = nullptr;
        /** Trace ring for this node's stack and NICs; null ->
         *  TraceRing::global() (nicCfg.trace, when set, still wins
         *  for the NICs). */
        sim::TraceRing *trace = nullptr;
        /** Packet arena for this node's stack; null ->
         *  PacketPool::threadDefault(). Worlds that own their pool
         *  (MacroWorld) inject it so packet recycling stays per-run. */
        net::PacketPool *pool = nullptr;

        /** Binds registry + trace to @p run's per-run instances. */
        void
        bindRun(sim::RunContext &run)
        {
            registry = &run.registry();
            trace = &run.trace();
        }
    };

    Node(sim::Simulator &sim, Config cfg);

    /** Creates a NIC + driver on @p linkPort of @p link, bound to @p ip. */
    OffloadDevice &attachPort(net::Link &link, int linkPort, net::IpAddr ip);

    sim::Simulator &sim() { return sim_; }
    tcp::TcpStack &stack() { return *stack_; }
    host::Core &core(int i) { return *cores_.at(i); }
    int coreCount() const { return static_cast<int>(cores_.size()); }
    const host::CycleModel &model() const { return cfg_.model; }
    const tcp::TcpConnection::Config &tcpConfig() const { return cfg_.tcpCfg; }
    OffloadDevice &device(int i = 0) { return *ports_.at(i).dev; }
    nic::Nic &nicDev(int i = 0) { return *ports_.at(i).nic; }
    size_t portCount() const { return ports_.size(); }

    /** Registry instance name ("node", "srv", ...). */
    const std::string &name() const { return name_; }
    /** Child scope under this node's name, for co-located components
     *  (apps, storage services) to publish their own stats. */
    sim::StatsScope subScope(const std::string &leaf) { return scope_.child(leaf); }

    /** Snapshot of per-core busy ticks (for windowed utilization). */
    std::vector<sim::Tick> busySnapshot() const;

    /** Average number of busy cores over a window since @p snap. */
    double busyCores(const std::vector<sim::Tick> &snap,
                     sim::Tick window) const;

    /** Total busy cycles across cores since @p snap. */
    double busyCyclesSince(const std::vector<double> &snap) const;
    std::vector<double> cycleSnapshot() const;

  private:
    struct Port
    {
        std::unique_ptr<nic::Nic> nic;
        std::unique_ptr<OffloadDevice> dev;
    };

    sim::Simulator &sim_;
    Config cfg_;
    std::string name_;
    sim::StatsScope scope_;
    std::vector<std::unique_ptr<host::Core>> cores_;
    std::unique_ptr<tcp::TcpStack> stack_;
    std::vector<Port> ports_;
};

} // namespace anic::core

#endif // ANIC_CORE_NODE_HH
