/**
 * @file
 * The offload-aware NIC driver: implements the TCP stack's NetDevice
 * on top of the NIC model and carries the autonomous-offload driver
 * logic from §4.2/§4.3 — shadow context sequence checks, transmit
 * context recovery via l5o_get_tx_msgstate, receive delivery with
 * offload metadata, and routing of resync requests/responses.
 */

#ifndef ANIC_CORE_OFFLOAD_DEVICE_HH
#define ANIC_CORE_OFFLOAD_DEVICE_HH

#include <unordered_map>

#include "core/l5o.hh"
#include "nic/nic.hh"
#include "tcp/net_device.hh"
#include "tcp/tcp_stack.hh"

namespace anic::core {

/** Parameters for l5o_create. */
struct L5oParams
{
    /** Flow key of *arriving* packets (src = remote peer); required
     *  when rxEngine is set. */
    net::FlowKey rxFlow;

    /** Engines (either may be null for one-directional offloads). */
    std::unique_ptr<nic::L5Engine> rxEngine;
    std::unique_ptr<nic::L5Engine> txEngine;

    uint32_t rxTcpsn = 0; ///< seq of the next incoming message start
    uint64_t rxMsgIdx = 0;
    uint32_t txTcpsn = 0; ///< seq of the next outgoing message start
    uint64_t txMsgIdx = 0;

    /** L5P upcall sink (must outlive the offload). */
    L5pCallbacks *callbacks = nullptr;

    /** Core the L5P runs this connection on (for upcall posting). */
    host::Core *core = nullptr;
};

/** One NIC port's driver instance. */
class OffloadDevice : public tcp::NetDevice
{
  public:
    OffloadDevice(sim::Simulator &sim, nic::Nic &nic, net::IpAddr ip);
    ~OffloadDevice() override; // out-of-line: OffloadImpl is incomplete here

    /** Binds the TCP stack receive path. */
    void attachStack(tcp::TcpStack *stack);

    // -------------------------------------------------- NetDevice
    bool transmit(net::PacketPtr pkt) override;
    void setOnTxSpace(std::function<void()> cb) override;
    net::IpAddr ipAddr() const override { return ip_; }
    int rxQueues() const override { return nic_.queueCount(); }
    int
    rxQueueFor(const net::FlowKey &wireFlow) const override
    {
        return nic_.rxQueueFor(wireFlow);
    }

    // ------------------------------------------------------- l5o
    /** l5o_create: installs NIC contexts and returns the handle. */
    L5Offload *l5oCreate(L5oParams params);

    /**
     * Unified l5o_create binding: builds the engines for the static
     * state's protocol kind (via the registered factories) and
     * derives flow key and sequence anchors from the connection's
     * current state. All protocols install through this entrypoint.
     * @p dirs is a kL5Rx/kL5Tx mask; @p rxMsgIdx / @p txMsgIdx seed
     * the per-direction message counters (0 for a fresh stream).
     */
    L5Offload *l5oCreate(tcp::TcpConnection &conn, const L5StaticState &st,
                         unsigned dirs, L5pCallbacks *cb,
                         uint64_t rxMsgIdx = 0, uint64_t txMsgIdx = 0);

    nic::Nic &nic() { return nic_; }

    /** Driver-level drop counter (tx resync impossible). */
    uint64_t txRecoveryFailures() const { return txRecoveryFailures_; }

  private:
    class OffloadImpl;
    friend class OffloadImpl;

    void onNicRxInterrupt(int queue, nic::Nic::RxBatch pkts);
    void onNicResyncRequest(uint64_t ctxId, uint64_t reqId, uint32_t tcpSeq);
    void destroyOffload(uint64_t id);

    sim::Simulator &sim_;
    nic::Nic &nic_;
    net::IpAddr ip_;
    tcp::TcpStack *stack_ = nullptr;

    // Offloads by tx ctx id (packet tags) and by rx ctx id (upcalls).
    std::unordered_map<uint64_t, std::unique_ptr<OffloadImpl>> offloads_;
    std::unordered_map<uint64_t, OffloadImpl *> byRxCtx_;
    std::unordered_map<uint64_t, uint64_t> byTxCtx_; // tx ctx -> offload id
    std::unordered_map<uint64_t, uint32_t> txShadow_; // tx ctx -> expected seq
    uint64_t nextOffloadId_ = 1;
    uint64_t txRecoveryFailures_ = 0;
};

} // namespace anic::core

#endif // ANIC_CORE_OFFLOAD_DEVICE_HH
