#include "core/node.hh"

namespace anic::core {

Node::Node(sim::Simulator &sim, Config cfg) : sim_(sim), cfg_(std::move(cfg))
{
    sim::StatsRegistry &reg = cfg_.registry != nullptr
                                  ? *cfg_.registry
                                  : sim::StatsRegistry::global();
    name_ = reg.uniqueName(cfg_.name.empty() ? "node" : cfg_.name);
    scope_ = sim::StatsScope(reg, name_);
    for (int i = 0; i < cfg_.cores; i++) {
        cores_.push_back(std::make_unique<host::Core>(
            sim_, cfg_.model, i, scope_.child("cpu" + std::to_string(i))));
    }
    std::vector<host::Core *> raw;
    for (auto &c : cores_)
        raw.push_back(c.get());
    stack_ = std::make_unique<tcp::TcpStack>(sim_, raw, cfg_.stackSeed,
                                             scope_.child("tcp"), cfg_.trace,
                                             cfg_.pool);
}

OffloadDevice &
Node::attachPort(net::Link &link, int linkPort, net::IpAddr ip)
{
    Port p;
    nic::Nic::Config nicCfg = cfg_.nicCfg;
    // numQueues 0 = auto: one TX/RX queue pair per host core, so every
    // core owns a pair (resolved per node; worlds share one nicCfg
    // between hosts with different core counts).
    if (nicCfg.numQueues == 0)
        nicCfg.numQueues = cfg_.cores;
    nicCfg.name = name_ + ".nic" + std::to_string(ports_.size());
    nicCfg.registry = scope_.registry();
    if (nicCfg.trace == nullptr)
        nicCfg.trace = cfg_.trace;
    p.nic = std::make_unique<nic::Nic>(sim_, link, linkPort, nicCfg);
    p.dev = std::make_unique<OffloadDevice>(sim_, *p.nic, ip);
    p.dev->attachStack(stack_.get());
    stack_->addDevice(p.dev.get());
    ports_.push_back(std::move(p));
    return *ports_.back().dev;
}

std::vector<sim::Tick>
Node::busySnapshot() const
{
    std::vector<sim::Tick> out;
    for (const auto &c : cores_)
        out.push_back(c->totalBusyTicks());
    return out;
}

double
Node::busyCores(const std::vector<sim::Tick> &snap, sim::Tick window) const
{
    if (window == 0)
        return 0.0;
    double total = 0.0;
    for (size_t i = 0; i < cores_.size(); i++) {
        sim::Tick base = i < snap.size() ? snap[i] : 0;
        total += static_cast<double>(cores_[i]->totalBusyTicks() - base);
    }
    return total / static_cast<double>(window);
}

std::vector<double>
Node::cycleSnapshot() const
{
    std::vector<double> out;
    for (const auto &c : cores_)
        out.push_back(c->totalBusyCycles());
    return out;
}

double
Node::busyCyclesSince(const std::vector<double> &snap) const
{
    double total = 0.0;
    for (size_t i = 0; i < cores_.size(); i++) {
        double base = i < snap.size() ? snap[i] : 0.0;
        total += cores_[i]->totalBusyCycles() - base;
    }
    return total;
}

} // namespace anic::core
