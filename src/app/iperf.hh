/**
 * @file
 * iperf-like bulk streamer over TLS (or plain TCP): one sender pushes
 * a continuous byte stream in fixed-size application messages; the
 * receiver drains and counts. Drives Figures 11 and 16-18.
 */

#ifndef ANIC_APP_IPERF_HH
#define ANIC_APP_IPERF_HH

#include "core/node.hh"
#include "sim/registry.hh"
#include "tls/ktls.hh"

namespace anic::app {

struct IperfConfig
{
    uint16_t port = 5201;
    int streams = 1;
    size_t sendChunk = 256 << 10; ///< per-send() message (paper: 256 KiB)
    bool tlsEnabled = true;
    tls::TlsConfig clientTls; ///< sender-side config (tx offload knob)
    tls::TlsConfig serverTls; ///< receiver-side config (rx offload knob)
    uint64_t tlsSecret = 0x1beef;
    bool verifyContent = false; ///< integrity check at the receiver
};

/** One measurement's worth of sender->receiver streams. */
class IperfRun
{
  public:
    IperfRun(core::Node &sender, net::IpAddr senderIp, core::Node &receiver,
             net::IpAddr receiverIp, IperfConfig cfg);

    void start();
    void measureStart();
    void measureStop();

    /** Application payload goodput over the window. */
    const sim::RateMeter &meter() const { return meter_; }

    uint64_t bytesReceived() const { return bytesReceived_; }
    uint64_t corruptions() const { return corruptions_; }
    int streamsConnected() const { return connected_; }

    /** Aggregated receiver-side TLS stats (record classification). */
    tls::TlsStats receiverTlsStats() const;
    tls::TlsStats senderTlsStats() const;

  private:
    struct Stream
    {
        IperfRun *run = nullptr;
        uint64_t seed = 0;
        tcp::TcpConnection *rawTx = nullptr;
        std::unique_ptr<tls::TlsSocket> txTls;
        tcp::StreamSocket *tx = nullptr;
        std::unique_ptr<tls::TlsSocket> rxTls;
        tcp::StreamSocket *rx = nullptr;
        uint64_t sent = 0;
        uint64_t received = 0;

        void pumpSend();
    };

    core::Node &sender_;
    net::IpAddr senderIp_;
    core::Node &receiver_;
    net::IpAddr receiverIp_;
    IperfConfig cfg_;
    std::vector<std::unique_ptr<Stream>> streams_;
    int connected_ = 0;
    int acceptIdx_ = 0;

    sim::RateMeter meter_;
    sim::Counter bytesReceived_;
    sim::Counter corruptions_;
    sim::StatsScope scope_;   ///< "<receiver>.iperf"
    sim::StatsScope txScope_; ///< "<sender>.iperfTx"
    tls::TlsStats rxTlsAgg_;  ///< across receiver-side TLS sockets
    tls::TlsStats txTlsAgg_;  ///< across sender-side TLS sockets
};

} // namespace anic::app

#endif // ANIC_APP_IPERF_HH
