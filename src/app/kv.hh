/**
 * @file
 * Redis-on-Flash-like key-value store with an OffloadDB-style backend
 * (paper §6.2): keys index values stored as extents on the remote
 * NVMe-TCP device, keeping data, keys, and metadata separate so the
 * placement offload applies. Client is memtier-like (GET workload,
 * fixed concurrency per connection). Drives Figure 15.
 *
 * Protocol: "GET <id>\r\n" -> "VALUE <len>\r\n" + <len> bytes.
 */

#ifndef ANIC_APP_KV_HH
#define ANIC_APP_KV_HH

#include "app/storage_service.hh"
#include "sim/registry.hh"
#include "util/rand.hh"

namespace anic::app {

struct KvServerConfig
{
    bool tlsEnabled = false; ///< client-facing transport
    tls::TlsConfig tlsCfg;
    uint64_t tlsSecret = 0xcafe;
};

struct KvServerStats
{
    sim::Counter gets;
    sim::Counter errors;
    sim::Counter bytesSent;
};

/** Values are files in the FileStore (the OffloadDB extent map). */
class KvServer
{
  public:
    KvServer(core::Node &node, uint16_t port, StorageService &storage,
             KvServerConfig cfg);

    const KvServerStats &stats() const { return stats_; }

  private:
    struct Conn
    {
        KvServer *srv = nullptr;
        std::unique_ptr<tls::TlsSocket> tlsSock;
        tcp::StreamSocket *sock = nullptr;
        std::string reqBuf;
        Bytes hdr;
        size_t hdrSent = 0;
        const host::File *value = nullptr;
        uint64_t bodySent = 0;
        bool responding = false;

        void onReadable();
        void maybeServe();
        void pump();
    };

    void accept(tcp::TcpConnection &c);

    core::Node &node_;
    StorageService &storage_;
    KvServerConfig cfg_;
    KvServerStats stats_;
    sim::StatsScope scope_;  ///< "<node>.kv"
    tls::TlsStats tlsAgg_;   ///< across accepted TLS sockets
    std::vector<std::unique_ptr<Conn>> conns_;
};

struct KvClientConfig
{
    int connections = 8;
    bool tlsEnabled = false;
    tls::TlsConfig tlsCfg;
    uint64_t tlsSecret = 0xcafe;
    uint32_t keyCount = 64;
    uint64_t seed = 0x9e7;
    bool verifyContent = true;
};

struct KvClientStats
{
    sim::Counter responses;
    sim::Counter bodyBytes;
    sim::Counter corruptions;
    sim::Distribution latencyUs;
};

class KvClient
{
  public:
    KvClient(core::Node &node, net::IpAddr localIp, net::IpAddr serverIp,
             uint16_t port, const host::FileStore &values,
             KvClientConfig cfg);

    void start();
    void measureStart();
    void measureStop();

    const KvClientStats &stats() const { return stats_; }
    const sim::RateMeter &meter() const { return meter_; }
    uint64_t windowResponses() const { return windowResponses_; }

  private:
    struct Conn
    {
        KvClient *cli = nullptr;
        std::unique_ptr<tls::TlsSocket> tlsSock;
        tcp::StreamSocket *sock = nullptr;
        std::string hdrBuf;
        bool awaitingHeader = true;
        uint64_t bodyRemaining = 0;
        uint64_t bodyOffset = 0;
        const host::File *value = nullptr;
        sim::Tick requestStart = 0;

        void sendRequest();
        void onReadable();
    };

    core::Node &node_;
    net::IpAddr localIp_;
    net::IpAddr serverIp_;
    uint16_t port_;
    const host::FileStore &values_;
    KvClientConfig cfg_;
    Rng rng_;
    std::vector<std::unique_ptr<Conn>> conns_;

    KvClientStats stats_;
    sim::RateMeter meter_;
    sim::StatsScope scope_;  ///< "<node>.kvClient"
    tls::TlsStats tlsAgg_;   ///< across client TLS sockets
    bool measuring_ = false;
    uint64_t windowResponses_ = 0;
};

} // namespace anic::app

#endif // ANIC_APP_KV_HH
