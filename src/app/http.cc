#include "app/http.hh"

#include "util/panic.hh"

namespace anic::app {

namespace {

constexpr size_t kPlainBodyChunk = 65536;

std::string
buildResponseHeader(uint64_t contentLength)
{
    return strprintf("HTTP/1.1 200 OK\r\nServer: anic\r\n"
                     "Content-Length: %llu\r\n\r\n",
                     static_cast<unsigned long long>(contentLength));
}

} // namespace

// ------------------------------------------------------------- server

HttpServer::HttpServer(core::Node &node, uint16_t port,
                       StorageService &storage, HttpServerConfig cfg)
    : node_(node), storage_(storage), cfg_(std::move(cfg)),
      scope_(node.subScope("http"))
{
    cfg_.tlsCfg.aggregate = &tlsAgg_;
    scope_.link("requests", stats_.requests);
    scope_.link("bytesSent", stats_.bytesSent);
    scope_.link("errors", stats_.errors);
    tls::linkTlsStats(scope_, "tls", tlsAgg_);
    node_.stack().listen(port, node_.tcpConfig(),
                         [this](tcp::TcpConnection &c) { accept(c); });
}

void
HttpServer::accept(tcp::TcpConnection &c)
{
    auto conn = std::make_unique<Conn>();
    conn->srv = this;
    conn->raw = &c;
    if (cfg_.tlsEnabled) {
        conn->tlsSock = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(cfg_.tlsSecret, false), cfg_.tlsCfg);
        conn->tlsSock->enableOffload(node_.device());
        conn->sock = conn->tlsSock.get();
    } else {
        conn->sock = &c;
    }
    Conn *cp = conn.get();
    cp->sock->setOnReadable([cp] { cp->onReadable(); });
    cp->sock->setOnWritable([cp] { cp->pump(); });
    conns_.push_back(std::move(conn));
}

void
HttpServer::Conn::onReadable()
{
    while (sock->readable()) {
        tcp::RxSegment seg = sock->pop();
        reqBuf.append(reinterpret_cast<const char *>(seg.data.data()),
                      seg.data.size());
    }
    maybeStartRequest();
}

void
HttpServer::Conn::maybeStartRequest()
{
    if (responding)
        return;
    size_t end = reqBuf.find("\r\n\r\n");
    if (end == std::string::npos)
        return;

    host::Core &core = sock->core();
    core.charge(core.model().httpRequestCost);

    // "GET /<id> HTTP/1.1"
    uint32_t id = 0;
    bool ok = reqBuf.rfind("GET /", 0) == 0;
    if (ok) {
        size_t sp = reqBuf.find(' ', 5);
        ok = sp != std::string::npos;
        if (ok)
            id = static_cast<uint32_t>(
                std::strtoul(reqBuf.substr(5, sp - 5).c_str(), nullptr, 10));
    }
    reqBuf.erase(0, end + 4);
    if (!ok || id >= srv->storage_.files().count()) {
        srv->stats_.errors++;
        return;
    }

    file = &srv->storage_.files().get(id);
    responding = true;
    hdr.clear();
    std::string h = buildResponseHeader(file->size);
    hdr.assign(h.begin(), h.end());
    hdrSent = 0;
    bodySent = 0;

    srv->storage_.fetch(*file, core, [this](bool fetched) {
        if (!fetched) {
            srv->stats_.errors++;
            responding = false;
            return;
        }
        pump();
    });
}

void
HttpServer::Conn::pump()
{
    if (!responding)
        return;
    // Header first.
    while (hdrSent < hdr.size()) {
        size_t acc = sock->send(ByteView(hdr).subspan(hdrSent));
        hdrSent += acc;
        if (acc == 0)
            return;
    }
    // Body: sendfile semantics.
    while (bodySent < file->size) {
        uint64_t remaining = file->size - bodySent;
        size_t acc;
        if (srv->cfg_.tlsEnabled) {
            acc = tlsSock->sendFile(file->seed, file->lba + bodySent,
                                    remaining);
        } else {
            // Plain-TCP sendfile: page cache pages go to the NIC with
            // no copy; generate the content into the stream.
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(kPlainBodyChunk, remaining));
            Bytes chunk(n);
            fillDeterministic(chunk, file->seed, file->lba + bodySent);
            acc = sock->send(chunk);
        }
        bodySent += acc;
        srv->stats_.bytesSent += acc;
        if (acc == 0)
            return;
    }
    responding = false;
    srv->stats_.requests++;
    maybeStartRequest();
}

// ------------------------------------------------------------- client

HttpClient::HttpClient(core::Node &node, net::IpAddr localIp,
                       net::IpAddr serverIp, uint16_t port,
                       const host::FileStore &files, HttpClientConfig cfg)
    : node_(node), localIp_(localIp), serverIp_(serverIp), port_(port),
      files_(files), cfg_(std::move(cfg)), rng_(cfg_.seed),
      scope_(node.subScope("httpClient"))
{
    ANIC_ASSERT(!cfg_.fileIds.empty(), "client needs target files");
    cfg_.tlsCfg.aggregate = &tlsAgg_;
    scope_.link("responses", stats_.responses);
    scope_.link("bodyBytes", stats_.bodyBytes);
    scope_.link("corruptions", stats_.corruptions);
    scope_.link("latencyUs", stats_.latencyUs);
    scope_.link("goodput", meter_);
    tls::linkTlsStats(scope_, "tls", tlsAgg_);
}

void
HttpClient::start()
{
    for (int i = 0; i < cfg_.connections; i++) {
        auto conn = std::make_unique<Conn>();
        conn->cli = this;
        conn->requestsLeft = cfg_.requestsPerConn;
        Conn *cp = conn.get();
        conns_.push_back(std::move(conn));
        node_.sim().schedule(
            static_cast<sim::Tick>(i) * cfg_.staggerPerConn,
            [this, cp] { openConnection(*cp); });
    }
}

void
HttpClient::openConnection(Conn &conn)
{
    Conn *cp = &conn;
        tcp::TcpConnection &c = node_.stack().connect(
            localIp_, serverIp_, port_, node_.tcpConfig());
        conn.raw = &c;
        c.setOnConnected([this, cp, &c] {
            if (cfg_.tlsEnabled) {
                cp->tlsSock = std::make_unique<tls::TlsSocket>(
                    c, tls::SessionKeys::derive(cfg_.tlsSecret, true),
                    cfg_.tlsCfg);
                cp->tlsSock->enableOffload(node_.device());
                cp->sock = cp->tlsSock.get();
            } else {
                cp->sock = &c;
            }
            cp->sock->setOnReadable([cp] { cp->onReadable(); });
            connected_++;
            cp->sendRequest();
        });
}

void
HttpClient::measureStart()
{
    measuring_ = true;
    windowResponses_ = 0;
    meter_.start(node_.sim().now());
}

void
HttpClient::measureStop()
{
    measuring_ = false;
    meter_.stop(node_.sim().now());
}

void
HttpClient::Conn::sendRequest()
{
    if (requestsLeft == 0)
        return;
    if (requestsLeft > 0)
        requestsLeft--;
    uint32_t id = cli->cfg_.fileIds[cli->rng_.below(cli->cfg_.fileIds.size())];
    file = &cli->files_.get(id);
    std::string req = strprintf("GET /%u HTTP/1.1\r\nHost: dut\r\n\r\n", id);
    requestStart = cli->node_.sim().now();
    awaitingHeader = true;
    hdrBuf.clear();
    size_t sent = sock->send(
        ByteView(reinterpret_cast<const uint8_t *>(req.data()), req.size()));
    ANIC_ASSERT(sent == req.size(), "request did not fit in send buffer");
}

void
HttpClient::Conn::onReadable()
{
    while (sock->readable()) {
        tcp::RxSegment seg = sock->pop();
        size_t off = 0;
        if (awaitingHeader) {
            hdrBuf.append(reinterpret_cast<const char *>(seg.data.data()),
                          seg.data.size());
            size_t end = hdrBuf.find("\r\n\r\n");
            if (end == std::string::npos)
                continue;
            size_t cl = hdrBuf.find("Content-Length: ");
            ANIC_ASSERT(cl != std::string::npos && cl < end);
            bodyRemaining = std::strtoull(hdrBuf.c_str() + cl + 16, nullptr,
                                          10);
            bodyOffset = 0;
            awaitingHeader = false;
            // Body bytes that arrived in the same segment.
            size_t consumed = seg.data.size() - (hdrBuf.size() - (end + 4));
            off = consumed;
            hdrBuf.clear();
        }
        if (!awaitingHeader && off < seg.data.size()) {
            size_t n = std::min<uint64_t>(seg.data.size() - off,
                                          bodyRemaining);
            if (cli->cfg_.verifyContent &&
                !checkDeterministic(ByteView(seg.data).subspan(off, n),
                                    file->seed, file->lba + bodyOffset)) {
                cli->stats_.corruptions++;
            }
            bodyRemaining -= n;
            bodyOffset += n;
            cli->stats_.bodyBytes += n;
            cli->meter_.add(n);
            if (bodyRemaining == 0) {
                cli->stats_.responses++;
                if (cli->measuring_) {
                    cli->windowResponses_++;
                    cli->stats_.latencyUs.add(
                        sim::ticksToSeconds(cli->node_.sim().now() -
                                            requestStart) *
                        1e6);
                }
                sendRequest();
            }
        }
    }
}

} // namespace anic::app
