/**
 * @file
 * fio-like workload generator: keeps a fixed number of random-read
 * (or write) requests in flight against an NVMe-TCP queue. Drives the
 * Figure 2 / Figure 10 microbenchmarks (cycles per request vs I/O
 * depth and request size).
 */

#ifndef ANIC_APP_FIO_HH
#define ANIC_APP_FIO_HH

#include "nvmetcp/host_queue.hh"
#include "sim/registry.hh"
#include "util/rand.hh"

namespace anic::app {

struct FioConfig
{
    uint32_t blockSize = 262144;
    int ioDepth = 1;
    uint64_t areaBytes = 64ull << 30; ///< random-address span
    uint64_t seed = 0xf10;
    bool writes = false;
    bool verify = false;
};

class FioJob
{
  public:
    FioJob(sim::Simulator &sim, nvmetcp::NvmeHostQueue &queue, FioConfig cfg)
        : sim_(sim), queue_(queue), cfg_(cfg), rng_(cfg.seed)
    {
    }

    void
    start()
    {
        for (int i = 0; i < cfg_.ioDepth; i++)
            issue();
    }

    void measureStart() { windowCompletions_ = 0; windowStart_ = sim_.now(); }

    uint64_t completions() const { return completions_; }
    uint64_t windowCompletions() const { return windowCompletions_; }
    uint64_t failures() const { return failures_; }
    sim::Tick windowStart() const { return windowStart_; }
    const sim::Distribution &latencyUs() const { return latencyUs_; }

  private:
    void
    issue()
    {
        uint64_t blocks = cfg_.areaBytes / cfg_.blockSize;
        uint64_t slba = rng_.below(blocks) * cfg_.blockSize;
        sim::Tick begin = sim_.now();
        if (cfg_.writes) {
            queue_.write(slba, cfg_.blockSize, cfg_.seed ^ slba,
                         [this, begin](bool ok) { complete(ok, begin); });
        } else {
            queue_.read(slba, cfg_.blockSize,
                        [this, begin, slba](bool ok,
                                            host::BlockBufferPtr buf) {
                            if (ok && cfg_.verify &&
                                !checkDeterministic(buf->data, driveSeed_,
                                                    slba)) {
                                ok = false;
                            }
                            complete(ok, begin);
                        });
        }
    }

    void
    complete(bool ok, sim::Tick begin)
    {
        if (!ok)
            failures_++;
        completions_++;
        windowCompletions_++;
        latencyUs_.add(sim::ticksToSeconds(sim_.now() - begin) * 1e6);
        issue();
    }

    sim::Simulator &sim_;
    nvmetcp::NvmeHostQueue &queue_;
    FioConfig cfg_;
    Rng rng_;
    uint64_t completions_ = 0;
    uint64_t windowCompletions_ = 0;
    uint64_t failures_ = 0;
    sim::Tick windowStart_ = 0;
    sim::Distribution latencyUs_;

  public:
    /** Drive content seed for verification (set by the harness). */
    uint64_t driveSeed_ = 0xd15c;
};

} // namespace anic::app

#endif // ANIC_APP_FIO_HH
