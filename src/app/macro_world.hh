/**
 * @file
 * Full evaluation-testbed wiring (used by benches, examples, tests): a server
 * (DUT) and a workload generator connected back-to-back; the NVMe
 * drive lives on the generator and is exported to the server over
 * NVMe-TCP across the same link (§6: "the server utilizes an Optane
 * ... SSD that resides remotely, on the generator").
 */

#ifndef ANIC_APP_MACRO_WORLD_HH
#define ANIC_APP_MACRO_WORLD_HH

#include <memory>

#include "app/http.hh"
#include "app/kv.hh"
#include "nvmetcp/target.hh"
#include "util/panic.hh"

namespace anic::app {

struct MacroWorld
{
    static constexpr net::IpAddr kGenIp = net::makeIp(10, 0, 0, 1);
    static constexpr net::IpAddr kSrvIp = net::makeIp(10, 0, 0, 2);
    static constexpr uint16_t kNvmePort = 4420;

    struct Config
    {
        int serverCores = 1;
        int generatorCores = 8;
        net::Link::Config link;
        host::NvmeDrive::Config drive;
        app::StorageService::Config storage;
        bool remoteStorage = true; ///< C1: serve through NVMe-TCP
        host::CycleModel model;
        nic::Nic::Config nicCfg;
        tcp::TcpConnection::Config serverTcp;
        tcp::TcpConnection::Config generatorTcp;

        /** Per-run context owning this world's registry and trace
         *  ring; null falls back to the thread-local globals. */
        sim::RunContext *run = nullptr;
    };

    explicit MacroWorld(Config cfg)
        : link(sim, linkCfg(cfg, pool)),
          generator(sim, genCfg(cfg, pool)),
          server(sim, srvCfg(cfg, pool)),
          drive(sim, cfg.drive),
          files(cfg.drive.contentSeed)
    {
        if (cfg.run != nullptr)
            pool.linkStats(sim::StatsScope(cfg.run->registry(), "sim.alloc"));
        generator.attachPort(link, 0, kGenIp);
        server.attachPort(link, 1, kSrvIp);

        storage = std::make_unique<app::StorageService>(server, files,
                                                        cfg.storage);
        if (cfg.remoteStorage) {
            // NVMe-TCP target on the generator, one session per
            // accepted queue connection.
            nvmetcp::WireConfig wire = cfg.storage.wire;
            uint64_t tlsSecret = cfg.storage.tlsSecret;
            bool tlsTransport = cfg.storage.tlsTransport;
            generator.stack().listen(
                kNvmePort, generator.tcpConfig(),
                [this, wire, tlsTransport, tlsSecret](tcp::TcpConnection &c) {
                    if (tlsTransport) {
                        targetTls.push_back(std::make_unique<tls::TlsSocket>(
                            c, tls::SessionKeys::derive(tlsSecret, false),
                            tls::TlsConfig{}));
                        targets.push_back(
                            std::make_unique<nvmetcp::NvmeTarget>(
                                *targetTls.back(), drive, wire));
                    } else {
                        targets.push_back(
                            std::make_unique<nvmetcp::NvmeTarget>(c, drive,
                                                                  wire));
                    }
                });
            storage->connectRemote(kSrvIp, kGenIp, kNvmePort);
            sim.runUntil(sim.now() + 20 * sim::kMillisecond);
            ANIC_ASSERT(storage->ready(), "NVMe queues failed to connect");
        }
    }

    static net::Link::Config
    linkCfg(const Config &c, net::PacketPool &pool)
    {
        net::Link::Config l = c.link;
        l.pool = &pool;
        return l;
    }

    static core::Node::Config
    genCfg(const Config &c, net::PacketPool &pool)
    {
        core::Node::Config n;
        n.cores = c.generatorCores;
        n.model = c.model;
        n.nicCfg = c.nicCfg;
        n.tcpCfg = c.generatorTcp;
        n.stackSeed = 101;
        n.name = "gen";
        n.pool = &pool;
        if (c.run != nullptr)
            n.bindRun(*c.run);
        return n;
    }

    static core::Node::Config
    srvCfg(const Config &c, net::PacketPool &pool)
    {
        core::Node::Config n;
        n.cores = c.serverCores;
        n.model = c.model;
        n.nicCfg = c.nicCfg;
        n.tcpCfg = c.serverTcp;
        n.stackSeed = 202;
        n.name = "srv";
        n.pool = &pool;
        if (c.run != nullptr)
            n.bindRun(*c.run);
        return n;
    }

    /** Creates files of @p size bytes; returns their ids. */
    std::vector<uint32_t>
    makeFiles(int count, uint64_t size)
    {
        std::vector<uint32_t> ids;
        for (int i = 0; i < count; i++)
            ids.push_back(files.create(size).id);
        return ids;
    }

    // Pool first: members destroy in reverse order, and every
    // PacketPtr still alive in sim events / sockets must release back
    // into the pool before its destructor checks liveCount == 0.
    net::PacketPool pool;
    sim::Simulator sim;
    net::Link link;
    core::Node generator;
    core::Node server;
    host::NvmeDrive drive;
    host::FileStore files;
    std::unique_ptr<app::StorageService> storage;
    std::vector<std::unique_ptr<nvmetcp::NvmeTarget>> targets;
    std::vector<std::unique_ptr<tls::TlsSocket>> targetTls;
};

} // namespace anic::testing

#endif // ANIC_APP_MACRO_WORLD_HH
