/**
 * @file
 * Server-side storage service: the page cache plus optional remote
 * NVMe-TCP backing, as nginx-on-ext4-on-NVMe-TCP sees it.
 *
 * Configuration C1 (paper §6.3): tiny cache, every request misses and
 * reads the whole file from the remote drive (ext4 read-ahead is set
 * to the file size). Configuration C2: cache pre-warmed, no I/O.
 */

#ifndef ANIC_APP_STORAGE_SERVICE_HH
#define ANIC_APP_STORAGE_SERVICE_HH

#include "core/node.hh"
#include "nvmetcp/host_queue.hh"

namespace anic::app {

class StorageService
{
  public:
    struct Config
    {
        size_t pageCacheBytes = 64ull << 30; ///< C2 default: everything fits
        nvmetcp::WireConfig wire;
        nvmetcp::NvmeOffloadConfig offload;
        bool offloadEnabled = false; ///< request NIC offloads on queues
        bool tlsTransport = false;   ///< NVMe-TLS composition
        tls::TlsConfig tlsCfg;
        uint64_t tlsSecret = 0x4242;
    };

    StorageService(core::Node &node, host::FileStore &files, Config cfg);

    /** Pre-populates the page cache with every file (C2). */
    void prewarm();

    /**
     * Connects one NVMe-TCP queue per core to the remote target
     * (paper: "each NVMe submission and completion queue pair maps to
     * a TCP socket"). Run the simulator until ready() afterwards.
     */
    void connectRemote(net::IpAddr localIp, net::IpAddr targetIp,
                       uint16_t port);

    bool ready() const;

    /**
     * Makes @p file resident (cache hit or remote read + insert) and
     * calls @p done. Must be invoked from a work item on @p core.
     */
    void fetch(const host::File &file, host::Core &core,
               std::function<void(bool ok)> done);

    uint64_t cacheHits() const { return hits_; }
    uint64_t cacheMisses() const { return misses_; }
    uint64_t remoteBytesRead() const { return remoteBytes_; }

    nvmetcp::NvmeHostQueue *queue(int core);
    host::FileStore &files() { return files_; }

  private:
    struct Remote
    {
        tcp::TcpConnection *conn = nullptr;
        std::unique_ptr<tls::TlsSocket> tls;
        std::unique_ptr<nvmetcp::NvmeHostQueue> queue;
        bool ready = false;
    };

    core::Node &node_;
    host::FileStore &files_;
    Config cfg_;
    host::PageCache cache_;
    std::vector<Remote> remotes_; // one per core
    sim::StatsScope scope_;       ///< "<node>.storage"
    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter remoteBytes_;
    nvmetcp::NvmeHostStats nvmeAgg_; ///< across the per-core queues
    tls::TlsStats tlsAgg_;           ///< across the NVMe-TLS transports
};

} // namespace anic::app

#endif // ANIC_APP_STORAGE_SERVICE_HH
